package main

// powerbench tenant — the multi-tenant arbitration benchmark and its CI
// gate. One deterministic two-app DES scenario (harness.BenchTenantScenario)
// is run twice under the same seed: once with the initial split frozen
// (static halving) and once with a cross-app arbiter re-granting per-tenant
// budgets each epoch. The command prints both runs, reports the combined-p99
// improvement, and can write the pair as a JSON artifact or gate a fresh run
// against a checked-in one (results/BENCH_multitenant.json).

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	"powerchief/internal/arbiter"
	"powerchief/internal/core"
	"powerchief/internal/harness"
	"powerchief/internal/stats"
)

// tenantParams pins everything that must match for two multi-tenant
// artifacts to be comparable.
type tenantParams struct {
	Scenario    string   `json:"scenario"`
	Seed        int64    `json:"seed"`
	Arbiter     string   `json:"arbiter"`
	BudgetWatts float64  `json:"budget_watts"`
	Tenants     []string `json:"tenants"`
}

// tenantTenant is one tenant's slice of a run.
type tenantTenant struct {
	Name           string  `json:"name"`
	Policy         string  `json:"policy"`
	QoSNS          int64   `json:"qos_ns"`
	Submitted      uint64  `json:"submitted"`
	Completed      uint64  `json:"completed"`
	MeanNS         int64   `json:"mean_ns"`
	P99NS          int64   `json:"p99_ns"`
	InitialGrantW  float64 `json:"initial_grant_watts"`
	FinalGrantW    float64 `json:"final_grant_watts"`
	AvgGrantW      float64 `json:"avg_grant_watts"`
	AvgPowerW      float64 `json:"avg_power_watts"`
	BoostDecisions int     `json:"boost_decisions"`
}

// tenantRunRecord is one mode's (static or arbitrated) result.
type tenantRunRecord struct {
	Arbiter         string         `json:"arbiter"`
	CombinedCount   int            `json:"combined_count"`
	CombinedMeanNS  int64          `json:"combined_mean_ns"`
	CombinedP50NS   int64          `json:"combined_p50_ns"`
	CombinedP99NS   int64          `json:"combined_p99_ns"`
	ArbiterEpochs   uint64         `json:"arbiter_epochs"`
	Violations      int            `json:"violations"`
	MaxGrantedWatts float64        `json:"max_granted_watts"`
	Tenants         []tenantTenant `json:"tenants"`
}

// tenantArtifact is the BENCH_multitenant.json schema.
type tenantArtifact struct {
	Params     tenantParams    `json:"params"`
	Static     tenantRunRecord `json:"static"`
	Arbitrated tenantRunRecord `json:"arbitrated"`
	// Improvement is static over arbitrated: >1 means arbitration won.
	ImprovementMeanX float64 `json:"improvement_mean_x"`
	ImprovementP99X  float64 `json:"improvement_p99_x"`
}

// runTenant implements `powerbench tenant`. Exit codes mirror `powerbench
// cmp`: 0 pass, 1 regression (invariant violated, arbitration lost, or the
// gated comparison crossed a threshold), 2 not comparable.
func runTenant(args []string) int {
	fs := flag.NewFlagSet("powerbench tenant", flag.ExitOnError)
	seed := fs.Int64("seed", 42, "scenario seed (both runs share it)")
	policy := fs.String("arbiter", "proportional", "arbitration strategy: proportional or fairness")
	alpha := fs.Float64("alpha", 2, "fairness strategy exponent (arbiter=fairness)")
	jsonOut := fs.String("json", "", "write the paired JSON artifact here (\"-\" for stdout)")
	check := fs.String("check", "", "gate against this checked-in artifact (CI mode)")
	tol := fs.Float64("tol", 0.20, "relative tolerance on combined latency vs the checked-in artifact")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: powerbench tenant [flags]")
		fs.PrintDefaults()
	}
	_ = fs.Parse(args)

	var golden *tenantArtifact
	if *check != "" {
		raw, err := os.ReadFile(*check)
		if err != nil {
			fmt.Fprintln(os.Stderr, "powerbench tenant:", err)
			return 2
		}
		golden = new(tenantArtifact)
		if err := json.Unmarshal(raw, golden); err != nil {
			fmt.Fprintf(os.Stderr, "powerbench tenant: %s: %v\n", *check, err)
			return 2
		}
		// Re-run exactly what the artifact recorded.
		*seed = golden.Params.Seed
		*policy = golden.Params.Arbiter
	}

	strategy, err := tenantStrategy(*policy, *alpha)
	if err != nil {
		fmt.Fprintln(os.Stderr, "powerbench tenant:", err)
		return 2
	}

	static := harness.BenchTenantScenario(*seed)
	staticRes, err := harness.RunMulti(static)
	if err != nil {
		fmt.Fprintln(os.Stderr, "powerbench tenant: static run:", err)
		return 1
	}
	arbScenario := harness.BenchTenantScenario(*seed)
	arbScenario.Arbiter = func() core.Policy { return arbiter.New(strategy) }
	arbRes, err := harness.RunMulti(arbScenario)
	if err != nil {
		fmt.Fprintln(os.Stderr, "powerbench tenant: arbitrated run:", err)
		return 1
	}

	art := &tenantArtifact{
		Params: tenantParams{
			Scenario:    static.Name,
			Seed:        *seed,
			Arbiter:     *policy,
			BudgetWatts: float64(arbRes.Budget),
			Tenants:     tenantNames(arbRes),
		},
		Static:           recordRun(staticRes),
		Arbitrated:       recordRun(arbRes),
		ImprovementMeanX: stats.Improvement(staticRes.Combined.Mean(), arbRes.Combined.Mean()),
		ImprovementP99X:  stats.Improvement(staticRes.Combined.P99(), arbRes.Combined.P99()),
	}

	printTenantRun("static-split", art.Static)
	printTenantRun(*policy, art.Arbitrated)
	fmt.Printf("arbitration vs static halving: combined mean %.2fx, combined p99 %.2fx (budget %.1f W, %d arbiter epochs)\n",
		art.ImprovementMeanX, art.ImprovementP99X, art.Params.BudgetWatts, art.Arbitrated.ArbiterEpochs)

	if *jsonOut != "" {
		payload, err := json.MarshalIndent(art, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "powerbench tenant:", err)
			return 1
		}
		payload = append(payload, '\n')
		if *jsonOut == "-" {
			os.Stdout.Write(payload)
		} else if err := os.WriteFile(*jsonOut, payload, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "powerbench tenant:", err)
			return 1
		}
	}

	// Intrinsic gates: the budget hierarchy invariant held, and arbitration
	// beat the static split on combined p99 — the scenario's reason to exist.
	fail := 0
	if v := art.Static.Violations + art.Arbitrated.Violations; v != 0 {
		fmt.Fprintf(os.Stderr, "FAIL: %d budget-hierarchy violations (Σ child grants exceeded the root budget)\n", v)
		fail = 1
	}
	if art.ImprovementP99X <= 1 {
		fmt.Fprintf(os.Stderr, "FAIL: arbitration did not beat static halving on combined p99 (%.3fx)\n", art.ImprovementP99X)
		fail = 1
	}

	if golden != nil {
		if code := gateTenant(golden, art, *tol); code != 0 {
			return code
		}
		fmt.Printf("PASS: matches %s within %.0f%% (combined p99 static %v arb %v)\n",
			*check, *tol*100, time.Duration(art.Static.CombinedP99NS), time.Duration(art.Arbitrated.CombinedP99NS))
	}
	return fail
}

// tenantStrategy maps the flag value to an arbitration strategy.
func tenantStrategy(name string, alpha float64) (arbiter.Strategy, error) {
	switch name {
	case "proportional":
		return arbiter.Proportional{}, nil
	case "fairness":
		return arbiter.Fairness{Alpha: alpha}, nil
	default:
		return nil, fmt.Errorf("unknown arbiter strategy %q (want proportional or fairness)", name)
	}
}

// tenantNames lists the run's tenants in order.
func tenantNames(res *harness.MultiResult) []string {
	out := make([]string, len(res.Tenants))
	for i, t := range res.Tenants {
		out[i] = t.Name
	}
	return out
}

// recordRun flattens a MultiResult into the artifact schema.
func recordRun(res *harness.MultiResult) tenantRunRecord {
	rec := tenantRunRecord{
		Arbiter:         res.Arbiter,
		CombinedCount:   res.Combined.Count(),
		CombinedMeanNS:  res.Combined.Mean().Nanoseconds(),
		CombinedP50NS:   res.Combined.P50().Nanoseconds(),
		CombinedP99NS:   res.Combined.P99().Nanoseconds(),
		ArbiterEpochs:   res.ArbiterEpochs,
		Violations:      res.Violations,
		MaxGrantedWatts: float64(res.MaxGranted),
	}
	for _, t := range res.Tenants {
		boosts := 0
		for _, n := range t.Boosts {
			boosts += n
		}
		rec.Tenants = append(rec.Tenants, tenantTenant{
			Name:           t.Name,
			Policy:         t.Policy,
			QoSNS:          t.QoS.Nanoseconds(),
			Submitted:      t.Submitted,
			Completed:      t.Completed,
			MeanNS:         t.Latency.Mean().Nanoseconds(),
			P99NS:          t.Latency.P99().Nanoseconds(),
			InitialGrantW:  float64(t.InitialGrant),
			FinalGrantW:    float64(t.FinalGrant),
			AvgGrantW:      float64(t.AvgGrant),
			AvgPowerW:      float64(t.AvgPower),
			BoostDecisions: boosts,
		})
	}
	return rec
}

// printTenantRun renders one mode as a table row set.
func printTenantRun(label string, rec tenantRunRecord) {
	fmt.Printf("%-14s combined: %6d queries  mean %-12v p99 %-12v epochs %d  max Σgrants %.1f W\n",
		label, rec.CombinedCount, time.Duration(rec.CombinedMeanNS), time.Duration(rec.CombinedP99NS),
		rec.ArbiterEpochs, rec.MaxGrantedWatts)
	for _, t := range rec.Tenants {
		fmt.Printf("  %-10s qos %-8v p99 %-12v done %5d/%-5d grant %5.1f→%5.1f W (avg %5.1f)  power %5.1f W  boosts %d\n",
			t.Name, time.Duration(t.QoSNS), time.Duration(t.P99NS), t.Completed, t.Submitted,
			t.InitialGrantW, t.FinalGrantW, t.AvgGrantW, t.AvgPowerW, t.BoostDecisions)
	}
}

// gateTenant compares a fresh artifact against the checked-in one. Params
// must match exactly (else 2: not comparable); combined latencies must stay
// within the relative tolerance and the fresh improvement must not collapse
// (else 1: regression).
func gateTenant(golden, fresh *tenantArtifact, tol float64) int {
	if golden.Params.Scenario != fresh.Params.Scenario ||
		golden.Params.Seed != fresh.Params.Seed ||
		golden.Params.Arbiter != fresh.Params.Arbiter ||
		len(golden.Params.Tenants) != len(fresh.Params.Tenants) {
		fmt.Fprintf(os.Stderr, "NOT COMPARABLE: params differ: baseline %+v vs fresh %+v\n", golden.Params, fresh.Params)
		return 2
	}
	for i := range golden.Params.Tenants {
		if golden.Params.Tenants[i] != fresh.Params.Tenants[i] {
			fmt.Fprintf(os.Stderr, "NOT COMPARABLE: tenant set differs: %v vs %v\n", golden.Params.Tenants, fresh.Params.Tenants)
			return 2
		}
	}
	fail := 0
	within := func(metric string, want, got int64) {
		if want == 0 {
			return
		}
		if drift := math.Abs(float64(got)-float64(want)) / float64(want); drift > tol {
			fmt.Fprintf(os.Stderr, "FAIL: %s drifted %.1f%% (baseline %v, fresh %v, tolerance %.0f%%)\n",
				metric, drift*100, time.Duration(want), time.Duration(got), tol*100)
			fail = 1
		}
	}
	within("static combined p99", golden.Static.CombinedP99NS, fresh.Static.CombinedP99NS)
	within("static combined mean", golden.Static.CombinedMeanNS, fresh.Static.CombinedMeanNS)
	within("arbitrated combined p99", golden.Arbitrated.CombinedP99NS, fresh.Arbitrated.CombinedP99NS)
	within("arbitrated combined mean", golden.Arbitrated.CombinedMeanNS, fresh.Arbitrated.CombinedMeanNS)
	if fresh.Arbitrated.Violations != 0 || fresh.Static.Violations != 0 {
		fmt.Fprintln(os.Stderr, "FAIL: fresh run violated the budget hierarchy invariant")
		fail = 1
	}
	if fresh.ImprovementP99X <= 1 {
		fmt.Fprintf(os.Stderr, "FAIL: fresh arbitration no longer beats static halving (p99 %.3fx)\n", fresh.ImprovementP99X)
		fail = 1
	}
	return fail
}
