package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"powerchief/internal/fleet"
)

// runArbiterBench implements `powerbench arbiter`: the deterministic
// skewed-bottleneck fleet DES scenario racing arbiter weighting strategies
// (proportional vs the breakdown-aware marginal by default) and recording
// the per-node bottleneck-delay distributions. The artifact
// (results/BENCH_arbiter.json in CI) is gated with `powerbench cmp`.
// Exit codes: 0 success, 1 failure.
func runArbiterBench(args []string) int {
	fs := flag.NewFlagSet("powerbench arbiter", flag.ExitOnError)
	nodes := fs.Int("nodes", 0, "fleet size (0: scenario default)")
	duration := fs.Duration("duration", 0, "virtual run length (0: scenario default)")
	jsonOut := fs.String("json", "", "write the JSON artifact here (\"-\" for stdout)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: powerbench arbiter [flags]")
		fs.PrintDefaults()
	}
	_ = fs.Parse(args)

	p := fleet.DefaultArbiterBenchParams()
	if *nodes > 0 {
		p.Nodes = *nodes
	}
	if *duration > 0 {
		p.Duration = *duration
	}
	res, err := fleet.RunArbiterBench(p)
	if err != nil {
		fmt.Fprintln(os.Stderr, "powerbench arbiter:", err)
		return 1
	}

	fmt.Printf("%-14s %8s %12s %12s %12s %14s %14s %14s\n",
		"STRATEGY", "SAMPLES", "MEAN(ms)", "P99(ms)", "MAX(ms)", "BOOST-MEAN(ms)", "BOOST-P99(ms)", "BOOST-MAX(ms)")
	for _, r := range res.Results {
		fmt.Printf("%-14s %8d %12.2f %12.2f %12.2f %14.2f %14.2f %14.2f\n",
			r.Strategy, r.Samples, r.MeanMS, r.P99MS, r.MaxMS, r.BoostMeanMS, r.BoostP99MS, r.BoostMaxMS)
	}
	if res.P99ImprovementX > 0 {
		fmt.Printf("%s boostable-p99 improvement over %s: %.2fx\n",
			res.Results[len(res.Results)-1].Strategy, res.Results[0].Strategy, res.P99ImprovementX)
	}

	if *jsonOut != "" {
		payload, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "powerbench arbiter:", err)
			return 1
		}
		payload = append(payload, '\n')
		if *jsonOut == "-" {
			os.Stdout.Write(payload)
		} else if err := os.WriteFile(*jsonOut, payload, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "powerbench arbiter:", err)
			return 1
		}
	}
	return 0
}

// cmpArbiter compares two arbiter benchmark artifacts for `powerbench cmp`.
// Different scenario parameters are not comparable (exit 2). Regressions
// (exit 1): a strategy's p99 or worst-node delay worsening past the
// threshold, or a strategy disappearing from the new artifact.
func cmpArbiter(oldPath, newPath string, maxP99Pct float64) int {
	load := func(path string) (*fleet.ArbiterBench, error) {
		payload, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		var b fleet.ArbiterBench
		if err := json.Unmarshal(payload, &b); err != nil {
			return nil, fmt.Errorf("%s: not an arbiter artifact: %w", path, err)
		}
		if b.Kind != fleet.ArbiterArtifactKind {
			return nil, fmt.Errorf("%s: artifact kind %q, want %q", path, b.Kind, fleet.ArbiterArtifactKind)
		}
		return &b, nil
	}
	oldB, err := load(oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "powerbench cmp:", err)
		return 2
	}
	newB, err := load(newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "powerbench cmp:", err)
		return 2
	}
	oldP, _ := json.Marshal(oldB.Params)
	newP, _ := json.Marshal(newB.Params)
	if string(oldP) != string(newP) {
		fmt.Fprintf(os.Stderr, "powerbench cmp: arbiter scenario parameters differ — not comparable\n  old: %s\n  new: %s\n", oldP, newP)
		return 2
	}

	if maxP99Pct == 0 {
		maxP99Pct = 25
	}
	oldBy := make(map[string]fleet.ArbiterStrategyResult, len(oldB.Results))
	for _, r := range oldB.Results {
		oldBy[r.Strategy] = r
	}
	failed := false
	for _, n := range newB.Results {
		o, ok := oldBy[n.Strategy]
		if !ok {
			fmt.Fprintf(os.Stderr, "powerbench cmp: warning: strategy %s is new in %s\n", n.Strategy, newPath)
			continue
		}
		delete(oldBy, n.Strategy)
		if maxP99Pct > 0 && o.P99MS > 0 {
			if pct := (n.P99MS - o.P99MS) / o.P99MS * 100; pct > maxP99Pct {
				failed = true
				fmt.Printf("REGRESSION [%s] p99 %.2fms -> %.2fms (+%.1f%% > %.1f%%)\n",
					n.Strategy, o.P99MS, n.P99MS, pct, maxP99Pct)
			}
		}
		if maxP99Pct > 0 && o.WorstNodeMeanMS > 0 {
			if pct := (n.WorstNodeMeanMS - o.WorstNodeMeanMS) / o.WorstNodeMeanMS * 100; pct > maxP99Pct {
				failed = true
				fmt.Printf("REGRESSION [%s] worst-node mean %.2fms -> %.2fms (+%.1f%% > %.1f%%)\n",
					n.Strategy, o.WorstNodeMeanMS, n.WorstNodeMeanMS, pct, maxP99Pct)
			}
		}
	}
	for name := range oldBy {
		failed = true
		fmt.Printf("REGRESSION [%s] strategy missing from %s\n", name, newPath)
	}
	if failed {
		fmt.Println("FAIL")
		return 1
	}
	fmt.Printf("OK: %d arbiter strategies within thresholds\n", len(newB.Results))
	return 0
}
