// Command powerbench is the open-loop benchmark driver: it pushes a fixed
// arrival schedule (Poisson or constant-rate, deterministic per seed) into
// one of the framework's engines and reports coordinated-omission-safe
// latency — intended-start to completion — as a human table and/or JSON.
//
// Targets:
//
//	-target live   the in-process goroutine engine (wall-clock)
//	-target des    the discrete-event engine (virtual time; finishes in
//	               milliseconds and is exactly reproducible per seed)
//	-target dist   the distributed runtime: self-hosts one stage service
//	               per application stage on loopback TCP, or connects to
//	               running cmd/stagesvc processes with -addrs
//
// Examples:
//
//	powerbench -target des -app sirius -rate 4 -duration 60s -warmup 5s
//	powerbench -target live -app nlp -rate 50 -duration 10s -timescale 0.02
//	powerbench -target des -app sirius -sweep 1,2,4,8 -duration 60s -json -
//
// The sweep mode runs every rate concurrently across goroutines, each
// against its own freshly built target, and prints one combined table —
// the §8-style load sweep in a single command. With -metrics.addr the
// run's live series (ops, errors, backlog, p99) are served on /metrics
// while the benchmark is in flight.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"powerchief"
	"powerchief/internal/app"
	"powerchief/internal/cmp"
	"powerchief/internal/core"
	"powerchief/internal/dist"
	"powerchief/internal/live"
	"powerchief/internal/loadgen"
	"powerchief/internal/sim"
	"powerchief/internal/stage"
	"powerchief/internal/telemetry"
)

type options struct {
	target    string
	appName   string
	rate      float64
	sweep     string
	arrivals  string
	duration  time.Duration
	warmup    time.Duration
	workers   int
	seed      int64
	instances string
	level     int
	cores     int
	budget    float64
	timescale float64
	policy    string
	ctlEvery  time.Duration
	qos       time.Duration
	addrs     string
	jsonOut   string
	metrics   string
	cpuProf   string
	memProf   string
}

func main() {
	var o options
	flag.StringVar(&o.target, "target", "des", "engine to drive: live, des or dist")
	flag.StringVar(&o.appName, "app", "sirius", "application: sirius, nlp or websearch")
	flag.Float64Var(&o.rate, "rate", 4, "intended arrival rate (queries/s)")
	flag.StringVar(&o.sweep, "sweep", "", "comma-separated rates to sweep concurrently (overrides -rate)")
	flag.StringVar(&o.arrivals, "arrivals", "poisson", "arrival process: poisson or constant")
	flag.DurationVar(&o.duration, "duration", 30*time.Second, "generation horizon")
	flag.DurationVar(&o.warmup, "warmup", 0, "trim ops whose intended start falls before this offset")
	flag.IntVar(&o.workers, "workers", 16, "issuing goroutines")
	flag.Int64Var(&o.seed, "seed", 7, "seed for the schedule and work draws")
	flag.StringVar(&o.instances, "instances", "", "per-stage instance counts, e.g. 1,1,2 (default: 1 each)")
	flag.IntVar(&o.level, "level", int(cmp.MidLevel), "initial DVFS level for every instance")
	flag.IntVar(&o.cores, "cores", 16, "chip size")
	flag.Float64Var(&o.budget, "budget", 0, "power budget in watts (0: derived from the initial configuration)")
	flag.Float64Var(&o.timescale, "timescale", 1, "live/dist wall compression: wall = virtual × timescale")
	flag.StringVar(&o.policy, "policy", "", "run a control policy during the load (powerchief, freq, inst, pegasus, saver; empty: static)")
	flag.DurationVar(&o.ctlEvery, "ctl.interval", 25*time.Second, "control interval in virtual time (with -policy)")
	flag.DurationVar(&o.qos, "qos", 2*time.Second, "QoS target for the pegasus/saver policies")
	flag.StringVar(&o.addrs, "addrs", "", "dist: connect to these stage services instead of self-hosting")
	flag.StringVar(&o.jsonOut, "json", "", "write the JSON summary here (\"-\" for stdout)")
	flag.StringVar(&o.metrics, "metrics.addr", "", "serve /metrics with the in-flight benchmark series")
	flag.StringVar(&o.cpuProf, "cpuprofile", "", "write a CPU profile of the whole run to this file")
	flag.StringVar(&o.memProf, "memprofile", "", "write a heap profile at exit to this file")
	flag.Parse()

	// Profiles flush in profiledRun's defers before os.Exit can fire.
	if err := profiledRun(o); err != nil {
		fmt.Fprintln(os.Stderr, "powerbench:", err)
		os.Exit(1)
	}
}

// profiledRun wraps run with the optional -cpuprofile / -memprofile capture,
// so the hot paths (ingest, windows, loadgen) can be inspected with
// `go tool pprof` without instrumenting a server.
func profiledRun(o options) error {
	if o.cpuProf != "" {
		f, err := os.Create(o.cpuProf)
		if err != nil {
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if o.memProf != "" {
		defer func() {
			f, err := os.Create(o.memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "powerbench: -memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle allocations so the heap profile is current
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "powerbench: -memprofile:", err)
			}
		}()
	}
	return run(o)
}

func run(o options) error {
	a, err := app.ByName(o.appName)
	if err != nil {
		return err
	}
	instances, err := parseInstances(o.instances, len(a.Stages))
	if err != nil {
		return err
	}
	level := cmp.Level(o.level)
	if !level.Valid() {
		return fmt.Errorf("invalid level %d (0..%d)", o.level, int(cmp.MaxLevel))
	}
	rates := []float64{o.rate}
	if o.sweep != "" {
		if rates, err = parseRates(o.sweep); err != nil {
			return err
		}
	}

	var reg *telemetry.Registry
	if o.metrics != "" {
		if len(rates) > 1 {
			return fmt.Errorf("-metrics.addr supports single-rate runs (sweep runs share metric names)")
		}
		reg = telemetry.NewRegistry()
		go func() {
			srv := &http.Server{Addr: o.metrics, Handler: telemetry.Handler(reg, nil, nil)}
			if err := srv.ListenAndServe(); err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "powerbench: metrics server:", err)
			}
		}()
		fmt.Printf("metrics on http://%s/metrics\n", o.metrics)
	}

	// One target per rate, built fresh so sweep points are independent; runs
	// proceed concurrently across goroutines (the §8 parallel load sweep).
	sums := make([]loadgen.Summary, len(rates))
	errs := make([]error, len(rates))
	var wg sync.WaitGroup
	for i, rate := range rates {
		wg.Add(1)
		go func(i int, rate float64) {
			defer wg.Done()
			sums[i], errs[i] = runOne(o, a, instances, level, rate, reg)
		}(i, rate)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("rate %.1f/s: %w", rates[i], err)
		}
	}
	sort.Slice(sums, func(i, j int) bool { return sums[i].RateQPS < sums[j].RateQPS })

	if err := loadgen.WriteTable(os.Stdout, sums...); err != nil {
		return err
	}
	return writeJSON(o.jsonOut, sums)
}

// runOne builds the target for one load point and runs the benchmark.
func runOne(o options, a app.App, instances []int, level cmp.Level, rate float64, reg *telemetry.Registry) (loadgen.Summary, error) {
	target, err := buildTarget(o, a, instances, level)
	if err != nil {
		return loadgen.Summary{}, err
	}
	defer target.Close()

	// Optional control plane: the policy adjusts the deployment while the
	// benchmark load runs, through the target's engine-appropriate clock.
	if o.policy != "" && o.policy != "static" {
		mk, ok := powerchief.PolicyByName(o.policy)
		if !ok {
			mk, ok = powerchief.PolicyByNameQoS(o.policy, o.qos)
		}
		if !ok {
			return loadgen.Summary{}, fmt.Errorf("unknown policy %q", o.policy)
		}
		ca, ok := target.(loadgen.ControlAttacher)
		if !ok {
			return loadgen.Summary{}, fmt.Errorf("target %s cannot attach a control loop", target.Name())
		}
		loop, err := ca.AttachControl(loadgen.ControlOptions{
			Policy:   mk(),
			Interval: o.ctlEvery,
			Scale:    o.timescale,
		})
		if err != nil {
			return loadgen.Summary{}, err
		}
		defer func() {
			loop.Stop()
			fmt.Printf("control[%s %.1f/s]: %d adjusts, boosts %v\n",
				o.policy, rate, loop.Total(), boostTally(loop.Boosts()))
		}()
	}

	sched, err := loadgen.ParseSchedule(o.arrivals, rate, o.seed)
	if err != nil {
		return loadgen.Summary{}, err
	}
	rngBranches := make([]int, len(instances))
	copy(rngBranches, instances)
	res, err := loadgen.Run(target, loadgen.Options{
		Schedule: sched,
		Duration: o.duration,
		Warmup:   o.warmup,
		Workers:  o.workers,
		Seed:     o.seed,
		DrawWork: func(rng *rand.Rand) [][]time.Duration { return a.DrawWork(rng, rngBranches) },
		Metrics:  reg,
	})
	if err != nil {
		return loadgen.Summary{}, err
	}
	return loadgen.Summarize(res), nil
}

// buildTarget assembles the engine named by -target.
func buildTarget(o options, a app.App, instances []int, level cmp.Level) (loadgen.Target, error) {
	switch o.target {
	case "live":
		cluster, err := newLiveCluster(o, a, instances, level)
		if err != nil {
			return nil, err
		}
		return loadgen.NewLiveTarget(cluster), nil

	case "des":
		eng := sim.NewEngine()
		model := cmp.DefaultModel()
		specs, err := a.Specs(instances, level)
		if err != nil {
			return nil, err
		}
		chip := cmp.NewChip(o.cores, model, budgetFor(o, model, instances, level))
		sys, err := stage.NewSystem(eng, chip, specs)
		if err != nil {
			return nil, err
		}
		return loadgen.NewDESTarget(sys), nil

	case "dist":
		return newDistTarget(o, a, instances, level)

	default:
		return nil, fmt.Errorf("unknown target %q (want live, des or dist)", o.target)
	}
}

func budgetFor(o options, model cmp.PowerModel, instances []int, level cmp.Level) cmp.Watts {
	if o.budget > 0 {
		return cmp.Watts(o.budget)
	}
	var b cmp.Watts
	for _, n := range instances {
		b += cmp.Watts(n) * model.Power(level)
	}
	return b
}

func newLiveCluster(o options, a app.App, instances []int, level cmp.Level) (*live.Cluster, error) {
	model := cmp.DefaultModel()
	specs := make([]live.StageSpec, len(a.Stages))
	for i, sp := range a.Stages {
		specs[i] = live.StageSpec{
			Name:      sp.Name,
			Kind:      sp.Kind,
			Profile:   sp.Profile(),
			Instances: instances[i],
			Level:     level,
		}
	}
	return live.NewCluster(live.Options{
		Cores:     o.cores,
		Model:     model,
		Budget:    budgetFor(o, model, instances, level),
		TimeScale: o.timescale,
	}, specs)
}

// newDistTarget connects to -addrs, or self-hosts one stage service per
// application stage on loopback TCP — the examples/distributed topology.
func newDistTarget(o options, a app.App, instances []int, level cmp.Level) (loadgen.Target, error) {
	var addrs []string
	var owned []*dist.StageService
	if o.addrs != "" {
		addrs = strings.Split(o.addrs, ",")
	} else {
		for i, sp := range a.Stages {
			svc, err := dist.NewStageService(dist.StageOptions{
				Name:      sp.Name,
				Kind:      sp.Kind,
				MemBound:  sp.MemBound,
				Instances: instances[i],
				Level:     level,
				Cores:     o.cores,
				TimeScale: o.timescale,
			})
			if err != nil {
				closeAll(owned)
				return nil, err
			}
			owned = append(owned, svc)
			addr, err := svc.Listen("127.0.0.1:0")
			if err != nil {
				closeAll(owned)
				return nil, err
			}
			addrs = append(addrs, addr)
		}
	}
	model := cmp.DefaultModel()
	budget := budgetFor(o, model, instances, level)
	center, err := dist.NewCenter(budget, 25*time.Second, addrs)
	if err != nil {
		closeAll(owned)
		return nil, err
	}
	t := loadgen.NewDistTarget(center)
	t.OwnsCenter = true
	return &distDeployment{DistTarget: t, services: owned}, nil
}

// distDeployment tears the self-hosted stage services down with the target.
type distDeployment struct {
	*loadgen.DistTarget
	services []*dist.StageService
}

func (d *distDeployment) Close() error {
	err := d.DistTarget.Close()
	closeAll(d.services)
	return err
}

func closeAll(svcs []*dist.StageService) {
	for _, svc := range svcs {
		svc.Close()
	}
}

func parseInstances(s string, stages int) ([]int, error) {
	out := make([]int, stages)
	for i := range out {
		out[i] = 1
	}
	if s == "" {
		return out, nil
	}
	parts := strings.Split(s, ",")
	if len(parts) != stages {
		return nil, fmt.Errorf("-instances names %d stages, application has %d", len(parts), stages)
	}
	for i, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad instance count %q", p)
		}
		out[i] = n
	}
	return out, nil
}

// boostTally renders the loop's per-kind decision counts in a fixed order.
func boostTally(b map[core.BoostKind]int) string {
	kinds := []core.BoostKind{core.BoostFrequency, core.BoostInstance, core.BoostNone}
	parts := make([]string, 0, len(kinds))
	for _, k := range kinds {
		if n := b[k]; n > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", k, n))
		}
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, " ")
}

func parseRates(s string) ([]float64, error) {
	var out []float64
	for _, p := range strings.Split(s, ",") {
		r, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil || r <= 0 {
			return nil, fmt.Errorf("bad sweep rate %q", p)
		}
		out = append(out, r)
	}
	return out, nil
}

func writeJSON(path string, sums []loadgen.Summary) error {
	if path == "" {
		return nil
	}
	var v any = sums
	if len(sums) == 1 {
		v = sums[0]
	}
	payload, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	payload = append(payload, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(payload)
		return err
	}
	return os.WriteFile(path, payload, 0o644)
}
