package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"powerchief/internal/replay"
)

// runReplay implements `powerbench replay`: the offline policy arena. It
// loads a decision trace (recorded by a harness run or a -trace.out
// benchmark), replays every requested policy against the recorded snapshots
// in shadow mode, and prints a policy-vs-policy projected tail-latency
// table. The recording policy is always replayed as the determinism gate:
// it must reproduce its recorded plans byte-identically.
//
// Exit codes: 0 gate passed, 1 determinism gate failed, 2 unreadable trace
// or unknown policy.
func runReplay(args []string) int {
	fs := flag.NewFlagSet("powerbench replay", flag.ExitOnError)
	tracePath := fs.String("trace", "", "decision trace (.jsonl or .jsonl.gz)")
	policyList := fs.String("policy", "", "comma-separated arena policies to replay (default: the trace's recording policy)")
	qos := fs.Duration("qos", 0, "QoS target for the pegasus/saver candidates")
	jsonOut := fs.String("json", "", "write the comparison artifact here (\"-\" for stdout)")
	noGate := fs.Bool("nogate", false, "skip the determinism gate (for traces whose recording policy this build cannot reproduce)")
	list := fs.Bool("list", false, "list the registered arena policies and exit")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: powerbench replay -trace t.jsonl.gz [-policy powerchief,fairness,marginal] [-json out.json]")
		fs.PrintDefaults()
	}
	_ = fs.Parse(args)
	if *list {
		fmt.Println(strings.Join(replay.PolicyNames(), "\n"))
		return 0
	}
	if *tracePath == "" {
		fs.Usage()
		return 2
	}

	t, err := replay.ReadFile(*tracePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "powerbench replay:", err)
		return 2
	}

	names := []string{t.Header.Policy}
	if *policyList != "" {
		names = nil
		for _, p := range strings.Split(*policyList, ",") {
			if p = strings.TrimSpace(p); p != "" {
				names = append(names, p)
			}
		}
	}
	// The recording policy always replays: its score is the determinism gate.
	gateIdx := -1
	for i, n := range names {
		if n == t.Header.Policy {
			gateIdx = i
			break
		}
	}
	if gateIdx < 0 && !*noGate {
		names = append([]string{t.Header.Policy}, names...)
		gateIdx = 0
	}

	out, err := replay.Run(t, names, *qos)
	if err != nil {
		fmt.Fprintln(os.Stderr, "powerbench replay:", err)
		return 2
	}

	fmt.Printf("trace: %s seed=%d policy=%s frames=%d span=%v\n",
		t.Header.Scenario, t.Header.Seed, t.Header.Policy, len(t.Frames), t.Duration())
	fmt.Printf("%-22s %7s %7s %9s %5s %14s %14s %14s\n",
		"POLICY", "FRAMES", "BOOSTS", "MATCH", "DET", "MEAN-PROJ(ms)", "P99-PROJ(ms)", "MAX-PROJ(ms)")
	for _, s := range out.Policies {
		det := "-"
		if s.Policy == t.Header.Policy {
			det = "no"
			if s.Deterministic {
				det = "yes"
			}
		}
		fmt.Printf("%-22s %7d %7d %5d/%-3d %5s %14.2f %14.2f %14.2f\n",
			s.Policy, s.Frames, s.Boosts, s.PlanMatches, s.Frames, det,
			s.MeanProjectedMS, s.P99ProjectedMS, s.MaxProjectedMS)
	}

	if *jsonOut != "" {
		payload, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "powerbench replay:", err)
			return 2
		}
		payload = append(payload, '\n')
		if *jsonOut == "-" {
			os.Stdout.Write(payload)
		} else if err := os.WriteFile(*jsonOut, payload, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "powerbench replay:", err)
			return 2
		}
	}

	if !*noGate && gateIdx >= 0 {
		gate := out.Policies[gateIdx]
		if !gate.Deterministic {
			fmt.Printf("FAIL: determinism gate: %s reproduced %d/%d recorded plans\n",
				gate.Policy, gate.PlanMatches, gate.Frames)
			return 1
		}
		fmt.Printf("OK: determinism gate: %s reproduced all %d recorded plans byte-identically\n",
			gate.Policy, gate.Frames)
	}
	return 0
}

// artifactKind probes a JSON artifact for its "kind" tag, so powerbench cmp
// can dispatch replay/arbiter artifacts away from the benchmark-summary
// comparison. Empty means an untagged (summary) artifact or unreadable file
// — the summary path reports those errors itself.
func artifactKind(path string) string {
	payload, err := os.ReadFile(path)
	if err != nil {
		return ""
	}
	var probe struct {
		Kind string `json:"kind"`
	}
	if err := json.Unmarshal(payload, &probe); err != nil {
		return ""
	}
	return probe.Kind
}

// cmpReplay compares two replay comparison artifacts for `powerbench cmp`.
// Trace-provenance drift (schema version, seed, scenario, recording policy,
// build revision) warns instead of exiting 2: replaying yesterday's trace
// against today's build is the point of the arena, it just has to be
// visible. Regressions (exit 1): a policy losing determinism, disappearing
// from the new artifact, or its projected p99 worsening past the threshold.
func cmpReplay(oldPath, newPath string, maxP99Pct float64) int {
	load := func(path string) (*replay.Comparison, error) {
		payload, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		var c replay.Comparison
		if err := json.Unmarshal(payload, &c); err != nil {
			return nil, fmt.Errorf("%s: not a replay artifact: %w", path, err)
		}
		if c.Kind != replay.ArtifactKind {
			return nil, fmt.Errorf("%s: artifact kind %q, want %q", path, c.Kind, replay.ArtifactKind)
		}
		return &c, nil
	}
	oldC, err := load(oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "powerbench cmp:", err)
		return 2
	}
	newC, err := load(newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "powerbench cmp:", err)
		return 2
	}

	warn := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "powerbench cmp: warning: "+format+"\n", args...)
	}
	if oldC.Trace.Version != newC.Trace.Version {
		warn("trace schema drift: v%d vs v%d", oldC.Trace.Version, newC.Trace.Version)
	}
	if oldC.Trace.Seed != newC.Trace.Seed {
		warn("trace seed drift: %d vs %d", oldC.Trace.Seed, newC.Trace.Seed)
	}
	if oldC.Trace.Scenario != newC.Trace.Scenario {
		warn("trace scenario drift: %q vs %q", oldC.Trace.Scenario, newC.Trace.Scenario)
	}
	if oldC.Trace.Policy != newC.Trace.Policy {
		warn("recording policy drift: %q vs %q", oldC.Trace.Policy, newC.Trace.Policy)
	}
	if o, n := oldC.Trace.Provenance, newC.Trace.Provenance; o.GitRevision != n.GitRevision {
		warn("build revision drift: %s vs %s", o.GitRevision, n.GitRevision)
	}
	if oldC.Frames != newC.Frames {
		warn("frame count drift: %d vs %d", oldC.Frames, newC.Frames)
	}

	if maxP99Pct == 0 {
		maxP99Pct = 25
	}
	oldBy := make(map[string]replay.PolicyScore, len(oldC.Policies))
	for _, s := range oldC.Policies {
		oldBy[s.Policy] = s
	}
	failed := false
	seen := make(map[string]bool, len(newC.Policies))
	for _, n := range newC.Policies {
		seen[n.Policy] = true
		o, ok := oldBy[n.Policy]
		if !ok {
			warn("policy %s is new in %s", n.Policy, newPath)
			continue
		}
		if o.Deterministic && !n.Deterministic {
			failed = true
			fmt.Printf("REGRESSION [%s] determinism lost: %d/%d plans reproduced\n",
				n.Policy, n.PlanMatches, n.Frames)
		}
		if maxP99Pct > 0 && o.P99ProjectedMS > 0 {
			pct := (n.P99ProjectedMS - o.P99ProjectedMS) / o.P99ProjectedMS * 100
			if pct > maxP99Pct {
				failed = true
				fmt.Printf("REGRESSION [%s] projected p99 %.2fms -> %.2fms (+%.1f%% > %.1f%%)\n",
					n.Policy, o.P99ProjectedMS, n.P99ProjectedMS, pct, maxP99Pct)
			}
		}
	}
	for _, o := range oldC.Policies {
		if !seen[o.Policy] {
			failed = true
			fmt.Printf("REGRESSION [%s] policy missing from %s\n", o.Policy, newPath)
		}
	}
	if failed {
		fmt.Println("FAIL")
		return 1
	}
	fmt.Printf("OK: %d replay policies within thresholds\n", len(newC.Policies))
	return 0
}
