package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"powerchief/internal/loadgen"
	"powerchief/internal/stats"
)

// writeSummary writes one summary artifact the way `-json` does.
func writeSummary(t *testing.T, dir, name string, s loadgen.Summary) string {
	t.Helper()
	payload, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, payload, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func cliSummary(t *testing.T, inflateTail float64) loadgen.Summary {
	t.Helper()
	h := stats.NewHistogram(1.05)
	for i := 0; i < 5000; i++ {
		d := time.Duration(1+i%80) * time.Millisecond
		if i%100 == 0 {
			d = time.Duration(float64(400*time.Millisecond) * inflateTail)
		}
		h.Observe(d)
	}
	d := h.Digest()
	q, err := loadgen.QuantilesFromDigest(d)
	if err != nil {
		t.Fatal(err)
	}
	return loadgen.Summary{
		Target: "des", Schedule: "poisson", RateQPS: 10, Duration: "30s",
		Workers: 16, Seed: 7, Agents: 1, Issued: 5000, Completed: 5000,
		WallMS: 30000, AchievedQPS: 5000 / 30.0,
		LatencyMS: q, LatencyHist: d,
	}
}

// TestRunCmpExitCodes pins the gate's contract: 0 on self-comparison, 1 on
// an injected 2x p99 regression, 2 when the runs are not comparable.
func TestRunCmpExitCodes(t *testing.T) {
	dir := t.TempDir()
	base := writeSummary(t, dir, "base.json", cliSummary(t, 1))
	regressed := writeSummary(t, dir, "regressed.json", cliSummary(t, 2))

	other := cliSummary(t, 1)
	other.Seed = 99
	foreign := writeSummary(t, dir, "foreign.json", other)

	if code := runCmp([]string{base, base}); code != 0 {
		t.Fatalf("self-comparison exited %d, want 0", code)
	}
	if code := runCmp([]string{base, regressed}); code != 1 {
		t.Fatalf("2x p99 regression exited %d, want 1", code)
	}
	if code := runCmp([]string{base, foreign}); code != 2 {
		t.Fatalf("incomparable runs exited %d, want 2", code)
	}
	if code := runCmp([]string{"-force", base, foreign}); code != 0 {
		t.Fatalf("forced comparison exited %d, want 0", code)
	}
	if code := runCmp([]string{base, filepath.Join(dir, "missing.json")}); code != 2 {
		t.Fatalf("missing file exited %d, want 2", code)
	}
}
