// Command nodesvc runs one node of a federated fleet: a synthetic power
// domain exposed to the fleet coordinator over the framework's RPC. The
// node reports its bottleneck metric and accepts epoch-fenced budget grants
// (DESIGN.md §5h).
//
//	nodesvc -name node-a -load 1.5 -addr :7201
//
// Fault injection mirrors stagesvc: -chaos routes the service through the
// dist.ChaosProxy harness so an operator can kill, hang or slow a live node
// and watch the coordinator reclaim and re-admit its budget:
//
//	nodesvc -name node-b -load 2 -addr :7202 -chaos hang
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"powerchief/internal/cmp"
	"powerchief/internal/dist"
	"powerchief/internal/fleet"
	"powerchief/internal/telemetry"
)

func main() {
	var (
		name = flag.String("name", "", "node name reported to the coordinator")
		load = flag.Float64("load", 1, "work intensity (1.0 ≈ one saturated max-level core)")
		addr = flag.String("addr", ":0", "listen address")

		// Delta-batched statistics ingest: completions folded locally ride
		// the heartbeat reports to the coordinator (zero extra RPCs).
		ingestBatch = flag.Int("ingest.batch", 0, "enable delta-batched stat ingest with this memory bound in completions (0: off)")
		ingestIvl   = flag.Duration("ingest.interval", 0, "delta accumulator interval (0: stats default; flush cadence is the heartbeat)")
		ingestRate  = flag.Float64("ingest.rate", 100, "synthetic completions observed per second while ingest is enabled")

		// Fault injection (chaos harness).
		chaos      = flag.String("chaos", "", "serve through the fault-injection proxy: pass, hang, slow or deny")
		chaosDelay = flag.Duration("chaosdelay", 100*time.Millisecond, "per-reply delay in -chaos slow mode")

		// Telemetry.
		metricsAddr = flag.String("metrics.addr", "", "serve /metrics on this address (empty disables)")
	)
	flag.Parse()
	if *name == "" {
		fatal(fmt.Errorf("-name is required"))
	}

	backend := fleet.NewSynthBackend(*load, 0)
	svc, err := fleet.NewNodeService(*name, backend)
	if err != nil {
		fatal(err)
	}
	var proxy *dist.ChaosProxy
	bound := ""
	if *chaos != "" {
		mode, err := parseChaosMode(*chaos)
		if err != nil {
			fatal(err)
		}
		// The service listens privately; the advertised address is the chaos
		// proxy in front of it.
		private, err := svc.Listen("127.0.0.1:0")
		if err != nil {
			fatal(err)
		}
		proxy = dist.NewChaosProxy(private)
		proxy.SetMode(mode)
		proxy.SetDelay(*chaosDelay)
		if bound, err = proxy.Listen(*addr); err != nil {
			fatal(err)
		}
		fmt.Printf("node %s chaos mode %s (delay %v), backend %s\n", *name, mode, *chaosDelay, private)
	} else {
		if bound, err = svc.Listen(*addr); err != nil {
			fatal(err)
		}
	}
	fmt.Printf("node %s serving on %s (load %.2f)\n", *name, bound, *load)

	// Synthetic observation feed: the SynthBackend has no real query stream,
	// so each tick folds one completion whose latency is the node's current
	// bottleneck metric. The batch is shipped on the next heartbeat report —
	// the fleet-wide latency histogram on the coordinator comes from here.
	if *ingestBatch > 0 {
		svc.EnableIngest(*ingestBatch, *ingestIvl)
		rate := *ingestRate
		if rate <= 0 {
			rate = 100
		}
		go func() {
			ticker := time.NewTicker(time.Duration(float64(time.Second) / rate))
			defer ticker.Stop()
			for range ticker.C {
				svc.Observe(backend.Metric())
			}
		}()
		fmt.Printf("node %s delta ingest enabled (batch %d, %.0f synthetic completions/s)\n",
			*name, *ingestBatch, rate)
	}

	if *metricsAddr != "" {
		reg := telemetry.NewRegistry()
		reg.GaugeFunc("powerchief_node_budget_watts", "last granted budget", func() float64 {
			return float64(backend.Budget())
		})
		reg.GaugeFunc("powerchief_node_draw_watts", "modelled local draw", func() float64 {
			return float64(backend.Draw())
		})
		reg.GaugeFunc("powerchief_node_epoch", "last accepted grant epoch (fencing watermark)", func() float64 {
			return float64(svc.Epoch())
		})
		reg.CounterFunc("powerchief_node_grants_total", "grants accepted from the coordinator", func() float64 {
			return float64(svc.Grants())
		})
		reg.GaugeFunc("powerchief_node_ingest_pending_queries", "completions folded but not yet shipped on a heartbeat", func() float64 {
			return float64(svc.IngestPending())
		})
		srv, err := telemetry.Serve(*metricsAddr, telemetry.Handler(reg, nil, nil))
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		fmt.Printf("node %s telemetry on http://%s/metrics\n", *name, srv.Addr)
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	if proxy != nil {
		proxy.Close()
	}
	svc.Close()
	fmt.Printf("node %s stopped at %.2fW (epoch %d, %d grants)\n",
		*name, float64(cmp.Watts(backend.Budget())), svc.Epoch(), svc.Grants())
}

func parseChaosMode(s string) (dist.ChaosMode, error) {
	switch s {
	case "pass":
		return dist.ChaosPass, nil
	case "hang":
		return dist.ChaosHang, nil
	case "slow":
		return dist.ChaosSlow, nil
	case "deny":
		return dist.ChaosDeny, nil
	}
	return 0, fmt.Errorf("unknown -chaos mode %q", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nodesvc:", err)
	os.Exit(1)
}
