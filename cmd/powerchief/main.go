// Command powerchief runs one scenario of the reproduction on the
// deterministic discrete-event engine and prints its metrics.
//
// Examples:
//
//	powerchief -app sirius -policy powerchief -load high
//	powerchief -app nlp -policy inst-boost -load medium -duration 900s
//	powerchief -app websearch -policy saver -qos 250ms -instances 10,1 -level max
//	powerchief -app sirius -policy baseline -load high -trace trace.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"powerchief"
	"powerchief/internal/cmp"
	"powerchief/internal/config"
	"powerchief/internal/harness"
	"powerchief/internal/workload"
)

func main() {
	var (
		appName    = flag.String("app", "sirius", "application: sirius, nlp, websearch")
		policy     = flag.String("policy", "powerchief", "policy: baseline, freq-boost, inst-boost, powerchief, pegasus, saver")
		load       = flag.String("load", "medium", "load level: low, medium, high")
		budget     = flag.Float64("budget", 13.56, "power budget in watts (0 = derive from initial configuration)")
		duration   = flag.Duration("duration", 900*time.Second, "load generation horizon (virtual time)")
		interval   = flag.Duration("interval", 25*time.Second, "control adjust interval")
		qos        = flag.Duration("qos", 2*time.Second, "QoS target for pegasus/saver policies")
		seed       = flag.Int64("seed", 1, "random seed")
		levelStr   = flag.String("level", "mid", "initial frequency: min, mid, max, or GHz value like 1.8")
		instances  = flag.String("instances", "", "per-stage instance counts, e.g. 4,2,5 (default: 1 per stage)")
		tracePath  = flag.String("trace", "", "write the run's time series as CSV to this file")
		decisions  = flag.String("decisions", "", "write the controller's decision audit timeline to this file (\"-\" for stdout)")
		configPath = flag.String("config", "", "load the experiment from a JSON file (overrides other flags)")
		saveConfig = flag.String("save-config", "", "write the experiment implied by the flags as JSON and exit")
	)
	flag.Parse()

	if *configPath != "" {
		exp, err := config.Load(*configPath)
		if err != nil {
			fatal(err)
		}
		sc, err := harness.FromConfig(exp)
		if err != nil {
			fatal(err)
		}
		res, err := harness.Run(sc)
		if err != nil {
			fatal(err)
		}
		if err := harness.WriteResult(os.Stdout, res); err != nil {
			fatal(err)
		}
		return
	}
	if *saveConfig != "" {
		exp := config.MitigationSetup(*appName, *policy, *load, *seed)
		exp.BudgetWatts = *budget
		exp.Duration = config.Duration(*duration)
		exp.AdjustInterval = config.Duration(*interval)
		if *policy == "pegasus" || *policy == "saver" {
			exp.QoS = config.Duration(*qos)
		}
		if err := exp.Validate(); err != nil {
			fatal(err)
		}
		if err := exp.Save(*saveConfig); err != nil {
			fatal(err)
		}
		fmt.Printf("experiment written to %s\n", *saveConfig)
		return
	}

	a, err := powerchief.AppByName(*appName)
	if err != nil {
		fatal(err)
	}
	lvl, err := parseLevel(*levelStr)
	if err != nil {
		fatal(err)
	}
	loadLevel, err := workload.ParseLevel(*load)
	if err != nil {
		fatal(err)
	}

	var counts []int
	if *instances != "" {
		for _, part := range strings.Split(*instances, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n < 1 {
				fatal(fmt.Errorf("bad -instances entry %q", part))
			}
			counts = append(counts, n)
		}
	}

	mk, ok := powerchief.PolicyByName(*policy)
	if !ok {
		mk, ok = powerchief.PolicyByNameQoS(*policy, *qos)
	}
	if !ok {
		fatal(fmt.Errorf("unknown policy %q", *policy))
	}

	sc := powerchief.Scenario{
		Name:           fmt.Sprintf("%s-%s-%s", *appName, *policy, *load),
		App:            a,
		Instances:      counts,
		Level:          lvl,
		Budget:         powerchief.Watts(*budget),
		Policy:         mk,
		AdjustInterval: *interval,
		Source:         powerchief.ConstantLoad(loadLevel),
		Duration:       *duration,
		Seed:           *seed,
	}
	var audit *powerchief.AuditLog
	if *decisions != "" {
		audit = powerchief.NewAuditLog(0)
		sc.Audit = audit
	}
	res, err := powerchief.Run(sc)
	if err != nil {
		fatal(err)
	}
	if err := powerchief.WriteResult(os.Stdout, res); err != nil {
		fatal(err)
	}
	if audit != nil {
		out := os.Stdout
		if *decisions != "-" {
			f, err := os.Create(*decisions)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			out = f
		}
		if err := powerchief.WriteDecisions(out, audit.Events()); err != nil {
			fatal(err)
		}
		if *decisions != "-" {
			fmt.Printf("decision timeline written to %s (%d events)\n", *decisions, audit.Len())
		}
	}
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := harness.WriteRuntimeTrace(f, res); err != nil {
			fatal(err)
		}
		fmt.Printf("trace written to %s\n", *tracePath)
	}
}

func parseLevel(s string) (cmp.Level, error) {
	switch s {
	case "min":
		return 0, nil
	case "mid":
		return cmp.MidLevel, nil
	case "max":
		return cmp.MaxLevel, nil
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad -level %q (want min, mid, max or GHz)", s)
	}
	return cmp.LevelOf(cmp.GHz(f)), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "powerchief:", err)
	os.Exit(1)
}
