// Command stagesvc runs one stage service of the distributed prototype: a
// pool of service instances for a single processing stage, exposed to the
// Command Center over the framework's RPC (§7 of the paper).
//
//	stagesvc -name ASR -membound 0.15 -instances 1 -level mid -addr :7101
//	stagesvc -name QA  -membound 0.25 -instances 2 -level mid -addr :7103
//
// Pass -timescale 0.01 to compress simulated work 100× for demos.
//
// Fault injection for chaos testing the Command Center's degraded-mode power
// control: -chaos routes the service through the dist.ChaosProxy harness, so
// an operator can make a live stage hang (accept-but-never-reply), slow its
// replies, or refuse connections, then restore it:
//
//	stagesvc -name QA -membound 0.25 -addr :7103 -chaos slow -chaosdelay 200ms
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"powerchief/internal/cmp"
	"powerchief/internal/dist"
	"powerchief/internal/stage"
	"powerchief/internal/telemetry"
)

func main() {
	var (
		name      = flag.String("name", "", "stage name, e.g. ASR")
		kind      = flag.String("kind", "pipeline", "stage organization: pipeline or fanout")
		memBound  = flag.Float64("membound", 0.2, "memory-bound fraction of the service")
		instances = flag.Int("instances", 1, "initial instance count")
		levelStr  = flag.String("level", "mid", "initial frequency: min, mid, max or GHz")
		addr      = flag.String("addr", ":0", "listen address")
		cores     = flag.Int("cores", 16, "cores available to this stage service")
		timeScale = flag.Float64("timescale", 1, "virtual-to-wall time scale for simulated work")

		// Delta-batched statistics ingest: the center negotiates batching via
		// the stage.ingest RPC; these bounds clamp whatever it asks for.
		ingestBatch = flag.Int("ingest.batch", 0, "max completions per negotiated stat delta (0: accept the center's choice)")
		ingestIvl   = flag.Duration("ingest.interval", 0, "max negotiated delta flush interval (0: accept the center's choice)")

		// Fault injection (chaos harness).
		chaos      = flag.String("chaos", "", "serve through the fault-injection proxy: pass, hang, slow or deny")
		chaosDelay = flag.Duration("chaosdelay", 100*time.Millisecond, "per-reply delay in -chaos slow mode")

		// Telemetry.
		metricsAddr = flag.String("metrics.addr", "", "serve /metrics and /debug/trace on this address (empty disables)")
		traceSample = flag.Int("trace.sample", 0, "keep every Nth locally completed query trace (0 disables tracing)")
		traceDepth  = flag.Int("trace.depth", 0, "max per-query records materialized into spans (0 = default)")
	)
	flag.Parse()
	if *name == "" {
		fatal(fmt.Errorf("-name is required"))
	}
	k := stage.Pipeline
	switch *kind {
	case "pipeline":
	case "fanout":
		k = stage.FanOut
	default:
		fatal(fmt.Errorf("unknown -kind %q", *kind))
	}
	lvl, err := parseLevel(*levelStr)
	if err != nil {
		fatal(err)
	}
	svc, err := dist.NewStageService(dist.StageOptions{
		Name:      *name,
		Kind:      k,
		MemBound:  *memBound,
		Instances: *instances,
		Level:     lvl,
		Cores:     *cores,
		TimeScale: *timeScale,

		IngestMaxBatch:    *ingestBatch,
		IngestMaxInterval: *ingestIvl,
	})
	if err != nil {
		fatal(err)
	}
	var proxy *dist.ChaosProxy
	bound := ""
	if *chaos != "" {
		mode, err := parseChaosMode(*chaos)
		if err != nil {
			fatal(err)
		}
		// The service listens privately; the advertised address is the
		// chaos proxy in front of it.
		backend, err := svc.Listen("127.0.0.1:0")
		if err != nil {
			fatal(err)
		}
		proxy = dist.NewChaosProxy(backend)
		proxy.SetMode(mode)
		proxy.SetDelay(*chaosDelay)
		if bound, err = proxy.Listen(*addr); err != nil {
			fatal(err)
		}
		fmt.Printf("stage %s chaos mode %s (delay %v), backend %s\n", *name, mode, *chaosDelay, backend)
	} else {
		if bound, err = svc.Listen(*addr); err != nil {
			fatal(err)
		}
	}
	fmt.Printf("stage %s serving on %s (%d instances @ %v)\n", *name, bound, *instances, lvl)

	if *metricsAddr != "" {
		cluster := svc.Cluster()
		var tracer *telemetry.Tracer
		if *traceSample > 0 {
			tracer = telemetry.NewTracer(telemetry.TracerOptions{Sample: *traceSample, Depth: *traceDepth})
			cluster.OnComplete(tracer.ObserveQuery)
		}
		reg := telemetry.NewRegistry()
		reg.GaugeFunc("powerchief_stage_power_draw_watts", "local modelled draw", func() float64 {
			return float64(cluster.Draw())
		})
		reg.CounterFunc("powerchief_stage_queries_submitted_total", "queries accepted by this stage", func() float64 {
			return float64(cluster.Submitted())
		})
		reg.CounterFunc("powerchief_stage_queries_completed_total", "queries served by this stage", func() float64 {
			return float64(cluster.Completed())
		})
		// Delta-ingest state: whether a center negotiated batching, flushes
		// shipped, and the unflushed backlog (the at-risk window if this
		// process dies before the next flush).
		reg.GaugeFunc("powerchief_stage_ingest_enabled", "1 when delta-batched stat ingest is negotiated", func() float64 {
			on, _, _, _ := svc.IngestStats()
			if on {
				return 1
			}
			return 0
		})
		reg.CounterFunc("powerchief_stage_ingest_flushes_total", "stat deltas flushed to the center", func() float64 {
			_, flushes, _, _ := svc.IngestStats()
			return float64(flushes)
		})
		reg.GaugeFunc("powerchief_stage_ingest_pending_queries", "completions folded but not yet flushed", func() float64 {
			_, _, pending, _ := svc.IngestStats()
			return float64(pending)
		})
		srv, err := telemetry.Serve(*metricsAddr, telemetry.Handler(reg, nil, tracer))
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		fmt.Printf("stage %s telemetry on http://%s/metrics\n", *name, srv.Addr)
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	if proxy != nil {
		proxy.Close()
	}
	svc.Close()
	fmt.Printf("stage %s stopped\n", *name)
}

func parseChaosMode(s string) (dist.ChaosMode, error) {
	switch s {
	case "pass":
		return dist.ChaosPass, nil
	case "hang":
		return dist.ChaosHang, nil
	case "slow":
		return dist.ChaosSlow, nil
	case "deny":
		return dist.ChaosDeny, nil
	}
	return 0, fmt.Errorf("unknown -chaos mode %q", s)
}

func parseLevel(s string) (cmp.Level, error) {
	switch s {
	case "min":
		return 0, nil
	case "mid":
		return cmp.MidLevel, nil
	case "max":
		return cmp.MaxLevel, nil
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad -level %q", s)
	}
	return cmp.LevelOf(cmp.GHz(f)), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "stagesvc:", err)
	os.Exit(1)
}
