// Command stagesvc runs one stage service of the distributed prototype: a
// pool of service instances for a single processing stage, exposed to the
// Command Center over the framework's RPC (§7 of the paper).
//
//	stagesvc -name ASR -membound 0.15 -instances 1 -level mid -addr :7101
//	stagesvc -name QA  -membound 0.25 -instances 2 -level mid -addr :7103
//
// Pass -timescale 0.01 to compress simulated work 100× for demos.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"syscall"

	"powerchief/internal/cmp"
	"powerchief/internal/dist"
	"powerchief/internal/stage"
)

func main() {
	var (
		name      = flag.String("name", "", "stage name, e.g. ASR")
		kind      = flag.String("kind", "pipeline", "stage organization: pipeline or fanout")
		memBound  = flag.Float64("membound", 0.2, "memory-bound fraction of the service")
		instances = flag.Int("instances", 1, "initial instance count")
		levelStr  = flag.String("level", "mid", "initial frequency: min, mid, max or GHz")
		addr      = flag.String("addr", ":0", "listen address")
		cores     = flag.Int("cores", 16, "cores available to this stage service")
		timeScale = flag.Float64("timescale", 1, "virtual-to-wall time scale for simulated work")
	)
	flag.Parse()
	if *name == "" {
		fatal(fmt.Errorf("-name is required"))
	}
	k := stage.Pipeline
	switch *kind {
	case "pipeline":
	case "fanout":
		k = stage.FanOut
	default:
		fatal(fmt.Errorf("unknown -kind %q", *kind))
	}
	lvl, err := parseLevel(*levelStr)
	if err != nil {
		fatal(err)
	}
	svc, err := dist.NewStageService(dist.StageOptions{
		Name:      *name,
		Kind:      k,
		MemBound:  *memBound,
		Instances: *instances,
		Level:     lvl,
		Cores:     *cores,
		TimeScale: *timeScale,
	})
	if err != nil {
		fatal(err)
	}
	bound, err := svc.Listen(*addr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("stage %s serving on %s (%d instances @ %v)\n", *name, bound, *instances, lvl)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	svc.Close()
	fmt.Printf("stage %s stopped\n", *name)
}

func parseLevel(s string) (cmp.Level, error) {
	switch s {
	case "min":
		return 0, nil
	case "mid":
		return cmp.MidLevel, nil
	case "max":
		return cmp.MaxLevel, nil
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad -level %q", s)
	}
	return cmp.LevelOf(cmp.GHz(f)), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "stagesvc:", err)
	os.Exit(1)
}
