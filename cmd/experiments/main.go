// Command experiments regenerates every table and figure of the paper's
// evaluation section (§8) on the discrete-event engine and writes the
// results under -out (default ./results):
//
//	figure2.txt        normalized latency when boosting single Sirius stages
//	figure4.txt        freq vs inst boosting at low/high load
//	figure10.txt       Sirius latency improvement (3 loads × 3 policies)
//	figure11-*.csv     runtime behaviour traces (instances + frequencies)
//	figure12.txt       NLP latency improvement
//	figure13.txt       Sirius QoS power saving (PowerChief vs Pegasus)
//	figure13-*.csv     power/latency time series per policy
//	figure14.txt       Web Search QoS power saving
//	figure14-*.csv     power/latency time series per policy
//	tail.txt           tail-latency distribution per policy (§10 future work)
//	ablations.txt      design-choice ablations (metric, withdraw, split-clone,
//	                   balance threshold, dispatcher)
//	decisions.txt      the Command Center's decision audit timeline for an
//	                   audited PowerChief run (identify / boost / recycle)
//	headline.txt       the abstract's aggregate numbers, paper vs measured
//	BENCH_fleet.json   fleet-federation robustness record: a 100-node DES
//	                   fleet, 10 nodes partitioned mid-run, budget invariant
//	                   and reclamation/recovery timings per epoch
//
// Use -fig to regenerate a single experiment
// (2,4,10,11,12,13,14,tail,ablations,decisions,fleet).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"powerchief/internal/app"
	"powerchief/internal/cmp"
	"powerchief/internal/core"
	"powerchief/internal/fleet"
	"powerchief/internal/harness"
	"powerchief/internal/telemetry"
	"powerchief/internal/workload"
)

func main() {
	var (
		out  = flag.String("out", "results", "output directory")
		fig  = flag.String("fig", "all", "experiment to run: 2, 4, 10, 11, 12, 13, 14, sweep, tail, ablations, decisions, fleet or all")
		seed = flag.Int64("seed", 7, "random seed shared by all experiments")
	)
	flag.Parse()
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}

	start := time.Now()
	var f10, f12 *harness.Figure
	var f13, f14 *harness.QoSResult

	run := func(name string, fn func() error) {
		if *fig != "all" && *fig != name {
			return
		}
		t0 := time.Now()
		if err := fn(); err != nil {
			fatal(fmt.Errorf("figure %s: %w", name, err))
		}
		fmt.Printf("figure %-3s done in %v\n", name, time.Since(t0).Round(time.Millisecond))
	}

	run("2", func() error {
		res, err := harness.Figure2(*seed)
		if err != nil {
			return err
		}
		return writeTo(*out, "figure2.txt", func(w io.Writer) error {
			return harness.WriteFigure2(w, res)
		})
	})

	run("4", func() error {
		res, err := harness.Figure4(*seed)
		if err != nil {
			return err
		}
		return writeTo(*out, "figure4.txt", func(w io.Writer) error {
			return harness.WriteFigure(w, res)
		})
	})

	run("10", func() error {
		res, err := harness.Figure10(*seed)
		if err != nil {
			return err
		}
		f10 = res
		return writeTo(*out, "figure10.txt", func(w io.Writer) error {
			return harness.WriteFigure(w, res)
		})
	})

	run("11", func() error {
		res, err := harness.Figure11(*seed)
		if err != nil {
			return err
		}
		for _, r := range res.Runs {
			name := fmt.Sprintf("figure11-%s.csv", r.Policy)
			if err := writeTo(*out, name, func(w io.Writer) error {
				return harness.WriteRuntimeTrace(w, r)
			}); err != nil {
				return err
			}
		}
		return nil
	})

	run("12", func() error {
		res, err := harness.Figure12(*seed)
		if err != nil {
			return err
		}
		f12 = res
		return writeTo(*out, "figure12.txt", func(w io.Writer) error {
			return harness.WriteFigure(w, res)
		})
	})

	qos := func(name string, fn func(int64) (*harness.QoSResult, error), store **harness.QoSResult) func() error {
		return func() error {
			res, err := fn(*seed)
			if err != nil {
				return err
			}
			*store = res
			if err := writeTo(*out, name+".txt", func(w io.Writer) error {
				return harness.WriteQoS(w, res)
			}); err != nil {
				return err
			}
			for _, r := range res.Runs {
				csv := fmt.Sprintf("%s-%s.csv", name, r.Policy)
				if err := writeTo(*out, csv, func(w io.Writer) error {
					return harness.WriteRuntimeTrace(w, r.Result)
				}); err != nil {
					return err
				}
			}
			return nil
		}
	}
	run("13", qos("figure13", harness.Figure13, &f13))
	run("14", qos("figure14", harness.Figure14, &f14))

	run("sweep", func() error {
		res, err := harness.BudgetSweep(mustApp("sirius"), workloadHigh(), harness.DefaultSweepBudgets(), *seed)
		if err != nil {
			return err
		}
		return writeTo(*out, "sweep.txt", func(w io.Writer) error {
			return harness.WriteSweep(w, res)
		})
	})

	run("tail", func() error {
		res, err := harness.TailAnalysis(*seed)
		if err != nil {
			return err
		}
		return writeTo(*out, "tail.txt", func(w io.Writer) error {
			return harness.WriteTail(w, res)
		})
	})

	run("ablations", func() error {
		studies := []func(int64) (*harness.AblationResult, error){
			harness.AblationMetric,
			harness.AblationWithdraw,
			harness.AblationSplitClone,
			harness.AblationBalanceThreshold,
			harness.AblationDispatcher,
		}
		return writeTo(*out, "ablations.txt", func(w io.Writer) error {
			for _, study := range studies {
				res, err := study(*seed)
				if err != nil {
					return err
				}
				if err := harness.WriteAblation(w, res); err != nil {
					return err
				}
				if _, err := fmt.Fprintln(w); err != nil {
					return err
				}
			}
			return nil
		})
	})

	run("fleet", func() error {
		// The recorded fleet-federation benchmark: a 100-node DES fleet
		// under one coordinator, 10 nodes partitioned mid-run. The record
		// pins the robustness invariants (no budget violation, no stranded
		// watts, convergence and recovery within epochs of the fault) and is
		// byte-deterministic — same params, same JSON.
		res, err := fleet.RunFleetSim(fleet.DefaultSimParams())
		if err != nil {
			return err
		}
		return writeTo(*out, "BENCH_fleet.json", func(w io.Writer) error {
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			return enc.Encode(res)
		})
	})

	run("decisions", func() error {
		// An audited PowerChief run: the full decision timeline — every
		// bottleneck identification with its Equation 1 inputs, the
		// Equation 2/3 estimates behind each boost, recycle donor lists and
		// withdraws — dumped as text. The companion of Figure 11's runtime
		// traces, from the controller's point of view.
		audit := telemetry.NewAuditLog(0)
		sc := harness.Scenario{
			Name:   "sirius-decisions",
			App:    mustApp("sirius"),
			Level:  cmp.MidLevel,
			Budget: 13.56,
			Policy: func() core.Policy { return core.NewPowerChief(core.DefaultConfig()) },
			Source: func(capacity float64) workload.Source {
				return workload.Constant(workload.RateForUtilization(capacity, workload.High.Utilization()))
			},
			Duration: 900 * time.Second,
			Seed:     *seed,
			Audit:    audit,
		}
		if _, err := harness.Run(sc); err != nil {
			return err
		}
		return writeTo(*out, "decisions.txt", func(w io.Writer) error {
			return telemetry.WriteDecisions(w, audit.Events())
		})
	})

	if *fig == "all" && f10 != nil && f12 != nil && f13 != nil && f14 != nil {
		h := harness.ComputeHeadline(f10, f12, f13, f14)
		if err := writeTo(*out, "headline.txt", func(w io.Writer) error {
			return harness.WriteHeadline(w, h)
		}); err != nil {
			fatal(err)
		}
		_ = harness.WriteHeadline(os.Stdout, h)
		fmt.Println()
	}
	fmt.Printf("all experiments finished in %v; results in %s/\n",
		time.Since(start).Round(time.Millisecond), *out)
}

func mustApp(name string) app.App {
	a, err := app.ByName(name)
	if err != nil {
		fatal(err)
	}
	return a
}

func workloadHigh() workload.Level { return workload.High }

func writeTo(dir, name string, fn func(io.Writer) error) error {
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	return fn(f)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
