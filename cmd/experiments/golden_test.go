package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"testing"

	"powerchief/internal/harness"
)

// TestFiguresGolden regenerates the quick DES figures with the default seed
// and compares them byte-for-byte against the committed results. The DES
// engine is exactly deterministic per seed, so any drift here means a code
// change altered the reproduction — most importantly, it pins that the
// statistics-pipeline refactor (sharded aggregator, merge-on-read windows)
// left every published number untouched. Regenerate intentionally with:
//
//	go run ./cmd/experiments -fig N
func TestFiguresGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates DES experiments; skipped in -short")
	}
	const seed = 7
	for _, tc := range []struct {
		golden string
		render func(io.Writer) error
	}{
		{"figure2.txt", func(w io.Writer) error {
			res, err := harness.Figure2(seed)
			if err != nil {
				return err
			}
			return harness.WriteFigure2(w, res)
		}},
		{"figure4.txt", func(w io.Writer) error {
			res, err := harness.Figure4(seed)
			if err != nil {
				return err
			}
			return harness.WriteFigure(w, res)
		}},
		{"figure10.txt", func(w io.Writer) error {
			res, err := harness.Figure10(seed)
			if err != nil {
				return err
			}
			return harness.WriteFigure(w, res)
		}},
	} {
		t.Run(tc.golden, func(t *testing.T) {
			want, err := os.ReadFile(filepath.Join("..", "..", "results", tc.golden))
			if err != nil {
				t.Fatalf("missing golden (run `go run ./cmd/experiments` first): %v", err)
			}
			var got bytes.Buffer
			if err := tc.render(&got); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got.Bytes(), want) {
				t.Errorf("%s drifted from the committed golden.\n--- got ---\n%s\n--- want ---\n%s",
					tc.golden, got.Bytes(), want)
			}
		})
	}
}
