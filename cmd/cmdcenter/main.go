// Command cmdcenter runs the distributed Command Center: it connects to the
// stage services of a pipeline (in order), generates Poisson load whose
// per-stage demands follow a built-in application's work models, drives a
// control policy over RPC, and reports end-to-end latency on exit.
//
//	cmdcenter -app sirius -stages 127.0.0.1:7101,127.0.0.1:7102,127.0.0.1:7103 \
//	          -budget 13.56 -policy powerchief -rate 2.0 -duration 60s
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"powerchief"
	"powerchief/internal/dist"
	"powerchief/internal/rpc"
	"powerchief/internal/telemetry"
)

func main() {
	var (
		appName   = flag.String("app", "sirius", "application providing per-stage demand models")
		stages    = flag.String("stages", "", "comma-separated stage service addresses, pipeline order")
		budget    = flag.Float64("budget", 13.56, "global power budget in watts")
		policy    = flag.String("policy", "powerchief", "control policy")
		qos       = flag.Duration("qos", 2*time.Second, "QoS target for pegasus/saver")
		rate      = flag.Float64("rate", 1.0, "arrival rate in queries/second (wall clock)")
		duration  = flag.Duration("duration", 30*time.Second, "load duration (wall clock)")
		interval  = flag.Duration("interval", 5*time.Second, "control interval (wall clock)")
		seed      = flag.Int64("seed", 1, "random seed")
		timeScale = flag.Float64("timescale", 1, "stage-service time scale; scales demands sent")

		// Fault tolerance.
		callTimeout   = flag.Duration("calltimeout", 3*time.Second, "deadline for control-plane RPCs (stats, DVFS, clone, probes)")
		submitTimeout = flag.Duration("submittimeout", 60*time.Second, "deadline for each per-stage query dispatch")
		retries       = flag.Int("retries", 2, "max retries of idempotent RPCs on transient failures")
		retryBackoff  = flag.Duration("retrybackoff", 25*time.Millisecond, "base backoff between retries (exponential, jittered)")
		probeInterval = flag.Duration("probe", 500*time.Millisecond, "health-probe cadence for suspect/down stages")
		suspectAfter  = flag.Int("suspectafter", 2, "consecutive failures before a stage is quarantined")
		degraded      = flag.Bool("degraded", false, "serve queries from surviving stages when a stage is quarantined (skip it) instead of failing submits fast")

		// Delta-batched statistics ingest.
		ingestBatch = flag.Int("ingest.batch", 0, "negotiate delta-batched stat ingest with the stages, this many completions per batch (0: per-record)")
		ingestIvl   = flag.Duration("ingest.interval", 0, "delta flush interval for partial batches (0: stats default)")

		// Telemetry.
		metricsAddr = flag.String("metrics.addr", "", "serve /metrics, /debug/trace and /debug/decisions on this address (empty disables)")
		traceSample = flag.Int("trace.sample", 0, "keep every Nth completed query trace (0 disables tracing)")
		traceDepth  = flag.Int("trace.depth", 0, "max per-query records materialized into spans (0 = default)")
	)
	flag.Parse()
	if *stages == "" {
		fatal(fmt.Errorf("-stages is required"))
	}
	addrs := strings.Split(*stages, ",")
	a, err := powerchief.AppByName(*appName)
	if err != nil {
		fatal(err)
	}
	if len(a.Stages) != len(addrs) {
		fatal(fmt.Errorf("app %s has %d stages but %d addresses given", *appName, len(a.Stages), len(addrs)))
	}
	mk, ok := powerchief.PolicyByName(*policy)
	if !ok {
		mk, ok = powerchief.PolicyByNameQoS(*policy, *qos)
	}
	if !ok {
		fatal(fmt.Errorf("unknown policy %q", *policy))
	}

	audit := powerchief.NewAuditLog(0)
	var tracer *powerchief.Tracer
	if *traceSample > 0 {
		tracer = powerchief.NewTracer(powerchief.TracerOptions{Sample: *traceSample, Depth: *traceDepth})
	}

	center, err := dist.NewCenterOptions(powerchief.Watts(*budget), 4**interval, addrs, dist.CenterOptions{
		CallTimeout:    *callTimeout,
		SubmitTimeout:  *submitTimeout,
		Retry:          rpc.RetryPolicy{Max: *retries, BaseBackoff: *retryBackoff},
		ProbeInterval:  *probeInterval,
		SuspectAfter:   *suspectAfter,
		DegradedSubmit: *degraded,
		IngestBatch:    *ingestBatch,
		IngestInterval: *ingestIvl,
		Audit:          audit,
		Tracer:         tracer,
	})
	if err != nil {
		fatal(err)
	}
	defer center.Close()
	fmt.Printf("command center connected to %d stages, policy %s, budget %.2fW\n",
		len(addrs), *policy, *budget)
	if *ingestBatch > 0 {
		fmt.Printf("delta ingest negotiated with %d/%d stages (batch %d)\n",
			center.DeltaIngestStages(), len(addrs), *ingestBatch)
	}

	if *metricsAddr != "" {
		reg := powerchief.NewMetricsRegistry()
		reg.GaugeFunc("powerchief_power_draw_watts", "current modelled chip draw", func() float64 {
			return float64(center.Draw())
		})
		reg.GaugeFunc("powerchief_power_headroom_watts", "budget minus draw", func() float64 {
			return float64(center.Headroom())
		})
		reg.CounterFunc("powerchief_queries_submitted_total", "queries admitted", func() float64 {
			sub, _ := center.Counts()
			return float64(sub)
		})
		reg.CounterFunc("powerchief_queries_completed_total", "queries completed", func() float64 {
			_, comp := center.Counts()
			return float64(comp)
		})
		// Health machine: per-stage state gauges, the quarantined count and
		// lifetime quarantine/re-admission counters.
		center.RegisterMetrics(reg)
		// Delta-ingest fold counters, negotiated-stage gauge and the
		// staleness gauge (age of the newest folded delta).
		center.RegisterIngestMetrics(reg)
		reg.CounterFunc("powerchief_decisions_total", "decision audit events recorded", func() float64 {
			return float64(audit.LastSeq())
		})
		// Statistics-pipeline gauges, read from the sharded aggregator's
		// merged moving windows (constant memory in the distributed center).
		agg := center.Aggregator()
		reg.GaugeFunc("powerchief_window_latency_seconds", "moving-window mean end-to-end latency", func() float64 {
			m, _ := agg.WindowLatency()
			return m.Seconds()
		})
		reg.GaugeFunc("powerchief_window_latency_p99_seconds", "moving-window p99 end-to-end latency", func() float64 {
			p, _ := agg.WindowTail(0.99)
			return p.Seconds()
		})
		reg.CounterFunc("powerchief_queries_ingested_total", "completed queries folded into the statistics windows", func() float64 {
			return float64(agg.Ingested())
		})
		srv, err := telemetry.Serve(*metricsAddr, telemetry.Handler(reg, audit, tracer))
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		fmt.Printf("telemetry on http://%s/metrics\n", srv.Addr)
	}

	// Control loop: the shared control plane on a real-time clock, driving
	// the center (which is itself an Adjuster) every interval. Degraded
	// intervals — quarantined or vanished stages — are counted by the loop
	// and reported on exit.
	loop, err := powerchief.StartControlLoop(powerchief.WallClock(1), center, powerchief.ControlOptions{
		Policy:   mk(),
		Interval: *interval,
		Audit:    audit,
		OnOutcome: func(out powerchief.BoostOutcome) {
			if out.Kind.String() != "none" {
				fmt.Printf("[ctl] %s on %s → level %v / clone %s\n",
					out.Kind, out.Target, out.NewLevel, out.NewInstance)
			}
			for _, h := range center.Healths() {
				if h.State != dist.Healthy {
					fmt.Printf("[health] stage %s is %s (%v)\n", h.Name, h.State, h.Err)
				}
			}
		},
		OnError: func(err error) { fmt.Fprintln(os.Stderr, "adjust:", err) },
	})
	if err != nil {
		fatal(err)
	}

	// Poisson open-loop load, one goroutine per in-flight query.
	rng := rand.New(rand.NewSource(*seed))
	deadline := time.Now().Add(*duration)
	var wg sync.WaitGroup
	for time.Now().Before(deadline) {
		wait := time.Duration(rng.ExpFloat64() / *rate * float64(time.Second))
		time.Sleep(wait)
		work := a.DrawWork(rng, instanceCounts(len(a.Stages)))
		// Scale demands to the stage services' compressed time if any.
		_ = timeScale
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := center.Submit(work); err != nil {
				fmt.Fprintln(os.Stderr, "submit:", err)
			}
		}()
	}
	wg.Wait()
	loop.Stop()
	if n, _ := loop.Errors(); n > 0 {
		fmt.Printf("control loop: %d failed adjusts (%d degraded intervals)\n", n, loop.Degraded())
	}

	lats := center.Latencies()
	if len(lats) == 0 {
		fmt.Println("no queries completed")
		return
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	var sum time.Duration
	for _, l := range lats {
		sum += l
	}
	sub, comp := center.Counts()
	fmt.Printf("completed %d/%d queries: avg=%v p50=%v p99=%v\n",
		comp, sub,
		(sum / time.Duration(len(lats))).Round(time.Millisecond),
		lats[len(lats)/2].Round(time.Millisecond),
		lats[len(lats)*99/100].Round(time.Millisecond))
}

// instanceCounts returns a single branch per stage — the center sends one
// demand row per stage; fan-out branching happens inside the stage service.
func instanceCounts(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = 1
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cmdcenter:", err)
	os.Exit(1)
}
