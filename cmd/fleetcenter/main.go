// Command fleetcenter runs the fleet coordinator: the Command Center one
// level up. It owns a cluster-wide power budget, dials a set of node
// services, and every control epoch redistributes per-node budgets from each
// node's reported bottleneck metric — reclaiming the watts of nodes that
// die, hang or partition, and re-admitting them budget-safely when they
// return (see DESIGN.md §5h).
//
//	fleetcenter -nodes 127.0.0.1:7201,127.0.0.1:7202,127.0.0.1:7203 \
//	            -budget 100 -floor 10 -interval 1s
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"powerchief/internal/cmp"
	"powerchief/internal/controlplane"
	"powerchief/internal/fleet"
	"powerchief/internal/rpc"
	"powerchief/internal/telemetry"
)

func main() {
	var (
		nodes    = flag.String("nodes", "", "comma-separated node service addresses")
		budget   = flag.Float64("budget", 100, "cluster-wide power budget in watts")
		floor    = flag.Float64("floor", 10, "per-node budget floor in watts")
		hyst     = flag.Float64("hysteresis", 0, "minimum watt move worth actuating (0 = floor/4)")
		interval = flag.Duration("interval", time.Second, "control epoch cadence")
		duration = flag.Duration("duration", 0, "run length (0 = until interrupted)")

		// Fault tolerance.
		dialTimeout  = flag.Duration("dialtimeout", 2*time.Second, "deadline for dialing a node service")
		callTimeout  = flag.Duration("calltimeout", time.Second, "deadline for node report and grant RPCs")
		suspectAfter = flag.Int("suspectafter", 2, "consecutive failures before a node is quarantined")
		cooldown     = flag.Int("cooldown", 3, "epochs a re-admitted node is pinned at the floor")
		strictCap    = flag.Bool("strictcap", false, "hold reclaimed watts one detection timeout before re-granting (physical cap never exceeded during partitions)")
		holdEpochs   = flag.Int("hold", 0, "epochs a strict-cap hold lasts (0 = suspectafter)")

		// Telemetry.
		metricsAddr = flag.String("metrics.addr", "", "serve /metrics and /debug/decisions on this address (empty disables)")
	)
	flag.Parse()
	if *nodes == "" {
		fatal(fmt.Errorf("-nodes is required"))
	}

	var transports []fleet.Transport
	for _, addr := range strings.Split(*nodes, ",") {
		node, err := fleet.DialNode(strings.TrimSpace(addr), rpc.ClientOptions{
			DialTimeout: *dialTimeout,
			CallTimeout: *callTimeout,
		})
		if err != nil {
			fatal(fmt.Errorf("dialing node %s: %w", addr, err))
		}
		defer node.Close()
		transports = append(transports, node)
	}

	audit := telemetry.NewAuditLog(0)
	coord, err := fleet.NewCoordinator(fleet.Options{
		Budget:         cmp.Watts(*budget),
		Floor:          cmp.Watts(*floor),
		Hysteresis:     cmp.Watts(*hyst),
		SuspectAfter:   *suspectAfter,
		CooldownEpochs: *cooldown,
		StrictCap:      *strictCap,
		HoldEpochs:     *holdEpochs,
		Audit:          audit,
	}, transports...)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("fleet coordinator over %d nodes, budget %.2fW, floor %.2fW, epoch %v\n",
		len(transports), *budget, *floor, *interval)

	if *metricsAddr != "" {
		reg := telemetry.NewRegistry()
		coord.RegisterMetrics(reg)
		// Heartbeat-carried node statistics: delta fold counters, sequence
		// gaps (lost heartbeat windows) and the merged fleet-wide latency.
		coord.RegisterIngestMetrics(reg)
		srv, err := telemetry.Serve(*metricsAddr, telemetry.Handler(reg, audit, nil))
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		fmt.Printf("telemetry on http://%s/metrics\n", srv.Addr)
	}

	loop, err := controlplane.Start(controlplane.WallClock(1), coord, controlplane.Options{
		Policy:   fleet.NewRebalance(),
		Interval: *interval,
		Audit:    audit,
		OnError:  func(err error) { fmt.Fprintln(os.Stderr, "epoch:", err) },
	})
	if err != nil {
		fatal(err)
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	if *duration > 0 {
		select {
		case <-stop:
		case <-time.After(*duration):
		}
	} else {
		<-stop
	}
	loop.Stop()

	granted := coord.Granted()
	healths := coord.Healths()
	names := make([]string, 0, len(granted))
	for name := range granted {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Printf("node %-16s %-10s %7.2fW\n", name, healths[name], float64(granted[name]))
	}
	q, r, f := coord.Counts()
	fmt.Printf("Σ granted %.2fW of %.2fW; %d quarantines, %d re-admissions, %d fenced reports\n",
		float64(coord.Draw()), *budget, q, r, f)
	if count, mean, p99, ok := coord.FleetLatency(0.99); ok {
		deltas, _, gaps := coord.IngestCounts()
		fmt.Printf("fleet latency over %d completions (from %d heartbeat deltas, %d gaps): mean=%v p99=%v\n",
			count, deltas, gaps, mean.Round(time.Millisecond), p99.Round(time.Millisecond))
	}
	if n, err := loop.Errors(); n > 0 {
		fmt.Printf("control loop: %d degraded/failed epochs (last: %v)\n", n, err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fleetcenter:", err)
	os.Exit(1)
}
