// Package powerchief is a reproduction of "PowerChief: Intelligent Power
// Allocation for Multi-Stage Applications to Improve Responsiveness on Power
// Constrained CMP" (Yang, Chen, Riaz, Luan, Tang, Mars — ISCA 2017).
//
// PowerChief is a runtime framework for multi-stage user-facing applications
// running under a hard chip power budget. It monitors per-instance latency
// statistics through a service/query joint design, identifies the bottleneck
// service instance with a metric combining history and realtime queue length
// (L·q̄ + s̄), adaptively chooses between frequency boosting and instance
// boosting by estimating the expected delay of each, and recycles power from
// the fastest instances to fund the boost — all without exceeding the budget.
//
// This package is the public facade: it exposes the application models, the
// control policies, the scenario runner on the deterministic discrete-event
// engine, and the experiment drivers that regenerate every table and figure
// of the paper's evaluation. The building blocks live under internal/:
//
//   - internal/sim      deterministic discrete-event engine
//   - internal/cmp      CMP model: DVFS ladder, power model, chip budget
//   - internal/stage    stages, service instances, dispatchers, boosting
//   - internal/query    the extended query structure (joint design)
//   - internal/core     the Command Center: identifier, decision engine,
//     power reallocator, policies, budget-domain hierarchy
//   - internal/arbiter  cross-member budget arbitration (multi-tenant and
//     fleet re-granting share one planner)
//   - internal/workload Poisson/trace load generation
//   - internal/harness  scenario runner and per-figure experiment drivers
//   - internal/live     real-time goroutine engine (same policies)
//   - internal/rpc      minimal JSON-RPC used by the distributed prototype
//
// # Quick start
//
//	res, err := powerchief.Run(powerchief.Scenario{
//		Name:     "sirius-high",
//		App:      powerchief.Sirius(),
//		Level:    powerchief.MidLevel,
//		Budget:   13.56,
//		Policy:   powerchief.PowerChiefPolicy(),
//		Source:   powerchief.ConstantLoad(powerchief.HighLoad),
//		Duration: 900 * time.Second,
//	})
//
// See examples/ for runnable programs and EXPERIMENTS.md for the
// paper-vs-measured record.
package powerchief

import (
	"io"
	"time"

	"powerchief/internal/app"
	"powerchief/internal/arbiter"
	"powerchief/internal/cmp"
	"powerchief/internal/core"
	"powerchief/internal/harness"
	"powerchief/internal/workload"
)

// Core aliases: the facade re-exports the library's working types so a
// single import serves typical use.
type (
	// App is a multi-stage application definition.
	App = app.App
	// StageProfile describes one processing stage of an App.
	StageProfile = app.StageProfile
	// WorkModel is a lognormal service-demand distribution.
	WorkModel = app.WorkModel

	// Scenario describes one experiment run on the discrete-event engine.
	Scenario = harness.Scenario
	// Result carries a run's collected metrics.
	Result = harness.Result

	// Policy is a control policy invoked at every adjust interval.
	Policy = core.Policy
	// Config carries the control-loop parameters (Table 2 / Table 3).
	Config = core.Config

	// Level indexes the discrete DVFS ladder (1.2–2.4 GHz in 0.1 steps).
	Level = cmp.Level
	// Watts expresses power.
	Watts = cmp.Watts

	// LoadLevel names the evaluation's load levels (low/medium/high).
	LoadLevel = workload.Level
	// Source yields the instantaneous arrival rate over time.
	Source = workload.Source

	// BudgetDomain is one node of the hierarchical power-budget tree: the
	// chip-level root delegates per-tenant grants to child domains, and
	// every SetBudget preserves Σ child grants ≤ parent budget.
	BudgetDomain = core.BudgetDomain

	// Tenant is one application's slice of a multi-tenant scenario.
	Tenant = harness.Tenant
	// MultiScenario describes a multi-tenant arbitration run: several
	// tenants, one chip budget, an optional cross-app arbiter.
	MultiScenario = harness.MultiScenario
	// MultiResult carries a multi-tenant run's per-tenant and combined
	// metrics plus the budget-invariant audit.
	MultiResult = harness.MultiResult
	// TenantResult is one tenant's slice of a MultiResult.
	TenantResult = harness.TenantResult
)

// Frequency ladder constants.
const (
	// MinLevel is the ladder floor (1.2 GHz).
	MinLevel = Level(0)
	// MidLevel is the medial 1.8 GHz level of the stage-agnostic baseline.
	MidLevel = cmp.MidLevel
	// MaxLevel is the ladder top (2.4 GHz).
	MaxLevel = cmp.MaxLevel
)

// Load levels.
const (
	LowLoad    = workload.Low
	MediumLoad = workload.Medium
	HighLoad   = workload.High
)

// Sirius returns the intelligent-personal-assistant application
// (ASR → IMM → QA).
func Sirius() App { return app.Sirius() }

// NLP returns the Senna natural-language pipeline (POS → PSG → SRL).
func NLP() App { return app.NLP() }

// WebSearch returns the replicated-leaf search application (leaf pool →
// aggregator).
func WebSearch() App { return app.WebSearch() }

// WebSearchFanOut returns the sharded-index search variant whose leaf stage
// fans every query out to all shards.
func WebSearchFanOut() App { return app.WebSearchFanOut() }

// AppByName resolves a built-in application ("sirius", "nlp", "websearch").
func AppByName(name string) (App, error) { return app.ByName(name) }

// DefaultConfig returns the paper's Table 2 control configuration: the
// expected-delay metric, 1 s balance threshold, 150 s withdraw interval and
// the 20% withdraw utilization threshold.
func DefaultConfig() Config { return core.DefaultConfig() }

// PowerChiefPolicy returns the full adaptive policy (bottleneck
// identification, adaptive boosting, dynamic power reallocation, instance
// withdraw) with the default configuration.
func PowerChiefPolicy() func() Policy {
	return func() Policy { return core.NewPowerChief(core.DefaultConfig()) }
}

// FreqBoostPolicy returns the pure frequency-boosting baseline.
func FreqBoostPolicy() func() Policy {
	return func() Policy { return core.NewFreqBoost(core.DefaultConfig()) }
}

// InstBoostPolicy returns the pure instance-boosting baseline.
func InstBoostPolicy() func() Policy {
	return func() Policy { return core.NewInstBoost(core.DefaultConfig()) }
}

// BaselinePolicy returns the stage-agnostic static allocation (no runtime
// control).
func BaselinePolicy() func() Policy {
	return func() Policy { return core.Static{} }
}

// PegasusPolicy returns the Pegasus-style stage-agnostic QoS power saver for
// the given latency target.
func PegasusPolicy(qos time.Duration) func() Policy {
	return func() Policy { return core.NewPegasus(qos) }
}

// SaverPolicy returns PowerChief's stage-aware QoS power-conservation mode
// for the given latency target.
func SaverPolicy(qos time.Duration) func() Policy {
	return func() Policy { return core.NewPowerChiefSaver(qos, core.DefaultConfig()) }
}

// PolicyByName resolves a policy constructor by its experiment name:
// "baseline", "freq-boost", "inst-boost", "powerchief"; "pegasus" and
// "saver" need a QoS target and are resolved by PolicyByNameQoS.
func PolicyByName(name string) (func() Policy, bool) {
	switch name {
	case "baseline":
		return BaselinePolicy(), true
	case "freq-boost":
		return FreqBoostPolicy(), true
	case "inst-boost":
		return InstBoostPolicy(), true
	case "powerchief":
		return PowerChiefPolicy(), true
	default:
		return nil, false
	}
}

// PolicyByNameQoS resolves the QoS power-conservation policies.
func PolicyByNameQoS(name string, qos time.Duration) (func() Policy, bool) {
	switch name {
	case "pegasus":
		return PegasusPolicy(qos), true
	case "saver", "powerchief-saver":
		return SaverPolicy(qos), true
	default:
		return nil, false
	}
}

// ConstantLoad builds a Source factory that pins a constant utilization of
// the scenario's reference capacity.
func ConstantLoad(level LoadLevel) func(refCapacityQPS float64) Source {
	return func(capacity float64) Source {
		return workload.Constant(workload.RateForUtilization(capacity, level.Utilization()))
	}
}

// NewRootDomain creates the top of a budget hierarchy owning the chip-level
// cap.
func NewRootDomain(name string, budget Watts) *BudgetDomain {
	return core.NewRootDomain(name, budget)
}

// ProportionalArbiter returns the cross-app arbitration policy that grants
// budget in proportion to each tenant's QoS slowdown (Eq. 1 metric over its
// latency target).
func ProportionalArbiter() func() Policy {
	return func() Policy { return arbiter.New(arbiter.Proportional{}) }
}

// FairnessArbiter returns the FastCap-style fairness-weighted arbitration
// policy; alpha tunes how hard sustained slowdown is penalized (2 is the
// usual choice).
func FairnessArbiter(alpha float64) func() Policy {
	return func() Policy { return arbiter.New(arbiter.Fairness{Alpha: alpha}) }
}

// RunMulti executes a multi-tenant scenario: one PowerChief loop per tenant
// inside its budget domain, with the arbiter re-granting between them.
func RunMulti(sc MultiScenario) (*MultiResult, error) { return harness.RunMulti(sc) }

// Run executes a scenario to completion on the deterministic discrete-event
// engine and returns its metrics.
func Run(sc Scenario) (*Result, error) { return harness.Run(sc) }

// Improvement returns baseline/measured latency ratios (average, P99) — the
// y-axis of the paper's improvement figures.
func Improvement(baseline, measured *Result) (avg, p99 float64) {
	return harness.Improvement(baseline, measured)
}

// WriteResult renders one run's summary line to w.
func WriteResult(w io.Writer, r *Result) error { return harness.WriteResult(w, r) }
