#!/bin/sh
# docs-lint.sh — keep the documentation wired to the code it describes.
#
# Two checks, both cheap enough for every CI run:
#
#   1. Every relative markdown link in the top-level docs (README.md,
#      DESIGN.md, ARCHITECTURE.md, EXPERIMENTS.md) must point at a path
#      that exists in the repo. External (http/https/mailto) links and
#      pure #anchor links are skipped; a #fragment on a relative link is
#      stripped before the existence check.
#
#   2. Every package under internal/ must have a non-empty doc.go: the
#      package docs are part of the architecture documentation
#      (ARCHITECTURE.md points into them), so a new package without one —
#      or one gutted to an empty stub — fails the build.
#
# Exits 0 when both checks pass, 1 otherwise, listing every violation.
set -u

cd "$(dirname "$0")/.." || exit 1

fail=0

# --- 1. relative markdown links ------------------------------------------

for doc in README.md DESIGN.md ARCHITECTURE.md EXPERIMENTS.md; do
    if [ ! -f "$doc" ]; then
        echo "docs-lint: missing top-level doc: $doc"
        fail=1
        continue
    fi
    # Pull out every inline markdown link target: [text](target). One
    # target per line; nested brackets in link text are not used in these
    # docs, so the simple pattern is exact here.
    targets=$(grep -o '\[[^]]*\]([^)]*)' "$doc" | sed 's/^\[[^]]*\](//; s/)$//')
    [ -n "$targets" ] || continue
    echo "$targets" | while IFS= read -r target; do
        case "$target" in
        http://*|https://*|mailto:*) continue ;;   # external
        '#'*) continue ;;                          # in-page anchor
        '') continue ;;
        esac
        path=${target%%#*}                         # strip fragment
        [ -n "$path" ] || continue
        if [ ! -e "$path" ]; then
            echo "docs-lint: $doc links to missing path: $target"
            exit 1
        fi
    done || fail=1
done

# --- 2. internal packages carry package docs ------------------------------

for dir in internal/*/; do
    # Only directories that are actually Go packages.
    ls "$dir"*.go >/dev/null 2>&1 || continue
    doc="${dir}doc.go"
    if [ ! -f "$doc" ]; then
        echo "docs-lint: $dir has no doc.go (every internal package documents itself)"
        fail=1
    elif ! grep -q '^// ' "$doc"; then
        echo "docs-lint: $doc has no package doc comment"
        fail=1
    fi
done

if [ "$fail" -ne 0 ]; then
    echo "docs-lint: FAIL"
    exit 1
fi
echo "docs-lint: ok"
