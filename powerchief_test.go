package powerchief

import (
	"strings"
	"testing"
	"time"
)

func TestFacadeQuickScenario(t *testing.T) {
	res, err := Run(Scenario{
		Name:     "facade-smoke",
		App:      Sirius(),
		Level:    MidLevel,
		Budget:   13.56,
		Policy:   PowerChiefPolicy(),
		Source:   ConstantLoad(MediumLoad),
		Duration: 200 * time.Second,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed == 0 {
		t.Fatal("no queries completed")
	}
	var sb strings.Builder
	if err := WriteResult(&sb, res); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "powerchief") {
		t.Errorf("summary line = %q", sb.String())
	}
}

func TestFacadeAppsAndPolicies(t *testing.T) {
	for _, name := range []string{"sirius", "nlp", "websearch"} {
		if _, err := AppByName(name); err != nil {
			t.Errorf("AppByName(%q): %v", name, err)
		}
	}
	for _, name := range []string{"baseline", "freq-boost", "inst-boost", "powerchief"} {
		mk, ok := PolicyByName(name)
		if !ok {
			t.Errorf("PolicyByName(%q) missing", name)
			continue
		}
		if got := mk().Name(); got != name {
			t.Errorf("policy %q reports name %q", name, got)
		}
	}
	if _, ok := PolicyByName("nope"); ok {
		t.Error("unknown policy resolved")
	}
	for _, name := range []string{"pegasus", "saver"} {
		if _, ok := PolicyByNameQoS(name, time.Second); !ok {
			t.Errorf("PolicyByNameQoS(%q) missing", name)
		}
	}
	if _, ok := PolicyByNameQoS("nope", time.Second); ok {
		t.Error("unknown QoS policy resolved")
	}
}

func TestFacadeLevels(t *testing.T) {
	if MinLevel.GHz() != 1.2 || MidLevel.GHz() != 1.8 || MaxLevel.GHz() != 2.4 {
		t.Error("frequency ladder constants wrong")
	}
	if !(LowLoad.Utilization() < MediumLoad.Utilization() && MediumLoad.Utilization() < HighLoad.Utilization()) {
		t.Error("load levels not ordered")
	}
}

func TestFacadeImprovement(t *testing.T) {
	base, err := Run(Scenario{
		Name: "b", App: NLP(), Level: MidLevel, Budget: 13.56,
		Source: ConstantLoad(HighLoad), Duration: 300 * time.Second, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	boosted, err := Run(Scenario{
		Name: "p", App: NLP(), Level: MidLevel, Budget: 13.56,
		Policy: PowerChiefPolicy(),
		Source: ConstantLoad(HighLoad), Duration: 300 * time.Second, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	avg, p99 := Improvement(base, boosted)
	if avg < 1 || p99 < 1 {
		t.Errorf("improvement = %.2f/%.2f, want ≥ 1 under high load", avg, p99)
	}
}
