package powerchief

import (
	"powerchief/internal/controlplane"
	"powerchief/internal/core"
	"powerchief/internal/sim"
)

// The control-plane surface exposes the one backend-agnostic control loop:
// every driver — DES harness, live cluster, distributed command center —
// schedules policy adjusts through the same loop, over a Clock that is
// virtual for the simulator and scaled wall time everywhere else.

type (
	// ControlLoop is a running control loop: adjust epochs, optional sample
	// epochs, bounded outcome history and degraded-mode accounting.
	ControlLoop = controlplane.Loop
	// ControlOptions configures a ControlLoop.
	ControlOptions = controlplane.Options
	// Clock abstracts the loop's notion of time (virtual or scaled wall).
	Clock = controlplane.Clock
	// Adjuster runs one control interval against a backend. The distributed
	// Center satisfies it directly; in-process systems adapt via NewAdjuster.
	Adjuster = controlplane.Adjuster
	// ActionPlan is a policy decision as typed actions, before actuation.
	ActionPlan = core.ActionPlan
	// Planner is a Policy whose decision path is exposed as a plan.
	Planner = core.Planner
	// Executor validates, applies, audits and rolls back action plans.
	Executor = core.Executor
	// System is a controllable deployment as policies see it: power
	// accounting plus per-stage instance control.
	System = core.System
	// BoostOutcome is one control interval's decision record.
	BoostOutcome = core.BoostOutcome
)

// StartControlLoop validates the options and starts the loop on the clock.
// The first adjust fires one interval from now; Stop halts the loop and is
// safe to call concurrently and repeatedly.
func StartControlLoop(clock Clock, adj Adjuster, opts ControlOptions) (*ControlLoop, error) {
	return controlplane.Start(clock, adj, opts)
}

// WallClock is a Clock running engine time compressed by scale: one engine
// second lasts scale wall seconds (1 is real time). Non-positive scales
// default to 1.
func WallClock(scale float64) Clock { return controlplane.WallClock(scale) }

// SimClock drives a loop deterministically from a discrete-event engine.
func SimClock(eng *sim.Engine) Clock { return controlplane.SimClock(eng) }

// NewAdjuster adapts an in-process System and its Aggregator (a live cluster
// or a DES view) into an Adjuster for StartControlLoop.
func NewAdjuster(sys System, agg *Aggregator) Adjuster {
	return controlplane.NewAdjuster(sys, agg)
}
