package powerchief

import (
	"io"
	"net/http"

	"powerchief/internal/core"
	"powerchief/internal/telemetry"
)

// Telemetry aliases: the observability layer (see internal/telemetry and
// DESIGN.md §5d). The audit log captures every Command Center decision as a
// structured event; the tracer materializes sampled queries' joint-design
// records into span trees; the registry exports metrics in Prometheus text
// and JSON form.
type (
	// AuditLog is a bounded ring of Command Center decision events.
	AuditLog = telemetry.AuditLog
	// Event is one structured Command Center decision.
	Event = telemetry.Event
	// EventKind classifies a decision event.
	EventKind = telemetry.EventKind
	// Tracer samples completed queries into span trees.
	Tracer = telemetry.Tracer
	// TracerOptions tunes trace sampling and retention.
	TracerOptions = telemetry.TracerOptions
	// QueryTrace is one query materialized as queue/serve spans.
	QueryTrace = telemetry.QueryTrace
	// Span is one phase of a query's visit to one instance.
	Span = telemetry.Span
	// MetricsRegistry holds named counters and gauges with Prometheus and
	// JSON exporters.
	MetricsRegistry = telemetry.Registry
)

// NewAuditLog creates a decision audit log retaining at most capacity
// events (0 applies the default capacity).
func NewAuditLog(capacity int) *AuditLog { return telemetry.NewAuditLog(capacity) }

// NewTracer creates a query tracer with the given sampling options.
func NewTracer(opts TracerOptions) *Tracer { return telemetry.NewTracer(opts) }

// NewMetricsRegistry creates an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return telemetry.NewRegistry() }

// AttachAudit attaches an audit log to a policy, reporting whether the
// policy supports auditing (baseline/static policies do not). Scenario.Audit
// does this automatically for harness runs; this helper serves callers
// driving a policy by hand (e.g. against a live cluster or a dist center).
func AttachAudit(p Policy, a *AuditLog) bool {
	if as, ok := p.(core.AuditSetter); ok {
		as.SetAudit(a)
		return true
	}
	return false
}

// TelemetryHandler serves the observability endpoints (/metrics,
// /metrics.json, /debug/trace, /debug/decisions). Any argument may be nil;
// the matching endpoint then serves its empty form.
func TelemetryHandler(reg *MetricsRegistry, audit *AuditLog, tracer *Tracer) http.Handler {
	return telemetry.Handler(reg, audit, tracer)
}

// WriteDecisions renders a decision timeline as human-readable text.
func WriteDecisions(w io.Writer, events []Event) error {
	return telemetry.WriteDecisions(w, events)
}
