package powerchief

// Benchmarks regenerating every table and figure of the paper's evaluation
// (§8), plus microbenchmarks of the framework's hot paths. The figure
// benches report the reproduced headline values as custom metrics so
// `go test -bench` output doubles as the experiment record:
//
//	go test -bench=. -benchmem
//
// Figure benches run the full experiment once per iteration on the
// deterministic discrete-event engine; absolute numbers are recorded in
// EXPERIMENTS.md against the paper's.

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"powerchief/internal/app"
	"powerchief/internal/cmp"
	"powerchief/internal/core"
	"powerchief/internal/harness"
	"powerchief/internal/live"
	"powerchief/internal/query"
	"powerchief/internal/sim"
	"powerchief/internal/stage"
	"powerchief/internal/telemetry"
	"powerchief/internal/workload"
)

// --- Figure/table reproduction benches -------------------------------------

// BenchmarkFigure2 regenerates the single-stage boosting sweep (Figure 2):
// normalized Sirius latency when boosting only ASR / IMM / QA under the same
// 13.56 W budget. Reported metric: normalized latency of the optimal
// decision (instance-boosting QA; the paper reports >40% reduction, i.e.
// < 0.6).
func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.Figure2(7)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			if row.Label == "Inst-boost QA only" {
				b.ReportMetric(row.Normalized, "norm-instQA")
			}
			if row.Label == "Inst-boost IMM only" {
				b.ReportMetric(row.Normalized, "norm-instIMM")
			}
		}
	}
}

// BenchmarkFigure4 regenerates the freq-vs-inst boosting comparison
// (Figure 4) at low and high load. Reported metrics: average-latency
// improvement factors (paper: low 1.46×/1.20×, high 1.82×/25.11×).
func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := harness.Figure4(11)
		if err != nil {
			b.Fatal(err)
		}
		for _, g := range fig.Groups {
			for _, bar := range g.Bars {
				key := "low"
				if g.Label == "high load" {
					key = "high"
				}
				switch bar.Label {
				case "Freq-Boosting":
					b.ReportMetric(bar.Avg, key+"-freq-x")
				case "Inst-Boosting":
					b.ReportMetric(bar.Avg, key+"-inst-x")
				}
			}
		}
	}
}

// benchImprovement runs an improvement figure and reports the PowerChief
// bars (avg improvement per load).
func benchImprovement(b *testing.B, fn func(int64) (*harness.Figure, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		fig, err := fn(7)
		if err != nil {
			b.Fatal(err)
		}
		for _, g := range fig.Groups {
			for _, bar := range g.Bars {
				if bar.Label == "PowerChief" {
					key := "low"
					switch g.Label {
					case "medium load":
						key = "med"
					case "high load":
						key = "high"
					}
					b.ReportMetric(bar.Avg, key+"-pc-avg-x")
					b.ReportMetric(bar.P99, key+"-pc-p99-x")
				}
			}
		}
	}
}

// BenchmarkFigure10 regenerates the Sirius latency-improvement figure
// (paper: PowerChief 20.3× avg / 13.3× p99 on average; 32.8×/19.5× at high
// load).
func BenchmarkFigure10(b *testing.B) { benchImprovement(b, harness.Figure10) }

// BenchmarkFigure12 regenerates the NLP latency-improvement figure (paper:
// 32.4× avg / 19.4× p99 on average; 52.2×/28.4× at high load).
func BenchmarkFigure12(b *testing.B) { benchImprovement(b, harness.Figure12) }

// BenchmarkFigure11 regenerates the runtime-behaviour traces (Figure 11):
// per-instance frequencies and instance counts under the phased high load.
// Reported metric: the peak QA instance count PowerChief reaches (the paper
// shows up to five).
func BenchmarkFigure11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.Figure11(5)
		if err != nil {
			b.Fatal(err)
		}
		pc := res.Runs[len(res.Runs)-1] // powerchief run
		maxQA := 0.0
		if s := pc.Trace.Get("instances:QA"); s != nil {
			for _, p := range s.Points {
				if p.Value > maxQA {
					maxQA = p.Value
				}
			}
		}
		b.ReportMetric(maxQA, "peak-QA-instances")
	}
}

// benchQoS reports a power-saving experiment's fractions (Figures 13/14).
func benchQoS(b *testing.B, fn func(int64) (*harness.QoSResult, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := fn(9)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range res.Runs {
			switch r.Policy {
			case "pegasus":
				b.ReportMetric(1-r.PowerFraction, "pegasus-saved")
			case "powerchief":
				b.ReportMetric(1-r.PowerFraction, "pc-saved")
				b.ReportMetric(r.QoSFraction, "pc-lat/qos")
			}
		}
	}
}

// BenchmarkFigure13 regenerates the Sirius QoS power-saving comparison
// (paper: PowerChief saves 25% vs Pegasus 2% over the baseline).
func BenchmarkFigure13(b *testing.B) { benchQoS(b, harness.Figure13) }

// BenchmarkFigure14 regenerates the Web Search QoS power-saving comparison
// (paper: PowerChief saves 43% vs Pegasus 10%).
func BenchmarkFigure14(b *testing.B) { benchQoS(b, harness.Figure14) }

// BenchmarkTable1Metrics exercises every Table 1 latency metric over the
// same ranking workload, reporting how often each metric disagrees with the
// combined Equation 1 metric on the bottleneck — the quantitative basis for
// §4.2's argument that historical metrics alone misidentify bottlenecks.
func BenchmarkTable1Metrics(b *testing.B) {
	base, err := Run(Scenario{
		Name: "table1", App: Sirius(), Level: MidLevel, Budget: 13.56,
		Source: ConstantLoad(HighLoad), Duration: 300 * time.Second, Seed: 3,
	})
	if err != nil {
		b.Fatal(err)
	}
	_ = base
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Rank a synthetic population under each metric.
		disagree := 0
		trials := 100
		rng := rand.New(rand.NewSource(42))
		for t := 0; t < trials; t++ {
			sys, agg := syntheticRankingState(rng)
			full := core.Identifier{Metric: core.MetricExpectedDelay}.Rank(sys, agg)
			hist := core.Identifier{Metric: core.MetricAvgProcessing}.Rank(sys, agg)
			if full[0].Instance.Name() != hist[0].Instance.Name() {
				disagree++
			}
		}
		b.ReportMetric(float64(disagree)/float64(trials), "hist-vs-eq1-disagreement")
	}
}

// --- Microbenchmarks of the framework hot paths ----------------------------

// BenchmarkDESEngine measures raw event throughput of the simulator.
func BenchmarkDESEngine(b *testing.B) {
	eng := sim.NewEngine()
	var tick func()
	n := 0
	tick = func() {
		n++
		if n < b.N {
			eng.Schedule(time.Microsecond, tick)
		}
	}
	eng.Schedule(time.Microsecond, tick)
	b.ResetTimer()
	eng.Run()
}

// BenchmarkScenarioThroughput measures simulated queries per wall second
// for a full PowerChief-managed Sirius run.
func BenchmarkScenarioThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := Run(Scenario{
			Name: "bench", App: Sirius(), Level: MidLevel, Budget: 13.56,
			Policy: PowerChiefPolicy(),
			Source: ConstantLoad(HighLoad), Duration: 900 * time.Second, Seed: int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Completed), "queries/op")
	}
}

// syntheticRankingState builds a small in-memory system + aggregator for
// identifier benchmarks.
func syntheticRankingState(rng *rand.Rand) (core.System, *core.Aggregator) {
	eng := sim.NewEngine()
	chip := cmp.NewChip(16, cmp.DefaultModel(), 1000)
	specs := []stage.Spec{
		{Name: "A", Kind: stage.Pipeline, Profile: cmp.NewRooflineProfile(0.2), Instances: 3, Level: cmp.MidLevel},
		{Name: "B", Kind: stage.Pipeline, Profile: cmp.NewRooflineProfile(0.3), Instances: 3, Level: cmp.MidLevel},
	}
	sys, err := stage.NewSystem(eng, chip, specs)
	if err != nil {
		panic(err)
	}
	agg := core.NewAggregator(25*time.Second, eng.Now)
	// Feed random completions and backlogs.
	for i := 0; i < 30; i++ {
		q := query.New(query.ID(i), 0, nil)
		for _, st := range sys.Stages() {
			for _, in := range st.Instances() {
				serve := time.Duration(rng.Intn(500)) * time.Millisecond
				wait := time.Duration(rng.Intn(300)) * time.Millisecond
				q.Append(query.Record{Instance: in.Name(), QueueEnter: 0, ServeStart: wait, ServeEnd: wait + serve})
			}
		}
		q.Done = time.Second
		agg.Ingest(q)
	}
	// Random realtime backlogs via direct submissions.
	view := core.NewDESView(sys)
	for i := 0; i < rng.Intn(20); i++ {
		sys.Submit(query.New(query.ID(1000+i), 0, [][]time.Duration{{time.Hour}, {time.Hour}}))
	}
	return view, agg
}

// BenchmarkBottleneckIdentification measures Equation 1 ranking over a
// six-instance deployment.
func BenchmarkBottleneckIdentification(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	sys, agg := syntheticRankingState(rng)
	id := core.Identifier{Metric: core.MetricExpectedDelay}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ranked := id.Rank(sys, agg); len(ranked) == 0 {
			b.Fatal("empty ranking")
		}
	}
}

// BenchmarkAggregatorIngest measures folding one completed three-stage
// query's records into the moving windows.
func BenchmarkAggregatorIngest(b *testing.B) {
	clk := time.Duration(0)
	agg := core.NewAggregator(25*time.Second, func() time.Duration { return clk })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clk += time.Millisecond
		q := query.New(query.ID(i), clk-time.Second, nil)
		for _, inst := range [...]string{"ASR_1", "IMM_1", "QA_1"} {
			q.Append(query.Record{Instance: inst, QueueEnter: 0, ServeStart: time.Millisecond, ServeEnd: 10 * time.Millisecond})
		}
		q.Done = clk
		agg.Ingest(q)
	}
}

// BenchmarkAggregatorIngestParallel measures concurrent completion ingest —
// many instance goroutines folding completed queries into one aggregator at
// once, the hot path of the live and distributed engines. Each worker owns a
// disjoint instance triple (different instances complete on different
// cores), the end-to-end latency window takes every completion, and the
// virtual clock advances ~1ms per completion so the windows run in eviction
// steady state.
//
// The pre-refactor global-lock aggregator cannot run this benchmark at all:
// workers read the clock before reaching the lock, so reordered timestamps
// panic the shared exact window — and its per-Add eviction shifted the
// whole window slice (see BenchmarkAggregatorIngest: 142µs/op at the seed
// commit). results/BENCH_aggregator.json records the before/after numbers.
func BenchmarkAggregatorIngestParallel(b *testing.B) {
	for _, bc := range []struct {
		name string
		opts core.AggregatorOptions
	}{
		{"exact", core.AggregatorOptions{}},
		{"bucketed", core.AggregatorOptions{Window: core.WindowBucketed}},
	} {
		b.Run(bc.name, func(b *testing.B) {
			var clk atomic.Int64
			agg := core.NewAggregatorOptions(25*time.Second, func() time.Duration {
				return time.Duration(clk.Load())
			}, bc.opts)
			var worker atomic.Uint64
			b.ReportAllocs()
			b.RunParallel(func(pb *testing.PB) {
				w := worker.Add(1)
				names := [...]string{
					fmt.Sprintf("ASR_%d", w),
					fmt.Sprintf("IMM_%d", w),
					fmt.Sprintf("QA_%d", w),
				}
				var n uint64
				for pb.Next() {
					n++
					// One worker advances the virtual clock; the rest only
					// read it — like the wall clock the live engines use.
					if w == 1 {
						clk.Add(int64(time.Millisecond))
					}
					at := time.Duration(clk.Load())
					q := query.New(query.ID(w<<32|n), at-time.Second, nil)
					for _, inst := range names {
						q.Append(query.Record{Instance: inst, QueueEnter: at - time.Second, ServeStart: at - 900*time.Millisecond, ServeEnd: at})
					}
					q.Done = at
					agg.Ingest(q)
				}
			})
		})
	}
}

// BenchmarkChipDVFS measures budget-checked frequency transitions.
func BenchmarkChipDVFS(b *testing.B) {
	chip := cmp.NewChip(16, cmp.DefaultModel(), 1000)
	id, err := chip.Allocate(cmp.MidLevel)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		target := cmp.Level(i % cmp.NumLevels)
		if err := chip.SetLevel(id, target); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPowerRecycle measures Algorithm 2 against a ten-donor ranking.
func BenchmarkPowerRecycle(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	sys, agg := syntheticRankingState(rng)
	id := core.Identifier{Metric: core.MetricExpectedDelay}
	ranked := id.Rank(sys, agg)
	model := sys.PowerModel()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		donors := core.DonorsFromRanking(ranked, ranked[0].Instance)
		// Recycle then restore a small amount each iteration.
		r := core.Recycler{}
		freed := r.Recycle(model, donors, 0.5)
		for _, d := range donors {
			_ = d.SetLevel(cmp.MidLevel)
		}
		_ = freed
	}
}

// BenchmarkWorkloadDraw measures per-query demand sampling for Sirius.
func BenchmarkWorkloadDraw(b *testing.B) {
	a := app.Sirius()
	rng := rand.New(rand.NewSource(1))
	branches := []int{1, 1, 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if w := a.DrawWork(rng, branches); len(w) != 3 {
			b.Fatal("bad draw")
		}
	}
}

// --- Telemetry overhead ----------------------------------------------------

// benchLiveRoundTrip drives one query at a time through a single-stage live
// cluster and measures the submit→complete round trip — the hot path the
// telemetry hooks sit on. attach plumbs in the variant under test before the
// timer starts.
func benchLiveRoundTrip(b *testing.B, attach func(*live.Cluster)) {
	b.Helper()
	model := cmp.DefaultModel()
	cluster, err := live.NewCluster(live.Options{
		Cores:     4,
		Model:     model,
		Budget:    cmp.Watts(4) * model.MaxPower(),
		TimeScale: 1e-3,
	}, []live.StageSpec{{
		Name:      "S",
		Kind:      stage.Pipeline,
		Profile:   cmp.NewRooflineProfile(0.2),
		Instances: 1,
		Level:     cmp.MidLevel,
	}})
	if err != nil {
		b.Fatal(err)
	}
	defer cluster.Close()
	done := make(chan struct{})
	cluster.OnComplete(func(*query.Query) { done <- struct{}{} })
	if attach != nil {
		attach(cluster)
	}
	work := [][]time.Duration{{100 * time.Microsecond}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := query.New(query.ID(i), cluster.Now(), work)
		if err := cluster.Submit(q); err != nil {
			b.Fatal(err)
		}
		<-done
	}
}

// BenchmarkLiveHotPathBare is the no-telemetry baseline for
// BenchmarkTelemetryDisabled — nothing observability-related on the
// completion path.
func BenchmarkLiveHotPathBare(b *testing.B) { benchLiveRoundTrip(b, nil) }

// BenchmarkTelemetryDisabled measures the same round trip with telemetry
// plumbed in but switched off: a disabled (nil) tracer's ObserveQuery is
// registered on the completion path, exactly how the stage service wires it
// when -trace.sample is 0. The disabled path is a single nil-receiver test
// per completion; compare ns/op against BenchmarkLiveHotPathBare — the
// delta stays within benchmark noise (≪2%).
func BenchmarkTelemetryDisabled(b *testing.B) {
	benchLiveRoundTrip(b, func(c *live.Cluster) {
		var tracer *telemetry.Tracer // disabled: every method is a nil-safe no-op
		c.OnComplete(tracer.ObserveQuery)
	})
}

// BenchmarkTelemetryEnabled is the contrast case: tracing on and sampling
// every query, so each completion materializes a span tree into the ring.
func BenchmarkTelemetryEnabled(b *testing.B) {
	tracer := telemetry.NewTracer(telemetry.TracerOptions{Sample: 1})
	benchLiveRoundTrip(b, func(c *live.Cluster) {
		c.OnComplete(tracer.ObserveQuery)
	})
}

// BenchmarkPoissonGeneration measures arrival scheduling through the DES.
func BenchmarkPoissonGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine()
		chip := cmp.NewChip(16, cmp.DefaultModel(), 1000)
		specs, _ := app.Sirius().Specs(nil, cmp.MaxLevel)
		sys, err := stage.NewSystem(eng, chip, specs)
		if err != nil {
			b.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(i)))
		a := app.Sirius()
		gen := workload.NewGenerator(eng, sys, workload.Constant(50), func(r *rand.Rand) [][]time.Duration {
			return a.DrawWork(r, []int{1, 1, 1})
		}, rng, 100*time.Second)
		gen.Start()
		eng.RunUntil(100 * time.Second)
	}
}
