// Distributed: the real-system prototype in one process — three stage
// services listening on localhost TCP (as cmd/stagesvc would in separate
// processes), a Command Center connected over the framework's RPC, Poisson
// load, and the PowerChief policy actuating DVFS/clone/withdraw remotely.
// Time is compressed 100×.
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"sort"
	"sync"
	"time"

	"powerchief/internal/cmp"
	"powerchief/internal/controlplane"
	"powerchief/internal/core"
	"powerchief/internal/dist"
	"powerchief/internal/stage"
)

const scale = 0.01 // 1 virtual second = 10ms wall

func main() {
	// Start the three Sirius stage services.
	stages := []dist.StageOptions{
		{Name: "ASR", Kind: stage.Pipeline, MemBound: 0.15, Instances: 1, Level: cmp.MidLevel, TimeScale: scale},
		{Name: "IMM", Kind: stage.Pipeline, MemBound: 0.35, Instances: 1, Level: cmp.MidLevel, TimeScale: scale},
		{Name: "QA", Kind: stage.Pipeline, MemBound: 0.25, Instances: 1, Level: cmp.MidLevel, TimeScale: scale},
	}
	var addrs []string
	for _, so := range stages {
		svc, err := dist.NewStageService(so)
		if err != nil {
			log.Fatal(err)
		}
		defer svc.Close()
		addr, err := svc.Listen("127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("stage %s on %s\n", so.Name, addr)
		addrs = append(addrs, addr)
	}

	// Command Center with the Table 2 budget.
	center, err := dist.NewCenter(13.56, 25*time.Second, addrs)
	if err != nil {
		log.Fatal(err)
	}
	defer center.Close()

	// Control loop: PowerChief every 25 virtual seconds, on the shared
	// control plane with a wall clock compressed to the stages' time scale.
	loop, err := controlplane.Start(controlplane.WallClock(scale), center, controlplane.Options{
		Policy:   core.NewPowerChief(core.DefaultConfig()),
		Interval: 25 * time.Second,
		OnOutcome: func(out core.BoostOutcome) {
			if out.Kind != core.BoostNone {
				fmt.Printf("[command center] %s on %s\n", out.Kind, out.Target)
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// ~2.2 virtual qps of Sirius-like demands for 300 virtual seconds.
	rng := rand.New(rand.NewSource(1))
	var wg sync.WaitGroup
	deadline := time.Now().Add(time.Duration(300 * scale * float64(time.Second)))
	sent := 0
	for time.Now().Before(deadline) {
		work := [][]time.Duration{
			{draw(rng, 300*time.Millisecond, 0.3)},
			{draw(rng, 130*time.Millisecond, 0.25)},
			{draw(rng, 700*time.Millisecond, 0.55)},
		}
		sent++
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := center.Submit(work); err != nil {
				fmt.Println("submit:", err)
			}
		}()
		time.Sleep(time.Duration(rng.ExpFloat64() / 2.2 * scale * float64(time.Second)))
	}
	wg.Wait()
	loop.Stop()

	lats := center.Latencies()
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	var sum time.Duration
	for _, l := range lats {
		sum += l
	}
	if len(lats) == 0 {
		log.Fatal("no queries completed")
	}
	// Latencies are wall-clock; scale back to virtual for reporting.
	virt := func(d time.Duration) time.Duration { return time.Duration(float64(d) / scale) }
	fmt.Printf("\ndistributed run: %d queries, avg=%v p99=%v (virtual)\n",
		sent,
		virt(sum/time.Duration(len(lats))).Round(time.Millisecond),
		virt(lats[len(lats)*99/100]).Round(time.Millisecond))
}

func draw(rng *rand.Rand, median time.Duration, sigma float64) time.Duration {
	return time.Duration(float64(median) * math.Exp(sigma*rng.NormFloat64()))
}
