// Sirius: compare every boosting policy on the intelligent-personal-
// assistant pipeline across the three load levels of the paper's evaluation
// (Figure 10's experiment, printed as a table).
//
//	go run ./examples/sirius
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"
	"time"

	"powerchief"
	"powerchief/internal/core"
)

func main() {
	policies := []string{"baseline", "freq-boost", "inst-boost", "powerchief"}
	loads := []powerchief.LoadLevel{powerchief.LowLoad, powerchief.MediumLoad, powerchief.HighLoad}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "load\tpolicy\tavg latency\tp99 latency\tavg power\tinstances launched")
	for _, load := range loads {
		var baseline *powerchief.Result
		for _, name := range policies {
			mk, _ := powerchief.PolicyByName(name)
			res, err := powerchief.Run(powerchief.Scenario{
				Name:     fmt.Sprintf("sirius-%s-%s", load, name),
				App:      powerchief.Sirius(),
				Level:    powerchief.MidLevel,
				Budget:   13.56,
				Policy:   mk,
				Source:   powerchief.ConstantLoad(load),
				Duration: 900 * time.Second,
				Seed:     7,
			})
			if err != nil {
				log.Fatal(err)
			}
			if name == "baseline" {
				baseline = res
			}
			avg, p99 := powerchief.Improvement(baseline, res)
			fmt.Fprintf(tw, "%s\t%s\t%v (%.1fx)\t%v (%.1fx)\t%.2fW\t%d\n",
				load, name,
				res.Latency.Mean().Round(time.Millisecond), avg,
				res.Latency.P99().Round(time.Millisecond), p99,
				float64(res.AvgPower), res.Boosts[core.BoostInstance])
		}
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}
}
