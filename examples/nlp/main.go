// NLP: run the Senna semantic-parsing pipeline (POS → PSG → SRL) under the
// time-varying load profile of the paper's runtime-behaviour experiment and
// dump PowerChief's decisions — per-stage instance counts and per-instance
// frequencies over time — as CSV.
//
//	go run ./examples/nlp > nlp-trace.csv
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"powerchief"
	"powerchief/internal/harness"
	"powerchief/internal/workload"
)

func main() {
	res, err := powerchief.Run(powerchief.Scenario{
		Name:   "nlp-phased",
		App:    powerchief.NLP(),
		Level:  powerchief.MidLevel,
		Budget: 13.56,
		Policy: powerchief.PowerChiefPolicy(),
		Source: func(capacity float64) powerchief.Source {
			base := workload.RateForUtilization(capacity, powerchief.HighLoad.Utilization())
			return workload.Figure11Trace(base)
		},
		Duration: 900 * time.Second,
		Seed:     3,
	})
	if err != nil {
		log.Fatal(err)
	}
	_ = powerchief.WriteResult(os.Stderr, res)
	fmt.Fprintf(os.Stderr, "writing runtime trace CSV to stdout (instances, frequencies, power, latency)\n")
	if err := harness.WriteRuntimeTrace(os.Stdout, res); err != nil {
		log.Fatal(err)
	}
}
