// Web Search: the QoS power-conservation scenario (Figure 14's experiment).
// An over-provisioned search cluster — 10 leaf replicas and an aggregator at
// maximum frequency — serves a bursty load with a 250 ms latency target;
// the example compares no control, the Pegasus-style stage-agnostic saver,
// and PowerChief's stage-aware saver.
//
//	go run ./examples/websearch
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"
	"time"

	"powerchief"
	"powerchief/internal/workload"
)

func main() {
	const qos = 250 * time.Millisecond
	policies := []struct {
		name string
		mk   func() powerchief.Policy
	}{
		{"baseline", nil},
		{"pegasus", mustQoS("pegasus", qos)},
		{"powerchief-saver", mustQoS("saver", qos)},
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "policy\tavg latency\tfraction of QoS\tavg power\tfraction of peak\tpower saved")
	for _, p := range policies {
		res, err := powerchief.Run(powerchief.Scenario{
			Name:           "websearch-" + p.name,
			App:            powerchief.WebSearch(),
			Instances:      []int{10, 1}, // Table 3
			Level:          powerchief.MaxLevel,
			Policy:         p.mk,
			AdjustInterval: 2 * time.Second,
			StatsWindow:    8 * time.Second,
			Source: func(capacity float64) powerchief.Source {
				base := workload.RateForUtilization(capacity, 0.30)
				tr, err := workload.BurstTrace(base, base*2.2, 25*time.Second, 6*time.Second, 200*time.Second)
				if err != nil {
					log.Fatal(err)
				}
				return tr
			},
			Duration: 200 * time.Second,
			Seed:     9,
		})
		if err != nil {
			log.Fatal(err)
		}
		avg := res.Latency.Mean()
		powerFrac := float64(res.AvgPower) / float64(res.PeakPower)
		fmt.Fprintf(tw, "%s\t%v\t%.2f\t%.1fW\t%.2f\t%.0f%%\n",
			p.name, avg.Round(time.Millisecond), avg.Seconds()/qos.Seconds(),
			float64(res.AvgPower), powerFrac, (1-powerFrac)*100)
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nBoth savers must keep latency under the QoS; the stage-aware saver")
	fmt.Println("withdraws idle leaf replicas and deboosts per instance, so it saves more.")
}

func mustQoS(name string, qos time.Duration) func() powerchief.Policy {
	mk, ok := powerchief.PolicyByNameQoS(name, qos)
	if !ok {
		log.Fatalf("unknown policy %s", name)
	}
	return mk
}
