// Custom: build your own multi-stage application on the public API. This
// example models a video-analysis service — Decode → Detect → Annotate —
// with hand-written demand distributions, and shows how PowerChief adapts
// its technique as the load grows: frequency boosting while queues are
// shallow, instance boosting once queuing dominates.
//
//	go run ./examples/custom
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"powerchief"
)

func main() {
	video := powerchief.App{
		Name: "video-analysis",
		Stages: []powerchief.StageProfile{
			// Decode is cheap and scales almost linearly with frequency.
			{Name: "Decode", Work: powerchief.WorkModel{Median: 80 * time.Millisecond, Sigma: 0.2}, MemBound: 0.1},
			// Detection dominates and is partly memory bound.
			{Name: "Detect", Work: powerchief.WorkModel{Median: 600 * time.Millisecond, Sigma: 0.5}, MemBound: 0.3},
			// Annotation is moderate with a long tail.
			{Name: "Annotate", Work: powerchief.WorkModel{Median: 200 * time.Millisecond, Sigma: 0.6}, MemBound: 0.2},
		},
	}
	if err := video.Validate(); err != nil {
		log.Fatal(err)
	}

	for _, load := range []powerchief.LoadLevel{powerchief.LowLoad, powerchief.HighLoad} {
		base, err := powerchief.Run(powerchief.Scenario{
			Name: fmt.Sprintf("video-%s-baseline", load), App: video,
			Level: powerchief.MidLevel, Budget: 13.56,
			Source: powerchief.ConstantLoad(load), Duration: 600 * time.Second, Seed: 5,
		})
		if err != nil {
			log.Fatal(err)
		}
		managed, err := powerchief.Run(powerchief.Scenario{
			Name: fmt.Sprintf("video-%s-powerchief", load), App: video,
			Level: powerchief.MidLevel, Budget: 13.56,
			Policy: powerchief.PowerChiefPolicy(),
			Source: powerchief.ConstantLoad(load), Duration: 600 * time.Second, Seed: 5,
		})
		if err != nil {
			log.Fatal(err)
		}
		_ = powerchief.WriteResult(os.Stdout, base)
		_ = powerchief.WriteResult(os.Stdout, managed)
		avg, p99 := powerchief.Improvement(base, managed)
		fmt.Printf("→ %s load: %.1fx avg, %.1fx p99 improvement\n\n", load, avg, p99)
	}
}
