// Fleet: the federated Command Center hierarchy in one process — three node
// services listening on localhost TCP behind fault-injection proxies (as
// cmd/nodesvc would in separate processes), a fleet coordinator dialing
// through them, and a scripted chaos sequence: allocate the 100W pool, kill
// a node mid-run, watch its watts reclaimed within one epoch and
// redistributed, heal it, and watch the budget-safe, epoch-fenced
// re-admission.
//
// The program exits non-zero if the cluster invariant — Σ granted node
// budgets ≤ cluster budget at every epoch — is ever violated, or if the
// killed node's watts are not reclaimed and the node not re-admitted. CI
// runs it as the fleet chaos smoke.
//
//	go run ./examples/fleet
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"powerchief/internal/cmp"
	"powerchief/internal/dist"
	"powerchief/internal/fault"
	"powerchief/internal/fleet"
	"powerchief/internal/rpc"
	"powerchief/internal/telemetry"
)

const (
	budget = cmp.Watts(100)
	floor  = cmp.Watts(10)
)

func main() {
	// Three synthetic nodes with different work intensities, each behind its
	// own chaos proxy.
	loads := []float64{1, 1.5, 2}
	var proxies []*dist.ChaosProxy
	var transports []fleet.Transport
	for i, load := range loads {
		name := fmt.Sprintf("node-%d", i)
		svc, err := fleet.NewNodeService(name, fleet.NewSynthBackend(load, 0))
		if err != nil {
			log.Fatal(err)
		}
		defer svc.Close()
		backend, err := svc.Listen("127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		proxy := dist.NewChaosProxy(backend)
		front, err := proxy.Listen("127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		defer proxy.Close()
		proxies = append(proxies, proxy)
		fmt.Printf("node %s on %s (load %.2f)\n", name, front, load)

		node, err := fleet.DialNode(front, rpc.ClientOptions{
			DialTimeout: 500 * time.Millisecond,
			CallTimeout: 300 * time.Millisecond,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer node.Close()
		transports = append(transports, node)
	}

	audit := telemetry.NewAuditLog(0)
	coord, err := fleet.NewCoordinator(fleet.Options{
		Budget: budget, Floor: floor, SuspectAfter: 2, Audit: audit,
	}, transports...)
	if err != nil {
		log.Fatal(err)
	}
	reb := fleet.NewRebalance()

	// One control epoch: adjust, then check the cluster invariant.
	violations := 0
	epoch := func(tag string) {
		if _, err := coord.Adjust(reb); err != nil && !fault.IsDegraded(err) {
			log.Fatalf("%s: %v", tag, err)
		}
		draw := coord.Draw()
		ok := draw <= budget+1e-9
		if !ok {
			violations++
		}
		fmt.Printf("[%s] Σ granted %6.2fW / %.0fW  healths %v\n", tag, float64(draw), float64(budget), coord.Healths())
	}

	fmt.Println("\n-- cold start: metric-weighted allocation of the pool --")
	epoch("alloc")
	epoch("steady")

	fmt.Println("\n-- kill node-0 (partition: state and epoch kept) --")
	proxies[0].Partition()
	epoch("suspect")
	epoch("reclaim")
	reclaimed := coord.Granted()["node-0"] == 0
	if !reclaimed {
		fmt.Println("FAIL: killed node still holds watts after the reclaim epoch")
	}
	epoch("degraded")

	fmt.Println("\n-- heal node-0: fenced, budget-safe re-admission at the floor --")
	proxies[0].Restore("")
	epoch("readmit")
	epoch("cooldown")
	readmitted := coord.Healths()["node-0"] == fault.Healthy
	if !readmitted {
		fmt.Println("FAIL: healed node was not re-admitted")
	}

	q, r, f := coord.Counts()
	fmt.Printf("\n%d quarantines, %d re-admissions, %d fenced stale reports, %d audit events\n",
		q, r, f, len(audit.Events()))
	if violations > 0 || !reclaimed || !readmitted {
		fmt.Printf("FAIL: %d invariant violations\n", violations)
		os.Exit(1)
	}
	fmt.Println("OK: Σ granted ≤ budget at every epoch; reclaim and re-admission on time")
}
