// Quickstart: run the Sirius intelligent-personal-assistant pipeline under
// a 13.56 W power budget at high load, first with the stage-agnostic
// baseline and then with PowerChief, and compare end-to-end latency.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"powerchief"
)

func main() {
	base := powerchief.Scenario{
		Name:     "quickstart-baseline",
		App:      powerchief.Sirius(),
		Level:    powerchief.MidLevel, // one instance per stage at 1.8 GHz
		Budget:   13.56,               // watts — Table 2 of the paper
		Source:   powerchief.ConstantLoad(powerchief.HighLoad),
		Duration: 900 * time.Second,
		Seed:     42,
	}
	baseline, err := powerchief.Run(base)
	if err != nil {
		log.Fatal(err)
	}

	managed := base
	managed.Name = "quickstart-powerchief"
	managed.Policy = powerchief.PowerChiefPolicy()
	boosted, err := powerchief.Run(managed)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Sirius under high load, 13.56W budget:")
	_ = powerchief.WriteResult(os.Stdout, baseline)
	_ = powerchief.WriteResult(os.Stdout, boosted)
	avg, p99 := powerchief.Improvement(baseline, boosted)
	fmt.Printf("\nPowerChief improves average latency %.1fx and 99th percentile %.1fx\n", avg, p99)
	fmt.Printf("while drawing %.2fW of the %.2fW budget on average.\n",
		float64(boosted.AvgPower), float64(managed.Budget))
}
