// Livedemo: run the framework as a real runtime rather than a simulation —
// goroutine workers, wall-clock ticker, the same PowerChief policy. Time is
// compressed 100× so a 5-minute experiment takes ~3 seconds.
//
//	go run ./examples/livedemo
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"sort"
	"sync"
	"time"

	"powerchief/internal/cmp"
	"powerchief/internal/core"
	"powerchief/internal/live"
	"powerchief/internal/query"
	"powerchief/internal/stage"
)

func main() {
	const scale = 0.01 // 1 virtual second = 10ms wall

	cluster, err := live.NewCluster(live.Options{
		Budget:    13.56,
		TimeScale: scale,
	}, []live.StageSpec{
		{Name: "ASR", Kind: stage.Pipeline, Profile: cmp.NewRooflineProfile(0.15), Instances: 1, Level: cmp.MidLevel},
		{Name: "IMM", Kind: stage.Pipeline, Profile: cmp.NewRooflineProfile(0.35), Instances: 1, Level: cmp.MidLevel},
		{Name: "QA", Kind: stage.Pipeline, Profile: cmp.NewRooflineProfile(0.25), Instances: 1, Level: cmp.MidLevel},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	agg := core.NewAggregator(25*time.Second, cluster.Now)
	cluster.OnComplete(agg.Ingest)
	var mu sync.Mutex
	var latencies []time.Duration
	done := make(chan struct{}, 65536)
	cluster.OnComplete(func(q *query.Query) {
		mu.Lock()
		latencies = append(latencies, q.Latency())
		mu.Unlock()
		done <- struct{}{}
	})

	ctl := live.StartController(cluster, agg, core.NewPowerChief(core.DefaultConfig()), 25*time.Second)
	defer ctl.Stop()

	// Drive ~2 qps (virtual) of Sirius-like load for 300 virtual seconds.
	rng := rand.New(rand.NewSource(1))
	sent := 0
	horizon := time.Now().Add(time.Duration(300 * scale * float64(time.Second)))
	for time.Now().Before(horizon) {
		work := [][]time.Duration{
			{draw(rng, 300*time.Millisecond, 0.3)},
			{draw(rng, 130*time.Millisecond, 0.25)},
			{draw(rng, 700*time.Millisecond, 0.55)},
		}
		if err := cluster.Submit(query.New(query.ID(sent), cluster.Now(), work)); err != nil {
			log.Fatal(err)
		}
		sent++
		time.Sleep(time.Duration(rng.ExpFloat64() / 2.2 * scale * float64(time.Second)))
	}
	// Wait for the pipeline to drain.
	for received := 0; received < sent; received++ {
		<-done
	}

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	var sum time.Duration
	for _, l := range latencies {
		sum += l
	}
	fmt.Printf("live run: %d queries, avg=%v p99=%v (virtual time)\n",
		sent, (sum / time.Duration(len(latencies))).Round(time.Millisecond),
		latencies[len(latencies)*99/100].Round(time.Millisecond))
	boosts := 0
	for _, out := range ctl.Outcomes() {
		if out.Kind != core.BoostNone {
			boosts++
			fmt.Printf("  decision: %s on %s\n", out.Kind, out.Target)
		}
	}
	fmt.Printf("controller made %d boosting decisions across %d intervals\n", boosts, len(ctl.Outcomes()))
}

// draw samples a lognormal demand.
func draw(rng *rand.Rand, median time.Duration, sigma float64) time.Duration {
	return time.Duration(float64(median) * math.Exp(sigma*rng.NormFloat64()))
}
