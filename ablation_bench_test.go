package powerchief

// Ablation benchmarks: each isolates one design choice DESIGN.md calls out
// and reports the reproduced effect as custom metrics. Run with:
//
//	go test -bench=Ablation -benchtime=1x

import (
	"testing"

	"powerchief/internal/harness"
)

// reportAblation emits every variant's average improvement as a metric.
func reportAblation(b *testing.B, res *harness.AblationResult, keys map[string]string) {
	b.Helper()
	for _, row := range res.Rows {
		for prefix, metric := range keys {
			if len(row.Label) >= len(prefix) && row.Label[:len(prefix)] == prefix {
				b.ReportMetric(row.Avg, metric)
			}
		}
	}
}

// BenchmarkAblationMetric isolates the bottleneck metric: Equation 1
// (history + realtime queue length) against the purely historical Table 1
// metrics. The serving-only metric collapses because it never sees queuing.
func BenchmarkAblationMetric(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.AblationMetric(13)
		if err != nil {
			b.Fatal(err)
		}
		reportAblation(b, res, map[string]string{
			"expected-delay": "eq1-x",
			"avg-processing": "hist-x",
			"avg-serving":    "serving-x",
		})
	}
}

// BenchmarkAblationWithdraw isolates instance withdraw under the phased
// Figure 11 load.
func BenchmarkAblationWithdraw(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.AblationWithdraw(5)
		if err != nil {
			b.Fatal(err)
		}
		reportAblation(b, res, map[string]string{
			"withdraw-150s": "withdraw-x",
			"withdraw-off":  "no-withdraw-x",
		})
	}
}

// BenchmarkAblationSplitClone isolates the split-clone refinement at medium
// load (the literal Algorithm 1 deadlocks after an early overshoot).
func BenchmarkAblationSplitClone(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.AblationSplitClone(7)
		if err != nil {
			b.Fatal(err)
		}
		reportAblation(b, res, map[string]string{
			"split-clone":  "split-x",
			"literal-alg1": "literal-x",
		})
	}
}

// BenchmarkAblationBalanceThreshold sweeps the §8.1 oscillation guard.
func BenchmarkAblationBalanceThreshold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.AblationBalanceThreshold(7)
		if err != nil {
			b.Fatal(err)
		}
		reportAblation(b, res, map[string]string{
			"0s": "th0-x",
			"1s": "th1-x",
			"5s": "th5-x",
		})
	}
}

// BenchmarkAblationDispatcher compares stage dispatch policies under
// PowerChief.
func BenchmarkAblationDispatcher(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.AblationDispatcher(7)
		if err != nil {
			b.Fatal(err)
		}
		reportAblation(b, res, map[string]string{
			"join-shortest-queue":  "jsq-x",
			"round-robin":          "rr-x",
			"least-expected-delay": "led-x",
		})
	}
}

// BenchmarkBudgetSweep reports the tight-budget (7 W) and Table 2 (13.56 W)
// PowerChief-vs-baseline gaps of the budget-sensitivity study.
func BenchmarkBudgetSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.BudgetSweep(Sirius(), HighLoad, harness.DefaultSweepBudgets(), 7)
		if err != nil {
			b.Fatal(err)
		}
		byBudget := map[float64]map[string]float64{}
		for _, p := range res.Points {
			m := byBudget[float64(p.Budget)]
			if m == nil {
				m = map[string]float64{}
				byBudget[float64(p.Budget)] = m
			}
			m[p.Policy] = p.Avg.Seconds()
		}
		if m := byBudget[7]; m["powerchief"] > 0 {
			b.ReportMetric(m["baseline"]/m["powerchief"], "7W-x")
		}
		if m := byBudget[13.56]; m["powerchief"] > 0 {
			b.ReportMetric(m["baseline"]/m["powerchief"], "13.56W-x")
		}
	}
}
