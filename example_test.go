package powerchief_test

import (
	"fmt"
	"time"

	"powerchief"
)

// ExampleRun shows the core comparison of the paper: the same Sirius
// pipeline under the same 13.56 W budget and high load, with and without
// PowerChief.
func ExampleRun() {
	base := powerchief.Scenario{
		App:      powerchief.Sirius(),
		Level:    powerchief.MidLevel,
		Budget:   13.56,
		Source:   powerchief.ConstantLoad(powerchief.HighLoad),
		Duration: 300 * time.Second,
		Seed:     1,
	}
	baseline, err := powerchief.Run(base)
	if err != nil {
		fmt.Println(err)
		return
	}
	managed := base
	managed.Policy = powerchief.PowerChiefPolicy()
	boosted, err := powerchief.Run(managed)
	if err != nil {
		fmt.Println(err)
		return
	}
	avg, _ := powerchief.Improvement(baseline, boosted)
	fmt.Printf("all queries completed: %v\n", boosted.Completed == boosted.Submitted)
	fmt.Printf("PowerChief at least 2x better under high load: %v\n", avg >= 2)
	fmt.Printf("budget respected: %v\n", boosted.AvgPower <= managed.Budget)
	// Output:
	// all queries completed: true
	// PowerChief at least 2x better under high load: true
	// budget respected: true
}

// ExampleApp shows how to define a custom multi-stage application and
// validate it.
func ExampleApp() {
	app := powerchief.App{
		Name: "etl",
		Stages: []powerchief.StageProfile{
			{Name: "Extract", Work: powerchief.WorkModel{Median: 50 * time.Millisecond, Sigma: 0.2}, MemBound: 0.4},
			{Name: "Transform", Work: powerchief.WorkModel{Median: 400 * time.Millisecond, Sigma: 0.5}, MemBound: 0.2},
			{Name: "Load", Work: powerchief.WorkModel{Median: 80 * time.Millisecond, Sigma: 0.3}, MemBound: 0.5},
		},
	}
	fmt.Println("valid:", app.Validate() == nil)
	fmt.Println("heaviest stage:", app.Stages[app.HeaviestStage()].Name)
	// Output:
	// valid: true
	// heaviest stage: Transform
}

// ExamplePolicyByName enumerates the built-in control policies.
func ExamplePolicyByName() {
	for _, name := range []string{"baseline", "freq-boost", "inst-boost", "powerchief"} {
		mk, ok := powerchief.PolicyByName(name)
		fmt.Println(name, ok, mk().Name() == name)
	}
	// Output:
	// baseline true true
	// freq-boost true true
	// inst-boost true true
	// powerchief true true
}

// ExampleNewLiveCluster runs the framework as a real runtime with
// compressed time: workers are goroutines, the controller is a ticker.
func ExampleNewLiveCluster() {
	cluster, err := powerchief.NewLiveCluster(
		powerchief.Sirius(), nil, powerchief.MidLevel,
		powerchief.LiveOptions{Budget: 13.56, TimeScale: 0.001},
	)
	if err != nil {
		fmt.Println(err)
		return
	}
	defer cluster.Close()

	agg := powerchief.NewAggregatorFor(cluster)
	cluster.OnComplete(agg.Ingest)
	done := make(chan struct{}, 1)
	cluster.OnComplete(func(q *powerchief.Query) { done <- struct{}{} })

	q := powerchief.NewQuery(1, cluster.Now(), [][]time.Duration{
		{300 * time.Millisecond},
		{130 * time.Millisecond},
		{700 * time.Millisecond},
	})
	if err := cluster.Submit(q); err != nil {
		fmt.Println(err)
		return
	}
	<-done
	fmt.Println("completed:", q.Completed())
	fmt.Println("records from all three stages:", len(q.Records) == 3)
	// Output:
	// completed: true
	// records from all three stages: true
}
