package stats

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestBucketWindowMean(t *testing.T) {
	w := NewBucketWindow(10*time.Second, 10)
	if _, ok := w.Mean(); ok {
		t.Fatal("empty window reported a mean")
	}
	w.Add(1*time.Second, 100*time.Millisecond)
	w.Add(2*time.Second, 300*time.Millisecond)
	m, ok := w.Mean()
	if !ok || m != 200*time.Millisecond {
		t.Fatalf("Mean = %v,%v; want 200ms,true", m, ok)
	}
	if got := w.MeanOr(time.Hour); got != 200*time.Millisecond {
		t.Errorf("MeanOr = %v", got)
	}
	if w.Sum() != 400*time.Millisecond {
		t.Errorf("Sum = %v", w.Sum())
	}
	if w.Len() != 2 {
		t.Errorf("Len = %d", w.Len())
	}
}

func TestBucketWindowEviction(t *testing.T) {
	w := NewBucketWindow(10*time.Second, 10) // width 1s
	w.Add(0, 1*time.Second)
	w.Add(5*time.Second, 2*time.Second)
	// Advancing well past the first bucket's expiry drops only it.
	w.Advance(12 * time.Second)
	if w.Len() != 1 {
		t.Fatalf("Len = %d, want 1", w.Len())
	}
	if m, _ := w.Mean(); m != 2*time.Second {
		t.Errorf("Mean after eviction = %v, want 2s", m)
	}
	// An idle gap longer than the span drains everything in one advance.
	w.Advance(time.Hour)
	if w.Len() != 0 {
		t.Fatalf("Len after idle gap = %d, want 0", w.Len())
	}
	if _, ok := w.Mean(); ok {
		t.Error("drained window reported a mean")
	}
	// The window still accepts samples after the gap.
	w.Add(time.Hour+time.Second, 7*time.Second)
	if m, ok := w.Mean(); !ok || m != 7*time.Second {
		t.Errorf("Mean after refill = %v,%v", m, ok)
	}
}

func TestBucketWindowGranularity(t *testing.T) {
	// Samples leave within one bucket width of their exact expiry: a sample
	// never outlives span+width, and is never evicted before span-width.
	w := NewBucketWindow(10*time.Second, 10) // width 1s
	w.Add(1500*time.Millisecond, time.Second)
	w.Advance(10 * time.Second) // age 8.5s: inside the span, must be retained
	if w.Len() != 1 {
		t.Fatal("sample inside the span evicted")
	}
	w.Advance(12500 * time.Millisecond) // age 11s > span+width: must be gone
	if w.Len() != 0 {
		t.Fatal("sample older than span+width retained")
	}
}

func TestBucketWindowClampsBackwardsTime(t *testing.T) {
	w := NewBucketWindow(10*time.Second, 10)
	w.Add(5*time.Second, time.Second)
	w.Add(4*time.Second, 3*time.Second) // clamped to t=5s, not a panic
	if w.Len() != 2 {
		t.Fatalf("Len = %d, want 2", w.Len())
	}
	if m, _ := w.Mean(); m != 2*time.Second {
		t.Errorf("Mean = %v, want 2s", m)
	}
}

func TestBucketWindowPercentileAndMax(t *testing.T) {
	w := NewBucketWindow(time.Hour, 32)
	for i := 1; i <= 100; i++ {
		w.Add(time.Duration(i)*time.Second, time.Duration(i)*time.Millisecond)
	}
	// Bin interpolation: the p99 must land within the bin growth factor of
	// the exact 99ms.
	p99, ok := w.Percentile(0.99)
	if !ok {
		t.Fatal("no percentile from a populated window")
	}
	lo := time.Duration(float64(99*time.Millisecond) / binGrowth)
	hi := 100 * time.Millisecond // clamped by the tracked max
	if p99 < lo || p99 > hi {
		t.Errorf("P99 = %v, want within [%v, %v]", p99, lo, hi)
	}
	// Extreme ranks are exact: tracked min and max.
	if p0, _ := w.Percentile(-0.5); p0 != 1*time.Millisecond {
		t.Errorf("P(min) = %v, want 1ms", p0)
	}
	if p1, _ := w.Percentile(1.5); p1 != 100*time.Millisecond {
		t.Errorf("P(max) = %v, want 100ms", p1)
	}
	if max, _ := w.Max(); max != 100*time.Millisecond {
		t.Errorf("Max = %v", max)
	}
}

func TestBucketWindowEmpty(t *testing.T) {
	w := NewBucketWindow(time.Second, 0)
	if w.Buckets() != DefaultBuckets {
		t.Errorf("Buckets = %d, want default %d", w.Buckets(), DefaultBuckets)
	}
	if _, ok := w.Percentile(0.5); ok {
		t.Error("empty window reported a percentile")
	}
	if _, ok := w.Max(); ok {
		t.Error("empty window reported a max")
	}
}

func TestBucketWindowReset(t *testing.T) {
	w := NewBucketWindow(time.Hour, 8)
	w.Add(time.Second, time.Second)
	w.Reset()
	if w.Len() != 0 || w.Sum() != 0 {
		t.Error("Reset did not clear samples")
	}
	// The time floor persists: an older Add clamps forward.
	w.Add(0, 2*time.Second)
	if w.Len() != 1 {
		t.Error("Add after Reset lost the sample")
	}
}

func TestNewBucketWindowValidates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewBucketWindow(0, 0) did not panic")
		}
	}()
	NewBucketWindow(0, 0)
}

// TestBucketWindowAddZeroAlloc pins the constant-memory claim: once
// constructed, steady-state Add never allocates.
func TestBucketWindowAddZeroAlloc(t *testing.T) {
	w := NewBucketWindow(time.Second, 16)
	at := time.Duration(0)
	allocs := testing.AllocsPerRun(2000, func() {
		at += time.Millisecond
		w.Add(at, 5*time.Millisecond)
	})
	if allocs != 0 {
		t.Fatalf("BucketWindow.Add allocates %.1f times per op in steady state, want 0", allocs)
	}
	// Percentile reads must not allocate either (they reuse the scratch).
	allocs = testing.AllocsPerRun(100, func() {
		w.Percentile(0.99)
	})
	if allocs != 0 {
		t.Fatalf("BucketWindow.Percentile allocates %.1f times per op, want 0", allocs)
	}
}

// Property: under monotone timestamps the bucketed window's retained set is
// exactly the samples whose bucket index is within one ring revolution of
// the current bucket — so Len and Sum are fully predictable, and the mean
// over that set is exact (only eviction timing is granular, by at most one
// bucket width in either direction of the span boundary).
func TestPropertyBucketWindowTracksExact(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		span := time.Duration(5+rng.Intn(50)) * time.Second
		bucketed := NewBucketWindow(span, 16)
		width := bucketed.width
		n := int64(bucketed.Buckets())
		var hist []Sample
		now := time.Duration(0)
		for i := 0; i < 300; i++ {
			now += time.Duration(rng.Intn(2000)) * time.Millisecond
			v := time.Duration(rng.Intn(1000)) * time.Millisecond
			bucketed.Add(now, v)
			hist = append(hist, Sample{At: now, Value: v})
			wantLen, wantSum := 0, time.Duration(0)
			for _, s := range hist {
				if int64(now/width)-int64(s.At/width) < n {
					wantLen++
					wantSum += s.Value
				}
			}
			if bucketed.Len() != wantLen || bucketed.Sum() != wantSum {
				return false
			}
			// Eviction granularity: everything retained is younger than
			// span+width, everything younger than span-width is retained.
			for _, s := range hist {
				age := now - s.At
				retained := int64(now/width)-int64(s.At/width) < n
				if retained && age > span+width {
					return false
				}
				if !retained && age < span-width {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkBucketWindowAdd measures the steady-state O(1) add/evict path.
func BenchmarkBucketWindowAdd(b *testing.B) {
	w := NewBucketWindow(25*time.Second, 32)
	b.ReportAllocs()
	at := time.Duration(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		at += time.Millisecond
		w.Add(at, 5*time.Millisecond)
	}
}

// BenchmarkWindowAddSteadyState measures the exact window's amortized
// add/evict with a full 25s window at 1ms cadence (25k live samples) — the
// configuration whose per-Add slice shift cost 142µs before the head-index
// eviction rewrite.
func BenchmarkWindowAddSteadyState(b *testing.B) {
	w := NewWindow(25 * time.Second)
	b.ReportAllocs()
	at := time.Duration(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		at += time.Millisecond
		w.Add(at, 5*time.Millisecond)
	}
}
