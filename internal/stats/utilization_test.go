package stats

import (
	"math"
	"testing"
	"time"
)

func TestBusyTrackerBasic(t *testing.T) {
	b := NewBusyTracker()
	if b.Busy() {
		t.Fatal("new tracker reports busy")
	}
	b.SetBusy(10 * time.Second)
	b.SetIdle(30 * time.Second)
	if got := b.BusySince(40 * time.Second); got != 20*time.Second {
		t.Errorf("BusySince = %v, want 20s", got)
	}
	// 20s busy over a 40s epoch = 50%.
	if u := b.Utilization(40 * time.Second); math.Abs(u-0.5) > 1e-12 {
		t.Errorf("Utilization = %v, want 0.5", u)
	}
}

func TestBusyTrackerOpenInterval(t *testing.T) {
	b := NewBusyTracker()
	b.SetBusy(5 * time.Second)
	// Still busy: the open interval counts up to now.
	if got := b.BusySince(15 * time.Second); got != 10*time.Second {
		t.Errorf("open-interval BusySince = %v, want 10s", got)
	}
	if !b.Busy() {
		t.Error("tracker lost busy state")
	}
}

func TestBusyTrackerRedundantTransitions(t *testing.T) {
	b := NewBusyTracker()
	b.SetBusy(1 * time.Second)
	b.SetBusy(2 * time.Second) // ignored
	b.SetIdle(3 * time.Second)
	b.SetIdle(4 * time.Second) // ignored
	if got := b.BusySince(10 * time.Second); got != 2*time.Second {
		t.Errorf("BusySince = %v, want 2s (from first busy mark)", got)
	}
}

func TestBusyTrackerEpochReset(t *testing.T) {
	b := NewBusyTracker()
	b.SetBusy(0)
	b.SetIdle(50 * time.Second)
	b.ResetEpoch(100 * time.Second)
	if got := b.BusySince(150 * time.Second); got != 0 {
		t.Errorf("BusySince after epoch reset = %v, want 0", got)
	}
	// Busy state carries across a reset.
	b.SetBusy(150 * time.Second)
	b.ResetEpoch(200 * time.Second)
	if u := b.Utilization(250 * time.Second); math.Abs(u-1.0) > 1e-12 {
		t.Errorf("Utilization of carried busy state = %v, want 1", u)
	}
}

func TestBusyTrackerZeroSpan(t *testing.T) {
	b := NewBusyTracker()
	if u := b.Utilization(0); u != 0 {
		t.Errorf("zero-span utilization = %v", u)
	}
}

func TestBusyTrackerWithdrawThresholdScenario(t *testing.T) {
	// The paper's withdraw rule: busy < 20% of a 150s interval.
	b := NewBusyTracker()
	b.ResetEpoch(0)
	b.SetBusy(10 * time.Second)
	b.SetIdle(35 * time.Second) // 25s busy in a 150s epoch ≈ 16.7%
	u := b.Utilization(150 * time.Second)
	if u >= 0.2 {
		t.Errorf("utilization %v should fall below the 20%% withdraw threshold", u)
	}
	b.ResetEpoch(150 * time.Second)
	b.SetBusy(150 * time.Second)
	b.SetIdle(190 * time.Second) // 40s busy in 150s ≈ 26.7%
	u = b.Utilization(300 * time.Second)
	if u < 0.2 {
		t.Errorf("utilization %v should stay above the 20%% withdraw threshold", u)
	}
}
