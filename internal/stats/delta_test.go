package stats

import (
	"encoding/json"
	"math/rand"
	"testing"
	"time"
)

// TestDeltaAccumulatorFlushTriggers pins the thresholded net-commit
// contract: a batch is due after Batch completed queries, or once the first
// unflushed fold is Interval old — whichever comes first.
func TestDeltaAccumulatorFlushTriggers(t *testing.T) {
	a := NewDeltaAccumulator(3, 50*time.Millisecond)

	if a.Due(0) {
		t.Fatal("empty accumulator must not be due")
	}
	if d := a.FlushIfDue(time.Hour); d != nil {
		t.Fatal("empty accumulator flushed a delta")
	}

	// Count threshold.
	a.FoldCompletion(1 * time.Millisecond)
	a.FoldCompletion(2 * time.Millisecond)
	if a.Due(2 * time.Millisecond) {
		t.Fatal("2 of 3 queries must not be due before the interval")
	}
	a.FoldCompletion(3 * time.Millisecond)
	if !a.Due(3 * time.Millisecond) {
		t.Fatal("3 of 3 queries must be due")
	}
	d := a.FlushIfDue(3 * time.Millisecond)
	if d == nil || d.Queries != 3 || d.Seq != 1 {
		t.Fatalf("flush = %+v, want 3 queries seq 1", d)
	}
	if q, _ := a.Pending(); q != 0 {
		t.Fatalf("pending after flush = %d, want 0", q)
	}

	// Interval threshold: one query, batch far from full.
	a.FoldCompletion(10 * time.Millisecond)
	if a.Due(30 * time.Millisecond) {
		t.Fatal("young single-query batch must not be due")
	}
	if !a.Due(60 * time.Millisecond) {
		t.Fatal("batch older than the interval must be due")
	}
	d = a.FlushIfDue(60 * time.Millisecond)
	if d == nil || d.Queries != 1 || d.Seq != 2 {
		t.Fatalf("interval flush = %+v, want 1 query seq 2", d)
	}

	// Unconditional flush drains whatever is pending.
	a.FoldRecord(70*time.Millisecond, "web-0", "web", time.Millisecond, 2*time.Millisecond)
	if d = a.Flush(70 * time.Millisecond); d == nil || d.Records() != 1 {
		t.Fatalf("unconditional flush = %+v, want 1 record", d)
	}
	if d = a.Flush(70 * time.Millisecond); d != nil {
		t.Fatal("second flush must return nil")
	}
	if got := a.Flushes(); got != 3 {
		t.Fatalf("lifetime flushes = %d, want 3", got)
	}
}

// TestDeltaAccumulatorMonotoneClamp proves racing completion timestamps
// cannot drive the accumulator's clock backwards: a fold older than the
// floor clamps, so FirstNS/LastNS stay ordered.
func TestDeltaAccumulatorMonotoneClamp(t *testing.T) {
	a := NewDeltaAccumulator(100, time.Second)
	a.FoldCompletion(50 * time.Millisecond)
	a.FoldCompletion(10 * time.Millisecond) // backwards: clamps to 50ms
	a.FoldCompletion(60 * time.Millisecond)
	d := a.Flush(60 * time.Millisecond)
	if d.FirstNS != int64(50*time.Millisecond) {
		t.Fatalf("FirstNS = %d, want the clamped floor %d", d.FirstNS, int64(50*time.Millisecond))
	}
	if d.LastNS != int64(60*time.Millisecond) {
		t.Fatalf("LastNS = %d, want %d", d.LastNS, int64(60*time.Millisecond))
	}
	// The interval trigger keys off the first fold in the batch, which the
	// clamp keeps ≥ the previous batch's floor.
	a.FoldCompletion(10 * time.Millisecond) // clamps to 60ms
	if a.Due(60*time.Millisecond + 500*time.Millisecond) {
		t.Fatal("clamped fold aged from the floor, must not be due yet")
	}
	if !a.Due(60*time.Millisecond + time.Second) {
		t.Fatal("batch must be due one interval after its clamped first fold")
	}
}

// TestDeltaFoldMatchesPerRecordBucketWindow is the exactness argument as a
// test: folding N records through a DeltaAccumulator → Delta → AddDigest
// into a BucketWindow yields the same count, sum, mean and interpolated
// quantiles as N direct Adds at the flush time.
func TestDeltaFoldMatchesPerRecordBucketWindow(t *testing.T) {
	const n = 5000
	rng := rand.New(rand.NewSource(42))
	span := 10 * time.Second

	direct := NewBucketWindow(span, 32)
	batched := NewBucketWindow(span, 32)
	a := NewDeltaAccumulator(n, time.Hour)

	flushAt := 2 * time.Second
	for i := 0; i < n; i++ {
		v := time.Duration(rng.Int63n(int64(80 * time.Millisecond)))
		// All direct Adds at the flush time: the digest fold lands every
		// summarized sample in the bucket containing the flush, so the
		// fair comparison feeds both windows at the same timestamp.
		direct.Add(flushAt, v)
		a.FoldRecord(time.Duration(i)*100*time.Microsecond, "web-0", "web", v, v/2)
	}
	d := a.Flush(flushAt)
	if d.Records() != n {
		t.Fatalf("delta records = %d, want %d", d.Records(), n)
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if err := batched.AddDigest(flushAt, d.Insts[0].Queuing); err != nil {
		t.Fatalf("AddDigest: %v", err)
	}

	if direct.Len() != batched.Len() {
		t.Fatalf("Len: direct %d, batched %d", direct.Len(), batched.Len())
	}
	if direct.Sum() != batched.Sum() {
		t.Fatalf("Sum: direct %v, batched %v", direct.Sum(), batched.Sum())
	}
	dm, _ := direct.Mean()
	bm, _ := batched.Mean()
	if dm != bm {
		t.Fatalf("Mean: direct %v, batched %v", dm, bm)
	}
	for _, p := range []float64{0, 0.5, 0.9, 0.99, 0.999, 1} {
		dv, _ := direct.Percentile(p)
		bv, _ := batched.Percentile(p)
		if dv != bv {
			t.Fatalf("Percentile(%v): direct %v, batched %v", p, dv, bv)
		}
	}
	dmax, _ := direct.Max()
	bmax, _ := batched.Max()
	if dmax != bmax {
		t.Fatalf("Max: direct %v, batched %v", dmax, bmax)
	}
}

// TestDeltaMergeExact proves Merge is exact: two deltas merged equal one
// accumulator fed both streams.
func TestDeltaMergeExact(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	one := NewDeltaAccumulator(1<<20, time.Hour)
	a1 := NewDeltaAccumulator(1<<20, time.Hour)
	a2 := NewDeltaAccumulator(1<<20, time.Hour)

	for i := 0; i < 1000; i++ {
		at := time.Duration(i) * time.Millisecond
		q := time.Duration(rng.Int63n(int64(time.Millisecond)))
		s := time.Duration(rng.Int63n(int64(5 * time.Millisecond)))
		inst := "web-0"
		if i%3 == 0 {
			inst = "web-1"
		}
		one.FoldRecord(at, inst, "web", q, s)
		one.FoldQuery(at, q+s)
		if i%2 == 0 {
			a1.FoldRecord(at, inst, "web", q, s)
			a1.FoldQuery(at, q+s)
		} else {
			a2.FoldRecord(at, inst, "web", q, s)
			a2.FoldQuery(at, q+s)
		}
	}
	want := one.Flush(time.Second)
	d1 := a1.Flush(time.Second)
	d2 := a2.Flush(time.Second)
	if err := d1.Merge(d2); err != nil {
		t.Fatalf("Merge: %v", err)
	}
	if d1.Queries != want.Queries {
		t.Fatalf("merged queries = %d, want %d", d1.Queries, want.Queries)
	}
	if d1.Records() != want.Records() {
		t.Fatalf("merged records = %d, want %d", d1.Records(), want.Records())
	}
	hm, err := MergeDigests(d1.E2E)
	if err != nil {
		t.Fatal(err)
	}
	hw, err := MergeDigests(want.E2E)
	if err != nil {
		t.Fatal(err)
	}
	if hm.Count() != hw.Count() || hm.Mean() != hw.Mean() {
		t.Fatalf("merged e2e n=%d mean=%v, want n=%d mean=%v", hm.Count(), hm.Mean(), hw.Count(), hw.Mean())
	}
	for _, p := range []float64{0.5, 0.99} {
		if hm.Quantile(p) != hw.Quantile(p) {
			t.Fatalf("merged e2e q%v = %v, want %v", p, hm.Quantile(p), hw.Quantile(p))
		}
	}
	// Per-instance digests must also match bin-for-bin.
	byInst := map[string]*InstDelta{}
	for i := range want.Insts {
		byInst[want.Insts[i].Instance] = &want.Insts[i]
	}
	for i := range d1.Insts {
		got := &d1.Insts[i]
		w := byInst[got.Instance]
		if w == nil {
			t.Fatalf("merged delta has unexpected instance %q", got.Instance)
		}
		gj, _ := json.Marshal(got.Queuing)
		wj, _ := json.Marshal(w.Queuing)
		if string(gj) != string(wj) {
			t.Fatalf("instance %q queuing digest mismatch:\n got %s\nwant %s", got.Instance, gj, wj)
		}
	}
}

// TestDeltaValidateRejectsForeignFrames pins the defensive checks: newer
// versions, foreign growth factors and out-of-layout bins are refused
// before any fold.
func TestDeltaValidateRejectsForeignFrames(t *testing.T) {
	if err := (&Delta{V: DeltaVersion + 1}).Validate(); err == nil {
		t.Fatal("newer version must be rejected")
	}
	h := NewHistogram(2.0)
	h.Observe(time.Millisecond)
	d := &Delta{V: DeltaVersion, E2E: h.Digest()}
	if err := d.Validate(); err == nil {
		t.Fatal("foreign growth factor must be rejected")
	}
	d = &Delta{V: DeltaVersion, E2E: &HistogramDigest{
		Growth: BinGrowth, Count: 1, Bins: []DigestBin{{Index: 1 << 20, Count: 1}},
	}}
	if err := d.Validate(); err == nil {
		t.Fatal("out-of-layout bin index must be rejected")
	}
	w := NewBucketWindow(time.Second, 8)
	if err := w.AddDigest(0, h.Digest()); err == nil {
		t.Fatal("AddDigest must refuse a foreign growth factor")
	}
}

// TestFoldDigestExactWindowConservesCountAndSum covers the documented
// approximate path: folding a digest into the exact sample-keeping Window
// expands one bin-midpoint sample per observation, conserving count exactly
// and sum to within the bin width.
func TestFoldDigestExactWindowConservesCountAndSum(t *testing.T) {
	h := NewBinHistogram()
	rng := rand.New(rand.NewSource(3))
	const n = 500
	for i := 0; i < n; i++ {
		h.Observe(time.Duration(rng.Int63n(int64(10 * time.Millisecond))))
	}
	w := NewWindow(time.Minute)
	if err := FoldDigest(w, time.Second, h.Digest()); err != nil {
		t.Fatalf("FoldDigest: %v", err)
	}
	if w.Len() != n {
		t.Fatalf("expanded count = %d, want %d", w.Len(), n)
	}
	// Bin-midpoint quantization bounds the per-sample error by half a bin
	// width, i.e. (growth-1)/2 relative.
	diff := float64(w.Sum() - h.sum)
	if diff < 0 {
		diff = -diff
	}
	if limit := float64(h.sum) * (binGrowth - 1); diff > limit {
		t.Fatalf("expanded sum %v strays %v from exact %v (limit %v)", w.Sum(), time.Duration(diff), h.sum, time.Duration(limit))
	}
}

// TestStripedFoldDigestMatchesAdds proves the striped fold lands on the
// hinted stripe with the same clamp discipline as Add.
func TestStripedFoldDigestMatchesAdds(t *testing.T) {
	mk := func() MovingWindow { return NewBucketWindow(10*time.Second, 16) }
	direct := NewStriped(4, mk)
	folded := NewStriped(4, mk)

	h := NewBinHistogram()
	for i := 1; i <= 100; i++ {
		v := time.Duration(i) * 100 * time.Microsecond
		h.Observe(v)
		direct.Add(7, time.Second, v)
	}
	if err := folded.FoldDigest(7, time.Second, h.Digest()); err != nil {
		t.Fatalf("FoldDigest: %v", err)
	}
	dm, _ := direct.Mean(time.Second)
	fm, _ := folded.Mean(time.Second)
	if dm != fm {
		t.Fatalf("Mean: direct %v, folded %v", dm, fm)
	}
	dp, _ := direct.Percentile(time.Second, 0.99)
	fp, _ := folded.Percentile(time.Second, 0.99)
	if dp != fp {
		t.Fatalf("p99: direct %v, folded %v", dp, fp)
	}
}

// TestDeltaJSONRoundTrip pins the wire shape: a delta survives JSON
// marshal/unmarshal bit-exactly, and zero-valued optional fields stay off
// the wire (the RecordWire back-compat discipline).
func TestDeltaJSONRoundTrip(t *testing.T) {
	a := NewDeltaAccumulator(10, time.Second)
	a.FoldRecord(time.Millisecond, "web-0", "web", time.Millisecond, 2*time.Millisecond)
	a.FoldCompletion(time.Millisecond)
	d := a.Flush(time.Millisecond)

	raw, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	var back Delta
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(); err != nil {
		t.Fatalf("round-tripped delta invalid: %v", err)
	}
	if back.Queries != d.Queries || back.Seq != d.Seq || back.Records() != d.Records() {
		t.Fatalf("round trip changed the delta: %+v vs %+v", back, d)
	}
	// No E2E digest was folded, so the field must be absent on the wire.
	var asMap map[string]any
	if err := json.Unmarshal(raw, &asMap); err != nil {
		t.Fatal(err)
	}
	if _, present := asMap["e2e"]; present {
		t.Fatalf("empty e2e digest leaked onto the wire: %s", raw)
	}
}
