// Package stats provides the latency-statistics machinery of the Command
// Center: moving time windows over per-instance queuing/serving samples
// (§4.2 of the paper uses a moving window to evaluate the latency metric),
// streaming summaries with exact percentiles, utilization accounting, and
// time-series recorders for the runtime-behaviour figures.
//
// Entry points: Window is the §4.2 moving window; Summary keeps every
// sample for exact percentiles (experiment-scale); NewHistogram builds the
// log-bucketed histogram internal/loadgen records into (bounded memory at
// benchmark scale, quantile error set by the growth factor); TimeSeries
// captures the traces behind the figure CSVs; Improvement computes the
// baseline-over-policy ratios the evaluation tables report.
//
// For statistics that must cross a process boundary, Delta is the
// delta-batched ingest frame (DESIGN.md §5j): a DeltaAccumulator folds
// completions locally and flushes a versioned summary — per-instance
// histogram digests on the shared BinGrowth geometry — every N completions
// or T elapsed, whichever first. Because the digests share BucketWindow's
// bin bounds, folding a delta into a bucketed window (AddDigest/FoldDigest)
// is exact integer bin addition: a delta-fed window reports the same
// statistics as per-record adds at the flush timestamp.
package stats
