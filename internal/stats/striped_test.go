package stats

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func newStripedExact(span time.Duration, n int) *Striped {
	return NewStriped(n, func() MovingWindow { return NewWindow(span) })
}

func newStripedBucketed(span time.Duration, n int) *Striped {
	return NewStriped(n, func() MovingWindow { return NewBucketWindow(span, 16) })
}

// TestStripedMergeEquivalence: a striped window fed a sample set reports the
// same mean and nearest-rank percentile as one exact window fed the same
// samples — striping changes only the synchronization structure. This is the
// determinism guarantee the DES harness relies on.
func TestStripedMergeEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		span := 30 * time.Second
		single := NewWindow(span)
		striped := newStripedExact(span, 8)
		now := time.Duration(0)
		for i := 0; i < 400; i++ {
			now += time.Duration(rng.Intn(500)) * time.Millisecond
			v := time.Duration(rng.Intn(2000)) * time.Millisecond
			single.Add(now, v)
			striped.Add(uint64(rng.Int63()), now, v)
		}
		sm, sok := single.Mean()
		mm, mok := striped.Mean(now)
		if sok != mok || sm != mm {
			return false
		}
		for _, p := range []float64{0, 0.5, 0.95, 0.99, 1} {
			sp, _ := single.Percentile(p)
			mp, _ := striped.Percentile(now, p)
			if sp != mp {
				return false
			}
		}
		if single.Len() != striped.Len() {
			return false
		}
		smax, _ := single.Max()
		mmax, _ := striped.Max(now)
		return smax == mmax
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestStripedEmpty(t *testing.T) {
	s := newStripedExact(time.Second, 4)
	if _, ok := s.Mean(0); ok {
		t.Error("empty striped window reported a mean")
	}
	if _, ok := s.Percentile(0, 0.5); ok {
		t.Error("empty striped window reported a percentile")
	}
	if _, ok := s.Max(0); ok {
		t.Error("empty striped window reported a max")
	}
	if s.Len() != 0 {
		t.Error("empty striped window reported samples")
	}
}

// TestStripedBucketedPercentile exercises the bucketed merge path: quantiles
// merge per-stripe latency bins rather than gathering exact samples.
func TestStripedBucketedPercentile(t *testing.T) {
	s := newStripedBucketed(time.Hour, 4)
	now := time.Duration(0)
	for i := 1; i <= 100; i++ {
		now += time.Second
		s.Add(uint64(i), now, time.Duration(i)*time.Millisecond)
	}
	p99, ok := s.Percentile(now, 0.99)
	if !ok {
		t.Fatal("no percentile from a populated striped window")
	}
	lo := time.Duration(float64(99*time.Millisecond) / binGrowth)
	if p99 < lo || p99 > 100*time.Millisecond {
		t.Errorf("P99 = %v, want within [%v, 100ms]", p99, lo)
	}
	if m, _ := s.Mean(now); m != 50500*time.Microsecond {
		t.Errorf("Mean = %v, want 50.5ms", m)
	}
}

// TestStripedClampsRacingClocks: adds whose timestamps arrive out of order
// (the concurrent engines read the clock before reaching a stripe lock) are
// clamped per stripe instead of panicking the exact window.
func TestStripedClampsRacingClocks(t *testing.T) {
	s := newStripedExact(time.Minute, 2)
	s.Add(0, 5*time.Second, time.Millisecond)
	s.Add(0, 3*time.Second, time.Millisecond) // same stripe, older clock
	s.Add(1, 1*time.Second, time.Millisecond) // other stripe, independent floor
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
}

func TestStripedReset(t *testing.T) {
	s := newStripedExact(time.Minute, 4)
	for i := uint64(0); i < 16; i++ {
		s.Add(i, time.Second, time.Millisecond)
	}
	s.Reset()
	if s.Len() != 0 {
		t.Errorf("Len after Reset = %d", s.Len())
	}
}

func TestNewStripedValidates(t *testing.T) {
	if got := NewStriped(0, func() MovingWindow { return NewWindow(time.Second) }).Stripes(); got <= 0 {
		t.Errorf("default stripe count = %d, want positive", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("NewStriped(_, nil) did not panic")
		}
	}()
	NewStriped(4, nil)
}

// TestStripedConcurrentAdds hammers one striped window from many goroutines
// with racing clock reads; meaningful under -race, and the totals must still
// balance.
func TestStripedConcurrentAdds(t *testing.T) {
	s := newStripedBucketed(time.Minute, 8)
	const workers, perWorker = 8, 500
	var clock sync.Mutex
	now := time.Duration(0)
	readClock := func() time.Duration {
		clock.Lock()
		defer clock.Unlock()
		now += time.Microsecond
		return now
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				at := readClock()
				s.Add(uint64(w*perWorker+i), at, time.Millisecond)
			}
		}(w)
	}
	wg.Wait()
	if s.Len() != workers*perWorker {
		t.Fatalf("Len = %d, want %d", s.Len(), workers*perWorker)
	}
	if m, ok := s.Mean(now); !ok || m != time.Millisecond {
		t.Errorf("Mean = %v,%v; want 1ms", m, ok)
	}
}
