package stats

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Point is one time-series observation.
type Point struct {
	At    time.Duration
	Value float64
}

// Series records a named sequence of (virtual time, value) points, e.g. the
// frequency of one service instance over a run (Figure 11) or the fraction of
// peak power drawn (Figures 13/14).
type Series struct {
	Name   string
	Points []Point
}

// Add appends a point. Timestamps must not decrease.
func (s *Series) Add(at time.Duration, v float64) {
	if n := len(s.Points); n > 0 && at < s.Points[n-1].At {
		panic("stats: series timestamps must not decrease")
	}
	s.Points = append(s.Points, Point{At: at, Value: v})
}

// Last returns the most recent value, or def when empty.
func (s *Series) Last(def float64) float64 {
	if len(s.Points) == 0 {
		return def
	}
	return s.Points[len(s.Points)-1].Value
}

// Mean returns the arithmetic mean of the recorded values (the figures'
// "lines are average values across timeline"), or 0 when empty.
func (s *Series) Mean() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	var sum float64
	for _, p := range s.Points {
		sum += p.Value
	}
	return sum / float64(len(s.Points))
}

// TimeSeries is a set of named series sharing a timeline, with helpers to
// render the runtime-behaviour figures as CSV.
type TimeSeries struct {
	series map[string]*Series
	order  []string
}

// NewTimeSeries returns an empty recorder.
func NewTimeSeries() *TimeSeries {
	return &TimeSeries{series: make(map[string]*Series)}
}

// Record appends a point to the named series, creating it on first use.
func (ts *TimeSeries) Record(name string, at time.Duration, v float64) {
	s, ok := ts.series[name]
	if !ok {
		s = &Series{Name: name}
		ts.series[name] = s
		ts.order = append(ts.order, name)
	}
	s.Add(at, v)
}

// Get returns the named series, or nil if absent.
func (ts *TimeSeries) Get(name string) *Series { return ts.series[name] }

// Names returns the series names in first-recorded order.
func (ts *TimeSeries) Names() []string {
	out := make([]string, len(ts.order))
	copy(out, ts.order)
	return out
}

// WriteCSV renders all series as CSV with one row per distinct timestamp and
// one column per series; cells without an observation carry the most recent
// prior value of that series (step interpolation), or are empty before the
// first observation.
func (ts *TimeSeries) WriteCSV(w io.Writer) error {
	names := ts.Names()
	// Collect the union of timestamps.
	stampSet := make(map[time.Duration]struct{})
	for _, n := range names {
		for _, p := range ts.series[n].Points {
			stampSet[p.At] = struct{}{}
		}
	}
	stamps := make([]time.Duration, 0, len(stampSet))
	for at := range stampSet {
		stamps = append(stamps, at)
	}
	sort.Slice(stamps, func(i, j int) bool { return stamps[i] < stamps[j] })

	header := append([]string{"time_s"}, names...)
	if _, err := fmt.Fprintln(w, strings.Join(header, ",")); err != nil {
		return err
	}
	idx := make([]int, len(names)) // cursor per series
	last := make([]string, len(names))
	for _, at := range stamps {
		row := make([]string, 0, len(names)+1)
		row = append(row, fmt.Sprintf("%.3f", at.Seconds()))
		for i, n := range names {
			pts := ts.series[n].Points
			for idx[i] < len(pts) && pts[idx[i]].At <= at {
				last[i] = fmt.Sprintf("%g", pts[idx[i]].Value)
				idx[i]++
			}
			row = append(row, last[i])
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}
