package stats

import (
	"sort"
	"time"
)

// Sample is one observation tagged with the virtual time it was recorded.
type Sample struct {
	At    time.Duration
	Value time.Duration
}

// Window keeps samples from a sliding interval of virtual time. PowerChief
// evaluates its latency metric over such a window so that stale history does
// not hide the current load (§4.2).
//
// Samples must be added with nondecreasing timestamps; the window evicts
// samples older than the span on every access. Eviction is amortized O(1):
// expired samples are skipped by advancing a head index, and the backing
// slice is compacted only once the dead prefix outweighs the live samples,
// so steady-state Add never shifts the whole window (the seed implementation
// did, turning every ingest into an O(window population) copy). A fully
// expired window — the first Add after a long idle gap — is dropped in one
// truncation.
//
// Window retains every live sample, so Mean and Percentile are exact and
// deterministic; memory grows with the window population. BucketWindow is
// the constant-memory alternative behind the same MovingWindow interface.
type Window struct {
	span    time.Duration
	samples []Sample // live samples are samples[head:]
	head    int
	sum     time.Duration
	last    time.Duration
}

// NewWindow creates a moving window over the given span of virtual time.
func NewWindow(span time.Duration) *Window {
	if span <= 0 {
		panic("stats: window span must be positive")
	}
	return &Window{span: span}
}

// Span returns the window length.
func (w *Window) Span() time.Duration { return w.span }

// Add records a sample at virtual time at. Timestamps must not decrease.
func (w *Window) Add(at, value time.Duration) {
	if at < w.last {
		panic("stats: window samples must have nondecreasing timestamps")
	}
	w.last = at
	w.samples = append(w.samples, Sample{At: at, Value: value})
	w.sum += value
	w.evict(at)
}

// evict drops samples older than the span relative to now.
func (w *Window) evict(now time.Duration) {
	cutoff := now - w.span
	live := w.samples[w.head:]
	n := len(live)
	if n == 0 || live[0].At >= cutoff {
		return
	}
	if live[n-1].At < cutoff {
		// Everything expired (a long idle gap): one truncation, no scan of
		// the dead samples and no copy.
		w.samples = w.samples[:0]
		w.head = 0
		w.sum = 0
		return
	}
	// Binary search the eviction point; timestamps are nondecreasing.
	i := sort.Search(n, func(j int) bool { return live[j].At >= cutoff })
	for j := 0; j < i; j++ {
		w.sum -= live[j].Value
	}
	w.head += i
	// Compact only when the dead prefix dominates, so each sample is copied
	// O(1) times over its lifetime instead of once per subsequent Add.
	if w.head > len(w.samples)/2 {
		m := copy(w.samples, w.samples[w.head:])
		w.samples = w.samples[:m]
		w.head = 0
	}
}

// Advance evicts samples that have fallen out of the window as of now,
// without adding a new one.
func (w *Window) Advance(now time.Duration) {
	if now < w.last {
		panic("stats: window time must not go backwards")
	}
	w.last = now
	w.evict(now)
}

// Len returns the number of samples currently inside the window.
func (w *Window) Len() int { return len(w.samples) - w.head }

// Sum returns the sum of the samples currently inside the window.
func (w *Window) Sum() time.Duration { return w.sum }

// Mean returns the average of the samples in the window, and false when the
// window is empty.
func (w *Window) Mean() (time.Duration, bool) {
	if w.Len() == 0 {
		return 0, false
	}
	return w.sum / time.Duration(w.Len()), true
}

// MeanOr returns the window mean, or def when the window is empty.
func (w *Window) MeanOr(def time.Duration) time.Duration {
	if m, ok := w.Mean(); ok {
		return m
	}
	return def
}

// appendValues appends the live sample values to dst (for merged reads over
// striped windows).
func (w *Window) appendValues(dst []time.Duration) []time.Duration {
	for _, s := range w.samples[w.head:] {
		dst = append(dst, s.Value)
	}
	return dst
}

// Percentile returns the p-quantile (p in [0,1]) of the samples in the
// window using nearest-rank on a sorted copy, and false when empty.
func (w *Window) Percentile(p float64) (time.Duration, bool) {
	if w.Len() == 0 {
		return 0, false
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	vals := w.appendValues(make([]time.Duration, 0, w.Len()))
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	idx := int(p*float64(len(vals)-1) + 0.5)
	return vals[idx], true
}

// Max returns the largest sample in the window, and false when empty.
func (w *Window) Max() (time.Duration, bool) {
	live := w.samples[w.head:]
	if len(live) == 0 {
		return 0, false
	}
	max := live[0].Value
	for _, s := range live[1:] {
		if s.Value > max {
			max = s.Value
		}
	}
	return max, true
}

// Reset discards all samples but keeps the span and time floor.
func (w *Window) Reset() {
	w.samples = w.samples[:0]
	w.head = 0
	w.sum = 0
}
