package stats

import (
	"sort"
	"time"
)

// Sample is one observation tagged with the virtual time it was recorded.
type Sample struct {
	At    time.Duration
	Value time.Duration
}

// Window keeps samples from a sliding interval of virtual time. PowerChief
// evaluates its latency metric over such a window so that stale history does
// not hide the current load (§4.2).
//
// Samples must be added with nondecreasing timestamps; the window evicts
// samples older than the span on every access.
type Window struct {
	span    time.Duration
	samples []Sample
	sum     time.Duration
	last    time.Duration
}

// NewWindow creates a moving window over the given span of virtual time.
func NewWindow(span time.Duration) *Window {
	if span <= 0 {
		panic("stats: window span must be positive")
	}
	return &Window{span: span}
}

// Span returns the window length.
func (w *Window) Span() time.Duration { return w.span }

// Add records a sample at virtual time at. Timestamps must not decrease.
func (w *Window) Add(at, value time.Duration) {
	if at < w.last {
		panic("stats: window samples must have nondecreasing timestamps")
	}
	w.last = at
	w.samples = append(w.samples, Sample{At: at, Value: value})
	w.sum += value
	w.evict(at)
}

// evict drops samples older than the span relative to now.
func (w *Window) evict(now time.Duration) {
	cutoff := now - w.span
	i := 0
	for i < len(w.samples) && w.samples[i].At < cutoff {
		w.sum -= w.samples[i].Value
		i++
	}
	if i > 0 {
		// Shift in place; windows are short-lived relative to run length so
		// reslicing without copying would pin memory.
		n := copy(w.samples, w.samples[i:])
		w.samples = w.samples[:n]
	}
}

// Advance evicts samples that have fallen out of the window as of now,
// without adding a new one.
func (w *Window) Advance(now time.Duration) {
	if now < w.last {
		panic("stats: window time must not go backwards")
	}
	w.last = now
	w.evict(now)
}

// Len returns the number of samples currently inside the window.
func (w *Window) Len() int { return len(w.samples) }

// Mean returns the average of the samples in the window, and false when the
// window is empty.
func (w *Window) Mean() (time.Duration, bool) {
	if len(w.samples) == 0 {
		return 0, false
	}
	return w.sum / time.Duration(len(w.samples)), true
}

// MeanOr returns the window mean, or def when the window is empty.
func (w *Window) MeanOr(def time.Duration) time.Duration {
	if m, ok := w.Mean(); ok {
		return m
	}
	return def
}

// Percentile returns the p-quantile (p in [0,1]) of the samples in the
// window using nearest-rank on a sorted copy, and false when empty.
func (w *Window) Percentile(p float64) (time.Duration, bool) {
	if len(w.samples) == 0 {
		return 0, false
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	vals := make([]time.Duration, len(w.samples))
	for i, s := range w.samples {
		vals[i] = s.Value
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	idx := int(p*float64(len(vals)-1) + 0.5)
	return vals[idx], true
}

// Max returns the largest sample in the window, and false when empty.
func (w *Window) Max() (time.Duration, bool) {
	if len(w.samples) == 0 {
		return 0, false
	}
	max := w.samples[0].Value
	for _, s := range w.samples[1:] {
		if s.Value > max {
			max = s.Value
		}
	}
	return max, true
}

// Reset discards all samples but keeps the span and time floor.
func (w *Window) Reset() {
	w.samples = w.samples[:0]
	w.sum = 0
}
