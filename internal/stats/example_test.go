package stats_test

import (
	"fmt"
	"time"

	"powerchief/internal/stats"
)

// Example shows the moving window behind Equation 1's q̄ and s̄: stale
// samples fall out of the window as virtual time advances.
func Example() {
	w := stats.NewWindow(25 * time.Second)
	w.Add(1*time.Second, 100*time.Millisecond)
	w.Add(2*time.Second, 300*time.Millisecond)
	mean, _ := w.Mean()
	fmt.Println("mean inside the window:", mean)

	// 30 virtual seconds later both samples are stale.
	w.Advance(30 * time.Second)
	_, ok := w.Mean()
	fmt.Println("samples left after 30s:", w.Len(), "mean available:", ok)
	// Output:
	// mean inside the window: 200ms
	// samples left after 30s: 0 mean available: false
}

// ExampleHistogram shows the constant-memory latency histogram used for
// unbounded live runs.
func ExampleHistogram() {
	h := stats.NewHistogram(1.1)
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	fmt.Println("count:", h.Count())
	fmt.Println("p50 within 10% of 500ms:", within(h.Quantile(0.5), 500*time.Millisecond, 0.10))
	fmt.Println("p99 within 10% of 990ms:", within(h.Quantile(0.99), 990*time.Millisecond, 0.10))
	// Output:
	// count: 1000
	// p50 within 10% of 500ms: true
	// p99 within 10% of 990ms: true
}

func within(got, want time.Duration, tol float64) bool {
	diff := float64(got - want)
	if diff < 0 {
		diff = -diff
	}
	return diff <= tol*float64(want)
}
