package stats

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestSummaryBasics(t *testing.T) {
	s := NewSummary()
	if s.Count() != 0 || s.Mean() != 0 || s.Max() != 0 || s.Min() != 0 {
		t.Fatal("empty summary not all-zero")
	}
	for _, v := range []time.Duration{30, 10, 20} {
		s.Observe(v * time.Millisecond)
	}
	if s.Count() != 3 {
		t.Errorf("Count = %d", s.Count())
	}
	if s.Mean() != 20*time.Millisecond {
		t.Errorf("Mean = %v", s.Mean())
	}
	if s.Min() != 10*time.Millisecond || s.Max() != 30*time.Millisecond {
		t.Errorf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	if s.Sum() != 60*time.Millisecond {
		t.Errorf("Sum = %v", s.Sum())
	}
	if !strings.Contains(s.String(), "n=3") {
		t.Errorf("String() = %q", s.String())
	}
}

func TestSummaryPercentileInterpolation(t *testing.T) {
	s := NewSummary()
	s.Observe(0)
	s.Observe(100 * time.Millisecond)
	if got := s.Percentile(0.5); got != 50*time.Millisecond {
		t.Errorf("P50 of {0,100ms} = %v, want 50ms", got)
	}
	if got := s.Percentile(0); got != 0 {
		t.Errorf("P0 = %v", got)
	}
	if got := s.Percentile(1); got != 100*time.Millisecond {
		t.Errorf("P100 = %v", got)
	}
}

func TestSummaryP99OnUniform(t *testing.T) {
	s := NewSummary()
	for i := 1; i <= 1000; i++ {
		s.Observe(time.Duration(i) * time.Millisecond)
	}
	p99 := s.P99()
	if p99 < 989*time.Millisecond || p99 > 991*time.Millisecond {
		t.Errorf("P99 of 1..1000ms = %v, want ≈990ms", p99)
	}
	if s.P50() != 500500*time.Microsecond {
		t.Errorf("P50 = %v, want 500.5ms", s.P50())
	}
}

func TestSummaryInterleavedObserveAndQuery(t *testing.T) {
	// Percentile sorts internally; further observations must still work.
	s := NewSummary()
	s.Observe(5 * time.Millisecond)
	_ = s.P50()
	s.Observe(1 * time.Millisecond)
	if got := s.Min(); got != 1*time.Millisecond {
		t.Errorf("Min after interleaved observe = %v", got)
	}
}

func TestImprovement(t *testing.T) {
	if got := Improvement(10*time.Second, time.Second); got != 10 {
		t.Errorf("Improvement = %v, want 10", got)
	}
	if got := Improvement(0, 0); got != 1 {
		t.Errorf("Improvement(0,0) = %v, want 1", got)
	}
	if got := Improvement(time.Second, 0); !math.IsInf(got, 1) {
		t.Errorf("Improvement(1s,0) = %v, want +Inf", got)
	}
}

// Property: Percentile is monotone in p and bounded by Min/Max.
func TestPropertySummaryPercentileMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewSummary()
		n := 1 + rng.Intn(300)
		for i := 0; i < n; i++ {
			s.Observe(time.Duration(rng.Intn(1_000_000)) * time.Microsecond)
		}
		prev := time.Duration(-1)
		for p := 0.0; p <= 1.0; p += 0.05 {
			v := s.Percentile(p)
			if v < prev || v < s.Min() || v > s.Max() {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: the summary mean equals the naive mean.
func TestPropertySummaryMeanExact(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		s := NewSummary()
		var vals []time.Duration
		for _, r := range raw {
			v := time.Duration(r % 1_000_000)
			s.Observe(v)
			vals = append(vals, v)
		}
		var sum time.Duration
		for _, v := range vals {
			sum += v
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		return s.Mean() == sum/time.Duration(len(vals)) && s.Min() == vals[0] && s.Max() == vals[len(vals)-1]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
