package stats

import (
	"sort"
	"sync"
	"time"
)

// MovingWindow is the shared contract of the sliding statistics windows: the
// exact sample-keeping Window and the constant-memory BucketWindow. The
// Command Center aggregator programs against this interface so deployments
// can trade exactness (deterministic paper reproduction on the DES engine)
// for bounded memory (unbounded live runs) without touching the consumers.
//
// Implementations are not safe for concurrent use; wrap them in a Striped
// set (or an external lock) when writers race.
type MovingWindow interface {
	// Span returns the window length in virtual time.
	Span() time.Duration
	// Add records a sample at virtual time at. Timestamps must not
	// decrease (Window panics; BucketWindow clamps).
	Add(at, value time.Duration)
	// Advance evicts samples that have fallen out of the window as of now
	// without adding a new one.
	Advance(now time.Duration)
	// Len returns the number of samples currently inside the window.
	Len() int
	// Sum returns the sum of the samples currently inside the window.
	Sum() time.Duration
	// Mean returns the average of the samples in the window, and false
	// when the window is empty.
	Mean() (time.Duration, bool)
	// MeanOr returns the window mean, or def when the window is empty.
	MeanOr(def time.Duration) time.Duration
	// Percentile returns the p-quantile (p in [0,1]) of the samples in the
	// window, and false when empty. Window is exact (nearest rank);
	// BucketWindow interpolates inside log-spaced bins.
	Percentile(p float64) (time.Duration, bool)
	// Max returns the largest sample in the window, and false when empty.
	Max() (time.Duration, bool)
	// Reset discards all samples but keeps the span and time floor.
	Reset()
}

// Compile-time conformance of both window kinds.
var (
	_ MovingWindow = (*Window)(nil)
	_ MovingWindow = (*BucketWindow)(nil)
)

// Striped shards one logical moving window across independently locked
// stripes so concurrent writers never contend on a single mutex; statistics
// are merged across the stripes on read. The merged mean and (for exact
// stripes) percentile are computed from the union multiset, so they are
// identical to a single window fed the same samples — striping changes the
// synchronization structure, not the numbers.
//
// Writers pick a stripe with any well-spread hint (e.g. the query ID);
// reads take each stripe lock briefly in turn, never all at once.
type Striped struct {
	stripes []windowStripe
}

// windowStripe pads each lock onto its own cache line so stripe locks do not
// false-share under concurrent writers.
type windowStripe struct {
	mu   sync.Mutex
	last time.Duration // monotone floor: concurrent clocks may race Add order
	w    MovingWindow
	_    [64]byte
}

// NewStriped builds a striped window set with n stripes (n <= 0 applies the
// default of 8), each created by mk. All stripes must share the same span.
func NewStriped(n int, mk func() MovingWindow) *Striped {
	if n <= 0 {
		n = 8
	}
	s := &Striped{stripes: make([]windowStripe, n)}
	span := time.Duration(-1)
	for i := range s.stripes {
		w := mk()
		if w == nil {
			panic("stats: striped window constructor returned nil")
		}
		if span < 0 {
			span = w.Span()
		} else if w.Span() != span {
			panic("stats: striped windows must share one span")
		}
		s.stripes[i].w = w
	}
	return s
}

// Stripes returns the number of stripes.
func (s *Striped) Stripes() int { return len(s.stripes) }

// Span returns the common window length.
func (s *Striped) Span() time.Duration { return s.stripes[0].w.Span() }

// Add records a sample on the stripe selected by hint. Timestamps may
// arrive slightly out of order across goroutines (each reads the clock
// before reaching the stripe lock); the stripe clamps them to its monotone
// floor rather than panicking, trading at most the reordering skew of
// accuracy for liveness.
func (s *Striped) Add(hint uint64, at, value time.Duration) {
	st := &s.stripes[hint%uint64(len(s.stripes))]
	st.mu.Lock()
	if at < st.last {
		at = st.last
	} else {
		st.last = at
	}
	st.w.Add(at, value)
	st.mu.Unlock()
}

// advanceLocked moves the stripe's eviction horizon to now, clamped to the
// stripe's monotone floor. Caller holds st.mu.
func (st *windowStripe) advanceLocked(now time.Duration) {
	if now < st.last {
		now = st.last
	} else {
		st.last = now
	}
	st.w.Advance(now)
}

// Len returns the number of samples across all stripes without advancing
// eviction (advisory; use Mean/Percentile for evicted-as-of-now reads).
func (s *Striped) Len() int {
	n := 0
	for i := range s.stripes {
		st := &s.stripes[i]
		st.mu.Lock()
		n += st.w.Len()
		st.mu.Unlock()
	}
	return n
}

// Mean advances every stripe to now and returns the mean over the union of
// their samples — sum of stripe sums over total count, exactly the mean a
// single window holding all samples would report.
func (s *Striped) Mean(now time.Duration) (time.Duration, bool) {
	var sum time.Duration
	n := 0
	for i := range s.stripes {
		st := &s.stripes[i]
		st.mu.Lock()
		st.advanceLocked(now)
		sum += st.w.Sum()
		n += st.w.Len()
		st.mu.Unlock()
	}
	if n == 0 {
		return 0, false
	}
	return sum / time.Duration(n), true
}

// Max advances every stripe to now and returns the largest sample across
// the union, and false when all stripes are empty.
func (s *Striped) Max(now time.Duration) (time.Duration, bool) {
	var max time.Duration
	found := false
	for i := range s.stripes {
		st := &s.stripes[i]
		st.mu.Lock()
		st.advanceLocked(now)
		if m, ok := st.w.Max(); ok && (!found || m > max) {
			max = m
			found = true
		}
		st.mu.Unlock()
	}
	return max, found
}

// Percentile advances every stripe to now and returns the p-quantile over
// the union of their samples. Exact stripes merge their raw values (nearest
// rank over the sorted union — identical to a single exact window);
// bucketed stripes merge their latency bins (interpolated, same error bound
// as a single BucketWindow). Mixed or foreign MovingWindow kinds fall back
// to the largest per-stripe percentile, an upper-biased approximation.
func (s *Striped) Percentile(now time.Duration, p float64) (time.Duration, bool) {
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	// Exact path: gather the union of retained samples.
	if _, exact := s.stripes[0].w.(*Window); exact {
		var vals []time.Duration
		allExact := true
		for i := range s.stripes {
			st := &s.stripes[i]
			st.mu.Lock()
			st.advanceLocked(now)
			if w, ok := st.w.(*Window); ok {
				vals = w.appendValues(vals)
			} else {
				allExact = false
			}
			st.mu.Unlock()
		}
		if allExact {
			if len(vals) == 0 {
				return 0, false
			}
			sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
			idx := int(p*float64(len(vals)-1) + 0.5)
			return vals[idx], true
		}
	}
	// Bucketed path: merge fixed latency bins across stripes.
	if _, bucketed := s.stripes[0].w.(*BucketWindow); bucketed {
		var acc binAccumulator
		allBucketed := true
		for i := range s.stripes {
			st := &s.stripes[i]
			st.mu.Lock()
			st.advanceLocked(now)
			if w, ok := st.w.(*BucketWindow); ok {
				w.accumulateBins(&acc)
			} else {
				allBucketed = false
			}
			st.mu.Unlock()
		}
		if allBucketed {
			return acc.quantile(p)
		}
	}
	// Fallback for foreign implementations: upper-biased merge.
	var max time.Duration
	found := false
	for i := range s.stripes {
		st := &s.stripes[i]
		st.mu.Lock()
		st.advanceLocked(now)
		if v, ok := st.w.Percentile(p); ok && (!found || v > max) {
			max = v
			found = true
		}
		st.mu.Unlock()
	}
	return max, found
}

// Reset discards all samples in every stripe; spans and time floors persist.
func (s *Striped) Reset() {
	for i := range s.stripes {
		st := &s.stripes[i]
		st.mu.Lock()
		st.w.Reset()
		st.mu.Unlock()
	}
}
