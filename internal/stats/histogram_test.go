package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(1.1)
	if h.Count() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 || h.Quantile(0.5) != 0 {
		t.Error("empty histogram not all-zero")
	}
}

func TestHistogramExactStats(t *testing.T) {
	h := NewHistogram(1.1)
	for _, v := range []time.Duration{10, 20, 30, 40} {
		h.Observe(v * time.Millisecond)
	}
	if h.Count() != 4 {
		t.Errorf("Count = %d", h.Count())
	}
	if h.Mean() != 25*time.Millisecond {
		t.Errorf("Mean = %v", h.Mean())
	}
	if h.Min() != 10*time.Millisecond || h.Max() != 40*time.Millisecond {
		t.Errorf("Min/Max = %v/%v", h.Min(), h.Max())
	}
	if !strings.Contains(h.String(), "n=4") {
		t.Errorf("String = %q", h.String())
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	h := NewHistogram(1.05)
	s := NewSummary()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 50000; i++ {
		v := time.Duration(math.Exp(rng.NormFloat64()*0.6) * float64(100*time.Millisecond))
		h.Observe(v)
		s.Observe(v)
	}
	for _, p := range []float64{0.5, 0.9, 0.99} {
		got := h.Quantile(p).Seconds()
		want := s.Percentile(p).Seconds()
		if math.Abs(got-want)/want > 0.06 {
			t.Errorf("Q(%v) = %.4fs, exact %.4fs (>6%% error)", p, got, want)
		}
	}
}

func TestHistogramExtremes(t *testing.T) {
	h := NewHistogram(1.1)
	h.Observe(-5 * time.Second) // clamps to zero
	h.Observe(0)
	h.Observe(10 * time.Hour) // beyond the last bucket: overflow
	if h.Count() != 3 {
		t.Errorf("Count = %d", h.Count())
	}
	if h.Max() != 10*time.Hour {
		t.Errorf("Max = %v", h.Max())
	}
	// The overflow observation reports the exact max at high quantiles.
	if h.Quantile(0.999) != 10*time.Hour {
		t.Errorf("Q(0.999) = %v", h.Quantile(0.999))
	}
	if h.Quantile(0) != 0 {
		t.Errorf("Q(0) = %v", h.Quantile(0))
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(1.1), NewHistogram(1.1)
	for i := 1; i <= 100; i++ {
		a.Observe(time.Duration(i) * time.Millisecond)
	}
	for i := 101; i <= 200; i++ {
		b.Observe(time.Duration(i) * time.Millisecond)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Count() != 200 {
		t.Errorf("merged count = %d", a.Count())
	}
	med := a.Quantile(0.5)
	if med < 90*time.Millisecond || med > 110*time.Millisecond {
		t.Errorf("merged median = %v, want ≈100ms", med)
	}
	if err := a.Merge(nil); err != nil {
		t.Error("nil merge errored")
	}
	c := NewHistogram(1.5)
	if err := a.Merge(c); err == nil {
		t.Error("shape-mismatched merge accepted")
	}
}

func TestNewHistogramValidates(t *testing.T) {
	for _, bad := range []float64{1.0, 0.9, -2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("growth %v accepted", bad)
				}
			}()
			NewHistogram(bad)
		}()
	}
}

// Regression: the extreme ranks must clamp to the exact tracked Min/Max
// rather than a point interpolated inside the first/last bucket. With one
// sample per bucket the old code returned the bucket's upper bound for
// rank 1 (above Min) and an interior point for rank n (below Max).
func TestHistogramQuantileExtremeClamp(t *testing.T) {
	h := NewHistogram(1.1)
	samples := []time.Duration{
		1500 * time.Microsecond,
		20 * time.Millisecond,
		300 * time.Millisecond,
		4 * time.Second,
	}
	for _, v := range samples {
		h.Observe(v)
	}
	// Any p small enough that ceil(p*n) == 1 is the rank-1 statistic.
	for _, p := range []float64{0.01, 0.1, 0.25} {
		if got := h.Quantile(p); got != h.Min() {
			t.Errorf("Q(%v) = %v, want exact min %v", p, got, h.Min())
		}
	}
	// Any p large enough that ceil(p*n) == n is the rank-n statistic (no
	// overflow here, so the exact max).
	for _, p := range []float64{0.76, 0.9, 0.999} {
		if got := h.Quantile(p); got != h.Max() {
			t.Errorf("Q(%v) = %v, want exact max %v", p, got, h.Max())
		}
	}
	// Interior quantiles still interpolate: strictly between min and max.
	if q := h.Quantile(0.5); q <= h.Min() || q >= h.Max() {
		t.Errorf("Q(0.5) = %v, want strictly inside (%v, %v)", q, h.Min(), h.Max())
	}
}

// Regression: a single observation reports itself at every quantile.
func TestHistogramQuantileSingleSample(t *testing.T) {
	h := NewHistogram(1.1)
	h.Observe(123 * time.Millisecond)
	for _, p := range []float64{0, 0.001, 0.5, 0.99, 1} {
		if got := h.Quantile(p); got != 123*time.Millisecond {
			t.Errorf("Q(%v) = %v, want 123ms", p, got)
		}
	}
}

// Property: quantiles are monotone in p and bounded by Min/Max.
func TestPropertyHistogramQuantileMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := NewHistogram(1.2)
		n := 1 + rng.Intn(500)
		for i := 0; i < n; i++ {
			h.Observe(time.Duration(rng.Int63n(int64(10 * time.Second))))
		}
		prev := time.Duration(-1)
		for p := 0.0; p <= 1.0; p += 0.05 {
			q := h.Quantile(p)
			if q < prev || q < h.Min() || q > h.Max() {
				return false
			}
			prev = q
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramDigestRoundTrip(t *testing.T) {
	h := NewHistogram(1.25)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 5000; i++ {
		h.Observe(time.Duration(rng.ExpFloat64() * float64(50*time.Millisecond)))
	}
	h.Observe(100 * time.Minute) // overflow bucket
	got, err := FromDigest(h.Digest())
	if err != nil {
		t.Fatal(err)
	}
	if got.Count() != h.Count() || got.Mean() != h.Mean() || got.Min() != h.Min() || got.Max() != h.Max() {
		t.Errorf("round trip lost moments: got %v want %v", got, h)
	}
	for _, q := range []float64{0, 0.5, 0.9, 0.99, 0.999, 1} {
		if got.Quantile(q) != h.Quantile(q) {
			t.Errorf("q%.3f = %v after round trip, want %v", q, got.Quantile(q), h.Quantile(q))
		}
	}
}

func TestHistogramDigestValidates(t *testing.T) {
	if _, err := FromDigest(nil); err == nil {
		t.Error("nil digest accepted")
	}
	if _, err := FromDigest(&HistogramDigest{Growth: 1}); err == nil {
		t.Error("growth 1 accepted")
	}
	if _, err := FromDigest(&HistogramDigest{Growth: 1.25, Count: 1, Bins: []DigestBin{{Index: -1, Count: 1}}}); err == nil {
		t.Error("negative bin index accepted")
	}
	if _, err := FromDigest(&HistogramDigest{Growth: 1.25, Count: 1, Bins: []DigestBin{{Index: 1 << 20, Count: 1}}}); err == nil {
		t.Error("out-of-layout bin index accepted")
	}
	if _, err := FromDigest(&HistogramDigest{Growth: 1.25, Count: 1, Bins: []DigestBin{{Index: 0, Count: 5}}}); err == nil {
		t.Error("bins exceeding total accepted")
	}
}

// TestHistogramDigestShardedMergeExact: splitting one observation stream
// across N histograms and merging their digests reproduces the quantiles of
// the unsharded histogram exactly — the property the distributed benchmark
// coordinator relies on.
func TestHistogramDigestShardedMergeExact(t *testing.T) {
	const shards = 7
	whole := NewHistogram(1.25)
	parts := make([]*Histogram, shards)
	for i := range parts {
		parts[i] = NewHistogram(1.25)
	}
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 20000; i++ {
		v := time.Duration(rng.ExpFloat64() * float64(120*time.Millisecond))
		whole.Observe(v)
		parts[i%shards].Observe(v)
	}
	ds := make([]*HistogramDigest, shards)
	for i, p := range parts {
		ds[i] = p.Digest()
	}
	merged, err := MergeDigests(ds...)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Count() != whole.Count() || merged.Mean() != whole.Mean() {
		t.Fatalf("merged moments differ: %v vs %v", merged, whole)
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		if merged.Quantile(q) != whole.Quantile(q) {
			t.Errorf("q%.3f merged %v != whole %v", q, merged.Quantile(q), whole.Quantile(q))
		}
	}
}
