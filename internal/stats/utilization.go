package stats

import "time"

// BusyTracker accounts for how much of an interval a service instance spent
// actually processing queries. PowerChief's instance withdraw (§6.2) fires
// when an instance was busy for less than 20% of the withdraw interval.
//
// The tracker is driven by Busy/Idle transitions in virtual time and answers
// utilization queries over [since, now].
type BusyTracker struct {
	busy      bool
	lastFlip  time.Duration
	accrued   time.Duration // busy time accumulated before lastFlip
	epochMark time.Duration // start of the current accounting epoch
}

// NewBusyTracker returns a tracker that is idle at time 0.
func NewBusyTracker() *BusyTracker { return &BusyTracker{} }

// SetBusy records a transition to the busy state at virtual time now. A
// redundant transition is a no-op.
func (b *BusyTracker) SetBusy(now time.Duration) {
	if b.busy {
		return
	}
	b.busy = true
	b.lastFlip = now
}

// SetIdle records a transition to the idle state at virtual time now.
func (b *BusyTracker) SetIdle(now time.Duration) {
	if !b.busy {
		return
	}
	b.busy = false
	b.accrued += now - b.lastFlip
	b.lastFlip = now
}

// Busy reports the current state.
func (b *BusyTracker) Busy() bool { return b.busy }

// BusySince returns the total busy time accumulated during [b.epochMark, now].
func (b *BusyTracker) BusySince(now time.Duration) time.Duration {
	total := b.accrued
	if b.busy && now > b.lastFlip {
		total += now - b.lastFlip
	}
	return total
}

// Utilization returns the fraction of the current epoch spent busy, in [0,1].
// Returns 0 for a zero-length epoch.
func (b *BusyTracker) Utilization(now time.Duration) float64 {
	span := now - b.epochMark
	if span <= 0 {
		return 0
	}
	u := float64(b.BusySince(now)) / float64(span)
	if u > 1 {
		u = 1
	}
	return u
}

// ResetEpoch starts a new accounting epoch at virtual time now, e.g. at each
// withdraw interval boundary. Busy state carries across the boundary.
func (b *BusyTracker) ResetEpoch(now time.Duration) {
	b.accrued = 0
	b.epochMark = now
	if b.busy {
		b.lastFlip = now
	}
}
