package stats

import (
	"fmt"
	"math"
	"time"
)

// Histogram is a log-bucketed latency histogram with constant memory,
// suitable for unbounded live runs where Summary's keep-every-sample
// approach would grow without bound. Buckets span 1µs to ~1.2h with a
// configurable growth factor; quantiles are estimated by linear
// interpolation inside the matched bucket, giving a relative error bounded
// by the growth factor.
type Histogram struct {
	growth   float64
	bounds   []time.Duration // upper bounds, ascending
	counts   []uint64
	count    uint64
	sum      time.Duration
	min      time.Duration
	max      time.Duration
	overflow uint64
}

// NewHistogram creates a histogram whose bucket bounds grow by the given
// factor (e.g. 1.1 for ≤10% quantile error). Factors must exceed 1.
func NewHistogram(growth float64) *Histogram {
	if growth <= 1 {
		panic("stats: histogram growth factor must exceed 1")
	}
	h := &Histogram{growth: growth, min: math.MaxInt64}
	bound := float64(time.Microsecond)
	const maxBound = float64(80 * time.Minute)
	for bound < maxBound {
		h.bounds = append(h.bounds, time.Duration(bound))
		bound *= growth
	}
	h.counts = make([]uint64, len(h.bounds))
	return h
}

// Observe records one latency value. Negative values clamp to zero.
func (h *Histogram) Observe(v time.Duration) {
	if v < 0 {
		v = 0
	}
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	idx := h.bucketOf(v)
	if idx < 0 {
		h.overflow++
		return
	}
	h.counts[idx]++
}

// bucketOf returns the index of the first bucket whose bound is ≥ v, or -1
// when v exceeds every bound.
func (h *Histogram) bucketOf(v time.Duration) int {
	lo, hi := 0, len(h.bounds)-1
	if v > h.bounds[hi] {
		return -1
	}
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] >= v {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Mean returns the exact mean (tracked outside the buckets).
func (h *Histogram) Mean() time.Duration {
	if h.count == 0 {
		return 0
	}
	return h.sum / time.Duration(h.count)
}

// Min returns the smallest observation, or 0 when empty.
func (h *Histogram) Min() time.Duration {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest observation, or 0 when empty.
func (h *Histogram) Max() time.Duration {
	if h.count == 0 {
		return 0
	}
	return h.max
}

// Quantile estimates the p-quantile (p in [0,1]). Values that landed beyond
// the last bucket report the exact tracked maximum.
func (h *Histogram) Quantile(p float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	if p <= 0 {
		return h.Min()
	}
	if p >= 1 {
		return h.Max()
	}
	target := uint64(math.Ceil(p * float64(h.count)))
	// The extreme ranks are tracked exactly; interpolating inside their
	// buckets would report a point strictly inside the bucket instead. The
	// rank-1 statistic is the minimum, and — when nothing overflowed — the
	// rank-n statistic is the maximum.
	if target <= 1 {
		return h.Min()
	}
	if h.overflow == 0 && target >= h.count {
		return h.Max()
	}
	if target > h.count-h.overflow {
		return h.max
	}
	var cum uint64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		if cum+c >= target {
			// Interpolate inside bucket i.
			lower := time.Duration(0)
			if i > 0 {
				lower = h.bounds[i-1]
			}
			upper := h.bounds[i]
			if upper > h.max {
				upper = h.max
			}
			if lower < h.min {
				lower = h.min
			}
			if upper < lower {
				return lower
			}
			frac := float64(target-cum) / float64(c)
			return lower + time.Duration(frac*float64(upper-lower))
		}
		cum += c
	}
	return h.max
}

// Merge folds another histogram into this one. Both must share the same
// growth factor.
func (h *Histogram) Merge(other *Histogram) error {
	if other == nil {
		return nil
	}
	if other.growth != h.growth || len(other.counts) != len(h.counts) {
		return fmt.Errorf("stats: merging histograms with different shapes")
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.count += other.count
	h.sum += other.sum
	h.overflow += other.overflow
	if other.count > 0 {
		if other.min < h.min {
			h.min = other.min
		}
		if other.max > h.max {
			h.max = other.max
		}
	}
	return nil
}

// String summarizes the distribution.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p99=%v max=%v",
		h.count, h.Mean().Round(time.Microsecond),
		h.Quantile(0.5).Round(time.Microsecond),
		h.Quantile(0.99).Round(time.Microsecond),
		h.Max().Round(time.Microsecond))
}
