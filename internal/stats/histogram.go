package stats

import (
	"fmt"
	"math"
	"time"
)

// Histogram is a log-bucketed latency histogram with constant memory,
// suitable for unbounded live runs where Summary's keep-every-sample
// approach would grow without bound. Buckets span 1µs to ~1.2h with a
// configurable growth factor; quantiles are estimated by linear
// interpolation inside the matched bucket, giving a relative error bounded
// by the growth factor.
type Histogram struct {
	growth   float64
	bounds   []time.Duration // upper bounds, ascending
	counts   []uint64
	count    uint64
	sum      time.Duration
	min      time.Duration
	max      time.Duration
	overflow uint64
}

// NewHistogram creates a histogram whose bucket bounds grow by the given
// factor (e.g. 1.1 for ≤10% quantile error). Factors must exceed 1.
func NewHistogram(growth float64) *Histogram {
	if growth <= 1 {
		panic("stats: histogram growth factor must exceed 1")
	}
	h := &Histogram{growth: growth, min: math.MaxInt64}
	bound := float64(time.Microsecond)
	const maxBound = float64(80 * time.Minute)
	for bound < maxBound {
		h.bounds = append(h.bounds, time.Duration(bound))
		bound *= growth
	}
	h.counts = make([]uint64, len(h.bounds))
	return h
}

// Observe records one latency value. Negative values clamp to zero.
func (h *Histogram) Observe(v time.Duration) {
	if v < 0 {
		v = 0
	}
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	idx := h.bucketOf(v)
	if idx < 0 {
		h.overflow++
		return
	}
	h.counts[idx]++
}

// bucketOf returns the index of the first bucket whose bound is ≥ v, or -1
// when v exceeds every bound.
func (h *Histogram) bucketOf(v time.Duration) int {
	lo, hi := 0, len(h.bounds)-1
	if v > h.bounds[hi] {
		return -1
	}
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] >= v {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Mean returns the exact mean (tracked outside the buckets).
func (h *Histogram) Mean() time.Duration {
	if h.count == 0 {
		return 0
	}
	return h.sum / time.Duration(h.count)
}

// Min returns the smallest observation, or 0 when empty.
func (h *Histogram) Min() time.Duration {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest observation, or 0 when empty.
func (h *Histogram) Max() time.Duration {
	if h.count == 0 {
		return 0
	}
	return h.max
}

// Quantile estimates the p-quantile (p in [0,1]). Values that landed beyond
// the last bucket report the exact tracked maximum.
func (h *Histogram) Quantile(p float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	if p <= 0 {
		return h.Min()
	}
	if p >= 1 {
		return h.Max()
	}
	target := uint64(math.Ceil(p * float64(h.count)))
	// The extreme ranks are tracked exactly; interpolating inside their
	// buckets would report a point strictly inside the bucket instead. The
	// rank-1 statistic is the minimum, and — when nothing overflowed — the
	// rank-n statistic is the maximum.
	if target <= 1 {
		return h.Min()
	}
	if h.overflow == 0 && target >= h.count {
		return h.Max()
	}
	if target > h.count-h.overflow {
		return h.max
	}
	var cum uint64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		if cum+c >= target {
			// Interpolate inside bucket i.
			lower := time.Duration(0)
			if i > 0 {
				lower = h.bounds[i-1]
			}
			upper := h.bounds[i]
			if upper > h.max {
				upper = h.max
			}
			if lower < h.min {
				lower = h.min
			}
			if upper < lower {
				return lower
			}
			frac := float64(target-cum) / float64(c)
			return lower + time.Duration(frac*float64(upper-lower))
		}
		cum += c
	}
	return h.max
}

// Merge folds another histogram into this one. Both must share the same
// growth factor.
func (h *Histogram) Merge(other *Histogram) error {
	if other == nil {
		return nil
	}
	if other.growth != h.growth || len(other.counts) != len(h.counts) {
		return fmt.Errorf("stats: merging histograms with different shapes")
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.count += other.count
	h.sum += other.sum
	h.overflow += other.overflow
	if other.count > 0 {
		if other.min < h.min {
			h.min = other.min
		}
		if other.max > h.max {
			h.max = other.max
		}
	}
	return nil
}

// Growth returns the bucket growth factor the histogram was built with.
func (h *Histogram) Growth() float64 { return h.growth }

// DigestBin is one non-empty bucket of a HistogramDigest: the bucket index
// in the shared log-spaced layout plus its count.
type DigestBin struct {
	Index int    `json:"i"`
	Count uint64 `json:"n"`
}

// HistogramDigest is the serializable form of a Histogram: the log-spaced
// bin layout is named by its growth factor (bounds are derived, 1µs to
// ~80min, the BucketWindow geometry), so a digest is a few dozen sparse
// bins instead of the full bucket array. Digests from runs that share a
// growth factor merge exactly — bin counts add — which is what lets N
// benchmark agents each ship a digest and the coordinator reconstruct the
// cluster-wide distribution without resampling.
type HistogramDigest struct {
	Growth   float64     `json:"growth"`
	Count    uint64      `json:"count"`
	SumNS    int64       `json:"sum_ns"`
	MinNS    int64       `json:"min_ns,omitempty"`
	MaxNS    int64       `json:"max_ns,omitempty"`
	Overflow uint64      `json:"overflow,omitempty"`
	Bins     []DigestBin `json:"bins,omitempty"`
}

// Digest serializes the histogram: only non-empty buckets are carried.
func (h *Histogram) Digest() *HistogramDigest {
	d := &HistogramDigest{
		Growth:   h.growth,
		Count:    h.count,
		SumNS:    int64(h.sum),
		Overflow: h.overflow,
	}
	if h.count > 0 {
		d.MinNS = int64(h.min)
		d.MaxNS = int64(h.max)
	}
	for i, c := range h.counts {
		if c > 0 {
			d.Bins = append(d.Bins, DigestBin{Index: i, Count: c})
		}
	}
	return d
}

// FromDigest reconstructs a Histogram from its serialized form. The digest
// must name a valid growth factor and bin indexes inside the derived layout.
func FromDigest(d *HistogramDigest) (*Histogram, error) {
	if d == nil {
		return nil, fmt.Errorf("stats: nil histogram digest")
	}
	if d.Growth <= 1 {
		return nil, fmt.Errorf("stats: digest growth factor %v must exceed 1", d.Growth)
	}
	h := NewHistogram(d.Growth)
	var binned uint64
	for _, b := range d.Bins {
		if b.Index < 0 || b.Index >= len(h.counts) {
			return nil, fmt.Errorf("stats: digest bin index %d outside the %d-bucket layout", b.Index, len(h.counts))
		}
		h.counts[b.Index] += b.Count
		binned += b.Count
	}
	if binned+d.Overflow > d.Count {
		return nil, fmt.Errorf("stats: digest bins hold %d samples, total claims %d", binned+d.Overflow, d.Count)
	}
	h.count = d.Count
	h.sum = time.Duration(d.SumNS)
	h.overflow = d.Overflow
	if d.Count > 0 {
		h.min = time.Duration(d.MinNS)
		h.max = time.Duration(d.MaxNS)
	}
	return h, nil
}

// MergeDigests reconstructs and merges N digests (all sharing one growth
// factor) into a single histogram — the coordinator's reduction step.
func MergeDigests(ds ...*HistogramDigest) (*Histogram, error) {
	if len(ds) == 0 {
		return nil, fmt.Errorf("stats: merging zero digests")
	}
	out, err := FromDigest(ds[0])
	if err != nil {
		return nil, err
	}
	for _, d := range ds[1:] {
		h, err := FromDigest(d)
		if err != nil {
			return nil, err
		}
		if err := out.Merge(h); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// String summarizes the distribution.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p99=%v max=%v",
		h.count, h.Mean().Round(time.Microsecond),
		h.Quantile(0.5).Round(time.Microsecond),
		h.Quantile(0.99).Round(time.Microsecond),
		h.Max().Round(time.Microsecond))
}
