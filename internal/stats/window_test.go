package stats

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestWindowMean(t *testing.T) {
	w := NewWindow(10 * time.Second)
	if _, ok := w.Mean(); ok {
		t.Fatal("empty window reported a mean")
	}
	w.Add(1*time.Second, 100*time.Millisecond)
	w.Add(2*time.Second, 300*time.Millisecond)
	m, ok := w.Mean()
	if !ok || m != 200*time.Millisecond {
		t.Fatalf("Mean = %v,%v; want 200ms,true", m, ok)
	}
	if got := w.MeanOr(time.Hour); got != 200*time.Millisecond {
		t.Errorf("MeanOr = %v", got)
	}
}

func TestWindowEviction(t *testing.T) {
	w := NewWindow(10 * time.Second)
	w.Add(0, 1*time.Second)
	w.Add(5*time.Second, 2*time.Second)
	w.Add(12*time.Second, 3*time.Second) // evicts the t=0 sample (cutoff 2s)
	if w.Len() != 2 {
		t.Fatalf("Len = %d, want 2", w.Len())
	}
	m, _ := w.Mean()
	if m != 2500*time.Millisecond {
		t.Errorf("Mean after eviction = %v, want 2.5s", m)
	}
	w.Advance(30 * time.Second) // everything falls out
	if w.Len() != 0 {
		t.Fatalf("Len after Advance = %d, want 0", w.Len())
	}
	if _, ok := w.Mean(); ok {
		t.Error("drained window reported a mean")
	}
}

func TestWindowBoundaryInclusive(t *testing.T) {
	w := NewWindow(10 * time.Second)
	w.Add(0, time.Second)
	// At exactly now-span the sample is still included (cutoff is exclusive).
	w.Advance(10 * time.Second)
	if w.Len() != 1 {
		t.Fatalf("sample at exact window edge evicted")
	}
	w.Advance(10*time.Second + 1)
	if w.Len() != 0 {
		t.Fatalf("sample past window edge retained")
	}
}

func TestWindowPercentileAndMax(t *testing.T) {
	w := NewWindow(time.Hour)
	for i := 1; i <= 100; i++ {
		w.Add(time.Duration(i)*time.Second, time.Duration(i)*time.Millisecond)
	}
	p99, ok := w.Percentile(0.99)
	if !ok || p99 != 99*time.Millisecond {
		t.Errorf("P99 = %v,%v; want 99ms", p99, ok)
	}
	p0, _ := w.Percentile(-0.5) // clamped to 0
	if p0 != 1*time.Millisecond {
		t.Errorf("P(min) = %v, want 1ms", p0)
	}
	p1, _ := w.Percentile(1.5) // clamped to 1
	if p1 != 100*time.Millisecond {
		t.Errorf("P(max) = %v, want 100ms", p1)
	}
	max, _ := w.Max()
	if max != 100*time.Millisecond {
		t.Errorf("Max = %v", max)
	}
}

func TestWindowEmptyPercentile(t *testing.T) {
	w := NewWindow(time.Second)
	if _, ok := w.Percentile(0.5); ok {
		t.Error("empty window reported a percentile")
	}
	if _, ok := w.Max(); ok {
		t.Error("empty window reported a max")
	}
}

func TestWindowReset(t *testing.T) {
	w := NewWindow(time.Hour)
	w.Add(time.Second, time.Second)
	w.Reset()
	if w.Len() != 0 {
		t.Error("Reset did not clear samples")
	}
	// Time floor persists: adding older than last stamp panics.
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-order add after Reset did not panic")
		}
	}()
	w.Add(0, time.Second)
}

func TestWindowRejectsTimeTravel(t *testing.T) {
	w := NewWindow(time.Second)
	w.Add(5*time.Second, time.Second)
	defer func() {
		if recover() == nil {
			t.Fatal("decreasing timestamp did not panic")
		}
	}()
	w.Add(4*time.Second, time.Second)
}

func TestNewWindowValidates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewWindow(0) did not panic")
		}
	}()
	NewWindow(0)
}

// Regression: the first Add after an idle gap longer than the span used to
// pay for every buffered sample (the seed implementation shifted the whole
// slice on each eviction; with the head index, a naive per-sample walk would
// still scan the dead prefix). A fully expired window must be dropped in one
// truncation, leaving only the new sample in the backing slice.
func TestWindowIdleGapOneTruncation(t *testing.T) {
	w := NewWindow(10 * time.Second)
	for i := 0; i < 5000; i++ {
		w.Add(time.Duration(i)*time.Millisecond, time.Millisecond)
	}
	w.Add(time.Hour, 7*time.Millisecond) // idle gap ≫ span: everything expired
	if w.Len() != 1 {
		t.Fatalf("Len after idle gap = %d, want 1", w.Len())
	}
	if len(w.samples) != 1 || w.head != 0 {
		t.Fatalf("backing slice not truncated: len=%d head=%d, want 1,0",
			len(w.samples), w.head)
	}
	if m, ok := w.Mean(); !ok || m != 7*time.Millisecond {
		t.Errorf("Mean after idle gap = %v,%v; want 7ms", m, ok)
	}
	if w.Sum() != 7*time.Millisecond {
		t.Errorf("Sum after idle gap = %v", w.Sum())
	}
}

// Regression: steady-state eviction must not shift the slice on every Add.
// The head index absorbs evictions; compaction happens only when the dead
// prefix outweighs the live samples, so each sample is copied O(1) times
// over its lifetime.
func TestWindowAmortizedCompaction(t *testing.T) {
	w := NewWindow(time.Second)
	for i := 0; i < 10000; i++ {
		w.Add(time.Duration(i)*time.Millisecond, time.Millisecond)
		if w.head > len(w.samples)/2 {
			t.Fatalf("dead prefix exceeds live samples at i=%d: head=%d len=%d",
				i, w.head, len(w.samples))
		}
	}
	if got, want := w.Len(), 1001; got != want {
		t.Fatalf("steady-state Len = %d, want %d", got, want)
	}
	if m, _ := w.Mean(); m != time.Millisecond {
		t.Errorf("steady-state Mean = %v", m)
	}
}

// Property: the window mean always equals the mean of exactly the samples
// newer than now-span, under random arrival patterns.
func TestPropertyWindowMeanMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		span := time.Duration(1+rng.Intn(50)) * time.Second
		w := NewWindow(span)
		type rec struct{ at, v time.Duration }
		var all []rec
		now := time.Duration(0)
		for i := 0; i < 200; i++ {
			now += time.Duration(rng.Intn(3000)) * time.Millisecond
			v := time.Duration(rng.Intn(1000)) * time.Millisecond
			w.Add(now, v)
			all = append(all, rec{now, v})

			var sum time.Duration
			var n int
			for _, r := range all {
				if r.at >= now-span {
					sum += r.v
					n++
				}
			}
			if n != w.Len() {
				return false
			}
			want := sum / time.Duration(n)
			if got, _ := w.Mean(); got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
