package stats

import (
	"strings"
	"testing"
	"time"
)

func TestSeriesAddAndMean(t *testing.T) {
	var s Series
	s.Add(time.Second, 1)
	s.Add(2*time.Second, 3)
	if got := s.Mean(); got != 2 {
		t.Errorf("Mean = %v, want 2", got)
	}
	if got := s.Last(-1); got != 3 {
		t.Errorf("Last = %v, want 3", got)
	}
	var empty Series
	if got := empty.Last(-1); got != -1 {
		t.Errorf("empty Last = %v, want default", got)
	}
	if got := empty.Mean(); got != 0 {
		t.Errorf("empty Mean = %v, want 0", got)
	}
}

func TestSeriesRejectsTimeTravel(t *testing.T) {
	var s Series
	s.Add(2*time.Second, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("decreasing timestamp did not panic")
		}
	}()
	s.Add(time.Second, 2)
}

func TestTimeSeriesRecordAndNames(t *testing.T) {
	ts := NewTimeSeries()
	ts.Record("b", time.Second, 1)
	ts.Record("a", time.Second, 2)
	ts.Record("b", 2*time.Second, 3)
	names := ts.Names()
	if len(names) != 2 || names[0] != "b" || names[1] != "a" {
		t.Fatalf("Names = %v, want [b a] (first-recorded order)", names)
	}
	if ts.Get("b").Points[1].Value != 3 {
		t.Error("second point of series b lost")
	}
	if ts.Get("missing") != nil {
		t.Error("Get of unknown series returned non-nil")
	}
}

func TestTimeSeriesWriteCSV(t *testing.T) {
	ts := NewTimeSeries()
	ts.Record("power", 0, 10)
	ts.Record("latency", time.Second, 0.5)
	ts.Record("power", 2*time.Second, 12)
	var sb strings.Builder
	if err := ts.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if lines[0] != "time_s,power,latency" {
		t.Fatalf("header = %q", lines[0])
	}
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want 4 (header + 3 stamps):\n%s", len(lines), sb.String())
	}
	// Row at t=1: power holds its previous value (step interpolation).
	if lines[2] != "1.000,10,0.5" {
		t.Errorf("t=1 row = %q, want step-held power", lines[2])
	}
	// Row at t=0: latency has no value yet.
	if lines[1] != "0.000,10," {
		t.Errorf("t=0 row = %q, want empty latency cell", lines[1])
	}
	if lines[3] != "2.000,12,0.5" {
		t.Errorf("t=2 row = %q", lines[3])
	}
}

func TestTimeSeriesEmptyCSV(t *testing.T) {
	ts := NewTimeSeries()
	var sb strings.Builder
	if err := ts.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(sb.String()) != "time_s" {
		t.Errorf("empty CSV = %q", sb.String())
	}
}
