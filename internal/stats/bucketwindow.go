package stats

import (
	"math"
	"time"
)

// binGrowth is the growth factor of the log-spaced latency bins every
// BucketWindow shares (quantile relative error is bounded by it), matching
// the Histogram's geometry choice.
const binGrowth = 1.25

// binBounds are the shared latency-bin upper bounds, 1µs to ~80min. Shared
// across all BucketWindows so per-window memory is just the counters.
var binBounds = func() []time.Duration {
	var b []time.Duration
	bound := float64(time.Microsecond)
	const maxBound = float64(80 * time.Minute)
	for bound < maxBound {
		b = append(b, time.Duration(bound))
		bound *= binGrowth
	}
	return b
}()

// binOf returns the index of the first bin whose bound is ≥ v, or -1 when v
// exceeds every bound (the overflow bin).
func binOf(v time.Duration) int {
	lo, hi := 0, len(binBounds)-1
	if v > binBounds[hi] {
		return -1
	}
	for lo < hi {
		mid := (lo + hi) / 2
		if binBounds[mid] >= v {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// timeBucket is one fixed slice of the window's span: aggregate moments plus
// log-spaced latency bins, so the window can evict a whole bucket in O(1)
// aggregate work and still answer quantiles from the surviving bins.
type timeBucket struct {
	count    uint64
	sum      time.Duration
	min, max time.Duration
	overflow uint32 // samples beyond the last bin bound (quantile → max)
	bins     []uint32
}

func (b *timeBucket) clear() {
	if b.count == 0 {
		return
	}
	b.count = 0
	b.sum = 0
	b.min = 0
	b.max = 0
	b.overflow = 0
	for i := range b.bins {
		b.bins[i] = 0
	}
}

// BucketWindow is a constant-memory moving window: the span is cut into a
// fixed number of time buckets arranged as a ring, so Add and eviction are
// O(1) (amortized — a bucket boundary crossing retires exactly the buckets
// that expired, and a long idle gap clears at most every bucket once) and
// the memory footprint never grows with load, unlike Window's keep-every-
// sample slice. The price is granularity: samples leave the window within
// one bucket width of their exact expiry, and Percentile interpolates
// inside log-spaced latency bins (relative error bounded by the bin growth
// factor) instead of ranking exact samples.
//
// Timestamps that go backwards are clamped to the latest time seen rather
// than panicking: the concurrent engines read the clock before reaching the
// aggregator locks, so slight reordering is legal there.
//
// In steady state Add allocates nothing: every buffer is laid down at
// construction (asserted by TestBucketWindowAddZeroAlloc).
type BucketWindow struct {
	span  time.Duration
	width time.Duration // span / len(ring), rounded up

	last    time.Duration
	cur     int64 // absolute index (at/width) of the newest bucket
	started bool

	ring []timeBucket

	// Live totals over the retained buckets, maintained on eviction.
	count uint64
	sum   time.Duration

	scratch []uint64 // quantile merge scratch, len(binBounds)
}

// DefaultBuckets is the bucket count NewBucketWindow applies when the
// caller passes zero: 32 buckets keep the eviction granularity near 3% of
// the span.
const DefaultBuckets = 32

// NewBucketWindow creates a constant-memory moving window over span,
// divided into the given number of time buckets (0 applies DefaultBuckets).
func NewBucketWindow(span time.Duration, buckets int) *BucketWindow {
	if span <= 0 {
		panic("stats: window span must be positive")
	}
	if buckets <= 0 {
		buckets = DefaultBuckets
	}
	if time.Duration(buckets) > span {
		buckets = int(span) // never let a bucket be narrower than 1ns
	}
	w := &BucketWindow{
		span:    span,
		width:   (span + time.Duration(buckets) - 1) / time.Duration(buckets),
		ring:    make([]timeBucket, buckets),
		scratch: make([]uint64, len(binBounds)),
	}
	for i := range w.ring {
		w.ring[i].bins = make([]uint32, len(binBounds))
	}
	return w
}

// Span returns the window length.
func (w *BucketWindow) Span() time.Duration { return w.span }

// Buckets returns the fixed bucket count.
func (w *BucketWindow) Buckets() int { return len(w.ring) }

// advance retires buckets that fall out of the window as of now and makes
// the bucket containing now current. Returns the clamped now.
func (w *BucketWindow) advance(now time.Duration) time.Duration {
	if now < w.last {
		now = w.last
	} else {
		w.last = now
	}
	abs := int64(now / w.width)
	if !w.started {
		w.started = true
		w.cur = abs
		return now
	}
	if abs == w.cur {
		return now
	}
	n := int64(len(w.ring))
	if abs-w.cur >= n {
		// Idle gap longer than the span: every bucket expired. One pass
		// over the fixed ring, not over the samples it absorbed.
		for i := range w.ring {
			w.ring[i].clear()
		}
		w.count = 0
		w.sum = 0
		w.cur = abs
		return now
	}
	// Each slot stepped over held the bucket exactly one revolution older —
	// the one expiring now that the window front moved past it.
	for i := w.cur + 1; i <= abs; i++ {
		b := &w.ring[i%n]
		w.count -= b.count
		w.sum -= b.sum
		b.clear()
	}
	w.cur = abs
	return now
}

// Add records a sample at virtual time at. Negative values clamp to zero;
// backwards timestamps clamp to the latest time seen.
func (w *BucketWindow) Add(at, value time.Duration) {
	if value < 0 {
		value = 0
	}
	at = w.advance(at)
	b := &w.ring[(at/w.width)%time.Duration(len(w.ring))]
	if b.count == 0 || value < b.min {
		b.min = value
	}
	if value > b.max {
		b.max = value
	}
	b.count++
	b.sum += value
	if idx := binOf(value); idx >= 0 {
		b.bins[idx]++
	} else {
		b.overflow++
	}
	w.count++
	w.sum += value
}

// Advance evicts buckets that have fallen out of the window as of now,
// without adding a sample.
func (w *BucketWindow) Advance(now time.Duration) { w.advance(now) }

// Len returns the number of samples currently inside the window.
func (w *BucketWindow) Len() int { return int(w.count) }

// Sum returns the sum of the samples currently inside the window.
func (w *BucketWindow) Sum() time.Duration { return w.sum }

// Mean returns the average of the samples in the window — exact, since the
// per-bucket sums are exact; only eviction timing is granular.
func (w *BucketWindow) Mean() (time.Duration, bool) {
	if w.count == 0 {
		return 0, false
	}
	return w.sum / time.Duration(w.count), true
}

// MeanOr returns the window mean, or def when the window is empty.
func (w *BucketWindow) MeanOr(def time.Duration) time.Duration {
	if m, ok := w.Mean(); ok {
		return m
	}
	return def
}

// Max returns the largest sample in the window, and false when empty.
func (w *BucketWindow) Max() (time.Duration, bool) {
	if w.count == 0 {
		return 0, false
	}
	var max time.Duration
	for i := range w.ring {
		if b := &w.ring[i]; b.count > 0 && b.max > max {
			max = b.max
		}
	}
	return max, true
}

// binAccumulator merges the latency bins of one or more bucket windows so a
// quantile can be interpolated over the union (used by Striped).
type binAccumulator struct {
	bins     []uint64
	count    uint64
	overflow uint64
	min, max time.Duration
}

// accumulateBins folds the window's live buckets into acc, lazily sizing
// acc's bins on first use.
func (w *BucketWindow) accumulateBins(acc *binAccumulator) {
	if acc.bins == nil {
		acc.bins = make([]uint64, len(binBounds))
	}
	for i := range w.ring {
		b := &w.ring[i]
		if b.count == 0 {
			continue
		}
		if acc.count == 0 || b.min < acc.min {
			acc.min = b.min
		}
		if b.max > acc.max {
			acc.max = b.max
		}
		acc.count += b.count
		acc.overflow += uint64(b.overflow)
		for j, c := range b.bins {
			acc.bins[j] += uint64(c)
		}
	}
}

// quantile interpolates the p-quantile from the accumulated bins, mirroring
// Histogram.Quantile: exact min/max at the extreme ranks, linear
// interpolation inside the matched bin, overflow reporting the tracked max.
func (acc *binAccumulator) quantile(p float64) (time.Duration, bool) {
	if acc.count == 0 {
		return 0, false
	}
	if p <= 0 {
		return acc.min, true
	}
	if p >= 1 {
		return acc.max, true
	}
	target := uint64(math.Ceil(p * float64(acc.count)))
	if target <= 1 {
		return acc.min, true
	}
	if target >= acc.count {
		return acc.max, true
	}
	if target > acc.count-acc.overflow {
		return acc.max, true
	}
	var cum uint64
	for i, c := range acc.bins {
		if c == 0 {
			continue
		}
		if cum+c >= target {
			lower := time.Duration(0)
			if i > 0 {
				lower = binBounds[i-1]
			}
			upper := binBounds[i]
			if upper > acc.max {
				upper = acc.max
			}
			if lower < acc.min {
				lower = acc.min
			}
			if upper < lower {
				return lower, true
			}
			frac := float64(target-cum) / float64(c)
			return lower + time.Duration(frac*float64(upper-lower)), true
		}
		cum += c
	}
	return acc.max, true
}

// Percentile estimates the p-quantile (p in [0,1]) of the samples in the
// window from the latency bins; relative error is bounded by the bin growth
// factor. Returns false when the window is empty.
func (w *BucketWindow) Percentile(p float64) (time.Duration, bool) {
	if w.count == 0 {
		return 0, false
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	acc := binAccumulator{bins: w.scratchBins()}
	w.accumulateBins(&acc)
	return acc.quantile(p)
}

// scratchBins returns the preallocated, zeroed merge scratch so Percentile
// does not allocate.
func (w *BucketWindow) scratchBins() []uint64 {
	for i := range w.scratch {
		w.scratch[i] = 0
	}
	return w.scratch
}

// Reset discards all samples but keeps the span and time floor.
func (w *BucketWindow) Reset() {
	for i := range w.ring {
		w.ring[i].clear()
	}
	w.count = 0
	w.sum = 0
	w.started = false
}
