package stats

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Summary accumulates a full distribution of latency observations for
// end-of-run reporting: count, mean, and exact percentiles. The experiments
// report average and 99th-percentile end-to-end latency (Figures 4, 10, 12),
// so exactness matters more than memory here; runs observe at most a few
// hundred thousand queries.
type Summary struct {
	values []time.Duration
	sum    time.Duration
	sorted bool
}

// NewSummary returns an empty summary.
func NewSummary() *Summary { return &Summary{} }

// Observe records one latency value.
func (s *Summary) Observe(v time.Duration) {
	s.values = append(s.values, v)
	s.sum += v
	s.sorted = false
}

// Count returns the number of observations.
func (s *Summary) Count() int { return len(s.values) }

// Mean returns the average of all observations, or 0 when empty.
func (s *Summary) Mean() time.Duration {
	if len(s.values) == 0 {
		return 0
	}
	return s.sum / time.Duration(len(s.values))
}

// Sum returns the total of all observations.
func (s *Summary) Sum() time.Duration { return s.sum }

func (s *Summary) sort() {
	if !s.sorted {
		sort.Slice(s.values, func(i, j int) bool { return s.values[i] < s.values[j] })
		s.sorted = true
	}
}

// Percentile returns the p-quantile (p in [0,1]) with linear interpolation
// between closest ranks, or 0 when empty.
func (s *Summary) Percentile(p float64) time.Duration {
	if len(s.values) == 0 {
		return 0
	}
	if p <= 0 {
		s.sort()
		return s.values[0]
	}
	if p >= 1 {
		s.sort()
		return s.values[len(s.values)-1]
	}
	s.sort()
	pos := p * float64(len(s.values)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s.values[lo]
	}
	frac := pos - float64(lo)
	return s.values[lo] + time.Duration(frac*float64(s.values[hi]-s.values[lo]))
}

// P99 returns the 99th percentile, the tail metric the paper reports.
func (s *Summary) P99() time.Duration { return s.Percentile(0.99) }

// P50 returns the median.
func (s *Summary) P50() time.Duration { return s.Percentile(0.50) }

// Max returns the largest observation, or 0 when empty.
func (s *Summary) Max() time.Duration {
	if len(s.values) == 0 {
		return 0
	}
	s.sort()
	return s.values[len(s.values)-1]
}

// Min returns the smallest observation, or 0 when empty.
func (s *Summary) Min() time.Duration {
	if len(s.values) == 0 {
		return 0
	}
	s.sort()
	return s.values[0]
}

// String formats the summary for logs.
func (s *Summary) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p99=%v max=%v",
		s.Count(), s.Mean().Round(time.Microsecond), s.P50().Round(time.Microsecond),
		s.P99().Round(time.Microsecond), s.Max().Round(time.Microsecond))
}

// Improvement returns how many times smaller (better) this summary's metric
// is compared to a baseline value; e.g. baseline mean / this mean. Returns
// +Inf when this summary's value is zero and baseline is not.
func Improvement(baseline, improved time.Duration) float64 {
	if improved == 0 {
		if baseline == 0 {
			return 1
		}
		return math.Inf(1)
	}
	return float64(baseline) / float64(improved)
}
