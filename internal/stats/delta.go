package stats

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// DeltaVersion is the current version of the Delta wire frame. Decoders
// accept any frame whose version is at most this; producers always stamp it,
// so a future incompatible change can be detected instead of silently
// misfolded.
const DeltaVersion = 1

// BinGrowth is the growth factor of the shared log-spaced latency-bin layout
// used by BucketWindow and by every delta digest. Digests built with this
// factor fold into bucketed windows exactly: bin indexes align one-to-one, so
// merging is integer addition of counts, not resampling.
const BinGrowth = binGrowth

// NewBinHistogram builds a histogram on the shared BucketWindow bin layout —
// the histogram every DeltaAccumulator folds into, so its digests merge
// exactly into bucketed windows.
func NewBinHistogram() *Histogram { return NewHistogram(binGrowth) }

// InstDelta is one instance's share of a Delta: the queuing and serving time
// distributions of every completion folded since the last flush, as exact
// digests (count, sum, min/max and sparse bins on the shared layout).
type InstDelta struct {
	Instance string `json:"instance"`
	Stage    string `json:"stage,omitempty"`

	Queuing *HistogramDigest `json:"queuing,omitempty"`
	Serving *HistogramDigest `json:"serving,omitempty"`
}

// Delta is one batched statistics commit: everything an ingest source folded
// locally since its previous flush, in a form that merges exactly into the
// aggregator's windows. It replaces shipping one record per completion —
// the batch is a few digests no matter how many completions it summarizes.
//
// Seq increases by one per flush from one accumulator, so a receiver can
// detect lost batches (a killed source's unflushed tail) by sequence gaps.
// FirstNS/LastNS bracket the local virtual times of the folded completions:
// the receiver folds the whole batch at its own clock, so LastNS only serves
// staleness accounting, never cross-machine time math.
type Delta struct {
	V   int    `json:"v"`
	Seq uint64 `json:"seq"`

	// Queries counts the completed queries summarized by this delta.
	Queries uint64 `json:"queries,omitempty"`

	FirstNS int64 `json:"first_ns,omitempty"`
	LastNS  int64 `json:"last_ns,omitempty"`

	// E2E is the end-to-end latency digest, when the source observes full
	// query latencies (fleet nodes do; stage services leave it nil — the
	// Command Center measures end-to-end latency itself).
	E2E *HistogramDigest `json:"e2e,omitempty"`

	Insts []InstDelta `json:"insts,omitempty"`
}

// Records counts the per-instance records summarized by the delta (each
// completion contributes one record per instance it visited).
func (d *Delta) Records() uint64 {
	var n uint64
	for i := range d.Insts {
		if q := d.Insts[i].Queuing; q != nil {
			n += q.Count
		}
	}
	return n
}

// Empty reports whether the delta summarizes nothing.
func (d *Delta) Empty() bool {
	return d == nil || (d.Queries == 0 && len(d.Insts) == 0 && (d.E2E == nil || d.E2E.Count == 0))
}

// Validate checks the frame version and digest shapes before a fold.
func (d *Delta) Validate() error {
	if d == nil {
		return fmt.Errorf("stats: nil delta")
	}
	if d.V > DeltaVersion {
		return fmt.Errorf("stats: delta version %d newer than supported %d", d.V, DeltaVersion)
	}
	check := func(h *HistogramDigest) error {
		if h == nil {
			return nil
		}
		if h.Growth != binGrowth {
			return fmt.Errorf("stats: delta digest growth %v, shared layout needs %v", h.Growth, binGrowth)
		}
		for _, b := range h.Bins {
			if b.Index < 0 || b.Index >= len(binBounds) {
				return fmt.Errorf("stats: delta bin index %d outside the %d-bin layout", b.Index, len(binBounds))
			}
		}
		return nil
	}
	if err := check(d.E2E); err != nil {
		return err
	}
	for i := range d.Insts {
		if err := check(d.Insts[i].Queuing); err != nil {
			return err
		}
		if err := check(d.Insts[i].Serving); err != nil {
			return err
		}
	}
	return nil
}

// Merge folds other into d (exact: digest bins add). Seq and the time
// bracket widen to cover both; the merged delta keeps d's version.
func (d *Delta) Merge(other *Delta) error {
	if other.Empty() {
		return nil
	}
	if err := other.Validate(); err != nil {
		return err
	}
	d.Queries += other.Queries
	if d.FirstNS == 0 || (other.FirstNS != 0 && other.FirstNS < d.FirstNS) {
		d.FirstNS = other.FirstNS
	}
	if other.LastNS > d.LastNS {
		d.LastNS = other.LastNS
	}
	if other.Seq > d.Seq {
		d.Seq = other.Seq
	}
	var err error
	if d.E2E, err = mergeDigests(d.E2E, other.E2E); err != nil {
		return err
	}
	byInst := make(map[string]int, len(d.Insts))
	for i := range d.Insts {
		byInst[d.Insts[i].Instance] = i
	}
	for i := range other.Insts {
		oi := &other.Insts[i]
		j, ok := byInst[oi.Instance]
		if !ok {
			d.Insts = append(d.Insts, *oi)
			continue
		}
		di := &d.Insts[j]
		if di.Queuing, err = mergeDigests(di.Queuing, oi.Queuing); err != nil {
			return err
		}
		if di.Serving, err = mergeDigests(di.Serving, oi.Serving); err != nil {
			return err
		}
	}
	return nil
}

// mergeDigests merges two digests on the shared layout (either may be nil).
func mergeDigests(a, b *HistogramDigest) (*HistogramDigest, error) {
	if b == nil || b.Count == 0 {
		return a, nil
	}
	if a == nil || a.Count == 0 {
		return b, nil
	}
	ha, err := FromDigest(a)
	if err != nil {
		return nil, err
	}
	hb, err := FromDigest(b)
	if err != nil {
		return nil, err
	}
	if err := ha.Merge(hb); err != nil {
		return nil, err
	}
	return ha.Digest(), nil
}

// DefaultDeltaBatch is the flush threshold NewDeltaAccumulator applies when
// the caller passes zero: flush after this many completed queries.
const DefaultDeltaBatch = 256

// DefaultDeltaInterval is the flush interval applied when the caller passes
// zero: an unflushed batch older than this is due, whatever its size, so
// trickle traffic cannot hold statistics back indefinitely.
const DefaultDeltaInterval = 100 * time.Millisecond

// DeltaAccumulator folds completions into a pending Delta locally and
// decides when the batch should be committed: after Batch completed queries
// or Interval of virtual time since the first unflushed fold, whichever
// comes first — the thresholded net-commit idiom. It is safe for concurrent
// use; fold timestamps are clamped to the accumulator's monotone floor, so
// racing completion goroutines cannot drive its clock backwards.
type DeltaAccumulator struct {
	mu       sync.Mutex
	batch    int
	interval time.Duration

	seq     uint64
	flushes uint64
	foldedQ uint64 // lifetime completed queries folded
	foldedR uint64 // lifetime records folded

	// Pending (unflushed) state.
	queries uint64
	first   time.Duration // time of the first unflushed fold
	last    time.Duration // monotone floor
	started bool
	e2e     *Histogram
	insts   map[string]*instAcc
}

type instAcc struct {
	stage            string
	queuing, serving *Histogram
}

// NewDeltaAccumulator creates an accumulator flushing every batch completed
// queries or every interval, whichever comes first (zeros apply
// DefaultDeltaBatch / DefaultDeltaInterval).
func NewDeltaAccumulator(batch int, interval time.Duration) *DeltaAccumulator {
	if batch <= 0 {
		batch = DefaultDeltaBatch
	}
	if interval <= 0 {
		interval = DefaultDeltaInterval
	}
	return &DeltaAccumulator{
		batch:    batch,
		interval: interval,
		insts:    make(map[string]*instAcc),
	}
}

// Batch returns the flush threshold in completed queries.
func (a *DeltaAccumulator) Batch() int { return a.batch }

// Interval returns the flush interval.
func (a *DeltaAccumulator) Interval() time.Duration { return a.interval }

// clampLocked clamps at to the accumulator's monotone floor and marks the
// first fold of the pending batch. Caller holds a.mu.
func (a *DeltaAccumulator) clampLocked(at time.Duration) time.Duration {
	if at < a.last {
		at = a.last
	} else {
		a.last = at
	}
	if !a.started {
		a.started = true
		a.first = at
	}
	return at
}

// FoldRecord folds one per-instance latency record observed at local virtual
// time at. Negative durations clamp to zero inside the histograms.
func (a *DeltaAccumulator) FoldRecord(at time.Duration, instance, stage string, queuing, serving time.Duration) {
	a.mu.Lock()
	a.clampLocked(at)
	ia := a.insts[instance]
	if ia == nil {
		ia = &instAcc{stage: stage, queuing: NewBinHistogram(), serving: NewBinHistogram()}
		a.insts[instance] = ia
	}
	ia.queuing.Observe(queuing)
	ia.serving.Observe(serving)
	a.foldedR++
	a.mu.Unlock()
}

// FoldCompletion counts one completed query at local virtual time at without
// an end-to-end observation (the stage-service shape: the Command Center
// measures end-to-end latency itself).
func (a *DeltaAccumulator) FoldCompletion(at time.Duration) {
	a.mu.Lock()
	a.clampLocked(at)
	a.queries++
	a.foldedQ++
	a.mu.Unlock()
}

// FoldQuery counts one completed query and its end-to-end latency (the fleet
// node shape).
func (a *DeltaAccumulator) FoldQuery(at, latency time.Duration) {
	a.mu.Lock()
	a.clampLocked(at)
	if a.e2e == nil {
		a.e2e = NewBinHistogram()
	}
	a.e2e.Observe(latency)
	a.queries++
	a.foldedQ++
	a.mu.Unlock()
}

// Due reports whether the pending batch should be flushed as of now: the
// query threshold is reached, or the first unflushed fold is older than the
// interval.
func (a *DeltaAccumulator) Due(now time.Duration) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.dueLocked(now)
}

func (a *DeltaAccumulator) dueLocked(now time.Duration) bool {
	if a.emptyLocked() {
		return false
	}
	if a.queries >= uint64(a.batch) {
		return true
	}
	return now-a.first >= a.interval
}

func (a *DeltaAccumulator) emptyLocked() bool {
	return a.queries == 0 && len(a.insts) == 0 && (a.e2e == nil || a.e2e.Count() == 0)
}

// FlushIfDue flushes and returns the pending batch when it is due as of now,
// nil otherwise.
func (a *DeltaAccumulator) FlushIfDue(now time.Duration) *Delta {
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.dueLocked(now) {
		return nil
	}
	return a.flushLocked()
}

// Flush unconditionally flushes the pending batch, returning nil when there
// is nothing to commit. Receivers driving a periodic pull (the control
// interval's stats refresh) use this as the staleness backstop.
func (a *DeltaAccumulator) Flush(time.Duration) *Delta {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.emptyLocked() {
		return nil
	}
	return a.flushLocked()
}

// flushLocked builds the delta, advances the sequence number and resets the
// pending state. Caller holds a.mu.
func (a *DeltaAccumulator) flushLocked() *Delta {
	a.seq++
	a.flushes++
	d := &Delta{
		V:       DeltaVersion,
		Seq:     a.seq,
		Queries: a.queries,
		FirstNS: int64(a.first),
		LastNS:  int64(a.last),
	}
	if a.e2e != nil && a.e2e.Count() > 0 {
		d.E2E = a.e2e.Digest()
	}
	if len(a.insts) > 0 {
		names := make([]string, 0, len(a.insts))
		for name := range a.insts {
			names = append(names, name)
		}
		sort.Strings(names) // deterministic frame layout
		d.Insts = make([]InstDelta, 0, len(names))
		for _, name := range names {
			ia := a.insts[name]
			d.Insts = append(d.Insts, InstDelta{
				Instance: name,
				Stage:    ia.stage,
				Queuing:  ia.queuing.Digest(),
				Serving:  ia.serving.Digest(),
			})
		}
	}
	a.queries = 0
	a.started = false
	a.e2e = nil
	a.insts = make(map[string]*instAcc)
	return d
}

// Pending returns the unflushed query and record counts.
func (a *DeltaAccumulator) Pending() (queries, records uint64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, ia := range a.insts {
		records += ia.queuing.Count()
	}
	return a.queries, records
}

// Flushes returns the lifetime number of flushed deltas.
func (a *DeltaAccumulator) Flushes() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.flushes
}

// Folded returns the lifetime completed-query and record fold counts.
func (a *DeltaAccumulator) Folded() (queries, records uint64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.foldedQ, a.foldedR
}

// AddDigest folds a whole digest on the shared bin layout into the window at
// virtual time at: every summarized sample lands in the bucket containing
// at, with exact count, sum, min/max, overflow and per-bin membership — so a
// batch of N samples costs O(bins) instead of N Adds, and the window's mean
// and interpolated quantiles equal those of per-sample Adds at the same
// timestamp. The digest must share the BucketWindow layout (growth
// BinGrowth); foreign layouts are rejected.
func (w *BucketWindow) AddDigest(at time.Duration, d *HistogramDigest) error {
	if d == nil || d.Count == 0 {
		return nil
	}
	if d.Growth != binGrowth {
		return fmt.Errorf("stats: digest growth %v cannot fold into the shared %v layout", d.Growth, binGrowth)
	}
	at = w.advance(at)
	b := &w.ring[(at/w.width)%time.Duration(len(w.ring))]
	min, max := time.Duration(d.MinNS), time.Duration(d.MaxNS)
	if b.count == 0 || min < b.min {
		b.min = min
	}
	if max > b.max {
		b.max = max
	}
	b.count += d.Count
	b.sum += time.Duration(d.SumNS)
	b.overflow += uint32(d.Overflow)
	for _, bin := range d.Bins {
		if bin.Index < 0 || bin.Index >= len(b.bins) {
			return fmt.Errorf("stats: digest bin index %d outside the %d-bin layout", bin.Index, len(b.bins))
		}
		b.bins[bin.Index] += uint32(bin.Count)
	}
	w.count += d.Count
	w.sum += time.Duration(d.SumNS)
	return nil
}

// FoldDigest folds a digest into any MovingWindow at virtual time at.
// BucketWindows take the exact O(bins) merge path; other implementations
// (the exact sample-keeping Window) expand the digest into one
// representative sample per summarized observation — count-exact, with
// values quantized to their bin (the per-bin relative error the digest
// carries anyway). Delta ingest is designed for bucketed windows; the
// expansion keeps exact windows working rather than fast.
func FoldDigest(w MovingWindow, at time.Duration, d *HistogramDigest) error {
	if d == nil || d.Count == 0 {
		return nil
	}
	if bw, ok := w.(*BucketWindow); ok {
		return bw.AddDigest(at, d)
	}
	h, err := FromDigest(d)
	if err != nil {
		return err
	}
	var expanded uint64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		lower := time.Duration(0)
		if i > 0 {
			lower = h.bounds[i-1]
		}
		upper := h.bounds[i]
		if upper > h.max {
			upper = h.max
		}
		if lower < h.min {
			lower = h.min
		}
		if upper < lower {
			upper = lower
		}
		mid := lower + (upper-lower)/2
		for j := uint64(0); j < c; j++ {
			w.Add(at, mid)
			expanded++
		}
	}
	for j := uint64(0); j < h.overflow; j++ {
		w.Add(at, h.max)
		expanded++
	}
	// Any samples the digest counts beyond its bins (a producer-side
	// truncation) land at the mean so Count and Sum stay conserved.
	for ; expanded < h.count; expanded++ {
		w.Add(at, h.Mean())
	}
	return nil
}

// FoldDigest folds a digest into the stripe selected by hint, with the same
// monotone clamp Add applies.
func (s *Striped) FoldDigest(hint uint64, at time.Duration, d *HistogramDigest) error {
	if d == nil || d.Count == 0 {
		return nil
	}
	st := &s.stripes[hint%uint64(len(s.stripes))]
	st.mu.Lock()
	defer st.mu.Unlock()
	if at < st.last {
		at = st.last
	} else {
		st.last = at
	}
	return FoldDigest(st.w, at, d)
}
