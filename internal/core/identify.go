package core

import (
	"sort"
	"time"
)

// Metric selects the latency metric used to rank instances. Table 1 of the
// paper lists the candidate historical metrics; Equation 1 is PowerChief's
// combined metric, which augments history with the realtime queue length.
type Metric int

const (
	// MetricExpectedDelay is Equation 1: L·q̄ + s̄ — the delay an incoming
	// query should expect, combining historical statistics with the realtime
	// queue length. PowerChief's default.
	MetricExpectedDelay Metric = iota
	// MetricAvgQueuing ranks by mean queuing time only (Table 1 row 1).
	MetricAvgQueuing
	// MetricAvgServing ranks by mean serving time only (Table 1 row 2).
	MetricAvgServing
	// MetricAvgProcessing ranks by mean queuing+serving (Table 1 row 3).
	MetricAvgProcessing
)

// String implements fmt.Stringer.
func (m Metric) String() string {
	switch m {
	case MetricExpectedDelay:
		return "expected-delay"
	case MetricAvgQueuing:
		return "avg-queuing"
	case MetricAvgServing:
		return "avg-serving"
	case MetricAvgProcessing:
		return "avg-processing"
	default:
		return "unknown-metric"
	}
}

// Ranked is one instance annotated with its latency metric and the
// statistics backing it.
type Ranked struct {
	Instance Instance
	Stage    StageControl
	Metric   time.Duration
	Queuing  time.Duration // windowed mean queuing time q̄
	Serving  time.Duration // windowed mean serving time s̄
	QueueLen int           // realtime queue length L
}

// Identifier is the bottleneck identification component (§4.2): it evaluates
// the latency metric for every live instance and produces a ranking, slowest
// (bottleneck) first.
type Identifier struct {
	Metric Metric
}

// Rank evaluates the metric over all instances. The result is sorted
// descending by metric; ties break by stage order then instance name so the
// ranking is deterministic. Draining instances are excluded — they are
// already leaving.
func (id Identifier) Rank(sys System, stats StatsReader) []Ranked {
	var out []Ranked
	for _, st := range sys.Stages() {
		for _, in := range st.Instances() {
			q, s, _ := stats.InstStats(in.Name())
			out = append(out, Ranked{
				Instance: in,
				Stage:    st,
				Metric:   id.eval(in, q, s),
				Queuing:  q,
				Serving:  s,
				QueueLen: in.QueueLen(),
			})
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Metric != out[j].Metric {
			return out[i].Metric > out[j].Metric
		}
		return out[i].Instance.Name() < out[j].Instance.Name()
	})
	return out
}

// eval computes the chosen latency metric for one instance.
func (id Identifier) eval(in Instance, q, s time.Duration) time.Duration {
	switch id.Metric {
	case MetricExpectedDelay:
		return time.Duration(in.QueueLen())*q + s
	case MetricAvgQueuing:
		return q
	case MetricAvgServing:
		return s
	case MetricAvgProcessing:
		return q + s
	default:
		panic("core: unknown latency metric")
	}
}

// Bottleneck returns the instance with the largest metric, or a zero Ranked
// with ok=false when the system has no instances.
func (id Identifier) Bottleneck(sys System, stats StatsReader) (Ranked, bool) {
	ranked := id.Rank(sys, stats)
	if len(ranked) == 0 {
		return Ranked{}, false
	}
	return ranked[0], true
}

// Spread returns the metric difference between the bottleneck and the
// fastest instance — compared against the balance threshold to suppress
// oscillating reallocation (§8.1).
func Spread(ranked []Ranked) time.Duration {
	if len(ranked) < 2 {
		return 0
	}
	return ranked[0].Metric - ranked[len(ranked)-1].Metric
}
