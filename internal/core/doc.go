// Package core implements PowerChief's Command Center (Figure 5): the
// bottleneck identifier (§4), the boosting decision engine (§5, Algorithm 1)
// and the power reallocator (§6, Algorithm 2), together with the boosting
// and power-conservation policies the paper evaluates against each other —
// stage-agnostic static allocation, pure frequency boosting, pure instance
// boosting, adaptive PowerChief, a Pegasus-style QoS power saver and the
// stage-aware PowerChief power saver.
//
// The decision code acts through the narrow Instance/StageControl/System
// interfaces below, so the identical policies drive the discrete-event
// engine, the live goroutine engine and the distributed RPC prototype.
//
// Entry points: NewAggregator turns query-carried latency records into the
// windowed per-instance statistics of §4.2 — record by record (Ingest) or
// as batched stats.Delta summaries shipped across a process boundary
// (IngestDelta, exact for bucketed windows; DESIGN.md §5j); NewPowerChief, NewFreqBoost,
// NewInstBoost, NewPegasus and NewPowerChiefSaver construct the policies; a
// Policy's Adjust runs once per control interval against a System view.
// EstimateInstBoost and EstimateFreqBoost are the paper's Equation 2/3
// speedup predictions that Algorithm 1 compares. ARCHITECTURE.md diagrams
// how the Command Center sits between the engines and the chip model.
package core
