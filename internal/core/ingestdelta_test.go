package core

import (
	"math/rand"
	"testing"
	"time"

	"powerchief/internal/query"
	"powerchief/internal/stats"
)

// TestIngestDeltaMatchesPerRecordIngest proves the delta path feeds Eq.
// 1/2/3 the same numbers as per-record ingest: two bucketed aggregators, one
// fed records, one fed the batched delta, report identical InstStats means,
// window latency and ingested counts.
func TestIngestDeltaMatchesPerRecordIngest(t *testing.T) {
	clock := time.Duration(0)
	now := func() time.Duration { return clock }
	opts := AggregatorOptions{Window: WindowBucketed}
	perRecord := NewAggregatorOptions(10*time.Second, now, opts)
	batched := NewAggregatorOptions(10*time.Second, now, opts)

	rng := rand.New(rand.NewSource(11))
	acc := stats.NewDeltaAccumulator(1<<20, time.Hour)
	const n = 2000
	clock = 2 * time.Second
	for i := 0; i < n; i++ {
		q := &query.Query{ID: query.ID(i), Arrival: 0, Done: clock}
		enter := time.Duration(i) * time.Millisecond
		qd := time.Duration(rng.Int63n(int64(2 * time.Millisecond)))
		sd := time.Duration(rng.Int63n(int64(8 * time.Millisecond)))
		inst := "web-0"
		if i%4 == 0 {
			inst = "web-1"
		}
		q.Records = append(q.Records, query.Record{
			Query: query.ID(i), Stage: "web", Instance: inst,
			QueueEnter: enter, ServeStart: enter + qd, ServeEnd: enter + qd + sd,
		})
		perRecord.Ingest(q)

		acc.FoldRecord(enter, inst, "web", qd, sd)
		acc.FoldQuery(enter, q.Latency())
	}
	d := acc.Flush(clock)
	if err := batched.IngestDelta(d); err != nil {
		t.Fatalf("IngestDelta: %v", err)
	}

	if perRecord.Ingested() != batched.Ingested() {
		t.Fatalf("ingested: per-record %d, batched %d", perRecord.Ingested(), batched.Ingested())
	}
	for _, inst := range []string{"web-0", "web-1"} {
		q1, s1, ok1 := perRecord.InstStats(inst)
		q2, s2, ok2 := batched.InstStats(inst)
		if !ok1 || !ok2 {
			t.Fatalf("InstStats(%q): ok %v vs %v", inst, ok1, ok2)
		}
		if q1 != q2 || s1 != s2 {
			t.Fatalf("InstStats(%q): per-record (%v, %v), batched (%v, %v)", inst, q1, s1, q2, s2)
		}
	}
	// The e2e samples all carry the same latency timestamp displacement
	// (both sides fold at the same clock reading), so the means agree.
	l1, ok1 := perRecord.WindowLatency()
	l2, ok2 := batched.WindowLatency()
	if !ok1 || !ok2 || l1 != l2 {
		t.Fatalf("WindowLatency: per-record (%v, %v), batched (%v, %v)", l1, ok1, l2, ok2)
	}
	p1, _ := perRecord.WindowTail(0.99)
	p2, _ := batched.WindowTail(0.99)
	if p1 != p2 {
		t.Fatalf("WindowTail(0.99): per-record %v, batched %v", p1, p2)
	}
}

// TestIngestDeltaLifetimeFallback proves a delta-fed instance keeps its
// lifetime-mean fallback after the window empties — saturated bottlenecks
// still get Eq. 2/3 serving estimates.
func TestIngestDeltaLifetimeFallback(t *testing.T) {
	clock := time.Duration(0)
	a := NewAggregatorOptions(time.Second, func() time.Duration { return clock }, AggregatorOptions{Window: WindowBucketed})

	acc := stats.NewDeltaAccumulator(10, time.Hour)
	acc.FoldRecord(0, "db-0", "db", 4*time.Millisecond, 8*time.Millisecond)
	acc.FoldRecord(0, "db-0", "db", 2*time.Millisecond, 4*time.Millisecond)
	if err := a.IngestDelta(acc.Flush(0)); err != nil {
		t.Fatal(err)
	}

	// Let the window expire; the lifetime fallback must survive.
	clock = time.Minute
	q, s, ok := a.InstStats("db-0")
	if !ok {
		t.Fatal("InstStats must fall back to lifetime means")
	}
	if q != 3*time.Millisecond || s != 6*time.Millisecond {
		t.Fatalf("lifetime fallback = (%v, %v), want (3ms, 6ms)", q, s)
	}
}

// TestIngestDeltaRejectsBadFrames: version and layout checks happen before
// any state changes.
func TestIngestDeltaRejectsBadFrames(t *testing.T) {
	a := NewAggregatorOptions(time.Second, func() time.Duration { return 0 }, AggregatorOptions{Window: WindowBucketed})
	if err := a.IngestDelta(&stats.Delta{V: stats.DeltaVersion + 1, Queries: 1}); err == nil {
		t.Fatal("newer frame version must be rejected")
	}
	if a.Ingested() != 0 {
		t.Fatal("rejected frame must not count as ingested")
	}
	if err := a.IngestDelta(&stats.Delta{V: stats.DeltaVersion}); err != nil {
		t.Fatalf("empty delta must be a no-op, got %v", err)
	}
}

// TestIngestDeltaExactWindowExpansion: delta folds also work on the exact
// window kind (count conserved), so a misconfigured deployment degrades to
// approximate values instead of dropping statistics.
func TestIngestDeltaExactWindowExpansion(t *testing.T) {
	a := NewAggregator(time.Minute, func() time.Duration { return 0 })
	acc := stats.NewDeltaAccumulator(10, time.Hour)
	for i := 0; i < 5; i++ {
		acc.FoldRecord(0, "web-0", "web", time.Millisecond, 2*time.Millisecond)
	}
	if err := a.IngestDelta(acc.Flush(0)); err != nil {
		t.Fatal(err)
	}
	q, s, ok := a.InstStats("web-0")
	if !ok || q <= 0 || s <= 0 {
		t.Fatalf("exact-window delta fold lost samples: (%v, %v, %v)", q, s, ok)
	}
}
