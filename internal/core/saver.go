package core

import (
	"time"

	"powerchief/internal/cmp"
	"powerchief/internal/telemetry"
)

// The QoS power-conservation policies of §8.4: resources are over-
// provisioned for the latency target, and the policy's job is the dual of
// boosting — trade the latency slack for power savings without violating
// the QoS.

// Pegasus reimplements the power-conservation policy of Lo et al. [34]
// inside the framework: a feedback controller on the application's average
// latency that adjusts power stage-agnostically — every instance is treated
// indifferently, and only frequency (de)boosting is used (Table 3). The
// thresholds mirror Pegasus's bands: violation triggers maximum power,
// near-target holds, and comfortable slack steps power down.
type Pegasus struct {
	QoS time.Duration

	// HoldIntervals is the cool-down after a QoS violation: Pegasus keeps
	// the whole deployment at maximum power for this many adjust intervals
	// before re-engaging power savings, as in Lo et al.'s controller. Zero
	// defaults to 6.
	HoldIntervals int

	holding int
	tapHolder
}

// NewPegasus builds the policy for the given latency target.
func NewPegasus(qos time.Duration) *Pegasus {
	if qos <= 0 {
		panic("core: Pegasus needs a positive QoS target")
	}
	return &Pegasus{QoS: qos, HoldIntervals: 6}
}

// Name implements Policy.
func (*Pegasus) Name() string { return "pegasus" }

// Plan implements Planner.
func (p *Pegasus) Plan(sys System, stats StatsReader) (*ActionPlan, BoostOutcome) {
	pv := NewPlanView(sys)
	lat, ok := stats.WindowLatency()
	if !ok {
		return pv.Take(), BoostOutcome{Kind: BoostNone}
	}
	frac := float64(lat) / float64(p.QoS)
	ins := Instances(pv)
	out := BoostOutcome{Kind: BoostNone}
	if p.holding > 0 {
		// Cool-down after a violation: stay at maximum power.
		p.holding--
		for _, in := range ins {
			_ = in.SetLevel(cmp.MaxLevel)
		}
		return pv.Take(), out
	}
	switch {
	case frac >= 1.0:
		// QoS violation: race to maximum power and hold it there for the
		// cool-down period.
		p.holding = p.HoldIntervals
		for _, in := range ins {
			if in.Level() != cmp.MaxLevel {
				if err := in.SetLevel(cmp.MaxLevel); err == nil {
					out.Kind = BoostFrequency
				}
			}
		}
	case frac >= 0.90:
		// Close to the target: step everything up one level.
		for _, in := range ins {
			if l := in.Level(); l < cmp.MaxLevel {
				if err := in.SetLevel(l + 1); err == nil {
					out.Kind = BoostFrequency
				}
			}
		}
	case frac >= 0.85:
		// Inside the hold band: keep settings.
	default:
		// Comfortable slack: step everything down one level — uniformly,
		// because Pegasus has no notion of stages. The slowest stage limits
		// how far this can go before latency approaches the target.
		for _, in := range ins {
			if l := in.Level(); l > 0 {
				_ = in.SetLevel(l - 1)
			}
		}
	}
	return pv.Take(), out
}

// Adjust implements Policy.
func (p *Pegasus) Adjust(sys System, agg *Aggregator) BoostOutcome {
	snap := p.capture(sys, agg)
	plan, out := p.Plan(sys, agg)
	out = applyPlan(Executor{}, sys, agg, plan, out)
	p.record(snap, plan, out)
	return out
}

// PowerChiefSaver is PowerChief's power-conservation mode: the opposite of
// service boosting — it identifies the *fastest* service instances across
// stages and applies frequency deboosting and instance withdraw to them,
// leaving the critical stage untouched until the QoS slack is consumed
// (§8.4). Stage awareness is exactly why it saves more than Pegasus: a
// violation is answered by boosting only the bottleneck, not by racing the
// whole deployment back to peak power.
type PowerChiefSaver struct {
	QoS time.Duration
	Cfg Config

	// SafeUtilization caps the projected per-instance utilization after a
	// withdraw: an instance is withdrawn only when the survivors of its
	// stage stay below this busy fraction. Zero defaults to 0.6.
	SafeUtilization float64

	// Withdrawn counts instances withdrawn over the run.
	Withdrawn int
	// Relaunched counts instances launched back during QoS recovery.
	Relaunched int

	cooldown int // intervals left before withdraws may resume
	engine   Engine
	audit    *telemetry.AuditLog
	tapHolder
}

// NewPowerChiefSaver builds the policy for the given latency target.
func NewPowerChiefSaver(qos time.Duration, cfg Config) *PowerChiefSaver {
	if qos <= 0 {
		panic("core: PowerChiefSaver needs a positive QoS target")
	}
	return &PowerChiefSaver{QoS: qos, Cfg: cfg}
}

// Name implements Policy.
func (*PowerChiefSaver) Name() string { return "powerchief" }

// SetAudit implements AuditSetter.
func (s *PowerChiefSaver) SetAudit(a *telemetry.AuditLog) {
	s.audit = a
	s.engine.Audit = a
}

// Plan implements Planner: one conservation interval decided against a
// PlanView. State the decision itself depends on (cooldown, hold bands) is
// advanced here; the withdraw/relaunch counters advance in Adjust once the
// plan actually applied.
func (s *PowerChiefSaver) Plan(sys System, stats StatsReader) (*ActionPlan, BoostOutcome) {
	pv := NewPlanView(sys)
	lat, ok := stats.WindowLatency()
	if !ok {
		return pv.Take(), BoostOutcome{Kind: BoostNone}
	}
	id := Identifier{Metric: s.Cfg.Metric}
	ranked := id.Rank(pv, stats)
	if len(ranked) == 0 {
		return pv.Take(), BoostOutcome{Kind: BoostNone}
	}
	auditIdentify(s.audit, pv.Now(), ranked)
	frac := float64(lat) / float64(s.QoS)
	switch {
	case frac >= 1.0:
		// Violation: restore the bottleneck *stage* aggressively — every
		// instance of the stage to the maximum. Still stage-scoped, unlike
		// Pegasus's whole-deployment race to peak power.
		bn := ranked[0]
		out := BoostOutcome{Kind: BoostNone, Target: bn.Instance.Name()}
		allMax := true
		for _, in := range bn.Stage.Instances() {
			if l := in.Level(); l < cmp.MaxLevel {
				allMax = false
				if err := in.SetLevel(cmp.MaxLevel); err == nil {
					out.Kind = BoostFrequency
					out.NewLevel = cmp.MaxLevel
				}
			}
		}
		if allMax && bn.Stage.CanScale() && pv.FreeCores() > 0 {
			// The whole stage already runs at peak: restore capacity that
			// withdraw recycled earlier by launching an instance back.
			old := pv.setReason(ReasonRelaunch)
			if clone, err := bn.Stage.Clone(bn.Instance); err == nil {
				out.Kind = BoostInstance
				out.NewInstance = clone.Name()
			}
			pv.setReason(old)
		}
		s.cooldown = 6
		pv.SetOutcome(out)
		return pv.Take(), out
	case frac >= 0.90:
		// Near the target: give the bottleneck stage one step back.
		bn := ranked[0]
		out := BoostOutcome{Kind: BoostNone, Target: bn.Instance.Name()}
		for _, in := range bn.Stage.Instances() {
			if l := in.Level(); l < cmp.MaxLevel {
				if err := in.SetLevel(l + 1); err == nil {
					out.Kind = BoostFrequency
					out.NewLevel = l + 1
				}
			}
		}
		return pv.Take(), out
	case frac >= 0.80:
		return pv.Take(), BoostOutcome{Kind: BoostNone}
	}

	// Comfortable slack: conserve power, fastest instances first.

	// Withdraw pass: recycle a whole core when a scalable stage can lose an
	// instance and keep its survivors comfortably utilized. This is the
	// estimation-driven analogue of §6.2's underutilization rule for the
	// conservation mode (one withdraw per interval so the effect is
	// observable before the next decision). Withdraws need deep slack and a
	// cooldown after any QoS recovery, so the policy does not thrash
	// between withdrawing and relaunching across bursts.
	if s.cooldown > 0 {
		s.cooldown--
	}
	if frac < 0.70 && s.cooldown == 0 {
		if name, ok := s.planWithdraw(pv, ranked); ok {
			return pv.Take(), BoostOutcome{Kind: BoostNone, Target: name}
		}
	}

	// Deboost pass: step the fastest instances down, more of them the more
	// slack remains, never touching the bottleneck.
	steps := int((0.80 - frac) * 40)
	if steps < 1 {
		steps = 1
	}
	if steps > len(ranked)-1 {
		steps = len(ranked) - 1
	}
	if steps == 0 {
		steps = 1 // single-instance system: the instance is its own slack
	}
	out := BoostOutcome{Kind: BoostNone}
	bottleneckMetric := ranked[0].Metric
	old := pv.setReason(ReasonDeboost)
	for i := 0; i < steps && i < len(ranked); i++ {
		r := ranked[len(ranked)-1-i]
		in := r.Instance
		if len(ranked) > 1 && in == ranked[0].Instance {
			continue // never slow the bottleneck
		}
		l := in.Level()
		if l == 0 {
			continue
		}
		// Estimation guard: project the instance's expected delay at the
		// lower level (Equation 1 with serving rescaled by the profiled
		// slowdown) and skip the step if it would overtake the current
		// bottleneck — deboosting must never mint a new bottleneck.
		if len(ranked) > 1 {
			alpha := cmp.Alpha(r.Stage.Profile(), l, l-1)
			projected := time.Duration(float64(r.QueueLen)*float64(r.Queuing)*alpha + float64(r.Serving)*alpha)
			if projected > bottleneckMetric {
				continue
			}
		}
		if err := in.SetLevel(l - 1); err == nil {
			out = BoostOutcome{Kind: BoostFrequency, Target: in.Name(), OldLevel: l, NewLevel: l - 1}
		}
	}
	pv.setReason(old)
	return pv.Take(), out
}

// Adjust implements Policy.
func (s *PowerChiefSaver) Adjust(sys System, agg *Aggregator) BoostOutcome {
	snap := s.capture(sys, agg)
	plan, out := s.Plan(sys, agg)
	res := Executor{Audit: s.audit}.Apply(sys, agg, plan)
	if res.Err != nil {
		out = BoostOutcome{Kind: BoostNone, Target: out.Target}
		s.record(snap, plan, out)
		return out
	}
	s.Withdrawn += res.Withdrawn
	if len(res.Clones) > 0 {
		s.Relaunched++
		if out.Kind == BoostInstance {
			out.NewInstance = res.Clones[len(res.Clones)-1]
		}
	}
	s.record(snap, plan, out)
	return out
}

// planWithdraw looks for a stage that can spare an instance: the projected
// utilization of the survivors stays below SafeUtilization. The stage's
// fastest (lowest-metric) instance is withdrawn, its load redirected by the
// stage dispatcher. The withdraw and the epoch resets land on the plan; the
// Executor forgets the victim's statistics when it applies.
func (s *PowerChiefSaver) planWithdraw(pv *PlanView, ranked []Ranked) (string, bool) {
	cap := s.SafeUtilization
	if cap == 0 {
		cap = 0.5
	}
	for _, st := range pv.Stages() {
		if !st.CanScale() {
			continue
		}
		ins := st.Instances()
		n := len(ins)
		if n < 2 {
			continue
		}
		var utilSum float64
		for _, in := range ins {
			utilSum += in.Utilization()
		}
		if utilSum/float64(n-1) >= cap {
			continue
		}
		// Withdraw the stage's fastest instance by metric.
		var victim Instance
		for i := len(ranked) - 1; i >= 0; i-- {
			if ranked[i].Stage.Name() == st.Name() {
				victim = ranked[i].Instance
				break
			}
		}
		if victim == nil {
			continue
		}
		if err := st.Withdraw(victim, nil); err != nil {
			continue
		}
		for _, in := range Instances(pv) {
			in.ResetUtilizationEpoch()
		}
		return victim.Name(), true
	}
	return "", false
}
