package core

import (
	"errors"
	"testing"
	"time"

	"powerchief/internal/cmp"
	"powerchief/internal/telemetry"
)

// levelsOf snapshots every instance level by name.
func levelsOf(sys *fakeSystem) map[string]cmp.Level {
	out := make(map[string]cmp.Level)
	for _, st := range sys.stages {
		for _, in := range st.ins {
			out[in.name] = in.level
		}
	}
	return out
}

func TestPlanDoesNotMutateSystem(t *testing.T) {
	sys := newFakeSystem(100, 8, cmp.MidLevel, "A", "B")
	agg := aggWith(sys, 25*time.Second)
	ingestStats(agg, "A_1", 2*time.Second, 2*time.Second)
	ingestStats(agg, "B_1", 0, 100*time.Millisecond)
	sys.inst("A_1").queueLen = 4

	p := NewFreqBoost(DefaultConfig())
	before := levelsOf(sys)
	drawBefore := sys.draw
	plan, out := p.Plan(sys, agg)

	if out.Kind != BoostFrequency {
		t.Fatalf("planned kind = %v, want freq boost", out.Kind)
	}
	if plan.Empty() {
		t.Fatal("plan is empty despite a planned boost")
	}
	if sys.draw != drawBefore {
		t.Errorf("planning changed draw: %v → %v", drawBefore, sys.draw)
	}
	for name, l := range levelsOf(sys) {
		if l != before[name] {
			t.Errorf("planning changed %s level: %v → %v", name, before[name], l)
		}
	}
	if calls := sys.inst("A_1").setLevelCalls; calls != 0 {
		t.Errorf("planning actuated %d DVFS transitions", calls)
	}

	res := Executor{}.Apply(sys, agg, plan)
	if res.Err != nil {
		t.Fatalf("apply failed: %v", res.Err)
	}
	if got := sys.inst("A_1").level; got != out.NewLevel {
		t.Errorf("applied level = %v, want planned %v", got, out.NewLevel)
	}
}

func TestExecutorRollsBackMidPlanFailure(t *testing.T) {
	sys := newFakeSystem(100, 8, cmp.MidLevel, "A", "B", "C")
	// Tight budget: boosting the bottleneck requires recycling from donors
	// first, so the plan carries donor steps before the bottleneck raise.
	sys.budget = sys.draw + 0.1
	agg := aggWith(sys, 25*time.Second)
	ingestStats(agg, "A_1", 2*time.Second, 2*time.Second)
	ingestStats(agg, "B_1", 0, 100*time.Millisecond)
	ingestStats(agg, "C_1", 0, 120*time.Millisecond)
	sys.inst("A_1").queueLen = 4

	p := NewFreqBoost(DefaultConfig())
	plan, out := p.Plan(sys, agg)
	if out.Kind != BoostFrequency {
		t.Fatalf("planned kind = %v, want freq boost", out.Kind)
	}
	if len(plan.Actions) < 2 {
		t.Fatalf("want donor steps + boost in the plan, got %d actions:\n%s", len(plan.Actions), plan.Describe())
	}

	// The bottleneck's DVFS RPC dies mid-plan, after the donors lowered.
	boom := errors.New("rpc: connection lost")
	sys.inst("A_1").setLevelErr = boom

	before := levelsOf(sys)
	drawBefore := sys.draw
	log := telemetry.NewAuditLog(64)
	res := Executor{Audit: log}.Apply(sys, agg, plan)

	if res.Err == nil || !errors.Is(res.Err, boom) {
		t.Fatalf("apply err = %v, want wrapped %v", res.Err, boom)
	}
	if !res.RolledBack {
		t.Error("executor did not report a rollback")
	}
	if sys.draw != drawBefore {
		t.Errorf("draw after rollback = %v, want %v", sys.draw, drawBefore)
	}
	if sys.draw > sys.budget+1e-9 {
		t.Errorf("draw %v exceeds budget %v after failed plan", sys.draw, sys.budget)
	}
	for name, l := range levelsOf(sys) {
		if l != before[name] {
			t.Errorf("%s level after rollback = %v, want restored %v", name, l, before[name])
		}
	}
	var sawRollback bool
	for _, ev := range log.Events() {
		if ev.Kind == telemetry.EventPlanRollback {
			sawRollback = true
		}
		if ev.Kind == telemetry.EventBoostFreq || ev.Kind == telemetry.EventBoostInst {
			t.Errorf("failed plan audited outcome event %v", ev.Kind)
		}
	}
	if !sawRollback {
		t.Error("no plan-rollback audit event recorded")
	}
}

func TestExecutorRollsBackClone(t *testing.T) {
	sys := newFakeSystem(100, 8, cmp.MidLevel, "A", "B")
	st := sys.stage("A")
	src := sys.inst("A_1")
	victim := sys.inst("B_1")
	boom := errors.New("rpc: connection lost")
	victim.setLevelErr = boom

	plan := &ActionPlan{Actions: []Action{
		&CloneAction{Stage: st, Source: src, Level: src.level},
		&SetLevelAction{Instance: victim, From: victim.level, To: victim.level + 1},
	}}
	drawBefore := sys.draw
	freeBefore := sys.freeCores
	res := Executor{}.Apply(sys, agg0(sys), plan)

	if res.Err == nil {
		t.Fatal("apply succeeded despite the injected failure")
	}
	if len(st.ins) != 1 {
		t.Errorf("stage A has %d instances after rollback, want the clone withdrawn", len(st.ins))
	}
	if sys.draw != drawBefore {
		t.Errorf("draw after rollback = %v, want %v", sys.draw, drawBefore)
	}
	if sys.freeCores != freeBefore {
		t.Errorf("free cores after rollback = %d, want %d", sys.freeCores, freeBefore)
	}
}

func TestExecutorValidateRejectsOverBudget(t *testing.T) {
	sys := newFakeSystem(0, 8, cmp.MidLevel, "A")
	sys.budget = sys.draw // zero headroom
	in := sys.inst("A_1")
	plan := &ActionPlan{Actions: []Action{
		&SetLevelAction{Instance: in, From: in.level, To: cmp.MaxLevel},
	}}
	res := Executor{}.Apply(sys, agg0(sys), plan)
	if res.Err == nil || !errors.Is(res.Err, cmp.ErrBudgetExceeded) {
		t.Fatalf("err = %v, want budget exceeded", res.Err)
	}
	if res.Applied != 0 {
		t.Errorf("validation failure applied %d actions", res.Applied)
	}
	if in.setLevelCalls != 0 {
		t.Error("validation failure reached the instance")
	}
}

func TestExecutorSkipsEpochResetOfWithdrawn(t *testing.T) {
	sys := newFakeSystem(100, 8, cmp.MidLevel, "A")
	st := sys.stage("A")
	extra := &fakeInstance{name: "A_2", stage: "A", level: cmp.MidLevel, sys: sys}
	sys.draw += sys.model.Power(extra.level)
	st.ins = append(st.ins, extra)

	plan := &ActionPlan{Actions: []Action{
		&WithdrawAction{Stage: st, Victim: extra},
		&ResetEpochAction{Instance: extra},
		&ResetEpochAction{Instance: sys.inst("A_1")},
	}}
	res := Executor{}.Apply(sys, agg0(sys), plan)
	if res.Err != nil {
		t.Fatalf("apply failed: %v", res.Err)
	}
	if res.Withdrawn != 1 {
		t.Errorf("withdrawn = %d, want 1", res.Withdrawn)
	}
	if extra.epochResets != 0 {
		t.Error("epoch reset reached the withdrawn instance")
	}
	if sys.inst("A_1").epochResets != 1 {
		t.Error("survivor epoch not reset")
	}
}

func TestPlanViewCachesWrappers(t *testing.T) {
	sys := newFakeSystem(100, 8, cmp.MidLevel, "A", "B")
	pv := NewPlanView(sys)
	a1 := pv.Stages()[0].Instances()[0]
	again := pv.Stages()[0].Instances()[0]
	if a1 != again {
		t.Error("same underlying instance wrapped twice — identity comparisons would break")
	}
	flat := Instances(pv)
	if flat[0] != a1 {
		t.Error("Instances() returned a different wrapper for the same instance")
	}
}

// agg0 is an empty aggregator on the fake clock.
func agg0(sys *fakeSystem) *Aggregator { return aggWith(sys, 25*time.Second) }
