package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"powerchief/internal/query"
)

// TestAggregatorConcurrentStress drives the sharded aggregator the way the
// live and distributed engines do: completion callbacks fire from many
// goroutines at once — some touching disjoint instance sets, some colliding
// on shared instances — while a controller goroutine polls InstStats,
// WindowLatency, and WindowTail throughout. Meaningful under -race; the
// closing assertions check no completion was lost or double-counted.
func TestAggregatorConcurrentStress(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts AggregatorOptions
	}{
		{"exact", AggregatorOptions{Window: WindowExact}},
		{"bucketed", AggregatorOptions{Window: WindowBucketed, Stripes: 4, Buckets: 16}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var clk atomic.Int64
			agg := NewAggregatorOptions(30*time.Second, func() time.Duration {
				return time.Duration(clk.Add(int64(time.Microsecond)))
			}, tc.opts)

			const workers, perWorker = 8, 300
			var wg, ctrl sync.WaitGroup
			stop := make(chan struct{})

			// Controller goroutine: concurrent reads against the writers.
			// Yields between polls so it cannot starve the writers on a
			// single-CPU race-detector run.
			ctrl.Add(1)
			go func() {
				defer ctrl.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					agg.InstStats("SHARED_0")
					agg.InstStats(fmt.Sprintf("OWN_%d", int(agg.Ingested())%workers))
					agg.WindowLatency()
					agg.WindowTail(0.99)
					agg.Ingested()
					runtime.Gosched()
				}
			}()

			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					own := fmt.Sprintf("OWN_%d", w)         // disjoint: this worker only
					shared := fmt.Sprintf("SHARED_%d", w%2) // overlapping: four workers each
					for i := 0; i < perWorker; i++ {
						at := time.Duration(clk.Add(int64(time.Millisecond)))
						id := query.ID(w<<20 | i)
						q := query.New(id, at-2*time.Second, nil)
						q.Append(query.Record{
							Query: id, Stage: "OWN", Instance: own,
							QueueEnter: at - 2*time.Second,
							ServeStart: at - 1500*time.Millisecond,
							ServeEnd:   at - time.Second,
						})
						q.Append(query.Record{
							Query: id, Stage: "SHARED", Instance: shared,
							QueueEnter: at - time.Second,
							ServeStart: at - 700*time.Millisecond,
							ServeEnd:   at,
						})
						q.Done = at
						agg.Ingest(q)
					}
				}(w)
			}
			wg.Wait()
			close(stop)
			ctrl.Wait()

			if got, want := agg.Ingested(), uint64(workers*perWorker); got != want {
				t.Fatalf("Ingested = %d, want %d", got, want)
			}
			// Every record landed: queuing 500ms, serving 500ms on the
			// disjoint instances; queuing 300ms, serving 700ms on the shared.
			for w := 0; w < workers; w++ {
				q, s, ok := agg.InstStats(fmt.Sprintf("OWN_%d", w))
				if !ok {
					t.Fatalf("no stats for OWN_%d", w)
				}
				if q != 500*time.Millisecond || s != 500*time.Millisecond {
					t.Errorf("OWN_%d stats = %v,%v; want 500ms,500ms", w, q, s)
				}
			}
			for s := 0; s < 2; s++ {
				qv, sv, ok := agg.InstStats(fmt.Sprintf("SHARED_%d", s))
				if !ok {
					t.Fatalf("no stats for SHARED_%d", s)
				}
				if qv != 300*time.Millisecond || sv != 700*time.Millisecond {
					t.Errorf("SHARED_%d stats = %v,%v; want 300ms,700ms", s, qv, sv)
				}
			}
			if m, ok := agg.WindowLatency(); !ok || m != 2*time.Second {
				t.Errorf("WindowLatency = %v,%v; want 2s", m, ok)
			}
		})
	}
}

// TestAggregatorOptionsDefaults pins that the zero options reproduce the
// exact-window behavior and the bucketed option swaps implementations.
func TestAggregatorOptionsDefaults(t *testing.T) {
	clk := &fakeClock{now: 10 * time.Second}
	for _, tc := range []struct {
		name string
		opts AggregatorOptions
	}{
		{"exact", AggregatorOptions{}},
		{"bucketed", AggregatorOptions{Window: WindowBucketed}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			agg := NewAggregatorOptions(25*time.Second, clk.Now, tc.opts)
			agg.Ingest(completedQuery(1, 9*time.Second, 10*time.Second,
				query.Record{Query: 1, Stage: "QA", Instance: "QA_1",
					QueueEnter: 0, ServeStart: 100 * time.Millisecond, ServeEnd: 400 * time.Millisecond},
			))
			q, s, ok := agg.InstStats("QA_1")
			if !ok || q != 100*time.Millisecond || s != 300*time.Millisecond {
				t.Errorf("InstStats = %v,%v,%v; want 100ms,300ms,true", q, s, ok)
			}
			if m, ok := agg.WindowLatency(); !ok || m != time.Second {
				t.Errorf("WindowLatency = %v,%v; want 1s", m, ok)
			}
			if p, ok := agg.WindowTail(0.99); !ok || p > 1100*time.Millisecond || p < 700*time.Millisecond {
				t.Errorf("WindowTail = %v,%v; want ~1s", p, ok)
			}
		})
	}
}
