package core

import (
	"fmt"
	"sync"
	"time"

	"powerchief/internal/cmp"
)

// BudgetDomain is one node of the power-budget hierarchy: chip → application
// → stage on a single machine, cluster → node across a fleet. The root
// domain owns a hard cap; every child holds a grant carved out of its
// parent, and the structural invariant — Σ child grants ≤ parent budget —
// is enforced on every mutation, so no sequence of grants can oversubscribe
// an ancestor. A child domain implements NodeControl, which is what lets a
// cross-domain arbiter re-split a parent's budget with the same
// SetBudgetAction / Executor machinery the fleet coordinator uses: grants
// are validated by the budget replay, applied in order, and rolled back in
// reverse on a mid-plan failure.
//
// A domain may carry an actuator: a hook invoked (under the hierarchy lock)
// before a re-grant commits, wired to whatever enforces the budget for real
// — cmp.Chip.SetBudget behind a DVFS-shedding pass for a per-app chip
// partition, an RPC grant for a remote node. An actuator error rejects the
// grant: the ledger keeps the old value and the error propagates to the
// executor, which rolls the plan's applied prefix back. The actuator must
// not call back into the hierarchy.
type BudgetDomain struct {
	// mu is shared by the whole tree (the root's), so a grant's
	// validate-actuate-commit is atomic against concurrent re-grants of
	// siblings and invariant checks observe consistent snapshots.
	mu *sync.Mutex

	name     string
	parent   *BudgetDomain
	budget   cmp.Watts
	children []*BudgetDomain
	actuate  func(cmp.Watts) error
	// detached marks an evicted domain: its grant has been returned to the
	// parent and every further mutation through it is rejected.
	detached bool
}

// NewRootDomain creates the hierarchy root holding the hard cap.
func NewRootDomain(name string, cap cmp.Watts) *BudgetDomain {
	if name == "" {
		panic("core: budget domain needs a name")
	}
	if cap <= 0 {
		panic("core: root budget domain needs a positive cap")
	}
	return &BudgetDomain{mu: &sync.Mutex{}, name: name, budget: cap}
}

// NewChild carves a child domain out of this domain's budget with an
// initial grant. The grant must fit next to the existing children; actuate,
// when non-nil, is invoked on every later re-grant (not on creation — the
// caller builds the child's initial state itself).
func (d *BudgetDomain) NewChild(name string, grant cmp.Watts, actuate func(cmp.Watts) error) (*BudgetDomain, error) {
	if name == "" {
		return nil, fmt.Errorf("core: budget domain needs a name")
	}
	if grant < 0 {
		return nil, fmt.Errorf("core: domain %s: negative initial grant", name)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.detached {
		return nil, fmt.Errorf("core: domain %s is evicted", d.name)
	}
	for _, c := range d.children {
		if c.name == name {
			return nil, fmt.Errorf("core: domain %s already has a child %q", d.name, name)
		}
	}
	if sum := d.grantedLocked() + grant; sum > d.budget+1e-9 {
		return nil, fmt.Errorf("%w: child %s grant %.2fW pushes %s to %.2fW of %.2fW",
			cmp.ErrBudgetExceeded, name, float64(grant), d.name, float64(sum), float64(d.budget))
	}
	c := &BudgetDomain{mu: d.mu, name: name, parent: d, budget: grant, actuate: actuate}
	d.children = append(d.children, c)
	return c, nil
}

// Name implements NodeControl.
func (d *BudgetDomain) Name() string { return d.name }

// Budget implements NodeControl: the domain's cap (root) or current grant
// (child).
func (d *BudgetDomain) Budget() cmp.Watts {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.budget
}

// Granted returns the sum of the domain's child grants — the domain-level
// draw an arbiter's budget replay validates against.
func (d *BudgetDomain) Granted() cmp.Watts {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.grantedLocked()
}

func (d *BudgetDomain) grantedLocked() cmp.Watts {
	var sum cmp.Watts
	for _, c := range d.children {
		sum += c.budget
	}
	return sum
}

// Headroom returns Budget minus Granted: the watts not yet delegated to
// children.
func (d *BudgetDomain) Headroom() cmp.Watts {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.budget - d.grantedLocked()
}

// Children returns the child domains in creation order.
func (d *BudgetDomain) Children() []*BudgetDomain {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]*BudgetDomain, len(d.children))
	copy(out, d.children)
	return out
}

// Child returns the named child, or nil.
func (d *BudgetDomain) Child(name string) *BudgetDomain {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, c := range d.children {
		if c.name == name {
			return c
		}
	}
	return nil
}

// Evict removes the named child from the domain and returns the watts its
// grant frees back into the parent's headroom. Eviction is a pure ledger
// operation: the caller is responsible for physically quiescing whatever
// the child's actuator was driving (the multi-tenant harness sheds the
// tenant's chip partition to its minimum draw first). A child that has
// itself granted budget downward must reclaim before it can be evicted —
// the same "recycle before you shrink" rule SetBudget enforces. The
// evicted domain is detached: every later mutation through it fails, and
// its name is free for a fresh NewChild re-admission.
func (d *BudgetDomain) Evict(name string) (cmp.Watts, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for i, c := range d.children {
		if c.name != name {
			continue
		}
		if len(c.children) > 0 {
			return 0, fmt.Errorf("core: domain %s: child %q still grants to %d children",
				d.name, name, len(c.children))
		}
		d.children = append(d.children[:i], d.children[i+1:]...)
		freed := c.budget
		c.parent = nil
		c.budget = 0
		c.detached = true
		return freed, nil
	}
	return 0, fmt.Errorf("core: domain %s has no child %q", d.name, name)
}

// SetBudget implements NodeControl: re-grant this domain's budget. Raising a
// child is validated against the parent's budget (Σ siblings + new ≤ parent
// cap); lowering any domain below what it has itself granted downward is
// rejected — the arbiter one level down must reclaim first, exactly the
// chip's "recycle before you shrink" rule. The actuator, when set, runs
// before the commit; its error leaves the ledger untouched and propagates,
// so a plan applying this action rolls back.
func (d *BudgetDomain) SetBudget(w cmp.Watts) error {
	if w < 0 {
		return fmt.Errorf("core: domain %s: negative budget %.2fW", d.name, float64(w))
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.detached {
		return fmt.Errorf("core: domain %s is evicted", d.name)
	}
	if granted := d.grantedLocked(); w < granted-1e-9 {
		return fmt.Errorf("%w: domain %s: new budget %.2fW below %.2fW granted to children",
			cmp.ErrBudgetExceeded, d.name, float64(w), float64(granted))
	}
	if p := d.parent; p != nil {
		if sum := p.grantedLocked() - d.budget + w; sum > p.budget+1e-9 {
			return fmt.Errorf("%w: domain %s: grant %.2fW pushes %s to %.2fW of %.2fW",
				cmp.ErrBudgetExceeded, d.name, float64(w), p.name, float64(sum), float64(p.budget))
		}
	}
	if d.actuate != nil {
		if err := d.actuate(w); err != nil {
			return fmt.Errorf("core: domain %s: actuating %.2fW grant: %w", d.name, float64(w), err)
		}
	}
	d.budget = w
	return nil
}

// CheckInvariant verifies Σ child grants ≤ budget for this domain and every
// descendant. Used by tests and the multi-tenant harness after every
// arbiter epoch.
func (d *BudgetDomain) CheckInvariant() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.checkLocked()
}

func (d *BudgetDomain) checkLocked() error {
	if sum := d.grantedLocked(); sum > d.budget+1e-6 {
		return fmt.Errorf("core: domain %s grants %.6fW of a %.6fW budget", d.name, float64(sum), float64(d.budget))
	}
	for _, c := range d.children {
		if err := c.checkLocked(); err != nil {
			return err
		}
	}
	return nil
}

// DomainView wraps a System so its budget accounting comes from a budget
// domain instead of the backend's own notion of "the budget" — the per-app
// view under a multi-tenant hierarchy when apps share one physical chip.
// Everything else (stages, draw, time) passes through.
type DomainView struct {
	System
	domain *BudgetDomain
}

// NewDomainView builds the overlay. Systems with their own chip partition
// (whose chip budget the domain actuator re-sets) do not need it; systems
// sharing a backend do.
func NewDomainView(sys System, d *BudgetDomain) *DomainView {
	if sys == nil || d == nil {
		panic("core: NewDomainView requires a system and a domain")
	}
	return &DomainView{System: sys, domain: d}
}

// Domain returns the wrapped domain.
func (v *DomainView) Domain() *BudgetDomain { return v.domain }

// Budget implements System: the domain's grant, not the backend's cap.
func (v *DomainView) Budget() cmp.Watts { return v.domain.Budget() }

// Headroom implements System: grant minus the backend's draw.
func (v *DomainView) Headroom() cmp.Watts { return v.domain.Budget() - v.Draw() }

// FreeCores implements System, re-anchored to the domain grant: the
// backend's free cores, capped by how many minimum-power cores the domain
// headroom can fund.
func (v *DomainView) FreeCores() int {
	free := v.System.FreeCores()
	min := v.PowerModel().MinPower()
	if min <= 0 {
		return free
	}
	affordable := int(v.Headroom() / min)
	if affordable < free {
		return affordable
	}
	return free
}

// Now implements System (explicit to keep the promoted set obvious).
func (v *DomainView) Now() time.Duration { return v.System.Now() }

// Interface conformance.
var (
	_ NodeControl = (*BudgetDomain)(nil)
	_ System      = (*DomainView)(nil)
)
