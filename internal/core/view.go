package core

import (
	"time"

	"powerchief/internal/cmp"
)

// Instance is the Command Center's handle on one service instance.
type Instance interface {
	// Name is the instance signature carried in query records, e.g. "QA_2".
	Name() string
	// StageName names the owning stage, e.g. "QA".
	StageName() string
	// QueueLen is the realtime load: queued queries plus the one in service
	// (the L of Equation 1).
	QueueLen() int
	// Level is the instance core's current frequency level.
	Level() cmp.Level
	// SetLevel performs a DVFS transition, subject to the chip budget.
	SetLevel(cmp.Level) error
	// Utilization is the fraction of the current withdraw epoch spent
	// serving queries.
	Utilization() float64
	// ResetUtilizationEpoch starts a new withdraw accounting epoch.
	ResetUtilizationEpoch()
}

// StageControl is the Command Center's handle on one stage.
type StageControl interface {
	// Name returns the stage name.
	Name() string
	// CanScale reports whether instances may be launched into or withdrawn
	// from the stage (pipeline stages — fan-out leaves hold shards).
	CanScale() bool
	// Instances returns the live instances accepting queries.
	Instances() []Instance
	// Clone launches a new instance at the bottleneck's frequency and steals
	// half of its queued work (instance boosting).
	Clone(bottleneck Instance) (Instance, error)
	// Withdraw drains victim, redirecting its load to target (or a
	// dispatcher-chosen instance when target is nil).
	Withdraw(victim, target Instance) error
	// Profile returns the stage service's offline frequency profile.
	Profile() cmp.SpeedupProfile
}

// System is the Command Center's view of the whole deployment.
type System interface {
	// Now returns the current (virtual or wall) time.
	Now() time.Duration
	// Stages returns the pipeline stages in order. Quarantined stages are
	// excluded: the policy must never boost, deboost, clone or withdraw an
	// instance it cannot reach.
	Stages() []StageControl
	// Quarantined returns stages currently quarantined by fault handling —
	// unreachable deployments whose instances are excluded from Stages() and
	// whose power draw is excluded from Draw() (their watts are reclaimed
	// into Headroom until re-admission). Engines without fault handling (the
	// DES and the in-process live cluster) return nil.
	Quarantined() []StageControl
	// PowerModel returns the per-core power model.
	PowerModel() cmp.PowerModel
	// Budget returns the application's power budget.
	Budget() cmp.Watts
	// Draw returns the power currently drawn. Quarantined stages draw
	// nothing: a dead instance's watts must be available to survivors.
	Draw() cmp.Watts
	// Headroom returns Budget minus Draw.
	Headroom() cmp.Watts
	// FreeCores returns the number of unallocated physical cores.
	//
	// Contract note: implementations backed by elastic machine capacity (the
	// distributed Command Center) report at least 1 whenever Headroom is
	// positive — even when the headroom cannot fund a whole minimum-power
	// core — because power recycling (Algorithm 2) can free the remainder
	// from donors. Only at zero or negative headroom do they report 0. The
	// quarantine accounting must preserve this: reclaiming a down stage's
	// watts raises Headroom and therefore FreeCores, and re-admission lowers
	// them again.
	FreeCores() int
}

// Instances flattens all live instances of the system in stage order.
func Instances(sys System) []Instance {
	var out []Instance
	for _, st := range sys.Stages() {
		out = append(out, st.Instances()...)
	}
	return out
}

// StageOf returns the stage owning the instance, or nil.
func StageOf(sys System, in Instance) StageControl {
	for _, st := range sys.Stages() {
		if st.Name() == in.StageName() {
			return st
		}
	}
	return nil
}
