package core

import (
	"fmt"
	"time"

	"powerchief/internal/cmp"
)

// In-memory fakes implementing the Command Center interfaces, so the
// decision components can be unit-tested without a simulation engine.

type fakeInstance struct {
	name     string
	stage    string
	queueLen int
	level    cmp.Level
	util     float64
	sys      *fakeSystem

	setLevelCalls int
	epochResets   int
	setLevelErr   error // injected actuation failure (a dead RPC peer)
}

func (f *fakeInstance) Name() string      { return f.name }
func (f *fakeInstance) StageName() string { return f.stage }
func (f *fakeInstance) QueueLen() int     { return f.queueLen }
func (f *fakeInstance) Level() cmp.Level  { return f.level }

func (f *fakeInstance) SetLevel(l cmp.Level) error {
	if f.setLevelErr != nil {
		return f.setLevelErr
	}
	delta := f.sys.model.Power(l) - f.sys.model.Power(f.level)
	if f.sys.draw+delta > f.sys.budget+1e-9 {
		return cmp.ErrBudgetExceeded
	}
	f.sys.draw += delta
	f.level = l
	f.setLevelCalls++
	return nil
}

func (f *fakeInstance) Utilization() float64   { return f.util }
func (f *fakeInstance) ResetUtilizationEpoch() { f.epochResets++ }

type fakeStage struct {
	name     string
	scalable bool
	profile  cmp.SpeedupProfile
	ins      []*fakeInstance
	sys      *fakeSystem

	cloneErr    error
	withdrawErr error
	cloned      []string
	withdrawn   []string
}

func (f *fakeStage) Name() string                { return f.name }
func (f *fakeStage) CanScale() bool              { return f.scalable }
func (f *fakeStage) Profile() cmp.SpeedupProfile { return f.profile }

func (f *fakeStage) Instances() []Instance {
	out := make([]Instance, len(f.ins))
	for i, in := range f.ins {
		out[i] = in
	}
	return out
}

func (f *fakeStage) Clone(bn Instance) (Instance, error) {
	if f.cloneErr != nil {
		return nil, f.cloneErr
	}
	src := bn.(*fakeInstance)
	if f.sys.freeCores <= 0 {
		return nil, cmp.ErrNoFreeCore
	}
	p := f.sys.model.Power(src.level)
	if f.sys.draw+p > f.sys.budget+1e-9 {
		return nil, cmp.ErrBudgetExceeded
	}
	f.sys.draw += p
	f.sys.freeCores--
	clone := &fakeInstance{
		name:     fmt.Sprintf("%s_%d", f.name, len(f.ins)+1),
		stage:    f.name,
		level:    src.level,
		queueLen: src.queueLen / 2,
		sys:      f.sys,
	}
	src.queueLen -= clone.queueLen
	f.ins = append(f.ins, clone)
	f.cloned = append(f.cloned, clone.name)
	return clone, nil
}

func (f *fakeStage) Withdraw(victim, target Instance) error {
	if f.withdrawErr != nil {
		return f.withdrawErr
	}
	v := victim.(*fakeInstance)
	for i, in := range f.ins {
		if in == v {
			f.ins = append(f.ins[:i], f.ins[i+1:]...)
			f.sys.draw -= f.sys.model.Power(v.level)
			f.sys.freeCores++
			f.withdrawn = append(f.withdrawn, v.name)
			return nil
		}
	}
	return fmt.Errorf("fake: withdraw of unknown instance %s", victim.Name())
}

type fakeSystem struct {
	now         time.Duration
	stages      []*fakeStage
	quarantined []*fakeStage
	model       cmp.PowerModel
	budget      cmp.Watts
	draw        cmp.Watts
	freeCores   int
}

func (f *fakeSystem) Now() time.Duration         { return f.now }
func (f *fakeSystem) PowerModel() cmp.PowerModel { return f.model }
func (f *fakeSystem) Budget() cmp.Watts          { return f.budget }
func (f *fakeSystem) Draw() cmp.Watts            { return f.draw }
func (f *fakeSystem) Headroom() cmp.Watts        { return f.budget - f.draw }
func (f *fakeSystem) FreeCores() int             { return f.freeCores }
func (f *fakeSystem) Quarantined() []StageControl {
	out := make([]StageControl, len(f.quarantined))
	for i, st := range f.quarantined {
		out[i] = st
	}
	return out
}

func (f *fakeSystem) Stages() []StageControl {
	out := make([]StageControl, len(f.stages))
	for i, st := range f.stages {
		out[i] = st
	}
	return out
}

// newFakeSystem builds a system with one pipeline stage per spec string of
// the form name:instances, all at the given level.
func newFakeSystem(budget cmp.Watts, freeCores int, level cmp.Level, stageNames ...string) *fakeSystem {
	sys := &fakeSystem{model: cmp.DefaultModel(), budget: budget, freeCores: freeCores}
	for _, name := range stageNames {
		st := &fakeStage{name: name, scalable: true, profile: cmp.NewRooflineProfile(0.2), sys: sys}
		in := &fakeInstance{name: name + "_1", stage: name, level: level, sys: sys}
		sys.draw += sys.model.Power(level)
		st.ins = append(st.ins, in)
		sys.stages = append(sys.stages, st)
	}
	return sys
}

func (f *fakeSystem) inst(name string) *fakeInstance {
	for _, st := range f.stages {
		for _, in := range st.ins {
			if in.name == name {
				return in
			}
		}
	}
	panic("fake: unknown instance " + name)
}

func (f *fakeSystem) stage(name string) *fakeStage {
	for _, st := range f.stages {
		if st.name == name {
			return st
		}
	}
	panic("fake: unknown stage " + name)
}

// aggWith builds an aggregator whose clock follows the fake system, with
// fixed per-instance stats injected through synthetic records.
func aggWith(sys *fakeSystem, window time.Duration) *Aggregator {
	return NewAggregator(window, func() time.Duration { return sys.now })
}
