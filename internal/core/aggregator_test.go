package core

import (
	"testing"
	"time"

	"powerchief/internal/query"
)

// fakeClock is a settable time source for aggregator tests.
type fakeClock struct{ now time.Duration }

func (f *fakeClock) Now() time.Duration { return f.now }

func completedQuery(id query.ID, arrival, done time.Duration, recs ...query.Record) *query.Query {
	q := query.New(id, arrival, nil)
	for _, r := range recs {
		q.Append(r)
	}
	q.Done = done
	return q
}

func TestAggregatorPerInstanceStats(t *testing.T) {
	clk := &fakeClock{}
	agg := NewAggregator(25*time.Second, clk.Now)

	clk.now = 10 * time.Second
	agg.Ingest(completedQuery(1, 9*time.Second, 10*time.Second,
		query.Record{Query: 1, Stage: "QA", Instance: "QA_1", QueueEnter: 0, ServeStart: 100 * time.Millisecond, ServeEnd: 400 * time.Millisecond},
	))
	agg.Ingest(completedQuery(2, 9*time.Second, 10*time.Second,
		query.Record{Query: 2, Stage: "QA", Instance: "QA_1", QueueEnter: 0, ServeStart: 300 * time.Millisecond, ServeEnd: 800 * time.Millisecond},
	))
	q, s, ok := agg.InstStats("QA_1")
	if !ok {
		t.Fatal("stats missing for QA_1")
	}
	if q != 200*time.Millisecond {
		t.Errorf("mean queuing = %v, want 200ms", q)
	}
	if s != 400*time.Millisecond {
		t.Errorf("mean serving = %v, want 400ms", s)
	}
	if agg.Ingested() != 2 {
		t.Errorf("Ingested = %d", agg.Ingested())
	}
}

func TestAggregatorUnknownInstance(t *testing.T) {
	agg := NewAggregator(time.Second, (&fakeClock{}).Now)
	if _, _, ok := agg.InstStats("ghost"); ok {
		t.Error("unknown instance reported stats")
	}
}

func TestAggregatorLifetimeFallback(t *testing.T) {
	clk := &fakeClock{}
	agg := NewAggregator(25*time.Second, clk.Now)
	clk.now = 10 * time.Second
	agg.Ingest(completedQuery(1, 9*time.Second, 10*time.Second,
		query.Record{Query: 1, Stage: "QA", Instance: "QA_1", QueueEnter: 0, ServeStart: time.Second, ServeEnd: 2 * time.Second},
	))
	// Window drains after 25s with no new completions (a saturated
	// bottleneck): lifetime means must still be served.
	clk.now = 100 * time.Second
	q, s, ok := agg.InstStats("QA_1")
	if !ok {
		t.Fatal("fallback stats missing")
	}
	if q != time.Second || s != time.Second {
		t.Errorf("fallback q/s = %v/%v, want 1s/1s", q, s)
	}
}

func TestAggregatorWindowEviction(t *testing.T) {
	clk := &fakeClock{}
	agg := NewAggregator(10*time.Second, clk.Now)
	clk.now = time.Second
	agg.Ingest(completedQuery(1, 0, time.Second,
		query.Record{Instance: "A_1", QueueEnter: 0, ServeStart: 0, ServeEnd: 100 * time.Millisecond},
	))
	clk.now = 20 * time.Second
	agg.Ingest(completedQuery(2, 19*time.Second, 20*time.Second,
		query.Record{Instance: "A_1", QueueEnter: 0, ServeStart: 0, ServeEnd: 300 * time.Millisecond},
	))
	// The first record fell out of the 10s window: the mean reflects only
	// the second.
	_, s, _ := agg.InstStats("A_1")
	if s != 300*time.Millisecond {
		t.Errorf("windowed serving = %v, want 300ms", s)
	}
}

func TestAggregatorEndToEndLatency(t *testing.T) {
	clk := &fakeClock{}
	agg := NewAggregator(25*time.Second, clk.Now)
	if _, ok := agg.WindowLatency(); ok {
		t.Error("empty aggregator reported latency")
	}
	clk.now = 5 * time.Second
	agg.Ingest(completedQuery(1, 4*time.Second, 5*time.Second))
	agg.Ingest(completedQuery(2, 2*time.Second, 5*time.Second))
	lat, ok := agg.WindowLatency()
	if !ok || lat != 2*time.Second {
		t.Errorf("WindowLatency = %v,%v; want 2s", lat, ok)
	}
	tail, ok := agg.WindowTail(0.99)
	if !ok || tail != 3*time.Second {
		t.Errorf("WindowTail = %v,%v; want 3s", tail, ok)
	}
}

func TestAggregatorForget(t *testing.T) {
	clk := &fakeClock{}
	agg := NewAggregator(time.Minute, clk.Now)
	agg.Ingest(completedQuery(1, 0, 0,
		query.Record{Instance: "A_1", ServeEnd: time.Millisecond},
	))
	agg.Forget("A_1")
	if _, _, ok := agg.InstStats("A_1"); ok {
		t.Error("forgotten instance still has stats")
	}
}

func TestNewAggregatorValidates(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero window": func() { NewAggregator(0, (&fakeClock{}).Now) },
		"nil clock":   func() { NewAggregator(time.Second, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}
