package core

import (
	"fmt"
	"sort"
	"time"

	"powerchief/internal/cmp"
)

// SnapshotVersion is the schema version stamped on every capture. Readers
// reject snapshots from a different schema — silent reinterpretation of a
// recorded decision input would defeat the replay determinism gate.
const SnapshotVersion = 1

// InstanceSnap captures one service instance at a control tick: its realtime
// load, its DVFS level, and the windowed statistics the Identifier read.
type InstanceSnap struct {
	Name        string        `json:"name"`
	QueueLen    int           `json:"queue_len"`
	Level       cmp.Level     `json:"level"`
	Utilization float64       `json:"utilization"`
	Queuing     time.Duration `json:"queuing_ns"`
	Serving     time.Duration `json:"serving_ns"`
	StatsOK     bool          `json:"stats_ok"`
}

// StageSnap captures one stage: scaling capability, the offline frequency
// profile (as an explicit table, so the capture carries its own physics),
// and the live instances.
type StageSnap struct {
	Name      string           `json:"name"`
	CanScale  bool             `json:"can_scale"`
	Profile   cmp.TableProfile `json:"exec_ratio"`
	Instances []InstanceSnap   `json:"instances"`
}

// WindowSnap captures the end-to-end latency window at a fixed quantile
// grid. Policies read the mean (WindowLatency); the tails feed replay
// scoring. OK mirrors the aggregator's window-empty signal.
type WindowSnap struct {
	OK      bool          `json:"ok"`
	Latency time.Duration `json:"latency_ns"`
	P50     time.Duration `json:"p50_ns"`
	P90     time.Duration `json:"p90_ns"`
	P99     time.Duration `json:"p99_ns"`
	P999    time.Duration `json:"p999_ns"`
}

// Snapshot is a self-contained, versioned capture of everything a Planner
// reads at one control tick: the budget ledger, the power model, per-stage /
// per-instance state and statistics, quarantine names and the clock. A
// Snapshot plus a policy determines the policy's ActionPlan — that is the
// purity contract (DESIGN.md §5l) the replay engine is built on.
type Snapshot struct {
	Version     int            `json:"version"`
	Now         time.Duration  `json:"now_ns"`
	Budget      cmp.Watts      `json:"budget_watts"`
	Draw        cmp.Watts      `json:"draw_watts"`
	FreeCores   int            `json:"free_cores"`
	Power       cmp.TableModel `json:"power_watts"`
	Stages      []StageSnap    `json:"stages"`
	Quarantined []string       `json:"quarantined,omitempty"`
	Window      WindowSnap     `json:"window"`
}

// CaptureSnapshot captures the decision inputs of one control tick. The
// stats reader may be nil (topology-only capture: StatsOK false everywhere).
func CaptureSnapshot(sys System, stats StatsReader) *Snapshot {
	snap := &Snapshot{
		Version:   SnapshotVersion,
		Now:       sys.Now(),
		Budget:    sys.Budget(),
		Draw:      sys.Draw(),
		FreeCores: sys.FreeCores(),
	}
	model := sys.PowerModel()
	for l := cmp.Level(0); l < cmp.NumLevels; l++ {
		snap.Power[l] = model.Power(l)
	}
	for _, st := range sys.Stages() {
		ss := StageSnap{Name: st.Name(), CanScale: st.CanScale()}
		profile := st.Profile()
		for l := cmp.Level(0); l < cmp.NumLevels; l++ {
			ss.Profile[l] = profile.ExecRatio(l)
		}
		for _, in := range st.Instances() {
			is := InstanceSnap{
				Name:        in.Name(),
				QueueLen:    in.QueueLen(),
				Level:       in.Level(),
				Utilization: in.Utilization(),
			}
			if stats != nil {
				is.Queuing, is.Serving, is.StatsOK = stats.InstStats(in.Name())
			}
			ss.Instances = append(ss.Instances, is)
		}
		snap.Stages = append(snap.Stages, ss)
	}
	for _, st := range sys.Quarantined() {
		snap.Quarantined = append(snap.Quarantined, st.Name())
	}
	sort.Strings(snap.Quarantined)
	if stats != nil {
		snap.Window.Latency, snap.Window.OK = stats.WindowLatency()
		snap.Window.P50, _ = stats.WindowTail(0.5)
		snap.Window.P90, _ = stats.WindowTail(0.9)
		snap.Window.P99, _ = stats.WindowTail(0.99)
		snap.Window.P999, _ = stats.WindowTail(0.999)
	}
	return snap
}

// Validate checks the snapshot's schema version and physics tables.
func (s *Snapshot) Validate() error {
	if s.Version != SnapshotVersion {
		return fmt.Errorf("core: snapshot schema v%d, this build reads v%d", s.Version, SnapshotVersion)
	}
	if err := s.Power.Validate(); err != nil {
		return fmt.Errorf("core: snapshot power table: %w", err)
	}
	for i := range s.Stages {
		if err := s.Stages[i].Profile.Validate(); err != nil {
			return fmt.Errorf("core: snapshot stage %s profile: %w", s.Stages[i].Name, err)
		}
	}
	return nil
}

// SnapshotView serves a Snapshot back as a live-looking deployment: it
// implements both System and StatsReader over purely in-memory state, so a
// Planner re-run against it decides from exactly the recorded inputs and a
// ShadowExecutor can actuate the resulting plan without any hardware or RPC
// reachable. Mutations (levels, clones, withdraws) stay inside the view.
type SnapshotView struct {
	snap   *Snapshot
	model  cmp.TableModel
	stages []*shadowStage
	draw   cmp.Watts
	free   int
	clones int
}

// NewSnapshotView builds the shadow deployment from a capture. The snapshot
// itself is not retained mutably — instance state is copied out.
func NewSnapshotView(snap *Snapshot) *SnapshotView {
	v := &SnapshotView{
		snap:  snap,
		model: snap.Power,
		draw:  snap.Draw,
		free:  snap.FreeCores,
	}
	for i := range snap.Stages {
		ss := &snap.Stages[i]
		st := &shadowStage{view: v, name: ss.Name, canScale: ss.CanScale, profile: ss.Profile}
		for _, is := range ss.Instances {
			st.ins = append(st.ins, &shadowInstance{stage: st, InstanceSnap: is})
		}
		v.stages = append(v.stages, st)
	}
	return v
}

// Now implements System.
func (v *SnapshotView) Now() time.Duration { return v.snap.Now }

// Stages implements System.
func (v *SnapshotView) Stages() []StageControl {
	out := make([]StageControl, len(v.stages))
	for i, st := range v.stages {
		out[i] = st
	}
	return out
}

// Quarantined implements System. Quarantined stages were captured by name
// only — their instances were unreachable at record time — so the shadow
// reports none, exactly like the capture's Stages() excluded them.
func (v *SnapshotView) Quarantined() []StageControl { return nil }

// PowerModel implements System.
func (v *SnapshotView) PowerModel() cmp.PowerModel { return &v.model }

// Budget implements System.
func (v *SnapshotView) Budget() cmp.Watts { return v.snap.Budget }

// Draw implements System.
func (v *SnapshotView) Draw() cmp.Watts { return v.draw }

// Headroom implements System.
func (v *SnapshotView) Headroom() cmp.Watts { return v.snap.Budget - v.draw }

// FreeCores implements System.
func (v *SnapshotView) FreeCores() int {
	if v.free < 0 {
		return 0
	}
	return v.free
}

// InstStats implements StatsReader from the captured per-instance windows.
// Instances minted in shadow (clones) have no recorded statistics.
func (v *SnapshotView) InstStats(name string) (queuing, serving time.Duration, ok bool) {
	for _, st := range v.stages {
		for _, in := range st.ins {
			if in.InstanceSnap.Name == name {
				return in.Queuing, in.Serving, in.StatsOK
			}
		}
	}
	return 0, 0, false
}

// WindowLatency implements StatsReader.
func (v *SnapshotView) WindowLatency() (time.Duration, bool) {
	return v.snap.Window.Latency, v.snap.Window.OK
}

// WindowTail implements StatsReader: the captured quantile grid point at or
// above p. Captures hold p50/p90/p99/p999 — the grid every consumer in this
// repo reads.
func (v *SnapshotView) WindowTail(p float64) (time.Duration, bool) {
	w := v.snap.Window
	if !w.OK {
		return 0, false
	}
	switch {
	case p <= 0.5:
		return w.P50, true
	case p <= 0.9:
		return w.P90, true
	case p <= 0.99:
		return w.P99, true
	default:
		return w.P999, true
	}
}

// shadowStage is the in-memory StageControl of a SnapshotView.
type shadowStage struct {
	view     *SnapshotView
	name     string
	canScale bool
	profile  cmp.TableProfile
	ins      []*shadowInstance
}

// Name implements StageControl.
func (s *shadowStage) Name() string { return s.name }

// CanScale implements StageControl.
func (s *shadowStage) CanScale() bool { return s.canScale }

// Profile implements StageControl.
func (s *shadowStage) Profile() cmp.SpeedupProfile { return &s.profile }

// Instances implements StageControl.
func (s *shadowStage) Instances() []Instance {
	out := make([]Instance, len(s.ins))
	for i, in := range s.ins {
		out[i] = in
	}
	return out
}

// Clone implements StageControl: a new shadow instance at the bottleneck's
// level stealing half its queue, charged against the captured budget.
func (s *shadowStage) Clone(bottleneck Instance) (Instance, error) {
	if !s.canScale {
		return nil, fmt.Errorf("core: shadow stage %s cannot scale", s.name)
	}
	if s.view.free <= 0 {
		return nil, cmp.ErrNoFreeCore
	}
	src := s.find(bottleneck.Name())
	if src == nil {
		return nil, fmt.Errorf("core: shadow stage %s has no instance %s", s.name, bottleneck.Name())
	}
	p := s.view.model.Power(src.InstanceSnap.Level)
	if s.view.draw+p > s.view.snap.Budget+1e-9 {
		return nil, cmp.ErrBudgetExceeded
	}
	s.view.clones++
	stolen := src.InstanceSnap.QueueLen / 2
	src.InstanceSnap.QueueLen -= stolen
	clone := &shadowInstance{stage: s, InstanceSnap: InstanceSnap{
		Name:     fmt.Sprintf("%s+shadow%d", src.InstanceSnap.Name, s.view.clones),
		QueueLen: stolen,
		Level:    src.InstanceSnap.Level,
	}}
	s.ins = append(s.ins, clone)
	s.view.draw += p
	s.view.free--
	return clone, nil
}

// Withdraw implements StageControl: drain victim, push its queue to target
// (or the stage's first survivor), refund its power and core.
func (s *shadowStage) Withdraw(victim, target Instance) error {
	idx := -1
	for i, in := range s.ins {
		if in.InstanceSnap.Name == victim.Name() {
			idx = i
			break
		}
	}
	if idx < 0 {
		return fmt.Errorf("core: shadow stage %s has no instance %s", s.name, victim.Name())
	}
	if len(s.ins) < 2 {
		return fmt.Errorf("core: shadow stage %s cannot withdraw its last instance", s.name)
	}
	v := s.ins[idx]
	s.ins = append(s.ins[:idx], s.ins[idx+1:]...)
	var tgt *shadowInstance
	if target != nil {
		tgt = s.find(target.Name())
	}
	if tgt == nil {
		tgt = s.ins[0]
	}
	tgt.InstanceSnap.QueueLen += v.InstanceSnap.QueueLen
	s.view.draw -= s.view.model.Power(v.InstanceSnap.Level)
	if s.view.draw < 0 {
		s.view.draw = 0
	}
	s.view.free++
	return nil
}

// find returns the shadow instance by name, or nil.
func (s *shadowStage) find(name string) *shadowInstance {
	for _, in := range s.ins {
		if in.InstanceSnap.Name == name {
			return in
		}
	}
	return nil
}

// shadowInstance is the in-memory Instance of a SnapshotView.
type shadowInstance struct {
	stage *shadowStage
	InstanceSnap
}

// Name implements Instance.
func (in *shadowInstance) Name() string { return in.InstanceSnap.Name }

// StageName implements Instance.
func (in *shadowInstance) StageName() string { return in.stage.name }

// QueueLen implements Instance.
func (in *shadowInstance) QueueLen() int { return in.InstanceSnap.QueueLen }

// Level implements Instance.
func (in *shadowInstance) Level() cmp.Level { return in.InstanceSnap.Level }

// SetLevel implements Instance, enforcing the captured budget with the
// chip's acceptance test.
func (in *shadowInstance) SetLevel(l cmp.Level) error {
	if !l.Valid() {
		return fmt.Errorf("core: shadow set-level %s: invalid level %d", in.InstanceSnap.Name, int(l))
	}
	v := in.stage.view
	delta := v.model.Power(l) - v.model.Power(in.InstanceSnap.Level)
	if v.draw+delta > v.snap.Budget+1e-9 {
		return cmp.ErrBudgetExceeded
	}
	v.draw += delta
	in.InstanceSnap.Level = l
	return nil
}

// Utilization implements Instance.
func (in *shadowInstance) Utilization() float64 { return in.InstanceSnap.Utilization }

// ResetUtilizationEpoch implements Instance.
func (in *shadowInstance) ResetUtilizationEpoch() { in.InstanceSnap.Utilization = 0 }

var (
	_ System      = (*SnapshotView)(nil)
	_ StatsReader = (*SnapshotView)(nil)
)
