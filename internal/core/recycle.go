package core

import (
	"fmt"

	"powerchief/internal/cmp"
)

// Recycler implements the power reallocation mechanism (§6.1, Algorithm 2):
// when the boosting decision needs more power than the budget headroom
// offers, power is recycled greedily from the fastest instances — those with
// the smallest latency metric, which have the least chance of becoming the
// next bottleneck — by stepping their frequency down, one instance at a
// time, until enough power is freed.
type Recycler struct {
	// Floor is the lowest level recycling may push a donor to. Zero (the
	// ladder minimum) matches the paper.
	Floor cmp.Level
}

// RecycleFromInst lowers one donor instance's frequency just enough to free
// the requested power (or to the floor), returning the power actually
// recycled. Mirrors RECYCLEFROMINST of Algorithm 2.
func (r Recycler) RecycleFromInst(model cmp.PowerModel, donor Instance, need cmp.Watts) cmp.Watts {
	if need <= 0 {
		return 0
	}
	cur := donor.Level()
	target := cur
	var recycled cmp.Watts
	for l := cur; l >= r.Floor; l-- {
		recycled = model.Power(cur) - model.Power(l)
		target = l
		if recycled >= need {
			break
		}
	}
	if target == cur {
		return 0
	}
	if err := donor.SetLevel(target); err != nil {
		// Lowering frequency never exceeds the budget; a failure means the
		// instance retired between ranking and actuation. Skip it.
		return 0
	}
	return recycled
}

// Recycle frees at least `need` watts by walking donors from fastest to
// slowest (RECYCLE of Algorithm 2). The donors slice must be ordered fastest
// first — i.e. the ranking of the bottleneck identifier reversed — and must
// not contain the instance being boosted. Returns the total power recycled,
// which may fall short when every donor is already at the floor.
func (r Recycler) Recycle(model cmp.PowerModel, donors []Instance, need cmp.Watts) cmp.Watts {
	var recycled cmp.Watts
	for _, donor := range donors {
		if recycled >= need {
			break
		}
		recycled += r.RecycleFromInst(model, donor, need-recycled)
	}
	return recycled
}

// DonorsFromRanking extracts the donor list for boosting `bottleneck`: every
// other ranked instance, fastest (smallest metric) first.
func DonorsFromRanking(ranked []Ranked, bottleneck Instance) []Instance {
	donors := make([]Instance, 0, len(ranked))
	for i := len(ranked) - 1; i >= 0; i-- {
		if ranked[i].Instance != bottleneck {
			donors = append(donors, ranked[i].Instance)
		}
	}
	return donors
}

// WithdrawPlan describes one instance withdraw decision (§6.2).
type WithdrawPlan struct {
	Stage  StageControl
	Victim Instance
	Target Instance // fastest instance of the stage, receives the load
}

// PlanWithdraws scans every scalable stage for underutilized instances: busy
// less than threshold of the elapsed withdraw epoch. At most one instance
// per stage is selected (the least utilized), and never the last instance of
// a stage. Rankings must come from the current interval so the redirect
// target is the stage's fastest instance.
func PlanWithdraws(sys System, ranked []Ranked, threshold float64) []WithdrawPlan {
	// Fastest instance per stage: lowest-metric live instance.
	fastest := make(map[string]Instance)
	for i := len(ranked) - 1; i >= 0; i-- {
		name := ranked[i].Stage.Name()
		if _, ok := fastest[name]; !ok {
			fastest[name] = ranked[i].Instance
		}
	}
	var plans []WithdrawPlan
	for _, st := range sys.Stages() {
		if !st.CanScale() {
			continue
		}
		ins := st.Instances()
		if len(ins) < 2 {
			continue
		}
		var victim Instance
		lowest := threshold
		for _, in := range ins {
			if u := in.Utilization(); u < lowest {
				victim, lowest = in, u
			}
		}
		if victim == nil {
			continue
		}
		target := fastest[st.Name()]
		if target == victim {
			target = nil // let the stage dispatcher choose
		}
		plans = append(plans, WithdrawPlan{Stage: st, Victim: victim, Target: target})
	}
	return plans
}

// PlanWithdrawEpoch captures one withdraw epoch (§6.2) as an ActionPlan:
// the per-stage underutilization withdraws followed by a utilization-epoch
// reset of every instance (the Executor skips resets of instances withdrawn
// earlier in the plan, leaving exactly the survivors reset).
func PlanWithdrawEpoch(sys System, ranked []Ranked, threshold float64) *ActionPlan {
	plan := &ActionPlan{}
	for _, wp := range PlanWithdraws(sys, ranked, threshold) {
		plan.Actions = append(plan.Actions, &WithdrawAction{Stage: wp.Stage, Victim: wp.Victim, Target: wp.Target})
	}
	for _, in := range Instances(sys) {
		plan.Actions = append(plan.Actions, &ResetEpochAction{Instance: in})
	}
	return plan
}

// ExecuteWithdraws applies the plans, forgetting the victims' statistics.
// Returns the number of instances withdrawn.
func ExecuteWithdraws(plans []WithdrawPlan, agg *Aggregator) (int, error) {
	n := 0
	for _, p := range plans {
		if err := p.Stage.Withdraw(p.Victim, p.Target); err != nil {
			return n, fmt.Errorf("core: withdrawing %s: %w", p.Victim.Name(), err)
		}
		agg.Forget(p.Victim.Name())
		n++
	}
	return n, nil
}
