package core

import (
	"sync"
	"time"

	"powerchief/internal/query"
	"powerchief/internal/stats"
)

// Aggregator is the statistics half of the Command Center. Completed queries
// arrive carrying the latency records every instance appended on the way
// (the service/query joint design, §4.1); the aggregator folds them into
// per-instance moving windows of queuing and serving time, plus an
// end-to-end latency window for the QoS policies. All statistics are
// computed from instance-local timestamps, so no clock synchronization
// between machines is assumed.
// Aggregator is safe for concurrent use: in the live engine, completions
// arrive from instance goroutines while the controller reads statistics.
type Aggregator struct {
	window time.Duration
	now    func() time.Duration

	mu       sync.Mutex
	perInst  map[string]*instStats
	e2e      *stats.Window
	ingested uint64
}

// instStats holds one instance's windowed and lifetime statistics. The
// lifetime means serve as fallback when a window goes empty — e.g. a fully
// saturated bottleneck that has not completed a query in the current window
// still needs a serving-time estimate for Equations 2 and 3.
type instStats struct {
	queuing *stats.Window
	serving *stats.Window

	lifeCount   uint64
	lifeQueuing time.Duration
	lifeServing time.Duration
}

// NewAggregator creates an aggregator with the given moving-window span,
// reading time from now (the simulation clock or wall clock).
func NewAggregator(window time.Duration, now func() time.Duration) *Aggregator {
	if window <= 0 {
		panic("core: aggregator window must be positive")
	}
	if now == nil {
		panic("core: aggregator needs a clock")
	}
	return &Aggregator{
		window:  window,
		now:     now,
		perInst: make(map[string]*instStats),
		e2e:     stats.NewWindow(window),
	}
}

// Ingest folds a completed query's records into the statistics. It is the
// OnComplete callback of the service system.
func (a *Aggregator) Ingest(q *query.Query) {
	now := a.now()
	a.mu.Lock()
	defer a.mu.Unlock()
	a.ingested++
	for _, r := range q.Records {
		is, ok := a.perInst[r.Instance]
		if !ok {
			is = &instStats{
				queuing: stats.NewWindow(a.window),
				serving: stats.NewWindow(a.window),
			}
			a.perInst[r.Instance] = is
		}
		is.queuing.Add(now, r.Queuing())
		is.serving.Add(now, r.Serving())
		is.lifeCount++
		is.lifeQueuing += r.Queuing()
		is.lifeServing += r.Serving()
	}
	a.e2e.Add(now, q.Latency())
}

// Ingested returns the number of completed queries folded in.
func (a *Aggregator) Ingested() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.ingested
}

// InstStats returns the moving-window mean queuing and serving time of the
// named instance. When the window is empty the lifetime means are used; an
// instance never seen reports zeros with ok=false.
func (a *Aggregator) InstStats(name string) (queuing, serving time.Duration, ok bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	is, found := a.perInst[name]
	if !found {
		return 0, 0, false
	}
	now := a.now()
	is.queuing.Advance(now)
	is.serving.Advance(now)
	if q, has := is.queuing.Mean(); has {
		s, _ := is.serving.Mean()
		return q, s, true
	}
	if is.lifeCount == 0 {
		return 0, 0, false
	}
	n := time.Duration(is.lifeCount)
	return is.lifeQueuing / n, is.lifeServing / n, true
}

// WindowLatency returns the moving-window mean end-to-end latency, used by
// the QoS power-conservation policies to judge slack against the target.
func (a *Aggregator) WindowLatency() (time.Duration, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.e2e.Advance(a.now())
	return a.e2e.Mean()
}

// WindowTail returns the moving-window p-quantile end-to-end latency.
func (a *Aggregator) WindowTail(p float64) (time.Duration, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.e2e.Advance(a.now())
	return a.e2e.Percentile(p)
}

// Forget removes a withdrawn instance's statistics so stale history cannot
// skew future rankings if the name is reused.
func (a *Aggregator) Forget(name string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	delete(a.perInst, name)
}
