package core

import (
	"sync"
	"sync/atomic"
	"time"

	"powerchief/internal/query"
	"powerchief/internal/stats"
)

// WindowKind selects the moving-window implementation behind the
// aggregator's statistics.
type WindowKind int

const (
	// WindowExact keeps every sample: exact, deterministic means and
	// percentiles — the paper-reproduction default for the DES engine.
	// Memory grows with the window population.
	WindowExact WindowKind = iota
	// WindowBucketed uses the constant-memory time-bucketed ring: O(1)
	// add/evict, fixed footprint per instance regardless of load, quantiles
	// within the latency-bin growth error. The live and distributed
	// engines use it so unbounded runs hold constant memory.
	WindowBucketed
)

// AggregatorOptions tunes the statistics pipeline's sharding and windowing.
// The zero value reproduces the deterministic exact-window behavior.
type AggregatorOptions struct {
	// Window selects the moving-window implementation.
	Window WindowKind
	// Stripes is the lock-stripe count of the end-to-end latency window
	// (0 applies the stats.Striped default). Striping changes only the
	// synchronization structure: merged statistics equal a single window
	// fed the same samples, so the DES engine's outputs are unaffected.
	Stripes int
	// Buckets is the per-window bucket count for WindowBucketed (0 applies
	// stats.DefaultBuckets).
	Buckets int
}

// Aggregator is the statistics half of the Command Center. Completed queries
// arrive carrying the latency records every instance appended on the way
// (the service/query joint design, §4.1); the aggregator folds them into
// per-instance moving windows of queuing and serving time, plus an
// end-to-end latency window for the QoS policies. All statistics are
// computed from instance-local timestamps, so no clock synchronization
// between machines is assumed.
//
// Aggregator is safe for concurrent use and sharded for it: every instance
// owns its own windows behind its own lock, the end-to-end window is lock-
// striped by query ID, and the lifetime fallback counters are atomics —
// so completions for different instances never contend, and controller
// reads (InstStats, WindowLatency) merge on read instead of freezing the
// ingest path behind one global mutex.
type Aggregator struct {
	window time.Duration
	now    func() time.Duration
	opts   AggregatorOptions

	ingested atomic.Uint64

	// perInst maps instance name → *instShard. A sync.Map because the key
	// set is small and stable after warm-up: lookups on the ingest hot path
	// are lock-free loads, with no read-lock cache line bouncing between
	// completing instances.
	perInst sync.Map

	e2e *stats.Striped
}

// instShard holds one instance's windowed and lifetime statistics behind
// the instance's own lock. The lifetime means serve as fallback when a
// window goes empty — e.g. a fully saturated bottleneck that has not
// completed a query in the current window still needs a serving-time
// estimate for Equations 2 and 3. They are atomics so Ingest updates them
// without holding the window lock and readers never block on them.
type instShard struct {
	mu      sync.Mutex
	last    time.Duration // monotone floor: completion clocks race the lock
	queuing stats.MovingWindow
	serving stats.MovingWindow

	lifeCount   atomic.Uint64
	lifeQueuing atomic.Int64 // nanoseconds
	lifeServing atomic.Int64 // nanoseconds
}

// NewAggregator creates an aggregator with the given moving-window span,
// reading time from now (the simulation clock or wall clock). It uses exact
// windows — the deterministic configuration the experiment harness depends
// on; use NewAggregatorOptions for the constant-memory bucketed windows.
func NewAggregator(window time.Duration, now func() time.Duration) *Aggregator {
	return NewAggregatorOptions(window, now, AggregatorOptions{})
}

// NewAggregatorOptions creates an aggregator with explicit sharding and
// windowing options.
func NewAggregatorOptions(window time.Duration, now func() time.Duration, opts AggregatorOptions) *Aggregator {
	if window <= 0 {
		panic("core: aggregator window must be positive")
	}
	if now == nil {
		panic("core: aggregator needs a clock")
	}
	a := &Aggregator{
		window: window,
		now:    now,
		opts:   opts,
	}
	a.e2e = stats.NewStriped(opts.Stripes, a.newWindow)
	return a
}

// newWindow builds one moving window of the configured kind.
func (a *Aggregator) newWindow() stats.MovingWindow {
	if a.opts.Window == WindowBucketed {
		return stats.NewBucketWindow(a.window, a.opts.Buckets)
	}
	return stats.NewWindow(a.window)
}

// shard returns the named instance's shard, creating it on first sight.
func (a *Aggregator) shard(name string) *instShard {
	if v, ok := a.perInst.Load(name); ok {
		return v.(*instShard)
	}
	v, _ := a.perInst.LoadOrStore(name, &instShard{
		queuing: a.newWindow(),
		serving: a.newWindow(),
	})
	return v.(*instShard)
}

// Ingest folds a completed query's records into the statistics. It is the
// OnComplete callback of the service system, called concurrently from the
// completing instances' goroutines in the live and distributed engines;
// only records for the same instance contend with each other. Timestamps
// are clamped per shard: goroutines read the clock before reaching a shard
// lock, so slight reordering must not poison the windows.
func (a *Aggregator) Ingest(q *query.Query) {
	now := a.now()
	a.ingested.Add(1)
	for i := range q.Records {
		r := &q.Records[i]
		queuing, serving := r.Queuing(), r.Serving()
		is := a.shard(r.Instance)
		is.mu.Lock()
		at := now
		if at < is.last {
			at = is.last
		} else {
			is.last = at
		}
		is.queuing.Add(at, queuing)
		is.serving.Add(at, serving)
		is.mu.Unlock()
		is.lifeCount.Add(1)
		is.lifeQueuing.Add(int64(queuing))
		is.lifeServing.Add(int64(serving))
	}
	a.e2e.Add(uint64(q.ID), now, q.Latency())
}

// Ingested returns the number of completed queries folded in.
func (a *Aggregator) Ingested() uint64 { return a.ingested.Load() }

// InstStats returns the moving-window mean queuing and serving time of the
// named instance. When the window is empty the lifetime means are used; an
// instance never seen reports zeros with ok=false.
func (a *Aggregator) InstStats(name string) (queuing, serving time.Duration, ok bool) {
	v, found := a.perInst.Load(name)
	if !found {
		return 0, 0, false
	}
	is := v.(*instShard)
	now := a.now()
	is.mu.Lock()
	if now < is.last {
		now = is.last
	} else {
		is.last = now
	}
	is.queuing.Advance(now)
	is.serving.Advance(now)
	if q, has := is.queuing.Mean(); has {
		s, _ := is.serving.Mean()
		is.mu.Unlock()
		return q, s, true
	}
	is.mu.Unlock()
	n := is.lifeCount.Load()
	if n == 0 {
		return 0, 0, false
	}
	d := time.Duration(n)
	return time.Duration(is.lifeQueuing.Load()) / d, time.Duration(is.lifeServing.Load()) / d, true
}

// WindowLatency returns the moving-window mean end-to-end latency, used by
// the QoS power-conservation policies to judge slack against the target.
// The mean merges the lock stripes on read: total sum over total count,
// exactly what the former single-window aggregator reported.
func (a *Aggregator) WindowLatency() (time.Duration, bool) {
	return a.e2e.Mean(a.now())
}

// WindowTail returns the moving-window p-quantile end-to-end latency,
// merged across the lock stripes (exact windows rank the union of samples;
// bucketed windows merge their latency bins).
func (a *Aggregator) WindowTail(p float64) (time.Duration, bool) {
	return a.e2e.Percentile(a.now(), p)
}

// Forget removes a withdrawn instance's statistics so stale history cannot
// skew future rankings if the name is reused.
func (a *Aggregator) Forget(name string) {
	a.perInst.Delete(name)
}
