package core

import "time"

// StatsReader is the statistics surface a decision reads: everything a
// Planner may consult beyond the System topology itself. *Aggregator is the
// live implementation; *SnapshotView serves a recorded capture back during
// replay. Planners must read statistics only through this interface — that
// is the purity contract that makes one recorded Snapshot replayable against
// any policy (DESIGN.md §5l).
type StatsReader interface {
	// InstStats returns the moving-window mean queuing and serving time of
	// the named instance; ok is false when the instance was never observed.
	InstStats(name string) (queuing, serving time.Duration, ok bool)
	// WindowLatency returns the windowed mean end-to-end latency.
	WindowLatency() (time.Duration, bool)
	// WindowTail returns the windowed end-to-end latency percentile
	// (p in (0,1], e.g. 0.99).
	WindowTail(p float64) (time.Duration, bool)
}
