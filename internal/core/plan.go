package core

import (
	"fmt"
	"time"

	"powerchief/internal/cmp"
)

// PlanView is a System overlay for the decision path: every read reflects
// the underlying deployment plus the mutations planned so far, and every
// mutation is recorded into an ActionPlan instead of being applied. The
// budget arithmetic replicates cmp.Chip exactly — drawn watts maintained
// incrementally, acceptance tested as drawn+delta > budget+1e-9 — so a
// decision computed against a PlanView is bit-identical to one computed
// against the live chip, which is what keeps the DES golden figures stable
// across the plan/apply split.
//
// Wrappers are cached: the same underlying instance always yields the same
// planInstance, so the interface-identity comparisons the decision kernel
// relies on (donor exclusion, bottleneck checks) keep working.
type PlanView struct {
	base   System
	model  cmp.PowerModel
	budget cmp.Watts
	drawn  cmp.Watts
	free   int

	plan   *ActionPlan
	reason ActionReason
	stages []StageControl
	insts  map[Instance]*planInstance
}

// NewPlanView snapshots the system's power accounting and stage list and
// starts an empty plan.
func NewPlanView(sys System) *PlanView {
	pv := &PlanView{
		base:   sys,
		model:  sys.PowerModel(),
		budget: sys.Budget(),
		drawn:  sys.Draw(),
		free:   sys.FreeCores(),
		plan:   &ActionPlan{},
		insts:  make(map[Instance]*planInstance),
	}
	for _, st := range sys.Stages() {
		pv.stages = append(pv.stages, &planStage{pv: pv, under: st})
	}
	return pv
}

// Take returns the recorded plan. The view stays usable; further mutations
// keep appending to the same plan.
func (pv *PlanView) Take() *ActionPlan { return pv.plan }

// SetOutcome attaches the decision summary the Executor should audit after
// a successful apply.
func (pv *PlanView) SetOutcome(out BoostOutcome) { pv.plan.Outcome = &out }

// setReason switches the intent tag recorded on subsequent actions,
// returning the previous tag so callers can restore it.
func (pv *PlanView) setReason(r ActionReason) ActionReason {
	old := pv.reason
	pv.reason = r
	return old
}

// beginRecycle/endRecycle bracket one power recycling pass so the Executor
// can group the donor steps into a single audit event.
func (pv *PlanView) beginRecycle() int { return len(pv.plan.Actions) }

func (pv *PlanView) endRecycle(start int, freed cmp.Watts) {
	if freed <= 0 || start >= len(pv.plan.Actions) {
		return
	}
	pv.plan.recycles = append(pv.plan.recycles, recycleSpan{start: start, end: len(pv.plan.Actions), freed: freed})
}

// Now implements System.
func (pv *PlanView) Now() time.Duration { return pv.base.Now() }

// PowerModel implements System.
func (pv *PlanView) PowerModel() cmp.PowerModel { return pv.model }

// Budget implements System.
func (pv *PlanView) Budget() cmp.Watts { return pv.budget }

// Draw implements System: the snapshotted draw plus planned deltas.
func (pv *PlanView) Draw() cmp.Watts { return pv.drawn }

// Headroom implements System.
func (pv *PlanView) Headroom() cmp.Watts { return pv.budget - pv.drawn }

// FreeCores implements System.
func (pv *PlanView) FreeCores() int { return pv.free }

// Stages implements System.
func (pv *PlanView) Stages() []StageControl { return pv.stages }

// Quarantined implements System.
func (pv *PlanView) Quarantined() []StageControl { return pv.base.Quarantined() }

// adopt returns the cached wrapper for an underlying instance, creating it
// on first sight. Plan-created instances pass through unchanged.
func (pv *PlanView) adopt(in Instance, st *planStage) *planInstance {
	if pi, ok := in.(*planInstance); ok {
		return pi
	}
	if pi, ok := pv.insts[in]; ok {
		return pi
	}
	pi := &planInstance{pv: pv, under: in, stage: st, level: in.Level()}
	pv.insts[in] = pi
	return pi
}

// planStage wraps one real stage. The instance list is snapshotted on first
// access and then tracks planned clones and withdraws.
type planStage struct {
	pv    *PlanView
	under StageControl
	ins   []*planInstance // nil until first access
}

func (ps *planStage) ensure() {
	if ps.ins != nil {
		return
	}
	under := ps.under.Instances()
	ps.ins = make([]*planInstance, 0, len(under))
	for _, in := range under {
		ps.ins = append(ps.ins, ps.pv.adopt(in, ps))
	}
}

// Name implements StageControl.
func (ps *planStage) Name() string { return ps.under.Name() }

// CanScale implements StageControl.
func (ps *planStage) CanScale() bool { return ps.under.CanScale() }

// Profile implements StageControl.
func (ps *planStage) Profile() cmp.SpeedupProfile { return ps.under.Profile() }

// Instances implements StageControl: the snapshot minus planned withdraws
// plus planned clones.
func (ps *planStage) Instances() []Instance {
	ps.ensure()
	out := make([]Instance, 0, len(ps.ins))
	for _, pi := range ps.ins {
		if !pi.withdrawn {
			out = append(out, pi)
		}
	}
	return out
}

// lookup resolves an instance reference against the stage's planned list.
func (ps *planStage) lookup(in Instance) *planInstance {
	ps.ensure()
	if pi, ok := in.(*planInstance); ok {
		return pi
	}
	if pi, ok := ps.pv.insts[in]; ok {
		return pi
	}
	return nil
}

// Clone implements StageControl: records a CloneAction and returns a
// placeholder instance charged against the planned budget, replicating the
// chip's free-core and budget acceptance tests.
func (ps *planStage) Clone(bn Instance) (Instance, error) {
	pv := ps.pv
	src := ps.lookup(bn)
	if src == nil || src.withdrawn {
		return nil, fmt.Errorf("core: plan: clone source %s not live in stage %s", bn.Name(), ps.Name())
	}
	if !ps.under.CanScale() {
		return nil, fmt.Errorf("core: plan: stage %s cannot scale", ps.Name())
	}
	if pv.free <= 0 {
		return nil, cmp.ErrNoFreeCore
	}
	p := pv.model.Power(src.level)
	if pv.drawn+p > pv.budget+1e-9 {
		return nil, fmt.Errorf("%w: planned clone needs %.2fW, headroom %.2fW", cmp.ErrBudgetExceeded, float64(p), float64(pv.Headroom()))
	}
	clone := &planInstance{
		pv:       pv,
		stage:    ps,
		name:     src.Name() + "+clone",
		level:    src.level,
		queueLen: src.QueueLen() / 2,
	}
	pv.plan.Actions = append(pv.plan.Actions, &CloneAction{
		Stage:  ps.under,
		Source: src.handle(),
		Level:  src.level,
		Reason: pv.reason,
		ref:    clone,
	})
	pv.drawn += p
	pv.free--
	ps.ensure()
	ps.ins = append(ps.ins, clone)
	return clone, nil
}

// Withdraw implements StageControl: records a WithdrawAction and refunds the
// victim's power to the planned budget (the chip refunds on release; the
// DES defers the refund while the victim drains, but no decision path reads
// headroom between an in-plan withdraw and the end of the pass).
func (ps *planStage) Withdraw(victim, target Instance) error {
	pv := ps.pv
	v := ps.lookup(victim)
	if v == nil || v.withdrawn {
		return fmt.Errorf("core: plan: withdraw of unknown instance %s", victim.Name())
	}
	ps.ensure()
	active := 0
	for _, pi := range ps.ins {
		if !pi.withdrawn {
			active++
		}
	}
	if active <= 1 {
		return fmt.Errorf("core: plan: cannot withdraw the last instance of stage %s", ps.Name())
	}
	var tgt Instance
	if target != nil {
		if tp := ps.lookup(target); tp != nil {
			tgt = tp.handle()
		} else {
			tgt = target
		}
	}
	pv.plan.Actions = append(pv.plan.Actions, &WithdrawAction{Stage: ps.under, Victim: v.handle(), Target: tgt})
	v.withdrawn = true
	pv.drawn -= pv.model.Power(v.level)
	if pv.drawn < 0 {
		pv.drawn = 0
	}
	pv.free++
	return nil
}

// planInstance overlays one instance. under is nil for planned clones; the
// Executor binds those to the realized instance at apply time.
type planInstance struct {
	pv        *PlanView
	under     Instance
	stage     *planStage
	name      string // placeholder for planned clones
	level     cmp.Level
	queueLen  int // snapshot for planned clones
	withdrawn bool
}

// handle is what actions reference: the real instance when one exists, the
// placeholder otherwise.
func (pi *planInstance) handle() Instance {
	if pi.under != nil {
		return pi.under
	}
	return pi
}

// Name implements Instance.
func (pi *planInstance) Name() string {
	if pi.under != nil {
		return pi.under.Name()
	}
	return pi.name
}

// StageName implements Instance.
func (pi *planInstance) StageName() string { return pi.stage.Name() }

// QueueLen implements Instance.
func (pi *planInstance) QueueLen() int {
	if pi.under != nil {
		return pi.under.QueueLen()
	}
	return pi.queueLen
}

// Level implements Instance: the planned level.
func (pi *planInstance) Level() cmp.Level { return pi.level }

// Utilization implements Instance.
func (pi *planInstance) Utilization() float64 {
	if pi.under != nil {
		return pi.under.Utilization()
	}
	return 0
}

// ResetUtilizationEpoch implements Instance: recorded as an action.
func (pi *planInstance) ResetUtilizationEpoch() {
	pi.pv.plan.Actions = append(pi.pv.plan.Actions, &ResetEpochAction{Instance: pi.handle()})
}

// SetLevel implements Instance: replicates the stage-layer no-op shortcut
// and the chip's validity and budget acceptance tests, then records the
// transition.
func (pi *planInstance) SetLevel(l cmp.Level) error {
	pv := pi.pv
	if pi.withdrawn {
		return fmt.Errorf("core: plan: DVFS on withdrawn instance %s", pi.Name())
	}
	if l == pi.level {
		return nil
	}
	if !l.Valid() {
		return fmt.Errorf("core: plan: invalid frequency level %d", int(l))
	}
	delta := pv.model.Power(l) - pv.model.Power(pi.level)
	if pv.drawn+delta > pv.budget+1e-9 {
		return fmt.Errorf("%w: planned DVFS to %d needs %.2fW, headroom %.2fW", cmp.ErrBudgetExceeded, int(l), float64(delta), float64(pv.Headroom()))
	}
	pv.plan.Actions = append(pv.plan.Actions, &SetLevelAction{Instance: pi.handle(), From: pi.level, To: l, Reason: pv.reason})
	pv.drawn += delta
	pi.level = l
	return nil
}

// Interface conformance.
var (
	_ System       = (*PlanView)(nil)
	_ StageControl = (*planStage)(nil)
	_ Instance     = (*planInstance)(nil)
)
