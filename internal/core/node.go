package core

import "powerchief/internal/cmp"

// NodeControl is the fleet layer's actuation surface: one node of the
// cluster whose local power budget the coordinator can read and re-grant.
// Implementations are the RPC node client (real fleet) and the DES sim node.
// It mirrors Instance/StageControl one level up: the plan/apply machinery
// treats a SetBudgetAction on a NodeControl exactly like a SetLevelAction on
// an Instance — validated against the enclosing budget, applied in order,
// rolled back on mid-plan failure.
type NodeControl interface {
	// Name identifies the node (stable across reconnects).
	Name() string
	// Budget returns the node's currently granted power budget.
	Budget() cmp.Watts
	// SetBudget re-grants the node's budget. Implementations deliver the
	// grant (an RPC with the coordinator's fencing epoch in the real fleet)
	// and return an error when the node rejects it or is unreachable —
	// triggering the executor's rollback of the plan's applied prefix.
	SetBudget(w cmp.Watts) error
}
