package core

import (
	"fmt"
	"time"

	"powerchief/internal/telemetry"
)

// Config carries the runtime parameters of the control loop (Table 2 /
// Table 3 of the paper).
type Config struct {
	// Metric selects the bottleneck-identification latency metric.
	Metric Metric
	// BalanceThreshold suppresses reallocation when the metric spread
	// between the slowest and fastest instance falls below it, avoiding
	// oscillation (§8.1; 1 s in Table 2).
	BalanceThreshold time.Duration
	// WithdrawInterval is how often underutilized instances are considered
	// for withdraw (150 s in Table 2). Zero disables withdraw.
	WithdrawInterval time.Duration
	// WithdrawThreshold is the utilization below which an instance counts as
	// underutilized (0.2 in §6.2).
	WithdrawThreshold float64
	// DisableSplitClone restores the literal Algorithm 1 (no split-clone
	// refinement); see DESIGN.md §5b. For ablation studies.
	DisableSplitClone bool
}

// DefaultConfig returns the Table 2 configuration.
func DefaultConfig() Config {
	return Config{
		Metric:            MetricExpectedDelay,
		BalanceThreshold:  time.Second,
		WithdrawInterval:  150 * time.Second,
		WithdrawThreshold: 0.2,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.BalanceThreshold < 0 {
		return fmt.Errorf("core: negative balance threshold")
	}
	if c.WithdrawInterval < 0 {
		return fmt.Errorf("core: negative withdraw interval")
	}
	if c.WithdrawThreshold < 0 || c.WithdrawThreshold > 1 {
		return fmt.Errorf("core: withdraw threshold outside [0,1]")
	}
	return nil
}

// Policy is one latency-mitigation strategy invoked at every adjust
// interval. Implementations mutate the system through the Command Center
// interfaces and report what they did.
type Policy interface {
	// Name identifies the policy in experiment output.
	Name() string
	// Adjust runs one control interval.
	Adjust(sys System, agg *Aggregator) BoostOutcome
}

// Static is the stage-agnostic baseline: the power budget is divided equally
// across stages at setup and never adjusted (§8.1).
type Static struct{}

// Name implements Policy.
func (Static) Name() string { return "baseline" }

// Adjust implements Policy.
func (Static) Adjust(System, *Aggregator) BoostOutcome { return BoostOutcome{Kind: BoostNone} }

// FreqBoost is the pure frequency-boosting policy: every interval it raises
// the bottleneck's frequency as far as recycled power allows.
type FreqBoost struct {
	Cfg    Config
	engine Engine
	audit  *telemetry.AuditLog
}

// NewFreqBoost builds the policy with the given configuration.
func NewFreqBoost(cfg Config) *FreqBoost { return &FreqBoost{Cfg: cfg} }

// Name implements Policy.
func (*FreqBoost) Name() string { return "freq-boost" }

// SetAudit implements AuditSetter.
func (f *FreqBoost) SetAudit(a *telemetry.AuditLog) {
	f.audit = a
	f.engine.Audit = a
}

// Adjust implements Policy.
func (f *FreqBoost) Adjust(sys System, agg *Aggregator) BoostOutcome {
	ranked := Identifier{Metric: f.Cfg.Metric}.Rank(sys, agg)
	auditIdentify(f.audit, sys.Now(), ranked)
	if len(ranked) == 0 || Spread(ranked) < f.Cfg.BalanceThreshold {
		return BoostOutcome{Kind: BoostNone}
	}
	out := f.engine.FreqBoostToMax(sys, ranked)
	auditOutcome(f.audit, sys, out)
	return out
}

// InstBoost is the pure instance-boosting policy: every interval it tries to
// clone the bottleneck, recycling power by slowing other instances down.
type InstBoost struct {
	Cfg    Config
	engine Engine
	audit  *telemetry.AuditLog
}

// NewInstBoost builds the policy with the given configuration.
func NewInstBoost(cfg Config) *InstBoost { return &InstBoost{Cfg: cfg} }

// Name implements Policy.
func (*InstBoost) Name() string { return "inst-boost" }

// SetAudit implements AuditSetter.
func (i *InstBoost) SetAudit(a *telemetry.AuditLog) {
	i.audit = a
	i.engine.Audit = a
}

// Adjust implements Policy.
func (i *InstBoost) Adjust(sys System, agg *Aggregator) BoostOutcome {
	ranked := Identifier{Metric: i.Cfg.Metric}.Rank(sys, agg)
	auditIdentify(i.audit, sys.Now(), ranked)
	if len(ranked) == 0 || Spread(ranked) < i.Cfg.BalanceThreshold {
		return BoostOutcome{Kind: BoostNone}
	}
	out := i.engine.InstBoostAlways(sys, ranked)
	auditOutcome(i.audit, sys, out)
	return out
}

// PowerChief is the full adaptive policy: accurate bottleneck
// identification, the adaptive boosting decision engine, dynamic power
// recycling and instance withdraw, all under the power constraint.
type PowerChief struct {
	Cfg          Config
	engine       Engine
	audit        *telemetry.AuditLog
	lastWithdraw time.Duration
	withdrawInit bool

	// Withdrawn counts instances withdrawn over the run.
	Withdrawn int
}

// NewPowerChief builds the policy with the given configuration.
func NewPowerChief(cfg Config) *PowerChief {
	return &PowerChief{Cfg: cfg, engine: Engine{DisableSplitClone: cfg.DisableSplitClone}}
}

// Name implements Policy.
func (*PowerChief) Name() string { return "powerchief" }

// SetAudit implements AuditSetter.
func (p *PowerChief) SetAudit(a *telemetry.AuditLog) {
	p.audit = a
	p.engine.Audit = a
}

// Adjust implements Policy.
func (p *PowerChief) Adjust(sys System, agg *Aggregator) BoostOutcome {
	now := sys.Now()
	id := Identifier{Metric: p.Cfg.Metric}
	ranked := id.Rank(sys, agg)
	if len(ranked) == 0 {
		return BoostOutcome{Kind: BoostNone}
	}

	if !p.withdrawInit {
		// Anchor the first withdraw epoch at the first adjust.
		p.withdrawInit = true
		p.lastWithdraw = now
	} else if p.Cfg.WithdrawInterval > 0 && now-p.lastWithdraw >= p.Cfg.WithdrawInterval {
		plans := PlanWithdraws(sys, ranked, p.Cfg.WithdrawThreshold)
		if n, err := ExecuteWithdraws(plans, agg); err == nil {
			p.Withdrawn += n
			for _, pl := range plans {
				target := ""
				if pl.Target != nil {
					target = pl.Target.Name()
				}
				auditWithdraw(p.audit, now, pl.Stage.Name(), pl.Victim.Name(), target)
			}
		}
		for _, in := range Instances(sys) {
			in.ResetUtilizationEpoch()
		}
		p.lastWithdraw = now
		if len(plans) > 0 {
			ranked = id.Rank(sys, agg)
		}
	}

	auditIdentify(p.audit, now, ranked)
	if Spread(ranked) < p.Cfg.BalanceThreshold {
		return BoostOutcome{Kind: BoostNone}
	}
	out := p.engine.SelectBoosting(sys, ranked)
	auditOutcome(p.audit, sys, out)
	return out
}
