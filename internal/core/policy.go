package core

import (
	"fmt"
	"time"

	"powerchief/internal/telemetry"
)

// Config carries the runtime parameters of the control loop (Table 2 /
// Table 3 of the paper).
type Config struct {
	// Metric selects the bottleneck-identification latency metric.
	Metric Metric
	// BalanceThreshold suppresses reallocation when the metric spread
	// between the slowest and fastest instance falls below it, avoiding
	// oscillation (§8.1; 1 s in Table 2).
	BalanceThreshold time.Duration
	// WithdrawInterval is how often underutilized instances are considered
	// for withdraw (150 s in Table 2). Zero disables withdraw.
	WithdrawInterval time.Duration
	// WithdrawThreshold is the utilization below which an instance counts as
	// underutilized (0.2 in §6.2).
	WithdrawThreshold float64
	// DisableSplitClone restores the literal Algorithm 1 (no split-clone
	// refinement); see DESIGN.md §5b. For ablation studies.
	DisableSplitClone bool
}

// DefaultConfig returns the Table 2 configuration.
func DefaultConfig() Config {
	return Config{
		Metric:            MetricExpectedDelay,
		BalanceThreshold:  time.Second,
		WithdrawInterval:  150 * time.Second,
		WithdrawThreshold: 0.2,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.BalanceThreshold < 0 {
		return fmt.Errorf("core: negative balance threshold")
	}
	if c.WithdrawInterval < 0 {
		return fmt.Errorf("core: negative withdraw interval")
	}
	if c.WithdrawThreshold < 0 || c.WithdrawThreshold > 1 {
		return fmt.Errorf("core: withdraw threshold outside [0,1]")
	}
	return nil
}

// Policy is one latency-mitigation strategy invoked at every adjust
// interval. Implementations decide against a PlanView and actuate through
// the Executor (plan/apply, DESIGN.md §5g); Adjust is the thin wrapper that
// runs both and reports what was done.
type Policy interface {
	// Name identifies the policy in experiment output.
	Name() string
	// Adjust runs one control interval.
	Adjust(sys System, agg *Aggregator) BoostOutcome
}

// Planner is the pure decision half of a policy: Plan computes one
// interval's decision against a PlanView of the system and returns the
// mutation program plus the outcome the policy would report, without
// touching the deployment. Callers can inspect or dry-run the plan, or hand
// it to an Executor.
//
// PowerChief's periodic withdraw epoch fires only through Adjust — a Plan
// call at an epoch boundary captures the boost decision alone.
type Planner interface {
	Policy
	Plan(sys System, stats StatsReader) (*ActionPlan, BoostOutcome)
}

// applyPlan actuates a decision and folds the apply result back into the
// outcome: a failed (rolled-back) plan reports BoostNone, and an instance
// boost picks up the realized clone's name.
func applyPlan(x Executor, sys System, agg *Aggregator, plan *ActionPlan, out BoostOutcome) BoostOutcome {
	res := x.Apply(sys, agg, plan)
	if res.Err != nil {
		return BoostOutcome{Kind: BoostNone, Target: out.Target}
	}
	if out.Kind == BoostInstance && len(res.Clones) > 0 {
		out.NewInstance = res.Clones[len(res.Clones)-1]
	}
	return out
}

// Static is the stage-agnostic baseline: the power budget is divided equally
// across stages at setup and never adjusted (§8.1).
type Static struct{}

// Name implements Policy.
func (Static) Name() string { return "baseline" }

// Plan implements Planner.
func (Static) Plan(System, StatsReader) (*ActionPlan, BoostOutcome) {
	return &ActionPlan{}, BoostOutcome{Kind: BoostNone}
}

// Adjust implements Policy.
func (Static) Adjust(System, *Aggregator) BoostOutcome { return BoostOutcome{Kind: BoostNone} }

// FreqBoost is the pure frequency-boosting policy: every interval it raises
// the bottleneck's frequency as far as recycled power allows.
type FreqBoost struct {
	Cfg    Config
	engine Engine
	audit  *telemetry.AuditLog
	tapHolder
}

// NewFreqBoost builds the policy with the given configuration.
func NewFreqBoost(cfg Config) *FreqBoost { return &FreqBoost{Cfg: cfg} }

// Name implements Policy.
func (*FreqBoost) Name() string { return "freq-boost" }

// SetAudit implements AuditSetter.
func (f *FreqBoost) SetAudit(a *telemetry.AuditLog) {
	f.audit = a
	f.engine.Audit = a
}

// Plan implements Planner.
func (f *FreqBoost) Plan(sys System, stats StatsReader) (*ActionPlan, BoostOutcome) {
	pv := NewPlanView(sys)
	ranked := Identifier{Metric: f.Cfg.Metric}.Rank(pv, stats)
	auditIdentify(f.audit, pv.Now(), ranked)
	if len(ranked) == 0 || Spread(ranked) < f.Cfg.BalanceThreshold {
		return pv.Take(), BoostOutcome{Kind: BoostNone}
	}
	out := f.engine.FreqBoostToMax(pv, ranked)
	pv.SetOutcome(out)
	return pv.Take(), out
}

// Adjust implements Policy.
func (f *FreqBoost) Adjust(sys System, agg *Aggregator) BoostOutcome {
	snap := f.capture(sys, agg)
	plan, out := f.Plan(sys, agg)
	out = applyPlan(Executor{Audit: f.audit}, sys, agg, plan, out)
	f.record(snap, plan, out)
	return out
}

// InstBoost is the pure instance-boosting policy: every interval it tries to
// clone the bottleneck, recycling power by slowing other instances down.
type InstBoost struct {
	Cfg    Config
	engine Engine
	audit  *telemetry.AuditLog
	tapHolder
}

// NewInstBoost builds the policy with the given configuration.
func NewInstBoost(cfg Config) *InstBoost { return &InstBoost{Cfg: cfg} }

// Name implements Policy.
func (*InstBoost) Name() string { return "inst-boost" }

// SetAudit implements AuditSetter.
func (i *InstBoost) SetAudit(a *telemetry.AuditLog) {
	i.audit = a
	i.engine.Audit = a
}

// Plan implements Planner.
func (i *InstBoost) Plan(sys System, stats StatsReader) (*ActionPlan, BoostOutcome) {
	pv := NewPlanView(sys)
	ranked := Identifier{Metric: i.Cfg.Metric}.Rank(pv, stats)
	auditIdentify(i.audit, pv.Now(), ranked)
	if len(ranked) == 0 || Spread(ranked) < i.Cfg.BalanceThreshold {
		return pv.Take(), BoostOutcome{Kind: BoostNone}
	}
	out := i.engine.InstBoostAlways(pv, ranked)
	pv.SetOutcome(out)
	return pv.Take(), out
}

// Adjust implements Policy.
func (i *InstBoost) Adjust(sys System, agg *Aggregator) BoostOutcome {
	snap := i.capture(sys, agg)
	plan, out := i.Plan(sys, agg)
	out = applyPlan(Executor{Audit: i.audit}, sys, agg, plan, out)
	i.record(snap, plan, out)
	return out
}

// PowerChief is the full adaptive policy: accurate bottleneck
// identification, the adaptive boosting decision engine, dynamic power
// recycling and instance withdraw, all under the power constraint.
type PowerChief struct {
	Cfg          Config
	engine       Engine
	audit        *telemetry.AuditLog
	lastWithdraw time.Duration
	withdrawInit bool
	tapHolder

	// Withdrawn counts instances withdrawn over the run.
	Withdrawn int
}

// NewPowerChief builds the policy with the given configuration.
func NewPowerChief(cfg Config) *PowerChief {
	return &PowerChief{Cfg: cfg, engine: Engine{DisableSplitClone: cfg.DisableSplitClone}}
}

// Name implements Policy.
func (*PowerChief) Name() string { return "powerchief" }

// SetAudit implements AuditSetter.
func (p *PowerChief) SetAudit(a *telemetry.AuditLog) {
	p.audit = a
	p.engine.Audit = a
}

// Plan implements Planner: the adaptive boosting decision (identify, then
// Algorithm 1 with recycling) captured as a plan. The periodic withdraw
// epoch is actuation-coupled — withdraws redistribute queues, and the boost
// decision must see the post-withdraw system — so it runs as its own plan
// inside Adjust, not here.
func (p *PowerChief) Plan(sys System, stats StatsReader) (*ActionPlan, BoostOutcome) {
	pv := NewPlanView(sys)
	ranked := Identifier{Metric: p.Cfg.Metric}.Rank(pv, stats)
	auditIdentify(p.audit, pv.Now(), ranked)
	if len(ranked) == 0 || Spread(ranked) < p.Cfg.BalanceThreshold {
		return pv.Take(), BoostOutcome{Kind: BoostNone}
	}
	out := p.engine.SelectBoosting(pv, ranked)
	pv.SetOutcome(out)
	return pv.Take(), out
}

// Adjust implements Policy.
func (p *PowerChief) Adjust(sys System, agg *Aggregator) BoostOutcome {
	now := sys.Now()
	ranked := Identifier{Metric: p.Cfg.Metric}.Rank(sys, agg)
	if len(ranked) == 0 {
		return BoostOutcome{Kind: BoostNone}
	}
	x := Executor{Audit: p.audit}

	if !p.withdrawInit {
		// Anchor the first withdraw epoch at the first adjust.
		p.withdrawInit = true
		p.lastWithdraw = now
	} else if p.Cfg.WithdrawInterval > 0 && now-p.lastWithdraw >= p.Cfg.WithdrawInterval {
		res := x.Apply(sys, agg, PlanWithdrawEpoch(sys, ranked, p.Cfg.WithdrawThreshold))
		p.Withdrawn += res.Withdrawn
		p.lastWithdraw = now
	}

	// Snapshot after the withdraw epoch: withdraws redistribute queues, and
	// the recorded decision inputs must be what Plan actually saw.
	snap := p.capture(sys, agg)
	plan, out := p.Plan(sys, agg)
	out = applyPlan(x, sys, agg, plan, out)
	p.record(snap, plan, out)
	return out
}
