package core

import (
	"time"

	"powerchief/internal/cmp"
	"powerchief/internal/telemetry"
)

// AuditSetter is implemented by the policies that can narrate their
// decisions into a telemetry audit log. Callers attach a log with
//
//	if as, ok := policy.(AuditSetter); ok {
//		as.SetAudit(log)
//	}
//
// A nil log (the default) keeps every hook a single pointer test, so the
// control loop's cost and the simulator's determinism are unchanged when
// auditing is off.
type AuditSetter interface {
	SetAudit(*telemetry.AuditLog)
}

// auditIdentify records one bottleneck identification: the slowest ranked
// instance with the Equation 1 inputs (L, q̄, s̄) and the spread the
// balance threshold is compared against.
func auditIdentify(a *telemetry.AuditLog, now time.Duration, ranked []Ranked) {
	if !a.Enabled() || len(ranked) == 0 {
		return
	}
	bn := ranked[0]
	a.Record(telemetry.Event{
		Time:     now,
		Kind:     telemetry.EventIdentify,
		Stage:    bn.Stage.Name(),
		Instance: bn.Instance.Name(),
		QueueLen: bn.QueueLen,
		Queuing:  bn.Queuing,
		Serving:  bn.Serving,
		Metric:   bn.Metric,
		Spread:   Spread(ranked),
	})
}

// auditOutcome records what the decision engine did this interval: the
// chosen technique with the Equation 2/3 estimates that drove the choice,
// the actuation, and the power accounting after it.
func auditOutcome(a *telemetry.AuditLog, sys System, out BoostOutcome) {
	if !a.Enabled() {
		return
	}
	e := telemetry.Event{
		Time:          sys.Now(),
		Instance:      out.Target,
		TInst:         out.TInst,
		TFreq:         out.TFreq,
		OldLevel:      int(out.OldLevel),
		NewLevel:      int(out.NewLevel),
		NewInstance:   out.NewInstance,
		RecycledWatts: float64(out.Recycled),
		HeadroomWatts: float64(sys.Headroom()),
	}
	switch out.Kind {
	case BoostFrequency:
		e.Kind = telemetry.EventBoostFreq
	case BoostInstance:
		e.Kind = telemetry.EventBoostInst
	default:
		e.Kind = telemetry.EventBoostNone
	}
	a.Record(e)
}

// auditWithdraw records one executed instance withdraw.
func auditWithdraw(a *telemetry.AuditLog, now time.Duration, stage, victim, target string) {
	if !a.Enabled() {
		return
	}
	a.Record(telemetry.Event{
		Time:     now,
		Kind:     telemetry.EventWithdraw,
		Stage:    stage,
		Instance: victim,
		Target:   target,
	})
}

// recycle runs the engine's recycler and, when auditing, records the pass
// with the per-donor level steps and watts freed. Donor levels are
// snapshotted around the call because the recycler reports only the total.
//
// Against a PlanView the pass only marks a recycle span on the plan — the
// Executor emits the grouped event once the donor steps actually apply.
func (e Engine) recycle(sys System, model cmp.PowerModel, donors []Instance, need cmp.Watts) cmp.Watts {
	if pv, ok := sys.(*PlanView); ok {
		start := pv.beginRecycle()
		recycled := e.Recycler.Recycle(model, donors, need)
		pv.endRecycle(start, recycled)
		return recycled
	}
	if !e.Audit.Enabled() {
		return e.Recycler.Recycle(model, donors, need)
	}
	before := make([]cmp.Level, len(donors))
	for i, d := range donors {
		before[i] = d.Level()
	}
	recycled := e.Recycler.Recycle(model, donors, need)
	if recycled <= 0 {
		return recycled
	}
	var ds []telemetry.Donor
	for i, d := range donors {
		if l := d.Level(); l != before[i] {
			ds = append(ds, telemetry.Donor{
				Instance:   d.Name(),
				FromLevel:  int(before[i]),
				ToLevel:    int(l),
				FreedWatts: float64(model.Power(before[i]) - model.Power(l)),
			})
		}
	}
	e.Audit.Record(telemetry.Event{
		Time:          sys.Now(),
		Kind:          telemetry.EventRecycle,
		RecycledWatts: float64(recycled),
		HeadroomWatts: float64(sys.Headroom()),
		Donors:        ds,
	})
	return recycled
}
