package core

import (
	"testing"
	"time"

	"powerchief/internal/cmp"
	"powerchief/internal/query"
	"powerchief/internal/sim"
	"powerchief/internal/stage"
)

// newDESFixture builds a real simulated two-stage system behind the Command
// Center interfaces.
func newDESFixture(t *testing.T, budget cmp.Watts) (*sim.Engine, *stage.System, System) {
	t.Helper()
	eng := sim.NewEngine()
	chip := cmp.NewChip(16, cmp.DefaultModel(), budget)
	sys, err := stage.NewSystem(eng, chip, []stage.Spec{
		{Name: "A", Kind: stage.Pipeline, Profile: cmp.NewRooflineProfile(0.2), Instances: 1, Level: cmp.MidLevel},
		{Name: "leaf", Kind: stage.FanOut, Profile: cmp.NewRooflineProfile(0.4), Instances: 2, Level: cmp.MidLevel},
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng, sys, NewDESView(sys)
}

func TestDESViewSystemSurface(t *testing.T) {
	_, sys, view := newDESFixture(t, 100)
	if view.Budget() != 100 {
		t.Error("budget mismatch")
	}
	if view.Draw() != sys.Chip().Draw() {
		t.Error("draw mismatch")
	}
	if view.FreeCores() != 13 {
		t.Errorf("free cores = %d, want 13", view.FreeCores())
	}
	stages := view.Stages()
	if len(stages) != 2 {
		t.Fatalf("stages = %d", len(stages))
	}
	if !stages[0].CanScale() {
		t.Error("pipeline stage must scale")
	}
	if stages[1].CanScale() {
		t.Error("fan-out stage must not scale")
	}
	if stages[0].Profile() == nil {
		t.Error("profile missing")
	}
}

func TestDESViewCloneAndWithdrawThroughInterface(t *testing.T) {
	eng, sys, view := newDESFixture(t, 100)
	st := view.Stages()[0]
	src := st.Instances()[0]
	clone, err := st.Clone(src)
	if err != nil {
		t.Fatal(err)
	}
	if clone.StageName() != "A" {
		t.Error("clone stage mismatch")
	}
	if len(st.Instances()) != 2 {
		t.Error("clone not visible through the view")
	}
	if err := st.Withdraw(clone, src); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if len(st.Instances()) != 1 {
		t.Error("withdraw not visible through the view")
	}
	_ = sys
}

func TestDESViewRejectsForeignInstances(t *testing.T) {
	_, _, view := newDESFixture(t, 100)
	st := view.Stages()[0]
	ghost := &fakeInstance{name: "ghost", stage: "A"}
	if _, err := st.Clone(ghost); err == nil {
		t.Error("clone of a non-DES instance accepted")
	}
	if err := st.Withdraw(ghost, nil); err == nil {
		t.Error("withdraw of a non-DES instance accepted")
	}
	real := st.Instances()[0]
	if err := st.Withdraw(real, ghost); err == nil {
		t.Error("withdraw with a non-DES target accepted")
	}
}

func TestDESViewNilSystemPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewDESView(nil) did not panic")
		}
	}()
	NewDESView(nil)
}

// TestPowerChiefOnRealDES drives the full policy against the real simulated
// system (not fakes): overload stage A, tick the policy, and verify it
// reshapes the deployment within the budget.
func TestPowerChiefOnRealDES(t *testing.T) {
	eng := sim.NewEngine()
	m := cmp.DefaultModel()
	budget := 3 * m.Power(cmp.MidLevel)
	chip := cmp.NewChip(16, m, budget)
	sys, err := stage.NewSystem(eng, chip, []stage.Spec{
		{Name: "ASR", Kind: stage.Pipeline, Profile: cmp.NewRooflineProfile(0.15), Instances: 1, Level: cmp.MidLevel},
		{Name: "QA", Kind: stage.Pipeline, Profile: cmp.NewRooflineProfile(0.25), Instances: 1, Level: cmp.MidLevel},
	})
	if err != nil {
		t.Fatal(err)
	}
	view := NewDESView(sys)
	agg := NewAggregator(25*time.Second, eng.Now)
	sys.OnComplete(agg.Ingest)
	pc := NewPowerChief(DefaultConfig())

	// Heavy QA demand: 600ms per query at 2.5 qps → QA overloads.
	id := query.ID(0)
	for at := time.Duration(0); at < 300*time.Second; at += 400 * time.Millisecond {
		at := at
		id++
		qid := id
		eng.ScheduleAt(at, func() {
			sys.Submit(query.New(qid, at, [][]time.Duration{
				{150 * time.Millisecond},
				{900 * time.Millisecond},
			}))
		})
	}
	acted := 0
	stop := eng.Every(25*time.Second, func() {
		if out := pc.Adjust(view, agg); out.Kind != BoostNone {
			acted++
		}
		if err := chip.CheckInvariant(); err != nil {
			t.Fatalf("budget invariant broken mid-run: %v", err)
		}
	})
	eng.RunUntil(600 * time.Second)
	stop()
	if acted == 0 {
		t.Fatal("policy never acted on the real DES")
	}
	// QA must have been reinforced: more instances or a higher level.
	qa := sys.Stage("QA").Active()
	reinforced := len(qa) > 1
	for _, in := range qa {
		if in.Level() > cmp.MidLevel {
			reinforced = true
		}
	}
	if !reinforced {
		t.Error("QA was never boosted despite sustained overload")
	}
	if err := chip.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
}
