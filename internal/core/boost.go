package core

import (
	"time"

	"powerchief/internal/cmp"
	"powerchief/internal/telemetry"
)

// BoostKind names the boosting technique applied at one control interval.
type BoostKind int

const (
	// BoostNone means no action was taken (balanced system, or nothing
	// affordable).
	BoostNone BoostKind = iota
	// BoostFrequency raised the bottleneck core's DVFS level (§5.2).
	BoostFrequency
	// BoostInstance cloned the bottleneck instance (§5.1).
	BoostInstance
)

// String implements fmt.Stringer.
func (k BoostKind) String() string {
	switch k {
	case BoostNone:
		return "none"
	case BoostFrequency:
		return "freq-boost"
	case BoostInstance:
		return "inst-boost"
	default:
		return "unknown-boost"
	}
}

// BoostOutcome reports what the decision engine did at one interval.
type BoostOutcome struct {
	Kind        BoostKind
	Target      string // bottleneck instance name
	OldLevel    cmp.Level
	NewLevel    cmp.Level // set for frequency boosts
	NewInstance string    // set for instance boosts
	Recycled    cmp.Watts // power recycled from donors this interval
	TInst       time.Duration
	TFreq       time.Duration
}

// EstimateInstBoost is Equation 2: the expected delay of the bottleneck
// after cloning it — half the queued work is offloaded so queuing shrinks by
// half, serving speed is unchanged:
//
//	T_inst = (L−1)(q̄+s̄)/2 + s̄
func EstimateInstBoost(r Ranked) time.Duration {
	if r.QueueLen < 1 {
		return r.Serving
	}
	qs := float64(r.Queuing + r.Serving)
	return time.Duration(float64(r.QueueLen-1)*qs/2) + r.Serving
}

// EstimateFreqBoost is Equation 3: the expected delay of the bottleneck
// after raising its frequency from `from` to `to` — both queuing and serving
// shrink by the profiled latency-reduction ratio α:
//
//	T_freq = α_lh · ((L−1)(q̄+s̄) + s̄)
func EstimateFreqBoost(r Ranked, p cmp.SpeedupProfile, from, to cmp.Level) time.Duration {
	alpha := cmp.Alpha(p, from, to)
	var full float64
	if r.QueueLen >= 1 {
		full = float64(r.QueueLen-1)*float64(r.Queuing+r.Serving) + float64(r.Serving)
	} else {
		full = float64(r.Serving)
	}
	return time.Duration(alpha * full)
}

// Engine is the adaptive boosting decision engine (§5.3, Algorithm 1). It
// quantitatively estimates the expected delay of the bottleneck under both
// boosting techniques at equivalent power cost and applies the better one,
// recycling power from the fastest instances when the headroom falls short.
type Engine struct {
	Recycler Recycler

	// DisableSplitClone turns off the split-clone refinement (see
	// trySplitClone), restoring the literal Algorithm 1 behaviour. Used by
	// the ablation benchmarks.
	DisableSplitClone bool

	// Audit, when set, receives a recycle event for every pass that freed
	// power, listing the donor instances and their level steps.
	Audit *telemetry.AuditLog
}

// SelectBoosting runs Algorithm 1 against the current ranking (bottleneck
// first). It mutates the system — donor DVFS steps, the chosen boost — and
// reports the outcome. A BoostNone outcome with no error means the system
// offered nothing to do (bottleneck already at the maximum with no scaling
// opportunity).
func (e Engine) SelectBoosting(sys System, ranked []Ranked) BoostOutcome {
	bn := ranked[0]
	model := sys.PowerModel()
	cur := bn.Instance.Level()
	profile := bn.Stage.Profile()

	// p: the power cost of instance boosting — a clone runs at the
	// bottleneck's frequency.
	p := model.Power(cur)
	out := BoostOutcome{Kind: BoostNone, Target: bn.Instance.Name(), OldLevel: cur, NewLevel: cur}

	// The frequency level equivalent in power to launching a new instance,
	// used for the fair comparison of Equations 2 and 3 (§5.2).
	fEquiv, _ := cmp.HighestAffordable(model, model.Power(cur)+p)
	if fEquiv < cur {
		fEquiv = cur
	}

	donors := DonorsFromRanking(ranked, bn.Instance)

	// Decide the preferred technique. Launching an instance barely helps a
	// queue of two or less (line 14 of Algorithm 1), and is impossible for
	// fan-out stages or when no physical core is free.
	wantInstance := false
	if bn.QueueLen > 2 && bn.Stage.CanScale() && sys.FreeCores() > 0 {
		out.TInst = EstimateInstBoost(bn)
		out.TFreq = EstimateFreqBoost(bn, profile, cur, fEquiv)
		wantInstance = out.TInst < out.TFreq
	}

	if wantInstance {
		if need := p - sys.Headroom(); need > 0 {
			out.Recycled += e.recycle(sys, model, donors, need)
		}
		if sys.Headroom()+1e-9 >= p {
			if clone, err := bn.Stage.Clone(bn.Instance); err == nil {
				out.Kind = BoostInstance
				out.NewInstance = clone.Name()
				return out
			}
		}
		// Not enough power for a clone at the bottleneck's frequency.
		// Before falling back to frequency boosting (lines 11-12 of
		// Algorithm 1), estimate a *split clone*: spend the bottleneck's
		// own power plus the headroom on two instances at a lower level.
		// This covers the regime Figure 11(c) shows — many QA instances at
		// low frequencies — which the same-frequency clone rule cannot
		// reach once the bottleneck has been boosted high.
		if !e.DisableSplitClone && e.trySplitClone(sys, bn, &out) {
			return out
		}
	}

	if cur == cmp.MaxLevel {
		return out // nothing further to raise
	}
	// Frequency boosting: aim for the power-equivalent level, at least one
	// step, recycling the shortfall.
	desired := fEquiv
	if desired <= cur {
		desired = cur + 1
	}
	if need := cmp.BoostCost(model, cur, desired) - sys.Headroom(); need > 0 {
		out.Recycled += e.recycle(sys, model, donors, need)
	}
	target, ok := cmp.HighestAffordable(model, model.Power(cur)+sys.Headroom())
	if !ok || target <= cur {
		return out
	}
	if target > desired {
		target = desired
	}
	if err := bn.Instance.SetLevel(target); err != nil {
		return out
	}
	out.Kind = BoostFrequency
	out.NewLevel = target
	return out
}

// trySplitClone evaluates and, when beneficial, applies the split-clone
// refinement: the bottleneck steps down to level l and a clone launches at
// the same l, with 2·P(l) ≤ P(cur) + headroom. The expected delay follows
// Equation 2 with serving rescaled by the profiled slowdown α(cur→l); the
// split is applied only when that estimate beats the frequency-boost
// fallback the algorithm would otherwise take. Returns true when applied
// (out is updated in place).
func (e Engine) trySplitClone(sys System, bn Ranked, out *BoostOutcome) bool {
	model := sys.PowerModel()
	cur := bn.Instance.Level()
	if sys.FreeCores() == 0 {
		return false
	}
	total := model.Power(cur) + sys.Headroom()
	l, ok := cmp.HighestAffordable(model, total/2)
	if !ok || l >= cur {
		return false
	}
	alpha := cmp.Alpha(bn.Stage.Profile(), cur, l) // > 1: slowdown
	sPrime := time.Duration(alpha * float64(bn.Serving))
	qs := float64(bn.Queuing + sPrime)
	tSplit := time.Duration(float64(bn.QueueLen-1)*qs/2) + sPrime

	// The fallback frequency boost uses only the headroom.
	fallback, okf := cmp.HighestAffordable(model, model.Power(cur)+sys.Headroom())
	if okf && fallback > cur {
		if tFallback := EstimateFreqBoost(bn, bn.Stage.Profile(), cur, fallback); tFallback <= tSplit {
			return false
		}
	}
	if err := bn.Instance.SetLevel(l); err != nil {
		return false
	}
	clone, err := bn.Stage.Clone(bn.Instance)
	if err != nil {
		// Restore: the power just freed still covers the original level.
		_ = bn.Instance.SetLevel(cur)
		return false
	}
	out.Kind = BoostInstance
	out.NewInstance = clone.Name()
	out.NewLevel = l
	return true
}

// FreqBoostToMax raises the bottleneck toward the maximum level, recycling
// from the donors as needed. This is the pure frequency-boosting baseline
// (§7.1): it "consistently increases the frequency of the service instance
// identified as bottleneck".
func (e Engine) FreqBoostToMax(sys System, ranked []Ranked) BoostOutcome {
	bn := ranked[0]
	model := sys.PowerModel()
	cur := bn.Instance.Level()
	out := BoostOutcome{Kind: BoostNone, Target: bn.Instance.Name(), OldLevel: cur, NewLevel: cur}
	if cur == cmp.MaxLevel {
		return out
	}
	donors := DonorsFromRanking(ranked, bn.Instance)
	if need := cmp.BoostCost(model, cur, cmp.MaxLevel) - sys.Headroom(); need > 0 {
		out.Recycled += e.recycle(sys, model, donors, need)
	}
	target, ok := cmp.HighestAffordable(model, model.Power(cur)+sys.Headroom())
	if !ok || target <= cur {
		return out
	}
	if err := bn.Instance.SetLevel(target); err != nil {
		return out
	}
	out.Kind = BoostFrequency
	out.NewLevel = target
	return out
}

// InstBoostAlways clones the bottleneck if power and cores permit, recycling
// as needed. This is the pure instance-boosting baseline (§7.1): when no
// power can be recycled any more — every instance already at the lowest
// frequency — it gets stuck, the limitation PowerChief's instance withdraw
// overcomes (§8.2).
func (e Engine) InstBoostAlways(sys System, ranked []Ranked) BoostOutcome {
	bn := ranked[0]
	model := sys.PowerModel()
	cur := bn.Instance.Level()
	out := BoostOutcome{Kind: BoostNone, Target: bn.Instance.Name(), OldLevel: cur, NewLevel: cur}
	if !bn.Stage.CanScale() || sys.FreeCores() == 0 {
		return out
	}
	p := model.Power(cur)
	donors := DonorsFromRanking(ranked, bn.Instance)
	if need := p - sys.Headroom(); need > 0 {
		out.Recycled += e.recycle(sys, model, donors, need)
	}
	if sys.Headroom()+1e-9 < p {
		// The clone would not fit even at the bottleneck's frequency. Try
		// the cheapest possible clone: lower the bottleneck's own level is
		// not allowed (it would slow the bottleneck), so give up.
		return out
	}
	clone, err := bn.Stage.Clone(bn.Instance)
	if err != nil {
		return out
	}
	out.Kind = BoostInstance
	out.NewInstance = clone.Name()
	return out
}
