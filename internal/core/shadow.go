package core

import "fmt"

// ErrNotShadow is returned when a ShadowExecutor is handed anything but a
// SnapshotView — the type-level guarantee that shadow actuation can never
// reach a live actuator.
var ErrNotShadow = fmt.Errorf("core: shadow executor refuses non-snapshot systems")

// ShadowExecutor actuates plans against a SnapshotView only: the same
// validation, ordering, rollback and clone-resolution semantics as the real
// Executor, but every mutation lands on the in-memory shadow instances of
// the snapshot. Replay uses it to project a candidate policy's plan forward
// (post-plan levels, queues, draw) without touching hardware; handing it any
// other System fails with ErrNotShadow before a single action applies.
type ShadowExecutor struct {
	x Executor
}

// Apply applies the plan to the shadow deployment. sys must be the
// *SnapshotView the plan was decided against.
func (s ShadowExecutor) Apply(sys System, plan *ActionPlan) ApplyResult {
	if _, ok := sys.(*SnapshotView); !ok {
		return ApplyResult{Err: ErrNotShadow}
	}
	return s.x.Apply(sys, nil, plan)
}
