package core

import (
	"fmt"
	"time"

	"powerchief/internal/cmp"
	"powerchief/internal/stage"
)

// desView adapts the discrete-event stage.System to the Command Center
// interfaces. *stage.Instance satisfies Instance directly; stages need a
// thin wrapper to narrow the clone/withdraw signatures.
type desView struct {
	sys *stage.System
}

// NewDESView wraps a discrete-event system for the Command Center.
func NewDESView(sys *stage.System) System {
	if sys == nil {
		panic("core: NewDESView requires a system")
	}
	return &desView{sys: sys}
}

func (v *desView) Now() time.Duration         { return v.sys.Engine().Now() }
func (v *desView) PowerModel() cmp.PowerModel { return v.sys.Chip().Model() }
func (v *desView) Budget() cmp.Watts          { return v.sys.Chip().Budget() }
func (v *desView) Draw() cmp.Watts            { return v.sys.Chip().Draw() }
func (v *desView) Headroom() cmp.Watts        { return v.sys.Chip().Headroom() }
func (v *desView) FreeCores() int             { return v.sys.Chip().Free() }

// Quarantined implements System. The DES has no fault injection at the stage
// level; nothing is ever quarantined.
func (v *desView) Quarantined() []StageControl { return nil }

func (v *desView) Stages() []StageControl {
	stages := v.sys.Stages()
	out := make([]StageControl, len(stages))
	for i, st := range stages {
		out[i] = desStage{st: st}
	}
	return out
}

// desStage adapts *stage.Stage to StageControl.
type desStage struct {
	st *stage.Stage
}

func (d desStage) Name() string                { return d.st.Name() }
func (d desStage) CanScale() bool              { return d.st.Kind() == stage.Pipeline }
func (d desStage) Profile() cmp.SpeedupProfile { return d.st.Profile() }

func (d desStage) Instances() []Instance {
	active := d.st.Active()
	out := make([]Instance, len(active))
	for i, in := range active {
		out[i] = in
	}
	return out
}

func (d desStage) Clone(bottleneck Instance) (Instance, error) {
	src, ok := bottleneck.(*stage.Instance)
	if !ok {
		return nil, fmt.Errorf("core: clone target %s is not a DES instance", bottleneck.Name())
	}
	return d.st.Clone(src)
}

func (d desStage) Withdraw(victim, target Instance) error {
	v, ok := victim.(*stage.Instance)
	if !ok {
		return fmt.Errorf("core: withdraw victim %s is not a DES instance", victim.Name())
	}
	var tgt *stage.Instance
	if target != nil {
		tgt, ok = target.(*stage.Instance)
		if !ok {
			return fmt.Errorf("core: withdraw target %s is not a DES instance", target.Name())
		}
	}
	return d.st.Withdraw(v, tgt)
}

// Interface conformance checks.
var (
	_ System   = (*desView)(nil)
	_ Instance = (*stage.Instance)(nil)
)
