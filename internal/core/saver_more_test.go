package core

import (
	"testing"
	"time"

	"powerchief/internal/cmp"
)

func TestPegasusHoldsAtMaxAfterViolation(t *testing.T) {
	sys := newFakeSystem(200, 8, cmp.MidLevel, "A")
	agg := aggWith(sys, 25*time.Second)
	p := NewPegasus(time.Second)
	p.HoldIntervals = 3

	// Violation: race to max and arm the hold.
	ingestQoS(agg, map[string]instSample{"A_1": {0, 900 * time.Millisecond}}, 1500*time.Millisecond)
	p.Adjust(sys, agg)
	if sys.inst("A_1").level != cmp.MaxLevel {
		t.Fatal("violation did not race to max")
	}
	// Now latency is comfortable — but the hold must keep max power for
	// HoldIntervals adjusts.
	ingestQoS(agg, map[string]instSample{"A_1": {0, 100 * time.Millisecond}}, 100*time.Millisecond)
	for i := 0; i < 3; i++ {
		p.Adjust(sys, agg)
		if got := sys.inst("A_1").level; got != cmp.MaxLevel {
			t.Fatalf("hold interval %d: level = %v, want max", i, got)
		}
	}
	// Hold expired: savings resume.
	p.Adjust(sys, agg)
	if got := sys.inst("A_1").level; got != cmp.MaxLevel-1 {
		t.Errorf("after hold: level = %v, want one step down", got)
	}
}

func TestSaverCooldownBlocksWithdrawsAfterRecovery(t *testing.T) {
	sys := newFakeSystem(400, 8, cmp.MaxLevel, "A")
	st := sys.stage("A")
	st.ins = append(st.ins, &fakeInstance{name: "A_2", stage: "A", level: cmp.MaxLevel, util: 0.1, sys: sys})
	sys.draw += sys.model.Power(cmp.MaxLevel)
	st.ins[0].util = 0.1
	agg := aggWith(sys, 25*time.Second)
	s := NewPowerChiefSaver(time.Second, DefaultConfig())

	// Violation arms the cooldown.
	ingestQoS(agg, map[string]instSample{
		"A_1": {0, 500 * time.Millisecond},
		"A_2": {0, 400 * time.Millisecond},
	}, 1200*time.Millisecond)
	s.Adjust(sys, agg)

	// Deep slack immediately after: withdraw must be blocked by cooldown
	// even though survivors would be safe.
	ingestQoS(agg, map[string]instSample{
		"A_1": {0, 100 * time.Millisecond},
		"A_2": {0, 100 * time.Millisecond},
	}, 100*time.Millisecond)
	s.Adjust(sys, agg)
	if s.Withdrawn != 0 {
		t.Fatal("withdraw fired during cooldown")
	}
	// After the cooldown drains, withdraw resumes.
	for i := 0; i < 6; i++ {
		s.Adjust(sys, agg)
	}
	if s.Withdrawn == 0 {
		t.Error("withdraw never resumed after cooldown")
	}
}

func TestSaverRelaunchesAfterOverWithdraw(t *testing.T) {
	sys := newFakeSystem(400, 8, cmp.MaxLevel, "A")
	st := sys.stage("A")
	agg := aggWith(sys, 25*time.Second)
	s := NewPowerChiefSaver(time.Second, DefaultConfig())
	// The single instance is at max and the stage is violating: the saver
	// must relaunch capacity (clone) because frequency has nothing left.
	sys.inst("A_1").queueLen = 5
	ingestQoS(agg, map[string]instSample{"A_1": {300 * time.Millisecond, 500 * time.Millisecond}}, 1500*time.Millisecond)
	out := s.Adjust(sys, agg)
	if out.Kind != BoostInstance {
		t.Fatalf("kind = %v, want relaunch (inst-boost)", out.Kind)
	}
	if s.Relaunched != 1 || len(st.ins) != 2 {
		t.Errorf("Relaunched=%d instances=%d", s.Relaunched, len(st.ins))
	}
}

func TestSaverDeboostGuardSkipsWouldBeBottleneck(t *testing.T) {
	sys := newFakeSystem(400, 8, cmp.MaxLevel, "near", "far")
	agg := aggWith(sys, 25*time.Second)
	// "near" is almost as slow as the bottleneck "far": deboosting it one
	// step would overtake the bottleneck, so the guard must skip it.
	sys.inst("near_1").queueLen = 2
	ingestQoS(agg, map[string]instSample{
		"near_1": {200 * time.Millisecond, 380 * time.Millisecond},
		"far_1":  {0, 800 * time.Millisecond},
	}, 300*time.Millisecond)
	s := NewPowerChiefSaver(2*time.Second, DefaultConfig())
	s.Adjust(sys, agg)
	if got := sys.inst("near_1").level; got != cmp.MaxLevel {
		t.Errorf("near-bottleneck instance deboosted to %v despite the projection guard", got)
	}
}

func TestSelectBoostingFanOutBottleneckUsesFrequencyOnly(t *testing.T) {
	sys := newFakeSystem(100, 8, cmp.MidLevel, "agg")
	// Add a non-scalable fan-out stage whose instance is the bottleneck.
	leaf := &fakeStage{name: "leaf", scalable: false, profile: cmp.NewRooflineProfile(0.4), sys: sys}
	leafInst := &fakeInstance{name: "leaf_1", stage: "leaf", level: cmp.MidLevel, queueLen: 30, sys: sys}
	sys.draw += sys.model.Power(cmp.MidLevel)
	leaf.ins = append(leaf.ins, leafInst)
	sys.stages = append(sys.stages, leaf)

	aggr := aggWith(sys, 25*time.Second)
	ingestStats(aggr, "leaf_1", 400*time.Millisecond, 400*time.Millisecond)
	ingestStats(aggr, "agg_1", 0, 20*time.Millisecond)

	out := Engine{}.SelectBoosting(sys, rankedFor(sys, aggr))
	if out.Kind != BoostFrequency {
		t.Fatalf("decision = %v, want freq-boost (fan-out cannot clone)", out.Kind)
	}
	if leafInst.level <= cmp.MidLevel {
		t.Error("fan-out bottleneck not raised")
	}
	if len(leaf.ins) != 1 {
		t.Error("a clone appeared in a fan-out stage")
	}
}
