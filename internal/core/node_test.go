package core

import (
	"errors"
	"testing"

	"powerchief/internal/cmp"
	"powerchief/internal/telemetry"
)

// fakeNode is an in-memory NodeControl: its granted budget is mirrored into
// the fake system's draw, the same ledger arithmetic the fleet coordinator
// maintains (cluster Draw = Σ granted node budgets).
type fakeNode struct {
	name   string
	budget cmp.Watts
	sys    *fakeSystem

	setCalls  int
	setErr    error // injected actuation failure (an unreachable node)
	errAfterN int   // fail once setCalls exceeds this (0 = use setErr always)
}

func (f *fakeNode) Name() string      { return f.name }
func (f *fakeNode) Budget() cmp.Watts { return f.budget }

func (f *fakeNode) SetBudget(w cmp.Watts) error {
	f.setCalls++
	if f.setErr != nil && (f.errAfterN == 0 || f.setCalls > f.errAfterN) {
		return f.setErr
	}
	f.sys.draw += w - f.budget
	f.budget = w
	return nil
}

// clusterSystem builds a stage-less fake system representing a fleet: draw is
// the sum of the returned nodes' granted budgets.
func clusterSystem(cap cmp.Watts, grants ...cmp.Watts) (*fakeSystem, []*fakeNode) {
	sys := &fakeSystem{model: cmp.DefaultModel(), budget: cap}
	nodes := make([]*fakeNode, len(grants))
	for i, g := range grants {
		nodes[i] = &fakeNode{name: string(rune('a' + i)), budget: g, sys: sys}
		sys.draw += g
	}
	return sys, nodes
}

// TestSetBudgetPlanApplies pins the happy path: a decrease-before-increase
// plan applies in order, updates every node, and audits each grant.
func TestSetBudgetPlanApplies(t *testing.T) {
	sys, nodes := clusterSystem(100, 50, 50)
	audit := telemetry.NewAuditLog(16)
	plan := &ActionPlan{Actions: []Action{
		&SetBudgetAction{Node: nodes[0], From: 50, To: 30, Reason: ReasonRebalance},
		&SetBudgetAction{Node: nodes[1], From: 50, To: 70, Reason: ReasonRebalance},
	}}
	res := Executor{Audit: audit}.Apply(sys, nil, plan)
	if res.Err != nil {
		t.Fatalf("apply: %v", res.Err)
	}
	if nodes[0].budget != 30 || nodes[1].budget != 70 {
		t.Fatalf("grants = %v, %v; want 30, 70", nodes[0].budget, nodes[1].budget)
	}
	if sys.draw != 100 {
		t.Fatalf("cluster draw = %v, want 100", sys.draw)
	}
	events := audit.Events()
	if len(events) != 2 {
		t.Fatalf("audited %d events, want 2", len(events))
	}
	if events[0].Kind != telemetry.EventSetBudget || events[0].Node != "a" ||
		events[0].PrevWatts != 50 || events[0].GrantedWatts != 30 || events[0].Detail != "rebalance" {
		t.Fatalf("bad first audit event: %+v", events[0])
	}
}

// TestSetBudgetValidateRejectsOverCap pins the invariant: a plan whose
// intermediate or final state pushes Σ granted over the cluster cap is
// rejected before any actuation.
func TestSetBudgetValidateRejectsOverCap(t *testing.T) {
	sys, nodes := clusterSystem(100, 50, 50)
	// Increase before decrease: intermediate state 50+70 = 120 > 100.
	plan := &ActionPlan{Actions: []Action{
		&SetBudgetAction{Node: nodes[1], From: 50, To: 70},
		&SetBudgetAction{Node: nodes[0], From: 50, To: 30},
	}}
	err := Executor{}.Validate(sys, plan)
	if !errors.Is(err, cmp.ErrBudgetExceeded) {
		t.Fatalf("validate = %v, want ErrBudgetExceeded", err)
	}
	if nodes[0].setCalls+nodes[1].setCalls != 0 {
		t.Fatalf("validation must not actuate")
	}

	// Negative grants never validate.
	bad := &ActionPlan{Actions: []Action{&SetBudgetAction{Node: nodes[0], From: 50, To: -1}}}
	if err := (Executor{}).Validate(sys, bad); err == nil {
		t.Fatalf("negative grant validated")
	}
}

// TestSetBudgetRollsBackMidPlanFailure pins the robustness contract: when a
// later grant fails (node died mid-plan), earlier grants are restored in
// reverse order so the ledger lands where it started, not in between.
func TestSetBudgetRollsBackMidPlanFailure(t *testing.T) {
	sys, nodes := clusterSystem(100, 50, 30)
	boom := errors.New("node unreachable")
	nodes[1].setErr = boom
	audit := telemetry.NewAuditLog(16)
	plan := &ActionPlan{Actions: []Action{
		&SetBudgetAction{Node: nodes[0], From: 50, To: 40, Reason: ReasonRebalance},
		&SetBudgetAction{Node: nodes[1], From: 30, To: 40, Reason: ReasonRebalance},
	}}
	res := Executor{Audit: audit}.Apply(sys, nil, plan)
	if !errors.Is(res.Err, boom) {
		t.Fatalf("apply err = %v, want wrapped %v", res.Err, boom)
	}
	if !res.RolledBack {
		t.Fatalf("expected rollback")
	}
	if nodes[0].budget != 50 {
		t.Fatalf("node a grant = %v after rollback, want 50", nodes[0].budget)
	}
	if sys.draw != 80 {
		t.Fatalf("cluster draw = %v after rollback, want 80", sys.draw)
	}
	var sawRollback bool
	for _, e := range audit.Events() {
		if e.Kind == telemetry.EventPlanRollback {
			sawRollback = true
		}
	}
	if !sawRollback {
		t.Fatalf("rollback not audited")
	}
}
