package core

import (
	"fmt"

	"powerchief/internal/cmp"
	"powerchief/internal/telemetry"
)

// Executor actuates ActionPlans against the real system: it re-validates
// the plan's budget arithmetic, applies the actions in order, writes the
// audit trail, and — when an action fails mid-plan (an RPC error in the
// distributed runtime) — rolls the already-applied steps back in reverse
// order so the deployment lands on a consistent, budget-respecting level
// assignment instead of somewhere between two plans.
type Executor struct {
	// Audit, when set, receives the decision trail: recycle passes,
	// withdraws, deboosts, relaunches, the outcome summary, and rollbacks.
	Audit *telemetry.AuditLog
}

// ApplyResult reports what one Apply did.
type ApplyResult struct {
	// Applied counts actions actuated (including those later rolled back).
	Applied int
	// Withdrawn counts instances withdrawn.
	Withdrawn int
	// Clones lists realized clone names in plan order.
	Clones []string
	// RolledBack reports that a mid-plan failure undid earlier steps.
	RolledBack bool
	// Err is the first actuation or validation failure, nil on success.
	Err error
}

// appliedStep remembers enough of one actuated action to undo it.
type appliedStep struct {
	act   Action
	real  Instance     // SetLevel target, or clone source
	clone Instance     // realized clone
	stage StageControl // clone's stage
}

// Validate replays the plan's budget arithmetic from the system's current
// draw, using the same acceptance test as the chip. It is exact against the
// deterministic simulator and advisory against live backends (whose own
// checks remain authoritative at apply time).
func (x Executor) Validate(sys System, plan *ActionPlan) error {
	if plan.Empty() {
		return nil
	}
	model := sys.PowerModel()
	budget := sys.Budget()
	drawn := sys.Draw()
	free := sys.FreeCores()
	for _, act := range plan.Actions {
		switch a := act.(type) {
		case *SetLevelAction:
			if !a.To.Valid() {
				return fmt.Errorf("core: plan validation: %s: invalid level", a.Describe())
			}
			delta := model.Power(a.To) - model.Power(a.From)
			if drawn+delta > budget+1e-9 {
				return fmt.Errorf("core: plan validation: %s: %w", a.Describe(), cmp.ErrBudgetExceeded)
			}
			drawn += delta
		case *CloneAction:
			if free <= 0 {
				return fmt.Errorf("core: plan validation: %s: %w", a.Describe(), cmp.ErrNoFreeCore)
			}
			p := model.Power(a.Level)
			if drawn+p > budget+1e-9 {
				return fmt.Errorf("core: plan validation: %s: %w", a.Describe(), cmp.ErrBudgetExceeded)
			}
			drawn += p
			free--
		case *WithdrawAction:
			drawn -= model.Power(a.Victim.Level())
			if drawn < 0 {
				drawn = 0
			}
			free++
		case *ResetEpochAction:
			// No power effect.
		case *SetBudgetAction:
			// Fleet-layer action: drawn is the sum of granted node budgets,
			// budget the cluster cap. Same acceptance test as the chip's.
			delta := a.To - a.From
			if a.To < 0 {
				return fmt.Errorf("core: plan validation: %s: negative budget", a.Describe())
			}
			if drawn+delta > budget+1e-9 {
				return fmt.Errorf("core: plan validation: %s: %w", a.Describe(), cmp.ErrBudgetExceeded)
			}
			drawn += delta
		default:
			return fmt.Errorf("core: plan validation: unknown action %T", act)
		}
	}
	return nil
}

// Apply validates and actuates the plan. The aggregator, when non-nil, has
// the statistics of withdrawn instances forgotten — the same bookkeeping the
// direct actuation path performed.
func (x Executor) Apply(sys System, agg *Aggregator, plan *ActionPlan) ApplyResult {
	var res ApplyResult
	if plan == nil {
		return res
	}
	if err := x.Validate(sys, plan); err != nil {
		res.Err = err
		return res
	}

	realized := make(map[*planInstance]Instance)
	resolve := func(in Instance) (Instance, error) {
		pi, ok := in.(*planInstance)
		if !ok {
			return in, nil
		}
		if pi.under != nil {
			return pi.under, nil
		}
		if r := realized[pi]; r != nil {
			return r, nil
		}
		return nil, fmt.Errorf("core: plan references clone %s before it is launched", pi.Name())
	}

	withdrawn := make(map[string]bool)
	var steps []appliedStep
	nextSpan := 0
	emitSpans := func(upto int) {
		for nextSpan < len(plan.recycles) && plan.recycles[nextSpan].end <= upto {
			x.auditRecycle(sys, plan.recycles[nextSpan], plan.Actions)
			nextSpan++
		}
	}

	for i, act := range plan.Actions {
		emitSpans(i)
		switch a := act.(type) {
		case *SetLevelAction:
			real, err := resolve(a.Instance)
			if err == nil {
				err = real.SetLevel(a.To)
			}
			if err != nil {
				return x.fail(sys, steps, act, err, res)
			}
			steps = append(steps, appliedStep{act: act, real: real})
			res.Applied++
			if a.Reason == ReasonDeboost && x.Audit.Enabled() {
				x.Audit.Record(telemetry.Event{
					Time: sys.Now(), Kind: telemetry.EventDeboost,
					Stage: real.StageName(), Instance: real.Name(),
					OldLevel: int(a.From), NewLevel: int(a.To),
					HeadroomWatts: float64(sys.Headroom()),
				})
			}
		case *CloneAction:
			src, err := resolve(a.Source)
			var clone Instance
			if err == nil {
				clone, err = a.Stage.Clone(src)
			}
			if err != nil {
				return x.fail(sys, steps, act, err, res)
			}
			if a.ref != nil {
				realized[a.ref] = clone
			}
			steps = append(steps, appliedStep{act: act, real: src, clone: clone, stage: a.Stage})
			res.Applied++
			res.Clones = append(res.Clones, clone.Name())
			if a.Reason == ReasonRelaunch && x.Audit.Enabled() {
				x.Audit.Record(telemetry.Event{
					Time: sys.Now(), Kind: telemetry.EventRelaunch,
					Stage: a.Stage.Name(), Instance: clone.Name(),
					HeadroomWatts: float64(sys.Headroom()),
				})
			}
		case *WithdrawAction:
			victim, err := resolve(a.Victim)
			var target Instance
			if err == nil && a.Target != nil {
				target, err = resolve(a.Target)
			}
			if err == nil {
				err = a.Stage.Withdraw(victim, target)
			}
			if err != nil {
				return x.fail(sys, steps, act, err, res)
			}
			if agg != nil {
				agg.Forget(victim.Name())
			}
			withdrawn[victim.Name()] = true
			steps = append(steps, appliedStep{act: act, real: victim, stage: a.Stage})
			res.Applied++
			res.Withdrawn++
			tgt := ""
			if target != nil {
				tgt = target.Name()
			}
			auditWithdraw(x.Audit, sys.Now(), a.Stage.Name(), victim.Name(), tgt)
		case *ResetEpochAction:
			real, err := resolve(a.Instance)
			if err != nil || withdrawn[real.Name()] {
				continue
			}
			real.ResetUtilizationEpoch()
			res.Applied++
		case *SetBudgetAction:
			if err := a.Node.SetBudget(a.To); err != nil {
				return x.fail(sys, steps, act, err, res)
			}
			steps = append(steps, appliedStep{act: act})
			res.Applied++
			if x.Audit.Enabled() {
				x.Audit.Record(telemetry.Event{
					Time: sys.Now(), Kind: telemetry.EventSetBudget,
					Node:         a.Node.Name(),
					PrevWatts:    float64(a.From),
					GrantedWatts: float64(a.To),
					Detail:       reasonDetail(a.Reason),
				})
			}
		default:
			return x.fail(sys, steps, act, fmt.Errorf("core: unknown action %T", act), res)
		}
	}
	emitSpans(len(plan.Actions))

	if plan.Outcome != nil {
		out := *plan.Outcome
		if out.Kind == BoostInstance && len(res.Clones) > 0 {
			out.NewInstance = res.Clones[len(res.Clones)-1]
			plan.Outcome.NewInstance = out.NewInstance
		}
		auditOutcome(x.Audit, sys, out)
	}
	return res
}

// fail rolls the applied steps back in reverse order and reports the
// failure. Every intermediate state revisited during rollback is a state
// the forward pass already held under budget, so restores cannot exceed it;
// withdraws stay applied — they only freed power.
func (x Executor) fail(sys System, steps []appliedStep, act Action, cause error, res ApplyResult) ApplyResult {
	undone, failed := 0, 0
	for j := len(steps) - 1; j >= 0; j-- {
		s := steps[j]
		switch a := s.act.(type) {
		case *SetLevelAction:
			if err := s.real.SetLevel(a.From); err != nil {
				failed++
			} else {
				undone++
			}
		case *CloneAction:
			if err := s.stage.Withdraw(s.clone, s.real); err != nil {
				failed++
			} else {
				undone++
			}
		case *SetBudgetAction:
			if err := a.Node.SetBudget(a.From); err != nil {
				failed++
			} else {
				undone++
			}
		}
	}
	res.RolledBack = undone+failed > 0
	res.Err = fmt.Errorf("core: applying %s: %w", act.Describe(), cause)
	if x.Audit.Enabled() {
		x.Audit.Record(telemetry.Event{
			Time:   sys.Now(),
			Kind:   telemetry.EventPlanRollback,
			Detail: fmt.Sprintf("rolled back %d/%d reversible steps after %d applied", undone, undone+failed, res.Applied),
			Err:    res.Err.Error(),
		})
	}
	return res
}

// reasonDetail renders an ActionReason for the audit Detail field.
func reasonDetail(r ActionReason) string {
	switch r {
	case ReasonRebalance:
		return "rebalance"
	case ReasonReadmit:
		return "readmit"
	case ReasonRecycle:
		return "recycle"
	case ReasonDeboost:
		return "deboost"
	case ReasonRelaunch:
		return "relaunch"
	default:
		return "boost"
	}
}

// auditRecycle emits one EventRecycle for a completed recycle span, listing
// the donor transitions the span's SetLevel actions performed.
func (x Executor) auditRecycle(sys System, span recycleSpan, actions []Action) {
	if !x.Audit.Enabled() {
		return
	}
	model := sys.PowerModel()
	var ds []telemetry.Donor
	for i := span.start; i < span.end && i < len(actions); i++ {
		a, ok := actions[i].(*SetLevelAction)
		if !ok || a.From == a.To {
			continue
		}
		ds = append(ds, telemetry.Donor{
			Instance:   a.Instance.Name(),
			FromLevel:  int(a.From),
			ToLevel:    int(a.To),
			FreedWatts: float64(model.Power(a.From) - model.Power(a.To)),
		})
	}
	x.Audit.Record(telemetry.Event{
		Time:          sys.Now(),
		Kind:          telemetry.EventRecycle,
		RecycledWatts: float64(span.freed),
		HeadroomWatts: float64(sys.Headroom()),
		Donors:        ds,
	})
}
