package core

import (
	"encoding/json"
	"errors"
	"testing"

	"powerchief/internal/cmp"
)

// TestShadowExecutorRefusesLiveSystems is the type-level actuation guard:
// handing the shadow executor anything but a SnapshotView fails with
// ErrNotShadow before a single action lands on a live actuator.
func TestShadowExecutorRefusesLiveSystems(t *testing.T) {
	sys := newFakeSystem(50, 2, cmp.MidLevel, "a", "b")
	pv := NewPlanView(sys)
	in := pv.Stages()[0].Instances()[0]
	if err := in.SetLevel(in.Level() + 1); err != nil {
		t.Fatal(err)
	}
	plan := pv.Take()

	res := ShadowExecutor{}.Apply(sys, plan)
	if !errors.Is(res.Err, ErrNotShadow) {
		t.Fatalf("Apply on a live system: err = %v, want ErrNotShadow", res.Err)
	}
	if res.Applied != 0 || res.Withdrawn != 0 || len(res.Clones) != 0 {
		t.Fatalf("live system saw actions through the shadow executor: %+v", res)
	}
	live := sys.inst("a_1")
	if live.setLevelCalls != 0 || live.level != cmp.MidLevel {
		t.Fatalf("live actuator touched: %d SetLevel calls, level %d",
			live.setLevelCalls, live.level)
	}
}

// TestShadowApplyMutatesOnlyTheView pins the replay isolation contract: a
// plan shadow-applied to a SnapshotView lands on the view's in-memory
// deployment, while the capture it was built from and the live system it
// was captured from stay byte-identical.
func TestShadowApplyMutatesOnlyTheView(t *testing.T) {
	sys := newFakeSystem(60, 2, cmp.MidLevel, "a", "b")
	sys.inst("a_1").queueLen = 8
	snap := CaptureSnapshot(sys, nil)
	before, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}

	sv := NewSnapshotView(snap)
	pv := NewPlanView(sv)
	st := pv.Stages()[0]
	in := st.Instances()[0]
	if err := in.SetLevel(in.Level() + 2); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Clone(in); err != nil {
		t.Fatal(err)
	}
	plan := pv.Take()

	res := ShadowExecutor{}.Apply(sv, plan)
	if res.Err != nil {
		t.Fatalf("shadow apply: %v", res.Err)
	}
	if res.Applied == 0 || len(res.Clones) != 1 {
		t.Fatalf("shadow apply result %+v", res)
	}
	// The plan landed on the view: boosted level, realized clone, grown
	// draw, spent core.
	if got := sv.Stages()[0].Instances()[0].Level(); got != cmp.MidLevel+2 {
		t.Fatalf("shadow level = %d, want %d", got, cmp.MidLevel+2)
	}
	if n := len(sv.Stages()[0].Instances()); n != 2 {
		t.Fatalf("shadow stage has %d instances, want the clone realized", n)
	}
	if sv.Draw() <= snap.Draw || sv.FreeCores() != snap.FreeCores-1 {
		t.Fatalf("shadow ledger: draw %v (was %v), free %d (was %d)",
			sv.Draw(), snap.Draw, sv.FreeCores(), snap.FreeCores)
	}
	// ...and nowhere else.
	after, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Fatalf("capture mutated by shadow apply:\n before %s\n after  %s", before, after)
	}
	live := sys.inst("a_1")
	if live.setLevelCalls != 0 || live.level != cmp.MidLevel || len(sys.stage("a").cloned) != 0 {
		t.Fatal("live system touched by shadow apply")
	}
}

// TestSnapshotRoundTripsThroughJSON: a capture survives serialization with
// its physics tables intact — the property the trace format rides on.
func TestSnapshotRoundTripsThroughJSON(t *testing.T) {
	sys := newFakeSystem(40, 1, cmp.MidLevel, "fe", "be")
	snap := CaptureSnapshot(sys, nil)
	payload, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var got Snapshot
	if err := json.Unmarshal(payload, &got); err != nil {
		t.Fatal(err)
	}
	if err := got.Validate(); err != nil {
		t.Fatalf("round-tripped snapshot invalid: %v", err)
	}
	back, err := json.Marshal(&got)
	if err != nil {
		t.Fatal(err)
	}
	if string(payload) != string(back) {
		t.Fatalf("snapshot drifted across the round trip:\n  %s\n  %s", payload, back)
	}
}
