package core

import (
	"fmt"

	"powerchief/internal/cmp"
)

// ActionRecord is the wire form of one plan Action: instances and stages by
// name, levels and watts by value. Encoding is deterministic — the same plan
// always yields the same records, and json.Marshal of the same records
// yields the same bytes — which is what the replay determinism gate
// compares.
type ActionRecord struct {
	Kind     string    `json:"kind"`
	Instance string    `json:"instance,omitempty"`
	Stage    string    `json:"stage,omitempty"`
	Source   string    `json:"source,omitempty"`
	Victim   string    `json:"victim,omitempty"`
	Target   string    `json:"target,omitempty"`
	Node     string    `json:"node,omitempty"`
	From     int       `json:"from,omitempty"`
	To       int       `json:"to,omitempty"`
	Level    int       `json:"level,omitempty"`
	FromW    cmp.Watts `json:"from_watts,omitempty"`
	ToW      cmp.Watts `json:"to_watts,omitempty"`
	Reason   string    `json:"reason,omitempty"`
}

// Describe renders the record like its live counterpart's Describe.
func (r ActionRecord) Describe() string {
	switch r.Kind {
	case "set-level":
		return fmt.Sprintf("set-level %s %d→%d", r.Instance, r.From, r.To)
	case "clone":
		return fmt.Sprintf("clone %s of stage %s at level %d", r.Source, r.Stage, r.Level)
	case "withdraw":
		return fmt.Sprintf("withdraw %s from stage %s", r.Victim, r.Stage)
	case "reset-epoch":
		return fmt.Sprintf("reset-epoch %s", r.Instance)
	case "set-budget":
		return fmt.Sprintf("set-budget %s %.2fW→%.2fW", r.Node, float64(r.FromW), float64(r.ToW))
	default:
		return "unknown-action " + r.Kind
	}
}

// String renders an ActionReason for records and logs.
func (r ActionReason) String() string { return reasonDetail(r) }

// EncodePlan flattens an ActionPlan into its wire records. Plan-time clone
// placeholders encode under their placeholder names ("X+clone"), the same
// on a live system and on a SnapshotView — replayed and recorded plans are
// compared in this form.
func EncodePlan(p *ActionPlan) []ActionRecord {
	if p == nil {
		return nil
	}
	out := make([]ActionRecord, 0, len(p.Actions))
	for _, act := range p.Actions {
		switch a := act.(type) {
		case *SetLevelAction:
			out = append(out, ActionRecord{
				Kind: "set-level", Instance: a.Instance.Name(),
				Stage: a.Instance.StageName(),
				From:  int(a.From), To: int(a.To), Reason: a.Reason.String(),
			})
		case *CloneAction:
			out = append(out, ActionRecord{
				Kind: "clone", Stage: a.Stage.Name(), Source: a.Source.Name(),
				Level: int(a.Level), Reason: a.Reason.String(),
			})
		case *WithdrawAction:
			rec := ActionRecord{Kind: "withdraw", Stage: a.Stage.Name(), Victim: a.Victim.Name()}
			if a.Target != nil {
				rec.Target = a.Target.Name()
			}
			out = append(out, rec)
		case *ResetEpochAction:
			out = append(out, ActionRecord{Kind: "reset-epoch", Instance: a.Instance.Name()})
		case *SetBudgetAction:
			out = append(out, ActionRecord{
				Kind: "set-budget", Node: a.Node.Name(),
				FromW: a.From, ToW: a.To, Reason: a.Reason.String(),
			})
		default:
			out = append(out, ActionRecord{Kind: fmt.Sprintf("unknown:%T", act)})
		}
	}
	return out
}
