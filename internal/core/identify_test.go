package core

import (
	"testing"
	"time"

	"powerchief/internal/cmp"
	"powerchief/internal/query"
)

// ingestStats injects one synthetic completed query giving instance `inst`
// the given queuing and serving sample.
func ingestStats(agg *Aggregator, inst string, queuing, serving time.Duration) {
	q := query.New(0, 0, nil)
	q.Append(query.Record{
		Instance:   inst,
		QueueEnter: 0,
		ServeStart: queuing,
		ServeEnd:   queuing + serving,
	})
	q.Done = queuing + serving
	agg.Ingest(q)
}

func TestRankUsesExpectedDelayMetric(t *testing.T) {
	sys := newFakeSystem(100, 4, cmp.MidLevel, "ASR", "QA")
	agg := aggWith(sys, 25*time.Second)
	// ASR: short queue but slow serving; QA: long queue.
	ingestStats(agg, "ASR_1", 100*time.Millisecond, 500*time.Millisecond)
	ingestStats(agg, "QA_1", 200*time.Millisecond, 300*time.Millisecond)
	sys.inst("ASR_1").queueLen = 1 // metric = 1·100 + 500 = 600ms
	sys.inst("QA_1").queueLen = 4  // metric = 4·200 + 300 = 1100ms

	ranked := Identifier{Metric: MetricExpectedDelay}.Rank(sys, agg)
	if len(ranked) != 2 {
		t.Fatalf("ranked %d instances", len(ranked))
	}
	if ranked[0].Instance.Name() != "QA_1" {
		t.Errorf("bottleneck = %s, want QA_1", ranked[0].Instance.Name())
	}
	if ranked[0].Metric != 1100*time.Millisecond {
		t.Errorf("bottleneck metric = %v, want 1.1s", ranked[0].Metric)
	}
	if ranked[1].Metric != 600*time.Millisecond {
		t.Errorf("fastest metric = %v, want 600ms", ranked[1].Metric)
	}
	if got := Spread(ranked); got != 500*time.Millisecond {
		t.Errorf("Spread = %v, want 500ms", got)
	}
}

func TestQueueLengthFlipsBottleneck(t *testing.T) {
	// The paper's §2.2 example: historical metrics alone would pick the
	// instance with higher processing delay, but a queue burst makes the
	// other instance the real bottleneck.
	sys := newFakeSystem(100, 4, cmp.MidLevel, "A", "B")
	agg := aggWith(sys, 25*time.Second)
	ingestStats(agg, "A_1", 50*time.Millisecond, 700*time.Millisecond)  // high processing delay
	ingestStats(agg, "B_1", 100*time.Millisecond, 200*time.Millisecond) // low, but...
	sys.inst("A_1").queueLen = 1
	sys.inst("B_1").queueLen = 20 // burst

	byProcessing := Identifier{Metric: MetricAvgProcessing}.Rank(sys, agg)
	if byProcessing[0].Instance.Name() != "A_1" {
		t.Errorf("avg-processing bottleneck = %s, want A_1", byProcessing[0].Instance.Name())
	}
	byExpected := Identifier{Metric: MetricExpectedDelay}.Rank(sys, agg)
	if byExpected[0].Instance.Name() != "B_1" {
		t.Errorf("expected-delay bottleneck = %s, want B_1 (queue burst)", byExpected[0].Instance.Name())
	}
}

func TestTableOneMetrics(t *testing.T) {
	sys := newFakeSystem(100, 4, cmp.MidLevel, "A", "B")
	agg := aggWith(sys, 25*time.Second)
	ingestStats(agg, "A_1", 300*time.Millisecond, 100*time.Millisecond)
	ingestStats(agg, "B_1", 100*time.Millisecond, 250*time.Millisecond)

	if r := (Identifier{Metric: MetricAvgQueuing}).Rank(sys, agg); r[0].Instance.Name() != "A_1" {
		t.Error("avg-queuing should rank A_1 first")
	}
	if r := (Identifier{Metric: MetricAvgServing}).Rank(sys, agg); r[0].Instance.Name() != "B_1" {
		t.Error("avg-serving should rank B_1 first")
	}
	if r := (Identifier{Metric: MetricAvgProcessing}).Rank(sys, agg); r[0].Metric != 400*time.Millisecond {
		t.Errorf("avg-processing metric = %v, want 400ms", r[0].Metric)
	}
}

func TestMetricStrings(t *testing.T) {
	names := map[Metric]string{
		MetricExpectedDelay: "expected-delay",
		MetricAvgQueuing:    "avg-queuing",
		MetricAvgServing:    "avg-serving",
		MetricAvgProcessing: "avg-processing",
		Metric(99):          "unknown-metric",
	}
	for m, want := range names {
		if m.String() != want {
			t.Errorf("Metric(%d).String() = %q", m, m.String())
		}
	}
}

func TestBottleneckEmptySystem(t *testing.T) {
	sys := &fakeSystem{model: cmp.DefaultModel(), budget: 10}
	agg := aggWith(sys, time.Second)
	if _, ok := (Identifier{}).Bottleneck(sys, agg); ok {
		t.Error("empty system reported a bottleneck")
	}
	if got := Spread(nil); got != 0 {
		t.Errorf("Spread(nil) = %v", got)
	}
}

func TestRankDeterministicTieBreak(t *testing.T) {
	sys := newFakeSystem(100, 4, cmp.MidLevel, "B", "A")
	agg := aggWith(sys, time.Second)
	// No stats at all: every metric is zero; ties break by name.
	ranked := Identifier{}.Rank(sys, agg)
	if ranked[0].Instance.Name() != "A_1" || ranked[1].Instance.Name() != "B_1" {
		t.Errorf("tie-break order = %s,%s; want A_1,B_1",
			ranked[0].Instance.Name(), ranked[1].Instance.Name())
	}
}

func TestInstancesAndStageOf(t *testing.T) {
	sys := newFakeSystem(100, 4, cmp.MidLevel, "X", "Y")
	all := Instances(sys)
	if len(all) != 2 {
		t.Fatalf("Instances = %d", len(all))
	}
	st := StageOf(sys, all[1])
	if st == nil || st.Name() != "Y" {
		t.Error("StageOf mismatch")
	}
	ghost := &fakeInstance{name: "Z_1", stage: "Z"}
	if StageOf(sys, ghost) != nil {
		t.Error("StageOf for unknown stage should be nil")
	}
}
