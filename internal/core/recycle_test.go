package core

import (
	"testing"
	"time"

	"powerchief/internal/cmp"
)

func TestRecycleFromInstStepsJustEnough(t *testing.T) {
	sys := newFakeSystem(100, 4, cmp.MidLevel, "A")
	m := sys.model
	donor := sys.inst("A_1")
	oneStep := m.Power(cmp.MidLevel) - m.Power(cmp.MidLevel-1)

	got := Recycler{}.RecycleFromInst(m, donor, oneStep/2)
	if got < oneStep/2 {
		t.Errorf("recycled %v, need %v", got, oneStep/2)
	}
	// A half-step need costs exactly one level.
	if donor.level != cmp.MidLevel-1 {
		t.Errorf("donor level = %v, want one step down", donor.level)
	}
}

func TestRecycleFromInstCapsAtFloor(t *testing.T) {
	sys := newFakeSystem(100, 4, cmp.MidLevel, "A")
	m := sys.model
	donor := sys.inst("A_1")
	max := m.Power(cmp.MidLevel) - m.Power(0)

	got := Recycler{}.RecycleFromInst(m, donor, 1000)
	if !cmp.ApproxEqual(got, max) {
		t.Errorf("recycled %v, want all %v", got, max)
	}
	if donor.level != 0 {
		t.Errorf("donor level = %v, want floor", donor.level)
	}
	// Already at the floor: nothing more.
	if got := (Recycler{}).RecycleFromInst(m, donor, 1); got != 0 {
		t.Errorf("floor donor recycled %v", got)
	}
}

func TestRecycleFromInstRespectsCustomFloor(t *testing.T) {
	sys := newFakeSystem(100, 4, cmp.MidLevel, "A")
	donor := sys.inst("A_1")
	Recycler{Floor: 4}.RecycleFromInst(sys.model, donor, 1000)
	if donor.level != 4 {
		t.Errorf("donor level = %v, want custom floor 4", donor.level)
	}
}

func TestRecycleFromInstZeroNeed(t *testing.T) {
	sys := newFakeSystem(100, 4, cmp.MidLevel, "A")
	if got := (Recycler{}).RecycleFromInst(sys.model, sys.inst("A_1"), 0); got != 0 {
		t.Errorf("zero need recycled %v", got)
	}
	if sys.inst("A_1").level != cmp.MidLevel {
		t.Error("zero need changed the donor")
	}
}

func TestRecycleWalksDonorsInOrder(t *testing.T) {
	sys := newFakeSystem(100, 4, cmp.MidLevel, "A", "B", "C")
	m := sys.model
	// Need slightly more than one donor can give: A drains fully, B steps.
	fullDonor := m.Power(cmp.MidLevel) - m.Power(0)
	donors := []Instance{sys.inst("A_1"), sys.inst("B_1"), sys.inst("C_1")}
	got := Recycler{}.Recycle(m, donors, fullDonor+0.1)
	if got < fullDonor+0.1 {
		t.Errorf("recycled %v, need %v", got, fullDonor+0.1)
	}
	if sys.inst("A_1").level != 0 {
		t.Error("first donor not drained")
	}
	if sys.inst("B_1").level >= cmp.MidLevel {
		t.Error("second donor untouched")
	}
	if sys.inst("C_1").level != cmp.MidLevel {
		t.Error("third donor touched unnecessarily")
	}
}

func TestRecycleShortfallReported(t *testing.T) {
	sys := newFakeSystem(100, 4, 0, "A") // donor already at floor
	got := Recycler{}.Recycle(sys.model, []Instance{sys.inst("A_1")}, 5)
	if got != 0 {
		t.Errorf("recycled %v from floor donors", got)
	}
}

func TestDonorsFromRankingExcludesBottleneckAndOrders(t *testing.T) {
	sys := newFakeSystem(100, 4, cmp.MidLevel, "A", "B", "C")
	agg := aggWith(sys, 25*time.Second)
	ingestStats(agg, "A_1", 0, 300*time.Millisecond)
	ingestStats(agg, "B_1", 0, 200*time.Millisecond)
	ingestStats(agg, "C_1", 0, 100*time.Millisecond)
	ranked := Identifier{Metric: MetricExpectedDelay}.Rank(sys, agg)
	if ranked[0].Instance.Name() != "A_1" {
		t.Fatalf("bottleneck = %s", ranked[0].Instance.Name())
	}
	donors := DonorsFromRanking(ranked, ranked[0].Instance)
	if len(donors) != 2 {
		t.Fatalf("donors = %d", len(donors))
	}
	if donors[0].Name() != "C_1" || donors[1].Name() != "B_1" {
		t.Errorf("donor order = %s,%s; want fastest first", donors[0].Name(), donors[1].Name())
	}
}

func TestPlanWithdrawsSelectsLeastUtilized(t *testing.T) {
	sys := newFakeSystem(100, 4, cmp.MidLevel, "A")
	st := sys.stage("A")
	// Three instances with varying utilization.
	for i, u := range []float64{0.5, 0.15, 0.05} {
		if i == 0 {
			st.ins[0].util = u
			continue
		}
		in := &fakeInstance{name: st.name + "_" + string(rune('1'+i)), stage: st.name, level: cmp.MidLevel, util: u, sys: sys}
		st.ins = append(st.ins, in)
	}
	agg := aggWith(sys, 25*time.Second)
	ranked := Identifier{}.Rank(sys, agg)
	plans := PlanWithdraws(sys, ranked, 0.2)
	if len(plans) != 1 {
		t.Fatalf("plans = %d, want 1 (at most one per stage)", len(plans))
	}
	if plans[0].Victim.Utilization() != 0.05 {
		t.Errorf("victim utilization = %v, want the least-utilized", plans[0].Victim.Utilization())
	}
	n, err := ExecuteWithdraws(plans, agg)
	if err != nil || n != 1 {
		t.Fatalf("ExecuteWithdraws = %d, %v", n, err)
	}
	if len(st.ins) != 2 {
		t.Errorf("stage has %d instances after withdraw", len(st.ins))
	}
}

func TestPlanWithdrawsNeverLastInstance(t *testing.T) {
	sys := newFakeSystem(100, 4, cmp.MidLevel, "A")
	sys.inst("A_1").util = 0.0 // fully idle, but the only instance
	agg := aggWith(sys, 25*time.Second)
	plans := PlanWithdraws(sys, Identifier{}.Rank(sys, agg), 0.2)
	if len(plans) != 0 {
		t.Fatal("planned withdraw of the last instance")
	}
}

func TestPlanWithdrawsSkipsNonScalableStages(t *testing.T) {
	sys := newFakeSystem(100, 4, cmp.MidLevel, "leaf")
	st := sys.stage("leaf")
	st.scalable = false
	st.ins = append(st.ins, &fakeInstance{name: "leaf_2", stage: "leaf", level: cmp.MidLevel, sys: sys})
	agg := aggWith(sys, 25*time.Second)
	plans := PlanWithdraws(sys, Identifier{}.Rank(sys, agg), 0.2)
	if len(plans) != 0 {
		t.Fatal("planned withdraw from a fan-out stage")
	}
}

func TestPlanWithdrawsSkipsBusyInstances(t *testing.T) {
	sys := newFakeSystem(100, 4, cmp.MidLevel, "A")
	st := sys.stage("A")
	st.ins[0].util = 0.9
	st.ins = append(st.ins, &fakeInstance{name: "A_2", stage: "A", level: cmp.MidLevel, util: 0.5, sys: sys})
	agg := aggWith(sys, 25*time.Second)
	plans := PlanWithdraws(sys, Identifier{}.Rank(sys, agg), 0.2)
	if len(plans) != 0 {
		t.Fatal("planned withdraw of busy instances")
	}
}

func TestPlanWithdrawsTargetIsFastest(t *testing.T) {
	sys := newFakeSystem(100, 4, cmp.MidLevel, "A")
	st := sys.stage("A")
	st.ins[0].util = 0.9
	st.ins = append(st.ins,
		&fakeInstance{name: "A_2", stage: "A", level: cmp.MidLevel, util: 0.05, sys: sys},
		&fakeInstance{name: "A_3", stage: "A", level: cmp.MidLevel, util: 0.6, sys: sys},
	)
	agg := aggWith(sys, 25*time.Second)
	ingestStats(agg, "A_1", 0, 100*time.Millisecond) // fastest by metric
	ingestStats(agg, "A_2", 0, 300*time.Millisecond)
	ingestStats(agg, "A_3", 0, 500*time.Millisecond)
	ranked := Identifier{Metric: MetricExpectedDelay}.Rank(sys, agg)
	plans := PlanWithdraws(sys, ranked, 0.2)
	if len(plans) != 1 {
		t.Fatalf("plans = %d", len(plans))
	}
	if plans[0].Victim.Name() != "A_2" {
		t.Errorf("victim = %s, want A_2", plans[0].Victim.Name())
	}
	if plans[0].Target == nil || plans[0].Target.Name() != "A_1" {
		t.Errorf("target = %v, want the fastest instance A_1", plans[0].Target)
	}
}
