package core

import (
	"testing"
	"time"

	"powerchief/internal/cmp"
	"powerchief/internal/query"
)

// instSample is one instance's injected windowed statistics.
type instSample struct {
	queuing, serving time.Duration
}

// ingestQoS injects exactly one completed query carrying the given
// per-instance records and end-to-end latency, so the QoS policies see both
// the ranking signal and the latency-vs-target signal without dilution.
func ingestQoS(agg *Aggregator, samples map[string]instSample, latency time.Duration) {
	q := query.New(0, 0, nil)
	for name, s := range samples {
		q.Append(query.Record{
			Instance:   name,
			QueueEnter: 0,
			ServeStart: s.queuing,
			ServeEnd:   s.queuing + s.serving,
		})
	}
	q.Done = latency
	agg.Ingest(q)
}

func TestPegasusStepsDownUnderSlack(t *testing.T) {
	sys := newFakeSystem(200, 8, cmp.MaxLevel, "A", "B")
	agg := aggWith(sys, 25*time.Second)
	ingestQoS(agg, map[string]instSample{"A_1": {0, 100 * time.Millisecond}, "B_1": {0, 100 * time.Millisecond}}, 100*time.Millisecond)
	p := NewPegasus(time.Second)
	p.Adjust(sys, agg)
	for _, name := range []string{"A_1", "B_1"} {
		if got := sys.inst(name).level; got != cmp.MaxLevel-1 {
			t.Errorf("%s level = %v, want one step down", name, got)
		}
	}
}

func TestPegasusUniformityIsStageAgnostic(t *testing.T) {
	// Pegasus lowers every instance together — even if one stage has far
	// less slack. This is exactly the limitation §8.4 exploits.
	sys := newFakeSystem(200, 8, cmp.MaxLevel, "fast", "slow")
	agg := aggWith(sys, 25*time.Second)
	ingestQoS(agg, map[string]instSample{
		"fast_1": {0, 10 * time.Millisecond},
		"slow_1": {0, 490 * time.Millisecond},
	}, 500*time.Millisecond)
	p := NewPegasus(time.Second)
	p.Adjust(sys, agg)
	if sys.inst("fast_1").level != sys.inst("slow_1").level {
		t.Error("Pegasus treated instances differently")
	}
}

func TestPegasusRacesToMaxOnViolation(t *testing.T) {
	sys := newFakeSystem(200, 8, cmp.MidLevel, "A")
	agg := aggWith(sys, 25*time.Second)
	ingestQoS(agg, map[string]instSample{"A_1": {0, time.Second}}, 2*time.Second)
	p := NewPegasus(time.Second)
	p.Adjust(sys, agg)
	if sys.inst("A_1").level != cmp.MaxLevel {
		t.Errorf("level = %v, want max on violation", sys.inst("A_1").level)
	}
}

func TestPegasusStepsUpNearTarget(t *testing.T) {
	sys := newFakeSystem(200, 8, cmp.MidLevel, "A")
	agg := aggWith(sys, 25*time.Second)
	ingestQoS(agg, map[string]instSample{"A_1": {0, 900 * time.Millisecond}}, 920*time.Millisecond)
	NewPegasus(time.Second).Adjust(sys, agg)
	if got := sys.inst("A_1").level; got != cmp.MidLevel+1 {
		t.Errorf("level = %v, want one step up", got)
	}
}

func TestPegasusHoldBand(t *testing.T) {
	sys := newFakeSystem(200, 8, cmp.MidLevel, "A")
	agg := aggWith(sys, 25*time.Second)
	ingestQoS(agg, map[string]instSample{"A_1": {0, 800 * time.Millisecond}}, 870*time.Millisecond)
	NewPegasus(time.Second).Adjust(sys, agg)
	if got := sys.inst("A_1").level; got != cmp.MidLevel {
		t.Errorf("level = %v, want unchanged in the hold band", got)
	}
}

func TestPegasusNoDataNoAction(t *testing.T) {
	sys := newFakeSystem(200, 8, cmp.MidLevel, "A")
	agg := aggWith(sys, 25*time.Second)
	if out := NewPegasus(time.Second).Adjust(sys, agg); out.Kind != BoostNone {
		t.Error("acted without latency data")
	}
}

func TestSaverDeboostsOnlyFastestInstance(t *testing.T) {
	sys := newFakeSystem(200, 8, cmp.MaxLevel, "fast", "slow")
	agg := aggWith(sys, 25*time.Second)
	ingestQoS(agg, map[string]instSample{
		"fast_1": {0, 50 * time.Millisecond},
		"slow_1": {100 * time.Millisecond, 600 * time.Millisecond},
	}, 300*time.Millisecond) // 30% of target: comfortable slack
	s := NewPowerChiefSaver(time.Second, DefaultConfig())
	out := s.Adjust(sys, agg)
	if out.Kind != BoostFrequency {
		t.Fatalf("kind = %v", out.Kind)
	}
	if got := sys.inst("fast_1").level; got != cmp.MaxLevel-1 {
		t.Errorf("fastest level = %v, want one step down", got)
	}
	if got := sys.inst("slow_1").level; got != cmp.MaxLevel {
		t.Errorf("bottleneck level = %v, must be untouched", got)
	}
}

func TestSaverWithdrawsWhenSurvivorsStaySafe(t *testing.T) {
	sys := newFakeSystem(200, 8, cmp.MaxLevel, "A")
	st := sys.stage("A")
	st.ins = append(st.ins, &fakeInstance{name: "A_2", stage: "A", level: cmp.MaxLevel, util: 0.1, sys: sys})
	sys.draw += sys.model.Power(cmp.MaxLevel)
	st.ins[0].util = 0.3 // projected survivor utilization 0.4 < 0.6 cap
	agg := aggWith(sys, 25*time.Second)
	ingestQoS(agg, map[string]instSample{
		"A_1": {0, 200 * time.Millisecond},
		"A_2": {0, 100 * time.Millisecond},
	}, 200*time.Millisecond)
	drawBefore := sys.Draw()
	s := NewPowerChiefSaver(time.Second, DefaultConfig())
	s.Adjust(sys, agg)
	if s.Withdrawn != 1 {
		t.Fatalf("Withdrawn = %d, want 1", s.Withdrawn)
	}
	if len(st.ins) != 1 {
		t.Error("instance not removed")
	}
	// The fastest instance by metric (A_2) was the victim.
	if st.ins[0].name != "A_1" {
		t.Errorf("survivor = %s, want A_1", st.ins[0].name)
	}
	if sys.Draw() >= drawBefore {
		t.Error("withdraw did not save power")
	}
}

func TestSaverRefusesUnsafeWithdraw(t *testing.T) {
	sys := newFakeSystem(200, 8, cmp.MaxLevel, "A")
	st := sys.stage("A")
	st.ins = append(st.ins, &fakeInstance{name: "A_2", stage: "A", level: cmp.MaxLevel, util: 0.45, sys: sys})
	sys.draw += sys.model.Power(cmp.MaxLevel)
	st.ins[0].util = 0.4 // projected survivor utilization 0.85 ≥ 0.6 cap
	agg := aggWith(sys, 25*time.Second)
	ingestQoS(agg, map[string]instSample{
		"A_1": {0, 200 * time.Millisecond},
		"A_2": {0, 100 * time.Millisecond},
	}, 200*time.Millisecond)
	s := NewPowerChiefSaver(time.Second, DefaultConfig())
	s.Adjust(sys, agg)
	if s.Withdrawn != 0 {
		t.Fatalf("unsafe withdraw happened")
	}
	if len(st.ins) != 2 {
		t.Error("instance removed")
	}
}

func TestSaverRestoresBottleneckOnViolation(t *testing.T) {
	sys := newFakeSystem(200, 8, cmp.Level(2), "fast", "slow")
	agg := aggWith(sys, 25*time.Second)
	sys.inst("slow_1").queueLen = 3
	ingestQoS(agg, map[string]instSample{
		"fast_1": {0, 50 * time.Millisecond},
		"slow_1": {200 * time.Millisecond, 600 * time.Millisecond},
	}, 1500*time.Millisecond) // violation
	s := NewPowerChiefSaver(time.Second, DefaultConfig())
	out := s.Adjust(sys, agg)
	if out.Kind != BoostFrequency {
		t.Fatalf("kind = %v, want freq-boost recovery", out.Kind)
	}
	if got := sys.inst("slow_1").level; got <= cmp.Level(2) {
		t.Errorf("bottleneck level = %v, not restored", got)
	}
}

func TestSaverNearTargetGivesBottleneckOneStep(t *testing.T) {
	sys := newFakeSystem(200, 8, cmp.Level(5), "fast", "slow")
	agg := aggWith(sys, 25*time.Second)
	ingestQoS(agg, map[string]instSample{
		"fast_1": {0, 50 * time.Millisecond},
		"slow_1": {100 * time.Millisecond, 600 * time.Millisecond},
	}, 930*time.Millisecond) // 93% of target
	s := NewPowerChiefSaver(time.Second, DefaultConfig())
	s.Adjust(sys, agg)
	if got := sys.inst("slow_1").level; got != cmp.Level(6) {
		t.Errorf("bottleneck level = %v, want one step up", got)
	}
	if got := sys.inst("fast_1").level; got != cmp.Level(5) {
		t.Errorf("fastest level = %v, must hold", got)
	}
}

func TestSaverHoldBand(t *testing.T) {
	sys := newFakeSystem(200, 8, cmp.Level(5), "A")
	agg := aggWith(sys, 25*time.Second)
	ingestQoS(agg, map[string]instSample{"A_1": {0, 800 * time.Millisecond}}, 870*time.Millisecond)
	s := NewPowerChiefSaver(time.Second, DefaultConfig())
	if out := s.Adjust(sys, agg); out.Kind != BoostNone {
		t.Errorf("acted inside the hold band: %v", out.Kind)
	}
}

func TestSaverValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero QoS accepted")
		}
	}()
	NewPowerChiefSaver(0, Config{})
}

func TestPegasusValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero QoS accepted")
		}
	}()
	NewPegasus(0)
}
