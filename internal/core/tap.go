package core

// DecisionRecord is one control tick of a planning policy, in replayable
// form: the Snapshot the decision read, the plan it emitted (encoded), and
// the outcome after actuation.
type DecisionRecord struct {
	Snapshot *Snapshot      `json:"snapshot"`
	Plan     []ActionRecord `json:"plan"`
	Outcome  BoostOutcome   `json:"outcome"`
}

// DecisionTap observes the decision path of a policy: one RecordDecision per
// adjust interval, after the plan applied. Taps run on the control loop's
// goroutine — implementations bound their own memory.
type DecisionTap interface {
	RecordDecision(rec DecisionRecord)
}

// TapSetter is implemented by policies that expose their decision path for
// recording; the control loop attaches the configured tap through it, the
// same way AuditSetter attaches the audit log.
type TapSetter interface {
	SetTap(DecisionTap)
}

// tapHolder is the embedded recording half of the planning policies: it
// captures the snapshot immediately before Plan and emits the record after
// apply, leaving the untapped path byte-identical to the pre-tap code.
type tapHolder struct {
	tap DecisionTap
}

// SetTap implements TapSetter.
func (t *tapHolder) SetTap(tp DecisionTap) { t.tap = tp }

// capture snapshots the decision inputs when a tap is attached; nil
// otherwise, so the untapped path never pays for a capture.
func (t *tapHolder) capture(sys System, stats StatsReader) *Snapshot {
	if t.tap == nil {
		return nil
	}
	return CaptureSnapshot(sys, stats)
}

// record emits the frame to the tap when one is attached.
func (t *tapHolder) record(snap *Snapshot, plan *ActionPlan, out BoostOutcome) {
	if t.tap == nil || snap == nil {
		return
	}
	t.tap.RecordDecision(DecisionRecord{Snapshot: snap, Plan: EncodePlan(plan), Outcome: out})
}
