package core

import (
	"powerchief/internal/stats"
)

// IngestDelta folds a batched statistics commit into the aggregator: every
// per-instance digest lands in that instance's queuing/serving windows (the
// exact O(bins) merge on bucketed windows), the optional end-to-end digest
// lands in the striped e2e window, and the lifetime fallback counters absorb
// the digest totals — so Eq. 1/2/3 read the same numbers whether the source
// shipped one record per completion or one delta per batch.
//
// All samples in the delta are folded at the aggregator's current clock
// reading: the receiver trusts no remote timestamps (the same
// instance-local-clock discipline as Ingest), so a batch's samples are
// displaced by at most the source's flush interval — the bounded staleness
// the flush triggers guarantee.
//
// The delta's query count is added to the ingested total. Callers that
// measure end-to-end latency themselves (the dist Command Center observes
// every completion directly) should ship deltas without an E2E digest and
// keep counting completions via Ingest.
func (a *Aggregator) IngestDelta(d *stats.Delta) error {
	if d.Empty() {
		return nil
	}
	if err := d.Validate(); err != nil {
		return err
	}
	now := a.now()
	for i := range d.Insts {
		id := &d.Insts[i]
		is := a.shard(id.Instance)
		is.mu.Lock()
		at := now
		if at < is.last {
			at = is.last
		} else {
			is.last = at
		}
		if err := stats.FoldDigest(is.queuing, at, id.Queuing); err != nil {
			is.mu.Unlock()
			return err
		}
		if err := stats.FoldDigest(is.serving, at, id.Serving); err != nil {
			is.mu.Unlock()
			return err
		}
		is.mu.Unlock()
		if id.Queuing != nil {
			is.lifeCount.Add(id.Queuing.Count)
			is.lifeQueuing.Add(id.Queuing.SumNS)
		}
		if id.Serving != nil {
			is.lifeServing.Add(id.Serving.SumNS)
		}
	}
	if d.E2E != nil && d.E2E.Count > 0 {
		// Spread the batch across the stripes by sequence number so one
		// chatty source does not serialize behind a single stripe lock.
		if err := a.e2e.FoldDigest(d.Seq, now, d.E2E); err != nil {
			return err
		}
	}
	if d.Queries > 0 {
		a.ingested.Add(d.Queries)
	}
	return nil
}
