package core

import (
	"fmt"

	"powerchief/internal/cmp"
)

// The plan/apply split: policies *decide* against a PlanView — a budget
// overlay that records intended mutations instead of performing them — and
// the Executor *actuates* the resulting ActionPlan against the real system.
// Separating the two keeps the decision kernel pure (it can be unit-tested,
// dry-run and replayed) and gives actuation a single choke point where the
// budget is validated, the audit log is written, and a partial failure — an
// RPC error halfway through a distributed plan — is rolled back instead of
// leaving the deployment between two level assignments. See DESIGN.md §5g.

// ActionReason tags why an action is in the plan, so the Executor can emit
// the matching audit event (recycle donors, deboosts, relaunches) without
// re-deriving intent from the action sequence.
type ActionReason int

const (
	// ReasonBoost marks the default actuation of a boosting decision.
	ReasonBoost ActionReason = iota
	// ReasonRecycle marks a donor frequency step freeing power (Algorithm 2).
	ReasonRecycle
	// ReasonDeboost marks the power saver stepping a fast instance down.
	ReasonDeboost
	// ReasonRelaunch marks the saver launching an instance back during QoS
	// recovery.
	ReasonRelaunch
	// ReasonRebalance marks a fleet coordinator re-granting a node's budget
	// from the periodic metric-weighted redistribution.
	ReasonRebalance
	// ReasonReadmit marks the floor grant that re-admits a recovered node.
	ReasonReadmit
)

// Action is one typed mutation of the deployment. The four kinds mirror the
// Command Center's actuation surface: DVFS transitions, instance cloning,
// instance withdraw and withdraw-epoch resets.
type Action interface {
	// Describe renders the action for errors and logs.
	Describe() string
}

// SetLevelAction is a DVFS transition of one instance.
type SetLevelAction struct {
	// Instance is the plan's handle on the target — resolved to the real
	// instance by the Executor (planned clones resolve to the instance the
	// preceding CloneAction launched).
	Instance Instance
	// From and To are the levels before and after the transition; From is
	// what a rollback restores.
	From, To cmp.Level
	// Reason tags the intent for audit.
	Reason ActionReason
}

// Describe implements Action.
func (a *SetLevelAction) Describe() string {
	return fmt.Sprintf("set-level %s %d→%d", a.Instance.Name(), int(a.From), int(a.To))
}

// CloneAction launches a new instance of Stage at Level, stealing half of
// Source's queued work (instance boosting, §5.1).
type CloneAction struct {
	// Stage is the real stage handle (stages are never created by plans).
	Stage StageControl
	// Source is the instance being cloned.
	Source Instance
	// Level is the frequency the clone launches at (the source's level at
	// plan time); its power model cost is what the plan charged the budget.
	Level cmp.Level
	// Reason tags the intent for audit.
	Reason ActionReason

	// ref is the plan's placeholder for the not-yet-launched clone; the
	// Executor binds it to the realized instance so later actions referring
	// to the clone resolve. Nil for hand-built plans.
	ref *planInstance
}

// Describe implements Action.
func (a *CloneAction) Describe() string {
	return fmt.Sprintf("clone %s of stage %s at level %d", a.Source.Name(), a.Stage.Name(), int(a.Level))
}

// WithdrawAction drains Victim, redirecting its load to Target (or a
// dispatcher-chosen instance when Target is nil). Withdraws only free power,
// so they are never rolled back: an applied withdraw keeps the draw under
// the budget no matter where the plan fails.
type WithdrawAction struct {
	Stage  StageControl
	Victim Instance
	Target Instance
}

// Describe implements Action.
func (a *WithdrawAction) Describe() string {
	return fmt.Sprintf("withdraw %s from stage %s", a.Victim.Name(), a.Stage.Name())
}

// ResetEpochAction starts a new withdraw accounting epoch on one instance.
// The Executor skips instances withdrawn earlier in the same plan.
type ResetEpochAction struct {
	Instance Instance
}

// Describe implements Action.
func (a *ResetEpochAction) Describe() string {
	return fmt.Sprintf("reset-epoch %s", a.Instance.Name())
}

// SetBudgetAction re-grants one fleet node's power budget. At the fleet
// layer the "system" is the cluster: Draw() is the sum of granted node
// budgets and Budget() the cluster cap, so the executor's budget replay
// (drawn += To−From per action) enforces the cluster invariant
// Σ granted ≤ cap at every intermediate state — which is why planners order
// decreases before increases. A rollback restores From.
type SetBudgetAction struct {
	// Node is the actuation handle (an RPC client in the real fleet, a sim
	// node in the DES).
	Node NodeControl
	// From and To are the granted budgets before and after; From is what a
	// rollback restores.
	From, To cmp.Watts
	// Reason tags the intent for audit (ReasonRebalance or ReasonReadmit).
	Reason ActionReason
}

// Describe implements Action.
func (a *SetBudgetAction) Describe() string {
	return fmt.Sprintf("set-budget %s %.2fW→%.2fW", a.Node.Name(), float64(a.From), float64(a.To))
}

// recycleSpan marks a contiguous run of plan actions produced by one power
// recycling pass, so the Executor can emit a single EventRecycle listing the
// donors once that run has been actuated — the same grouping the direct
// actuation path produced.
type recycleSpan struct {
	start, end int // action index range [start, end)
	freed      cmp.Watts
}

// ActionPlan is an ordered mutation program produced by one decision pass.
// Order matters: the budget arithmetic that validated the plan charges and
// refunds watts in exactly this sequence, so the Executor applies it in
// order and rolls it back in reverse.
type ActionPlan struct {
	Actions []Action

	// Outcome, when set, is the decision summary the Executor audits after a
	// successful apply (policies leave it nil on paths that never audited an
	// outcome). For instance boosts the Executor patches the realized clone
	// name in.
	Outcome *BoostOutcome

	recycles []recycleSpan
}

// Empty reports whether the plan mutates nothing.
func (p *ActionPlan) Empty() bool { return p == nil || len(p.Actions) == 0 }

// Describe renders the plan for logs, one action per line.
func (p *ActionPlan) Describe() string {
	if p.Empty() {
		return "(empty plan)"
	}
	s := ""
	for i, a := range p.Actions {
		if i > 0 {
			s += "\n"
		}
		s += a.Describe()
	}
	return s
}
