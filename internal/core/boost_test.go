package core

import (
	"math"
	"testing"
	"time"

	"powerchief/internal/cmp"
)

func TestEstimateInstBoostHalvesQueuing(t *testing.T) {
	r := Ranked{QueueLen: 11, Queuing: 100 * time.Millisecond, Serving: 200 * time.Millisecond}
	// (11-1)·300/2 + 200 = 1700ms.
	if got := EstimateInstBoost(r); got != 1700*time.Millisecond {
		t.Errorf("T_inst = %v, want 1.7s", got)
	}
	// Empty instance: just the serving time.
	empty := Ranked{QueueLen: 0, Serving: 50 * time.Millisecond}
	if got := EstimateInstBoost(empty); got != 50*time.Millisecond {
		t.Errorf("T_inst(empty) = %v", got)
	}
}

func TestEstimateFreqBoostScalesWholeDelay(t *testing.T) {
	p := cmp.NewRooflineProfile(0) // CPU-bound
	r := Ranked{QueueLen: 11, Queuing: 100 * time.Millisecond, Serving: 200 * time.Millisecond}
	// Full delay = (11-1)·300 + 200 = 3200ms; α(1.2→2.4) = 0.5 → 1600ms.
	if got := EstimateFreqBoost(r, p, 0, cmp.MaxLevel); got != 1600*time.Millisecond {
		t.Errorf("T_freq = %v, want 1.6s", got)
	}
	// Same level: no change.
	if got := EstimateFreqBoost(r, p, cmp.MidLevel, cmp.MidLevel); got != 3200*time.Millisecond {
		t.Errorf("T_freq(no-op) = %v, want 3.2s", got)
	}
	empty := Ranked{QueueLen: 0, Serving: 100 * time.Millisecond}
	if got := EstimateFreqBoost(empty, p, 0, cmp.MaxLevel); got != 50*time.Millisecond {
		t.Errorf("T_freq(empty) = %v", got)
	}
}

func TestCrossoverInstanceWinsUnderDeepQueue(t *testing.T) {
	// The §2.3 observation: at high load (deep queue, queuing-dominated)
	// instance boosting wins; at low load frequency boosting wins.
	p := cmp.NewRooflineProfile(0.25)
	deep := Ranked{QueueLen: 30, Queuing: 150 * time.Millisecond, Serving: 300 * time.Millisecond}
	ti := EstimateInstBoost(deep)
	tf := EstimateFreqBoost(deep, p, cmp.MidLevel, cmp.MaxLevel)
	if ti >= tf {
		t.Errorf("deep queue: T_inst=%v should beat T_freq=%v", ti, tf)
	}
	// Shallow queue at a low frequency: doubling the clock (α = 0.5 for a
	// CPU-bound service) beats halving a two-query wait.
	cpu := cmp.NewRooflineProfile(0)
	shallow := Ranked{QueueLen: 3, Queuing: 1 * time.Millisecond, Serving: 300 * time.Millisecond}
	ti = EstimateInstBoost(shallow)
	tf = EstimateFreqBoost(shallow, cpu, 0, cmp.MaxLevel)
	if tf >= ti {
		t.Errorf("shallow queue: T_freq=%v should beat T_inst=%v", tf, ti)
	}
}

// rankedFor builds a ranking from the fake system with injected stats.
func rankedFor(sys *fakeSystem, agg *Aggregator) []Ranked {
	return Identifier{Metric: MetricExpectedDelay}.Rank(sys, agg)
}

func TestSelectBoostingChoosesInstanceUnderBurst(t *testing.T) {
	sys := newFakeSystem(100, 8, cmp.MidLevel, "ASR", "QA")
	agg := aggWith(sys, 25*time.Second)
	ingestStats(agg, "QA_1", 400*time.Millisecond, 400*time.Millisecond)
	ingestStats(agg, "ASR_1", 10*time.Millisecond, 100*time.Millisecond)
	sys.inst("QA_1").queueLen = 20

	out := Engine{}.SelectBoosting(sys, rankedFor(sys, agg))
	if out.Kind != BoostInstance {
		t.Fatalf("decision = %v (Ti=%v Tf=%v), want inst-boost", out.Kind, out.TInst, out.TFreq)
	}
	if out.NewInstance == "" {
		t.Error("no clone name reported")
	}
	if len(sys.stage("QA").ins) != 2 {
		t.Error("clone not added to the stage")
	}
	// The clone stole half the queue.
	if sys.inst("QA_1").queueLen != 10 {
		t.Errorf("bottleneck queue after clone = %d, want 10", sys.inst("QA_1").queueLen)
	}
}

func TestSelectBoostingPrefersFreqForShortQueue(t *testing.T) {
	sys := newFakeSystem(100, 8, cmp.MidLevel, "ASR", "QA")
	agg := aggWith(sys, 25*time.Second)
	ingestStats(agg, "QA_1", 0, 500*time.Millisecond)
	ingestStats(agg, "ASR_1", 0, 100*time.Millisecond)
	sys.inst("QA_1").queueLen = 2 // ql ≤ 2 → frequency boosting (Alg. 1 line 14)

	out := Engine{}.SelectBoosting(sys, rankedFor(sys, agg))
	if out.Kind != BoostFrequency {
		t.Fatalf("decision = %v, want freq-boost", out.Kind)
	}
	if got := sys.inst("QA_1").level; got <= cmp.MidLevel {
		t.Errorf("bottleneck level = %v, not raised", got)
	}
	if out.NewLevel != sys.inst("QA_1").level {
		t.Error("outcome level mismatch")
	}
}

func TestSelectBoostingRecyclesWhenNoHeadroom(t *testing.T) {
	m := cmp.DefaultModel()
	// Budget exactly covers two mid-level cores: zero headroom.
	sys := newFakeSystem(2*m.Power(cmp.MidLevel), 8, cmp.MidLevel, "ASR", "QA")
	agg := aggWith(sys, 25*time.Second)
	ingestStats(agg, "QA_1", 0, 500*time.Millisecond)
	ingestStats(agg, "ASR_1", 0, 50*time.Millisecond)
	sys.inst("QA_1").queueLen = 2

	out := Engine{}.SelectBoosting(sys, rankedFor(sys, agg))
	if out.Kind != BoostFrequency {
		t.Fatalf("decision = %v, want freq-boost", out.Kind)
	}
	if out.Recycled <= 0 {
		t.Error("no power recycled despite zero headroom")
	}
	// Power came from the fastest instance (ASR_1), which stepped down.
	if sys.inst("ASR_1").level >= cmp.MidLevel {
		t.Errorf("donor level = %v, not lowered", sys.inst("ASR_1").level)
	}
	if sys.Draw() > sys.Budget()+1e-9 {
		t.Error("budget exceeded after boost")
	}
}

func TestSelectBoostingSplitClonesWhenCloneUnaffordable(t *testing.T) {
	m := cmp.DefaultModel()
	// Tight budget: cloning at mid level (4.52W) cannot fit even after
	// recycling the one donor down to the floor, but splitting the
	// bottleneck's power across two lower-frequency instances does.
	sys := newFakeSystem(2*m.Power(cmp.MidLevel)+0.5, 8, cmp.MidLevel, "ASR", "QA")
	agg := aggWith(sys, 25*time.Second)
	ingestStats(agg, "QA_1", 300*time.Millisecond, 300*time.Millisecond)
	ingestStats(agg, "ASR_1", 0, 50*time.Millisecond)
	sys.inst("QA_1").queueLen = 25 // deep queue: wants an instance

	out := Engine{}.SelectBoosting(sys, rankedFor(sys, agg))
	if out.Kind != BoostInstance {
		t.Fatalf("decision = %v, want split-clone instance boost", out.Kind)
	}
	if len(sys.stage("QA").ins) != 2 {
		t.Fatal("no clone appeared")
	}
	if got := sys.inst("QA_1").level; got >= cmp.MidLevel {
		t.Errorf("bottleneck level = %v, want lowered for the split", got)
	}
	if sys.Draw() > sys.Budget()+1e-9 {
		t.Error("budget exceeded")
	}
}

func TestSelectBoostingFreqFallbackWhenSplitImpossible(t *testing.T) {
	m := cmp.DefaultModel()
	// Bottleneck already at the floor: a split cannot go lower, and the
	// headroom covers a small frequency raise but not a floor-level clone
	// (lines 11-12 of Algorithm 1).
	sys := newFakeSystem(2*m.Power(0)+1.0, 8, 0, "ASR", "QA")
	agg := aggWith(sys, 25*time.Second)
	ingestStats(agg, "QA_1", 300*time.Millisecond, 300*time.Millisecond)
	ingestStats(agg, "ASR_1", 0, 50*time.Millisecond)
	sys.inst("QA_1").queueLen = 25

	out := Engine{}.SelectBoosting(sys, rankedFor(sys, agg))
	if out.Kind != BoostFrequency {
		t.Fatalf("decision = %v, want freq-boost fallback", out.Kind)
	}
	if len(sys.stage("QA").ins) != 1 {
		t.Error("clone appeared despite insufficient power")
	}
	if sys.Draw() > sys.Budget()+1e-9 {
		t.Error("budget exceeded")
	}
}

func TestSelectBoostingNoFreeCoreUsesFrequency(t *testing.T) {
	sys := newFakeSystem(100, 0, cmp.MidLevel, "QA") // no free cores
	agg := aggWith(sys, 25*time.Second)
	ingestStats(agg, "QA_1", 300*time.Millisecond, 300*time.Millisecond)
	sys.inst("QA_1").queueLen = 25

	out := Engine{}.SelectBoosting(sys, rankedFor(sys, agg))
	if out.Kind != BoostFrequency {
		t.Fatalf("decision = %v, want freq-boost when no core is free", out.Kind)
	}
}

func TestSelectBoostingBottleneckAtMaxDeepQueueClones(t *testing.T) {
	sys := newFakeSystem(100, 8, cmp.MaxLevel, "ASR", "QA")
	agg := aggWith(sys, 25*time.Second)
	ingestStats(agg, "QA_1", 300*time.Millisecond, 300*time.Millisecond)
	ingestStats(agg, "ASR_1", 0, 50*time.Millisecond)
	sys.inst("QA_1").queueLen = 25

	// At max level α = 1, so T_freq equals the unboosted delay and instance
	// boosting must win.
	out := Engine{}.SelectBoosting(sys, rankedFor(sys, agg))
	if out.Kind != BoostInstance {
		t.Fatalf("decision = %v, want inst-boost at max frequency", out.Kind)
	}
}

func TestSelectBoostingNothingToDo(t *testing.T) {
	sys := newFakeSystem(100, 0, cmp.MaxLevel, "QA") // max level, no cores
	agg := aggWith(sys, 25*time.Second)
	ingestStats(agg, "QA_1", 0, 300*time.Millisecond)
	sys.inst("QA_1").queueLen = 1

	out := Engine{}.SelectBoosting(sys, rankedFor(sys, agg))
	if out.Kind != BoostNone {
		t.Fatalf("decision = %v, want none", out.Kind)
	}
}

func TestFreqBoostToMaxRecyclesAggressively(t *testing.T) {
	m := cmp.DefaultModel()
	sys := newFakeSystem(3*m.Power(cmp.MidLevel), 8, cmp.MidLevel, "ASR", "IMM", "QA")
	agg := aggWith(sys, 25*time.Second)
	ingestStats(agg, "QA_1", 200*time.Millisecond, 500*time.Millisecond)
	ingestStats(agg, "IMM_1", 0, 50*time.Millisecond)
	ingestStats(agg, "ASR_1", 10*time.Millisecond, 200*time.Millisecond)
	sys.inst("QA_1").queueLen = 5

	out := Engine{}.FreqBoostToMax(sys, rankedFor(sys, agg))
	if out.Kind != BoostFrequency {
		t.Fatalf("decision = %v", out.Kind)
	}
	qa := sys.inst("QA_1").level
	if qa <= cmp.MidLevel {
		t.Errorf("QA level = %v, not raised", qa)
	}
	// The fastest donor (IMM) was tapped before ASR.
	if sys.inst("IMM_1").level >= cmp.MidLevel {
		t.Error("fastest donor not recycled first")
	}
	if sys.Draw() > sys.Budget()+1e-9 {
		t.Error("budget exceeded")
	}
}

func TestFreqBoostToMaxAlreadyAtMax(t *testing.T) {
	sys := newFakeSystem(100, 8, cmp.MaxLevel, "QA")
	agg := aggWith(sys, 25*time.Second)
	ingestStats(agg, "QA_1", 0, 100*time.Millisecond)
	out := Engine{}.FreqBoostToMax(sys, rankedFor(sys, agg))
	if out.Kind != BoostNone {
		t.Errorf("decision = %v, want none", out.Kind)
	}
}

func TestInstBoostAlwaysGetsStuckAtFloor(t *testing.T) {
	m := cmp.DefaultModel()
	// Budget: two cores at the floor plus a hair — after both instances hit
	// level 0 no more power can be recycled, mirroring Figure 11(b).
	sys := newFakeSystem(2*m.Power(0)+0.1, 8, 0, "ASR", "QA")
	agg := aggWith(sys, 25*time.Second)
	ingestStats(agg, "QA_1", 200*time.Millisecond, 300*time.Millisecond)
	ingestStats(agg, "ASR_1", 0, 50*time.Millisecond)
	sys.inst("QA_1").queueLen = 30

	out := Engine{}.InstBoostAlways(sys, rankedFor(sys, agg))
	if out.Kind != BoostNone {
		t.Fatalf("decision = %v, want none (stuck)", out.Kind)
	}
	if len(sys.stage("QA").ins) != 1 {
		t.Error("clone appeared without power")
	}
}

func TestInstBoostAlwaysClonesWithRecycling(t *testing.T) {
	m := cmp.DefaultModel()
	sys := newFakeSystem(2*m.Power(cmp.MidLevel)+m.Power(0), 8, cmp.MidLevel, "ASR", "QA")
	agg := aggWith(sys, 25*time.Second)
	ingestStats(agg, "QA_1", 200*time.Millisecond, 300*time.Millisecond)
	ingestStats(agg, "ASR_1", 0, 50*time.Millisecond)
	sys.inst("QA_1").queueLen = 30

	out := Engine{}.InstBoostAlways(sys, rankedFor(sys, agg))
	if out.Kind != BoostInstance {
		t.Fatalf("decision = %v, want inst-boost", out.Kind)
	}
	if math.Abs(float64(sys.Draw()-sys.Budget())) > 3 {
		// Sanity: draw close to budget after the clone.
		t.Logf("draw=%v budget=%v", sys.Draw(), sys.Budget())
	}
	if sys.Draw() > sys.Budget()+1e-9 {
		t.Error("budget exceeded")
	}
}

func TestBoostKindStrings(t *testing.T) {
	for k, want := range map[BoostKind]string{
		BoostNone: "none", BoostFrequency: "freq-boost", BoostInstance: "inst-boost",
		BoostKind(9): "unknown-boost",
	} {
		if k.String() != want {
			t.Errorf("BoostKind(%d) = %q", k, k.String())
		}
	}
}
