package core

import (
	"testing"
	"time"

	"powerchief/internal/cmp"
)

func TestDefaultConfigMatchesTable2(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.BalanceThreshold != time.Second {
		t.Error("balance threshold != 1s")
	}
	if cfg.WithdrawInterval != 150*time.Second {
		t.Error("withdraw interval != 150s")
	}
	if cfg.WithdrawThreshold != 0.2 {
		t.Error("withdraw threshold != 20%")
	}
	if cfg.Metric != MetricExpectedDelay {
		t.Error("metric != expected-delay")
	}
	if err := cfg.Validate(); err != nil {
		t.Error(err)
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{BalanceThreshold: -1},
		{WithdrawInterval: -1},
		{WithdrawThreshold: -0.1},
		{WithdrawThreshold: 1.5},
	}
	for i, cfg := range bad {
		if cfg.Validate() == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestStaticPolicyNeverActs(t *testing.T) {
	sys := newFakeSystem(100, 8, cmp.MidLevel, "A", "B")
	agg := aggWith(sys, 25*time.Second)
	ingestStats(agg, "A_1", time.Second, time.Second)
	sys.inst("A_1").queueLen = 50
	out := Static{}.Adjust(sys, agg)
	if out.Kind != BoostNone {
		t.Error("baseline acted")
	}
	if sys.inst("A_1").level != cmp.MidLevel || sys.inst("B_1").level != cmp.MidLevel {
		t.Error("baseline changed frequencies")
	}
	if (Static{}).Name() != "baseline" {
		t.Error("name")
	}
}

func TestBalanceThresholdSuppressesAction(t *testing.T) {
	sys := newFakeSystem(100, 8, cmp.MidLevel, "A", "B")
	agg := aggWith(sys, 25*time.Second)
	// Tiny spread: 10ms < 1s threshold.
	ingestStats(agg, "A_1", 0, 110*time.Millisecond)
	ingestStats(agg, "B_1", 0, 100*time.Millisecond)
	cfg := DefaultConfig()
	for _, p := range []Policy{NewFreqBoost(cfg), NewInstBoost(cfg), NewPowerChief(cfg)} {
		if out := p.Adjust(sys, agg); out.Kind != BoostNone {
			t.Errorf("%s acted below the balance threshold", p.Name())
		}
	}
}

func TestFreqBoostPolicyRaisesBottleneck(t *testing.T) {
	sys := newFakeSystem(100, 8, cmp.MidLevel, "A", "B")
	agg := aggWith(sys, 25*time.Second)
	ingestStats(agg, "A_1", 2*time.Second, 2*time.Second)
	ingestStats(agg, "B_1", 0, 100*time.Millisecond)
	sys.inst("A_1").queueLen = 4
	p := NewFreqBoost(DefaultConfig())
	out := p.Adjust(sys, agg)
	if out.Kind != BoostFrequency {
		t.Fatalf("kind = %v", out.Kind)
	}
	if sys.inst("A_1").level != cmp.MaxLevel {
		t.Errorf("bottleneck level = %v, want max (ample headroom)", sys.inst("A_1").level)
	}
}

func TestInstBoostPolicyClonesBottleneck(t *testing.T) {
	sys := newFakeSystem(100, 8, cmp.MidLevel, "A", "B")
	agg := aggWith(sys, 25*time.Second)
	ingestStats(agg, "A_1", 2*time.Second, 2*time.Second)
	ingestStats(agg, "B_1", 0, 100*time.Millisecond)
	sys.inst("A_1").queueLen = 10
	p := NewInstBoost(DefaultConfig())
	out := p.Adjust(sys, agg)
	if out.Kind != BoostInstance {
		t.Fatalf("kind = %v", out.Kind)
	}
	if len(sys.stage("A").ins) != 2 {
		t.Error("no clone")
	}
}

func TestPowerChiefAdaptsTechniqueToQueueDepth(t *testing.T) {
	cfg := DefaultConfig()

	// Deep queue: instance boosting.
	sys := newFakeSystem(100, 8, cmp.MidLevel, "A", "B")
	agg := aggWith(sys, 25*time.Second)
	ingestStats(agg, "A_1", 2*time.Second, 2*time.Second)
	ingestStats(agg, "B_1", 0, 100*time.Millisecond)
	sys.inst("A_1").queueLen = 30
	pc := NewPowerChief(cfg)
	if out := pc.Adjust(sys, agg); out.Kind != BoostInstance {
		t.Errorf("deep queue decision = %v, want inst-boost", out.Kind)
	}

	// Shallow queue: frequency boosting.
	sys2 := newFakeSystem(100, 8, cmp.MidLevel, "A", "B")
	agg2 := aggWith(sys2, 25*time.Second)
	ingestStats(agg2, "A_1", 0, 3*time.Second)
	ingestStats(agg2, "B_1", 0, 100*time.Millisecond)
	sys2.inst("A_1").queueLen = 1
	pc2 := NewPowerChief(cfg)
	if out := pc2.Adjust(sys2, agg2); out.Kind != BoostFrequency {
		t.Errorf("shallow queue decision = %v, want freq-boost", out.Kind)
	}
}

func TestPowerChiefWithdrawsAtInterval(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BalanceThreshold = time.Hour // isolate the withdraw path
	sys := newFakeSystem(100, 8, cmp.MidLevel, "A")
	st := sys.stage("A")
	st.ins = append(st.ins, &fakeInstance{name: "A_2", stage: "A", level: cmp.MidLevel, util: 0.05, sys: sys})
	sys.draw += sys.model.Power(cmp.MidLevel)
	st.ins[0].util = 0.9
	agg := aggWith(sys, 25*time.Second)
	pc := NewPowerChief(cfg)

	// First adjust anchors the withdraw epoch; nothing happens yet.
	sys.now = 25 * time.Second
	pc.Adjust(sys, agg)
	if pc.Withdrawn != 0 {
		t.Fatal("withdraw before the interval elapsed")
	}
	// Interval not yet elapsed.
	sys.now = 100 * time.Second
	pc.Adjust(sys, agg)
	if pc.Withdrawn != 0 {
		t.Fatal("withdraw before the interval elapsed")
	}
	// 150s after the anchor: the underutilized A_2 goes.
	sys.now = 175 * time.Second
	pc.Adjust(sys, agg)
	if pc.Withdrawn != 1 {
		t.Fatalf("Withdrawn = %d, want 1", pc.Withdrawn)
	}
	if len(st.ins) != 1 {
		t.Error("instance not removed")
	}
	// Epochs were reset for survivors.
	if st.ins[0].epochResets == 0 {
		t.Error("utilization epochs not reset after withdraw pass")
	}
}

func TestPowerChiefWithdrawDisabled(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WithdrawInterval = 0
	sys := newFakeSystem(100, 8, cmp.MidLevel, "A")
	st := sys.stage("A")
	st.ins = append(st.ins, &fakeInstance{name: "A_2", stage: "A", level: cmp.MidLevel, util: 0.0, sys: sys})
	agg := aggWith(sys, 25*time.Second)
	pc := NewPowerChief(cfg)
	for now := time.Duration(0); now < 1000*time.Second; now += 25 * time.Second {
		sys.now = now
		pc.Adjust(sys, agg)
	}
	if pc.Withdrawn != 0 {
		t.Error("withdraw happened despite being disabled")
	}
}

func TestPolicyNames(t *testing.T) {
	cfg := DefaultConfig()
	for p, want := range map[Policy]string{
		NewFreqBoost(cfg):               "freq-boost",
		NewInstBoost(cfg):               "inst-boost",
		NewPowerChief(cfg):              "powerchief",
		NewPegasus(time.Second):         "pegasus",
		NewPowerChiefSaver(1, Config{}): "powerchief",
	} {
		if p.Name() != want {
			t.Errorf("Name = %q, want %q", p.Name(), want)
		}
	}
}

func TestPoliciesOnEmptySystem(t *testing.T) {
	sys := &fakeSystem{model: cmp.DefaultModel(), budget: 10}
	agg := aggWith(sys, time.Second)
	cfg := DefaultConfig()
	for _, p := range []Policy{NewFreqBoost(cfg), NewInstBoost(cfg), NewPowerChief(cfg), NewPegasus(time.Second), NewPowerChiefSaver(time.Second, cfg)} {
		if out := p.Adjust(sys, agg); out.Kind != BoostNone {
			t.Errorf("%s acted on an empty system", p.Name())
		}
	}
}
