package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"powerchief/internal/cmp"
)

func TestBudgetDomainHierarchyBasics(t *testing.T) {
	root := NewRootDomain("chip", 100)
	if root.Budget() != 100 || root.Granted() != 0 || root.Headroom() != 100 {
		t.Fatalf("fresh root: budget=%v granted=%v headroom=%v", root.Budget(), root.Granted(), root.Headroom())
	}
	a, err := root.NewChild("app-a", 60, nil)
	if err != nil {
		t.Fatalf("NewChild a: %v", err)
	}
	b, err := root.NewChild("app-b", 40, nil)
	if err != nil {
		t.Fatalf("NewChild b: %v", err)
	}
	if root.Granted() != 100 || root.Headroom() != 0 {
		t.Fatalf("after split: granted=%v headroom=%v", root.Granted(), root.Headroom())
	}
	if got := root.Child("app-b"); got != b {
		t.Fatalf("Child(app-b) = %v", got)
	}
	if got := root.Child("nope"); got != nil {
		t.Fatalf("Child(nope) = %v, want nil", got)
	}
	if kids := root.Children(); len(kids) != 2 || kids[0] != a || kids[1] != b {
		t.Fatalf("Children() = %v", kids)
	}
	if err := root.CheckInvariant(); err != nil {
		t.Fatalf("CheckInvariant: %v", err)
	}
}

func TestBudgetDomainRejectsOversubscription(t *testing.T) {
	root := NewRootDomain("chip", 100)
	a, _ := root.NewChild("a", 60, nil)
	b, _ := root.NewChild("b", 40, nil)

	// A third child cannot fit.
	if _, err := root.NewChild("c", 1, nil); !errors.Is(err, cmp.ErrBudgetExceeded) {
		t.Fatalf("overfull NewChild error = %v, want ErrBudgetExceeded", err)
	}
	// Duplicate names are rejected.
	if _, err := root.NewChild("a", 0, nil); err == nil {
		t.Fatal("duplicate child name accepted")
	}
	// Raising a child past the parent cap fails; the ledger is untouched.
	if err := a.SetBudget(61); !errors.Is(err, cmp.ErrBudgetExceeded) {
		t.Fatalf("raise error = %v, want ErrBudgetExceeded", err)
	}
	if a.Budget() != 60 {
		t.Fatalf("failed raise mutated grant to %v", a.Budget())
	}
	// Decrease-then-increase in the executor's order fits.
	if err := b.SetBudget(30); err != nil {
		t.Fatalf("lower b: %v", err)
	}
	if err := a.SetBudget(70); err != nil {
		t.Fatalf("raise a into freed headroom: %v", err)
	}
	if root.Granted() != 100 {
		t.Fatalf("granted = %v, want 100", root.Granted())
	}
	// Negative grants are rejected outright.
	if err := a.SetBudget(-1); err == nil {
		t.Fatal("negative grant accepted")
	}
}

func TestBudgetDomainShrinkBelowChildGrantsRejected(t *testing.T) {
	root := NewRootDomain("cluster", 100)
	node, _ := root.NewChild("node", 80, nil)
	if _, err := node.NewChild("stage", 50, nil); err != nil {
		t.Fatalf("grandchild: %v", err)
	}
	// The node has delegated 50W downward; shrinking it to 40W would strand
	// the grandchild's grant.
	if err := node.SetBudget(40); !errors.Is(err, cmp.ErrBudgetExceeded) {
		t.Fatalf("shrink error = %v, want ErrBudgetExceeded", err)
	}
	if node.Budget() != 80 {
		t.Fatalf("failed shrink mutated grant to %v", node.Budget())
	}
	// Shrinking to exactly the delegated sum is allowed.
	if err := node.SetBudget(50); err != nil {
		t.Fatalf("shrink to granted sum: %v", err)
	}
	if err := root.CheckInvariant(); err != nil {
		t.Fatalf("CheckInvariant: %v", err)
	}
}

func TestBudgetDomainActuatorFailureLeavesLedger(t *testing.T) {
	root := NewRootDomain("chip", 100)
	var actuated []cmp.Watts
	boom := errors.New("backend refused")
	fail := true
	a, _ := root.NewChild("a", 50, func(w cmp.Watts) error {
		if fail {
			return boom
		}
		actuated = append(actuated, w)
		return nil
	})
	if err := a.SetBudget(60); !errors.Is(err, boom) {
		t.Fatalf("actuator error = %v, want wrapped backend error", err)
	}
	if a.Budget() != 50 || len(actuated) != 0 {
		t.Fatalf("failed actuation committed: budget=%v actuated=%v", a.Budget(), actuated)
	}
	fail = false
	if err := a.SetBudget(60); err != nil {
		t.Fatalf("actuated raise: %v", err)
	}
	if a.Budget() != 60 || len(actuated) != 1 || actuated[0] != 60 {
		t.Fatalf("actuation not recorded: budget=%v actuated=%v", a.Budget(), actuated)
	}
}

// TestBudgetDomainExecutorRollback drives a SetBudgetAction plan through the
// real Executor against domain children and fails mid-plan: the applied
// prefix must roll back to the prior split and the invariant must hold
// throughout.
func TestBudgetDomainExecutorRollback(t *testing.T) {
	root := NewRootDomain("chip", 100)
	a, _ := root.NewChild("a", 60, nil)
	hang := false
	b, _ := root.NewChild("b", 40, func(w cmp.Watts) error {
		if hang {
			return errors.New("app loop hung mid-plan")
		}
		return nil
	})

	// Decrease a, then increase b — second action fails, first must revert.
	hang = true
	plan := &ActionPlan{Actions: []Action{
		&SetBudgetAction{Node: a, From: 60, To: 40, Reason: ReasonRebalance},
		&SetBudgetAction{Node: b, From: 40, To: 60, Reason: ReasonRebalance},
	}}
	var ex Executor
	sys := &domainArbiterSystem{root: root}
	res := ex.Apply(sys, nil, plan)
	if res.Err == nil {
		t.Fatal("Apply succeeded despite hung actuator")
	}
	if !res.RolledBack {
		t.Fatal("mid-plan failure did not roll back")
	}
	if a.Budget() != 60 || b.Budget() != 40 {
		t.Fatalf("rollback did not restore split: a=%v b=%v", a.Budget(), b.Budget())
	}
	if err := root.CheckInvariant(); err != nil {
		t.Fatalf("invariant after rollback: %v", err)
	}

	// Same plan with a healthy actuator commits.
	hang = false
	plan = &ActionPlan{Actions: []Action{
		&SetBudgetAction{Node: a, From: 60, To: 40, Reason: ReasonRebalance},
		&SetBudgetAction{Node: b, From: 40, To: 60, Reason: ReasonRebalance},
	}}
	if res := ex.Apply(sys, nil, plan); res.Err != nil {
		t.Fatalf("healthy Apply: %v", res.Err)
	}
	if a.Budget() != 40 || b.Budget() != 60 {
		t.Fatalf("plan not applied: a=%v b=%v", a.Budget(), b.Budget())
	}
}

// domainArbiterSystem is the minimal System an Executor needs to validate
// SetBudgetAction plans at the domain level: budget is the root cap, draw is
// the sum of grants.
type domainArbiterSystem struct {
	root *BudgetDomain
}

func (s *domainArbiterSystem) Now() time.Duration          { return 0 }
func (s *domainArbiterSystem) Stages() []StageControl      { return nil }
func (s *domainArbiterSystem) Quarantined() []StageControl { return nil }
func (s *domainArbiterSystem) PowerModel() cmp.PowerModel  { return cmp.DefaultModel() }
func (s *domainArbiterSystem) Budget() cmp.Watts           { return s.root.Budget() }
func (s *domainArbiterSystem) Draw() cmp.Watts             { return s.root.Granted() }
func (s *domainArbiterSystem) Headroom() cmp.Watts         { return s.root.Headroom() }
func (s *domainArbiterSystem) FreeCores() int              { return 0 }

// TestBudgetDomainConservationChaos hammers a two-level hierarchy from
// concurrent goroutines — re-grants, readers, invariant checks, and an
// actuator that fails randomly — and asserts Σ child grants ≤ parent budget
// is never observed violated. Run under -race in CI.
func TestBudgetDomainConservationChaos(t *testing.T) {
	const budget = 200
	root := NewRootDomain("chip", budget)
	flaky := func(seed int64) func(cmp.Watts) error {
		rng := rand.New(rand.NewSource(seed))
		var mu sync.Mutex
		return func(cmp.Watts) error {
			mu.Lock()
			defer mu.Unlock()
			if rng.Intn(4) == 0 {
				return errors.New("flaky backend")
			}
			return nil
		}
	}
	var kids []*BudgetDomain
	for i := 0; i < 4; i++ {
		c, err := root.NewChild(fmt.Sprintf("app-%d", i), 50, flaky(int64(i)))
		if err != nil {
			t.Fatalf("child %d: %v", i, err)
		}
		kids = append(kids, c)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Writers: each goroutine repeatedly tries random re-grants of one child.
	for i, c := range kids {
		wg.Add(1)
		go func(c *BudgetDomain, seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = c.SetBudget(cmp.Watts(rng.Intn(budget)))
			}
		}(c, int64(100+i))
	}
	// Checker: the invariant must hold at every observation.
	wg.Add(1)
	var checks int
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := root.CheckInvariant(); err != nil {
				t.Error(err)
				return
			}
			if g := root.Granted(); g > budget {
				t.Errorf("granted %v exceeds budget", g)
				return
			}
			checks++
		}
	}()
	time.Sleep(100 * time.Millisecond)
	close(stop)
	wg.Wait()
	if checks == 0 {
		t.Fatal("checker never ran")
	}
	if err := root.CheckInvariant(); err != nil {
		t.Fatalf("final invariant: %v", err)
	}
}

func TestDomainViewOverridesBudget(t *testing.T) {
	// Backend reports budget 100, draw 30, 6 free cores.
	base := &fakeSystem{model: cmp.DefaultModel(), budget: 100, draw: 30, freeCores: 6}
	root := NewRootDomain("chip", 100)
	grant, _ := root.NewChild("app", 45, nil)
	v := NewDomainView(base, grant)

	if v.Budget() != 45 {
		t.Fatalf("Budget = %v, want the 45W grant", v.Budget())
	}
	if v.Headroom() != 15 {
		t.Fatalf("Headroom = %v, want grant 45 - draw 30 = 15", v.Headroom())
	}
	if v.Domain() != grant {
		t.Fatal("Domain() lost the wrapped domain")
	}
	// FreeCores is capped by what the grant headroom can fund.
	min := v.PowerModel().MinPower()
	want := int(v.Headroom() / min)
	if want > base.FreeCores() {
		want = base.FreeCores()
	}
	if got := v.FreeCores(); got != want {
		t.Fatalf("FreeCores = %d, want %d", got, want)
	}
	// A re-grant is visible immediately through the view.
	if err := grant.SetBudget(80); err != nil {
		t.Fatalf("re-grant: %v", err)
	}
	if v.Budget() != 80 || v.Headroom() != 50 {
		t.Fatalf("after re-grant: budget=%v headroom=%v", v.Budget(), v.Headroom())
	}
}

func TestBudgetDomainEvict(t *testing.T) {
	root := NewRootDomain("chip", 100)
	a, _ := root.NewChild("a", 60, nil)
	root.NewChild("b", 40, nil)

	freed, err := root.Evict("a")
	if err != nil {
		t.Fatalf("Evict: %v", err)
	}
	if freed != 60 {
		t.Fatalf("Evict freed %v, want the 60W grant", freed)
	}
	if root.Granted() != 40 || root.Headroom() != 60 {
		t.Fatalf("after evict: granted=%v headroom=%v", root.Granted(), root.Headroom())
	}
	if root.Child("a") != nil {
		t.Fatal("evicted child still listed")
	}
	if err := root.CheckInvariant(); err != nil {
		t.Fatalf("CheckInvariant: %v", err)
	}
	// The detached domain rejects every further mutation.
	if err := a.SetBudget(10); err == nil {
		t.Fatal("SetBudget on an evicted domain accepted")
	}
	if _, err := a.NewChild("sub", 1, nil); err == nil {
		t.Fatal("NewChild on an evicted domain accepted")
	}
	if a.Budget() != 0 {
		t.Fatalf("evicted domain still holds %vW", a.Budget())
	}
	// The freed name and watts are available for re-admission.
	a2, err := root.NewChild("a", 55, nil)
	if err != nil {
		t.Fatalf("re-admission: %v", err)
	}
	if a2 == a {
		t.Fatal("re-admission returned the detached domain")
	}
	if root.Granted() != 95 {
		t.Fatalf("after re-admission: granted=%v", root.Granted())
	}
}

func TestBudgetDomainEvictRejections(t *testing.T) {
	root := NewRootDomain("chip", 100)
	app, _ := root.NewChild("app", 60, nil)
	app.NewChild("stage", 20, nil)

	if _, err := root.Evict("nope"); err == nil {
		t.Fatal("evicting an unknown child accepted")
	}
	// A child that still grants downward must reclaim first.
	if _, err := root.Evict("app"); err == nil {
		t.Fatal("evicting a domain with children accepted")
	}
	if _, err := app.Evict("stage"); err != nil {
		t.Fatalf("evicting the leaf: %v", err)
	}
	if _, err := root.Evict("app"); err != nil {
		t.Fatalf("evicting the emptied domain: %v", err)
	}
	if root.Granted() != 0 || root.Headroom() != 100 {
		t.Fatalf("after full teardown: granted=%v headroom=%v", root.Granted(), root.Headroom())
	}
}
