package core_test

import (
	"fmt"
	"time"

	"powerchief/internal/cmp"
	"powerchief/internal/core"
	"powerchief/internal/query"
	"powerchief/internal/sim"
	"powerchief/internal/stage"
)

// Example demonstrates the Command Center end to end on the simulator: the
// joint design delivers query-carried records to the aggregator, Equation 1
// ranks instances, and Algorithm 1 decides how to boost the bottleneck.
func Example() {
	eng := sim.NewEngine()
	chip := cmp.NewChip(16, cmp.DefaultModel(), 13.56)
	sys, err := stage.NewSystem(eng, chip, []stage.Spec{
		{Name: "ASR", Kind: stage.Pipeline, Profile: cmp.NewRooflineProfile(0.15), Instances: 1, Level: cmp.MidLevel},
		{Name: "QA", Kind: stage.Pipeline, Profile: cmp.NewRooflineProfile(0.25), Instances: 1, Level: cmp.MidLevel},
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	view := core.NewDESView(sys)
	agg := core.NewAggregator(25*time.Second, eng.Now)
	sys.OnComplete(agg.Ingest)

	// A burst of QA-heavy queries.
	for i := 0; i < 12; i++ {
		at := time.Duration(i) * 300 * time.Millisecond
		qid := query.ID(i + 1)
		eng.ScheduleAt(at, func() {
			sys.Submit(query.New(qid, at, [][]time.Duration{
				{100 * time.Millisecond},
				{800 * time.Millisecond},
			}))
		})
	}
	eng.RunUntil(5 * time.Second)

	ranked := core.Identifier{Metric: core.MetricExpectedDelay}.Rank(view, agg)
	fmt.Println("bottleneck:", ranked[0].Instance.Name())
	out := core.Engine{}.SelectBoosting(view, ranked)
	fmt.Println("decision:", out.Kind, "on", out.Target)
	fmt.Println("budget respected:", chip.CheckInvariant() == nil)
	// Output:
	// bottleneck: QA_1
	// decision: inst-boost on QA_1
	// budget respected: true
}
