package loadgen

import (
	"math"
	"time"
)

// DiurnalSchedule is the day-scale arrival program: a sinusoidal rate
// mean + amp·sin(2π(t+phase)/period), the open-loop counterpart of
// workload.Diurnal. Arrivals are placed by inverting the cumulative count
//
//	N(t) = mean·t + (amp/ω)·(cos(ω·phase) − cos(ω·(t+phase))), ω = 2π/period
//
// so the k-th arrival is exactly N⁻¹(k): a pure function of the parameters
// with no accumulation drift and no randomness — deterministic and
// shardable like Ramp. Amp must not exceed mean (the rate never goes
// negative), which also keeps N strictly increasing and the inversion
// single-valued.
type DiurnalSchedule struct {
	MeanQPS float64
	AmpQPS  float64
	Period  time.Duration
	Phase   time.Duration
}

// Name implements Schedule.
func (d DiurnalSchedule) Name() string { return "diurnal" }

// Rate implements Schedule: the sinusoid's long-run average is its mean.
func (d DiurnalSchedule) Rate() float64 { return d.MeanQPS }

// cumulative is N(t): total intended arrivals in [0, t].
func (d DiurnalSchedule) cumulative(t float64) float64 {
	omega := 2 * math.Pi / d.Period.Seconds()
	phase := d.Phase.Seconds()
	return d.MeanQPS*t + d.AmpQPS/omega*(math.Cos(omega*phase)-math.Cos(omega*(t+phase)))
}

// Arrivals implements Schedule. Each offset is found by bisection on the
// strictly increasing cumulative count, from the previous arrival forward —
// ~60 cosine evaluations per arrival, exact to the nanosecond and
// independent of the horizon.
func (d DiurnalSchedule) Arrivals(horizon time.Duration) []time.Duration {
	if d.MeanQPS <= 0 || d.AmpQPS < 0 || d.AmpQPS > d.MeanQPS || d.Period <= 0 || horizon <= 0 {
		return nil
	}
	T := horizon.Seconds()
	out := make([]time.Duration, 0, int(d.MeanQPS*T)+1)
	lo := 0.0
	for k := 0; ; k++ {
		// Bracket: the rate never exceeds mean+amp, so N⁻¹(k) is at least
		// k/(mean+amp) past the origin; expand the upper bound until it
		// clears k.
		hi := lo + 1/d.MeanQPS
		for d.cumulative(hi) < float64(k) {
			hi = lo + 2*(hi-lo)
		}
		for i := 0; i < 64 && hi-lo > 1e-10; i++ {
			mid := (lo + hi) / 2
			if d.cumulative(mid) < float64(k) {
				lo = mid
			} else {
				hi = mid
			}
		}
		at := time.Duration(hi * float64(time.Second))
		if at >= horizon {
			return out
		}
		out = append(out, at)
		lo = hi
	}
}

// FlashSchedule is the flash-crowd arrival program: a base rate with one
// burst window [At, At+Duration) at the peak rate — the multi-tenant
// benchmark's "one tenant suddenly hot" shape. The cumulative count is
// piecewise linear, so the k-th arrival has a closed form per segment and
// the schedule is exact, deterministic and drift-free.
type FlashSchedule struct {
	BaseQPS  float64
	PeakQPS  float64
	At       time.Duration
	Duration time.Duration
}

// Name implements Schedule.
func (f FlashSchedule) Name() string { return "flash" }

// Rate implements Schedule: the long-run intended rate is the base — the
// flash is a transient, not a change of regime.
func (f FlashSchedule) Rate() float64 { return f.BaseQPS }

// Arrivals implements Schedule: each segment contributes arrivals at exact
// 1/rate spacing from the segment's cumulative origin, so offsets are
// N⁻¹(k) of the piecewise-linear cumulative count.
func (f FlashSchedule) Arrivals(horizon time.Duration) []time.Duration {
	if f.BaseQPS < 0 || f.PeakQPS < 0 || f.BaseQPS+f.PeakQPS <= 0 ||
		f.At < 0 || f.Duration <= 0 || horizon <= 0 {
		return nil
	}
	// Segment boundaries and the cumulative count at each.
	t1 := f.At.Seconds()
	t2 := (f.At + f.Duration).Seconds()
	c1 := f.BaseQPS * t1
	c2 := c1 + f.PeakQPS*t2 - f.PeakQPS*t1
	var out []time.Duration
	for k := 0; ; k++ {
		fk := float64(k)
		var tk float64
		switch {
		case fk < c1:
			tk = fk / f.BaseQPS
		case fk < c2:
			tk = t1 + (fk-c1)/f.PeakQPS
		case f.BaseQPS > 0:
			tk = t2 + (fk-c2)/f.BaseQPS
		default:
			return out // base 0: nothing after the flash
		}
		at := time.Duration(tk * float64(time.Second))
		if at >= horizon {
			return out
		}
		out = append(out, at)
	}
}
