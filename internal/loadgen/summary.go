package loadgen

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"
)

// Summary is the JSON-serializable digest of one run — the shape
// cmd/powerbench writes with -json and CI uploads as an artifact.
type Summary struct {
	Target    string  `json:"target"`
	Schedule  string  `json:"schedule"`
	RateQPS   float64 `json:"rate_qps"`
	Duration  string  `json:"duration"`
	Warmup    string  `json:"warmup,omitempty"`
	Workers   int     `json:"workers"`
	Seed      int64   `json:"seed"`
	SelfPaced bool    `json:"self_paced,omitempty"`

	Issued    uint64 `json:"issued"`
	Completed uint64 `json:"completed"`
	Trimmed   uint64 `json:"trimmed,omitempty"`
	Errors    uint64 `json:"errors"`

	WallMS      float64 `json:"wall_ms"`
	AchievedQPS float64 `json:"achieved_qps"`

	// Latency percentiles are the coordinated-omission-safe
	// intended-start-to-completion distribution, in milliseconds.
	LatencyMS Quantiles `json:"latency_ms"`
	// ServiceMS is the send-time (pickup-to-completion) diagnostic
	// distribution; absent for self-paced targets.
	ServiceMS *Quantiles `json:"service_ms,omitempty"`
}

// Quantiles summarizes one latency distribution in milliseconds.
type Quantiles struct {
	Mean float64 `json:"mean"`
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P99  float64 `json:"p99"`
	P999 float64 `json:"p999"`
	Max  float64 `json:"max"`
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// Summarize digests a result.
func Summarize(r *Result) Summary {
	s := Summary{
		Target:      r.Target,
		Schedule:    r.Schedule,
		RateQPS:     r.Rate,
		Duration:    r.Duration.String(),
		Workers:     r.Workers,
		Seed:        r.Seed,
		SelfPaced:   r.SelfPaced,
		Issued:      r.Issued,
		Completed:   r.Completed,
		Trimmed:     r.Trimmed,
		Errors:      r.Errors,
		WallMS:      ms(r.Wall),
		AchievedQPS: r.AchievedQPS(),
		LatencyMS:   quantilesOf(r.Latency),
	}
	if r.Warmup > 0 {
		s.Warmup = r.Warmup.String()
	}
	if r.Service.Count() > 0 {
		q := quantilesOf(r.Service)
		s.ServiceMS = &q
	}
	return s
}

func quantilesOf(h interface {
	Mean() time.Duration
	Quantile(float64) time.Duration
	Max() time.Duration
}) Quantiles {
	return Quantiles{
		Mean: ms(h.Mean()),
		P50:  ms(h.Quantile(0.50)),
		P90:  ms(h.Quantile(0.90)),
		P99:  ms(h.Quantile(0.99)),
		P999: ms(h.Quantile(0.999)),
		Max:  ms(h.Max()),
	}
}

// WriteTable renders one or more summaries as a human-readable table; rows
// share the header, so a sweep prints as one block.
func WriteTable(w io.Writer, sums ...Summary) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "target\tsched\trate\tachieved\tops\terrs\tmean\tp50\tp99\tp99.9\tmax")
	for _, s := range sums {
		fmt.Fprintf(tw, "%s\t%s\t%.1f/s\t%.1f/s\t%d\t%d\t%.1fms\t%.1fms\t%.1fms\t%.1fms\t%.1fms\n",
			s.Target, s.Schedule, s.RateQPS, s.AchievedQPS,
			s.Completed, s.Errors,
			s.LatencyMS.Mean, s.LatencyMS.P50, s.LatencyMS.P99, s.LatencyMS.P999, s.LatencyMS.Max)
	}
	return tw.Flush()
}
