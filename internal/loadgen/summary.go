package loadgen

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/debug"
	"sync"
	"text/tabwriter"
	"time"

	"powerchief/internal/stats"
)

// Provenance records where a summary came from, so the cmp regression gate
// can refuse to compare apples to oranges (and flag drifting toolchains):
// the build's git revision, the Go toolchain, the host that ran it, and the
// number of cooperating benchmark agents that produced the numbers.
type Provenance struct {
	GitRevision string `json:"git_revision,omitempty"`
	GoVersion   string `json:"go_version,omitempty"`
	Hostname    string `json:"hostname,omitempty"`
	Agents      int    `json:"agents,omitempty"`

	// IngestBatch and IngestIntervalMS record the dist target's delta-ingest
	// batching configuration (zero: per-record ingest). Runs with different
	// batching have different statistic-staleness bounds, so cmp warns rather
	// than silently comparing them.
	IngestBatch      int     `json:"ingest_batch,omitempty"`
	IngestIntervalMS float64 `json:"ingest_interval_ms,omitempty"`
}

var (
	provOnce   sync.Once
	provCached Provenance
)

// CaptureProvenance reads the build and host identity once (git revision
// from the binary's embedded VCS info, "unknown" outside a stamped build).
func CaptureProvenance() Provenance {
	provOnce.Do(func() {
		provCached = Provenance{GitRevision: "unknown", GoVersion: runtime.Version(), Agents: 1}
		if host, err := os.Hostname(); err == nil {
			provCached.Hostname = host
		}
		if bi, ok := debug.ReadBuildInfo(); ok {
			for _, s := range bi.Settings {
				if s.Key == "vcs.revision" {
					provCached.GitRevision = s.Value
				}
			}
		}
	})
	return provCached
}

// Summary is the JSON-serializable digest of one run — the shape
// cmd/powerbench writes with -json and CI uploads as an artifact. Since the
// distributed-benchmark PR it carries the full serialized latency histogram
// (not just quantiles), so N agent summaries merge exactly into one
// cluster-wide distribution; the quantile block is derived from the
// histogram and kept for human readability and old tooling.
type Summary struct {
	Target    string  `json:"target"`
	Schedule  string  `json:"schedule"`
	RateQPS   float64 `json:"rate_qps"`
	Duration  string  `json:"duration"`
	Warmup    string  `json:"warmup,omitempty"`
	Workers   int     `json:"workers"`
	Seed      int64   `json:"seed"`
	SelfPaced bool    `json:"self_paced,omitempty"`

	// Agents is the number of cooperating load generators behind the
	// numbers: 1 for a single-process run, N for a coordinator-merged one.
	Agents int `json:"agents,omitempty"`
	// StoppedEarly marks a run cancelled by throughput auto-termination.
	StoppedEarly bool `json:"stopped_early,omitempty"`

	Issued    uint64 `json:"issued"`
	Completed uint64 `json:"completed"`
	Trimmed   uint64 `json:"trimmed,omitempty"`
	Errors    uint64 `json:"errors"`

	WallMS      float64 `json:"wall_ms"`
	AchievedQPS float64 `json:"achieved_qps"`

	// Latency percentiles are the coordinated-omission-safe
	// intended-start-to-completion distribution, in milliseconds.
	LatencyMS Quantiles `json:"latency_ms"`
	// ServiceMS is the send-time (pickup-to-completion) diagnostic
	// distribution; absent for self-paced targets.
	ServiceMS *Quantiles `json:"service_ms,omitempty"`

	// LatencyHist is the serialized log-spaced latency histogram the
	// quantiles derive from; agent digests with one growth factor merge
	// exactly (stats.MergeDigests).
	LatencyHist *stats.HistogramDigest `json:"latency_hist,omitempty"`
	// ServiceHist is the serialized send-time distribution, when recorded.
	ServiceHist *stats.HistogramDigest `json:"service_hist,omitempty"`

	// Provenance identifies the build, host and agent count behind the run.
	Provenance *Provenance `json:"provenance,omitempty"`
}

// Quantiles summarizes one latency distribution in milliseconds.
type Quantiles struct {
	Mean float64 `json:"mean"`
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P99  float64 `json:"p99"`
	P999 float64 `json:"p999"`
	Max  float64 `json:"max"`
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// Summarize digests a result.
func Summarize(r *Result) Summary {
	prov := CaptureProvenance()
	s := Summary{
		Target:       r.Target,
		Schedule:     r.Schedule,
		RateQPS:      r.Rate,
		Duration:     r.Duration.String(),
		Workers:      r.Workers,
		Seed:         r.Seed,
		SelfPaced:    r.SelfPaced,
		Agents:       1,
		StoppedEarly: r.Stopped,
		Issued:       r.Issued,
		Completed:    r.Completed,
		Trimmed:      r.Trimmed,
		Errors:       r.Errors,
		WallMS:       ms(r.Wall),
		AchievedQPS:  r.AchievedQPS(),
		LatencyMS:    quantilesOf(r.Latency),
		LatencyHist:  r.Latency.Digest(),
		Provenance:   &prov,
	}
	if r.Warmup > 0 {
		s.Warmup = r.Warmup.String()
	}
	if r.Service.Count() > 0 {
		q := quantilesOf(r.Service)
		s.ServiceMS = &q
		s.ServiceHist = r.Service.Digest()
	}
	return s
}

func quantilesOf(h interface {
	Mean() time.Duration
	Quantile(float64) time.Duration
	Max() time.Duration
}) Quantiles {
	return Quantiles{
		Mean: ms(h.Mean()),
		P50:  ms(h.Quantile(0.50)),
		P90:  ms(h.Quantile(0.90)),
		P99:  ms(h.Quantile(0.99)),
		P999: ms(h.Quantile(0.999)),
		Max:  ms(h.Max()),
	}
}

// QuantilesFromDigest derives the human-readable quantile block from a
// serialized histogram — the path a merged (multi-agent) summary takes.
func QuantilesFromDigest(d *stats.HistogramDigest) (Quantiles, error) {
	h, err := stats.FromDigest(d)
	if err != nil {
		return Quantiles{}, fmt.Errorf("loadgen: deriving quantiles: %w", err)
	}
	return quantilesOf(h), nil
}

// WriteTable renders one or more summaries as a human-readable table; rows
// share the header, so a sweep prints as one block.
func WriteTable(w io.Writer, sums ...Summary) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "target\tsched\trate\tachieved\tops\terrs\tmean\tp50\tp99\tp99.9\tmax")
	for _, s := range sums {
		fmt.Fprintf(tw, "%s\t%s\t%.1f/s\t%.1f/s\t%d\t%d\t%.1fms\t%.1fms\t%.1fms\t%.1fms\t%.1fms\n",
			s.Target, s.Schedule, s.RateQPS, s.AchievedQPS,
			s.Completed, s.Errors,
			s.LatencyMS.Mean, s.LatencyMS.P50, s.LatencyMS.P99, s.LatencyMS.P999, s.LatencyMS.Max)
	}
	return tw.Flush()
}
