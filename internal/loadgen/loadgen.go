package loadgen

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"powerchief/internal/query"
	"powerchief/internal/stats"
	"powerchief/internal/telemetry"
)

// Op is one benchmark operation: a query's per-stage work plus the virtual
// offset at which the schedule intends it to start. Targets receive the Op,
// execute the query to completion, and may report a latency measured in
// their own clock domain via Measured.
type Op struct {
	// ID is the 1-based operation index, usable as a query ID.
	ID query.ID
	// Intended is the schedule's start offset from the run origin. Latency
	// is measured from this point, never from the moment a worker actually
	// issued the operation — the coordinated-omission guard.
	Intended time.Duration
	// Work is the per-stage service demand of the query.
	Work [][]time.Duration
	// Measured, when set by the target, overrides the runner's wall-clock
	// measurement. Targets that complete operations in their own clock
	// domain — the discrete-event engine — report the virtual
	// intended-start-to-completion latency here.
	Measured time.Duration
}

// Target is anything the generator can drive: the in-process live engine,
// the discrete-event engine, the distributed runtime, or a test stub. Do
// executes one operation to completion and must be safe for concurrent use;
// errors are counted per run, not retried (retry belongs to the target — the
// dist target reuses the rpc client's deadline/retry machinery).
type Target interface {
	// Name identifies the target in summaries ("live", "des", "dist").
	Name() string
	// Do executes op to completion.
	Do(op *Op) error
	// Close releases the target's resources.
	Close() error
}

// Preparer is an optional Target extension: targets that want the full
// schedule before the first Do — the DES target pre-schedules every arrival
// as a virtual-time event so queries overlap exactly as the schedule
// dictates — implement it. Run calls Prepare once, before dispatch starts.
type Preparer interface {
	Prepare(ops []*Op) error
}

// SelfPacing is an optional Target extension for targets that embed the
// schedule in their own clock domain (the DES, whose Prepare turns every
// arrival into a virtual-time event). The runner then releases operations as
// fast as workers drain them instead of pacing in wall time — the run
// finishes in however long the simulation takes, and throughput is reported
// against the schedule horizon rather than the wall clock.
type SelfPacing interface {
	SelfPacing() bool
}

// Options configures one benchmark run.
type Options struct {
	// Schedule is the arrival plan (required).
	Schedule Schedule
	// Duration is the generation horizon (required). Arrivals stop at the
	// horizon; the run then drains in-flight operations.
	Duration time.Duration
	// Warmup trims operations whose intended start falls before this offset
	// from the recorded distributions (they still execute, warming queues
	// and caches).
	Warmup time.Duration
	// Workers is the number of issuing goroutines (default 16). Workers cap
	// target concurrency only: when all are busy, operations queue inside
	// the runner and their wait is charged to recorded latency.
	Workers int
	// Seed drives work drawing (and nothing else — the schedule carries its
	// own seed).
	Seed int64
	// DrawWork samples the per-stage work matrix of each operation
	// (required); app.App.DrawWork curried with the branch layout satisfies
	// this.
	DrawWork func(rng *rand.Rand) [][]time.Duration
	// HistGrowth is the latency histogram bucket growth factor (default
	// 1.05, ≤5% quantile error).
	HistGrowth float64
	// ShardIndex/ShardCount stride-shard one global schedule across N
	// cooperating generators (the distributed benchmark agents): every
	// generator materializes the full schedule and the full work-draw
	// sequence — so the union of what N shards execute is exactly the
	// single-process op set, IDs, intended offsets and work included — but
	// executes only the arrivals whose index ≡ ShardIndex (mod ShardCount).
	// ShardCount ≤ 1 disables sharding.
	ShardIndex int
	ShardCount int
	// Stop, when non-nil, cancels the arrival process early when closed:
	// the dispatcher stops releasing operations, in-flight ones drain, and
	// the run returns the statistics recorded so far with Result.Stopped
	// set — the hook the coordinator's throughput auto-termination uses.
	Stop <-chan struct{}
	// Metrics, when set, receives live per-run series — ops started,
	// completed, errors, in-flight, intended rate and a p99 gauge — so a
	// /metrics endpoint reflects the benchmark while it runs.
	Metrics *telemetry.Registry
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = 16
	}
	if o.HistGrowth == 0 {
		o.HistGrowth = 1.05
	}
	return o
}

// Result is one run's summary.
type Result struct {
	Target   string
	Schedule string
	Rate     float64 // intended rate (ops/s)
	Duration time.Duration
	Warmup   time.Duration
	Workers  int
	Seed     int64

	Issued    uint64 // operations dispatched
	Completed uint64 // operations finished without error (post-warmup)
	Trimmed   uint64 // operations excluded as warmup
	Errors    uint64 // operations that returned an error

	// Wall is the real elapsed time of the run, dispatch through drain.
	Wall time.Duration
	// SelfPaced records that the target ran the schedule in its own clock
	// domain (see SelfPacing); latencies are then virtual and throughput is
	// defined over the schedule horizon.
	SelfPaced bool
	// Stopped records that the arrival process was cancelled early through
	// Options.Stop (auto-termination).
	Stopped bool
	// Shards is the stride-shard denominator the run executed under (0 or 1:
	// the whole schedule).
	Shards int

	// Latency is the coordinated-omission-safe distribution: intended start
	// to completion. A stalled target inflates it with the backlog wait.
	Latency *stats.Histogram
	// Service is the send-time distribution: worker pickup to completion.
	// It is blind to backlog — kept as a diagnostic precisely to show the
	// gap coordinated omission would hide. Targets reporting Measured
	// latencies (the DES) do not populate it.
	Service *stats.Histogram
}

// AchievedQPS is the completed-operation throughput: over the wall time for
// wall-paced runs, over the schedule horizon for self-paced (virtual-time)
// runs.
func (r *Result) AchievedQPS() float64 {
	span := r.Wall
	if r.SelfPaced {
		span = r.Duration - r.Warmup
	}
	if span <= 0 {
		return 0
	}
	return float64(r.Completed) / span.Seconds()
}

// opQueue is an unbounded FIFO. The dispatcher must never block on slow
// workers — blocking would let the target back-pressure the arrival process,
// the precise failure mode an open-loop generator exists to avoid — so the
// queue grows instead.
type opQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	ops    []*Op
	closed bool
}

func newOpQueue() *opQueue {
	q := &opQueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *opQueue) push(op *Op) {
	q.mu.Lock()
	q.ops = append(q.ops, op)
	q.mu.Unlock()
	q.cond.Signal()
}

func (q *opQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

// pop blocks until an op is available or the queue is closed and drained.
func (q *opQueue) pop() (*Op, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.ops) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.ops) == 0 {
		return nil, false
	}
	op := q.ops[0]
	q.ops[0] = nil
	q.ops = q.ops[1:]
	return op, true
}

func (q *opQueue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.ops)
}

// runState is the shared mutable state of one run; metrics gauges read it
// under its lock while the run is in flight.
type runState struct {
	mu      sync.Mutex
	res     *Result
	started uint64
	done    uint64
}

// Run executes one open-loop benchmark against the target: it materializes
// the schedule, dispatches operations at their intended times across the
// worker pool, waits for the drain, and returns the summary. The arrival
// process never waits for the target; recorded latency runs from each
// operation's intended start, so queueing caused by a saturated or stalled
// target is measured, not silently omitted.
func Run(t Target, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	if t == nil {
		return nil, fmt.Errorf("loadgen: Run needs a target")
	}
	if opts.Schedule == nil {
		return nil, fmt.Errorf("loadgen: Run needs a schedule")
	}
	if opts.Duration <= 0 {
		return nil, fmt.Errorf("loadgen: Run needs a positive duration")
	}
	if opts.Warmup < 0 || opts.Warmup >= opts.Duration {
		return nil, fmt.Errorf("loadgen: warmup %v outside [0, %v)", opts.Warmup, opts.Duration)
	}
	if opts.DrawWork == nil {
		return nil, fmt.Errorf("loadgen: Run needs a work drawer")
	}

	if opts.ShardCount > 1 && (opts.ShardIndex < 0 || opts.ShardIndex >= opts.ShardCount) {
		return nil, fmt.Errorf("loadgen: shard %d outside [0, %d)", opts.ShardIndex, opts.ShardCount)
	}

	arrivals := opts.Schedule.Arrivals(opts.Duration)
	if len(arrivals) == 0 {
		return nil, fmt.Errorf("loadgen: schedule yields no arrivals over %v", opts.Duration)
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	ops := make([]*Op, 0, len(arrivals))
	for i, at := range arrivals {
		// Work is always drawn, even for arrivals another shard owns: the
		// draw sequence must not depend on the stride, or shards would stop
		// agreeing on each operation's work.
		op := &Op{ID: query.ID(i + 1), Intended: at, Work: opts.DrawWork(rng)}
		if opts.ShardCount > 1 && i%opts.ShardCount != opts.ShardIndex {
			continue
		}
		ops = append(ops, op)
	}
	if len(ops) == 0 {
		return nil, fmt.Errorf("loadgen: shard %d/%d owns no arrivals over %v", opts.ShardIndex, opts.ShardCount, opts.Duration)
	}
	if p, ok := t.(Preparer); ok {
		if err := p.Prepare(ops); err != nil {
			return nil, fmt.Errorf("loadgen: preparing %s: %w", t.Name(), err)
		}
	}

	rate := opts.Schedule.Rate()
	if opts.ShardCount > 1 {
		rate /= float64(opts.ShardCount)
	}
	st := &runState{res: &Result{
		Target:   t.Name(),
		Schedule: opts.Schedule.Name(),
		Rate:     rate,
		Duration: opts.Duration,
		Warmup:   opts.Warmup,
		Workers:  opts.Workers,
		Seed:     opts.Seed,
		Latency:  stats.NewHistogram(opts.HistGrowth),
		Service:  stats.NewHistogram(opts.HistGrowth),
	}}
	queue := newOpQueue()
	instrument(opts.Metrics, st, queue)

	start := time.Now()

	pace := true
	if sp, ok := t.(SelfPacing); ok && sp.SelfPacing() {
		pace = false
		st.res.SelfPaced = true
	}

	// Dispatcher: release each op at its intended wall offset. It only ever
	// sleeps against the fixed schedule — pushes cannot block — so a stalled
	// target leaves the arrival sequence untouched. Self-paced targets carry
	// the schedule in their own clock, so their ops are released immediately.
	// A close on opts.Stop cancels the remaining arrivals; released work
	// still drains, so the run ends with consistent statistics.
	go func() {
		for _, op := range ops {
			if stopRequested(opts.Stop) {
				st.mu.Lock()
				st.res.Stopped = true
				st.mu.Unlock()
				break
			}
			if wait := op.Intended - time.Since(start); pace && wait > 0 {
				if !sleepUnlessStopped(wait, opts.Stop) {
					st.mu.Lock()
					st.res.Stopped = true
					st.mu.Unlock()
					break
				}
			}
			st.mu.Lock()
			st.started++
			st.res.Issued++
			st.mu.Unlock()
			queue.push(op)
		}
		queue.close()
	}()

	var wg sync.WaitGroup
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				op, ok := queue.pop()
				if !ok {
					return
				}
				pickup := time.Since(start)
				err := t.Do(op)
				complete := time.Since(start)
				st.observe(op, pickup, complete, err)
			}
		}()
	}
	wg.Wait()

	st.mu.Lock()
	defer st.mu.Unlock()
	st.res.Wall = time.Since(start)
	if opts.ShardCount > 1 {
		st.res.Shards = opts.ShardCount
	}
	return st.res, nil
}

// stopRequested reports whether the (possibly nil) stop channel is closed.
func stopRequested(stop <-chan struct{}) bool {
	select {
	case <-stop:
		return true
	default:
		return false
	}
}

// sleepUnlessStopped sleeps for d, returning false if stop closed first.
func sleepUnlessStopped(d time.Duration, stop <-chan struct{}) bool {
	if stop == nil {
		time.Sleep(d)
		return true
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return true
	case <-stop:
		return false
	}
}

// observe folds one finished operation into the run summary. Latency is
// intended-start → completion; switching it to pickup → completion would
// reintroduce coordinated omission, and the regression test in
// comission_test.go pins that it stays inflated under a stalled target.
func (st *runState) observe(op *Op, pickup, complete time.Duration, err error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.done++
	if err != nil {
		st.res.Errors++
		return
	}
	if op.Intended < st.res.Warmup {
		st.res.Trimmed++
		return
	}
	st.res.Completed++
	if op.Measured > 0 {
		st.res.Latency.Observe(op.Measured)
		return
	}
	st.res.Latency.Observe(complete - op.Intended)
	st.res.Service.Observe(complete - pickup)
}

// instrument registers the run's live series on the registry (nil-safe).
// Registration is last-write-wins by name, so consecutive runs simply take
// over the series.
func instrument(reg *telemetry.Registry, st *runState, queue *opQueue) {
	if reg == nil {
		return
	}
	read := func(fn func(*Result) float64) func() float64 {
		return func() float64 {
			st.mu.Lock()
			defer st.mu.Unlock()
			return fn(st.res)
		}
	}
	reg.CounterFunc("loadgen_ops_started_total", "Operations dispatched to the target.",
		read(func(r *Result) float64 { return float64(r.Issued) }))
	reg.CounterFunc("loadgen_ops_completed_total", "Operations completed without error after warmup.",
		read(func(r *Result) float64 { return float64(r.Completed) }))
	reg.CounterFunc("loadgen_errors_total", "Operations that returned an error.",
		read(func(r *Result) float64 { return float64(r.Errors) }))
	reg.GaugeFunc("loadgen_backlog", "Operations released by the schedule but not yet picked up by a worker.",
		func() float64 { return float64(queue.depth()) })
	reg.GaugeFunc("loadgen_inflight", "Operations dispatched and not yet finished.", func() float64 {
		st.mu.Lock()
		defer st.mu.Unlock()
		return float64(st.started - st.done)
	})
	reg.GaugeFunc("loadgen_intended_qps", "Intended arrival rate of the running benchmark.",
		read(func(r *Result) float64 { return r.Rate }))
	reg.GaugeFunc("loadgen_latency_p99_seconds", "Coordinated-omission-safe p99 latency so far.",
		read(func(r *Result) float64 { return r.Latency.Quantile(0.99).Seconds() }))
}
