package loadgen

import (
	"testing"
	"time"
)

// TestRunIngestBenchShape runs both sides briefly and checks the invariants
// the full benchmark relies on: per-record mode costs exactly one RPC per
// completion, delta mode batches (strictly fewer RPCs than completions), and
// the sink's completion counts are exact (every fold delivered, including
// the final partial-batch drain).
func TestRunIngestBenchShape(t *testing.T) {
	res, err := RunIngestBench(IngestBenchOptions{
		Workers:  2,
		Duration: 150 * time.Millisecond,
		Batch:    64,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Record.Completions == 0 || res.Delta.Completions == 0 {
		t.Fatalf("empty sides: %+v", res)
	}
	if res.Record.StatRPCs != res.Record.Completions {
		t.Fatalf("record mode: %d RPCs for %d completions, want 1:1",
			res.Record.StatRPCs, res.Record.Completions)
	}
	if res.Delta.StatRPCs >= res.Delta.Completions {
		t.Fatalf("delta mode did not batch: %d RPCs for %d completions",
			res.Delta.StatRPCs, res.Delta.Completions)
	}
	// Workers flush every 64 completions plus at most one partial drain
	// each, so the wire cost per completion is bounded by the batch size.
	maxRPCs := res.Delta.Completions/64 + uint64(res.Workers)
	if res.Delta.StatRPCs > maxRPCs {
		t.Fatalf("delta mode sent %d RPCs, batch bound allows %d", res.Delta.StatRPCs, maxRPCs)
	}
	if res.RPCReductionX < 10 {
		t.Fatalf("RPC reduction %.1fx below the 10x floor", res.RPCReductionX)
	}
}
