package loadgen

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestDiurnalDeterministicAndAverageRate: two identical schedules place
// identical offsets, full cycles average to the mean rate, and the crest
// half-cycle is denser than the trough half-cycle.
func TestDiurnalDeterministicAndAverageRate(t *testing.T) {
	d := DiurnalSchedule{MeanQPS: 20, AmpQPS: 15, Period: 100 * time.Second}
	horizon := 300 * time.Second // three full cycles
	a := d.Arrivals(horizon)
	b := d.Arrivals(horizon)
	if len(a) != len(b) {
		t.Fatalf("two computations disagree: %d vs %d arrivals", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("offset %d diverged: %v vs %v", i, a[i], b[i])
		}
	}
	want := d.MeanQPS * horizon.Seconds()
	if got := float64(len(a)); math.Abs(got-want) > 2 {
		t.Fatalf("full cycles average %v arrivals, want ~%v", got, want)
	}
	// Crest (first half-cycle, rate above mean) vs trough (second half).
	crest, trough := 0, 0
	for _, at := range a {
		switch phase := at % (100 * time.Second); {
		case phase < 50*time.Second:
			crest++
		default:
			trough++
		}
	}
	if crest <= trough {
		t.Fatalf("crest half-cycles (%d arrivals) not denser than trough (%d)", crest, trough)
	}
	// Offsets ascend strictly enough to schedule (non-decreasing).
	for i := 1; i < len(a); i++ {
		if a[i] < a[i-1] {
			t.Fatalf("offsets not sorted at %d: %v < %v", i, a[i], a[i-1])
		}
	}
}

// TestDiurnalRejectsOverdeepSwing: amp > mean would need a negative rate.
func TestDiurnalRejectsOverdeepSwing(t *testing.T) {
	d := DiurnalSchedule{MeanQPS: 10, AmpQPS: 11, Period: time.Minute}
	if got := d.Arrivals(time.Minute); got != nil {
		t.Fatalf("amp > mean produced %d arrivals", len(got))
	}
	if _, err := ParseSchedule("diurnal:10:11:60s", 0, 0); err == nil {
		t.Fatal("ParseSchedule accepted amp > mean")
	}
}

// TestFlashCountsAndDeterminism: the flash window carries exactly the extra
// arrivals the closed form promises, and the program is a pure function.
func TestFlashCountsAndDeterminism(t *testing.T) {
	f := FlashSchedule{BaseQPS: 5, PeakQPS: 50, At: 60 * time.Second, Duration: 20 * time.Second}
	horizon := 120 * time.Second
	a := f.Arrivals(horizon)
	b := f.Arrivals(horizon)
	if len(a) != len(b) {
		t.Fatalf("two computations disagree: %d vs %d", len(a), len(b))
	}
	// N(120s) = 5·60 + 50·20 + 5·40 = 1500.
	if got, want := len(a), 1500; got != want {
		t.Fatalf("flash schedule placed %d arrivals, want %d", got, want)
	}
	inFlash := 0
	for i, at := range a {
		if i > 0 && at < a[i-1] {
			t.Fatalf("offsets not sorted at %d", i)
		}
		if at >= 60*time.Second && at < 80*time.Second {
			inFlash++
		}
	}
	if want := 50 * 20; inFlash != want {
		t.Fatalf("flash window carried %d arrivals, want %d", inFlash, want)
	}
}

// TestParsePrograms covers the new flag grammar.
func TestParsePrograms(t *testing.T) {
	if s, err := ParseSchedule("diurnal:20:15:100s", 0, 0); err != nil || s.Name() != "diurnal" || s.Rate() != 20 {
		t.Fatalf("diurnal parse: %v %v", s, err)
	}
	if s, err := ParseSchedule("diurnal:20:15:100s:25s", 0, 0); err != nil || s.(DiurnalSchedule).Phase != 25*time.Second {
		t.Fatalf("diurnal phase parse: %v %v", s, err)
	}
	if s, err := ParseSchedule("flash:5:50:60s:20s", 0, 0); err != nil || s.Name() != "flash" || s.Rate() != 5 {
		t.Fatalf("flash parse: %v %v", s, err)
	}
	for _, bad := range []string{"diurnal", "diurnal:20:15", "flash:5:50:60s", "flash:-1:50:0s:20s", "replay:", "replay:/no/such/file"} {
		if _, err := ParseSchedule(bad, 10, 0); err == nil {
			t.Fatalf("ParseSchedule accepted %q", bad)
		}
	}
}

// TestReplayRoundTrip: record a Poisson schedule, write it, read it back
// through ParseSchedule, and get bit-identical arrivals.
func TestReplayRoundTrip(t *testing.T) {
	src := Poisson{QPS: 40, Seed: 99}
	horizon := 30 * time.Second
	recorded := src.Arrivals(horizon)

	var buf bytes.Buffer
	if err := WriteReplay(&buf, recorded); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trace.replay")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := ParseSchedule("replay:"+path, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	replayed := s.Arrivals(horizon)
	if len(replayed) != len(recorded) {
		t.Fatalf("replay lost arrivals: %d vs %d", len(replayed), len(recorded))
	}
	for i := range recorded {
		if replayed[i] != recorded[i] {
			t.Fatalf("offset %d changed across the round-trip: %v vs %v", i, replayed[i], recorded[i])
		}
	}
	// A shorter horizon replays a strict prefix.
	if half := s.Arrivals(horizon / 2); len(half) >= len(recorded) || len(half) == 0 {
		t.Fatalf("half-horizon replay returned %d of %d arrivals", len(half), len(recorded))
	}
}

// TestReplayReadRejectsGarbage pins the parse errors.
func TestReplayReadRejectsGarbage(t *testing.T) {
	if _, err := ReadReplay(bytes.NewBufferString("# header\n12345\nnot-a-number\n")); err == nil {
		t.Fatal("garbage line accepted")
	}
	if _, err := ReadReplay(bytes.NewBufferString("-5\n")); err == nil {
		t.Fatal("negative offset accepted")
	}
	s, err := ReadReplay(bytes.NewBufferString("# only comments\n\n"))
	if err != nil || s.Len() != 0 {
		t.Fatalf("empty recording: %v %v", s, err)
	}
}
