package loadgen

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"
)

// ReplaySchedule drives arrivals at exactly the recorded offsets — the
// schedule form of replaying a production trace. Offsets are virtual times
// from the start of the run; Arrivals clips to the horizon, so a shorter
// replay run is a prefix of the recording.
type ReplaySchedule struct {
	offsets []time.Duration
}

// NewReplaySchedule copies and sorts the offsets. Negative offsets are
// rejected: a recording starts at its own origin.
func NewReplaySchedule(offsets []time.Duration) (*ReplaySchedule, error) {
	out := make([]time.Duration, len(offsets))
	copy(out, offsets)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	if len(out) > 0 && out[0] < 0 {
		return nil, fmt.Errorf("loadgen: replay offset %v before the origin", out[0])
	}
	return &ReplaySchedule{offsets: out}, nil
}

// Name implements Schedule.
func (r *ReplaySchedule) Name() string { return "replay" }

// Rate implements Schedule: the recording's own average rate — count over
// recorded span (zero for degenerate recordings).
func (r *ReplaySchedule) Rate() float64 {
	if len(r.offsets) < 2 {
		return 0
	}
	span := r.offsets[len(r.offsets)-1].Seconds()
	if span <= 0 {
		return 0
	}
	return float64(len(r.offsets)) / span
}

// Len returns the number of recorded arrivals.
func (r *ReplaySchedule) Len() int { return len(r.offsets) }

// Arrivals implements Schedule.
func (r *ReplaySchedule) Arrivals(horizon time.Duration) []time.Duration {
	if horizon <= 0 {
		return nil
	}
	n := sort.Search(len(r.offsets), func(i int) bool { return r.offsets[i] >= horizon })
	out := make([]time.Duration, n)
	copy(out, r.offsets[:n])
	return out
}

// WriteReplay records a schedule's arrival offsets in the replay file
// format: a header comment, then one integer nanosecond offset per line.
// Integer nanoseconds round-trip exactly, so record → replay reproduces the
// original schedule bit for bit.
func WriteReplay(w io.Writer, offsets []time.Duration) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "# powerchief replay v1: one arrival offset per line, nanoseconds"); err != nil {
		return err
	}
	for _, at := range offsets {
		if at < 0 {
			return fmt.Errorf("loadgen: replay offset %v before the origin", at)
		}
		if _, err := fmt.Fprintln(bw, at.Nanoseconds()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadReplay parses the replay file format back into a schedule. Blank
// lines and '#' comments are skipped; offsets need not be sorted.
func ReadReplay(r io.Reader) (*ReplaySchedule, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var offsets []time.Duration
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		ns, err := strconv.ParseInt(text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("loadgen: replay line %d: %w", line, err)
		}
		offsets = append(offsets, time.Duration(ns))
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return NewReplaySchedule(offsets)
}
