package loadgen

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"powerchief/internal/core"
	"powerchief/internal/dist"
	"powerchief/internal/rpc"
	"powerchief/internal/stats"
)

// IngestBenchOptions configures the stat-ingest benchmark: the same synthetic
// completion stream pushed through both wire shapes of dist.StatSink — one
// MethodStatRecord call per completion (the legacy contract) versus one
// MethodStatDelta call per batch — so the RPC reduction and the sustainable
// completion rate of delta-batched ingest can be measured on real loopback
// RPC, not estimated.
type IngestBenchOptions struct {
	// Workers is the number of producer goroutines, each with its own
	// connection and (in delta mode) its own DeltaAccumulator — the same
	// topology as N stage instances feeding one Command Center.
	Workers int
	// Duration is the measurement length per mode.
	Duration time.Duration
	// Batch is the delta-mode flush threshold in completed queries.
	Batch int
	// Interval is the delta-mode flush interval for partial batches.
	Interval time.Duration
}

func (o IngestBenchOptions) withDefaults() IngestBenchOptions {
	if o.Workers <= 0 {
		o.Workers = 8
	}
	if o.Duration <= 0 {
		o.Duration = 2 * time.Second
	}
	if o.Batch <= 0 {
		o.Batch = stats.DefaultDeltaBatch
	}
	if o.Interval <= 0 {
		o.Interval = stats.DefaultDeltaInterval
	}
	return o
}

// IngestBenchSide is one mode's measurement.
type IngestBenchSide struct {
	Mode string `json:"mode"`
	// Completions is the number of completed queries the sink's aggregator
	// absorbed (counted at the sink, so lost work cannot inflate the rate).
	Completions uint64 `json:"completions"`
	// StatRPCs is the number of stat-carrying RPC calls that delivered them.
	StatRPCs uint64  `json:"stat_rpcs"`
	WallMS   float64 `json:"wall_ms"`
	// CompletionsPerSec is the sustained stat-ingest rate.
	CompletionsPerSec float64 `json:"completions_per_sec"`
	// RPCsPerCompletion is the wire cost per completed query (1.0 for the
	// per-record contract, ~1/batch for delta ingest).
	RPCsPerCompletion float64 `json:"rpcs_per_completion"`
}

// IngestBenchResult pairs the per-record baseline with the delta-batched run
// — the before/after artifact results/BENCH_ingest.json records.
type IngestBenchResult struct {
	Workers    int     `json:"workers"`
	Batch      int     `json:"batch"`
	IntervalMS float64 `json:"interval_ms"`

	Record IngestBenchSide `json:"record"`
	Delta  IngestBenchSide `json:"delta"`

	// RPCReductionX is record RPCs-per-completion over delta
	// RPCs-per-completion: how many legacy stat RPCs one delta frame
	// replaces.
	RPCReductionX float64 `json:"rpc_reduction_x"`
	// ThroughputGainX is the delta-mode completion rate over the
	// record-mode one.
	ThroughputGainX float64 `json:"throughput_gain_x"`
}

// RunIngestBench measures both ingest contracts back to back against fresh
// sinks and returns the paired result.
func RunIngestBench(opts IngestBenchOptions) (IngestBenchResult, error) {
	o := opts.withDefaults()
	rec, err := runIngestSide("record", o)
	if err != nil {
		return IngestBenchResult{}, err
	}
	del, err := runIngestSide("delta", o)
	if err != nil {
		return IngestBenchResult{}, err
	}
	res := IngestBenchResult{
		Workers:    o.Workers,
		Batch:      o.Batch,
		IntervalMS: float64(o.Interval) / float64(time.Millisecond),
		Record:     rec,
		Delta:      del,
	}
	if del.RPCsPerCompletion > 0 {
		res.RPCReductionX = rec.RPCsPerCompletion / del.RPCsPerCompletion
	}
	if rec.CompletionsPerSec > 0 {
		res.ThroughputGainX = del.CompletionsPerSec / rec.CompletionsPerSec
	}
	return res, nil
}

// runIngestSide drives one mode: Workers producers over real loopback RPC
// against one StatSink for the configured duration.
func runIngestSide(mode string, o IngestBenchOptions) (IngestBenchSide, error) {
	start := time.Now()
	agg := core.NewAggregatorOptions(time.Minute,
		func() time.Duration { return time.Since(start) },
		core.AggregatorOptions{Window: core.WindowBucketed})
	sink := dist.NewStatSink(agg)
	addr, err := sink.Listen("127.0.0.1:0")
	if err != nil {
		return IngestBenchSide{}, err
	}
	defer sink.Close()

	deadline := start.Add(o.Duration)
	var firstErr atomic.Value
	var wg sync.WaitGroup
	for w := 0; w < o.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var err error
			if mode == "record" {
				err = ingestRecordWorker(addr, w, deadline)
			} else {
				err = ingestDeltaWorker(addr, w, start, deadline, o)
			}
			if err != nil {
				firstErr.CompareAndSwap(nil, err)
			}
		}(w)
	}
	wg.Wait()
	wall := time.Since(start)
	if err, _ := firstErr.Load().(error); err != nil {
		return IngestBenchSide{}, fmt.Errorf("loadgen: ingest bench %s worker: %w", mode, err)
	}

	calls, queries, _ := sink.Counts()
	side := IngestBenchSide{
		Mode:        mode,
		Completions: queries,
		StatRPCs:    calls,
		WallMS:      float64(wall) / float64(time.Millisecond),
	}
	if wall > 0 {
		side.CompletionsPerSec = float64(queries) / wall.Seconds()
	}
	if queries > 0 {
		side.RPCsPerCompletion = float64(calls) / float64(queries)
	}
	return side, nil
}

// synthLatency is the deterministic per-completion latency draw: a 1µs..1ms
// sawtooth, cheap enough to never be the bottleneck and spread across enough
// histogram bins to exercise the real fold path.
func synthLatency(i int) time.Duration {
	return time.Duration(i%1000+1) * time.Microsecond
}

// ingestRecordWorker pushes one MethodStatRecord call per completion — the
// legacy contract, where wire round-trips gate the completion rate.
func ingestRecordWorker(addr string, w int, deadline time.Time) error {
	cli, err := rpc.Dial(addr)
	if err != nil {
		return err
	}
	defer cli.Close()
	inst := fmt.Sprintf("web-%d", w)
	base := uint64(w) << 32
	for i := 0; !time.Now().After(deadline); i++ {
		lat := synthLatency(i)
		args := dist.StatRecordArgs{
			QueryID:   base + uint64(i),
			LatencyNS: int64(lat),
			Records: []dist.RecordWire{{
				Instance: inst, Stage: "web",
				ServeStart: time.Microsecond, ServeEnd: lat,
			}},
		}
		if err := cli.Call(dist.MethodStatRecord, args, nil); err != nil {
			return err
		}
	}
	return nil
}

// ingestDeltaWorker folds completions into a local DeltaAccumulator and
// ships one MethodStatDelta call per batch — the tentpole contract, where
// local folds gate the completion rate and the wire carries summaries.
func ingestDeltaWorker(addr string, w int, start, deadline time.Time, o IngestBenchOptions) error {
	cli, err := rpc.Dial(addr)
	if err != nil {
		return err
	}
	defer cli.Close()
	inst := fmt.Sprintf("web-%d", w)
	acc := stats.NewDeltaAccumulator(o.Batch, o.Interval)
	for i := 0; ; i++ {
		// The deadline check is hoisted off the per-completion path: at
		// millions of folds per second a time.Now per op would measurably
		// skew the result.
		if i&255 == 0 && time.Now().After(deadline) {
			break
		}
		at := time.Since(start)
		lat := synthLatency(i)
		acc.FoldRecord(at, inst, "web", time.Microsecond, lat)
		acc.FoldQuery(at, lat)
		if d := acc.FlushIfDue(at); d != nil {
			if err := cli.Call(dist.MethodStatDelta, d, nil); err != nil {
				return err
			}
		}
	}
	// Drain the partial batch so the sink's completion count is exact.
	if d := acc.Flush(time.Since(start)); d != nil {
		if err := cli.Call(dist.MethodStatDelta, d, nil); err != nil {
			return err
		}
	}
	return nil
}
