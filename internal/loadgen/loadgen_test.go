package loadgen

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"powerchief/internal/cmp"
	"powerchief/internal/dist"
	"powerchief/internal/live"
	"powerchief/internal/sim"
	"powerchief/internal/stage"
	"powerchief/internal/telemetry"
)

// unitWork draws a trivial one-stage work matrix.
func unitWork(d time.Duration) func(*rand.Rand) [][]time.Duration {
	return func(*rand.Rand) [][]time.Duration { return [][]time.Duration{{d}} }
}

// stubTarget completes instantly, counting calls.
type stubTarget struct {
	calls atomic.Uint64
	fail  bool
}

func (s *stubTarget) Name() string { return "stub" }
func (s *stubTarget) Do(op *Op) error {
	s.calls.Add(1)
	if s.fail {
		return fmt.Errorf("stub: injected failure")
	}
	return nil
}
func (s *stubTarget) Close() error { return nil }

func TestConstantRateExactSpacing(t *testing.T) {
	arr := ConstantRate(100).Arrivals(100 * time.Millisecond)
	if len(arr) != 10 {
		t.Fatalf("want 10 arrivals over 100ms at 100/s, got %d", len(arr))
	}
	for i, at := range arr {
		want := time.Duration(float64(i) / 100 * float64(time.Second))
		if at != want {
			t.Fatalf("arrival %d at %v, want exactly %v", i, at, want)
		}
	}
}

// TestScheduleReproducible pins the determinism contract: the same
// (schedule, seed, horizon) yields byte-identical arrival offsets, run after
// run, and changing the seed changes the Poisson draw.
func TestScheduleReproducible(t *testing.T) {
	for _, sched := range []Schedule{ConstantRate(250), Poisson{QPS: 250, Seed: 42}} {
		a := sched.Arrivals(2 * time.Second)
		b := sched.Arrivals(2 * time.Second)
		if len(a) == 0 || len(a) != len(b) {
			t.Fatalf("%s: lengths differ or empty: %d vs %d", sched.Name(), len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: arrival %d differs across identical calls: %v vs %v", sched.Name(), i, a[i], b[i])
			}
		}
	}
	a := Poisson{QPS: 250, Seed: 1}.Arrivals(time.Second)
	b := Poisson{QPS: 250, Seed: 2}.Arrivals(time.Second)
	same := len(a) == len(b)
	if same {
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different Poisson seeds produced an identical schedule")
	}
}

func TestRunCountsAndWarmupTrim(t *testing.T) {
	st := &stubTarget{}
	res, err := Run(st, Options{
		Schedule: ConstantRate(500),
		Duration: 200 * time.Millisecond,
		Warmup:   100 * time.Millisecond,
		Workers:  4,
		DrawWork: unitWork(time.Millisecond),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Issued != 100 {
		t.Fatalf("want 100 issued at 500/s over 200ms, got %d", res.Issued)
	}
	if got := res.Completed + res.Trimmed; got != res.Issued {
		t.Fatalf("completed %d + trimmed %d != issued %d", res.Completed, res.Trimmed, res.Issued)
	}
	if res.Trimmed != 50 {
		t.Fatalf("want 50 warmup ops trimmed, got %d", res.Trimmed)
	}
	if res.Errors != 0 {
		t.Fatalf("unexpected errors: %d", res.Errors)
	}
	if uint64(res.Latency.Count()) != res.Completed {
		t.Fatalf("latency histogram holds %d samples for %d completions", res.Latency.Count(), res.Completed)
	}
}

func TestRunCountsErrors(t *testing.T) {
	st := &stubTarget{fail: true}
	res, err := Run(st, Options{
		Schedule: ConstantRate(1000),
		Duration: 50 * time.Millisecond,
		Workers:  4,
		DrawWork: unitWork(time.Millisecond),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != res.Issued || res.Errors == 0 {
		t.Fatalf("want every op counted as an error, got %d/%d", res.Errors, res.Issued)
	}
	if res.Latency.Count() != 0 {
		t.Fatal("failed ops must not contribute latency samples")
	}
}

func TestRunPublishesMetrics(t *testing.T) {
	reg := telemetry.NewRegistry()
	st := &stubTarget{}
	res, err := Run(st, Options{
		Schedule: ConstantRate(1000),
		Duration: 50 * time.Millisecond,
		Workers:  4,
		DrawWork: unitWork(time.Millisecond),
		Metrics:  reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	vals := map[string]float64{}
	for _, m := range reg.Snapshot() {
		vals[m.Name] = m.Value
	}
	if got := vals["loadgen_ops_started_total"]; got != float64(res.Issued) {
		t.Fatalf("loadgen_ops_started_total = %v, want %d", got, res.Issued)
	}
	if got := vals["loadgen_ops_completed_total"]; got != float64(res.Completed) {
		t.Fatalf("loadgen_ops_completed_total = %v, want %d", got, res.Completed)
	}
	if got := vals["loadgen_intended_qps"]; got != 1000 {
		t.Fatalf("loadgen_intended_qps = %v, want 1000", got)
	}
	if _, ok := vals["loadgen_latency_p99_seconds"]; !ok {
		t.Fatal("missing loadgen_latency_p99_seconds gauge")
	}
}

// newDESSystem builds a two-stage simulated pipeline for target tests.
func newDESSystem(t *testing.T) *stage.System {
	t.Helper()
	eng := sim.NewEngine()
	model := cmp.DefaultModel()
	chip := cmp.NewChip(8, model, cmp.Watts(8)*model.MaxPower())
	sys, err := stage.NewSystem(eng, chip, []stage.Spec{
		{Name: "A", Kind: stage.Pipeline, Profile: cmp.NewRooflineProfile(0.2), Instances: 1, Level: cmp.MidLevel},
		{Name: "B", Kind: stage.Pipeline, Profile: cmp.NewRooflineProfile(0.3), Instances: 1, Level: cmp.MidLevel},
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func desWork(rng *rand.Rand) [][]time.Duration {
	return [][]time.Duration{
		{time.Duration(20+rng.Intn(20)) * time.Millisecond},
		{time.Duration(10+rng.Intn(10)) * time.Millisecond},
	}
}

func runDES(t *testing.T, workers int) *Result {
	t.Helper()
	target := NewDESTarget(newDESSystem(t))
	defer target.Close()
	res, err := Run(target, Options{
		Schedule: Poisson{QPS: 10, Seed: 99},
		Duration: 20 * time.Second, // virtual seconds — wall time is milliseconds
		Warmup:   2 * time.Second,
		Workers:  workers,
		Seed:     7,
		DrawWork: desWork,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestDESTargetDeterministic pins the cross-validation property: the DES
// target replays the schedule in virtual time, so the measured distribution
// is identical run over run — regardless of how many wall-clock workers
// drain it.
func TestDESTargetDeterministic(t *testing.T) {
	a := runDES(t, 1)
	b := runDES(t, 8)
	if a.Completed == 0 {
		t.Fatal("no completions")
	}
	if !a.SelfPaced {
		t.Fatal("DES runs must be marked self-paced")
	}
	if a.Completed != b.Completed || a.Errors != b.Errors {
		t.Fatalf("counts differ across runs: %d/%d vs %d/%d", a.Completed, a.Errors, b.Completed, b.Errors)
	}
	for _, p := range []float64{0.5, 0.9, 0.99, 1} {
		if qa, qb := a.Latency.Quantile(p), b.Latency.Quantile(p); qa != qb {
			t.Fatalf("p%v differs across identical seeded runs: %v vs %v", p*100, qa, qb)
		}
	}
	if a.Latency.Mean() != b.Latency.Mean() {
		t.Fatalf("mean differs: %v vs %v", a.Latency.Mean(), b.Latency.Mean())
	}
}

func TestLiveTarget(t *testing.T) {
	model := cmp.DefaultModel()
	cluster, err := live.NewCluster(live.Options{
		Cores:     8,
		Model:     model,
		Budget:    cmp.Watts(8) * model.MaxPower(),
		TimeScale: 0.002, // 10ms of virtual work = 20µs wall
	}, []live.StageSpec{
		{Name: "S", Kind: stage.Pipeline, Profile: cmp.NewRooflineProfile(0.2), Instances: 2, Level: cmp.MidLevel},
	})
	if err != nil {
		t.Fatal(err)
	}
	target := NewLiveTarget(cluster)
	defer target.Close()
	res, err := Run(target, Options{
		Schedule: ConstantRate(400),
		Duration: 250 * time.Millisecond,
		Workers:  16,
		DrawWork: unitWork(10 * time.Millisecond),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("live run errored %d times", res.Errors)
	}
	if res.Completed != res.Issued {
		t.Fatalf("completed %d of %d", res.Completed, res.Issued)
	}
	if res.Latency.Count() == 0 || res.Latency.Mean() <= 0 {
		t.Fatal("live run recorded no latency")
	}
	if res.Service.Count() == 0 {
		t.Fatal("wall-paced runs must populate the service histogram")
	}
}

func TestDistTarget(t *testing.T) {
	svc, err := dist.NewStageService(dist.StageOptions{
		Name: "S", Kind: stage.Pipeline, MemBound: 0.2,
		Instances: 2, Level: cmp.MidLevel, TimeScale: 0.002,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	addr, err := svc.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	center, err := dist.NewCenter(100, time.Second, []string{addr})
	if err != nil {
		t.Fatal(err)
	}
	target := NewDistTarget(center)
	target.OwnsCenter = true
	defer target.Close()

	res, err := Run(target, Options{
		Schedule: ConstantRate(200),
		Duration: 250 * time.Millisecond,
		Workers:  16,
		DrawWork: unitWork(10 * time.Millisecond),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed == 0 {
		t.Fatal("no completions against the dist target")
	}
	if res.Errors != 0 {
		t.Fatalf("dist run errored %d times", res.Errors)
	}
	sub, comp := center.Counts()
	if sub != uint64(res.Issued) || comp != sub {
		t.Fatalf("center saw %d/%d, loadgen issued %d", comp, sub, res.Issued)
	}
}

// TestRampArrivals: the ramp program is deterministic, monotone, matches
// its average rate, and actually ramps — the second half of an up-ramp
// holds more arrivals than the first.
func TestRampArrivals(t *testing.T) {
	r := Ramp{FromQPS: 10, ToQPS: 50}
	horizon := 10 * time.Second
	a := r.Arrivals(horizon)
	b := r.Arrivals(horizon)
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("non-deterministic or empty ramp: %d vs %d arrivals", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("arrival %d differs across identical calls", i)
		}
		if i > 0 && a[i] <= a[i-1] {
			t.Fatalf("arrivals not strictly increasing at %d: %v then %v", i, a[i-1], a[i])
		}
	}
	want := int(r.Rate() * horizon.Seconds()) // 300
	if len(a) < want-2 || len(a) > want+2 {
		t.Errorf("ramp 10→50 over 10s yields %d arrivals, want ≈%d", len(a), want)
	}
	half := 0
	for _, at := range a {
		if at < horizon/2 {
			half++
		}
	}
	// First half integrates to 10·5 + (40/10)·5²/2 = 100 of 300.
	if half < 90 || half > 110 {
		t.Errorf("first half holds %d arrivals, want ≈100 of %d", half, len(a))
	}
	// Down-ramp mirrors up-ramp.
	down := Ramp{FromQPS: 50, ToQPS: 10}.Arrivals(horizon)
	if len(down) < want-2 || len(down) > want+2 {
		t.Errorf("ramp 50→10 yields %d arrivals, want ≈%d", len(down), want)
	}
}

func TestParseScheduleRamp(t *testing.T) {
	s, err := ParseSchedule("ramp:10:50", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r, ok := s.(Ramp); !ok || r.FromQPS != 10 || r.ToQPS != 50 {
		t.Fatalf("parsed %#v, want Ramp{10,50}", s)
	}
	if s.Rate() != 30 {
		t.Errorf("ramp rate %v, want the 30 average", s.Rate())
	}
	for _, bad := range []string{"ramp", "ramp:", "ramp:10", "ramp:x:y", "ramp:-1:5", "ramp:0:0"} {
		if _, err := ParseSchedule(bad, 5, 1); err == nil {
			t.Errorf("ParseSchedule(%q) accepted", bad)
		}
	}
}

// TestRunShardsPartitionSchedule: N stride shards together execute exactly
// the single-process op set — same IDs, same intended offsets, same work —
// and each shard reports the per-shard rate.
func TestRunShardsPartitionSchedule(t *testing.T) {
	const shards = 4
	type seen struct {
		intended time.Duration
		work     time.Duration
	}
	collect := func(idx, count int) (map[uint64]seen, *Result) {
		rec := make(map[uint64]seen)
		var mu sync.Mutex
		tgt := &funcTarget{name: "collector", do: func(op *Op) error {
			mu.Lock()
			rec[uint64(op.ID)] = seen{op.Intended, op.Work[0][0]}
			mu.Unlock()
			return nil
		}}
		res, err := Run(tgt, Options{
			Schedule:   Poisson{QPS: 400, Seed: 3},
			Duration:   500 * time.Millisecond,
			Workers:    8,
			Seed:       9,
			ShardIndex: idx,
			ShardCount: count,
			DrawWork: func(rng *rand.Rand) [][]time.Duration {
				return [][]time.Duration{{time.Duration(rng.Int63n(int64(time.Millisecond)))}}
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return rec, res
	}

	whole, wholeRes := collect(0, 1)
	if wholeRes.Rate != 400 {
		t.Errorf("unsharded rate %v, want 400", wholeRes.Rate)
	}
	union := make(map[uint64]seen)
	for i := 0; i < shards; i++ {
		part, res := collect(i, shards)
		if res.Rate != 100 {
			t.Errorf("shard rate %v, want 100", res.Rate)
		}
		if res.Shards != shards {
			t.Errorf("res.Shards = %d, want %d", res.Shards, shards)
		}
		for id, s := range part {
			if _, dup := union[id]; dup {
				t.Fatalf("op %d executed by two shards", id)
			}
			union[id] = s
		}
	}
	if len(union) != len(whole) {
		t.Fatalf("shards executed %d ops, single process %d", len(union), len(whole))
	}
	for id, w := range whole {
		if union[id] != w {
			t.Fatalf("op %d differs: shard saw %+v, single process %+v", id, union[id], w)
		}
	}
}

func TestRunShardValidation(t *testing.T) {
	_, err := Run(&stubTarget{}, Options{
		Schedule: ConstantRate(10), Duration: time.Second, Seed: 1,
		DrawWork: unitWork(time.Millisecond), ShardIndex: 3, ShardCount: 2,
	})
	if err == nil {
		t.Fatal("out-of-range shard accepted")
	}
}

// funcTarget adapts a function to Target.
type funcTarget struct {
	name string
	do   func(op *Op) error
}

func (f *funcTarget) Name() string    { return f.name }
func (f *funcTarget) Do(op *Op) error { return f.do(op) }
func (f *funcTarget) Close() error    { return nil }

// TestRunStopCancelsArrivals: closing Options.Stop mid-run ends the arrival
// process early; the result carries what completed and marks Stopped.
func TestRunStopCancelsArrivals(t *testing.T) {
	stop := make(chan struct{})
	var n atomic.Uint64
	tgt := &funcTarget{name: "slowish", do: func(op *Op) error {
		if n.Add(1) == 5 {
			close(stop)
		}
		return nil
	}}
	res, err := Run(tgt, Options{
		Schedule: ConstantRate(50),
		Duration: 10 * time.Second, // would be a 10s run without the stop
		Workers:  2,
		Seed:     1,
		Stop:     stop,
		DrawWork: unitWork(time.Millisecond),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stopped {
		t.Error("result not marked Stopped")
	}
	if res.Issued >= 500 {
		t.Errorf("issued %d ops, stop did not cut the schedule", res.Issued)
	}
	if res.Wall >= 10*time.Second {
		t.Errorf("run took the full horizon (%v) despite the stop", res.Wall)
	}
	s := Summarize(res)
	if !s.StoppedEarly {
		t.Error("summary not marked stopped_early")
	}
}

// TestSummarizeProvenanceAndHistogram: every summary carries build/run
// provenance and the serialized latency histogram its quantiles derive from.
func TestSummarizeProvenanceAndHistogram(t *testing.T) {
	res, err := Run(&stubTarget{}, Options{
		Schedule: ConstantRate(200), Duration: 200 * time.Millisecond,
		Workers: 4, Seed: 1, DrawWork: unitWork(time.Millisecond),
	})
	if err != nil {
		t.Fatal(err)
	}
	s := Summarize(res)
	if s.Provenance == nil || s.Provenance.GoVersion == "" || s.Provenance.GitRevision == "" {
		t.Fatalf("summary provenance incomplete: %+v", s.Provenance)
	}
	if s.Agents != 1 {
		t.Errorf("Agents = %d, want 1", s.Agents)
	}
	if s.LatencyHist == nil || s.LatencyHist.Count != s.Completed {
		t.Fatalf("latency histogram missing or inconsistent: %+v", s.LatencyHist)
	}
	q, err := QuantilesFromDigest(s.LatencyHist)
	if err != nil {
		t.Fatal(err)
	}
	if q != s.LatencyMS {
		t.Errorf("digest-derived quantiles %+v differ from recorded %+v", q, s.LatencyMS)
	}
}
