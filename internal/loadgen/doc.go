// Package loadgen is the high-throughput open-loop load generator behind
// cmd/powerbench: it drives any of the framework's engines at a controlled,
// saturating arrival rate and measures latency without coordinated omission.
//
// The core pieces:
//
//   - Schedule (ConstantRate, Poisson) fixes every operation's intended
//     start offset before the run begins, deterministically per seed, so the
//     arrival process can never be back-pressured by a slow target.
//   - Target abstracts what is being driven: LiveTarget (the in-process
//     goroutine engine), DESTarget (the discrete-event simulator, for
//     cross-validation — it replays the schedule in virtual time via
//     Preparer/SelfPacing), and DistTarget (the distributed runtime over
//     internal/rpc, whose deadline/retry client turns hung stages into
//     counted errors).
//   - Run shards issue across worker goroutines and records
//     intended-start-to-completion latency into internal/stats histograms;
//     the wait an operation spends queued behind a stalled target is charged
//     to its latency, never silently dropped. The send-time distribution is
//     kept alongside as a diagnostic of exactly the gap coordinated omission
//     would hide.
//   - Summarize/WriteTable produce the JSON and human digests, and
//     Options.Metrics streams per-run series into internal/telemetry so a
//     /metrics endpoint reflects an in-flight benchmark.
//   - RunIngestBench is the stat-ingest microbenchmark (`powerbench
//     ingest`): the same synthetic completion stream pushed through both
//     dist.StatSink wire contracts — one RPC per completion versus
//     delta-batched summaries — measuring the RPC reduction and sustainable
//     completion rate recorded in results/BENCH_ingest.json.
//
// See DESIGN.md §5e for why the generator is open-loop and what coordinated
// omission would do to the tails, and ARCHITECTURE.md for where the
// subsystem sits in the query path.
package loadgen
