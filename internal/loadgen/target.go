package loadgen

import (
	"fmt"
	"sync"
	"time"

	"powerchief/internal/dist"
	"powerchief/internal/live"
	"powerchief/internal/query"
	"powerchief/internal/sim"
	"powerchief/internal/stage"
)

// LiveTarget drives the in-process live engine: each Do submits a query into
// the cluster's first stage and blocks until the completion callback fires.
// Latency is measured by the runner in wall-clock time, so the cluster
// should usually run at TimeScale 1 for honest numbers (compressed scales
// shrink wall latencies by the same factor).
type LiveTarget struct {
	cluster *live.Cluster

	mu      sync.Mutex
	waiters map[query.ID]chan struct{}
}

// NewLiveTarget wraps a running cluster. The target registers a completion
// callback; the caller keeps ownership of the cluster (Close stops it).
func NewLiveTarget(c *live.Cluster) *LiveTarget {
	t := &LiveTarget{cluster: c, waiters: make(map[query.ID]chan struct{})}
	c.OnComplete(func(q *query.Query) {
		t.mu.Lock()
		ch := t.waiters[q.ID]
		delete(t.waiters, q.ID)
		t.mu.Unlock()
		if ch != nil {
			close(ch)
		}
	})
	return t
}

// Name implements Target.
func (t *LiveTarget) Name() string { return "live" }

// Do implements Target.
func (t *LiveTarget) Do(op *Op) error {
	q := query.New(op.ID, t.cluster.Now(), op.Work)
	ch := make(chan struct{})
	t.mu.Lock()
	if _, dup := t.waiters[op.ID]; dup {
		t.mu.Unlock()
		return fmt.Errorf("loadgen: duplicate in-flight op %d", op.ID)
	}
	t.waiters[op.ID] = ch
	t.mu.Unlock()
	if err := t.cluster.Submit(q); err != nil {
		t.mu.Lock()
		delete(t.waiters, op.ID)
		t.mu.Unlock()
		return err
	}
	<-ch
	return nil
}

// Close implements Target, stopping the cluster.
func (t *LiveTarget) Close() error {
	t.cluster.Close()
	return nil
}

// DESTarget drives the discrete-event engine, cross-validating the live and
// distributed paths against the reproducible simulator. It implements
// Preparer: every arrival is pre-scheduled as a virtual-time event at its
// intended offset (one wall second of schedule is one virtual second), so
// queries overlap in the simulation exactly as the schedule dictates no
// matter how runner workers interleave. Do then advances the engine until
// its operation completes and reports the virtual
// intended-start-to-completion latency through Op.Measured — the same
// coordinated-omission-safe quantity the wall-clock path records.
type DESTarget struct {
	mu   sync.Mutex
	eng  *sim.Engine
	sys  *stage.System
	done map[query.ID]time.Duration
}

// NewDESTarget wraps a simulated system. The engine must not be run by
// anyone else during the benchmark.
func NewDESTarget(sys *stage.System) *DESTarget {
	t := &DESTarget{eng: sys.Engine(), sys: sys, done: make(map[query.ID]time.Duration)}
	sys.OnComplete(func(q *query.Query) {
		t.done[q.ID] = q.Done // runs inside engine steps, under t.mu
	})
	return t
}

// Name implements Target.
func (t *DESTarget) Name() string { return "des" }

// SelfPacing implements SelfPacing: the schedule lives in virtual time.
func (t *DESTarget) SelfPacing() bool { return true }

// Prepare implements Preparer: schedule every arrival in virtual time.
func (t *DESTarget) Prepare(ops []*Op) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, op := range ops {
		op := op
		t.eng.ScheduleAt(op.Intended, func() {
			t.sys.Submit(query.New(op.ID, t.eng.Now(), op.Work))
		})
	}
	return nil
}

// Do implements Target: step the engine until this operation's query has
// left the pipeline. Steps executed on behalf of one operation naturally
// complete others; their Do calls then return immediately.
func (t *DESTarget) Do(op *Op) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	for {
		if done, ok := t.done[op.ID]; ok {
			delete(t.done, op.ID)
			op.Measured = done - op.Intended
			return nil
		}
		if !t.eng.Step() {
			return fmt.Errorf("loadgen: engine exhausted before op %d completed", op.ID)
		}
	}
}

// Close implements Target. The engine needs no teardown.
func (t *DESTarget) Close() error { return nil }

// DistTarget drives the distributed runtime through a Command Center: each
// Do dispatches the query through the remote stage services over RPC. The
// center's client already enforces per-call deadlines and retries (PR 1), so
// a hung or dead stage surfaces as a counted error instead of a stuck
// worker.
type DistTarget struct {
	center *dist.Center
	// OwnsCenter makes Close tear the center down (set when the target
	// built the deployment itself).
	OwnsCenter bool
}

// NewDistTarget wraps a connected Command Center.
func NewDistTarget(c *dist.Center) *DistTarget { return &DistTarget{center: c} }

// Name implements Target.
func (t *DistTarget) Name() string { return "dist" }

// Do implements Target.
func (t *DistTarget) Do(op *Op) error {
	_, err := t.center.Submit(op.Work)
	return err
}

// Close implements Target.
func (t *DistTarget) Close() error {
	if t.OwnsCenter {
		t.center.Close()
	}
	return nil
}

// Interface conformance.
var (
	_ Target     = (*LiveTarget)(nil)
	_ Target     = (*DESTarget)(nil)
	_ Preparer   = (*DESTarget)(nil)
	_ SelfPacing = (*DESTarget)(nil)
	_ Target     = (*DistTarget)(nil)
)
