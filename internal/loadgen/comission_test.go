package loadgen

import (
	"testing"
	"time"
)

// stalledTarget models a server in trouble: every operation takes far longer
// than the arrival gap, so an open-loop generator accumulates a backlog.
type stalledTarget struct {
	stall time.Duration
}

func (s *stalledTarget) Name() string { return "stalled" }
func (s *stalledTarget) Do(op *Op) error {
	time.Sleep(s.stall)
	return nil
}
func (s *stalledTarget) Close() error { return nil }

// TestCoordinatedOmissionGuard is the regression test for the generator's
// central honesty property. A single worker against a target that stalls
// 20ms per op, fed at 5ms intervals, builds a backlog that grows by ~15ms
// per arrival. Measured from each op's *intended* start (what this package
// records), the tail must reflect that backlog — hundreds of milliseconds.
// Measured from send time (the classic coordinated-omission mistake, kept
// visible in the Service histogram), every op looks like a healthy ~20ms.
//
// If latency recording were ever switched to send-time, Latency would
// collapse onto Service and both assertions below would fail.
func TestCoordinatedOmissionGuard(t *testing.T) {
	const (
		stall = 20 * time.Millisecond
		rate  = 200 // one arrival per 5ms
	)
	res, err := Run(&stalledTarget{stall: stall}, Options{
		Schedule: ConstantRate(rate),
		Duration: 400 * time.Millisecond, // 80 ops → ~1.6s to drain
		Workers:  1,
		DrawWork: unitWork(time.Millisecond),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 80 {
		t.Fatalf("want 80 ops, got %d", res.Completed)
	}

	latP99 := res.Latency.Quantile(0.99)
	svcP99 := res.Service.Quantile(0.99)

	// The send-time view stays near the per-op stall (scheduler jitter
	// allowed for), blind to the queue.
	if svcP99 > 8*stall {
		t.Fatalf("service p99 %v implausibly high for a %v stall", svcP99, stall)
	}
	// The intended-start view must expose the backlog: the last arrivals
	// wait behind dozens of stalled predecessors. A generous floor of 500ms
	// (25× the stall) cannot be reached by send-time measurement.
	if latP99 < 500*time.Millisecond {
		t.Fatalf("coordinated omission: recorded p99 %v does not reflect the backlog (service p99 %v)", latP99, svcP99)
	}
	if latP99 < 5*svcP99 {
		t.Fatalf("intended-start p99 %v not inflated over send-time p99 %v", latP99, svcP99)
	}
}
