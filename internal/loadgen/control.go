package loadgen

import (
	"fmt"
	"time"

	"powerchief/internal/controlplane"
	"powerchief/internal/core"
	"powerchief/internal/telemetry"
)

// ControlOptions configures a control loop attached to a benchmark target,
// so open-loop load runs under an active power-allocation policy instead of
// a static configuration.
type ControlOptions struct {
	// Policy decides each interval. Required.
	Policy core.Policy
	// Interval is the adjust cadence in engine (virtual) time. Zero defaults
	// to the paper's 25 s control period.
	Interval time.Duration
	// Scale compresses wall time for the distributed target (wall = virtual
	// × Scale; zero means real time). The live target scales through its
	// cluster clock and the DES target runs in pure virtual time, so both
	// ignore it.
	Scale float64
	// Audit, when set, is attached to the policy so decisions are logged.
	Audit *telemetry.AuditLog
	// Tap, when set, is attached to the policy (if it implements
	// core.TapSetter) so every adjust interval's decision — snapshot, plan,
	// outcome — is recorded for offline replay.
	Tap core.DecisionTap
}

func (o *ControlOptions) defaults() error {
	if o.Policy == nil {
		return fmt.Errorf("loadgen: control needs a policy")
	}
	if o.Interval <= 0 {
		o.Interval = 25 * time.Second
	}
	return nil
}

// ControlAttacher is implemented by targets that can run the shared control
// plane alongside the load. Stop the returned loop before closing the
// target.
type ControlAttacher interface {
	AttachControl(opts ControlOptions) (*controlplane.Loop, error)
}

// AttachControl runs the policy against the live cluster on its virtual
// clock. The loop gets its own statistics aggregator, fed by the cluster's
// completion callback.
func (t *LiveTarget) AttachControl(opts ControlOptions) (*controlplane.Loop, error) {
	if err := opts.defaults(); err != nil {
		return nil, err
	}
	agg := core.NewAggregatorOptions(opts.Interval, t.cluster.Now, core.AggregatorOptions{
		Window: core.WindowBucketed,
	})
	t.cluster.OnComplete(agg.Ingest)
	return controlplane.Start(t.cluster.Clock(), controlplane.NewAdjuster(t.cluster, agg), controlplane.Options{
		Policy:   opts.Policy,
		Interval: opts.Interval,
		Audit:    opts.Audit,
		Tap:      opts.Tap,
	})
}

// AttachControl runs the policy inside the simulation: adjust epochs are
// deterministic virtual-time events interleaved with the scheduled arrivals.
func (t *DESTarget) AttachControl(opts ControlOptions) (*controlplane.Loop, error) {
	if err := opts.defaults(); err != nil {
		return nil, err
	}
	agg := core.NewAggregator(opts.Interval, t.eng.Now)
	t.sys.OnComplete(agg.Ingest)
	view := core.NewDESView(t.sys)
	return controlplane.Start(controlplane.SimClock(t.eng), controlplane.NewAdjuster(view, agg), controlplane.Options{
		Policy:   opts.Policy,
		Interval: opts.Interval,
		Audit:    opts.Audit,
		Tap:      opts.Tap,
	})
}

// AttachControl runs the policy against the Command Center over RPC, on a
// wall clock compressed by opts.Scale to match the stage services' time
// scale. The center aggregates statistics itself and is the loop's Adjuster.
func (t *DistTarget) AttachControl(opts ControlOptions) (*controlplane.Loop, error) {
	if err := opts.defaults(); err != nil {
		return nil, err
	}
	return controlplane.Start(controlplane.WallClock(opts.Scale), t.center, controlplane.Options{
		Policy:   opts.Policy,
		Interval: opts.Interval,
		Audit:    opts.Audit,
		Tap:      opts.Tap,
	})
}

// Interface conformance: every built-in target accepts a control loop
// (distDeployment wrappers inherit DistTarget's method by promotion).
var (
	_ ControlAttacher = (*LiveTarget)(nil)
	_ ControlAttacher = (*DESTarget)(nil)
	_ ControlAttacher = (*DistTarget)(nil)
)
