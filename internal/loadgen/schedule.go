package loadgen

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"time"
)

// Schedule is a fixed open-loop arrival plan: the intended start offset of
// every operation within a run, decided before the run begins and never
// influenced by how the target responds. Fixing the schedule up front is
// what makes the generator open-loop — a slow target cannot slow the
// arrival process down, it can only accumulate a backlog whose wait shows
// up in the recorded latency (see DESIGN.md §5e on coordinated omission).
//
// Arrivals must be deterministic: two calls with the same horizon return
// identical offsets, so a (schedule, seed) pair names a reproducible run.
type Schedule interface {
	// Name identifies the arrival process in summaries ("constant",
	// "poisson").
	Name() string
	// Rate is the long-run intended arrival rate in operations per second.
	Rate() float64
	// Arrivals returns every intended start offset in [0, horizon),
	// ascending.
	Arrivals(horizon time.Duration) []time.Duration
}

// ConstantRate schedules arrivals at exact 1/rate spacing, starting at
// offset zero. The value is the rate in operations per second.
type ConstantRate float64

// Name implements Schedule.
func (c ConstantRate) Name() string { return "constant" }

// Rate implements Schedule.
func (c ConstantRate) Rate() float64 { return float64(c) }

// Arrivals implements Schedule. Offsets are computed as i/rate from the
// origin rather than by accumulating a per-gap delta, so rounding error
// does not drift across long runs: the k-th arrival is exactly k/rate
// regardless of horizon.
func (c ConstantRate) Arrivals(horizon time.Duration) []time.Duration {
	if c <= 0 || horizon <= 0 {
		return nil
	}
	n := int(float64(c) * horizon.Seconds())
	out := make([]time.Duration, 0, n+1)
	for i := 0; ; i++ {
		at := time.Duration(float64(i) / float64(c) * float64(time.Second))
		if at >= horizon {
			break
		}
		out = append(out, at)
	}
	return out
}

// Poisson schedules arrivals as a homogeneous Poisson process: gaps drawn
// from an exponential distribution with the given mean rate, using a
// dedicated generator seeded with Seed so the schedule is exactly
// reproducible and independent of the work-drawing randomness.
type Poisson struct {
	QPS  float64
	Seed int64
}

// Name implements Schedule.
func (p Poisson) Name() string { return "poisson" }

// Rate implements Schedule.
func (p Poisson) Rate() float64 { return p.QPS }

// Arrivals implements Schedule.
func (p Poisson) Arrivals(horizon time.Duration) []time.Duration {
	if p.QPS <= 0 || horizon <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(p.Seed))
	var out []time.Duration
	at := time.Duration(0)
	for {
		gap := time.Duration(rng.ExpFloat64() / p.QPS * float64(time.Second))
		if gap <= 0 {
			gap = time.Nanosecond
		}
		at += gap
		if at >= horizon {
			return out
		}
		out = append(out, at)
	}
}

// Ramp schedules a linear rate ramp between two QPS endpoints across the
// horizon — the first non-stationary arrival program. Arrivals are placed
// by inverting the cumulative arrival count N(t) = from·t + (to−from)·t²/2T,
// so the instantaneous rate at time t is exactly from + (to−from)·t/T: a
// pure function of the horizon with no accumulation drift and no
// randomness, hence trivially deterministic and shardable.
type Ramp struct {
	FromQPS float64
	ToQPS   float64
}

// Name implements Schedule.
func (r Ramp) Name() string { return "ramp" }

// Rate implements Schedule: the time-averaged rate over the horizon.
func (r Ramp) Rate() float64 { return (r.FromQPS + r.ToQPS) / 2 }

// Arrivals implements Schedule. The k-th arrival is the solution of
// N(t) = k for the quadratic cumulative count, so offsets are exact for any
// horizon — early arrivals are dense when ramping down, sparse when ramping
// up, and the long-run average matches Rate().
func (r Ramp) Arrivals(horizon time.Duration) []time.Duration {
	if r.FromQPS < 0 || r.ToQPS < 0 || r.FromQPS+r.ToQPS <= 0 || horizon <= 0 {
		return nil
	}
	T := horizon.Seconds()
	a := r.FromQPS
	b := (r.ToQPS - r.FromQPS) / T // rate slope per second
	total := int(r.Rate() * T)
	out := make([]time.Duration, 0, total+1)
	for k := 0; ; k++ {
		var tk float64
		if b == 0 {
			tk = float64(k) / a
		} else {
			// Solve a·t + b·t²/2 = k for the positive root.
			disc := a*a + 2*b*float64(k)
			if disc < 0 {
				break // ramping to zero: the integral saturates, no more arrivals
			}
			tk = (math.Sqrt(disc) - a) / b
		}
		at := time.Duration(tk * float64(time.Second))
		if at >= horizon {
			break
		}
		out = append(out, at)
	}
	return out
}

// ParseSchedule builds a schedule from its flag name: "constant",
// "poisson", "ramp:<from>:<to>", "diurnal:<mean>:<amp>:<period>[:<phase>]",
// "flash:<base>:<peak>:<at>:<dur>" or "replay:<file>". Parameterized forms
// carry their own QPS values, so the rate argument is ignored for them;
// durations use Go syntax ("300s", "5m").
func ParseSchedule(name string, rate float64, seed int64) (Schedule, error) {
	if strings.HasPrefix(name, "ramp") {
		rest, _ := strings.CutPrefix(name, "ramp")
		parts := strings.Split(strings.TrimPrefix(rest, ":"), ":")
		if rest == "" || len(parts) != 2 {
			return nil, fmt.Errorf("loadgen: ramp arrivals need two endpoints, e.g. ramp:10:50")
		}
		from, err1 := strconv.ParseFloat(parts[0], 64)
		to, err2 := strconv.ParseFloat(parts[1], 64)
		if err1 != nil || err2 != nil || from < 0 || to < 0 || from+to <= 0 {
			return nil, fmt.Errorf("loadgen: bad ramp endpoints %q (want ramp:<fromQPS>:<toQPS>)", rest)
		}
		return Ramp{FromQPS: from, ToQPS: to}, nil
	}
	if strings.HasPrefix(name, "diurnal") {
		rest := strings.TrimPrefix(strings.TrimPrefix(name, "diurnal"), ":")
		parts := strings.Split(rest, ":")
		if rest == "" || len(parts) < 3 || len(parts) > 4 {
			return nil, fmt.Errorf("loadgen: diurnal arrivals need diurnal:<meanQPS>:<ampQPS>:<period>[:<phase>]")
		}
		mean, err1 := strconv.ParseFloat(parts[0], 64)
		amp, err2 := strconv.ParseFloat(parts[1], 64)
		period, err3 := time.ParseDuration(parts[2])
		var phase time.Duration
		var err4 error
		if len(parts) == 4 {
			phase, err4 = time.ParseDuration(parts[3])
		}
		if err1 != nil || err2 != nil || err3 != nil || err4 != nil ||
			mean <= 0 || amp < 0 || amp > mean || period <= 0 {
			return nil, fmt.Errorf("loadgen: bad diurnal parameters %q (want 0 ≤ amp ≤ mean, positive period)", rest)
		}
		return DiurnalSchedule{MeanQPS: mean, AmpQPS: amp, Period: period, Phase: phase}, nil
	}
	if strings.HasPrefix(name, "flash") {
		rest := strings.TrimPrefix(strings.TrimPrefix(name, "flash"), ":")
		parts := strings.Split(rest, ":")
		if rest == "" || len(parts) != 4 {
			return nil, fmt.Errorf("loadgen: flash arrivals need flash:<baseQPS>:<peakQPS>:<at>:<dur>")
		}
		base, err1 := strconv.ParseFloat(parts[0], 64)
		peak, err2 := strconv.ParseFloat(parts[1], 64)
		at, err3 := time.ParseDuration(parts[2])
		dur, err4 := time.ParseDuration(parts[3])
		if err1 != nil || err2 != nil || err3 != nil || err4 != nil ||
			base < 0 || peak < 0 || base+peak <= 0 || at < 0 || dur <= 0 {
			return nil, fmt.Errorf("loadgen: bad flash parameters %q (want flash:<baseQPS>:<peakQPS>:<at>:<dur>)", rest)
		}
		return FlashSchedule{BaseQPS: base, PeakQPS: peak, At: at, Duration: dur}, nil
	}
	if strings.HasPrefix(name, "replay") {
		path := strings.TrimPrefix(strings.TrimPrefix(name, "replay"), ":")
		if path == "" {
			return nil, fmt.Errorf("loadgen: replay arrivals need replay:<file>")
		}
		f, err := os.Open(path)
		if err != nil {
			return nil, fmt.Errorf("loadgen: replay: %w", err)
		}
		defer f.Close()
		return ReadReplay(f)
	}
	if rate <= 0 {
		return nil, fmt.Errorf("loadgen: rate must be positive, got %v", rate)
	}
	switch name {
	case "constant":
		return ConstantRate(rate), nil
	case "poisson":
		return Poisson{QPS: rate, Seed: seed}, nil
	default:
		return nil, fmt.Errorf("loadgen: unknown arrival process %q (want constant, poisson, ramp:<from>:<to>, diurnal:<mean>:<amp>:<period>, flash:<base>:<peak>:<at>:<dur> or replay:<file>)", name)
	}
}
