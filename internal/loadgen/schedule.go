package loadgen

import (
	"fmt"
	"math/rand"
	"time"
)

// Schedule is a fixed open-loop arrival plan: the intended start offset of
// every operation within a run, decided before the run begins and never
// influenced by how the target responds. Fixing the schedule up front is
// what makes the generator open-loop — a slow target cannot slow the
// arrival process down, it can only accumulate a backlog whose wait shows
// up in the recorded latency (see DESIGN.md §5e on coordinated omission).
//
// Arrivals must be deterministic: two calls with the same horizon return
// identical offsets, so a (schedule, seed) pair names a reproducible run.
type Schedule interface {
	// Name identifies the arrival process in summaries ("constant",
	// "poisson").
	Name() string
	// Rate is the long-run intended arrival rate in operations per second.
	Rate() float64
	// Arrivals returns every intended start offset in [0, horizon),
	// ascending.
	Arrivals(horizon time.Duration) []time.Duration
}

// ConstantRate schedules arrivals at exact 1/rate spacing, starting at
// offset zero. The value is the rate in operations per second.
type ConstantRate float64

// Name implements Schedule.
func (c ConstantRate) Name() string { return "constant" }

// Rate implements Schedule.
func (c ConstantRate) Rate() float64 { return float64(c) }

// Arrivals implements Schedule. Offsets are computed as i/rate from the
// origin rather than by accumulating a per-gap delta, so rounding error
// does not drift across long runs: the k-th arrival is exactly k/rate
// regardless of horizon.
func (c ConstantRate) Arrivals(horizon time.Duration) []time.Duration {
	if c <= 0 || horizon <= 0 {
		return nil
	}
	n := int(float64(c) * horizon.Seconds())
	out := make([]time.Duration, 0, n+1)
	for i := 0; ; i++ {
		at := time.Duration(float64(i) / float64(c) * float64(time.Second))
		if at >= horizon {
			break
		}
		out = append(out, at)
	}
	return out
}

// Poisson schedules arrivals as a homogeneous Poisson process: gaps drawn
// from an exponential distribution with the given mean rate, using a
// dedicated generator seeded with Seed so the schedule is exactly
// reproducible and independent of the work-drawing randomness.
type Poisson struct {
	QPS  float64
	Seed int64
}

// Name implements Schedule.
func (p Poisson) Name() string { return "poisson" }

// Rate implements Schedule.
func (p Poisson) Rate() float64 { return p.QPS }

// Arrivals implements Schedule.
func (p Poisson) Arrivals(horizon time.Duration) []time.Duration {
	if p.QPS <= 0 || horizon <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(p.Seed))
	var out []time.Duration
	at := time.Duration(0)
	for {
		gap := time.Duration(rng.ExpFloat64() / p.QPS * float64(time.Second))
		if gap <= 0 {
			gap = time.Nanosecond
		}
		at += gap
		if at >= horizon {
			return out
		}
		out = append(out, at)
	}
}

// ParseSchedule builds a schedule from its flag name ("constant" or
// "poisson"), rate and seed.
func ParseSchedule(name string, rate float64, seed int64) (Schedule, error) {
	if rate <= 0 {
		return nil, fmt.Errorf("loadgen: rate must be positive, got %v", rate)
	}
	switch name {
	case "constant":
		return ConstantRate(rate), nil
	case "poisson":
		return Poisson{QPS: rate, Seed: seed}, nil
	default:
		return nil, fmt.Errorf("loadgen: unknown arrival process %q (want constant or poisson)", name)
	}
}
