package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Schedule(3*time.Second, func() { got = append(got, 3) })
	e.Schedule(1*time.Second, func() { got = append(got, 1) })
	e.Schedule(2*time.Second, func() { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 3*time.Second {
		t.Errorf("Now() = %v, want 3s", e.Now())
	}
}

func TestTieBreakBySequence(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(time.Second, func() { got = append(got, i) })
	}
	e.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-time events fired out of FIFO order: %v", got)
		}
	}
}

func TestNegativeDelayClampsToNow(t *testing.T) {
	e := NewEngine()
	e.Schedule(time.Second, func() {
		ev := e.Schedule(-5*time.Second, func() {})
		if ev.At() != time.Second {
			t.Errorf("negative delay scheduled at %v, want 1s", ev.At())
		}
	})
	e.Run()
}

func TestScheduleAtPastClamps(t *testing.T) {
	e := NewEngine()
	e.Schedule(2*time.Second, func() {
		ev := e.ScheduleAt(time.Second, func() {})
		if ev.At() != 2*time.Second {
			t.Errorf("past absolute time scheduled at %v, want 2s", ev.At())
		}
	})
	e.Run()
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.Schedule(time.Second, func() { fired = true })
	if !e.Cancel(ev) {
		t.Fatal("Cancel returned false for a pending event")
	}
	if e.Cancel(ev) {
		t.Fatal("Cancel returned true for an already-cancelled event")
	}
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !ev.Canceled() {
		t.Fatal("Canceled() = false after Cancel")
	}
}

func TestCancelFiredEventIsNoop(t *testing.T) {
	e := NewEngine()
	ev := e.Schedule(time.Second, func() {})
	e.Run()
	if e.Cancel(ev) {
		t.Fatal("Cancel returned true for a fired event")
	}
}

func TestRescheduleEarlier(t *testing.T) {
	e := NewEngine()
	var firedAt time.Duration
	ev := e.Schedule(10*time.Second, func() { firedAt = e.Now() })
	e.Schedule(time.Second, func() { e.Reschedule(ev, 2*time.Second) })
	e.Run()
	if firedAt != 3*time.Second {
		t.Errorf("rescheduled event fired at %v, want 3s", firedAt)
	}
}

func TestRescheduleLater(t *testing.T) {
	e := NewEngine()
	var firedAt time.Duration
	ev := e.Schedule(2*time.Second, func() { firedAt = e.Now() })
	e.Schedule(time.Second, func() { e.Reschedule(ev, 9*time.Second) })
	e.Run()
	if firedAt != 10*time.Second {
		t.Errorf("rescheduled event fired at %v, want 10s", firedAt)
	}
}

func TestRescheduleFiredEventSchedulesFresh(t *testing.T) {
	e := NewEngine()
	count := 0
	ev := e.Schedule(time.Second, func() { count++ })
	e.Run()
	if count != 1 {
		t.Fatalf("count = %d, want 1", count)
	}
	e.Reschedule(ev, time.Second)
	e.Run()
	if count != 2 {
		t.Fatalf("after reschedule of fired event, count = %d, want 2", count)
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []time.Duration
	for _, d := range []time.Duration{1, 2, 3, 4, 5} {
		d := d * time.Second
		e.Schedule(d, func() { fired = append(fired, d) })
	}
	e.RunUntil(3 * time.Second)
	if len(fired) != 3 {
		t.Fatalf("fired %d events by t=3s, want 3", len(fired))
	}
	if e.Now() != 3*time.Second {
		t.Errorf("Now() = %v, want 3s", e.Now())
	}
	e.RunUntil(10 * time.Second)
	if len(fired) != 5 {
		t.Fatalf("fired %d events by t=10s, want 5", len(fired))
	}
	// Clock advances to the deadline even with no events left.
	if e.Now() != 10*time.Second {
		t.Errorf("Now() = %v, want 10s", e.Now())
	}
}

func TestHalt(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 0; i < 10; i++ {
		e.Schedule(time.Duration(i)*time.Second, func() {
			count++
			if count == 4 {
				e.Halt()
			}
		})
	}
	e.Run()
	if count != 4 {
		t.Fatalf("count = %d after Halt, want 4", count)
	}
	e.Run() // resumes
	if count != 10 {
		t.Fatalf("count = %d after resume, want 10", count)
	}
}

func TestEvery(t *testing.T) {
	e := NewEngine()
	var times []time.Duration
	stop := e.Every(2*time.Second, func() { times = append(times, e.Now()) })
	e.Schedule(7*time.Second, stop)
	e.RunUntil(20 * time.Second)
	if len(times) != 3 {
		t.Fatalf("periodic fired %d times, want 3 (at 2,4,6s): %v", len(times), times)
	}
	for i, at := range times {
		want := time.Duration(2*(i+1)) * time.Second
		if at != want {
			t.Errorf("firing %d at %v, want %v", i, at, want)
		}
	}
}

func TestEveryStopInsideCallback(t *testing.T) {
	e := NewEngine()
	count := 0
	var stop func()
	stop = e.Every(time.Second, func() {
		count++
		if count == 2 {
			stop()
		}
	})
	e.RunUntil(10 * time.Second)
	if count != 2 {
		t.Fatalf("count = %d, want 2 after stopping inside callback", count)
	}
}

func TestEveryInvalidInterval(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Every(0) did not panic")
		}
	}()
	NewEngine().Every(0, func() {})
}

func TestScheduleNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Schedule(nil) did not panic")
		}
	}()
	NewEngine().Schedule(time.Second, nil)
}

func TestFiredAndPendingCounters(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 5; i++ {
		e.Schedule(time.Duration(i)*time.Second, func() {})
	}
	if e.Pending() != 5 {
		t.Fatalf("Pending = %d, want 5", e.Pending())
	}
	e.Run()
	if e.Fired() != 5 {
		t.Fatalf("Fired = %d, want 5", e.Fired())
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d after Run, want 0", e.Pending())
	}
}

// Property: events fire in nondecreasing time order regardless of the
// insertion order, cancellations, and reschedules applied.
func TestPropertyMonotonicFiring(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		count := int(n)%64 + 1
		var fired []time.Duration
		events := make([]*Event, 0, count)
		for i := 0; i < count; i++ {
			d := time.Duration(rng.Intn(1000)) * time.Millisecond
			events = append(events, e.Schedule(d, func() { fired = append(fired, e.Now()) }))
		}
		// Randomly cancel and reschedule some events up front.
		for i := 0; i < count/3; i++ {
			ev := events[rng.Intn(count)]
			if rng.Intn(2) == 0 {
				e.Cancel(ev)
			} else {
				e.Reschedule(ev, time.Duration(rng.Intn(1000))*time.Millisecond)
			}
		}
		e.Run()
		return sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: with identical seeds the engine fires the same number of events
// and ends at the same virtual time (determinism).
func TestPropertyDeterminism(t *testing.T) {
	run := func(seed int64) (uint64, time.Duration) {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		for i := 0; i < 100; i++ {
			e.Schedule(time.Duration(rng.Intn(5000))*time.Millisecond, func() {})
		}
		e.Run()
		return e.Fired(), e.Now()
	}
	f := func(seed int64) bool {
		f1, t1 := run(seed)
		f2, t2 := run(seed)
		return f1 == f2 && t1 == t2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
