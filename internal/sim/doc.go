// Package sim implements a deterministic discrete-event simulation engine.
//
// The engine drives the PowerChief service model in virtual time: every
// latency-affecting occurrence (query arrival, service completion, control
// interval) is an Event scheduled on a binary heap keyed by virtual time.
// Ties are broken by sequence number so runs are exactly reproducible.
//
// Events are cancellable and reschedulable, which the service model uses to
// re-time an in-flight query when the core it runs on changes frequency.
//
// Entry points: NewEngine; Schedule/ScheduleAt place events, Every installs
// a periodic one (control intervals), Run/RunUntil/Step advance virtual
// time. Determinism here is what makes the figures under results/ and the
// loadgen DES target byte-reproducible per seed.
package sim
