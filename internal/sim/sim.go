package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Event is a scheduled occurrence in virtual time. It is returned by
// Engine.Schedule and can be cancelled or rescheduled until it fires.
type Event struct {
	at       time.Duration
	seq      uint64
	index    int // heap index, -1 when not queued
	fn       func()
	canceled bool
}

// At reports the virtual time the event is scheduled to fire.
func (e *Event) At() time.Duration { return e.at }

// Canceled reports whether the event was cancelled before firing.
func (e *Event) Canceled() bool { return e.canceled }

// Pending reports whether the event is still queued to fire.
func (e *Event) Pending() bool { return e.index >= 0 && !e.canceled }

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}

// Engine is a discrete-event simulator. The zero value is not usable; create
// one with NewEngine.
type Engine struct {
	now    time.Duration
	seq    uint64
	queue  eventQueue
	fired  uint64
	halted bool
}

// NewEngine returns an engine with the virtual clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Fired returns the number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events queued (including cancelled events not
// yet discarded).
func (e *Engine) Pending() int { return len(e.queue) }

// Schedule queues fn to run after delay of virtual time. A negative delay is
// treated as zero (fire as soon as possible, after already-queued events at
// the current instant). The returned Event may be cancelled or rescheduled.
func (e *Engine) Schedule(delay time.Duration, fn func()) *Event {
	if fn == nil {
		panic("sim: Schedule called with nil function")
	}
	if delay < 0 {
		delay = 0
	}
	e.seq++
	ev := &Event{at: e.now + delay, seq: e.seq, fn: fn, index: -1}
	heap.Push(&e.queue, ev)
	return ev
}

// ScheduleAt queues fn at an absolute virtual time. Times in the past are
// clamped to the current instant.
func (e *Engine) ScheduleAt(at time.Duration, fn func()) *Event {
	return e.Schedule(at-e.now, fn)
}

// Cancel removes a pending event. Cancelling a fired or already-cancelled
// event is a no-op. Returns true if the event was pending and is now
// cancelled.
func (e *Engine) Cancel(ev *Event) bool {
	if ev == nil || ev.canceled || ev.index < 0 {
		return false
	}
	ev.canceled = true
	heap.Remove(&e.queue, ev.index)
	ev.index = -1
	return true
}

// Reschedule moves a pending event to fire after delay from now. If the event
// already fired or was cancelled, a fresh event is scheduled with the same
// function. It returns the event that will fire.
func (e *Engine) Reschedule(ev *Event, delay time.Duration) *Event {
	if ev == nil {
		panic("sim: Reschedule called with nil event")
	}
	if delay < 0 {
		delay = 0
	}
	if ev.index >= 0 && !ev.canceled {
		ev.at = e.now + delay
		e.seq++
		ev.seq = e.seq
		heap.Fix(&e.queue, ev.index)
		return ev
	}
	return e.Schedule(delay, ev.fn)
}

// Step executes the next pending event, advancing the clock to its time.
// It returns false when no events remain.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*Event)
		if ev.canceled {
			continue
		}
		if ev.at < e.now {
			panic(fmt.Sprintf("sim: event scheduled in the past: %v < %v", ev.at, e.now))
		}
		e.now = ev.at
		e.fired++
		ev.fn()
		return true
	}
	return false
}

// RunUntil executes events until the virtual clock would pass deadline or no
// events remain. The clock is left at min(deadline, time of last event). The
// engine can be resumed with further RunUntil calls.
func (e *Engine) RunUntil(deadline time.Duration) {
	e.halted = false
	for len(e.queue) > 0 && !e.halted {
		ev := e.queue[0]
		if ev.canceled {
			heap.Pop(&e.queue)
			continue
		}
		if ev.at > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// Run executes all pending events to exhaustion.
func (e *Engine) Run() {
	e.halted = false
	for !e.halted && e.Step() {
	}
}

// Halt stops Run/RunUntil after the currently executing event returns.
func (e *Engine) Halt() { e.halted = true }

// Every schedules fn to run periodically with the given interval, starting
// after one interval. The returned stop function cancels future firings.
// The interval must be positive.
func (e *Engine) Every(interval time.Duration, fn func()) (stop func()) {
	if interval <= 0 {
		panic("sim: Every requires a positive interval")
	}
	stopped := false
	var tick func()
	var ev *Event
	tick = func() {
		if stopped {
			return
		}
		fn()
		if !stopped {
			ev = e.Schedule(interval, tick)
		}
	}
	ev = e.Schedule(interval, tick)
	return func() {
		stopped = true
		e.Cancel(ev)
	}
}
