package sim_test

import (
	"fmt"
	"time"

	"powerchief/internal/sim"
)

// Example shows the engine's core loop: schedule, cancel, run.
func Example() {
	eng := sim.NewEngine()
	eng.Schedule(2*time.Second, func() {
		fmt.Println("second event at", eng.Now())
	})
	first := eng.Schedule(time.Second, func() {
		fmt.Println("first event at", eng.Now())
	})
	doomed := eng.Schedule(3*time.Second, func() {
		fmt.Println("never printed")
	})
	eng.Cancel(doomed)
	eng.Reschedule(first, 500*time.Millisecond)
	eng.Run()
	fmt.Println("clock stopped at", eng.Now())
	// Output:
	// first event at 500ms
	// second event at 2s
	// clock stopped at 2s
}

// ExampleEngine_Every shows periodic control intervals — how the Command
// Center's adjust loop is driven on the simulator.
func ExampleEngine_Every() {
	eng := sim.NewEngine()
	ticks := 0
	stop := eng.Every(25*time.Second, func() {
		ticks++
	})
	eng.RunUntil(100 * time.Second)
	stop()
	fmt.Println("adjust intervals in 100s:", ticks)
	// Output:
	// adjust intervals in 100s: 4
}
