package rpc

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// RetryPolicy bounds retries of idempotent calls. A retry is attempted only
// on transient transport failures (see IsTransient); application errors
// returned by the remote handler are never retried.
type RetryPolicy struct {
	// Max is the number of retries after the first attempt (default 2,
	// negative disables retries).
	Max int
	// BaseBackoff is the first retry delay; each subsequent retry doubles it
	// (default 25ms).
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth (default 1s).
	MaxBackoff time.Duration
	// Jitter is the random fraction added to each delay in [0, Jitter)
	// to decorrelate retry storms across callers (default 0.5).
	Jitter float64
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.Max == 0 {
		p.Max = 2
	}
	if p.Max < 0 {
		p.Max = 0
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 25 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = time.Second
	}
	if p.Jitter <= 0 {
		p.Jitter = 0.5
	}
	return p
}

// backoffRNG feeds retry jitter; guarded because clients retry concurrently.
var (
	backoffMu  sync.Mutex
	backoffRNG = rand.New(rand.NewSource(time.Now().UnixNano()))
)

// Backoff returns the delay before retry `attempt` (0-based): exponential
// growth from BaseBackoff capped at MaxBackoff, plus proportional jitter.
func (p RetryPolicy) Backoff(attempt int) time.Duration {
	p = p.withDefaults()
	d := p.BaseBackoff << uint(attempt)
	if d > p.MaxBackoff || d <= 0 { // d <= 0 guards shift overflow
		d = p.MaxBackoff
	}
	backoffMu.Lock()
	f := backoffRNG.Float64()
	backoffMu.Unlock()
	return d + time.Duration(f*p.Jitter*float64(d))
}

// CallRetry invokes an idempotent method with the client's retry policy:
// transient failures (timeouts, broken connections) are retried with
// exponential backoff and jitter, redialing the connection when it is
// broken. Use only for methods that are safe to execute more than once —
// reads like stage.stats and stage.info, not mutations.
func (c *Client) CallRetry(method string, params any, result any) error {
	policy := c.opts.Retry.withDefaults()
	var err error
	for attempt := 0; ; attempt++ {
		err = c.Call(method, params, result)
		if err == nil || !IsTransient(err) || errors.Is(err, ErrClosed) {
			return err
		}
		if attempt >= policy.Max {
			break
		}
		time.Sleep(policy.Backoff(attempt))
		if c.Broken() {
			if rerr := c.Redial(); rerr != nil {
				err = rerr
				if errors.Is(rerr, ErrClosed) {
					return err
				}
				continue // dial failures consume attempts too
			}
		}
	}
	return fmt.Errorf("rpc: %s failed after %d attempts: %w", method, policy.Max+1, err)
}
