// Package rpc implements the minimal RPC transport of the real-system
// prototype — the role Apache Thrift plays in the paper (§7.1): service
// stages and the Command Center run as separate processes and exchange
// typed messages over TCP. Framing is a 4-byte big-endian length prefix
// followed by a JSON document; requests are pipelined and correlated by ID,
// so one connection serves concurrent callers.
//
// Entry points: NewServer registers handlers by method name; Dial returns a
// Client whose Call enforces per-call deadlines and, with a RetryPolicy,
// retries transient transport failures with capped exponential backoff —
// server-side handler errors are never retried. These deadline/retry
// semantics are what lets internal/dist turn a hung stage into a counted
// error instead of a stuck query.
package rpc
