package rpc

import (
	"encoding/binary"
	"encoding/json"
	"net"
	"testing"
	"time"
)

// Failure injection: the transport must shrug off malformed peers without
// hanging, leaking goroutines, or corrupting other connections.

func dialRaw(t *testing.T, addr string) net.Conn {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn
}

func TestServerRejectsOversizedFrame(t *testing.T) {
	_, addr := newTestServer(t)
	conn := dialRaw(t, addr)
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxMessageSize+1)
	if _, err := conn.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	// The server must close the connection rather than allocate.
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Error("connection still open after oversized frame")
	}
}

func TestServerDropsGarbagePayload(t *testing.T) {
	_, addr := newTestServer(t)
	conn := dialRaw(t, addr)
	payload := []byte("this is not json")
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	conn.Write(hdr[:])
	conn.Write(payload)
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Error("connection survived a garbage frame")
	}
	// Other clients are unaffected.
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var sum int
	if err := c.Call("add", addArgs{2, 2}, &sum); err != nil || sum != 4 {
		t.Errorf("healthy client broken after another's garbage: %d %v", sum, err)
	}
}

func TestServerSurvivesAbruptDisconnects(t *testing.T) {
	_, addr := newTestServer(t)
	for i := 0; i < 20; i++ {
		conn := dialRaw(t, addr)
		// Half a header, then hang up.
		conn.Write([]byte{0, 0})
		conn.Close()
	}
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var out string
	if err := c.Call("echo", "still alive", &out); err != nil || out != "still alive" {
		t.Errorf("server unhealthy after abrupt disconnects: %q %v", out, err)
	}
}

func TestClientSurvivesServerGarbageResponse(t *testing.T) {
	// A raw listener that replies with a malformed frame.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		// Read the request frame fully, then respond with garbage.
		var hdr [4]byte
		if _, err := readFull(conn, hdr[:]); err != nil {
			return
		}
		n := binary.BigEndian.Uint32(hdr[:])
		buf := make([]byte, n)
		if _, err := readFull(conn, buf); err != nil {
			return
		}
		bad := []byte("}{")
		binary.BigEndian.PutUint32(hdr[:], uint32(len(bad)))
		conn.Write(hdr[:])
		conn.Write(bad)
	}()
	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	errCh := make(chan error, 1)
	go func() {
		var out int
		errCh <- c.Call("add", addArgs{1, 1}, &out)
	}()
	select {
	case err := <-errCh:
		if err == nil {
			t.Error("garbage response treated as success")
		}
	case <-time.After(3 * time.Second):
		t.Fatal("client hung on garbage response")
	}
}

func readFull(conn net.Conn, buf []byte) (int, error) {
	total := 0
	for total < len(buf) {
		n, err := conn.Read(buf[total:])
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

func TestResultEncodingFailureReportedToCaller(t *testing.T) {
	s := NewServer()
	HandleFunc(s, "bad", func(struct{}) (any, error) {
		return map[string]any{"ch": make(chan int)}, nil // unmarshalable
	})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	err = c.Call("bad", nil, nil)
	if err == nil {
		t.Error("unencodable result not reported")
	}
	// The connection remains usable.
	var raw json.RawMessage
	if err := c.Call("bad", nil, &raw); err == nil {
		t.Error("second call also should error")
	}
}
