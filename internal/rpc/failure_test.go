package rpc

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"
)

// Failure injection: the transport must shrug off malformed peers without
// hanging, leaking goroutines, or corrupting other connections.

func dialRaw(t *testing.T, addr string) net.Conn {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn
}

func TestServerRejectsOversizedFrame(t *testing.T) {
	_, addr := newTestServer(t)
	conn := dialRaw(t, addr)
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxMessageSize+1)
	if _, err := conn.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	// The server must close the connection rather than allocate.
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Error("connection still open after oversized frame")
	}
}

func TestServerDropsGarbagePayload(t *testing.T) {
	_, addr := newTestServer(t)
	conn := dialRaw(t, addr)
	payload := []byte("this is not json")
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	conn.Write(hdr[:])
	conn.Write(payload)
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Error("connection survived a garbage frame")
	}
	// Other clients are unaffected.
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var sum int
	if err := c.Call("add", addArgs{2, 2}, &sum); err != nil || sum != 4 {
		t.Errorf("healthy client broken after another's garbage: %d %v", sum, err)
	}
}

func TestServerSurvivesAbruptDisconnects(t *testing.T) {
	_, addr := newTestServer(t)
	for i := 0; i < 20; i++ {
		conn := dialRaw(t, addr)
		// Half a header, then hang up.
		conn.Write([]byte{0, 0})
		conn.Close()
	}
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var out string
	if err := c.Call("echo", "still alive", &out); err != nil || out != "still alive" {
		t.Errorf("server unhealthy after abrupt disconnects: %q %v", out, err)
	}
}

func TestClientSurvivesServerGarbageResponse(t *testing.T) {
	// A raw listener that replies with a malformed frame.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		// Read the request frame fully, then respond with garbage.
		var hdr [4]byte
		if _, err := readFull(conn, hdr[:]); err != nil {
			return
		}
		n := binary.BigEndian.Uint32(hdr[:])
		buf := make([]byte, n)
		if _, err := readFull(conn, buf); err != nil {
			return
		}
		bad := []byte("}{")
		binary.BigEndian.PutUint32(hdr[:], uint32(len(bad)))
		conn.Write(hdr[:])
		conn.Write(bad)
	}()
	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	errCh := make(chan error, 1)
	go func() {
		var out int
		errCh <- c.Call("add", addArgs{1, 1}, &out)
	}()
	select {
	case err := <-errCh:
		if err == nil {
			t.Error("garbage response treated as success")
		}
	case <-time.After(3 * time.Second):
		t.Fatal("client hung on garbage response")
	}
}

func readFull(conn net.Conn, buf []byte) (int, error) {
	total := 0
	for total < len(buf) {
		n, err := conn.Read(buf[total:])
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// trickleProxy forwards traffic between a client and backend a few bytes at
// a time with pauses — every frame arrives fragmented across many reads, so
// both peers' framing layers must reassemble partial frames correctly.
func trickleProxy(t *testing.T, backend string, chunk int) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			server, err := net.Dial("tcp", backend)
			if err != nil {
				conn.Close()
				continue
			}
			trickle := func(dst, src net.Conn) {
				defer dst.Close()
				defer src.Close()
				buf := make([]byte, chunk)
				for {
					n, err := src.Read(buf)
					if n > 0 {
						if _, werr := dst.Write(buf[:n]); werr != nil {
							return
						}
						time.Sleep(100 * time.Microsecond)
					}
					if err != nil {
						return
					}
				}
			}
			go trickle(server, conn)
			go trickle(conn, server)
		}
	}()
	return ln.Addr().String()
}

func TestPipeliningSurvivesFragmentedFrames(t *testing.T) {
	_, backend := newTestServer(t)
	addr := trickleProxy(t, backend, 3) // 3-byte fragments: every header splits
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Concurrent callers pipeline over the single fragmented connection;
	// responses must still correlate to the right requests by ID.
	const callers = 8
	const calls = 4
	errs := make(chan error, callers*calls)
	var wg sync.WaitGroup
	for g := 0; g < callers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < calls; i++ {
				var sum int
				a, b := g*100+i, g+i
				if err := c.Call("add", addArgs{a, b}, &sum); err != nil {
					errs <- err
					continue
				}
				if sum != a+b {
					errs <- fmt.Errorf("caller %d call %d: sum = %d, want %d (cross-wired response?)", g, i, sum, a+b)
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestPendingCallsFailOnShortWriteResponse(t *testing.T) {
	// A server that accepts requests but answers with a short write — half a
	// response frame — and hangs up. Every pending pipelined call must fail
	// (not hang) and the client must report broken.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		// Read one full request frame.
		var hdr [4]byte
		if _, err := readFull(conn, hdr[:]); err != nil {
			return
		}
		n := binary.BigEndian.Uint32(hdr[:])
		buf := make([]byte, n)
		if _, err := readFull(conn, buf); err != nil {
			return
		}
		// Announce a 100-byte response but deliver only 10 bytes.
		binary.BigEndian.PutUint32(hdr[:], 100)
		conn.Write(hdr[:])
		conn.Write([]byte("0123456789"))
	}()
	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const callers = 4
	done := make(chan error, callers)
	for g := 0; g < callers; g++ {
		go func() {
			var out int
			done <- c.Call("add", addArgs{1, 2}, &out)
		}()
	}
	for g := 0; g < callers; g++ {
		select {
		case err := <-done:
			if err == nil {
				t.Error("call against a short-writing server succeeded")
			}
		case <-time.After(5 * time.Second):
			t.Fatal("pipelined call hung on short-write response")
		}
	}
	if !c.Broken() {
		t.Error("client not marked broken after truncated response stream")
	}
}

func TestResultEncodingFailureReportedToCaller(t *testing.T) {
	s := NewServer()
	HandleFunc(s, "bad", func(struct{}) (any, error) {
		return map[string]any{"ch": make(chan int)}, nil // unmarshalable
	})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	err = c.Call("bad", nil, nil)
	if err == nil {
		t.Error("unencodable result not reported")
	}
	// The connection remains usable.
	var raw json.RawMessage
	if err := c.Call("bad", nil, &raw); err == nil {
		t.Error("second call also should error")
	}
}
