// Package rpc implements the minimal RPC transport of the real-system
// prototype — the role Apache Thrift plays in the paper (§7.1): service
// stages and the Command Center run as separate processes and exchange
// typed messages over TCP. Framing is a 4-byte big-endian length prefix
// followed by a JSON document; requests are pipelined and correlated by ID,
// so one connection serves concurrent callers.
package rpc

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// MaxMessageSize bounds a single frame (16 MiB); larger frames abort the
// connection rather than exhausting memory.
const MaxMessageSize = 16 << 20

// Request is one RPC call on the wire.
type Request struct {
	ID     uint64          `json:"id"`
	Method string          `json:"method"`
	Params json.RawMessage `json:"params,omitempty"`
}

// Response answers a Request with the same ID.
type Response struct {
	ID     uint64          `json:"id"`
	Error  string          `json:"error,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
}

// writeFrame writes one length-prefixed JSON document.
func writeFrame(w io.Writer, v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("rpc: encoding frame: %w", err)
	}
	if len(payload) > MaxMessageSize {
		return fmt.Errorf("rpc: frame of %d bytes exceeds limit", len(payload))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(payload)
	return err
}

// readFrame reads one length-prefixed JSON document into v.
func readFrame(r io.Reader, v any) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxMessageSize {
		return fmt.Errorf("rpc: frame of %d bytes exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return err
	}
	return json.Unmarshal(payload, v)
}

// Handler serves one method. Params hold the caller's JSON-encoded argument;
// the returned value is JSON-encoded as the result.
type Handler func(params json.RawMessage) (any, error)

// Server dispatches framed requests to registered handlers. Each connection
// gets a reader goroutine; each request is handled on its own goroutine so a
// slow method does not block the connection.
type Server struct {
	mu       sync.RWMutex
	handlers map[string]Handler

	lnMu     sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup
}

// NewServer returns an empty server.
func NewServer() *Server {
	return &Server{handlers: make(map[string]Handler), conns: make(map[net.Conn]struct{})}
}

// Handle registers a method handler. Registering a duplicate method panics —
// it is always a programming error.
func (s *Server) Handle(method string, h Handler) {
	if method == "" || h == nil {
		panic("rpc: Handle requires a method name and handler")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.handlers[method]; dup {
		panic("rpc: duplicate handler for " + method)
	}
	s.handlers[method] = h
}

// HandleFunc registers a typed handler: fn takes the decoded params and
// returns the result. P must be JSON-decodable.
func HandleFunc[P any, R any](s *Server, method string, fn func(P) (R, error)) {
	s.Handle(method, func(raw json.RawMessage) (any, error) {
		var p P
		if len(raw) > 0 {
			if err := json.Unmarshal(raw, &p); err != nil {
				return nil, fmt.Errorf("rpc: bad params for %s: %w", method, err)
			}
		}
		return fn(p)
	})
}

// Listen starts accepting connections on addr and returns the bound
// address (useful with ":0").
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.lnMu.Lock()
	if s.closed {
		s.lnMu.Unlock()
		ln.Close()
		return "", errors.New("rpc: server closed")
	}
	s.listener = ln
	s.lnMu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		s.lnMu.Lock()
		if s.closed {
			s.lnMu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.lnMu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.lnMu.Lock()
		delete(s.conns, conn)
		s.lnMu.Unlock()
	}()
	r := bufio.NewReader(conn)
	var writeMu sync.Mutex
	for {
		var req Request
		if err := readFrame(r, &req); err != nil {
			return
		}
		s.mu.RLock()
		h, ok := s.handlers[req.Method]
		s.mu.RUnlock()
		go func(req Request) {
			resp := Response{ID: req.ID}
			if !ok {
				resp.Error = "rpc: unknown method " + req.Method
			} else if result, err := h(req.Params); err != nil {
				resp.Error = err.Error()
			} else if result != nil {
				payload, err := json.Marshal(result)
				if err != nil {
					resp.Error = "rpc: encoding result: " + err.Error()
				} else {
					resp.Result = payload
				}
			}
			writeMu.Lock()
			defer writeMu.Unlock()
			_ = writeFrame(conn, resp)
		}(req)
	}
}

// Close stops the listener and all connections, waiting for in-flight
// handlers to finish.
func (s *Server) Close() error {
	s.lnMu.Lock()
	s.closed = true
	if s.listener != nil {
		s.listener.Close()
	}
	for conn := range s.conns {
		conn.Close()
	}
	s.lnMu.Unlock()
	s.wg.Wait()
	return nil
}

// Client is a pipelined RPC client over one TCP connection. Safe for
// concurrent use.
type Client struct {
	conn net.Conn

	writeMu sync.Mutex
	nextID  uint64

	mu      sync.Mutex
	pending map[uint64]chan Response
	err     error
	done    chan struct{}
}

// Dial connects to a server.
func Dial(addr string) (*Client, error) {
	return DialTimeout(addr, 5*time.Second)
}

// DialTimeout connects with a dial timeout.
func DialTimeout(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	c := &Client{conn: conn, pending: make(map[uint64]chan Response), done: make(chan struct{})}
	go c.readLoop()
	return c, nil
}

func (c *Client) readLoop() {
	r := bufio.NewReader(c.conn)
	for {
		var resp Response
		if err := readFrame(r, &resp); err != nil {
			c.fail(fmt.Errorf("rpc: connection lost: %w", err))
			return
		}
		c.mu.Lock()
		ch, ok := c.pending[resp.ID]
		delete(c.pending, resp.ID)
		c.mu.Unlock()
		if ok {
			ch <- resp
		}
	}
}

// fail aborts every pending call with err.
func (c *Client) fail(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return
	}
	c.err = err
	close(c.done)
	for id, ch := range c.pending {
		delete(c.pending, id)
		ch <- Response{Error: err.Error()}
	}
}

// Call invokes method with params and decodes the result into result (which
// may be nil to discard it). It blocks until the response arrives or the
// connection fails.
func (c *Client) Call(method string, params any, result any) error {
	var raw json.RawMessage
	if params != nil {
		payload, err := json.Marshal(params)
		if err != nil {
			return fmt.Errorf("rpc: encoding params: %w", err)
		}
		raw = payload
	}
	ch := make(chan Response, 1)

	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return err
	}
	c.nextID++
	id := c.nextID
	c.pending[id] = ch
	c.mu.Unlock()

	c.writeMu.Lock()
	err := writeFrame(c.conn, Request{ID: id, Method: method, Params: raw})
	c.writeMu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return err
	}

	resp := <-ch
	if resp.Error != "" {
		return errors.New(resp.Error)
	}
	if result != nil && len(resp.Result) > 0 {
		return json.Unmarshal(resp.Result, result)
	}
	return nil
}

// Close tears the connection down, failing pending calls.
func (c *Client) Close() error {
	err := c.conn.Close()
	c.fail(errors.New("rpc: client closed"))
	return err
}
