package rpc

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"powerchief/internal/fault"
)

// MaxMessageSize bounds a single frame (16 MiB); larger frames abort the
// connection rather than exhausting memory.
const MaxMessageSize = 16 << 20

// Request is one RPC call on the wire.
type Request struct {
	ID     uint64          `json:"id"`
	Method string          `json:"method"`
	Params json.RawMessage `json:"params,omitempty"`
}

// Response answers a Request with the same ID. Code carries the stable
// fault-sentinel wire code (fault.Code) when the handler's error wraps a
// registered sentinel, so the client can restore sentinel identity; it is
// omitted for plain application errors, keeping the frame layout
// backward-compatible with peers that predate it.
type Response struct {
	ID     uint64          `json:"id"`
	Error  string          `json:"error,omitempty"`
	Code   string          `json:"code,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
}

// writeFrame writes one length-prefixed JSON document.
func writeFrame(w io.Writer, v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("rpc: encoding frame: %w", err)
	}
	if len(payload) > MaxMessageSize {
		return fmt.Errorf("rpc: frame of %d bytes exceeds limit", len(payload))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(payload)
	return err
}

// readFrame reads one length-prefixed JSON document into v.
func readFrame(r io.Reader, v any) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxMessageSize {
		return fmt.Errorf("rpc: frame of %d bytes exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return err
	}
	return json.Unmarshal(payload, v)
}

// Handler serves one method. Params hold the caller's JSON-encoded argument;
// the returned value is JSON-encoded as the result.
type Handler func(params json.RawMessage) (any, error)

// Server dispatches framed requests to registered handlers. Each connection
// gets a reader goroutine; each request is handled on its own goroutine so a
// slow method does not block the connection.
type Server struct {
	mu       sync.RWMutex
	handlers map[string]Handler

	lnMu     sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup
}

// NewServer returns an empty server.
func NewServer() *Server {
	return &Server{handlers: make(map[string]Handler), conns: make(map[net.Conn]struct{})}
}

// Handle registers a method handler. Registering a duplicate method panics —
// it is always a programming error.
func (s *Server) Handle(method string, h Handler) {
	if method == "" || h == nil {
		panic("rpc: Handle requires a method name and handler")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.handlers[method]; dup {
		panic("rpc: duplicate handler for " + method)
	}
	s.handlers[method] = h
}

// HandleFunc registers a typed handler: fn takes the decoded params and
// returns the result. P must be JSON-decodable.
func HandleFunc[P any, R any](s *Server, method string, fn func(P) (R, error)) {
	s.Handle(method, func(raw json.RawMessage) (any, error) {
		var p P
		if len(raw) > 0 {
			if err := json.Unmarshal(raw, &p); err != nil {
				return nil, fmt.Errorf("rpc: bad params for %s: %w", method, err)
			}
		}
		return fn(p)
	})
}

// Listen starts accepting connections on addr and returns the bound
// address (useful with ":0").
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.lnMu.Lock()
	if s.closed {
		s.lnMu.Unlock()
		ln.Close()
		return "", errors.New("rpc: server closed")
	}
	s.listener = ln
	s.lnMu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		s.lnMu.Lock()
		if s.closed {
			s.lnMu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.lnMu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.lnMu.Lock()
		delete(s.conns, conn)
		s.lnMu.Unlock()
	}()
	r := bufio.NewReader(conn)
	var writeMu sync.Mutex
	for {
		var req Request
		if err := readFrame(r, &req); err != nil {
			return
		}
		s.mu.RLock()
		h, ok := s.handlers[req.Method]
		s.mu.RUnlock()
		go func(req Request) {
			resp := Response{ID: req.ID}
			if !ok {
				resp.Error = "rpc: unknown method " + req.Method
			} else if result, err := h(req.Params); err != nil {
				resp.Error = err.Error()
				resp.Code = fault.Code(err)
			} else if result != nil {
				payload, err := json.Marshal(result)
				if err != nil {
					resp.Error = "rpc: encoding result: " + err.Error()
				} else {
					resp.Result = payload
				}
			}
			writeMu.Lock()
			defer writeMu.Unlock()
			_ = writeFrame(conn, resp)
		}(req)
	}
}

// Close stops the listener and all connections, waiting for in-flight
// handlers to finish.
func (s *Server) Close() error {
	s.lnMu.Lock()
	s.closed = true
	if s.listener != nil {
		s.listener.Close()
	}
	for conn := range s.conns {
		conn.Close()
	}
	s.lnMu.Unlock()
	s.wg.Wait()
	return nil
}

// Sentinel transport errors. Both are connection-level conditions — a
// *ServerError, by contrast, is an application-level failure reported by a
// reachable, healthy peer.
var (
	// ErrTimeout marks a call that exceeded its deadline. The connection
	// stays open (a late response is discarded by ID), but callers should
	// treat repeated timeouts as a sign the peer is hung.
	ErrTimeout = errors.New("rpc: call timed out")
	// ErrBroken marks a client whose connection has failed; Redial restores
	// it.
	ErrBroken = errors.New("rpc: connection broken")
	// ErrClosed marks a client closed by its owner; it cannot be redialed.
	ErrClosed = errors.New("rpc: client closed")
)

// ServerError is an application error returned by the remote handler. It is
// never retried: the request reached the peer and was answered. Code carries
// the fault-sentinel wire code when the remote error wrapped one; Unwrap
// resolves it, so errors.Is(err, fault.ErrStageDown) holds across the wire.
type ServerError struct {
	Msg  string
	Code string
}

// Error implements error.
func (e *ServerError) Error() string { return e.Msg }

// Unwrap restores sentinel identity from the wire code: the returned error
// is the registered fault sentinel, or nil for plain application errors and
// codes this build does not know.
func (e *ServerError) Unwrap() error { return fault.FromCode(e.Code) }

// IsTransient reports whether err is a transport-level failure — a timeout,
// a broken or closed connection, a dial or I/O error — for which retrying an
// idempotent call may succeed. Application errors (*ServerError) are not
// transient.
func IsTransient(err error) bool {
	if err == nil {
		return false
	}
	var se *ServerError
	return !errors.As(err, &se)
}

// ClientOptions tunes a client's deadlines and retry behaviour.
type ClientOptions struct {
	// DialTimeout bounds connection establishment (default 5s).
	DialTimeout time.Duration
	// CallTimeout bounds every Call unless overridden per call with
	// CallDeadline. Zero means no deadline (the seed behaviour).
	CallTimeout time.Duration
	// Retry governs CallRetry for idempotent methods.
	Retry RetryPolicy
}

func (o ClientOptions) withDefaults() ClientOptions {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	o.Retry = o.Retry.withDefaults()
	return o
}

// callResult is what a pending call receives: a decoded response or a
// transport error.
type callResult struct {
	resp Response
	err  error
}

// Client is a pipelined RPC client over one TCP connection. Safe for
// concurrent use. A connection failure marks the client broken — every
// pending and future call fails fast with ErrBroken — until Redial
// re-establishes it.
type Client struct {
	addr string
	opts ClientOptions

	writeMu sync.Mutex
	nextID  uint64

	mu      sync.Mutex
	conn    net.Conn
	gen     int // bumped by Redial so a stale readLoop cannot break the new conn
	pending map[uint64]chan callResult
	err     error
	closed  bool
}

// Dial connects to a server.
func Dial(addr string) (*Client, error) {
	return DialOptions(addr, ClientOptions{})
}

// DialTimeout connects with a dial timeout.
func DialTimeout(addr string, timeout time.Duration) (*Client, error) {
	return DialOptions(addr, ClientOptions{DialTimeout: timeout})
}

// DialOptions connects with full client options.
func DialOptions(addr string, opts ClientOptions) (*Client, error) {
	opts = opts.withDefaults()
	conn, err := net.DialTimeout("tcp", addr, opts.DialTimeout)
	if err != nil {
		return nil, err
	}
	c := &Client{addr: addr, opts: opts, conn: conn, pending: make(map[uint64]chan callResult)}
	go c.readLoop(conn, c.gen)
	return c, nil
}

// Broken reports whether the connection has failed (and the client is not
// closed). A broken client can be restored with Redial.
func (c *Client) Broken() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err != nil && !c.closed
}

// Redial drops the broken connection and establishes a fresh one to the same
// address. Pending calls on the old connection have already failed; calls
// issued after Redial returns use the new connection. Redialing a healthy
// client replaces its connection. A closed client cannot be redialed.
func (c *Client) Redial() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	old := c.conn
	c.mu.Unlock()

	conn, err := net.DialTimeout("tcp", c.addr, c.opts.DialTimeout)
	if err != nil {
		return err
	}

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		conn.Close()
		return ErrClosed
	}
	// Abort anything still pending on the old connection, then swap.
	for id, ch := range c.pending {
		delete(c.pending, id)
		ch <- callResult{err: fmt.Errorf("%w: replaced by redial", ErrBroken)}
	}
	c.conn = conn
	c.gen++
	gen := c.gen
	c.err = nil
	c.mu.Unlock()

	if old != nil {
		old.Close()
	}
	go c.readLoop(conn, gen)
	return nil
}

func (c *Client) readLoop(conn net.Conn, gen int) {
	r := bufio.NewReader(conn)
	for {
		var resp Response
		if err := readFrame(r, &resp); err != nil {
			c.fail(gen, fmt.Errorf("%w: %v", ErrBroken, err))
			return
		}
		c.mu.Lock()
		if gen != c.gen {
			c.mu.Unlock()
			return // a redial superseded this connection
		}
		ch, ok := c.pending[resp.ID]
		delete(c.pending, resp.ID)
		c.mu.Unlock()
		if ok {
			ch <- callResult{resp: resp}
		}
	}
}

// fail aborts every pending call with err, provided gen still names the
// current connection (a stale readLoop must not break a redialed client).
func (c *Client) fail(gen int, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if gen != c.gen || c.err != nil {
		return
	}
	c.err = err
	for id, ch := range c.pending {
		delete(c.pending, id)
		ch <- callResult{err: err}
	}
}

// Call invokes method with params and decodes the result into result (which
// may be nil to discard it). It blocks until the response arrives, the
// connection fails, or the client's CallTimeout (if configured) elapses.
func (c *Client) Call(method string, params any, result any) error {
	return c.CallDeadline(method, params, result, c.opts.CallTimeout)
}

// CallDeadline is Call with an explicit per-call deadline. timeout <= 0
// means no deadline. On timeout the call returns an error wrapping
// ErrTimeout; the connection stays open and a late response is discarded.
func (c *Client) CallDeadline(method string, params any, result any, timeout time.Duration) error {
	var raw json.RawMessage
	if params != nil {
		payload, err := json.Marshal(params)
		if err != nil {
			return fmt.Errorf("rpc: encoding params: %w", err)
		}
		raw = payload
	}
	ch := make(chan callResult, 1)

	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return err
	}
	conn := c.conn
	gen := c.gen
	c.nextID++
	id := c.nextID
	c.pending[id] = ch
	c.mu.Unlock()

	c.writeMu.Lock()
	err := writeFrame(conn, Request{ID: id, Method: method, Params: raw})
	c.writeMu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		// A failed write means the connection is dead for everyone, not just
		// this call: mark the client broken immediately (scoped to this
		// connection's generation) so the caller's next exchange redials
		// instead of writing into the same dead socket.
		werr := fmt.Errorf("%w: %v", ErrBroken, err)
		c.fail(gen, werr)
		return werr
	}

	var res callResult
	if timeout > 0 {
		timer := time.NewTimer(timeout)
		defer timer.Stop()
		select {
		case res = <-ch:
		case <-timer.C:
			c.mu.Lock()
			delete(c.pending, id)
			c.mu.Unlock()
			// The response may have been delivered between the timer firing
			// and the delete; prefer it if so.
			select {
			case res = <-ch:
			default:
				return fmt.Errorf("%w: %s after %v", ErrTimeout, method, timeout)
			}
		}
	} else {
		res = <-ch
	}

	if res.err != nil {
		return res.err
	}
	if res.resp.Error != "" {
		return &ServerError{Msg: res.resp.Error, Code: res.resp.Code}
	}
	if result != nil && len(res.resp.Result) > 0 {
		return json.Unmarshal(res.resp.Result, result)
	}
	return nil
}

// Close tears the connection down, failing pending calls. The client cannot
// be redialed afterwards.
func (c *Client) Close() error {
	c.mu.Lock()
	c.closed = true
	gen := c.gen
	conn := c.conn
	c.mu.Unlock()
	var err error
	if conn != nil {
		err = conn.Close()
	}
	c.fail(gen, ErrClosed)
	return err
}
