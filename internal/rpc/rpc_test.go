package rpc

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

type addArgs struct {
	A, B int
}

func newTestServer(t *testing.T) (*Server, string) {
	t.Helper()
	s := NewServer()
	HandleFunc(s, "add", func(a addArgs) (int, error) { return a.A + a.B, nil })
	HandleFunc(s, "fail", func(struct{}) (int, error) { return 0, errors.New("boom") })
	HandleFunc(s, "echo", func(v string) (string, error) { return v, nil })
	HandleFunc(s, "slow", func(d int) (int, error) {
		time.Sleep(time.Duration(d) * time.Millisecond)
		return d, nil
	})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, addr
}

func TestCallRoundTrip(t *testing.T) {
	_, addr := newTestServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var sum int
	if err := c.Call("add", addArgs{A: 2, B: 3}, &sum); err != nil {
		t.Fatal(err)
	}
	if sum != 5 {
		t.Errorf("sum = %d", sum)
	}
}

func TestCallError(t *testing.T) {
	_, addr := newTestServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var out int
	err = c.Call("fail", struct{}{}, &out)
	if err == nil || err.Error() != "boom" {
		t.Errorf("err = %v, want boom", err)
	}
	// The connection survives a handler error.
	if err := c.Call("add", addArgs{A: 1, B: 1}, &out); err != nil || out != 2 {
		t.Errorf("follow-up call = %d, %v", out, err)
	}
}

func TestUnknownMethod(t *testing.T) {
	_, addr := newTestServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	err = c.Call("nope", nil, nil)
	if err == nil || !strings.Contains(err.Error(), "unknown method") {
		t.Errorf("err = %v", err)
	}
}

func TestBadParams(t *testing.T) {
	_, addr := newTestServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var out int
	err = c.Call("add", "not-a-struct", &out)
	if err == nil || !strings.Contains(err.Error(), "bad params") {
		t.Errorf("err = %v", err)
	}
}

func TestNilParamsAndResult(t *testing.T) {
	s := NewServer()
	called := false
	HandleFunc(s, "ping", func(struct{}) (any, error) {
		called = true
		return nil, nil
	})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Call("ping", nil, nil); err != nil {
		t.Fatal(err)
	}
	if !called {
		t.Error("handler not invoked")
	}
}

func TestConcurrentCalls(t *testing.T) {
	_, addr := newTestServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 100)
	for i := 0; i < 100; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var sum int
			if err := c.Call("add", addArgs{A: i, B: i}, &sum); err != nil {
				errs <- err
				return
			}
			if sum != 2*i {
				errs <- fmt.Errorf("call %d: sum=%d", i, sum)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestPipeliningNotHeadOfLineBlocked(t *testing.T) {
	_, addr := newTestServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	var wg sync.WaitGroup
	fastDone := make(chan time.Duration, 1)
	wg.Add(2)
	go func() {
		defer wg.Done()
		var out int
		_ = c.Call("slow", 300, &out)
	}()
	time.Sleep(20 * time.Millisecond) // slow call is in flight
	go func() {
		defer wg.Done()
		var out string
		if err := c.Call("echo", "hi", &out); err == nil {
			fastDone <- time.Since(start)
		}
	}()
	wg.Wait()
	select {
	case d := <-fastDone:
		if d > 250*time.Millisecond {
			t.Errorf("fast call took %v behind a 300ms call: head-of-line blocking", d)
		}
	default:
		t.Fatal("fast call failed")
	}
}

func TestMultipleClients(t *testing.T) {
	_, addr := newTestServer(t)
	for i := 0; i < 5; i++ {
		c, err := Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		var out string
		if err := c.Call("echo", fmt.Sprintf("c%d", i), &out); err != nil || out != fmt.Sprintf("c%d", i) {
			t.Errorf("client %d: %q %v", i, out, err)
		}
		c.Close()
	}
}

func TestServerCloseFailsPendingCalls(t *testing.T) {
	s, addr := newTestServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	done := make(chan error, 1)
	go func() {
		var out int
		done <- c.Call("slow", 5000, &out)
	}()
	time.Sleep(50 * time.Millisecond)
	s.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Error("pending call succeeded after server close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("pending call hung after server close")
	}
}

func TestClientCloseFailsCalls(t *testing.T) {
	_, addr := newTestServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	if err := c.Call("add", addArgs{1, 2}, nil); err == nil {
		t.Error("call on closed client succeeded")
	}
}

func TestDuplicateHandlerPanics(t *testing.T) {
	s := NewServer()
	s.Handle("x", func(p json.RawMessage) (any, error) { return nil, nil })
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate handler did not panic")
		}
	}()
	s.Handle("x", func(p json.RawMessage) (any, error) { return nil, nil })
}

func TestDialFailure(t *testing.T) {
	if _, err := DialTimeout("127.0.0.1:1", 200*time.Millisecond); err == nil {
		t.Error("dial to a closed port succeeded")
	}
}
