package rpc

import (
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"
)

func TestCallDeadlineExpiresOnSlowHandler(t *testing.T) {
	_, addr := newTestServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	err = c.CallDeadline("slow", 2000, nil, 50*time.Millisecond)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("timeout took %v, deadline was 50ms", elapsed)
	}
	// The connection survives a timeout: a late response is discarded by ID
	// and subsequent calls work.
	var sum int
	if err := c.Call("add", addArgs{3, 4}, &sum); err != nil || sum != 7 {
		t.Errorf("call after timeout: %d, %v", sum, err)
	}
}

func TestCallTimeoutOptionAppliesToEveryCall(t *testing.T) {
	_, addr := newTestServer(t)
	c, err := DialOptions(addr, ClientOptions{CallTimeout: 40 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Call("slow", 2000, nil); !errors.Is(err, ErrTimeout) {
		t.Errorf("err = %v, want ErrTimeout", err)
	}
	var sum int
	if err := c.Call("add", addArgs{1, 2}, &sum); err != nil || sum != 3 {
		t.Errorf("fast call under CallTimeout: %d, %v", sum, err)
	}
}

func TestServerErrorIsNotTransient(t *testing.T) {
	_, addr := newTestServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	err = c.Call("fail", nil, nil)
	var se *ServerError
	if !errors.As(err, &se) {
		t.Fatalf("err = %T %v, want *ServerError", err, err)
	}
	if IsTransient(err) {
		t.Error("application error classified transient")
	}
	if !IsTransient(ErrTimeout) || !IsTransient(ErrBroken) {
		t.Error("transport errors not classified transient")
	}
	if IsTransient(nil) {
		t.Error("nil error classified transient")
	}
}

func TestBrokenAndRedial(t *testing.T) {
	s, addr := newTestServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var sum int
	if err := c.Call("add", addArgs{1, 1}, &sum); err != nil {
		t.Fatal(err)
	}
	// Kill every server-side connection; the client must notice.
	s.Close()
	deadline := time.Now().Add(2 * time.Second)
	for !c.Broken() && time.Now().Before(deadline) {
		c.CallDeadline("add", addArgs{1, 1}, nil, 20*time.Millisecond)
		time.Sleep(5 * time.Millisecond)
	}
	if !c.Broken() {
		t.Fatal("client never noticed the dead server")
	}
	if err := c.Call("add", addArgs{1, 1}, nil); !errors.Is(err, ErrBroken) {
		t.Errorf("call on broken client = %v, want ErrBroken", err)
	}
	// Restart a server on the same address and redial.
	s2 := NewServer()
	HandleFunc(s2, "add", func(a addArgs) (int, error) { return a.A + a.B, nil })
	if _, err := s2.Listen(addr); err != nil {
		t.Skipf("cannot rebind %s: %v", addr, err)
	}
	defer s2.Close()
	if err := c.Redial(); err != nil {
		t.Fatal(err)
	}
	if c.Broken() {
		t.Error("client still broken after redial")
	}
	if err := c.Call("add", addArgs{20, 22}, &sum); err != nil || sum != 42 {
		t.Errorf("call after redial: %d, %v", sum, err)
	}
}

func TestCloseForbidsRedial(t *testing.T) {
	_, addr := newTestServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	if c.Broken() {
		t.Error("closed client reports broken")
	}
	if err := c.Redial(); !errors.Is(err, ErrClosed) {
		t.Errorf("redial on closed client = %v, want ErrClosed", err)
	}
	if err := c.Call("add", addArgs{1, 1}, nil); !errors.Is(err, ErrClosed) {
		t.Errorf("call on closed client = %v, want ErrClosed", err)
	}
}

func TestCallRetrySucceedsAfterTransientFailure(t *testing.T) {
	// A flaky listener: kills the first connection's first request, serves
	// honestly afterwards via a real server on another address is complex;
	// instead drop the first N connections at accept time.
	var drops atomic.Int32
	drops.Store(1)
	s := NewServer()
	HandleFunc(s, "add", func(a addArgs) (int, error) { return a.A + a.B, nil })
	inner, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			if drops.Add(-1) >= 0 {
				conn.Close() // injected fault: reset the connection
				continue
			}
			backend, err := net.Dial("tcp", inner)
			if err != nil {
				conn.Close()
				continue
			}
			go proxyCopy(conn, backend)
			go proxyCopy(backend, conn)
		}
	}()

	c, err := DialOptions(ln.Addr().String(), ClientOptions{
		CallTimeout: 500 * time.Millisecond,
		Retry:       RetryPolicy{Max: 3, BaseBackoff: 5 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var sum int
	if err := c.CallRetry("add", addArgs{2, 3}, &sum); err != nil {
		t.Fatalf("CallRetry: %v", err)
	}
	if sum != 5 {
		t.Errorf("sum = %d", sum)
	}
}

func proxyCopy(dst, src net.Conn) {
	defer dst.Close()
	defer src.Close()
	buf := make([]byte, 4096)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			if _, werr := dst.Write(buf[:n]); werr != nil {
				return
			}
		}
		if err != nil {
			return
		}
	}
}

func TestCallRetryGivesUpAfterMax(t *testing.T) {
	// Dead address: every attempt fails at dial/connection level.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	c, err := DialOptions(addr, ClientOptions{
		CallTimeout: 50 * time.Millisecond,
		Retry:       RetryPolicy{Max: 2, BaseBackoff: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ln.Close() // nothing ever answers
	start := time.Now()
	err = c.CallRetry("add", addArgs{1, 1}, nil)
	if err == nil {
		t.Fatal("retry against a dead server succeeded")
	}
	if !IsTransient(err) {
		t.Errorf("final error not transient: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Errorf("retries took %v, budget was ~160ms+backoff", elapsed)
	}
}

func TestCallRetryDoesNotRetryServerErrors(t *testing.T) {
	var calls atomic.Int32
	s := NewServer()
	HandleFunc(s, "fail", func(struct{}) (int, error) {
		calls.Add(1)
		return 0, errors.New("boom")
	})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.CallRetry("fail", nil, nil); err == nil {
		t.Fatal("server error swallowed")
	}
	if n := calls.Load(); n != 1 {
		t.Errorf("handler ran %d times, want exactly 1 (no retry on application error)", n)
	}
}

func TestBackoffGrowsAndCaps(t *testing.T) {
	p := RetryPolicy{Max: 10, BaseBackoff: 10 * time.Millisecond, MaxBackoff: 80 * time.Millisecond, Jitter: 0.25}
	prevMin := time.Duration(0)
	for attempt := 0; attempt < 8; attempt++ {
		d := p.Backoff(attempt)
		base := p.BaseBackoff << uint(attempt)
		if base > p.MaxBackoff {
			base = p.MaxBackoff
		}
		if d < base || d > base+time.Duration(0.25*float64(base)) {
			t.Errorf("attempt %d: backoff %v outside [%v, %v]", attempt, d, base, base+base/4)
		}
		if base < prevMin {
			t.Errorf("attempt %d: base shrank", attempt)
		}
		prevMin = base
	}
}
