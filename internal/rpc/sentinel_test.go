package rpc

import (
	"encoding/json"
	"errors"
	"fmt"
	"testing"

	"powerchief/internal/fault"
)

// startSentinelServer serves one method per registered fault sentinel plus a
// plain-error method, returning the bound address.
func startSentinelServer(t *testing.T) string {
	t.Helper()
	srv := NewServer()
	HandleFunc(srv, "fail.stage", func(struct{}) (struct{}, error) {
		return struct{}{}, fmt.Errorf("submit rejected: %w", fault.ErrStageDown)
	})
	HandleFunc(srv, "fail.node", func(struct{}) (struct{}, error) {
		return struct{}{}, fmt.Errorf("grant rejected: %w", fault.ErrNodeDown)
	})
	HandleFunc(srv, "fail.epoch", func(struct{}) (struct{}, error) {
		return struct{}{}, fmt.Errorf("report fenced: %w", fault.ErrStaleEpoch)
	})
	HandleFunc(srv, "fail.plain", func(struct{}) (struct{}, error) {
		return struct{}{}, errors.New("just an application error")
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	return addr
}

// TestSentinelRoundTrip pins the wire contract for fault sentinels: after a
// handler error wrapping a registered sentinel crosses the RPC boundary,
// errors.Is against the same sentinel must still hold on the client side,
// and the error must still classify as an application (non-transient) error.
func TestSentinelRoundTrip(t *testing.T) {
	addr := startSentinelServer(t)
	client, err := Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer client.Close()

	cases := []struct {
		method   string
		sentinel error
	}{
		{"fail.stage", fault.ErrStageDown},
		{"fail.node", fault.ErrNodeDown},
		{"fail.epoch", fault.ErrStaleEpoch},
	}
	for _, tc := range cases {
		err := client.Call(tc.method, struct{}{}, nil)
		if err == nil {
			t.Fatalf("%s: expected error", tc.method)
		}
		if !errors.Is(err, tc.sentinel) {
			t.Errorf("%s: errors.Is(%v, %v) = false after wire round-trip", tc.method, err, tc.sentinel)
		}
		if IsTransient(err) {
			t.Errorf("%s: sentinel-coded server error misclassified as transient", tc.method)
		}
		if !fault.IsDegraded(err) {
			t.Errorf("%s: decoded error should classify as degraded", tc.method)
		}
		// A sentinel match must not bleed into unrelated sentinels.
		for _, other := range cases {
			if other.sentinel != tc.sentinel && errors.Is(err, other.sentinel) {
				t.Errorf("%s: decoded error also matches unrelated sentinel %v", tc.method, other.sentinel)
			}
		}
	}

	// A plain application error carries no code and matches no sentinel.
	err = client.Call("fail.plain", struct{}{}, nil)
	var se *ServerError
	if !errors.As(err, &se) {
		t.Fatalf("fail.plain: expected *ServerError, got %v", err)
	}
	if se.Code != "" {
		t.Errorf("fail.plain: unexpected wire code %q", se.Code)
	}
	if fault.IsDegraded(err) {
		t.Errorf("fail.plain: plain error misclassified as degraded")
	}
}

// TestSentinelUnknownCode pins forward compatibility: a code this build does
// not know degrades to a plain application error instead of failing decode.
func TestSentinelUnknownCode(t *testing.T) {
	se := &ServerError{Msg: "future failure", Code: "some-future-code"}
	if got := se.Unwrap(); got != nil {
		t.Fatalf("unknown code unwrapped to %v, want nil", got)
	}
	if fault.IsDegraded(se) {
		t.Fatalf("unknown code misclassified as degraded")
	}
}

// TestResponseWireCompat pins the frame layout: Code is omitted when empty so
// old peers see byte-identical error responses.
func TestResponseWireCompat(t *testing.T) {
	payload, err := json.Marshal(Response{ID: 7, Error: "boom"})
	if err != nil {
		t.Fatal(err)
	}
	if want := `{"id":7,"error":"boom"}`; string(payload) != want {
		t.Fatalf("uncoded response encodes as %s, want %s", payload, want)
	}
	var resp Response
	if err := json.Unmarshal([]byte(`{"id":7,"error":"down","code":"node-down"}`), &resp); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(&ServerError{Msg: resp.Error, Code: resp.Code}, fault.ErrNodeDown) {
		t.Fatalf("coded response did not restore sentinel identity")
	}
}
