package benchnet

import (
	"strings"
	"testing"
	"time"

	"powerchief/internal/loadgen"
)

func baselineSummary() loadgen.Summary {
	return summaryOf(benchSamples(8000), 1.05, 10000,
		loadgen.Provenance{GitRevision: "abc", GoVersion: "go1.22", Hostname: "ci", Agents: 1})
}

func TestCompareSelfPasses(t *testing.T) {
	s := baselineSummary()
	regs, warns, err := Compare(s, s, Thresholds{})
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("self-comparison regressed: %v", regs)
	}
	if len(warns) != 0 {
		t.Fatalf("self-comparison warned: %v", warns)
	}
}

func TestCompareFlagsP99Regression(t *testing.T) {
	old := baselineSummary()
	// Inject a 2× tail regression: double every sample above ~the p95, leave
	// the body alone. p99/p999 blow past their thresholds; p50 must not.
	samples := benchSamples(8000)
	for i, s := range samples {
		if s > 95*time.Millisecond {
			samples[i] = 2 * s
		}
	}
	new := summaryOf(samples, 1.05, 10000, *old.Provenance)

	regs, _, err := Compare(old, new, Thresholds{})
	if err != nil {
		t.Fatal(err)
	}
	found := map[string]bool{}
	for _, r := range regs {
		found[r.Metric] = true
	}
	if !found["latency_p99_ms"] || !found["latency_p999_ms"] {
		t.Fatalf("2x tail not flagged: %v", regs)
	}
	if found["latency_p50_ms"] {
		t.Fatalf("median flagged though only the tail regressed: %v", regs)
	}
}

func TestCompareFlagsThroughputAndErrors(t *testing.T) {
	old := baselineSummary()
	new := baselineSummary()
	new.AchievedQPS = old.AchievedQPS * 0.8 // 20% drop > 10% default
	new.Errors = new.Issued / 20            // 5 points > 1 point default

	regs, _, err := Compare(old, new, Thresholds{})
	if err != nil {
		t.Fatal(err)
	}
	found := map[string]bool{}
	for _, r := range regs {
		found[r.Metric] = true
	}
	if !found["achieved_qps"] || !found["error_rate_pct"] {
		t.Fatalf("throughput/error regressions not flagged: %v", regs)
	}
}

func TestCompareRefusesDifferentExperiments(t *testing.T) {
	old := baselineSummary()
	for _, mutate := range []func(*loadgen.Summary){
		func(s *loadgen.Summary) { s.Seed = 99 },
		func(s *loadgen.Summary) { s.Schedule = "constant" },
		func(s *loadgen.Summary) { s.RateQPS = 50 },
		func(s *loadgen.Summary) { s.Duration = "20s" },
		func(s *loadgen.Summary) { s.Agents = 4 },
	} {
		new := baselineSummary()
		mutate(&new)
		if _, _, err := Compare(old, new, Thresholds{}); err == nil {
			t.Fatalf("comparison accepted a different experiment: %+v vs baseline", new)
		}
	}
}

func TestCompareForceDowngradesToWarnings(t *testing.T) {
	old := baselineSummary()
	new := baselineSummary()
	new.Seed = 99
	new.Provenance.GitRevision = "def"

	regs, warns, err := Compare(old, new, Thresholds{Force: true})
	if err != nil {
		t.Fatalf("force did not override the refusal: %v", err)
	}
	if len(regs) != 0 {
		t.Fatalf("unexpected regressions: %v", regs)
	}
	var sawSeed, sawRev bool
	for _, w := range warns {
		sawSeed = sawSeed || strings.Contains(w, "seed")
		sawRev = sawRev || strings.Contains(w, "git revision drift")
	}
	if !sawSeed || !sawRev {
		t.Fatalf("expected seed + revision warnings, got %v", warns)
	}
}

// TestCompareWarnsOnIngestBatchingDrift: a baseline measured with per-record
// ingest against a candidate with delta batching (or different batching) has
// different statistic-staleness bounds — cmp warns instead of comparing
// silently.
func TestCompareWarnsOnIngestBatchingDrift(t *testing.T) {
	old := baselineSummary()
	new := baselineSummary()
	new.Provenance.IngestBatch = 256
	new.Provenance.IngestIntervalMS = 100

	regs, warns, err := Compare(old, new, Thresholds{})
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("ingest config drift must warn, not regress: %v", regs)
	}
	var saw bool
	for _, w := range warns {
		saw = saw || strings.Contains(w, "ingest batching drift")
	}
	if !saw {
		t.Fatalf("no ingest batching warning in %v", warns)
	}

	// Identical batching on both sides stays silent.
	old.Provenance.IngestBatch, old.Provenance.IngestIntervalMS = 256, 100
	if _, warns, err = Compare(old, new, Thresholds{}); err != nil || len(warns) != 0 {
		t.Fatalf("matched ingest config warned: %v (err %v)", warns, err)
	}
}

// TestRunSpecStampProvenance: a dist spec with batching enabled records its
// staleness configuration on the summary; other specs leave it untouched.
func TestRunSpecStampProvenance(t *testing.T) {
	sum := baselineSummary()
	RunSpec{Target: "dist", IngestBatch: 64, IngestInterval: 50 * time.Millisecond}.StampProvenance(&sum)
	if sum.Provenance.IngestBatch != 64 || sum.Provenance.IngestIntervalMS != 50 {
		t.Fatalf("stamped provenance = %+v", sum.Provenance)
	}

	// Interval 0 records the stats default, so two artifacts that ran the
	// same config spelled differently still compare clean.
	sum2 := baselineSummary()
	RunSpec{Target: "dist", IngestBatch: 64}.StampProvenance(&sum2)
	if sum2.Provenance.IngestIntervalMS != 100 {
		t.Fatalf("default interval stamp = %v, want 100ms", sum2.Provenance.IngestIntervalMS)
	}

	sum3 := baselineSummary()
	RunSpec{Target: "des", IngestBatch: 64}.StampProvenance(&sum3)
	if sum3.Provenance.IngestBatch != 0 {
		t.Fatalf("non-dist spec stamped ingest provenance: %+v", sum3.Provenance)
	}
}

func TestCompareFallsBackToStoredQuantiles(t *testing.T) {
	// Artifacts predating the histogram field carry only the quantile block.
	old := baselineSummary()
	old.LatencyHist = nil
	new := baselineSummary()
	new.LatencyHist = nil
	new.LatencyMS.P99 = old.LatencyMS.P99 * 2

	regs, _, err := Compare(old, new, Thresholds{})
	if err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, r := range regs {
		found = found || r.Metric == "latency_p99_ms"
	}
	if !found {
		t.Fatalf("histogram-less p99 regression not flagged: %v", regs)
	}
}
