package benchnet

import (
	"testing"
	"time"
)

// replay feeds a synthetic run into the detector: every step, the cumulative
// count grows by rate(t)·step. It returns the first time Stable fired, or -1.
func replay(at *AutoTerm, step, total time.Duration, rate func(t time.Duration) float64) time.Duration {
	var completed float64
	for t := step; t <= total; t += step {
		completed += rate(t) * step.Seconds()
		at.Observe(t, uint64(completed))
		if at.Stable() {
			return t
		}
	}
	return -1
}

func TestAutoTermStabilizes(t *testing.T) {
	at := &AutoTerm{Dur: time.Second, Pct: 7.5}
	fired := replay(at, 100*time.Millisecond, 5*time.Second, func(time.Duration) float64 { return 1000 })
	if fired < 0 {
		t.Fatal("constant throughput never declared stable")
	}
	if fired < at.Dur*9/10 {
		t.Fatalf("stable at %v, before the %v window could fill", fired, at.Dur)
	}
}

func TestAutoTermNeverStabilizesOnTrend(t *testing.T) {
	// Throughput keeps climbing: each trailing window's second half beats its
	// first by ~window/t relative — above 7.5% for the whole run.
	at := &AutoTerm{Dur: time.Second, Pct: 7.5}
	if fired := replay(at, 100*time.Millisecond, 4*time.Second, func(t time.Duration) float64 {
		return 1000 * t.Seconds()
	}); fired >= 0 {
		t.Fatalf("climbing throughput declared stable at %v", fired)
	}
}

func TestAutoTermNeverStabilizesOnOscillation(t *testing.T) {
	// Square wave whose plateaus (700ms) don't divide the half-window: every
	// trailing window's halves average different mixes of the two plateaus,
	// so they keep disagreeing. (Plateau lengths commensurate with the
	// half-window can alias to equal halves — that is the detector's blind
	// spot, and why Pct should stay tight.)
	at := &AutoTerm{Dur: time.Second, Pct: 7.5}
	if fired := replay(at, 100*time.Millisecond, 6*time.Second, func(t time.Duration) float64 {
		if int(t/(700*time.Millisecond))%2 == 0 {
			return 200
		}
		return 1000
	}); fired >= 0 {
		t.Fatalf("oscillating throughput declared stable at %v", fired)
	}
}

func TestAutoTermDisabledAndEdgeCases(t *testing.T) {
	disabled := &AutoTerm{}
	if fired := replay(disabled, 100*time.Millisecond, 3*time.Second, func(time.Duration) float64 { return 500 }); fired >= 0 {
		t.Fatalf("zero-window detector declared stable at %v", fired)
	}

	at := &AutoTerm{Dur: time.Second}
	at.Observe(time.Second, 100)
	at.Observe(500*time.Millisecond, 50) // out of order: dropped
	if got := len(at.samples); got != 1 {
		t.Fatalf("out-of-order sample kept: %d samples", got)
	}
	if at.Stable() {
		t.Fatal("one sample cannot be stable")
	}
}

func TestAutoTermTrimsHistory(t *testing.T) {
	at := &AutoTerm{Dur: time.Second}
	for i := 1; i <= 1000; i++ {
		at.Observe(time.Duration(i)*100*time.Millisecond, uint64(i*100))
	}
	// Samples older than 2× the window must be gone: 2s of history at 100ms
	// spacing is ~21 samples, never 1000.
	if got := len(at.samples); got > 25 {
		t.Fatalf("history not trimmed: %d samples retained", got)
	}
}
