package benchnet

import (
	"testing"
	"time"

	"powerchief/internal/loadgen"
	"powerchief/internal/stats"
)

// benchSamples is a deterministic latency population with a long tail.
func benchSamples(n int) []time.Duration {
	out := make([]time.Duration, n)
	for i := range out {
		d := time.Duration(1+i%97) * time.Millisecond
		if i%50 == 0 {
			d *= 12 // tail
		}
		out[i] = d
	}
	return out
}

// summaryOf builds a single-agent summary over the given latency samples.
func summaryOf(samples []time.Duration, growth float64, wallMS float64, prov loadgen.Provenance) loadgen.Summary {
	h := stats.NewHistogram(growth)
	for _, s := range samples {
		h.Observe(s)
	}
	d := h.Digest()
	q, err := loadgen.QuantilesFromDigest(d)
	if err != nil {
		panic(err)
	}
	n := uint64(len(samples))
	return loadgen.Summary{
		Target: "dist", Schedule: "poisson", RateQPS: 25, Duration: "10s",
		Workers: 8, Seed: 7, Agents: 1,
		Issued: n, Completed: n,
		WallMS: wallMS, AchievedQPS: float64(n) / (wallMS / 1000),
		LatencyMS: q, LatencyHist: d,
		Provenance: &prov,
	}
}

func TestMergeShardedSummariesExact(t *testing.T) {
	const shards = 4
	all := benchSamples(8000)
	parts := make([][]time.Duration, shards)
	for i, s := range all {
		parts[i%shards] = append(parts[i%shards], s)
	}
	prov := loadgen.Provenance{GitRevision: "abc", GoVersion: "go1.22", Hostname: "host-a", Agents: 1}
	sums := make([]loadgen.Summary, shards)
	for i, p := range parts {
		sums[i] = summaryOf(p, 1.05, float64(9000+i*100), prov)
	}

	merged, err := Merge(sums)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Agents != shards {
		t.Fatalf("Agents = %d, want %d", merged.Agents, shards)
	}
	if merged.Issued != 8000 || merged.Completed != 8000 {
		t.Fatalf("counts = %d/%d, want 8000/8000", merged.Issued, merged.Completed)
	}
	if merged.WallMS != 9300 {
		t.Fatalf("WallMS = %v, want the slowest agent's 9300", merged.WallMS)
	}
	if want := 8000 / 9.3; absDiff(merged.AchievedQPS, want) > 1e-9 {
		t.Fatalf("AchievedQPS = %v, want %v", merged.AchievedQPS, want)
	}

	// The merged quantiles must equal a single histogram over the union —
	// the distributions merge exactly, not approximately.
	whole := stats.NewHistogram(1.05)
	for _, s := range all {
		whole.Observe(s)
	}
	for _, q := range []struct {
		name      string
		got, want time.Duration
	}{
		{"p50", quantileMS(t, merged, 0.50), whole.Quantile(0.50)},
		{"p99", quantileMS(t, merged, 0.99), whole.Quantile(0.99)},
		{"p999", quantileMS(t, merged, 0.999), whole.Quantile(0.999)},
	} {
		if q.got != q.want {
			t.Fatalf("merged %s = %v, single-histogram %s = %v", q.name, q.got, q.name, q.want)
		}
	}
	if merged.Provenance == nil || merged.Provenance.Agents != shards || merged.Provenance.Hostname != "host-a" {
		t.Fatalf("merged provenance = %+v", merged.Provenance)
	}
}

func quantileMS(t *testing.T, s loadgen.Summary, p float64) time.Duration {
	t.Helper()
	h, err := stats.FromDigest(s.LatencyHist)
	if err != nil {
		t.Fatal(err)
	}
	return h.Quantile(p)
}

func absDiff(a, b float64) float64 {
	if a > b {
		return a - b
	}
	return b - a
}

func TestMergeRefusesMismatches(t *testing.T) {
	prov := loadgen.Provenance{Hostname: "h"}
	a := summaryOf(benchSamples(100), 1.05, 1000, prov)
	b := summaryOf(benchSamples(100), 1.05, 1000, prov)

	b.Seed = 99
	if _, err := Merge([]loadgen.Summary{a, b}); err == nil {
		t.Fatal("merge accepted summaries with different seeds")
	}

	c := summaryOf(benchSamples(100), 1.25, 1000, prov)
	if _, err := Merge([]loadgen.Summary{a, c}); err == nil {
		t.Fatal("merge accepted summaries with different histogram growth")
	}

	d := a
	d.LatencyHist = nil
	if _, err := Merge([]loadgen.Summary{a, d}); err == nil {
		t.Fatal("merge accepted a summary without a histogram")
	}

	if _, err := Merge(nil); err == nil {
		t.Fatal("merge accepted an empty set")
	}
}

func TestMergeMarksDivergentProvenance(t *testing.T) {
	a := summaryOf(benchSamples(100), 1.05, 1000, loadgen.Provenance{GitRevision: "abc", GoVersion: "go1.22", Hostname: "host-a"})
	b := summaryOf(benchSamples(100), 1.05, 1000, loadgen.Provenance{GitRevision: "def", GoVersion: "go1.22", Hostname: "host-b"})
	merged, err := Merge([]loadgen.Summary{a, b})
	if err != nil {
		t.Fatal(err)
	}
	p := merged.Provenance
	if p == nil {
		t.Fatal("merged summary lost provenance")
	}
	if p.GitRevision != "mixed" || p.Hostname != "mixed" {
		t.Fatalf("divergent fields not marked mixed: %+v", p)
	}
	if p.GoVersion != "go1.22" {
		t.Fatalf("agreeing go version not kept: %+v", p)
	}
	if p.Agents != 2 {
		t.Fatalf("Agents = %d, want 2", p.Agents)
	}
}
