package benchnet

import (
	"fmt"

	"powerchief/internal/loadgen"
)

// Thresholds bounds how much worse the new run may be before Compare flags a
// regression. Percent fields compare relative degradation; MaxErrRatePts is
// an absolute error-rate increase in percentage points. Zero fields take the
// defaults below; negative fields disable that check.
type Thresholds struct {
	MaxQPSDropPct float64 // achieved throughput drop (default 10)
	MaxP50Pct     float64 // median latency increase (default 20)
	MaxP99Pct     float64 // p99 increase (default 25)
	MaxP999Pct    float64 // p99.9 increase (default 30)
	MaxErrRatePts float64 // error-rate increase, percentage points (default 1)
	// Force compares summaries even when their configuration differs —
	// mismatches downgrade from refusal to warning.
	Force bool
}

func defaulted(v, def float64) float64 {
	if v == 0 {
		return def
	}
	return v
}

// Regression is one metric that moved past its threshold.
type Regression struct {
	Metric string  `json:"metric"`
	Old    float64 `json:"old"`
	New    float64 `json:"new"`
	// DeltaPct is the relative change in percent (positive = worse); for
	// error rate it is the absolute change in percentage points.
	DeltaPct float64 `json:"delta_pct"`
	Limit    float64 `json:"limit"`
}

func (r Regression) String() string {
	return fmt.Sprintf("%s: %.3f -> %.3f (%+.1f%%, limit %.1f%%)", r.Metric, r.Old, r.New, r.DeltaPct, r.Limit)
}

// Compare checks a new run against a baseline. It returns the regressions
// that crossed their thresholds, plus non-fatal warnings (provenance drift,
// config mismatches under Force). A non-nil error means the comparison was
// refused outright: the two summaries describe different experiments
// (target, schedule, rate, duration, seed or agent count differ) and
// comparing them would be apples to oranges.
func Compare(old, new loadgen.Summary, th Thresholds) ([]Regression, []string, error) {
	var warns []string
	mismatch := func(field, a, b string) error {
		msg := fmt.Sprintf("%s differs: baseline %q vs new %q", field, a, b)
		if th.Force {
			warns = append(warns, msg+" (forced)")
			return nil
		}
		return fmt.Errorf("benchnet: refusing to compare: %s (use force to override)", msg)
	}
	if old.Target != new.Target {
		if err := mismatch("target", old.Target, new.Target); err != nil {
			return nil, nil, err
		}
	}
	if old.Schedule != new.Schedule {
		if err := mismatch("schedule", old.Schedule, new.Schedule); err != nil {
			return nil, nil, err
		}
	}
	if old.RateQPS != new.RateQPS {
		if err := mismatch("rate", fmt.Sprintf("%g", old.RateQPS), fmt.Sprintf("%g", new.RateQPS)); err != nil {
			return nil, nil, err
		}
	}
	if old.Duration != new.Duration {
		if err := mismatch("duration", old.Duration, new.Duration); err != nil {
			return nil, nil, err
		}
	}
	if old.Seed != new.Seed {
		if err := mismatch("seed", fmt.Sprintf("%d", old.Seed), fmt.Sprintf("%d", new.Seed)); err != nil {
			return nil, nil, err
		}
	}
	if old.SelfPaced != new.SelfPaced {
		if err := mismatch("pacing", pacing(old.SelfPaced), pacing(new.SelfPaced)); err != nil {
			return nil, nil, err
		}
	}
	oa, na := agentsOf(old), agentsOf(new)
	if oa != na {
		if err := mismatch("agents", fmt.Sprintf("%d", oa), fmt.Sprintf("%d", na)); err != nil {
			return nil, nil, err
		}
	}
	warns = append(warns, provenanceWarnings(old.Provenance, new.Provenance)...)

	oldQ, err := quantiles(old)
	if err != nil {
		return nil, nil, fmt.Errorf("benchnet: baseline: %w", err)
	}
	newQ, err := quantiles(new)
	if err != nil {
		return nil, nil, fmt.Errorf("benchnet: new run: %w", err)
	}

	var regs []Regression
	// Throughput: a drop beyond the limit regresses.
	if lim := defaulted(th.MaxQPSDropPct, 10); lim >= 0 && old.AchievedQPS > 0 {
		drop := (old.AchievedQPS - new.AchievedQPS) / old.AchievedQPS * 100
		if drop > lim {
			regs = append(regs, Regression{Metric: "achieved_qps", Old: old.AchievedQPS, New: new.AchievedQPS, DeltaPct: -drop, Limit: lim})
		}
	}
	// Latency quantiles: an increase beyond the limit regresses.
	latency := []struct {
		name     string
		old, new float64
		lim      float64
	}{
		{"latency_p50_ms", oldQ.P50, newQ.P50, defaulted(th.MaxP50Pct, 20)},
		{"latency_p99_ms", oldQ.P99, newQ.P99, defaulted(th.MaxP99Pct, 25)},
		{"latency_p999_ms", oldQ.P999, newQ.P999, defaulted(th.MaxP999Pct, 30)},
	}
	for _, m := range latency {
		if m.lim < 0 || m.old <= 0 {
			continue
		}
		rise := (m.new - m.old) / m.old * 100
		if rise > m.lim {
			regs = append(regs, Regression{Metric: m.name, Old: m.old, New: m.new, DeltaPct: rise, Limit: m.lim})
		}
	}
	// Error rate: absolute percentage-point increase.
	if lim := defaulted(th.MaxErrRatePts, 1); lim >= 0 {
		oldErr, newErr := errRatePct(old), errRatePct(new)
		if newErr-oldErr > lim {
			regs = append(regs, Regression{Metric: "error_rate_pct", Old: oldErr, New: newErr, DeltaPct: newErr - oldErr, Limit: lim})
		}
	}
	return regs, warns, nil
}

func pacing(selfPaced bool) string {
	if selfPaced {
		return "self-paced"
	}
	return "open-loop"
}

func agentsOf(s loadgen.Summary) int {
	if s.Agents <= 0 {
		return 1
	}
	return s.Agents
}

func errRatePct(s loadgen.Summary) float64 {
	if s.Issued == 0 {
		return 0
	}
	return float64(s.Errors) / float64(s.Issued) * 100
}

// quantiles prefers deriving from the serialized histogram (the exact,
// mergeable record) and falls back to the stored quantile block for
// artifacts predating the histogram field.
func quantiles(s loadgen.Summary) (loadgen.Quantiles, error) {
	if s.LatencyHist != nil {
		return loadgen.QuantilesFromDigest(s.LatencyHist)
	}
	return s.LatencyMS, nil
}

func provenanceWarnings(old, new *loadgen.Provenance) []string {
	if old == nil || new == nil {
		return nil
	}
	var w []string
	if old.GitRevision != new.GitRevision {
		w = append(w, fmt.Sprintf("git revision drift: baseline %s vs new %s", old.GitRevision, new.GitRevision))
	}
	if old.GoVersion != new.GoVersion {
		w = append(w, fmt.Sprintf("go toolchain drift: baseline %s vs new %s", old.GoVersion, new.GoVersion))
	}
	if old.Hostname != new.Hostname {
		w = append(w, fmt.Sprintf("host drift: baseline %s vs new %s", old.Hostname, new.Hostname))
	}
	if old.IngestBatch != new.IngestBatch || old.IngestIntervalMS != new.IngestIntervalMS {
		w = append(w, fmt.Sprintf(
			"ingest batching drift: baseline batch=%d interval=%.0fms vs new batch=%d interval=%.0fms (different statistic-staleness bounds)",
			old.IngestBatch, old.IngestIntervalMS, new.IngestBatch, new.IngestIntervalMS))
	}
	return w
}
