package benchnet

import (
	"fmt"
	"time"

	"powerchief/internal/loadgen"
	"powerchief/internal/stats"
)

// ProtoVersion is the benchnet wire protocol version. Hello is the
// handshake: a coordinator refuses agents speaking another version, so a
// mixed deployment fails loudly at connect time instead of corrupting a
// merge.
const ProtoVersion = 1

// RPC method names, all served by an Agent.
const (
	MethodHello    = "bench.hello"
	MethodStart    = "bench.start"
	MethodProgress = "bench.progress"
	MethodStop     = "bench.stop"
	MethodResult   = "bench.result"
)

// RunSpec is the full description of one benchmark run — everything an
// agent needs to rebuild the target and the schedule. The coordinator ships
// the same spec to every agent, varying only the shard coordinates.
type RunSpec struct {
	Proto int `json:"proto"`

	// Target names the engine: live, des or dist.
	Target string `json:"target"`
	// App is the application layout (sirius, nlp, websearch, ...).
	App string `json:"app"`
	// Instances holds per-stage instance counts (empty: one each).
	Instances []int `json:"instances,omitempty"`
	// Level is the initial DVFS level for every instance.
	Level int `json:"level"`
	// Cores is the chip size.
	Cores int `json:"cores"`
	// BudgetW is the power budget in watts (0: derived from the layout).
	BudgetW float64 `json:"budget_w,omitempty"`
	// TimeScale compresses wall time for live/dist targets.
	TimeScale float64 `json:"timescale,omitempty"`
	// Addrs, for the dist target, are the stage services to connect to.
	// The coordinator self-hosts one set and puts its addresses here, so
	// all agents drive the same deployment — the warp topology, where load
	// generators share the system under test.
	Addrs []string `json:"addrs,omitempty"`

	// Arrivals is the schedule name: constant, poisson or ramp:<from>:<to>.
	Arrivals string `json:"arrivals"`
	// RateQPS is the global intended rate (the full, unsharded schedule).
	RateQPS float64 `json:"rate_qps"`
	// Duration is the generation horizon.
	Duration time.Duration `json:"duration_ns"`
	// Warmup trims ops intended before this offset from the distributions.
	Warmup time.Duration `json:"warmup_ns,omitempty"`
	// Workers is the per-agent issuing goroutine count.
	Workers int `json:"workers"`
	// Seed drives the schedule and the work draws.
	Seed int64 `json:"seed"`
	// HistGrowth is the latency histogram growth factor (0: loadgen's
	// default). All agents must share it or the digests cannot merge.
	HistGrowth float64 `json:"hist_growth,omitempty"`

	// IngestBatch, for the dist target, enables delta-batched statistics
	// ingest: the Center negotiates stats.Delta shipping with every stage
	// service, batching this many completions per frame (0: legacy
	// per-record ingest). Part of the spec so every agent's Center makes the
	// same choice and the summary provenance records it.
	IngestBatch int `json:"ingest_batch,omitempty"`
	// IngestInterval bounds delta staleness: a partial batch is flushed once
	// it is this old (0: the stats default).
	IngestInterval time.Duration `json:"ingest_interval_ns,omitempty"`

	// ShardIndex/ShardCount are this agent's stride coordinates, assigned
	// by the coordinator.
	ShardIndex int `json:"shard_index"`
	ShardCount int `json:"shard_count,omitempty"`
}

// Validate checks the spec fields the agent cannot default.
func (s RunSpec) Validate() error {
	if s.Proto != ProtoVersion {
		return fmt.Errorf("benchnet: spec proto %d, this build speaks %d", s.Proto, ProtoVersion)
	}
	if s.Target == "" || s.App == "" || s.Arrivals == "" {
		return fmt.Errorf("benchnet: spec needs target, app and arrivals")
	}
	if s.Duration <= 0 {
		return fmt.Errorf("benchnet: spec needs a positive duration")
	}
	return nil
}

// StampProvenance records the spec's ingest batching configuration on a
// summary's provenance, so `powerbench cmp` can warn when a baseline and a
// candidate ran with different statistic-staleness bounds. A no-op unless
// the spec enables batching on a dist target.
func (s RunSpec) StampProvenance(sum *loadgen.Summary) {
	if s.Target != "dist" || s.IngestBatch <= 0 {
		return
	}
	if sum.Provenance == nil {
		sum.Provenance = &loadgen.Provenance{}
	}
	sum.Provenance.IngestBatch = s.IngestBatch
	interval := s.IngestInterval
	if interval <= 0 {
		interval = stats.DefaultDeltaInterval
	}
	sum.Provenance.IngestIntervalMS = float64(interval) / float64(time.Millisecond)
}

// HelloArgs opens the handshake.
type HelloArgs struct {
	Proto int `json:"proto"`
}

// HelloReply answers with the agent's protocol version and provenance, so
// the coordinator can refuse version skew and stamp the merged summary.
type HelloReply struct {
	Proto      int                `json:"proto"`
	Provenance loadgen.Provenance `json:"provenance"`
}

// StartArgs arms one run: the spec plus the common start epoch. Every agent
// sleeps until the epoch before releasing its first arrival, so the shards
// interleave on the shared target exactly as the global schedule dictates
// (hosts are assumed clock-synchronized to well under a typical latency —
// loopback and NTP-disciplined clusters qualify).
type StartArgs struct {
	Spec            RunSpec `json:"spec"`
	StartAtUnixNano int64   `json:"start_at_unix_nano"`
}

// ProgressReply is one periodic delta: cumulative counts since the epoch.
type ProgressReply struct {
	Running   bool    `json:"running"`
	Done      bool    `json:"done"`
	ElapsedMS float64 `json:"elapsed_ms"`
	Issued    uint64  `json:"issued"`
	Completed uint64  `json:"completed"`
	Errors    uint64  `json:"errors"`
	// Failed carries the run error once Done, empty on success.
	Failed string `json:"failed,omitempty"`
}

// ResultReply ships the agent's final summary, histogram digest included.
type ResultReply struct {
	Summary loadgen.Summary `json:"summary"`
}
