package benchnet

import "time"

// atSample is one progress observation: cumulative completions at an offset
// from the run epoch.
type atSample struct {
	t time.Duration
	c uint64
}

// AutoTerm is the warp-style throughput stabilization detector. The
// coordinator feeds it the cluster-wide cumulative completion count at each
// progress poll; once the trailing Dur window's first-half and second-half
// throughputs agree within Pct percent, the run is declared stable and the
// remaining schedule is cut — long steady-state benchmarks end as soon as
// they have converged instead of burning their full horizon.
//
// The detector is deliberately blunt: it compares two half-window rates, so
// a monotone trend (still warming up, still degrading) keeps it unstable,
// while noise faster than the window averages out. Oscillations slower than
// half the window land in different halves and block termination — which is
// the conservative behaviour a benchmark wants.
type AutoTerm struct {
	// Dur is the trailing window; zero disables the detector.
	Dur time.Duration
	// Pct is the allowed half-to-half throughput deviation in percent
	// (default 7.5).
	Pct float64
	// MinSamples is the minimum number of polls inside the window before
	// stabilization can be declared (default 5).
	MinSamples int

	samples []atSample
}

func (a *AutoTerm) pct() float64 {
	if a.Pct <= 0 {
		return 7.5
	}
	return a.Pct
}

func (a *AutoTerm) minSamples() int {
	if a.MinSamples <= 0 {
		return 5
	}
	return a.MinSamples
}

// Observe records one cumulative sample. Out-of-order timestamps are
// dropped; samples older than twice the window are trimmed, so memory stays
// bounded over arbitrarily long runs.
func (a *AutoTerm) Observe(t time.Duration, completed uint64) {
	if n := len(a.samples); n > 0 && t <= a.samples[n-1].t {
		return
	}
	a.samples = append(a.samples, atSample{t: t, c: completed})
	if a.Dur > 0 {
		cutoff := t - 2*a.Dur
		i := 0
		for i < len(a.samples) && a.samples[i].t < cutoff {
			i++
		}
		if i > 0 {
			a.samples = append(a.samples[:0], a.samples[i:]...)
		}
	}
}

// Stable reports whether the trailing window has converged.
func (a *AutoTerm) Stable() bool {
	if a.Dur <= 0 || len(a.samples) == 0 {
		return false
	}
	latest := a.samples[len(a.samples)-1]
	lo := 0
	for lo < len(a.samples) && a.samples[lo].t < latest.t-a.Dur {
		lo++
	}
	win := a.samples[lo:]
	if len(win) < a.minSamples() {
		return false
	}
	first, last := win[0], win[len(win)-1]
	span := last.t - first.t
	if span < a.Dur*9/10 {
		return false
	}
	// Split the window at its temporal midpoint and compare half rates.
	midT := first.t + span/2
	mi := 0
	for i, s := range win {
		if s.t <= midT {
			mi = i
		}
	}
	mid := win[mi]
	if mid.t <= first.t || last.t <= mid.t {
		return false
	}
	r1 := float64(mid.c-first.c) / (mid.t - first.t).Seconds()
	r2 := float64(last.c-mid.c) / (last.t - mid.t).Seconds()
	if r1 <= 0 || r2 <= 0 {
		return false
	}
	avg := (r1 + r2) / 2
	diff := r2 - r1
	if diff < 0 {
		diff = -diff
	}
	return diff <= a.pct()/100*avg
}
