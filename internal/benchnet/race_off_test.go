//go:build !race

package benchnet

// raceEnabled reports whether the race detector instruments this build.
// Wall-clock latency assertions are meaningless under its overhead.
const raceEnabled = false
