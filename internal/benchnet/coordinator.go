package benchnet

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"powerchief/internal/loadgen"
	"powerchief/internal/rpc"
	"powerchief/internal/telemetry"
)

// Options configures one coordinated run.
type Options struct {
	// Addrs are the agents to fan out to (required). Agent i runs shard i of
	// len(Addrs).
	Addrs []string
	// Spec is the run to ship. Proto and the shard coordinates are filled in
	// by the coordinator.
	Spec RunSpec
	// StartDelay is the margin between arming the agents and the common
	// start epoch — enough for every start call to land (default 500ms).
	StartDelay time.Duration
	// Poll is the progress-poll interval (default 250ms).
	Poll time.Duration
	// AutoTermDur enables throughput auto-termination over this trailing
	// window; zero runs the full horizon.
	AutoTermDur time.Duration
	// AutoTermPct is the allowed half-window throughput deviation in percent
	// (default 7.5).
	AutoTermPct float64
	// Metrics, when set, exports the coordinator's cluster-wide live series.
	Metrics *telemetry.Registry
	// Logf receives progress lines; nil discards them.
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.StartDelay <= 0 {
		o.StartDelay = 500 * time.Millisecond
	}
	if o.Poll <= 0 {
		o.Poll = 250 * time.Millisecond
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// coordStats is the scrape-time view of an in-flight coordinated run.
type coordStats struct {
	agents    atomic.Int64
	active    atomic.Int64
	completed atomic.Uint64
	errors    atomic.Uint64
	qps       atomic.Uint64 // float64 bits
	stable    atomic.Int64
}

func (cs *coordStats) register(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	reg.GaugeFunc("benchnet_agents", "Benchmark agents in the coordinated run.",
		func() float64 { return float64(cs.agents.Load()) })
	reg.GaugeFunc("benchnet_run_active", "1 while a coordinated run is in flight.",
		func() float64 { return float64(cs.active.Load()) })
	reg.CounterFunc("benchnet_ops_completed_total", "Cluster-wide completed operations.",
		func() float64 { return float64(cs.completed.Load()) })
	reg.CounterFunc("benchnet_errors_total", "Cluster-wide operation errors.",
		func() float64 { return float64(cs.errors.Load()) })
	reg.GaugeFunc("benchnet_throughput_qps", "Cluster-wide throughput since the epoch.",
		func() float64 { return math.Float64frombits(cs.qps.Load()) })
	reg.GaugeFunc("benchnet_autoterm_stable", "1 once throughput auto-termination has fired.",
		func() float64 { return float64(cs.stable.Load()) })
}

// Coordinate runs one distributed benchmark: handshake every agent, fan the
// spec out with stride shards and a common epoch, poll progress until every
// shard finishes (stopping all of them early once throughput stabilizes),
// then merge the per-agent summaries into one cluster-wide result.
func Coordinate(o Options) (loadgen.Summary, error) {
	o = o.withDefaults()
	if len(o.Addrs) == 0 {
		return loadgen.Summary{}, fmt.Errorf("benchnet: coordinate needs at least one agent")
	}
	spec := o.Spec
	spec.Proto = ProtoVersion
	spec.ShardCount = len(o.Addrs)
	if err := spec.Validate(); err != nil {
		return loadgen.Summary{}, err
	}

	var cs coordStats
	cs.register(o.Metrics)
	cs.agents.Store(int64(len(o.Addrs)))
	cs.active.Store(1)
	defer cs.active.Store(0)

	// Dial and handshake every agent before arming anyone: version skew or a
	// dead address fails the run before any load is generated.
	clients := make([]*rpc.Client, len(o.Addrs))
	defer func() {
		for _, c := range clients {
			if c != nil {
				c.Close()
			}
		}
	}()
	for i, addr := range o.Addrs {
		c, err := rpc.DialOptions(addr, rpc.ClientOptions{CallTimeout: 30 * time.Second})
		if err != nil {
			return loadgen.Summary{}, fmt.Errorf("benchnet: dialing agent %s: %w", addr, err)
		}
		clients[i] = c
		var hello HelloReply
		if err := c.Call(MethodHello, HelloArgs{Proto: ProtoVersion}, &hello); err != nil {
			return loadgen.Summary{}, fmt.Errorf("benchnet: handshake with %s: %w", addr, err)
		}
		if hello.Proto != ProtoVersion {
			return loadgen.Summary{}, fmt.Errorf("benchnet: agent %s speaks proto %d, coordinator speaks %d",
				addr, hello.Proto, ProtoVersion)
		}
		o.Logf("benchnet: agent %d/%d at %s (%s, go %s, rev %.12s)",
			i+1, len(o.Addrs), addr,
			hello.Provenance.Hostname, hello.Provenance.GoVersion, hello.Provenance.GitRevision)
	}

	// Arm every shard against one wall-clock epoch far enough out that all
	// start calls land first.
	epoch := time.Now().Add(o.StartDelay)
	for i, c := range clients {
		s := spec
		s.ShardIndex = i
		if err := c.Call(MethodStart, StartArgs{Spec: s, StartAtUnixNano: epoch.UnixNano()}, nil); err != nil {
			stopAll(clients)
			return loadgen.Summary{}, fmt.Errorf("benchnet: starting shard %d on %s: %w", i, o.Addrs[i], err)
		}
	}
	o.Logf("benchnet: %d shards armed, epoch in %v", len(clients), o.StartDelay)

	at := &AutoTerm{Dur: o.AutoTermDur, Pct: o.AutoTermPct}
	stopped := false
	lastLog := time.Time{}
	for {
		time.Sleep(o.Poll)
		allDone := true
		var issued, completed, errs uint64
		for i, c := range clients {
			var p ProgressReply
			if err := c.CallRetry(MethodProgress, struct{}{}, &p); err != nil {
				stopAll(clients)
				return loadgen.Summary{}, fmt.Errorf("benchnet: progress from %s: %w", o.Addrs[i], err)
			}
			if p.Failed != "" {
				stopAll(clients)
				return loadgen.Summary{}, fmt.Errorf("benchnet: shard %d on %s failed: %s", i, o.Addrs[i], p.Failed)
			}
			allDone = allDone && p.Done
			issued += p.Issued
			completed += p.Completed
			errs += p.Errors
		}
		cs.completed.Store(completed)
		cs.errors.Store(errs)
		elapsed := time.Since(epoch)
		if elapsed > 0 {
			cs.qps.Store(math.Float64bits(float64(completed) / elapsed.Seconds()))
		}
		if allDone {
			break
		}
		if elapsed > 0 {
			at.Observe(elapsed, completed)
		}
		if !stopped && at.Stable() {
			stopped = true
			cs.stable.Store(1)
			o.Logf("benchnet: throughput stable within %.1f%% over %v — stopping %d shards early",
				at.pct(), o.AutoTermDur, len(clients))
			stopAll(clients)
		}
		if now := time.Now(); now.Sub(lastLog) >= time.Second {
			lastLog = now
			o.Logf("benchnet: t=%v issued=%d completed=%d errors=%d", elapsed.Round(time.Millisecond), issued, completed, errs)
		}
	}

	sums := make([]loadgen.Summary, len(clients))
	for i, c := range clients {
		var r ResultReply
		if err := c.CallRetry(MethodResult, struct{}{}, &r); err != nil {
			return loadgen.Summary{}, fmt.Errorf("benchnet: result from %s: %w", o.Addrs[i], err)
		}
		sums[i] = r.Summary
	}
	merged, err := Merge(sums)
	if err != nil {
		return loadgen.Summary{}, err
	}
	if stopped {
		merged.StoppedEarly = true
	}
	return merged, nil
}

// stopAll broadcasts bench.stop, best-effort: agents that already finished
// (or died) are fine to miss it.
func stopAll(clients []*rpc.Client) {
	for _, c := range clients {
		if c != nil {
			_ = c.Call(MethodStop, struct{}{}, nil)
		}
	}
}
