package benchnet

import (
	"fmt"
	"time"

	"powerchief/internal/loadgen"
	"powerchief/internal/stats"
)

// Merge folds N per-agent summaries into one cluster-wide summary. The
// agents ran stride shards of one global schedule against one shared target,
// so counts add, wall time is the slowest agent, and the latency
// distributions merge exactly via their histogram digests — the derived
// quantile block is identical to what a single process recording the union
// of samples would have reported.
func Merge(sums []loadgen.Summary) (loadgen.Summary, error) {
	if len(sums) == 0 {
		return loadgen.Summary{}, fmt.Errorf("benchnet: nothing to merge")
	}
	base := sums[0]
	for i, s := range sums[1:] {
		if s.Target != base.Target || s.Schedule != base.Schedule ||
			s.Duration != base.Duration || s.Warmup != base.Warmup ||
			s.Seed != base.Seed || s.SelfPaced != base.SelfPaced {
			return loadgen.Summary{}, fmt.Errorf("benchnet: agent %d ran a different config (%s/%s seed %d) than agent 0 (%s/%s seed %d)",
				i+1, s.Target, s.Schedule, s.Seed, base.Target, base.Schedule, base.Seed)
		}
		if s.LatencyHist == nil || base.LatencyHist == nil {
			return loadgen.Summary{}, fmt.Errorf("benchnet: summary without latency histogram cannot merge")
		}
		if s.LatencyHist.Growth != base.LatencyHist.Growth {
			return loadgen.Summary{}, fmt.Errorf("benchnet: histogram growth mismatch: %.4f vs %.4f",
				s.LatencyHist.Growth, base.LatencyHist.Growth)
		}
	}
	if base.LatencyHist == nil {
		return loadgen.Summary{}, fmt.Errorf("benchnet: summary without latency histogram cannot merge")
	}

	out := base
	out.Agents = 0
	out.RateQPS = 0
	out.Workers = 0
	out.Issued, out.Completed, out.Trimmed, out.Errors = 0, 0, 0, 0
	out.WallMS = 0
	out.StoppedEarly = false
	latDs := make([]*stats.HistogramDigest, 0, len(sums))
	svcDs := make([]*stats.HistogramDigest, 0, len(sums))
	for _, s := range sums {
		n := s.Agents
		if n <= 0 {
			n = 1
		}
		out.Agents += n
		out.RateQPS += s.RateQPS
		out.Workers += s.Workers
		out.Issued += s.Issued
		out.Completed += s.Completed
		out.Trimmed += s.Trimmed
		out.Errors += s.Errors
		if s.WallMS > out.WallMS {
			out.WallMS = s.WallMS
		}
		out.StoppedEarly = out.StoppedEarly || s.StoppedEarly
		latDs = append(latDs, s.LatencyHist)
		if s.ServiceHist != nil {
			svcDs = append(svcDs, s.ServiceHist)
		}
	}

	lat, err := stats.MergeDigests(latDs...)
	if err != nil {
		return loadgen.Summary{}, fmt.Errorf("benchnet: merging latency histograms: %w", err)
	}
	out.LatencyHist = lat.Digest()
	if out.LatencyMS, err = loadgen.QuantilesFromDigest(out.LatencyHist); err != nil {
		return loadgen.Summary{}, err
	}
	out.ServiceMS, out.ServiceHist = nil, nil
	if len(svcDs) == len(sums) {
		svc, err := stats.MergeDigests(svcDs...)
		if err != nil {
			return loadgen.Summary{}, fmt.Errorf("benchnet: merging service histograms: %w", err)
		}
		out.ServiceHist = svc.Digest()
		q, err := loadgen.QuantilesFromDigest(out.ServiceHist)
		if err != nil {
			return loadgen.Summary{}, err
		}
		out.ServiceMS = &q
	}

	out.AchievedQPS = mergedAchievedQPS(out, sums)
	out.Provenance = mergeProvenance(sums, out.Agents)
	return out, nil
}

// mergedAchievedQPS recomputes throughput over the merged run: the union of
// completions over the span one process would have taken. For open-loop runs
// that is the slowest agent's wall clock; for self-paced (closed-loop) runs,
// the generation horizon minus warmup, matching loadgen's own accounting.
func mergedAchievedQPS(out loadgen.Summary, sums []loadgen.Summary) float64 {
	spanMS := out.WallMS
	if out.SelfPaced {
		if d, err := time.ParseDuration(out.Duration); err == nil {
			span := d
			if out.Warmup != "" {
				if w, err := time.ParseDuration(out.Warmup); err == nil && w < span {
					span -= w
				}
			}
			spanMS = float64(span) / float64(time.Millisecond)
		}
	}
	if spanMS <= 0 {
		return 0
	}
	return float64(out.Completed) / (spanMS / 1000)
}

// mergeProvenance keeps fields all agents agree on and marks divergent ones
// "mixed" — a heterogeneous fleet is visible in the artifact, and cmp will
// warn about it.
func mergeProvenance(sums []loadgen.Summary, agents int) *loadgen.Provenance {
	var p *loadgen.Provenance
	for _, s := range sums {
		if s.Provenance == nil {
			continue
		}
		if p == nil {
			cp := *s.Provenance
			p = &cp
			continue
		}
		if s.Provenance.GitRevision != p.GitRevision {
			p.GitRevision = "mixed"
		}
		if s.Provenance.GoVersion != p.GoVersion {
			p.GoVersion = "mixed"
		}
		if s.Provenance.Hostname != p.Hostname {
			p.Hostname = "mixed"
		}
	}
	if p == nil {
		return nil
	}
	p.Agents = agents
	return p
}
