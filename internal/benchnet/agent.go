package benchnet

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"powerchief/internal/loadgen"
	"powerchief/internal/rpc"
	"powerchief/internal/telemetry"
)

// TargetBuilder turns a RunSpec into a loadgen target plus its work-draw
// sampler. Production agents use BuildTarget; tests substitute synthetic
// targets.
type TargetBuilder func(RunSpec) (loadgen.Target, func(*rand.Rand) [][]time.Duration, error)

// Agent is the remote end of a distributed benchmark: one powerbench
// process in -agent mode. It serves the bench.* protocol over internal/rpc,
// builds the target a start spec names, runs its stride shard of the global
// schedule from the common epoch, answers progress polls from the run's
// live telemetry registry, and ships the final summary — histogram digest
// included — when asked for the result.
type Agent struct {
	srv   *rpc.Server
	build TargetBuilder
	logf  func(format string, args ...any)

	mu  sync.Mutex
	run *agentRun
}

// agentRun is the state of one in-flight (or finished) benchmark run.
type agentRun struct {
	spec  RunSpec
	epoch time.Time
	reg   *telemetry.Registry

	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}

	// Written before done closes, read only after.
	summary loadgen.Summary
	failed  error
}

func (r *agentRun) finished() bool {
	select {
	case <-r.done:
		return true
	default:
		return false
	}
}

// NewAgent builds an agent serving the given target builder. logf may be nil.
func NewAgent(build TargetBuilder, logf func(format string, args ...any)) *Agent {
	if build == nil {
		build = BuildTarget
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	a := &Agent{srv: rpc.NewServer(), build: build, logf: logf}
	rpc.HandleFunc(a.srv, MethodHello, a.hello)
	rpc.HandleFunc(a.srv, MethodStart, a.start)
	rpc.HandleFunc(a.srv, MethodProgress, a.progress)
	rpc.HandleFunc(a.srv, MethodStop, a.stopRun)
	rpc.HandleFunc(a.srv, MethodResult, a.result)
	return a
}

// Listen binds the agent's RPC server and returns the bound address.
func (a *Agent) Listen(addr string) (string, error) { return a.srv.Listen(addr) }

// Close stops the RPC server and cancels any in-flight run.
func (a *Agent) Close() error {
	a.mu.Lock()
	run := a.run
	a.mu.Unlock()
	if run != nil {
		run.stopOnce.Do(func() { close(run.stop) })
	}
	return a.srv.Close()
}

func (a *Agent) hello(args HelloArgs) (HelloReply, error) {
	if args.Proto != ProtoVersion {
		return HelloReply{}, fmt.Errorf("benchnet: coordinator speaks proto %d, agent speaks %d", args.Proto, ProtoVersion)
	}
	return HelloReply{Proto: ProtoVersion, Provenance: loadgen.CaptureProvenance()}, nil
}

// start arms one run. The target is built synchronously so a bad spec fails
// the coordinator's start call instead of surfacing later as a mid-run
// failure; the benchmark itself runs in a goroutine from the common epoch.
func (a *Agent) start(args StartArgs) (struct{}, error) {
	spec := args.Spec
	if err := spec.Validate(); err != nil {
		return struct{}{}, err
	}
	sched, err := loadgen.ParseSchedule(spec.Arrivals, spec.RateQPS, spec.Seed)
	if err != nil {
		return struct{}{}, err
	}
	target, draw, err := a.build(spec)
	if err != nil {
		return struct{}{}, err
	}

	run := &agentRun{
		spec:  spec,
		epoch: time.Unix(0, args.StartAtUnixNano),
		reg:   telemetry.NewRegistry(),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}

	a.mu.Lock()
	if a.run != nil && !a.run.finished() {
		a.mu.Unlock()
		target.Close()
		return struct{}{}, fmt.Errorf("benchnet: agent already has a run in flight")
	}
	a.run = run
	a.mu.Unlock()

	a.logf("benchnet agent: run armed: shard %d/%d of %s %s @ %.1f/s for %v",
		spec.ShardIndex, spec.ShardCount, spec.Target, spec.App, spec.RateQPS, spec.Duration)

	go func() {
		defer close(run.done)
		defer target.Close()
		if wait := time.Until(run.epoch); wait > 0 {
			select {
			case <-time.After(wait):
			case <-run.stop:
			}
		}
		res, err := loadgen.Run(target, loadgen.Options{
			Schedule:   sched,
			Duration:   spec.Duration,
			Warmup:     spec.Warmup,
			Workers:    spec.Workers,
			Seed:       spec.Seed,
			DrawWork:   draw,
			HistGrowth: spec.HistGrowth,
			ShardIndex: spec.ShardIndex,
			ShardCount: spec.ShardCount,
			Stop:       run.stop,
			Metrics:    run.reg,
		})
		if err != nil {
			run.failed = err
			a.logf("benchnet agent: run failed: %v", err)
			return
		}
		run.summary = loadgen.Summarize(res)
		spec.StampProvenance(&run.summary)
		a.logf("benchnet agent: run done: %d issued, %d completed, %d errors",
			res.Issued, res.Completed, res.Errors)
	}()
	return struct{}{}, nil
}

func (a *Agent) current() (*agentRun, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.run == nil {
		return nil, fmt.Errorf("benchnet: agent has no run")
	}
	return a.run, nil
}

// progress reads the run's live counters from its telemetry registry — the
// same series a /metrics endpoint would export.
func (a *Agent) progress(struct{}) (ProgressReply, error) {
	run, err := a.current()
	if err != nil {
		return ProgressReply{}, err
	}
	rep := ProgressReply{Done: run.finished(), Running: !run.finished()}
	if e := time.Since(run.epoch); e > 0 {
		rep.ElapsedMS = float64(e) / float64(time.Millisecond)
	}
	for _, mv := range run.reg.Snapshot() {
		switch mv.Name {
		case "loadgen_ops_started_total":
			rep.Issued = uint64(mv.Value)
		case "loadgen_ops_completed_total":
			rep.Completed = uint64(mv.Value)
		case "loadgen_errors_total":
			rep.Errors = uint64(mv.Value)
		}
	}
	if rep.Done && run.failed != nil {
		rep.Failed = run.failed.Error()
	}
	return rep, nil
}

// stopRun cancels the arrival process; in-flight operations drain and the
// run completes with what it has recorded — the auto-termination path.
func (a *Agent) stopRun(struct{}) (struct{}, error) {
	run, err := a.current()
	if err != nil {
		return struct{}{}, err
	}
	run.stopOnce.Do(func() { close(run.stop) })
	return struct{}{}, nil
}

// result ships the final summary; it is an error to ask before the run is
// done (the coordinator polls progress first).
func (a *Agent) result(struct{}) (ResultReply, error) {
	run, err := a.current()
	if err != nil {
		return ResultReply{}, err
	}
	if !run.finished() {
		return ResultReply{}, fmt.Errorf("benchnet: run still in flight")
	}
	if run.failed != nil {
		return ResultReply{}, fmt.Errorf("benchnet: run failed: %w", run.failed)
	}
	return ResultReply{Summary: run.summary}, nil
}
