// Package benchnet turns the single-process powerbench driver into a
// distributed, self-terminating, regression-gated benchmark harness — the
// warp benchserver/benchclient shape on top of the framework's own RPC
// transport.
//
// A Coordinator speaks a versioned protocol (ProtoVersion) over
// internal/rpc to N Agents. It ships each agent the full run spec plus its
// stride shard: every agent materializes the identical global schedule and
// work-draw sequence and executes only the arrivals whose index matches its
// shard, so the union of what N agents execute is exactly the
// single-process op set. Agents start on a common wall-clock epoch, stream
// periodic progress deltas back, and ship a final loadgen.Summary carrying
// the serialized log-spaced latency histogram. The coordinator merges the
// agent digests exactly — bin counts add — into one cluster-wide CO-safe
// distribution, deriving the quantile block from the merged histogram.
//
// Two warp idioms complete the loop: throughput auto-termination (AutoTerm;
// the run stops early once the last -autoterm.dur window's first- and
// second-half throughputs agree within -autoterm.pct) and run comparison
// (Compare; per-metric regression thresholds over achieved QPS, p50/p99/
// p999 and error rate, refusing to compare summaries whose config or agent
// count differ — the `powerbench cmp` CI gate). Dist-target specs can
// enable delta-batched stat ingest (RunSpec.IngestBatch); the batching
// configuration is stamped into the summary's provenance so cmp warns when
// a baseline and a candidate ran with different statistic-staleness bounds.
package benchnet
