package benchnet

import (
	"math/rand"
	"testing"
	"time"

	"powerchief/internal/cmp"
	"powerchief/internal/loadgen"
)

// stubTarget completes every op after a fixed wall delay — a fast, boring
// system under test for protocol-level tests.
type stubTarget struct{ delay time.Duration }

func (s stubTarget) Name() string         { return "stub" }
func (s stubTarget) Do(*loadgen.Op) error { time.Sleep(s.delay); return nil }
func (s stubTarget) Close() error         { return nil }

func stubBuilder(delay time.Duration) TargetBuilder {
	return func(RunSpec) (loadgen.Target, func(*rand.Rand) [][]time.Duration, error) {
		draw := func(*rand.Rand) [][]time.Duration { return [][]time.Duration{{time.Millisecond}} }
		return stubTarget{delay: delay}, draw, nil
	}
}

// startAgents brings up n in-process agents and returns their addresses.
func startAgents(t *testing.T, n int, build TargetBuilder) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		ag := NewAgent(build, nil)
		addr, err := ag.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ag.Close() })
		addrs[i] = addr
	}
	return addrs
}

func stubSpec() RunSpec {
	return RunSpec{
		Target: "stub", App: "stub", Arrivals: "constant",
		RateQPS: 400, Duration: 30 * time.Second, Workers: 8, Seed: 3,
	}
}

// TestCoordinateAutoTerminates drives two agents at a constant rate with a
// 30s horizon and a short stabilization window: the coordinator must cut the
// run early and mark the merged summary.
func TestCoordinateAutoTerminates(t *testing.T) {
	addrs := startAgents(t, 2, stubBuilder(time.Millisecond))
	began := time.Now()
	merged, err := Coordinate(Options{
		Addrs:       addrs,
		Spec:        stubSpec(),
		StartDelay:  100 * time.Millisecond,
		Poll:        50 * time.Millisecond,
		AutoTermDur: 700 * time.Millisecond,
		AutoTermPct: 25,
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if took := time.Since(began); took > 15*time.Second {
		t.Fatalf("auto-termination did not cut the 30s horizon (took %v)", took)
	}
	if !merged.StoppedEarly {
		t.Fatal("merged summary not marked StoppedEarly")
	}
	if merged.Agents != 2 {
		t.Fatalf("Agents = %d, want 2", merged.Agents)
	}
	if merged.Completed == 0 {
		t.Fatal("no operations completed before termination")
	}
	if merged.LatencyHist == nil {
		t.Fatal("merged summary lost its histogram")
	}
}

// TestAgentProtocolErrors pins the protocol edges: version skew, double
// start, result-before-done, progress with no run.
func TestAgentProtocolErrors(t *testing.T) {
	ag := NewAgent(stubBuilder(time.Millisecond), nil)
	defer ag.Close()

	if _, err := ag.hello(HelloArgs{Proto: ProtoVersion + 1}); err == nil {
		t.Fatal("agent accepted a foreign protocol version")
	}
	if _, err := ag.progress(struct{}{}); err == nil {
		t.Fatal("progress with no run did not error")
	}

	spec := stubSpec()
	spec.Proto = ProtoVersion
	epoch := time.Now().Add(50 * time.Millisecond)
	if _, err := ag.start(StartArgs{Spec: spec, StartAtUnixNano: epoch.UnixNano()}); err != nil {
		t.Fatal(err)
	}
	if _, err := ag.start(StartArgs{Spec: spec, StartAtUnixNano: epoch.UnixNano()}); err == nil {
		t.Fatal("agent accepted a second run while one is in flight")
	}
	if _, err := ag.result(struct{}{}); err == nil {
		t.Fatal("result before the run finished did not error")
	}

	badSpec := spec
	badSpec.Proto = 0
	if _, err := ag.start(StartArgs{Spec: badSpec}); err == nil {
		t.Fatal("agent accepted a spec without a protocol version")
	}
}

// distSpec is the acceptance-run configuration: a dist target at low
// utilization with a coarse histogram (growth 1.25), so run-to-run scheduler
// jitter stays well under one bin width.
func distSpec() RunSpec {
	return RunSpec{
		Target: "dist", App: "websearch", Instances: []int{2, 1},
		Level: int(cmp.MidLevel), Cores: 16, TimeScale: 0.3,
		Arrivals: "constant", RateQPS: 14, Duration: 3500 * time.Millisecond,
		Warmup: 500 * time.Millisecond, Workers: 8, Seed: 11, HistGrowth: 1.25,
	}
}

// TestCoordinatedDistMatchesSingleProcess is the acceptance test: a
// coordinator fanning 4 agents out over real RPC against one shared dist
// deployment must produce a merged summary whose op count equals — and whose
// p50/p99/p999 sit within one histogram bin width of — a single process
// running the identical seed and schedule.
func TestCoordinatedDistMatchesSingleProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second distributed run")
	}
	spec := distSpec()

	// The shared system under test: one set of stage services all agents hit.
	shared := spec
	addrs, closeSvcs, err := HostStageServices(shared)
	if err != nil {
		t.Fatal(err)
	}
	shared.Addrs = addrs

	agents := startAgents(t, 4, nil) // nil builder: the real BuildTarget
	merged, err := Coordinate(Options{
		Addrs: agents,
		Spec:  shared,
		Poll:  100 * time.Millisecond,
		Logf:  t.Logf,
	})
	closeSvcs()
	if err != nil {
		t.Fatal(err)
	}

	// The reference: one process, identical spec, its own fresh deployment.
	single := runSingleProcess(t, spec)

	if merged.Agents != 4 {
		t.Fatalf("merged Agents = %d, want 4", merged.Agents)
	}
	if merged.Issued != single.Issued {
		t.Fatalf("sharded run issued %d ops, single process %d — the shards did not partition the schedule",
			merged.Issued, single.Issued)
	}
	if merged.Errors != single.Errors {
		t.Fatalf("errors differ: merged %d vs single %d", merged.Errors, single.Errors)
	}

	// The count assertions above are timing-independent; the quantile
	// comparison below is wall-clock and the race detector's instrumentation
	// overhead inflates the sharded run's tail far past any tolerance.
	if raceEnabled {
		t.Skip("wall-clock latency comparison is invalid under the race detector")
	}

	// One histogram bin at growth g spans [v, v·g): two measurements of the
	// same population land within one bin width when their ratio is < g².
	// (Adjacent bins: representative values differ by exactly a factor g.)
	binTol := spec.HistGrowth * spec.HistGrowth
	for _, q := range []struct {
		name     string
		got, ref float64
	}{
		{"p50", merged.LatencyMS.P50, single.LatencyMS.P50},
		{"p99", merged.LatencyMS.P99, single.LatencyMS.P99},
		{"p999", merged.LatencyMS.P999, single.LatencyMS.P999},
	} {
		if q.ref <= 0 {
			t.Fatalf("single-process %s is zero", q.name)
		}
		ratio := q.got / q.ref
		if ratio < 1 {
			ratio = 1 / ratio
		}
		if ratio >= binTol {
			t.Errorf("%s: merged %.2fms vs single %.2fms — beyond one bin width (ratio %.3f, tolerance %.3f)",
				q.name, q.got, q.ref, ratio, binTol)
		}
	}
}

// runSingleProcess executes the spec in-process, unsharded, self-hosting its
// own deployment.
func runSingleProcess(t *testing.T, spec RunSpec) loadgen.Summary {
	t.Helper()
	target, draw, err := BuildTarget(spec)
	if err != nil {
		t.Fatal(err)
	}
	defer target.Close()
	sched, err := loadgen.ParseSchedule(spec.Arrivals, spec.RateQPS, spec.Seed)
	if err != nil {
		t.Fatal(err)
	}
	res, err := loadgen.Run(target, loadgen.Options{
		Schedule:   sched,
		Duration:   spec.Duration,
		Warmup:     spec.Warmup,
		Workers:    spec.Workers,
		Seed:       spec.Seed,
		DrawWork:   draw,
		HistGrowth: spec.HistGrowth,
	})
	if err != nil {
		t.Fatal(err)
	}
	return loadgen.Summarize(res)
}
