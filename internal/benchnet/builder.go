package benchnet

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"powerchief/internal/app"
	"powerchief/internal/cmp"
	"powerchief/internal/dist"
	"powerchief/internal/live"
	"powerchief/internal/loadgen"
	"powerchief/internal/sim"
	"powerchief/internal/stage"
)

// specLayout resolves the spec's application, per-stage instance counts and
// DVFS level.
func specLayout(spec RunSpec) (app.App, []int, cmp.Level, error) {
	a, err := app.ByName(spec.App)
	if err != nil {
		return app.App{}, nil, 0, err
	}
	instances := spec.Instances
	if len(instances) == 0 {
		instances = make([]int, len(a.Stages))
		for i := range instances {
			instances[i] = 1
		}
	}
	if len(instances) != len(a.Stages) {
		return app.App{}, nil, 0, fmt.Errorf("benchnet: spec names %d stages, application %s has %d",
			len(instances), a.Name, len(a.Stages))
	}
	for _, n := range instances {
		if n < 1 {
			return app.App{}, nil, 0, fmt.Errorf("benchnet: bad instance count %d", n)
		}
	}
	level := cmp.Level(spec.Level)
	if !level.Valid() {
		return app.App{}, nil, 0, fmt.Errorf("benchnet: invalid level %d (0..%d)", spec.Level, int(cmp.MaxLevel))
	}
	return a, instances, level, nil
}

func specBudget(spec RunSpec, model cmp.PowerModel, instances []int, level cmp.Level) cmp.Watts {
	if spec.BudgetW > 0 {
		return cmp.Watts(spec.BudgetW)
	}
	var b cmp.Watts
	for _, n := range instances {
		b += cmp.Watts(n) * model.Power(level)
	}
	return b
}

func specTimescale(spec RunSpec) float64 {
	if spec.TimeScale <= 0 {
		return 1
	}
	return spec.TimeScale
}

func specCores(spec RunSpec) int {
	if spec.Cores <= 0 {
		return 16
	}
	return spec.Cores
}

// BuildTarget assembles the engine a spec names — the same construction
// cmd/powerbench performs for its flags, factored here so the single-process
// driver and every remote agent build byte-identical targets from one spec.
// The second return is the work-draw sampler for loadgen.Options.DrawWork.
func BuildTarget(spec RunSpec) (loadgen.Target, func(*rand.Rand) [][]time.Duration, error) {
	a, instances, level, err := specLayout(spec)
	if err != nil {
		return nil, nil, err
	}
	branches := make([]int, len(instances))
	copy(branches, instances)
	draw := func(rng *rand.Rand) [][]time.Duration { return a.DrawWork(rng, branches) }

	switch spec.Target {
	case "live":
		model := cmp.DefaultModel()
		specs := make([]live.StageSpec, len(a.Stages))
		for i, sp := range a.Stages {
			specs[i] = live.StageSpec{
				Name:      sp.Name,
				Kind:      sp.Kind,
				Profile:   sp.Profile(),
				Instances: instances[i],
				Level:     level,
			}
		}
		cluster, err := live.NewCluster(live.Options{
			Cores:     specCores(spec),
			Model:     model,
			Budget:    specBudget(spec, model, instances, level),
			TimeScale: specTimescale(spec),
		}, specs)
		if err != nil {
			return nil, nil, err
		}
		return loadgen.NewLiveTarget(cluster), draw, nil

	case "des":
		eng := sim.NewEngine()
		model := cmp.DefaultModel()
		specs, err := a.Specs(instances, level)
		if err != nil {
			return nil, nil, err
		}
		chip := cmp.NewChip(specCores(spec), model, specBudget(spec, model, instances, level))
		sys, err := stage.NewSystem(eng, chip, specs)
		if err != nil {
			return nil, nil, err
		}
		return loadgen.NewDESTarget(sys), draw, nil

	case "dist":
		t, err := buildDistTarget(spec, a, instances, level)
		if err != nil {
			return nil, nil, err
		}
		return t, draw, nil

	default:
		return nil, nil, fmt.Errorf("benchnet: unknown target %q (want live, des or dist)", spec.Target)
	}
}

// buildDistTarget connects to the spec's stage-service addresses, or
// self-hosts one service per application stage on loopback TCP. In a
// coordinated run the coordinator hosts the services once
// (HostStageServices) and ships the addresses, so N agents drive one shared
// deployment — the system under test — instead of N private copies.
func buildDistTarget(spec RunSpec, a app.App, instances []int, level cmp.Level) (loadgen.Target, error) {
	var owned []*dist.StageService
	addrs := spec.Addrs
	if len(addrs) == 0 {
		var err error
		if addrs, owned, err = hostServices(a, instances, level, specCores(spec), specTimescale(spec)); err != nil {
			return nil, err
		}
	}
	model := cmp.DefaultModel()
	center, err := dist.NewCenterOptions(specBudget(spec, model, instances, level), 25*time.Second, addrs,
		dist.CenterOptions{IngestBatch: spec.IngestBatch, IngestInterval: spec.IngestInterval})
	if err != nil {
		closeAll(owned)
		return nil, err
	}
	t := loadgen.NewDistTarget(center)
	t.OwnsCenter = true
	return &distDeployment{DistTarget: t, services: owned}, nil
}

// HostStageServices brings up the spec's stage services on loopback TCP and
// returns their addresses plus a teardown. The coordinator calls this once
// before fanning a dist spec out, so every agent's Center drives the same
// service processes.
func HostStageServices(spec RunSpec) ([]string, func(), error) {
	a, instances, level, err := specLayout(spec)
	if err != nil {
		return nil, nil, err
	}
	addrs, owned, err := hostServices(a, instances, level, specCores(spec), specTimescale(spec))
	if err != nil {
		return nil, nil, err
	}
	return addrs, func() { closeAll(owned) }, nil
}

func hostServices(a app.App, instances []int, level cmp.Level, cores int, timescale float64) ([]string, []*dist.StageService, error) {
	var addrs []string
	var owned []*dist.StageService
	for i, sp := range a.Stages {
		svc, err := dist.NewStageService(dist.StageOptions{
			Name:      sp.Name,
			Kind:      sp.Kind,
			MemBound:  sp.MemBound,
			Instances: instances[i],
			Level:     level,
			Cores:     cores,
			TimeScale: timescale,
		})
		if err != nil {
			closeAll(owned)
			return nil, nil, err
		}
		owned = append(owned, svc)
		addr, err := svc.Listen("127.0.0.1:0")
		if err != nil {
			closeAll(owned)
			return nil, nil, err
		}
		addrs = append(addrs, addr)
	}
	return addrs, owned, nil
}

// distDeployment tears the self-hosted stage services down with the target.
type distDeployment struct {
	*loadgen.DistTarget
	services []*dist.StageService
}

func (d *distDeployment) Close() error {
	err := d.DistTarget.Close()
	closeAll(d.services)
	return err
}

func closeAll(svcs []*dist.StageService) {
	for _, svc := range svcs {
		svc.Close()
	}
}

// JoinAddrs renders an address list the way the -addrs flag expects it.
func JoinAddrs(addrs []string) string { return strings.Join(addrs, ",") }
