// Package query implements the extended query data structure of the paper's
// service/query joint design (§4.1, Figure 6): as a query walks through the
// processing stages, every service instance appends a latency record
// (instance signature, queuing time, serving time) to the query itself. After
// the last stage the accumulated records are delivered to the Command Center,
// which aggregates them into per-instance latency statistics — no global
// clock synchronization, no kernel support.
//
// Entry points: New builds a query around its work matrix (one row per
// stage, one column per fan-out branch); Append accumulates a Record per
// visited instance; CriticalPath and the record accessors are what
// core.Aggregator and the telemetry tracer consume downstream.
package query
