package query

import (
	"fmt"
	"time"
)

// ID uniquely identifies a query within a run.
type ID uint64

// Record is one instance's latency statistics for one query, appended by the
// instance when it finishes serving the query.
type Record struct {
	Query      ID
	Stage      string        // stage name, e.g. "QA"
	Instance   string        // instance signature, e.g. "QA_2"
	QueueEnter time.Duration // virtual time the query entered the instance queue
	ServeStart time.Duration // virtual time service began
	ServeEnd   time.Duration // virtual time service completed

	// Level is the instance's frequency level while it served the query and
	// Boosted marks instances launched by an instance boost (clones) — the
	// DVFS state the telemetry tracer attaches to each span. Engines that
	// predate these fields leave them zero, which decodes as "base level,
	// original instance".
	Level   int
	Boosted bool
}

// Queuing returns the time the query waited in the instance queue.
func (r Record) Queuing() time.Duration { return r.ServeStart - r.QueueEnter }

// Serving returns the time the instance spent processing the query.
func (r Record) Serving() time.Duration { return r.ServeEnd - r.ServeStart }

// Processing returns the total delay contributed at the instance.
func (r Record) Processing() time.Duration { return r.ServeEnd - r.QueueEnter }

// Validate checks the record's internal time ordering.
func (r Record) Validate() error {
	if r.ServeStart < r.QueueEnter {
		return fmt.Errorf("query: record %d@%s serves before queuing (%v < %v)", r.Query, r.Instance, r.ServeStart, r.QueueEnter)
	}
	if r.ServeEnd < r.ServeStart {
		return fmt.Errorf("query: record %d@%s ends before starting (%v < %v)", r.Query, r.Instance, r.ServeEnd, r.ServeStart)
	}
	return nil
}

// Query is a user request flowing through the multi-stage pipeline. Work
// holds the intrinsic service demand per stage, drawn by the load generator
// when the query is created: Work[s][i] is the demand of stage s — one entry
// for a pipeline stage, one entry per fan-out branch for a fan-out stage —
// expressed as the service duration at the reference (lowest) frequency on a
// perfectly CPU-bound core. The stage's speedup profile maps it to actual
// serving time at the core's frequency.
type Query struct {
	ID      ID
	Arrival time.Duration // virtual time the query entered the system
	Work    [][]time.Duration
	Records []Record

	// Done is the virtual time the query left the last stage; zero until
	// completion (queries never complete at virtual time zero since arrivals
	// are strictly positive).
	Done time.Duration

	// pending counts outstanding fan-out branches at the current stage.
	pending int
}

// New creates a query with the given arrival time and per-stage work.
func New(id ID, arrival time.Duration, work [][]time.Duration) *Query {
	return &Query{ID: id, Arrival: arrival, Work: work}
}

// Latency returns the end-to-end response latency; valid after completion.
func (q *Query) Latency() time.Duration { return q.Done - q.Arrival }

// Completed reports whether the query has left the pipeline.
func (q *Query) Completed() bool { return q.Done > 0 }

// WorkAt returns the service demand of stage s, branch i. Branch indexes
// beyond the drawn work wrap around, so a stage can serve the query on any
// instance (instance boosting clones use the same demand distribution).
func (q *Query) WorkAt(s, i int) time.Duration {
	if s < 0 || s >= len(q.Work) {
		panic(fmt.Sprintf("query: stage %d out of range (have %d stages)", s, len(q.Work)))
	}
	branches := q.Work[s]
	if len(branches) == 0 {
		panic(fmt.Sprintf("query: stage %d has no work drawn", s))
	}
	return branches[i%len(branches)]
}

// Append adds a latency record to the query. It is called by the instance
// that just finished serving the query (the joint design).
func (q *Query) Append(r Record) { q.Records = append(q.Records, r) }

// SetPending initializes the outstanding-branch counter for a fan-out stage.
func (q *Query) SetPending(n int) { q.pending = n }

// BranchDone decrements the outstanding-branch counter and reports whether
// the stage is now complete.
func (q *Query) BranchDone() bool {
	if q.pending <= 0 {
		panic("query: BranchDone without pending branches")
	}
	q.pending--
	return q.pending == 0
}

// CriticalPath sums, per record, the processing delay the query experienced;
// for fan-out stages the paper's end-to-end latency counts the slowest
// branch, which the stage model accounts for in Done. The record sum is used
// by tests to cross-check plausibility of the pipeline timing.
func (q *Query) CriticalPath() time.Duration {
	var total time.Duration
	byStage := make(map[string]time.Duration)
	for _, r := range q.Records {
		d := r.Processing()
		if d > byStage[r.Stage] {
			byStage[r.Stage] = d
		}
	}
	for _, d := range byStage {
		total += d
	}
	return total
}
