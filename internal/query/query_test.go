package query

import (
	"testing"
	"time"
)

func rec(stage, inst string, qe, ss, se time.Duration) Record {
	return Record{Stage: stage, Instance: inst, QueueEnter: qe, ServeStart: ss, ServeEnd: se}
}

func TestRecordDerivedDurations(t *testing.T) {
	r := rec("QA", "QA_1", 10*time.Millisecond, 30*time.Millisecond, 100*time.Millisecond)
	if r.Queuing() != 20*time.Millisecond {
		t.Errorf("Queuing = %v", r.Queuing())
	}
	if r.Serving() != 70*time.Millisecond {
		t.Errorf("Serving = %v", r.Serving())
	}
	if r.Processing() != 90*time.Millisecond {
		t.Errorf("Processing = %v", r.Processing())
	}
	if err := r.Validate(); err != nil {
		t.Errorf("valid record rejected: %v", err)
	}
}

func TestRecordValidateOrdering(t *testing.T) {
	bad1 := rec("A", "A_1", 10, 5, 20)
	if bad1.Validate() == nil {
		t.Error("serve-before-queue accepted")
	}
	bad2 := rec("A", "A_1", 0, 10, 5)
	if bad2.Validate() == nil {
		t.Error("end-before-start accepted")
	}
}

func TestQueryLifecycle(t *testing.T) {
	q := New(7, time.Second, [][]time.Duration{{100 * time.Millisecond}})
	if q.Completed() {
		t.Fatal("fresh query reports completed")
	}
	q.Done = 3 * time.Second
	if !q.Completed() {
		t.Fatal("query with Done set not completed")
	}
	if q.Latency() != 2*time.Second {
		t.Errorf("Latency = %v", q.Latency())
	}
}

func TestWorkAtWrapsBranches(t *testing.T) {
	q := New(1, 0, [][]time.Duration{
		{time.Millisecond},
		{10 * time.Millisecond, 20 * time.Millisecond},
	})
	if q.WorkAt(0, 5) != time.Millisecond {
		t.Error("single-branch stage should serve any instance index")
	}
	if q.WorkAt(1, 0) != 10*time.Millisecond || q.WorkAt(1, 1) != 20*time.Millisecond {
		t.Error("branch indexing broken")
	}
	if q.WorkAt(1, 2) != 10*time.Millisecond {
		t.Error("branch index should wrap")
	}
}

func TestWorkAtPanicsOutOfRange(t *testing.T) {
	q := New(1, 0, [][]time.Duration{{time.Millisecond}})
	for _, c := range []struct {
		name string
		fn   func()
	}{
		{"stage out of range", func() { q.WorkAt(3, 0) }},
		{"negative stage", func() { q.WorkAt(-1, 0) }},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", c.name)
				}
			}()
			c.fn()
		}()
	}
}

func TestWorkAtEmptyBranchPanics(t *testing.T) {
	q := New(1, 0, [][]time.Duration{{}})
	defer func() {
		if recover() == nil {
			t.Fatal("empty branch list did not panic")
		}
	}()
	q.WorkAt(0, 0)
}

func TestPendingBranches(t *testing.T) {
	q := New(1, 0, nil)
	q.SetPending(3)
	if q.BranchDone() {
		t.Error("first branch completion reported stage done")
	}
	if q.BranchDone() {
		t.Error("second branch completion reported stage done")
	}
	if !q.BranchDone() {
		t.Error("last branch completion did not report stage done")
	}
}

func TestBranchDoneWithoutPendingPanics(t *testing.T) {
	q := New(1, 0, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("BranchDone with no pending branches did not panic")
		}
	}()
	q.BranchDone()
}

func TestCriticalPathTakesSlowestBranchPerStage(t *testing.T) {
	q := New(1, 0, nil)
	// Fan-out stage "leaf": two branches, 40ms and 90ms processing.
	q.Append(rec("leaf", "leaf_1", 0, 0, 40*time.Millisecond))
	q.Append(rec("leaf", "leaf_2", 0, 10*time.Millisecond, 90*time.Millisecond))
	// Pipeline stage "agg": 5ms.
	q.Append(rec("agg", "agg_1", 90*time.Millisecond, 90*time.Millisecond, 95*time.Millisecond))
	want := 90*time.Millisecond + 5*time.Millisecond
	if got := q.CriticalPath(); got != want {
		t.Errorf("CriticalPath = %v, want %v", got, want)
	}
}

func TestAppendAccumulatesRecords(t *testing.T) {
	q := New(1, 0, nil)
	q.Append(rec("A", "A_1", 0, 1, 2))
	q.Append(rec("B", "B_1", 2, 3, 4))
	if len(q.Records) != 2 {
		t.Fatalf("Records = %d, want 2", len(q.Records))
	}
	if q.Records[0].Stage != "A" || q.Records[1].Stage != "B" {
		t.Error("record order not preserved")
	}
}
