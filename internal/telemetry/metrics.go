package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by d.
func (c *Counter) Add(d uint64) { c.v.Add(d) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable float metric.
type Gauge struct {
	mu sync.Mutex
	v  float64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	g.mu.Lock()
	g.v = v
	g.mu.Unlock()
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

// metric is one registered series.
type metric struct {
	name string
	help string
	kind string // "counter" | "gauge"
	read func() float64
}

// Registry holds named metrics and renders them as Prometheus text
// exposition format or a JSON-friendly snapshot. Registration is
// last-write-wins by name so re-wiring in tests is painless.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*metric)}
}

// validName reports whether name fits the Prometheus metric-name charset
// ([a-zA-Z_:][a-zA-Z0-9_:]*).
func validName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// SanitizeName maps an arbitrary entity name (a node or stage name) onto the
// Prometheus metric-name charset so it can be embedded as a per-entity metric
// suffix: every character outside [a-zA-Z0-9_:] becomes '_', and a leading
// digit gains a '_' prefix. The registry has no label support, so per-entity
// series are distinct metric names (e.g. fleet_node_granted_watts_node_07).
func SanitizeName(s string) string {
	if s == "" {
		return "_"
	}
	b := []byte(s)
	for i, c := range b {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			// digits are fine except in the leading position, handled below
		default:
			b[i] = '_'
		}
	}
	if b[0] >= '0' && b[0] <= '9' {
		return "_" + string(b)
	}
	return string(b)
}

func (r *Registry) register(name, help, kind string, read func() float64) {
	if !validName(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	r.mu.Lock()
	r.metrics[name] = &metric{name: name, help: help, kind: kind, read: read}
	r.mu.Unlock()
}

// Counter registers and returns a counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(name, help, "counter", func() float64 { return float64(c.Value()) })
	return c
}

// Gauge registers and returns a settable gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(name, help, "gauge", g.Value)
	return g
}

// GaugeFunc registers a gauge whose value is computed at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(name, help, "gauge", fn)
}

// CounterFunc registers a counter whose value is read at scrape time; fn
// must be monotonic.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(name, help, "counter", fn)
}

// MetricValue is one series in a snapshot.
type MetricValue struct {
	Name  string  `json:"name"`
	Kind  string  `json:"kind"`
	Help  string  `json:"help,omitempty"`
	Value float64 `json:"value"`
}

// Snapshot reads every metric once and returns them sorted by name — the
// JSON exporter and the sim harness's dump path.
func (r *Registry) Snapshot() []MetricValue {
	r.mu.Lock()
	ms := make([]*metric, 0, len(r.metrics))
	for _, m := range r.metrics {
		ms = append(ms, m)
	}
	r.mu.Unlock()
	sort.Slice(ms, func(i, j int) bool { return ms[i].name < ms[j].name })
	out := make([]MetricValue, len(ms))
	for i, m := range ms {
		out[i] = MetricValue{Name: m.name, Kind: m.kind, Help: m.help, Value: m.read()}
	}
	return out
}

// WritePrometheus renders the registry in Prometheus text exposition format
// (version 0.0.4): HELP/TYPE comments followed by the sample, sorted by
// name.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, m := range r.Snapshot() {
		if m.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.Name, escapeHelp(m.Help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n%s %s\n", m.Name, m.Kind, m.Name, formatValue(m.Value)); err != nil {
			return err
		}
	}
	return nil
}

// escapeHelp escapes backslashes and newlines per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// formatValue renders a sample value the way Prometheus expects: shortest
// round-trippable decimal.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
