// Package telemetry is the observability layer of the framework: a
// per-query tracer that materializes the service/query joint design's
// latency records (§4.1, Figure 6) into span trees, a structured audit log
// of every Command Center decision — bottleneck identification, the
// Equation 2/3 boosting estimates, power recycling, withdraw and the
// distributed runtime's quarantine transitions — and a metrics registry with
// Prometheus-text and JSON exporters served over HTTP.
//
// The package depends only on the query structure and the standard library,
// so every engine (discrete-event, live goroutine, distributed RPC) and the
// Command Center itself can feed it without import cycles.
//
// Everything is disabled-by-default and nil-safe: a nil *AuditLog or nil
// *Tracer accepts every call as a cheap no-op, so instrumented hot paths pay
// a single pointer test when observability is off. BenchmarkTelemetryDisabled
// in the root package pins this property.
//
// Entry points: NewRegistry plus Counter/Gauge (and their Func variants for
// sampling live state); Handler mounts /metrics, /decisions and /trace on
// one http.Handler and Serve hosts it. Registration is last-write-wins, so
// a re-run benchmark simply replaces its series — internal/loadgen relies
// on that to publish in-flight run metrics.
package telemetry
