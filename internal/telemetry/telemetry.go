package telemetry

import (
	"sync"
	"time"
)

// EventKind names one class of Command Center decision.
type EventKind string

// Decision event kinds. The boost/identify/recycle/withdraw kinds are
// emitted by the control policies (internal/core); the stage-* kinds by the
// distributed runtime's health machine (internal/dist).
const (
	// EventIdentify records one bottleneck identification: the instance the
	// latency metric ranked slowest, with the Equation 1 inputs (L, q̄, s̄).
	EventIdentify EventKind = "identify"
	// EventBoostFreq records a frequency boost (§5.2).
	EventBoostFreq EventKind = "boost-freq"
	// EventBoostInst records an instance boost (§5.1).
	EventBoostInst EventKind = "boost-inst"
	// EventBoostNone records an interval where the engine chose no action.
	EventBoostNone EventKind = "boost-none"
	// EventRecycle records one power-recycling pass (Algorithm 2) with the
	// donor instances stepped down and the watts each freed.
	EventRecycle EventKind = "recycle"
	// EventWithdraw records an instance withdraw (§6.2).
	EventWithdraw EventKind = "withdraw"
	// EventRelaunch records the saver launching an instance back during QoS
	// recovery.
	EventRelaunch EventKind = "relaunch"
	// EventDeboost records the power saver stepping a fast instance down.
	EventDeboost EventKind = "deboost"
	// EventPlanRollback records the executor undoing the applied prefix of
	// an action plan after a mid-plan actuation failure.
	EventPlanRollback EventKind = "plan-rollback"
	// EventStageSuspect records a stage's first health failure.
	EventStageSuspect EventKind = "stage-suspect"
	// EventStageQuarantine records a stage quarantined by the health machine,
	// its watts reclaimed into the survivors' headroom.
	EventStageQuarantine EventKind = "stage-quarantine"
	// EventStageRecovering records a down stage answering a probe again.
	EventStageRecovering EventKind = "stage-recovering"
	// EventStageReadmit records a stage re-admitted with its budget share
	// restored.
	EventStageReadmit EventKind = "stage-readmit"
	// EventSetBudget records a fleet coordinator re-granting one node's power
	// budget (a SetBudgetAction applied by the executor).
	EventSetBudget EventKind = "set-budget"
	// EventNodeSuspect records a fleet node's first heartbeat failure.
	EventNodeSuspect EventKind = "node-suspect"
	// EventNodeQuarantine records a node quarantined by the fleet health
	// machine, its granted watts reclaimed into the cluster pool.
	EventNodeQuarantine EventKind = "node-quarantine"
	// EventNodeRecovering records a down node answering a probe again.
	EventNodeRecovering EventKind = "node-recovering"
	// EventNodeReadmit records a node re-admitted at the budget floor after a
	// successful fenced grant.
	EventNodeReadmit EventKind = "node-readmit"
	// EventNodeFenced records a node report rejected by epoch fencing (a
	// stale, pre-quarantine epoch after the coordinator moved on).
	EventNodeFenced EventKind = "node-fenced"
)

// Donor is one instance that gave up power during a recycling pass.
type Donor struct {
	Instance   string  `json:"instance"`
	FromLevel  int     `json:"from_level"`
	ToLevel    int     `json:"to_level"`
	FreedWatts float64 `json:"freed_watts"`
}

// Event is one structured Command Center decision. Fields beyond Seq, Time
// and Kind are populated per kind; durations are in the emitting engine's
// clock (virtual time for the simulator, wall time since start for the live
// and distributed runtimes).
type Event struct {
	// Seq is the log-assigned sequence number, strictly increasing across
	// the log's lifetime (it keeps counting when the ring drops old events).
	Seq uint64 `json:"seq"`
	// Time is the engine time the decision was taken.
	Time time.Duration `json:"time"`
	// Kind classifies the decision.
	Kind EventKind `json:"kind"`

	// Stage and Instance name the decision's subject (the bottleneck for
	// identify/boost, the victim for withdraw, the stage for stage-* kinds).
	Stage    string `json:"stage,omitempty"`
	Instance string `json:"instance,omitempty"`
	// Node names the fleet node for set-budget and node-* kinds.
	Node string `json:"node,omitempty"`

	// Bottleneck identification: the Equation 1 inputs and result.
	QueueLen int           `json:"queue_len,omitempty"` // L: realtime queue length
	Queuing  time.Duration `json:"queuing,omitempty"`   // q̄: windowed mean queuing time
	Serving  time.Duration `json:"serving,omitempty"`   // s̄: windowed mean serving time
	Metric   time.Duration `json:"metric,omitempty"`    // L·q̄ + s̄ (or the configured metric)
	Spread   time.Duration `json:"spread,omitempty"`    // bottleneck-to-fastest metric spread

	// Boosting decision: the Equation 2/3 estimates and the actuation.
	TInst       time.Duration `json:"t_inst,omitempty"` // Equation 2 estimate
	TFreq       time.Duration `json:"t_freq,omitempty"` // Equation 3 estimate
	OldLevel    int           `json:"old_level"`
	NewLevel    int           `json:"new_level"`
	NewInstance string        `json:"new_instance,omitempty"`

	// Power accounting at decision time.
	RecycledWatts  float64 `json:"recycled_watts,omitempty"`
	ReclaimedWatts float64 `json:"reclaimed_watts,omitempty"` // watts freed by a quarantine
	HeadroomWatts  float64 `json:"headroom_watts,omitempty"`
	GrantedWatts   float64 `json:"granted_watts,omitempty"` // node budget after a set-budget
	PrevWatts      float64 `json:"prev_watts,omitempty"`    // node budget before a set-budget

	// Donors lists the instances recycled from (EventRecycle).
	Donors []Donor `json:"donors,omitempty"`

	// Target names a withdraw's redirect instance.
	Target string `json:"target,omitempty"`
	// Detail carries free-form context (health-state names, band labels).
	Detail string `json:"detail,omitempty"`
	// Err carries the error behind a failure-driven transition.
	Err string `json:"err,omitempty"`
}

// AuditLog is a bounded, concurrency-safe ring of decision events. A nil
// *AuditLog is a valid disabled log: every method is a no-op (or zero
// value), so instrumentation sites need no branching beyond Enabled.
type AuditLog struct {
	mu      sync.Mutex
	ring    []Event
	start   int // index of the oldest retained event
	n       int // retained count
	seq     uint64
	dropped uint64
}

// DefaultAuditCapacity bounds the log when the caller passes zero.
const DefaultAuditCapacity = 4096

// NewAuditLog creates a log retaining at most capacity events (0 applies
// DefaultAuditCapacity).
func NewAuditLog(capacity int) *AuditLog {
	if capacity <= 0 {
		capacity = DefaultAuditCapacity
	}
	return &AuditLog{ring: make([]Event, capacity)}
}

// Enabled reports whether the log records events. Instrumentation sites
// guard event construction with it so a disabled log costs one nil test.
func (a *AuditLog) Enabled() bool { return a != nil }

// Record stamps the event with the next sequence number and appends it,
// evicting the oldest event when the ring is full. No-op on a nil log.
func (a *AuditLog) Record(e Event) {
	if a == nil {
		return
	}
	a.mu.Lock()
	a.seq++
	e.Seq = a.seq
	if a.n < len(a.ring) {
		a.ring[(a.start+a.n)%len(a.ring)] = e
		a.n++
	} else {
		a.ring[a.start] = e
		a.start = (a.start + 1) % len(a.ring)
		a.dropped++
	}
	a.mu.Unlock()
}

// Events returns the retained events, oldest first.
func (a *AuditLog) Events() []Event {
	return a.Since(0)
}

// Since returns the retained events with Seq > seq, oldest first. Use the
// last seen Seq as a cursor to page through a live log.
func (a *AuditLog) Since(seq uint64) []Event {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]Event, 0, a.n)
	for i := 0; i < a.n; i++ {
		e := a.ring[(a.start+i)%len(a.ring)]
		if e.Seq > seq {
			out = append(out, e)
		}
	}
	return out
}

// Len returns the number of retained events.
func (a *AuditLog) Len() int {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.n
}

// LastSeq returns the sequence number of the newest event (0 when empty).
func (a *AuditLog) LastSeq() uint64 {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.seq
}

// Dropped returns how many events the ring has evicted.
func (a *AuditLog) Dropped() uint64 {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.dropped
}
