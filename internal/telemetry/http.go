package telemetry

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
)

// Handler serves the observability endpoints:
//
//	/metrics          Prometheus text exposition of the registry
//	/metrics.json     the same registry as a JSON array
//	/debug/trace      sampled query traces (JSON), ?limit=N for the newest N
//	/debug/decisions  the decision audit log (JSON), ?since=SEQ for a cursor
//	/debug/pprof/     Go runtime profiles (CPU, heap, goroutine, ...)
//
// The pprof endpoints are registered on this private mux (not the global
// http.DefaultServeMux), so profiling the command center or a stage service
// in place needs no extra wiring:
//
//	go tool pprof http://ADDR/debug/pprof/profile?seconds=10
//	go tool pprof http://ADDR/debug/pprof/heap
//
// Any of reg, audit, tracer may be nil; the matching endpoint then serves
// its empty form rather than 404, so dashboards can probe uniformly.
func Handler(reg *Registry, audit *AuditLog, tracer *Tracer) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if reg != nil {
			_ = reg.WritePrometheus(w)
		}
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		snap := []MetricValue{}
		if reg != nil {
			snap = reg.Snapshot()
		}
		writeJSON(w, snap)
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) {
		traces := tracer.Traces()
		if traces == nil {
			traces = []QueryTrace{}
		}
		if s := r.URL.Query().Get("limit"); s != "" {
			if n, err := strconv.Atoi(s); err == nil && n >= 0 && n < len(traces) {
				traces = traces[len(traces)-n:]
			}
		}
		seen, kept, dropped := tracer.Stats()
		writeJSON(w, struct {
			Seen    uint64       `json:"seen"`
			Kept    uint64       `json:"kept"`
			Dropped uint64       `json:"dropped"`
			Traces  []QueryTrace `json:"traces"`
		}{seen, kept, dropped, traces})
	})
	mux.HandleFunc("/debug/decisions", func(w http.ResponseWriter, r *http.Request) {
		var since uint64
		if s := r.URL.Query().Get("since"); s != "" {
			if v, err := strconv.ParseUint(s, 10, 64); err == nil {
				since = v
			}
		}
		events := audit.Since(since)
		if events == nil {
			events = []Event{}
		}
		writeJSON(w, struct {
			LastSeq uint64  `json:"last_seq"`
			Dropped uint64  `json:"dropped"`
			Events  []Event `json:"events"`
		}{audit.LastSeq(), audit.Dropped(), events})
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// Server is a running observability HTTP server.
type Server struct {
	Addr string // bound address, usable after Serve returns
	ln   net.Listener
	srv  *http.Server
}

// Serve binds addr (":0" picks a free port) and serves the handler in a
// background goroutine. The caller owns Close.
func Serve(addr string, h http.Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{Addr: ln.Addr().String(), ln: ln, srv: &http.Server{Handler: h}}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Close stops the server and releases the listener.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}
