package telemetry

import (
	"sync"
	"testing"
	"time"

	"powerchief/internal/query"
)

// pipelineQuery builds a completed 2-stage query with contiguous records, so
// spans partition [arrival, done].
func pipelineQuery(id query.ID) *query.Query {
	q := query.New(id, 1*time.Second, [][]time.Duration{{0}, {0}})
	q.Append(query.Record{
		Query: id, Stage: "ASR", Instance: "ASR_0",
		QueueEnter: 1 * time.Second, ServeStart: 1100 * time.Millisecond,
		ServeEnd: 1400 * time.Millisecond, Level: 2,
	})
	q.Append(query.Record{
		Query: id, Stage: "QA", Instance: "QA_1",
		QueueEnter: 1400 * time.Millisecond, ServeStart: 1600 * time.Millisecond,
		ServeEnd: 2 * time.Second, Level: 5, Boosted: true,
	})
	q.Done = 2 * time.Second
	return q
}

func TestBuildTraceSpansSumToLatency(t *testing.T) {
	q := pipelineQuery(42)
	tr := BuildTrace(q, 0)
	if tr.ID != 42 || tr.Arrival != time.Second || tr.Done != 2*time.Second {
		t.Fatalf("header mismatch: %+v", tr)
	}
	if tr.Latency != time.Second {
		t.Fatalf("Latency = %v, want 1s", tr.Latency)
	}
	if len(tr.Spans) != 4 {
		t.Fatalf("spans = %d, want 4", len(tr.Spans))
	}
	if tr.SpanTotal() != tr.Latency {
		t.Fatalf("span total %v != latency %v", tr.SpanTotal(), tr.Latency)
	}
	// Order: ASR queue, ASR serve, QA queue, QA serve.
	wantKinds := []SpanKind{SpanQueue, SpanServe, SpanQueue, SpanServe}
	wantInst := []string{"ASR_0", "ASR_0", "QA_1", "QA_1"}
	for i, s := range tr.Spans {
		if s.Kind != wantKinds[i] || s.Instance != wantInst[i] {
			t.Errorf("span %d = %s@%s, want %s@%s", i, s.Kind, s.Instance, wantKinds[i], wantInst[i])
		}
		if s.End < s.Start {
			t.Errorf("span %d inverted: %v..%v", i, s.Start, s.End)
		}
	}
	// DVFS state rides along.
	if tr.Spans[1].Level != 2 || tr.Spans[1].Boosted {
		t.Errorf("ASR serve span level/boost = %d/%v, want 2/false", tr.Spans[1].Level, tr.Spans[1].Boosted)
	}
	if tr.Spans[3].Level != 5 || !tr.Spans[3].Boosted {
		t.Errorf("QA serve span level/boost = %d/%v, want 5/true", tr.Spans[3].Level, tr.Spans[3].Boosted)
	}
}

func TestBuildTraceDepthTruncation(t *testing.T) {
	q := pipelineQuery(1)
	tr := BuildTrace(q, 1)
	if !tr.Truncated {
		t.Fatal("trace not flagged truncated")
	}
	if len(tr.Spans) != 2 {
		t.Fatalf("spans = %d, want 2 (one record)", len(tr.Spans))
	}
}

func TestTracerNilSafe(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer enabled")
	}
	tr.ObserveQuery(pipelineQuery(1)) // must not panic
	if tr.Traces() != nil || tr.Len() != 0 {
		t.Fatal("nil tracer retained something")
	}
	seen, kept, dropped := tr.Stats()
	if seen+kept+dropped != 0 {
		t.Fatal("nil tracer stats not zero")
	}
}

func TestTracerSamplingDeterministic(t *testing.T) {
	tr := NewTracer(TracerOptions{Sample: 3, Capacity: 100})
	for i := 1; i <= 10; i++ {
		tr.ObserveQuery(pipelineQuery(query.ID(i)))
	}
	traces := tr.Traces()
	if len(traces) != 3 {
		t.Fatalf("kept %d traces, want 3 (every 3rd of 10)", len(traces))
	}
	wantIDs := []query.ID{3, 6, 9}
	for i, got := range traces {
		if got.ID != wantIDs[i] {
			t.Errorf("trace %d ID = %d, want %d", i, got.ID, wantIDs[i])
		}
	}
	seen, kept, dropped := tr.Stats()
	if seen != 10 || kept != 3 || dropped != 0 {
		t.Fatalf("stats = %d/%d/%d, want 10/3/0", seen, kept, dropped)
	}
}

func TestTracerDisabledBySampleZero(t *testing.T) {
	tr := NewTracer(TracerOptions{Sample: 0})
	if tr.Enabled() {
		t.Fatal("Sample=0 tracer enabled")
	}
	tr.ObserveQuery(pipelineQuery(1))
	if tr.Len() != 0 {
		t.Fatal("disabled tracer retained a trace")
	}
	seen, _, _ := tr.Stats()
	if seen != 0 {
		t.Fatal("disabled tracer counted offers")
	}
}

func TestTracerRingEviction(t *testing.T) {
	tr := NewTracer(TracerOptions{Sample: 1, Capacity: 4})
	for i := 1; i <= 10; i++ {
		tr.ObserveQuery(pipelineQuery(query.ID(i)))
	}
	traces := tr.Traces()
	if len(traces) != 4 {
		t.Fatalf("len = %d, want 4", len(traces))
	}
	for i, got := range traces {
		if want := query.ID(7 + i); got.ID != want {
			t.Errorf("trace %d ID = %d, want %d", i, got.ID, want)
		}
	}
	_, kept, dropped := tr.Stats()
	if kept != 10 || dropped != 6 {
		t.Fatalf("kept/dropped = %d/%d, want 10/6", kept, dropped)
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(TracerOptions{Sample: 1, Capacity: 32})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				tr.ObserveQuery(pipelineQuery(query.ID(w*50 + i)))
				_ = tr.Traces()
			}
		}(w)
	}
	wg.Wait()
	seen, kept, _ := tr.Stats()
	if seen != 400 || kept != 400 {
		t.Fatalf("seen/kept = %d/%d, want 400/400", seen, kept)
	}
}
