package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"powerchief/internal/query"
)

func TestRegistryCountersAndGauges(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("queries_total", "completed queries")
	g := r.Gauge("power_watts", "current draw")
	r.GaugeFunc("headroom_watts", "free budget", func() float64 { return 12.5 })
	c.Add(3)
	c.Inc()
	g.Set(80.5)

	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot len = %d, want 3", len(snap))
	}
	// Sorted by name: headroom_watts, power_watts, queries_total.
	if snap[0].Name != "headroom_watts" || snap[0].Value != 12.5 || snap[0].Kind != "gauge" {
		t.Errorf("snap[0] = %+v", snap[0])
	}
	if snap[1].Name != "power_watts" || snap[1].Value != 80.5 {
		t.Errorf("snap[1] = %+v", snap[1])
	}
	if snap[2].Name != "queries_total" || snap[2].Value != 4 || snap[2].Kind != "counter" {
		t.Errorf("snap[2] = %+v", snap[2])
	}
}

func TestRegistryWritePrometheus(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("pc_queries_total", "completed queries")
	c.Add(42)
	r.GaugeFunc("pc_power_watts", "draw\nwith newline", func() float64 { return 99.25 })

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP pc_power_watts draw\\nwith newline\n",
		"# TYPE pc_power_watts gauge\npc_power_watts 99.25\n",
		"# HELP pc_queries_total completed queries\n",
		"# TYPE pc_queries_total counter\npc_queries_total 42\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Gauge block must precede counter block (sorted).
	if strings.Index(out, "pc_power_watts") > strings.Index(out, "pc_queries_total") {
		t.Error("output not sorted by metric name")
	}
}

func TestRegistryRejectsInvalidName(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("invalid metric name not rejected")
		}
	}()
	r.Counter("bad name!", "")
}

func TestRegistryReregisterReplaces(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("x", "", func() float64 { return 1 })
	r.GaugeFunc("x", "", func() float64 { return 2 })
	snap := r.Snapshot()
	if len(snap) != 1 || snap[0].Value != 2 {
		t.Fatalf("snapshot = %+v, want single x=2", snap)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hits", "")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				c.Inc()
				_ = r.Snapshot()
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != 800 {
		t.Fatalf("counter = %d, want 800", c.Value())
	}
}

// get fetches a path from the handler and returns the body.
func get(t *testing.T, h http.Handler, path string) (*http.Response, []byte) {
	t.Helper()
	srv := httptest.NewServer(h)
	defer srv.Close()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

func TestHandlerMetricsEndpoint(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("pc_up", "").Inc()
	resp, body := get(t, Handler(reg, nil, nil), "/metrics")
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	if !strings.Contains(string(body), "pc_up 1") {
		t.Errorf("body missing sample:\n%s", body)
	}
}

func TestHandlerMetricsJSON(t *testing.T) {
	reg := NewRegistry()
	reg.Gauge("pc_w", "").Set(7)
	_, body := get(t, Handler(reg, nil, nil), "/metrics.json")
	var snap []MetricValue
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	if len(snap) != 1 || snap[0].Name != "pc_w" || snap[0].Value != 7 {
		t.Fatalf("snap = %+v", snap)
	}
}

func TestHandlerDecisionsEndpoint(t *testing.T) {
	audit := NewAuditLog(16)
	audit.Record(Event{Kind: EventStageQuarantine, Stage: "QA", ReclaimedWatts: 30})
	audit.Record(Event{Kind: EventBoostFreq, Instance: "ASR_0", OldLevel: 2, NewLevel: 4})

	_, body := get(t, Handler(nil, audit, nil), "/debug/decisions")
	var got struct {
		LastSeq uint64  `json:"last_seq"`
		Events  []Event `json:"events"`
	}
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	if got.LastSeq != 2 || len(got.Events) != 2 {
		t.Fatalf("last_seq=%d events=%d, want 2/2", got.LastSeq, len(got.Events))
	}
	if got.Events[0].Kind != EventStageQuarantine || got.Events[0].ReclaimedWatts != 30 {
		t.Errorf("event 0 = %+v", got.Events[0])
	}

	// Cursor: since=1 returns only the boost.
	_, body = get(t, Handler(nil, audit, nil), "/debug/decisions?since=1")
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if len(got.Events) != 1 || got.Events[0].Kind != EventBoostFreq {
		t.Fatalf("since=1 events = %+v", got.Events)
	}
}

func TestHandlerTraceEndpoint(t *testing.T) {
	tr := NewTracer(TracerOptions{Sample: 1, Capacity: 8})
	for i := 1; i <= 3; i++ {
		q := query.New(query.ID(i), time.Duration(i)*time.Second, nil)
		q.Append(query.Record{Stage: "ASR", Instance: "ASR_0",
			QueueEnter: q.Arrival, ServeStart: q.Arrival + 10*time.Millisecond,
			ServeEnd: q.Arrival + 30*time.Millisecond, Level: 1})
		q.Done = q.Arrival + 30*time.Millisecond
		tr.ObserveQuery(q)
	}
	_, body := get(t, Handler(nil, nil, tr), "/debug/trace?limit=2")
	var got struct {
		Seen   uint64       `json:"seen"`
		Kept   uint64       `json:"kept"`
		Traces []QueryTrace `json:"traces"`
	}
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	if got.Seen != 3 || got.Kept != 3 {
		t.Fatalf("seen/kept = %d/%d, want 3/3", got.Seen, got.Kept)
	}
	if len(got.Traces) != 2 || got.Traces[0].ID != 2 || got.Traces[1].ID != 3 {
		t.Fatalf("limit=2 traces = %+v", got.Traces)
	}
	if len(got.Traces[0].Spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(got.Traces[0].Spans))
	}
}

func TestHandlerNilComponentsServeEmpty(t *testing.T) {
	for _, path := range []string{"/metrics", "/metrics.json", "/debug/trace", "/debug/decisions"} {
		resp, _ := get(t, Handler(nil, nil, nil), path)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s status = %d, want 200", path, resp.StatusCode)
		}
	}
}

func TestServeBindsAndCloses(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("pc_live", "").Inc()
	srv, err := Serve("127.0.0.1:0", Handler(reg, nil, nil))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "pc_live 1") {
		t.Fatalf("body = %s", body)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}
