package telemetry

import (
	"sort"
	"sync"
	"time"

	"powerchief/internal/query"
)

// SpanKind distinguishes the two phases of a record: waiting in an
// instance's queue versus being served by it.
type SpanKind string

const (
	// SpanQueue covers QueueEnter..ServeStart.
	SpanQueue SpanKind = "queue"
	// SpanServe covers ServeStart..ServeEnd.
	SpanServe SpanKind = "serve"
)

// Span is one phase of a query's visit to one instance, carrying the DVFS
// state the instance had while serving it.
type Span struct {
	Kind     SpanKind      `json:"kind"`
	Stage    string        `json:"stage"`
	Instance string        `json:"instance"`
	Start    time.Duration `json:"start"`
	End      time.Duration `json:"end"`
	// Level is the instance's frequency level at service time; Boosted marks
	// instances launched by an instance boost (clones). Queue spans copy the
	// serve-time values so a trace reads uniformly.
	Level   int  `json:"level"`
	Boosted bool `json:"boosted,omitempty"`
}

// Duration returns the span's length.
func (s Span) Duration() time.Duration { return s.End - s.Start }

// QueryTrace is one completed query materialized as an ordered span list:
// for each stage visited, a queue span followed by a serve span, in
// ascending start-time order. The spans partition [Arrival, Done] on the
// discrete-event engine, so their durations sum to Latency exactly; live and
// distributed engines add scheduling and RPC gaps between stages.
type QueryTrace struct {
	ID      query.ID      `json:"id"`
	Arrival time.Duration `json:"arrival"`
	Done    time.Duration `json:"done"`
	Latency time.Duration `json:"latency"`
	Spans   []Span        `json:"spans"`
	// Truncated reports that the query visited more instances than the
	// tracer's depth limit and the span list was cut.
	Truncated bool `json:"truncated,omitempty"`
}

// SpanTotal sums the retained span durations — equal to Latency on the
// simulator when the trace is not truncated.
func (t QueryTrace) SpanTotal() time.Duration {
	var sum time.Duration
	for _, s := range t.Spans {
		sum += s.Duration()
	}
	return sum
}

// TracerOptions tunes sampling and retention.
type TracerOptions struct {
	// Sample keeps every Nth completed query (1 = every query). Zero or
	// negative disables tracing. Sampling is a deterministic completion
	// counter, not a random draw, so simulator runs stay reproducible.
	Sample int
	// Capacity bounds the trace ring (0 applies DefaultTraceCapacity).
	Capacity int
	// Depth bounds the records materialized per query (0 applies
	// DefaultTraceDepth); deeper queries are truncated and flagged.
	Depth int
}

// DefaultTraceCapacity bounds the trace ring when unset.
const DefaultTraceCapacity = 512

// DefaultTraceDepth bounds per-query span records when unset.
const DefaultTraceDepth = 64

// Tracer samples completed queries into a bounded ring of span trees. A nil
// *Tracer is a valid disabled tracer: ObserveQuery is a no-op, so engine
// completion hooks can call it unconditionally.
type Tracer struct {
	opts TracerOptions

	mu      sync.Mutex
	seen    uint64 // completed queries offered
	kept    uint64 // traces sampled in
	ring    []QueryTrace
	start   int
	n       int
	dropped uint64 // sampled traces evicted by the ring
}

// NewTracer creates a tracer with the given options. Returns a tracer even
// when sampling is disabled so gauges can still read counts.
func NewTracer(opts TracerOptions) *Tracer {
	if opts.Capacity <= 0 {
		opts.Capacity = DefaultTraceCapacity
	}
	if opts.Depth <= 0 {
		opts.Depth = DefaultTraceDepth
	}
	return &Tracer{opts: opts, ring: make([]QueryTrace, opts.Capacity)}
}

// Enabled reports whether the tracer can retain traces.
func (t *Tracer) Enabled() bool { return t != nil && t.opts.Sample > 0 }

// ObserveQuery offers a completed query to the sampler. Safe on a nil
// tracer and from concurrent completion callbacks.
func (t *Tracer) ObserveQuery(q *query.Query) {
	if t == nil || t.opts.Sample <= 0 || q == nil {
		return
	}
	t.mu.Lock()
	t.seen++
	if t.seen%uint64(t.opts.Sample) != 0 {
		t.mu.Unlock()
		return
	}
	tr := BuildTrace(q, t.opts.Depth)
	t.kept++
	if t.n < len(t.ring) {
		t.ring[(t.start+t.n)%len(t.ring)] = tr
		t.n++
	} else {
		t.ring[t.start] = tr
		t.start = (t.start + 1) % len(t.ring)
		t.dropped++
	}
	t.mu.Unlock()
}

// BuildTrace materializes one query's joint-design records into a span
// tree, truncating past depth records (0 = unlimited).
func BuildTrace(q *query.Query, depth int) QueryTrace {
	tr := QueryTrace{
		ID:      q.ID,
		Arrival: q.Arrival,
		Done:    q.Done,
		Latency: q.Done - q.Arrival,
	}
	recs := q.Records
	if depth > 0 && len(recs) > depth {
		recs = recs[:depth]
		tr.Truncated = true
	}
	tr.Spans = make([]Span, 0, 2*len(recs))
	for _, r := range recs {
		tr.Spans = append(tr.Spans,
			Span{Kind: SpanQueue, Stage: r.Stage, Instance: r.Instance,
				Start: r.QueueEnter, End: r.ServeStart, Level: r.Level, Boosted: r.Boosted},
			Span{Kind: SpanServe, Stage: r.Stage, Instance: r.Instance,
				Start: r.ServeStart, End: r.ServeEnd, Level: r.Level, Boosted: r.Boosted},
		)
	}
	sort.SliceStable(tr.Spans, func(i, j int) bool { return tr.Spans[i].Start < tr.Spans[j].Start })
	return tr
}

// Traces returns the retained traces, oldest first.
func (t *Tracer) Traces() []QueryTrace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]QueryTrace, t.n)
	for i := 0; i < t.n; i++ {
		out[i] = t.ring[(t.start+i)%len(t.ring)]
	}
	return out
}

// Stats reports the sampler's counters: queries offered, traces kept, and
// kept traces evicted by the ring.
func (t *Tracer) Stats() (seen, kept, dropped uint64) {
	if t == nil {
		return 0, 0, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.seen, t.kept, t.dropped
}

// Len returns the number of retained traces.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}
