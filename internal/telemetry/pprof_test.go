package telemetry

import (
	"strings"
	"testing"
)

// TestHandlerPprofEndpoints checks the runtime profiling endpoints are wired
// onto the telemetry mux so a live command center or stage service can be
// profiled in place.
func TestHandlerPprofEndpoints(t *testing.T) {
	h := Handler(nil, nil, nil)

	resp, body := get(t, h, "/debug/pprof/")
	if resp.StatusCode != 200 {
		t.Fatalf("/debug/pprof/ status = %d", resp.StatusCode)
	}
	if !strings.Contains(string(body), "goroutine") {
		t.Errorf("pprof index missing profile listing:\n%.200s", body)
	}

	resp, body = get(t, h, "/debug/pprof/heap?debug=1")
	if resp.StatusCode != 200 {
		t.Fatalf("/debug/pprof/heap status = %d", resp.StatusCode)
	}
	if !strings.Contains(string(body), "heap profile") {
		t.Errorf("heap profile body unexpected:\n%.200s", body)
	}

	resp, _ = get(t, h, "/debug/pprof/cmdline")
	if resp.StatusCode != 200 {
		t.Fatalf("/debug/pprof/cmdline status = %d", resp.StatusCode)
	}
}
