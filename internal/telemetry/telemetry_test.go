package telemetry

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestAuditLogNilSafe(t *testing.T) {
	var a *AuditLog
	if a.Enabled() {
		t.Fatal("nil log reports enabled")
	}
	a.Record(Event{Kind: EventIdentify}) // must not panic
	if got := a.Events(); got != nil {
		t.Fatalf("nil log Events = %v, want nil", got)
	}
	if a.Len() != 0 || a.LastSeq() != 0 || a.Dropped() != 0 {
		t.Fatal("nil log counters not zero")
	}
}

func TestAuditLogSequencesAndOrder(t *testing.T) {
	a := NewAuditLog(8)
	if !a.Enabled() {
		t.Fatal("new log not enabled")
	}
	kinds := []EventKind{EventIdentify, EventBoostFreq, EventRecycle}
	for i, k := range kinds {
		a.Record(Event{Kind: k, Time: time.Duration(i) * time.Second})
	}
	evs := a.Events()
	if len(evs) != 3 {
		t.Fatalf("len = %d, want 3", len(evs))
	}
	for i, e := range evs {
		if e.Seq != uint64(i+1) {
			t.Errorf("event %d Seq = %d, want %d", i, e.Seq, i+1)
		}
		if e.Kind != kinds[i] {
			t.Errorf("event %d Kind = %s, want %s", i, e.Kind, kinds[i])
		}
	}
	if a.LastSeq() != 3 {
		t.Errorf("LastSeq = %d, want 3", a.LastSeq())
	}
}

func TestAuditLogRingEviction(t *testing.T) {
	a := NewAuditLog(4)
	for i := 0; i < 10; i++ {
		a.Record(Event{Kind: EventBoostNone})
	}
	evs := a.Events()
	if len(evs) != 4 {
		t.Fatalf("len = %d, want 4", len(evs))
	}
	// Oldest retained must be seq 7 (events 1..6 evicted).
	for i, e := range evs {
		if want := uint64(7 + i); e.Seq != want {
			t.Errorf("event %d Seq = %d, want %d", i, e.Seq, want)
		}
	}
	if a.Dropped() != 6 {
		t.Errorf("Dropped = %d, want 6", a.Dropped())
	}
}

func TestAuditLogSinceCursor(t *testing.T) {
	a := NewAuditLog(16)
	for i := 0; i < 5; i++ {
		a.Record(Event{Kind: EventWithdraw})
	}
	got := a.Since(3)
	if len(got) != 2 {
		t.Fatalf("Since(3) len = %d, want 2", len(got))
	}
	if got[0].Seq != 4 || got[1].Seq != 5 {
		t.Fatalf("Since(3) seqs = %d,%d want 4,5", got[0].Seq, got[1].Seq)
	}
	if len(a.Since(a.LastSeq())) != 0 {
		t.Fatal("Since(LastSeq) not empty")
	}
}

func TestAuditLogConcurrent(t *testing.T) {
	a := NewAuditLog(64)
	var wg sync.WaitGroup
	const writers, per = 8, 100
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				a.Record(Event{Kind: EventBoostFreq})
				_ = a.Len()
				_ = a.Since(0)
			}
		}()
	}
	wg.Wait()
	if a.LastSeq() != writers*per {
		t.Fatalf("LastSeq = %d, want %d", a.LastSeq(), writers*per)
	}
	if a.Len() != 64 {
		t.Fatalf("Len = %d, want 64", a.Len())
	}
}

func TestEventJSONRoundTrip(t *testing.T) {
	e := Event{
		Seq:            7,
		Time:           3 * time.Second,
		Kind:           EventRecycle,
		Stage:          "QA",
		Instance:       "QA_1",
		QueueLen:       12,
		Queuing:        40 * time.Millisecond,
		Serving:        15 * time.Millisecond,
		Metric:         495 * time.Millisecond,
		Spread:         100 * time.Millisecond,
		TInst:          80 * time.Millisecond,
		TFreq:          60 * time.Millisecond,
		OldLevel:       2,
		NewLevel:       5,
		RecycledWatts:  4.5,
		ReclaimedWatts: 10,
		HeadroomWatts:  2.25,
		Donors: []Donor{
			{Instance: "ASR_0", FromLevel: 3, ToLevel: 2, FreedWatts: 1.5},
		},
		Target: "QA_0",
		Detail: "note",
		Err:    "boom",
	}
	data, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	var back Event
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Kind != e.Kind || back.Stage != e.Stage || len(back.Donors) != 1 ||
		back.Donors[0] != e.Donors[0] || back.TInst != e.TInst || back.NewLevel != e.NewLevel {
		t.Fatalf("round trip mismatch: %+v", back)
	}
}

func TestAuditDefaultCapacity(t *testing.T) {
	a := NewAuditLog(0)
	if len(a.ring) != DefaultAuditCapacity {
		t.Fatalf("capacity = %d, want %d", len(a.ring), DefaultAuditCapacity)
	}
}
