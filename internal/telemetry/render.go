package telemetry

import (
	"fmt"
	"io"
	"strings"
)

// WriteDecisions renders a decision timeline as aligned human-readable text
// — the format cmd/experiments dumps to results/decisions.txt and the
// powerchief CLI prints with -decisions. One line per event, oldest first.
func WriteDecisions(w io.Writer, events []Event) error {
	for _, e := range events {
		if _, err := fmt.Fprintln(w, FormatEvent(e)); err != nil {
			return err
		}
	}
	return nil
}

// FormatEvent renders one event as a single timeline line.
func FormatEvent(e Event) string {
	var b strings.Builder
	fmt.Fprintf(&b, "[%12v] %-16s", e.Time, string(e.Kind))
	subject := e.Instance
	if subject == "" {
		subject = e.Stage
	}
	if subject != "" {
		fmt.Fprintf(&b, " %s", subject)
	}
	switch e.Kind {
	case EventIdentify:
		fmt.Fprintf(&b, " L=%d q=%v s=%v metric=%v spread=%v",
			e.QueueLen, e.Queuing, e.Serving, e.Metric, e.Spread)
	case EventBoostFreq:
		fmt.Fprintf(&b, " level %d->%d", e.OldLevel, e.NewLevel)
		if e.TInst > 0 || e.TFreq > 0 {
			fmt.Fprintf(&b, " Tinst=%v Tfreq=%v", e.TInst, e.TFreq)
		}
		fmt.Fprintf(&b, " recycled=%.2fW headroom=%.2fW", e.RecycledWatts, e.HeadroomWatts)
	case EventBoostInst:
		fmt.Fprintf(&b, " clone=%s level=%d", e.NewInstance, e.NewLevel)
		if e.TInst > 0 || e.TFreq > 0 {
			fmt.Fprintf(&b, " Tinst=%v Tfreq=%v", e.TInst, e.TFreq)
		}
		fmt.Fprintf(&b, " recycled=%.2fW headroom=%.2fW", e.RecycledWatts, e.HeadroomWatts)
	case EventRecycle:
		fmt.Fprintf(&b, " freed=%.2fW", e.RecycledWatts)
		if len(e.Donors) > 0 {
			parts := make([]string, len(e.Donors))
			for i, d := range e.Donors {
				parts[i] = fmt.Sprintf("%s:%d->%d(%.2fW)", d.Instance, d.FromLevel, d.ToLevel, d.FreedWatts)
			}
			fmt.Fprintf(&b, " donors=%s", strings.Join(parts, ","))
		}
	case EventWithdraw:
		if e.Target != "" {
			fmt.Fprintf(&b, " target=%s", e.Target)
		}
	case EventDeboost:
		fmt.Fprintf(&b, " level %d->%d", e.OldLevel, e.NewLevel)
	case EventStageQuarantine:
		fmt.Fprintf(&b, " reclaimed=%.2fW headroom=%.2fW", e.ReclaimedWatts, e.HeadroomWatts)
	case EventStageReadmit:
		fmt.Fprintf(&b, " headroom=%.2fW", e.HeadroomWatts)
	}
	if e.Detail != "" {
		fmt.Fprintf(&b, " (%s)", e.Detail)
	}
	if e.Err != "" {
		fmt.Fprintf(&b, " err=%q", e.Err)
	}
	return b.String()
}
