package stage

import (
	"errors"
	"math"
	"testing"
	"time"

	"powerchief/internal/cmp"
	"powerchief/internal/query"
	"powerchief/internal/sim"
)

// cpuBound is a profile with speedup linear in frequency.
var cpuBound = cmp.NewRooflineProfile(0)

// flat gains nothing from DVFS, making serve times frequency-independent —
// convenient for timing arithmetic in tests.
var flat = cmp.NewRooflineProfile(1)

func newSys(t *testing.T, specs ...Spec) (*sim.Engine, *System) {
	t.Helper()
	eng := sim.NewEngine()
	chip := cmp.NewChip(16, cmp.DefaultModel(), 200)
	sys, err := NewSystem(eng, chip, specs)
	if err != nil {
		t.Fatal(err)
	}
	return eng, sys
}

func oneStage(name string, n int, p cmp.SpeedupProfile) Spec {
	return Spec{Name: name, Kind: Pipeline, Profile: p, Instances: n, Level: cmp.MidLevel}
}

// submitAt schedules a query carrying the given per-stage work at time at.
func submitAt(eng *sim.Engine, sys *System, id query.ID, at time.Duration, work ...time.Duration) *query.Query {
	w := make([][]time.Duration, len(work))
	for i, d := range work {
		w[i] = []time.Duration{d}
	}
	q := query.New(id, at, w)
	eng.ScheduleAt(at, func() { sys.Submit(q) })
	return q
}

func TestSinglePipelineQueryTiming(t *testing.T) {
	eng, sys := newSys(t, oneStage("A", 1, flat), oneStage("B", 1, flat))
	q := submitAt(eng, sys, 1, time.Second, 100*time.Millisecond, 50*time.Millisecond)
	eng.Run()
	if !q.Completed() {
		t.Fatal("query did not complete")
	}
	if q.Latency() != 150*time.Millisecond {
		t.Errorf("Latency = %v, want 150ms", q.Latency())
	}
	if len(q.Records) != 2 {
		t.Fatalf("records = %d, want 2", len(q.Records))
	}
	for _, r := range q.Records {
		if err := r.Validate(); err != nil {
			t.Error(err)
		}
		if r.Queuing() != 0 {
			t.Errorf("unloaded system produced queuing %v at %s", r.Queuing(), r.Instance)
		}
	}
	if q.Records[0].Stage != "A" || q.Records[1].Stage != "B" {
		t.Error("records out of pipeline order")
	}
	if q.Records[0].Serving() != 100*time.Millisecond {
		t.Errorf("stage A serving = %v", q.Records[0].Serving())
	}
}

func TestServeTimeScalesWithFrequency(t *testing.T) {
	eng, sys := newSys(t, oneStage("A", 1, cpuBound))
	in := sys.Stage("A").Instances()[0]
	if err := in.SetLevel(cmp.MaxLevel); err != nil {
		t.Fatal(err)
	}
	// CPU-bound at 2.4 GHz: exec ratio = 1.2/2.4 = 0.5.
	q := submitAt(eng, sys, 1, time.Second, 100*time.Millisecond)
	eng.Run()
	if q.Latency() != 50*time.Millisecond {
		t.Errorf("Latency at max freq = %v, want 50ms", q.Latency())
	}
}

func TestQueuingDelayMeasured(t *testing.T) {
	eng, sys := newSys(t, oneStage("A", 1, flat))
	q1 := submitAt(eng, sys, 1, time.Second, 100*time.Millisecond)
	q2 := submitAt(eng, sys, 2, time.Second, 100*time.Millisecond)
	eng.Run()
	if q1.Records[0].Queuing() != 0 {
		t.Errorf("first query queuing = %v", q1.Records[0].Queuing())
	}
	if q2.Records[0].Queuing() != 100*time.Millisecond {
		t.Errorf("second query queuing = %v, want 100ms", q2.Records[0].Queuing())
	}
	if q2.Latency() != 200*time.Millisecond {
		t.Errorf("second query latency = %v, want 200ms", q2.Latency())
	}
}

func TestJoinShortestQueueBalances(t *testing.T) {
	eng, sys := newSys(t, oneStage("A", 2, flat))
	for i := 0; i < 10; i++ {
		submitAt(eng, sys, query.ID(i), time.Second, 100*time.Millisecond)
	}
	eng.Run()
	ins := sys.Stage("A").Instances()
	if ins[0].Served() != 5 || ins[1].Served() != 5 {
		t.Errorf("JSQ served %d/%d, want 5/5", ins[0].Served(), ins[1].Served())
	}
}

func TestRoundRobinDispatcher(t *testing.T) {
	eng, sys := newSys(t, oneStage("A", 3, flat))
	sys.Stage("A").SetDispatcher(&RoundRobin{})
	for i := 0; i < 9; i++ {
		submitAt(eng, sys, query.ID(i), time.Second, 10*time.Millisecond)
	}
	eng.Run()
	for _, in := range sys.Stage("A").Instances() {
		if in.Served() != 3 {
			t.Errorf("%s served %d, want 3", in.Name(), in.Served())
		}
	}
}

func TestLeastExpectedDelayPrefersFastCore(t *testing.T) {
	eng, sys := newSys(t, oneStage("A", 2, cpuBound))
	st := sys.Stage("A")
	st.SetDispatcher(LeastExpectedDelay{})
	fast, slow := st.Instances()[0], st.Instances()[1]
	if err := fast.SetLevel(cmp.MaxLevel); err != nil {
		t.Fatal(err)
	}
	if err := slow.SetLevel(0); err != nil {
		t.Fatal(err)
	}
	// Same backlog: the fast instance wins even though queue lengths tie.
	for i := 0; i < 2; i++ {
		submitAt(eng, sys, query.ID(i), time.Second, 100*time.Millisecond)
	}
	eng.RunUntil(time.Second)
	// Both got one query? No: LED sends the first to fast (score (0+1)*0.5)
	// then the second again to fast ((1+1)*0.5 = 1.0 = slow's (0+1)*1.0 tie
	// → first in slice order wins, which is fast).
	if fast.QueueLen() != 2 || slow.QueueLen() != 0 {
		t.Errorf("backlogs fast=%d slow=%d, want 2/0", fast.QueueLen(), slow.QueueLen())
	}
	eng.Run()
}

func TestFanOutJoinsOnSlowestBranch(t *testing.T) {
	eng := sim.NewEngine()
	chip := cmp.NewChip(16, cmp.DefaultModel(), 200)
	sys, err := NewSystem(eng, chip, []Spec{
		{Name: "leaf", Kind: FanOut, Profile: flat, Instances: 3, Level: cmp.MidLevel},
		{Name: "agg", Kind: Pipeline, Profile: flat, Instances: 1, Level: cmp.MidLevel},
	})
	if err != nil {
		t.Fatal(err)
	}
	q := query.New(1, time.Second, [][]time.Duration{
		{10 * time.Millisecond, 70 * time.Millisecond, 30 * time.Millisecond},
		{5 * time.Millisecond},
	})
	eng.ScheduleAt(time.Second, func() { sys.Submit(q) })
	eng.Run()
	if !q.Completed() {
		t.Fatal("fan-out query did not complete")
	}
	// Join on the slowest branch (70ms) plus aggregation (5ms).
	if q.Latency() != 75*time.Millisecond {
		t.Errorf("Latency = %v, want 75ms", q.Latency())
	}
	// One record per branch plus the aggregator.
	if len(q.Records) != 4 {
		t.Errorf("records = %d, want 4", len(q.Records))
	}
}

func TestFanOutRejectsCloneAndWithdraw(t *testing.T) {
	eng := sim.NewEngine()
	chip := cmp.NewChip(16, cmp.DefaultModel(), 200)
	sys, err := NewSystem(eng, chip, []Spec{
		{Name: "leaf", Kind: FanOut, Profile: flat, Instances: 2, Level: cmp.MidLevel},
	})
	if err != nil {
		t.Fatal(err)
	}
	st := sys.Stage("leaf")
	in := st.Instances()[0]
	if _, err := st.Clone(in); err == nil {
		t.Error("clone of fan-out instance accepted")
	}
	if err := st.Withdraw(in, nil); err == nil {
		t.Error("withdraw of fan-out instance accepted")
	}
	if _, err := st.Launch(cmp.MidLevel); err == nil {
		t.Error("runtime launch into fan-out stage accepted")
	}
	_ = eng
}

func TestDVFSMidServiceRescales(t *testing.T) {
	eng, sys := newSys(t, oneStage("A", 1, cpuBound))
	in := sys.Stage("A").Instances()[0]
	// At 1.8 GHz the exec ratio is 1.2/1.8 = 2/3: a 300ms demand takes 200ms.
	q := submitAt(eng, sys, 1, 0, 300*time.Millisecond)
	// Halfway through (100ms in, 100ms left), boost to 2.4 GHz
	// (ratio 0.5): remaining shrinks by 0.5/(2/3) = 0.75 → 75ms.
	eng.ScheduleAt(100*time.Millisecond, func() {
		if err := in.SetLevel(cmp.MaxLevel); err != nil {
			t.Errorf("SetLevel: %v", err)
		}
	})
	eng.Run()
	want := 175 * time.Millisecond
	if got := q.Latency(); got != want {
		t.Errorf("Latency = %v, want %v", got, want)
	}
}

func TestDVFSMidServiceSlowdown(t *testing.T) {
	eng, sys := newSys(t, oneStage("A", 1, cpuBound))
	in := sys.Stage("A").Instances()[0]
	q := submitAt(eng, sys, 1, 0, 300*time.Millisecond) // 200ms at 1.8GHz
	// At 100ms, drop to 1.2 GHz: remaining 100ms scales by 1/(2/3) = 1.5.
	eng.ScheduleAt(100*time.Millisecond, func() {
		if err := in.SetLevel(0); err != nil {
			t.Errorf("SetLevel: %v", err)
		}
	})
	eng.Run()
	if got := q.Latency(); got != 250*time.Millisecond {
		t.Errorf("Latency = %v, want 250ms", got)
	}
}

func TestSetLevelSameIsNoop(t *testing.T) {
	_, sys := newSys(t, oneStage("A", 1, flat))
	in := sys.Stage("A").Instances()[0]
	if err := in.SetLevel(in.Level()); err != nil {
		t.Fatal(err)
	}
}

func TestSetLevelBudgetDenied(t *testing.T) {
	eng := sim.NewEngine()
	m := cmp.DefaultModel()
	chip := cmp.NewChip(16, m, m.Power(cmp.MidLevel)) // exactly one mid core
	sys, err := NewSystem(eng, chip, []Spec{oneStage("A", 1, flat)})
	if err != nil {
		t.Fatal(err)
	}
	in := sys.Stage("A").Instances()[0]
	if err := in.SetLevel(cmp.MaxLevel); !errors.Is(err, cmp.ErrBudgetExceeded) {
		t.Errorf("raise beyond budget error = %v", err)
	}
	if in.Level() != cmp.MidLevel {
		t.Error("failed raise changed the instance level")
	}
}

func TestCloneStealsHalfTheQueue(t *testing.T) {
	eng, sys := newSys(t, oneStage("A", 1, flat))
	st := sys.Stage("A")
	src := st.Instances()[0]
	for i := 0; i < 9; i++ {
		submitAt(eng, sys, query.ID(i), time.Second, 100*time.Millisecond)
	}
	eng.RunUntil(time.Second) // all 9 queued: 1 serving + 8 waiting
	if src.QueueLen() != 9 {
		t.Fatalf("backlog = %d, want 9", src.QueueLen())
	}
	clone, err := st.Clone(src)
	if err != nil {
		t.Fatal(err)
	}
	// 8 waiting → 4 stolen. Clone starts serving immediately: backlog 4.
	if src.QueueLen() != 5 {
		t.Errorf("src backlog after clone = %d, want 5", src.QueueLen())
	}
	if clone.QueueLen() != 4 {
		t.Errorf("clone backlog = %d, want 4", clone.QueueLen())
	}
	if clone.Level() != src.Level() {
		t.Error("clone did not inherit the source frequency")
	}
	eng.Run()
	if got := src.Served() + clone.Served(); got != 9 {
		t.Errorf("total served = %d, want 9", got)
	}
	// Stolen queries keep their original enqueue time: their measured
	// queuing must reflect waiting since t=1s, not since the steal.
	if sys.Completed() != 9 {
		t.Errorf("completed = %d", sys.Completed())
	}
}

func TestCloneValidation(t *testing.T) {
	_, sys := newSys(t, oneStage("A", 1, flat), oneStage("B", 1, flat))
	a, b := sys.Stage("A"), sys.Stage("B")
	if _, err := a.Clone(b.Instances()[0]); err == nil {
		t.Error("cross-stage clone accepted")
	}
}

func TestWithdrawIdleInstance(t *testing.T) {
	eng, sys := newSys(t, oneStage("A", 2, flat))
	st := sys.Stage("A")
	in := st.Instances()[1]
	drawBefore := sys.Chip().Draw()
	if err := st.Withdraw(in, nil); err != nil {
		t.Fatal(err)
	}
	if !in.Retired() {
		t.Error("idle instance not retired immediately")
	}
	if len(st.Instances()) != 1 {
		t.Errorf("stage has %d instances, want 1", len(st.Instances()))
	}
	if sys.Chip().Draw() >= drawBefore {
		t.Error("withdraw did not return power")
	}
	_ = eng
}

func TestWithdrawBusyInstanceDrains(t *testing.T) {
	eng, sys := newSys(t, oneStage("A", 2, flat))
	st := sys.Stage("A")
	sys.Stage("A").SetDispatcher(&RoundRobin{})
	q1 := submitAt(eng, sys, 1, time.Second, 100*time.Millisecond)
	q2 := submitAt(eng, sys, 2, time.Second, 100*time.Millisecond)
	q3 := submitAt(eng, sys, 3, time.Second, 100*time.Millisecond) // queued on instance 1
	eng.RunUntil(time.Second)
	victim := st.Instances()[0]
	survivor := st.Instances()[1]
	if victim.QueueLen() != 2 {
		t.Fatalf("victim backlog = %d, want 2 (serving+queued)", victim.QueueLen())
	}
	if err := st.Withdraw(victim, survivor); err != nil {
		t.Fatal(err)
	}
	if victim.Retired() {
		t.Error("busy instance retired before draining")
	}
	if !victim.Draining() {
		t.Error("victim not marked draining")
	}
	// The queued query moved to the survivor; victim finishes its in-flight
	// query then retires.
	eng.Run()
	if !victim.Retired() {
		t.Error("victim did not retire after drain")
	}
	for _, q := range []*query.Query{q1, q2, q3} {
		if !q.Completed() {
			t.Errorf("query %d lost during withdraw", q.ID)
		}
	}
	if len(st.Instances()) != 1 {
		t.Errorf("stage has %d instances, want 1", len(st.Instances()))
	}
}

func TestWithdrawLastInstanceRefused(t *testing.T) {
	_, sys := newSys(t, oneStage("A", 1, flat))
	st := sys.Stage("A")
	if err := st.Withdraw(st.Instances()[0], nil); err == nil {
		t.Fatal("withdraw of last active instance accepted")
	}
}

func TestWithdrawTwiceRefused(t *testing.T) {
	eng, sys := newSys(t, oneStage("A", 3, flat))
	st := sys.Stage("A")
	// Keep the victim busy so it stays in draining state.
	submitAt(eng, sys, 1, time.Second, time.Hour)
	eng.RunUntil(time.Second)
	var victim *Instance
	for _, in := range st.Instances() {
		if in.QueueLen() > 0 {
			victim = in
		}
	}
	if err := st.Withdraw(victim, nil); err != nil {
		t.Fatal(err)
	}
	if err := st.Withdraw(victim, nil); err == nil {
		t.Fatal("double withdraw accepted")
	}
}

func TestDrainingInstanceExcludedFromDispatch(t *testing.T) {
	eng, sys := newSys(t, oneStage("A", 2, flat))
	st := sys.Stage("A")
	// Busy both, then withdraw one and submit more load.
	submitAt(eng, sys, 1, time.Second, 300*time.Millisecond)
	submitAt(eng, sys, 2, time.Second, 300*time.Millisecond)
	eng.RunUntil(time.Second)
	victim := st.Instances()[0]
	if err := st.Withdraw(victim, nil); err != nil {
		t.Fatal(err)
	}
	servedBefore := victim.Served()
	for i := 10; i < 16; i++ {
		submitAt(eng, sys, query.ID(i), 1100*time.Millisecond, 10*time.Millisecond)
	}
	eng.Run()
	// The draining victim finishes only its in-flight query.
	if victim.Served() != servedBefore+1 {
		t.Errorf("draining instance served %d new queries", victim.Served()-servedBefore-1)
	}
}

func TestUtilizationTracking(t *testing.T) {
	eng, sys := newSys(t, oneStage("A", 1, flat))
	in := sys.Stage("A").Instances()[0]
	submitAt(eng, sys, 1, 0, 30*time.Millisecond)
	eng.RunUntil(100 * time.Millisecond)
	// Busy 30ms of 100ms.
	if u := in.Utilization(); math.Abs(u-0.3) > 1e-9 {
		t.Errorf("Utilization = %v, want 0.3", u)
	}
	in.ResetUtilizationEpoch()
	eng.RunUntil(200 * time.Millisecond)
	if u := in.Utilization(); u != 0 {
		t.Errorf("Utilization after epoch reset = %v, want 0", u)
	}
}

func TestSystemCounters(t *testing.T) {
	eng, sys := newSys(t, oneStage("A", 1, flat))
	var completions int
	sys.OnComplete(func(q *query.Query) { completions++ })
	for i := 0; i < 5; i++ {
		submitAt(eng, sys, query.ID(i), time.Second, 10*time.Millisecond)
	}
	eng.RunUntil(time.Second + 25*time.Millisecond)
	if sys.Submitted() != 5 {
		t.Errorf("Submitted = %d", sys.Submitted())
	}
	if sys.Completed() != 2 {
		t.Errorf("Completed = %d, want 2 at t=1.025s", sys.Completed())
	}
	if sys.InFlight() != 3 {
		t.Errorf("InFlight = %d, want 3", sys.InFlight())
	}
	eng.Run()
	if completions != 5 || !sys.Drain() {
		t.Errorf("completions = %d, drained = %v", completions, sys.Drain())
	}
}

func TestNewSystemValidation(t *testing.T) {
	eng := sim.NewEngine()
	chip := cmp.NewChip(16, cmp.DefaultModel(), 200)
	if _, err := NewSystem(eng, chip, nil); err == nil {
		t.Error("empty pipeline accepted")
	}
	if _, err := NewSystem(eng, chip, []Spec{oneStage("A", 1, flat), oneStage("A", 1, flat)}); err == nil {
		t.Error("duplicate stage names accepted")
	}
	if _, err := NewSystem(eng, chip, []Spec{oneStage("", 1, flat)}); err == nil {
		t.Error("unnamed stage accepted")
	}
	if _, err := NewSystem(eng, chip, []Spec{oneStage("A", 0, flat)}); err == nil {
		t.Error("zero-instance stage accepted")
	}
	if _, err := NewSystem(eng, chip, []Spec{{Name: "A", Instances: 1, Level: cmp.MidLevel}}); err == nil {
		t.Error("nil profile accepted")
	}
	if _, err := NewSystem(eng, chip, []Spec{{Name: "A", Profile: flat, Instances: 1, Level: cmp.Level(99)}}); err == nil {
		t.Error("invalid level accepted")
	}
}

func TestNewSystemBudgetTooSmall(t *testing.T) {
	eng := sim.NewEngine()
	m := cmp.DefaultModel()
	chip := cmp.NewChip(16, m, m.Power(cmp.MidLevel)*2) // fits 2 mid cores
	_, err := NewSystem(eng, chip, []Spec{oneStage("A", 3, flat)})
	if !errors.Is(err, cmp.ErrBudgetExceeded) {
		t.Errorf("error = %v, want ErrBudgetExceeded", err)
	}
}

func TestSubmitWorkShapeMismatchPanics(t *testing.T) {
	_, sys := newSys(t, oneStage("A", 1, flat), oneStage("B", 1, flat))
	defer func() {
		if recover() == nil {
			t.Fatal("work shape mismatch did not panic")
		}
	}()
	sys.Submit(query.New(1, 0, [][]time.Duration{{time.Millisecond}}))
}

func TestWorkForShapesMatrix(t *testing.T) {
	eng := sim.NewEngine()
	chip := cmp.NewChip(16, cmp.DefaultModel(), 200)
	sys, err := NewSystem(eng, chip, []Spec{
		{Name: "leaf", Kind: FanOut, Profile: flat, Instances: 4, Level: cmp.MidLevel},
		{Name: "agg", Kind: Pipeline, Profile: flat, Instances: 2, Level: cmp.MidLevel},
	})
	if err != nil {
		t.Fatal(err)
	}
	w := sys.WorkFor(func(s, b int) time.Duration { return time.Duration(s*10+b) * time.Millisecond })
	if len(w) != 2 || len(w[0]) != 4 || len(w[1]) != 1 {
		t.Fatalf("work shape = %dx(%d,%d)", len(w), len(w[0]), len(w[1]))
	}
	if w[0][3] != 3*time.Millisecond || w[1][0] != 10*time.Millisecond {
		t.Error("draw function results misplaced")
	}
}

func TestTotalInstances(t *testing.T) {
	_, sys := newSys(t, oneStage("A", 2, flat), oneStage("B", 3, flat))
	if got := sys.TotalInstances(); got != 5 {
		t.Errorf("TotalInstances = %d, want 5", got)
	}
}

func TestInstanceAccessors(t *testing.T) {
	_, sys := newSys(t, oneStage("A", 1, flat))
	in := sys.Stage("A").Instances()[0]
	if in.Name() != "A_1" {
		t.Errorf("Name = %q, want A_1", in.Name())
	}
	if in.Stage().Name() != "A" {
		t.Error("Stage() wrong")
	}
	if in.Power() != cmp.DefaultModel().Power(cmp.MidLevel) {
		t.Error("Power() mismatch")
	}
	if in.Level() != cmp.MidLevel {
		t.Error("Level() mismatch")
	}
}
