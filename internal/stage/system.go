package stage

import (
	"fmt"
	"time"

	"powerchief/internal/cmp"
	"powerchief/internal/query"
	"powerchief/internal/sim"
)

// System wires an application's stages to the simulation engine and the
// chip. Queries submitted to the system flow through the stages in order;
// completed queries are delivered, records attached, to the registered
// completion callbacks — in the paper's architecture, the hand-off of the
// query-carried latency statistics to the Command Center.
type System struct {
	eng     *sim.Engine
	chip    *cmp.Chip
	stages  []*Stage
	started bool

	onComplete []func(*query.Query)
	hopDelay   func(from, to int) time.Duration

	submitted uint64
	completed uint64
}

// NewSystem builds the stages described by specs, allocating their initial
// instances on the chip. It fails if the initial configuration does not fit
// the chip's cores or power budget.
func NewSystem(eng *sim.Engine, chip *cmp.Chip, specs []Spec) (*System, error) {
	if eng == nil || chip == nil {
		panic("stage: NewSystem requires an engine and a chip")
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("stage: application needs at least one stage")
	}
	sys := &System{eng: eng, chip: chip}
	names := make(map[string]bool)
	for i, spec := range specs {
		if err := spec.Validate(); err != nil {
			return nil, err
		}
		if names[spec.Name] {
			return nil, fmt.Errorf("stage: duplicate stage name %q", spec.Name)
		}
		names[spec.Name] = true
		st := &Stage{sys: sys, index: i, spec: spec, dispatcher: JoinShortestQueue{}}
		for j := 0; j < spec.Instances; j++ {
			if _, err := st.Launch(spec.Level); err != nil {
				return nil, fmt.Errorf("stage %s instance %d: %w", spec.Name, j, err)
			}
		}
		sys.stages = append(sys.stages, st)
	}
	sys.started = true
	return sys, nil
}

// Engine returns the simulation engine driving the system.
func (s *System) Engine() *sim.Engine { return s.eng }

// Chip returns the chip the system's instances run on.
func (s *System) Chip() *cmp.Chip { return s.chip }

// Stages returns the pipeline stages in order.
func (s *System) Stages() []*Stage {
	out := make([]*Stage, len(s.stages))
	copy(out, s.stages)
	return out
}

// Stage returns the stage with the given name, or nil.
func (s *System) Stage(name string) *Stage {
	for _, st := range s.stages {
		if st.spec.Name == name {
			return st
		}
	}
	return nil
}

// OnComplete registers a callback invoked when a query leaves the last
// stage. Callbacks run in registration order within the simulation event
// that completed the query.
func (s *System) OnComplete(fn func(*query.Query)) {
	if fn == nil {
		panic("stage: nil completion callback")
	}
	s.onComplete = append(s.onComplete, fn)
}

// Submit injects a query into the first stage at the current virtual time.
// The query must carry work for every stage.
func (s *System) Submit(q *query.Query) {
	if len(q.Work) != len(s.stages) {
		panic(fmt.Sprintf("stage: query %d carries work for %d stages, pipeline has %d", q.ID, len(q.Work), len(s.stages)))
	}
	s.submitted++
	s.stages[0].admit(q)
}

// Submitted returns the number of queries injected so far.
func (s *System) Submitted() uint64 { return s.submitted }

// Completed returns the number of queries that finished all stages.
func (s *System) Completed() uint64 { return s.completed }

// InFlight returns the number of queries currently inside the pipeline.
func (s *System) InFlight() uint64 { return s.submitted - s.completed }

// SetHopDelay installs a network-delay model between stages: when a query
// leaves stage `from`, its admission into stage `to` is delayed by
// fn(from, to). The paper's prototype runs all stages on one CMP and
// excludes network delays, but notes (§8.5) the joint design extends to
// include them; this hook is that extension. A nil fn removes the model.
func (s *System) SetHopDelay(fn func(from, to int) time.Duration) {
	s.hopDelay = fn
}

// advance moves a query past stage idx: into the next stage, or out of the
// pipeline.
func (s *System) advance(q *query.Query, idx int) {
	if idx+1 < len(s.stages) {
		if s.hopDelay != nil {
			if d := s.hopDelay(idx, idx+1); d > 0 {
				s.eng.Schedule(d, func() { s.stages[idx+1].admit(q) })
				return
			}
		}
		s.stages[idx+1].admit(q)
		return
	}
	q.Done = s.eng.Now()
	s.completed++
	for _, fn := range s.onComplete {
		fn(q)
	}
}

// TotalInstances counts live instances across all stages.
func (s *System) TotalInstances() int {
	n := 0
	for _, st := range s.stages {
		n += len(st.instances)
	}
	return n
}

// Drain reports whether the pipeline is empty (no in-flight queries).
func (s *System) Drain() bool { return s.InFlight() == 0 }

// WorkFor is a convenience for tests and generators: it shapes a per-stage
// work matrix matching the pipeline layout, drawing one branch per fan-out
// instance and a single branch for pipeline stages, using the supplied draw
// function.
func (s *System) WorkFor(draw func(stageIdx, branch int) time.Duration) [][]time.Duration {
	work := make([][]time.Duration, len(s.stages))
	for i, st := range s.stages {
		branches := 1
		if st.spec.Kind == FanOut {
			branches = len(st.Active())
		}
		row := make([]time.Duration, branches)
		for b := range row {
			row[b] = draw(i, b)
		}
		work[i] = row
	}
	return work
}
