package stage

import (
	"fmt"

	"powerchief/internal/cmp"
	"powerchief/internal/query"
)

// Kind distinguishes the stage organizations the paper evaluates.
type Kind int

const (
	// Pipeline stages serve each query on exactly one instance chosen by the
	// dispatcher (Sirius and NLP stages).
	Pipeline Kind = iota
	// FanOut stages send each query to every instance and complete when the
	// slowest branch finishes (Web Search leaves). Fan-out instances hold
	// index shards, so cloning and withdrawing them is not allowed; power
	// management uses DVFS only.
	FanOut
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Pipeline:
		return "pipeline"
	case FanOut:
		return "fanout"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Spec describes one stage of an application.
type Spec struct {
	Name      string
	Kind      Kind
	Profile   cmp.SpeedupProfile // the service's offline frequency profile
	Instances int                // initial instance count (≥ 1)
	Level     cmp.Level          // initial frequency level
}

// Validate checks the spec.
func (s Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("stage: spec needs a name")
	}
	if s.Profile == nil {
		return fmt.Errorf("stage %s: spec needs a speedup profile", s.Name)
	}
	if s.Instances < 1 {
		return fmt.Errorf("stage %s: needs at least one instance", s.Name)
	}
	if !s.Level.Valid() {
		return fmt.Errorf("stage %s: invalid level %d", s.Name, int(s.Level))
	}
	return nil
}

// Stage is a pool of service instances implementing one processing step.
type Stage struct {
	sys        *System
	index      int
	spec       Spec
	instances  []*Instance
	dispatcher Dispatcher
	seq        int // instance name sequence, monotonically increasing
}

// Name returns the stage name.
func (st *Stage) Name() string { return st.spec.Name }

// Index returns the stage's position in the pipeline.
func (st *Stage) Index() int { return st.index }

// Kind returns the stage organization.
func (st *Stage) Kind() Kind { return st.spec.Kind }

// Profile returns the service's speedup profile.
func (st *Stage) Profile() cmp.SpeedupProfile { return st.spec.Profile }

// Instances returns the live (non-retired) instances, including draining
// ones.
func (st *Stage) Instances() []*Instance {
	out := make([]*Instance, len(st.instances))
	copy(out, st.instances)
	return out
}

// Active returns the instances that accept new queries.
func (st *Stage) Active() []*Instance {
	var out []*Instance
	for _, in := range st.instances {
		if !in.draining {
			out = append(out, in)
		}
	}
	return out
}

// SetDispatcher replaces the stage's dispatch policy.
func (st *Stage) SetDispatcher(d Dispatcher) {
	if d == nil {
		panic("stage: nil dispatcher")
	}
	st.dispatcher = d
}

// admit routes an incoming query into the stage.
func (st *Stage) admit(q *query.Query) {
	switch st.spec.Kind {
	case Pipeline:
		active := st.Active()
		if len(active) == 0 {
			panic(fmt.Sprintf("stage %s: no active instance to serve query %d", st.spec.Name, q.ID))
		}
		in := st.dispatcher.Pick(active)
		in.enqueue(q)
	case FanOut:
		active := st.Active()
		if len(active) == 0 {
			panic(fmt.Sprintf("stage %s: no active instance to serve query %d", st.spec.Name, q.ID))
		}
		q.SetPending(len(active))
		for _, in := range active {
			in.enqueue(q)
		}
	default:
		panic(fmt.Sprintf("stage %s: unknown kind %v", st.spec.Name, st.spec.Kind))
	}
}

// queryDone is called by an instance when it finishes serving q.
func (st *Stage) queryDone(q *query.Query) {
	if st.spec.Kind == FanOut && !q.BranchDone() {
		return // other branches still outstanding
	}
	st.sys.advance(q, st.index)
}

// Launch adds a new instance to the stage at the given level, claiming a core
// within the chip budget. Used both at setup and by instance boosting.
func (st *Stage) Launch(level cmp.Level) (*Instance, error) {
	if st.spec.Kind == FanOut && len(st.instances) > 0 && st.sys.started {
		return nil, fmt.Errorf("stage %s: cannot launch into a fan-out stage at runtime", st.spec.Name)
	}
	core, err := st.sys.chip.Allocate(level)
	if err != nil {
		return nil, err
	}
	st.seq++
	in := newInstance(st, fmt.Sprintf("%s_%d", st.spec.Name, st.seq), len(st.instances), core, level)
	st.instances = append(st.instances, in)
	return in, nil
}

// Clone implements instance boosting (§5.1, Figure 7a): a new instance is
// launched at the same frequency as the bottleneck instance src, and half of
// the queries queued at src are offloaded to the clone (work stealing). The
// clone also shares future load through the dispatcher.
func (st *Stage) Clone(src *Instance) (*Instance, error) {
	if src.stage != st {
		return nil, fmt.Errorf("stage %s: clone source %s belongs to stage %s", st.spec.Name, src.name, src.stage.spec.Name)
	}
	if st.spec.Kind == FanOut {
		return nil, fmt.Errorf("stage %s: fan-out instances hold shards and cannot be cloned", st.spec.Name)
	}
	if src.retired {
		return nil, fmt.Errorf("stage %s: clone source %s is retired", st.spec.Name, src.name)
	}
	in, err := st.Launch(src.level)
	if err != nil {
		return nil, err
	}
	in.boosted = true
	// Offload the tail half of src's queue. Queue-enter timestamps travel
	// with the queries so queuing time is still measured from the original
	// enqueue.
	n := len(src.queue)
	steal := n / 2
	if steal > 0 {
		moved := src.queue[n-steal:]
		src.queue = src.queue[:n-steal]
		in.queue = append(in.queue, moved...)
		in.maybeStart()
	}
	return in, nil
}

// Withdraw drains instance in and releases its core (§6.2). Its queued
// queries are redirected to target (typically the fastest instance of the
// stage); if target is nil the dispatcher picks among the remaining active
// instances. The withdraw completes immediately when the instance is idle,
// otherwise after its in-flight query finishes. The last active instance of
// a stage cannot be withdrawn.
func (st *Stage) Withdraw(in *Instance, target *Instance) error {
	if in.stage != st {
		return fmt.Errorf("stage %s: withdraw of foreign instance %s", st.spec.Name, in.name)
	}
	if st.spec.Kind == FanOut {
		return fmt.Errorf("stage %s: fan-out instances cannot be withdrawn", st.spec.Name)
	}
	if in.draining || in.retired {
		return fmt.Errorf("stage %s: instance %s already withdrawing", st.spec.Name, in.name)
	}
	others := 0
	for _, o := range st.instances {
		if o != in && !o.draining {
			others++
		}
	}
	if others == 0 {
		return fmt.Errorf("stage %s: cannot withdraw the last active instance", st.spec.Name)
	}
	in.draining = true
	// Redirect queued load.
	if len(in.queue) > 0 {
		if target == nil || target == in || target.draining {
			target = st.dispatcher.Pick(st.Active())
		}
		target.queue = append(target.queue, in.queue...)
		in.queue = nil
		target.maybeStart()
	}
	if in.serving == nil {
		in.finalizeWithdraw()
	}
	return nil
}

// remove detaches a retired instance from the stage.
func (st *Stage) remove(in *Instance) {
	for i, o := range st.instances {
		if o == in {
			st.instances = append(st.instances[:i], st.instances[i+1:]...)
			return
		}
	}
}
