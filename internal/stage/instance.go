package stage

import (
	"fmt"
	"time"

	"powerchief/internal/cmp"
	"powerchief/internal/query"
	"powerchief/internal/sim"
	"powerchief/internal/stats"
)

// queued pairs a query with the virtual time it entered this instance's
// queue. The same query object can sit in several instance queues at once
// when the stage fans out.
type queued struct {
	q     *query.Query
	enter time.Duration
}

// Instance is one service instance: a worker pinned to a physical core,
// serving its own FIFO queue at the core's frequency. Each instance measures
// the queuing and serving time of every query it processes and appends them
// to the query (the joint design), and tracks its own busy time for the
// withdraw rule.
type Instance struct {
	stage  *Stage
	name   string
	branch int // fan-out branch index (stable per instance)

	core    cmp.CoreID
	level   cmp.Level
	boosted bool // launched by an instance boost (clone)

	queue      []queued
	serving    *queued
	serveStart time.Duration
	serveEnd   *sim.Event
	endAt      time.Duration // scheduled completion time of the in-flight query

	busy   *stats.BusyTracker
	served uint64

	draining bool
	retired  bool
}

func newInstance(st *Stage, name string, branch int, core cmp.CoreID, level cmp.Level) *Instance {
	in := &Instance{
		stage:  st,
		name:   name,
		branch: branch,
		core:   core,
		level:  level,
		busy:   stats.NewBusyTracker(),
	}
	// The utilization epoch starts at creation: a freshly cloned instance
	// must not look idle for the part of the withdraw interval that
	// predates it.
	in.busy.ResetEpoch(st.sys.eng.Now())
	return in
}

// Name returns the instance signature, e.g. "QA_2".
func (in *Instance) Name() string { return in.name }

// Stage returns the owning stage.
func (in *Instance) Stage() *Stage { return in.stage }

// StageName returns the owning stage's name.
func (in *Instance) StageName() string { return in.stage.spec.Name }

// Core returns the physical core the instance is pinned to.
func (in *Instance) Core() cmp.CoreID { return in.core }

// Level returns the instance's current frequency level.
func (in *Instance) Level() cmp.Level { return in.level }

// Power returns the power the instance's core currently draws.
func (in *Instance) Power() cmp.Watts { return in.stage.sys.chip.Model().Power(in.level) }

// QueueLen returns the realtime load: queued queries plus the one in
// service. This is the L of the paper's latency metric (Equation 1).
func (in *Instance) QueueLen() int {
	n := len(in.queue)
	if in.serving != nil {
		n++
	}
	return n
}

// Served returns the number of queries this instance completed.
func (in *Instance) Served() uint64 { return in.served }

// Draining reports whether the instance is being withdrawn.
func (in *Instance) Draining() bool { return in.draining }

// Retired reports whether the instance has been fully withdrawn.
func (in *Instance) Retired() bool { return in.retired }

// Utilization returns the fraction of the current withdraw epoch the
// instance spent serving queries.
func (in *Instance) Utilization() float64 {
	return in.busy.Utilization(in.stage.sys.eng.Now())
}

// ResetUtilizationEpoch starts a new withdraw-interval accounting epoch.
func (in *Instance) ResetUtilizationEpoch() {
	in.busy.ResetEpoch(in.stage.sys.eng.Now())
}

// enqueue adds q to the instance queue and starts service if idle.
func (in *Instance) enqueue(q *query.Query) {
	if in.retired {
		panic(fmt.Sprintf("stage: enqueue on retired instance %s", in.name))
	}
	in.queue = append(in.queue, queued{q: q, enter: in.stage.sys.eng.Now()})
	in.maybeStart()
}

// maybeStart begins serving the head of the queue when the instance is idle.
func (in *Instance) maybeStart() {
	if in.serving != nil || len(in.queue) == 0 || in.retired {
		return
	}
	item := in.queue[0]
	in.queue = in.queue[1:]
	in.serving = &item
	now := in.stage.sys.eng.Now()
	in.serveStart = now
	in.busy.SetBusy(now)
	d := in.serveTime(item.q)
	in.endAt = now + d
	in.serveEnd = in.stage.sys.eng.Schedule(d, in.complete)
}

// serveTime maps the query's intrinsic demand to wall time at the current
// frequency via the service's offline profile.
func (in *Instance) serveTime(q *query.Query) time.Duration {
	work := q.WorkAt(in.stage.index, in.branch)
	ratio := in.stage.spec.Profile.ExecRatio(in.level)
	d := time.Duration(float64(work) * ratio)
	if d < time.Nanosecond {
		d = time.Nanosecond // every query costs something
	}
	return d
}

// complete finishes the in-flight query: measure, record, hand back to the
// stage, and pull the next query.
func (in *Instance) complete() {
	item := in.serving
	if item == nil {
		panic(fmt.Sprintf("stage: completion on idle instance %s", in.name))
	}
	now := in.stage.sys.eng.Now()
	in.serving = nil
	in.serveEnd = nil
	in.served++

	rec := query.Record{
		Query:      item.q.ID,
		Stage:      in.stage.spec.Name,
		Instance:   in.name,
		QueueEnter: item.enter,
		ServeStart: in.serveStart,
		ServeEnd:   now,
		Level:      int(in.level),
		Boosted:    in.boosted,
	}
	item.q.Append(rec)

	if len(in.queue) == 0 {
		in.busy.SetIdle(now)
	}
	if in.draining && in.serving == nil && len(in.queue) == 0 {
		in.finalizeWithdraw()
	} else {
		in.maybeStart()
	}
	in.stage.queryDone(item.q)
}

// SetLevel performs a DVFS transition on the instance's core. If a query is
// in flight, its remaining work is re-timed at the new speed (the Haswell
// on-chip regulators make the transition itself sub-microsecond, which the
// model treats as instantaneous). Raising the level fails when the chip
// budget has no headroom.
func (in *Instance) SetLevel(l cmp.Level) error {
	if in.retired {
		return fmt.Errorf("stage: DVFS on retired instance %s", in.name)
	}
	if l == in.level {
		return nil
	}
	if err := in.stage.sys.chip.SetLevel(in.core, l); err != nil {
		return err
	}
	old := in.level
	in.level = l
	if in.serving != nil {
		now := in.stage.sys.eng.Now()
		remaining := in.endAt - now
		if remaining < 0 {
			remaining = 0
		}
		oldRatio := in.stage.spec.Profile.ExecRatio(old)
		newRatio := in.stage.spec.Profile.ExecRatio(l)
		scaled := time.Duration(float64(remaining) * newRatio / oldRatio)
		in.endAt = now + scaled
		in.serveEnd = in.stage.sys.eng.Reschedule(in.serveEnd, scaled)
	}
	return nil
}

// finalizeWithdraw releases the instance's core and detaches it from the
// stage. Only reachable when the instance is idle and draining.
func (in *Instance) finalizeWithdraw() {
	if in.serving != nil || len(in.queue) != 0 {
		panic(fmt.Sprintf("stage: finalizeWithdraw on busy instance %s", in.name))
	}
	in.retired = true
	in.busy.SetIdle(in.stage.sys.eng.Now())
	if err := in.stage.sys.chip.Release(in.core); err != nil {
		panic(fmt.Sprintf("stage: releasing core of %s: %v", in.name, err))
	}
	in.stage.remove(in)
}
