package stage

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"powerchief/internal/cmp"
	"powerchief/internal/query"
	"powerchief/internal/sim"
)

// Chaos property tests: under random interleavings of load and control
// actions (DVFS, clone, withdraw), the service model must never lose or
// duplicate a query, never break record time-ordering, and never exceed the
// chip budget.

func TestPropertyNoQueryLostUnderChaos(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		eng := sim.NewEngine()
		m := cmp.DefaultModel()
		chip := cmp.NewChip(16, m, 60)
		sys, err := NewSystem(eng, chip, []Spec{
			{Name: "A", Kind: Pipeline, Profile: cmp.NewRooflineProfile(0.2), Instances: 2, Level: cmp.MidLevel},
			{Name: "B", Kind: Pipeline, Profile: cmp.NewRooflineProfile(0.3), Instances: 1, Level: cmp.MidLevel},
		})
		if err != nil {
			t.Log(err)
			return false
		}
		completions := make(map[query.ID]int)
		sys.OnComplete(func(q *query.Query) { completions[q.ID]++ })

		// Load: 200 queries over 100 virtual seconds.
		const n = 200
		for i := 0; i < n; i++ {
			at := time.Duration(rng.Int63n(int64(100 * time.Second)))
			qid := query.ID(i)
			work := [][]time.Duration{
				{time.Duration(rng.Intn(400)+10) * time.Millisecond},
				{time.Duration(rng.Intn(300)+10) * time.Millisecond},
			}
			eng.ScheduleAt(at, func() { sys.Submit(query.New(qid, at, work)) })
		}
		// Chaos: 60 random control actions spread over the run.
		for i := 0; i < 60; i++ {
			at := time.Duration(rng.Int63n(int64(100 * time.Second)))
			action := rng.Intn(3)
			eng.ScheduleAt(at, func() {
				stages := sys.Stages()
				st := stages[rng.Intn(len(stages))]
				active := st.Active()
				if len(active) == 0 {
					return
				}
				in := active[rng.Intn(len(active))]
				switch action {
				case 0:
					_ = in.SetLevel(cmp.Level(rng.Intn(cmp.NumLevels)))
				case 1:
					_, _ = st.Clone(in)
				case 2:
					_ = st.Withdraw(in, nil)
				}
				if err := chip.CheckInvariant(); err != nil {
					t.Log(err)
					panic("budget invariant broken")
				}
			})
		}
		eng.Run()
		// Conservation: every query completed exactly once.
		if sys.Completed() != n || sys.InFlight() != 0 {
			t.Logf("seed %d: completed=%d inflight=%d", seed, sys.Completed(), sys.InFlight())
			return false
		}
		for id, c := range completions {
			if c != 1 {
				t.Logf("seed %d: query %d completed %d times", seed, id, c)
				return false
			}
		}
		return len(completions) == n && chip.CheckInvariant() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyRecordsWellFormed: every completed query's records respect
// time-ordering within and across stages (QueueEnter of stage k+1 is never
// before ServeEnd of stage k).
func TestPropertyRecordsWellFormed(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		eng := sim.NewEngine()
		chip := cmp.NewChip(16, cmp.DefaultModel(), 100)
		sys, err := NewSystem(eng, chip, []Spec{
			{Name: "A", Kind: Pipeline, Profile: cmp.NewRooflineProfile(0.1), Instances: 1, Level: cmp.MidLevel},
			{Name: "B", Kind: Pipeline, Profile: cmp.NewRooflineProfile(0.3), Instances: 2, Level: cmp.MidLevel},
			{Name: "C", Kind: Pipeline, Profile: cmp.NewRooflineProfile(0.5), Instances: 1, Level: cmp.MidLevel},
		})
		if err != nil {
			return false
		}
		ok := true
		sys.OnComplete(func(q *query.Query) {
			if len(q.Records) != 3 {
				ok = false
				return
			}
			var prevEnd time.Duration
			for _, r := range q.Records {
				if r.Validate() != nil {
					ok = false
				}
				if r.QueueEnter < prevEnd {
					ok = false
				}
				prevEnd = r.ServeEnd
			}
			if q.Done != prevEnd {
				ok = false
			}
		})
		for i := 0; i < 100; i++ {
			at := time.Duration(rng.Int63n(int64(50 * time.Second)))
			qid := query.ID(i)
			work := [][]time.Duration{
				{time.Duration(rng.Intn(200)+1) * time.Millisecond},
				{time.Duration(rng.Intn(200)+1) * time.Millisecond},
				{time.Duration(rng.Intn(200)+1) * time.Millisecond},
			}
			eng.ScheduleAt(at, func() { sys.Submit(query.New(qid, at, work)) })
		}
		eng.Run()
		return ok && sys.Completed() == 100
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestHopDelayInSystem verifies the §8.5 network-delay extension at the
// stage level: hops add exactly the configured delay between stages.
func TestHopDelayInSystem(t *testing.T) {
	eng := sim.NewEngine()
	chip := cmp.NewChip(16, cmp.DefaultModel(), 100)
	flatProfile := cmp.NewRooflineProfile(1)
	sys, err := NewSystem(eng, chip, []Spec{
		{Name: "A", Kind: Pipeline, Profile: flatProfile, Instances: 1, Level: cmp.MidLevel},
		{Name: "B", Kind: Pipeline, Profile: flatProfile, Instances: 1, Level: cmp.MidLevel},
	})
	if err != nil {
		t.Fatal(err)
	}
	sys.SetHopDelay(func(from, to int) time.Duration {
		if from != 0 || to != 1 {
			t.Errorf("unexpected hop %d→%d", from, to)
		}
		return 25 * time.Millisecond
	})
	q := query.New(1, time.Second, [][]time.Duration{{100 * time.Millisecond}, {50 * time.Millisecond}})
	eng.ScheduleAt(time.Second, func() { sys.Submit(q) })
	eng.Run()
	if got := q.Latency(); got != 175*time.Millisecond {
		t.Errorf("latency with one 25ms hop = %v, want 175ms", got)
	}
	// Removing the model restores direct hand-off.
	sys.SetHopDelay(nil)
	q2 := query.New(2, 10*time.Second, [][]time.Duration{{100 * time.Millisecond}, {50 * time.Millisecond}})
	eng.ScheduleAt(10*time.Second, func() { sys.Submit(q2) })
	eng.Run()
	if got := q2.Latency(); got != 150*time.Millisecond {
		t.Errorf("latency without hops = %v, want 150ms", got)
	}
}
