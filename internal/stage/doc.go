// Package stage implements the multi-stage service model of the paper
// (Figure 3): an application is a pipeline of stages, each stage holds a
// dynamic pool of service instances, each instance runs exclusively on one
// physical core at its own DVFS level and maintains its own queue to smooth
// load bursts. Stages can be organized as Pipeline (each query is served by
// one instance of the stage) or FanOut (the query fans to every instance and
// joins on the slowest — the Web Search leaf organization).
//
// The package provides the actuation surface that PowerChief's Command
// Center drives: per-instance DVFS, instance boosting (clone + work
// stealing), and instance withdraw (drain + load redirection).
//
// Entry points: NewSystem assembles stages from Spec values on a sim.Engine
// and a cmp.Chip; System.Submit injects a query and OnComplete reports it
// with its latency records. Dispatcher implementations (JoinShortestQueue,
// RoundRobin, LeastExpectedDelay) choose the instance per arrival — the
// ablation in results/ablations.txt compares them. This package is the
// virtual-time twin of internal/live; ARCHITECTURE.md shows both behind the
// same policy interfaces.
package stage
