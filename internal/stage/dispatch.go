package stage

// Dispatcher selects the instance that receives the next query of a pipeline
// stage. Implementations must be deterministic given the same instance state
// so simulation runs are reproducible.
type Dispatcher interface {
	Pick(active []*Instance) *Instance
}

// JoinShortestQueue routes each query to the instance with the smallest
// backlog (queued plus in-service), breaking ties by instance order. This is
// the default: it is the load-balancing behaviour the paper's instance pool
// relies on to make new instances share load "in the future form".
type JoinShortestQueue struct{}

// Pick implements Dispatcher.
func (JoinShortestQueue) Pick(active []*Instance) *Instance {
	if len(active) == 0 {
		panic("stage: dispatch with no active instances")
	}
	best := active[0]
	bestLen := best.QueueLen()
	for _, in := range active[1:] {
		if l := in.QueueLen(); l < bestLen {
			best, bestLen = in, l
		}
	}
	return best
}

// RoundRobin cycles deterministically through the active instances. The
// cursor advances over the stage's live membership, so instances launched or
// withdrawn mid-run are picked up naturally.
type RoundRobin struct {
	next int
}

// Pick implements Dispatcher.
func (r *RoundRobin) Pick(active []*Instance) *Instance {
	if len(active) == 0 {
		panic("stage: dispatch with no active instances")
	}
	in := active[r.next%len(active)]
	r.next++
	return in
}

// LeastExpectedDelay routes to the instance whose estimated wait — backlog
// scaled by the instance's current speed relative to the stage's slowest
// level — is smallest. It approximates the paper's observation (§2.2) that
// queue length alone misleads when instances run at different frequencies: a
// long queue on a fast core may drain sooner than a short queue on a slow
// one.
type LeastExpectedDelay struct{}

// Pick implements Dispatcher.
func (LeastExpectedDelay) Pick(active []*Instance) *Instance {
	if len(active) == 0 {
		panic("stage: dispatch with no active instances")
	}
	best := active[0]
	bestScore := expectedDelayScore(best)
	for _, in := range active[1:] {
		if s := expectedDelayScore(in); s < bestScore {
			best, bestScore = in, s
		}
	}
	return best
}

// expectedDelayScore estimates relative wait as backlog × execRatio(level):
// the higher the frequency, the smaller the ratio and the faster the backlog
// drains.
func expectedDelayScore(in *Instance) float64 {
	return float64(in.QueueLen()+1) * in.stage.spec.Profile.ExecRatio(in.level)
}
