package dist

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"

	"powerchief/internal/cmp"
	"powerchief/internal/query"
)

// roundTrip marshals v, unmarshals into a fresh value of the same type, and
// returns it — the exact path every frame takes through internal/rpc.
func roundTrip(t *testing.T, v any) any {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal %T: %v", v, err)
	}
	out := reflect.New(reflect.TypeOf(v))
	if err := json.Unmarshal(data, out.Interface()); err != nil {
		t.Fatalf("unmarshal %T: %v", v, err)
	}
	return out.Elem().Interface()
}

// Every message type of the stage-service RPC surface survives an
// encode/decode round trip unchanged.
func TestProtocolRoundTripAllMessages(t *testing.T) {
	msgs := []any{
		ProcessArgs{QueryID: 42, Work: []time.Duration{120 * time.Millisecond, 80 * time.Millisecond}},
		ProcessReply{Records: []RecordWire{
			{
				Instance:   "QA_1",
				Stage:      "QA",
				QueueEnter: 5 * time.Millisecond,
				ServeStart: 12 * time.Millisecond,
				ServeEnd:   150 * time.Millisecond,
				Level:      7,
				Boosted:    true,
			},
			{Instance: "QA_2", Stage: "QA", ServeEnd: time.Second},
		}},
		StatsReply{Instances: []InstanceStats{
			{Name: "ASR_1", QueueLen: 3, Level: cmp.Level(4), Utilization: 0.62},
			{Name: "ASR_2"},
		}},
		SetLevelArgs{Instance: "IMM_1", Level: cmp.MaxLevel},
		CloneArgs{Instance: "QA_1"},
		CloneReply{Name: "QA_2", Level: cmp.Level(3)},
		WithdrawArgs{Instance: "QA_3", Target: "QA_1"},
		WithdrawArgs{Instance: "QA_3"},
		InfoReply{Name: "QA", CanScale: true, MemBound: 0.25},
	}
	for _, msg := range msgs {
		if got := roundTrip(t, msg); !reflect.DeepEqual(got, msg) {
			t.Errorf("%T round trip: got %+v, want %+v", msg, got, msg)
		}
	}
}

// The wire form and the engine-internal query.Record convert losslessly in
// both directions, including the telemetry DVFS fields.
func TestRecordWireConversion(t *testing.T) {
	rec := query.Record{
		Query:      query.ID(9),
		Stage:      "NLU",
		Instance:   "NLU_2",
		QueueEnter: 3 * time.Millisecond,
		ServeStart: 10 * time.Millisecond,
		ServeEnd:   90 * time.Millisecond,
		Level:      5,
		Boosted:    true,
	}
	wire := fromRecord(rec)
	back := wire.toRecord(query.ID(9))
	if !reflect.DeepEqual(back, rec) {
		t.Errorf("record conversion: got %+v, want %+v", back, rec)
	}
}

// Backward compatibility, sending side: a record at the zero DVFS state
// (base level, not boosted) must encode byte-identically to what a peer
// predating the Level/Boosted fields produced — the omitempty tags elide
// them entirely.
func TestRecordWireOmitsZeroDVFSFields(t *testing.T) {
	data, err := json.Marshal(RecordWire{
		Instance:   "ASR_1",
		Stage:      "ASR",
		QueueEnter: time.Millisecond,
		ServeStart: 2 * time.Millisecond,
		ServeEnd:   3 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"level", "boosted"} {
		if strings.Contains(string(data), key) {
			t.Errorf("zero-value frame carries %q: %s", key, data)
		}
	}
}

// Backward compatibility, receiving side: a frame from an old peer — no
// level/boosted keys at all — still decodes, with the new fields at their
// zero values.
func TestRecordWireDecodesLegacyFrame(t *testing.T) {
	legacy := `{"instance":"QA_1","stage":"QA","queue_enter":1000000,"serve_start":2000000,"serve_end":9000000}`
	var wire RecordWire
	if err := json.Unmarshal([]byte(legacy), &wire); err != nil {
		t.Fatal(err)
	}
	want := RecordWire{
		Instance:   "QA_1",
		Stage:      "QA",
		QueueEnter: time.Millisecond,
		ServeStart: 2 * time.Millisecond,
		ServeEnd:   9 * time.Millisecond,
	}
	if wire != want {
		t.Errorf("legacy decode: got %+v, want %+v", wire, want)
	}
	rec := wire.toRecord(query.ID(1))
	if rec.Level != 0 || rec.Boosted {
		t.Errorf("legacy record DVFS state: got level=%d boosted=%v, want zero", rec.Level, rec.Boosted)
	}
}

// The forward direction of the same compatibility story: a new frame that
// does carry the DVFS fields decodes into them.
func TestRecordWireDecodesNewFrame(t *testing.T) {
	data := `{"instance":"QA_1","stage":"QA","serve_end":9000000,"level":6,"boosted":true}`
	var wire RecordWire
	if err := json.Unmarshal([]byte(data), &wire); err != nil {
		t.Fatal(err)
	}
	if wire.Level != 6 || !wire.Boosted {
		t.Errorf("new frame decode: got level=%d boosted=%v, want 6/true", wire.Level, wire.Boosted)
	}
}
