package dist

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"powerchief/internal/cmp"
	"powerchief/internal/core"
	"powerchief/internal/rpc"
	"powerchief/internal/stage"
)

// Chaos tests: the fault-injection harness (ChaosProxy) kills, hangs, and
// slows stage services mid-run, and the Command Center must keep its
// promises — no submit blocks past its deadline, a down stage's watts are
// reclaimed for the survivors, and a returning stage is re-admitted without
// the global budget ever being exceeded.

// chaosOptions are tight, test-friendly fault-tolerance settings with the
// background prober disabled (tests drive ProbeNow explicitly).
func chaosOptions() CenterOptions {
	return CenterOptions{
		CallTimeout:   300 * time.Millisecond,
		SubmitTimeout: 500 * time.Millisecond,
		Retry:         rpc.RetryPolicy{Max: 1, BaseBackoff: 5 * time.Millisecond, MaxBackoff: 20 * time.Millisecond},
		ProbeInterval: -1,
		SuspectAfter:  2,
	}
}

// startChaosPipeline runs three stage services, each behind a ChaosProxy,
// and a center connected through the proxies with zero initial headroom
// (budget = 3 cores at the mid level).
func startChaosPipeline(t *testing.T, opts CenterOptions) (*Center, []*StageService, []*ChaosProxy) {
	t.Helper()
	specs := []StageOptions{
		{Name: "ASR", Kind: stage.Pipeline, MemBound: 0.15, Instances: 1, Level: cmp.MidLevel, TimeScale: testScale},
		{Name: "IMM", Kind: stage.Pipeline, MemBound: 0.35, Instances: 1, Level: cmp.MidLevel, TimeScale: testScale},
		{Name: "QA", Kind: stage.Pipeline, MemBound: 0.25, Instances: 1, Level: cmp.MidLevel, TimeScale: testScale},
	}
	var svcs []*StageService
	var proxies []*ChaosProxy
	var addrs []string
	for _, so := range specs {
		svc, err := NewStageService(so)
		if err != nil {
			t.Fatal(err)
		}
		backend, err := svc.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		proxy := NewChaosProxy(backend)
		front, err := proxy.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		svcs = append(svcs, svc)
		proxies = append(proxies, proxy)
		addrs = append(addrs, front)
	}
	budget := 3 * cmp.DefaultModel().Power(cmp.MidLevel)
	center, err := NewCenterOptions(budget, 25*time.Second, addrs, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		center.Close()
		for _, p := range proxies {
			p.Close()
		}
		for _, s := range svcs {
			s.Close()
		}
	})
	return center, svcs, proxies
}

// feedQueries pushes n queries through so the aggregator has statistics.
func feedQueries(t *testing.T, center *Center, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := center.Submit([][]time.Duration{
			{60 * time.Millisecond},
			{20 * time.Millisecond},
			{20 * time.Millisecond},
		}); err != nil {
			t.Fatal(err)
		}
	}
}

// watchBudget polls Draw() in the background and records the worst
// overshoot; stop it and check the result via the returned functions.
func watchBudget(center *Center) (stop func(), maxDraw func() cmp.Watts) {
	var mu sync.Mutex
	var worst cmp.Watts
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			d := center.Draw()
			mu.Lock()
			if d > worst {
				worst = d
			}
			mu.Unlock()
			time.Sleep(time.Millisecond)
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(done); wg.Wait() }) },
		func() cmp.Watts { mu.Lock(); defer mu.Unlock(); return worst }
}

func TestChaosKilledStageQuarantineBoostAndReadmit(t *testing.T) {
	opts := chaosOptions()
	center, _, proxies := startChaosPipeline(t, opts)
	feedQueries(t, center, 5)

	stopWatch, maxDraw := watchBudget(center)
	defer stopWatch()

	// Kill the middle stage.
	proxies[1].Kill()

	// Submits fail within the deadline — never hang.
	deadline := opts.SubmitTimeout + time.Second
	start := time.Now()
	_, err := center.Submit([][]time.Duration{{time.Millisecond}, {time.Millisecond}, {time.Millisecond}})
	if err == nil {
		t.Fatal("submit through a killed stage succeeded")
	}
	if elapsed := time.Since(start); elapsed > deadline {
		t.Fatalf("submit blocked %v, deadline %v", elapsed, deadline)
	}

	// The connection broke, so the first failure already quarantines; the
	// next submit fails fast with the typed error.
	start = time.Now()
	_, err = center.Submit([][]time.Duration{{time.Millisecond}, {time.Millisecond}, {time.Millisecond}})
	if !errors.Is(err, ErrStageDown) {
		t.Fatalf("submit after quarantine = %v, want ErrStageDown", err)
	}
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Errorf("fail-fast submit took %v", elapsed)
	}

	// Quarantine accounting: the dead stage's watts are reclaimed.
	model := cmp.DefaultModel()
	if got, want := center.Draw(), 2*model.Power(cmp.MidLevel); !cmp.ApproxEqual(got, want) {
		t.Errorf("Draw = %v, want %v (dead stage excluded)", got, want)
	}
	if center.Headroom() < model.Power(cmp.MidLevel)-1e-9 {
		t.Errorf("headroom %v did not grow by the dead stage's draw", center.Headroom())
	}
	if got := len(center.Quarantined()); got != 1 {
		t.Fatalf("quarantined = %d, want 1", got)
	}

	// Degraded control interval: the policy boosts a survivor with the
	// reclaimed watts.
	cfg := core.DefaultConfig()
	cfg.BalanceThreshold = 0
	out, err := center.Adjust(core.NewFreqBoost(cfg))
	if err != nil {
		t.Fatalf("degraded Adjust: %v", err)
	}
	if out.Kind != core.BoostFrequency {
		t.Fatalf("degraded Adjust outcome = %v, want a frequency boost funded by reclaimed watts", out.Kind)
	}
	if center.Draw() > center.Budget()+1e-9 {
		t.Fatalf("boost pushed draw %v over budget %v", center.Draw(), center.Budget())
	}

	// Heal the partition: the prober re-admits the stage, restoring its
	// budget share (deboosting survivors as needed) without ever exceeding
	// the budget.
	proxies[1].Restore("")
	readmitted := false
	for i := 0; i < 40 && !readmitted; i++ {
		center.ProbeNow()
		readmitted = len(center.Quarantined()) == 0
		if !readmitted {
			time.Sleep(25 * time.Millisecond)
		}
	}
	if !readmitted {
		t.Fatalf("stage never re-admitted; healths: %+v", center.Healths())
	}
	if got := len(center.Stages()); got != 3 {
		t.Errorf("visible stages after re-admission = %d, want 3", got)
	}
	if center.Draw() > center.Budget()+1e-9 {
		t.Errorf("draw %v exceeds budget %v after re-admission", center.Draw(), center.Budget())
	}

	// The budget held at every observed instant, including mid-recovery.
	stopWatch()
	if worst := maxDraw(); worst > center.Budget()+1e-9 {
		t.Errorf("observed draw %v over budget %v during the run", worst, center.Budget())
	}

	// End-to-end service is restored.
	if _, err := center.Submit([][]time.Duration{{time.Millisecond}, {time.Millisecond}, {time.Millisecond}}); err != nil {
		t.Errorf("submit after recovery: %v", err)
	}
}

func TestChaosHungStageSubmitBoundedByDeadline(t *testing.T) {
	opts := chaosOptions()
	center, _, proxies := startChaosPipeline(t, opts)
	feedQueries(t, center, 3)

	// Hang the last stage: connections stay up, requests are consumed,
	// nothing ever answers. Only deadlines save the caller.
	proxies[2].SetMode(ChaosHang)

	work := [][]time.Duration{{time.Millisecond}, {time.Millisecond}, {time.Millisecond}}
	for i := 0; i < opts.SuspectAfter; i++ {
		start := time.Now()
		_, err := center.Submit(work)
		elapsed := time.Since(start)
		if err == nil {
			t.Fatal("submit through a hung stage succeeded")
		}
		if !errors.Is(err, rpc.ErrTimeout) && !errors.Is(err, ErrStageDown) {
			t.Fatalf("submit error = %v, want a deadline or stage-down error", err)
		}
		if elapsed > opts.SubmitTimeout+time.Second {
			t.Fatalf("submit blocked %v, deadline %v", elapsed, opts.SubmitTimeout)
		}
	}

	// Repeated timeouts quarantine the hung stage; submits now fail fast.
	if st := center.Healths()[2].State; st != Down {
		t.Fatalf("hung stage health = %v, want down", st)
	}
	start := time.Now()
	if _, err := center.Submit(work); !errors.Is(err, ErrStageDown) {
		t.Errorf("submit after hang quarantine = %v, want ErrStageDown", err)
	}
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Errorf("fail-fast submit took %v", elapsed)
	}

	// Degraded Adjust still runs on the survivors.
	cfg := core.DefaultConfig()
	cfg.BalanceThreshold = 0
	if _, err := center.Adjust(core.NewFreqBoost(cfg)); err != nil {
		t.Errorf("degraded Adjust with hung stage: %v", err)
	}
	if center.Draw() > center.Budget()+1e-9 {
		t.Errorf("draw %v over budget %v", center.Draw(), center.Budget())
	}

	// Recovery: clear the hang and sever the poisoned connections so the
	// prober redials cleanly, then wait for re-admission.
	proxies[2].Restore("")
	proxies[2].SeverConns()
	readmitted := false
	for i := 0; i < 40 && !readmitted; i++ {
		center.ProbeNow()
		readmitted = len(center.Quarantined()) == 0
		if !readmitted {
			time.Sleep(25 * time.Millisecond)
		}
	}
	if !readmitted {
		t.Fatalf("hung stage never re-admitted; healths: %+v", center.Healths())
	}
	if _, err := center.Submit(work); err != nil {
		t.Errorf("submit after hang recovery: %v", err)
	}
}

func TestChaosSlowStageServesUnderDeadlineThenTripsIt(t *testing.T) {
	opts := chaosOptions()
	center, _, proxies := startChaosPipeline(t, opts)
	feedQueries(t, center, 3)

	// A modest slowdown: submits succeed, the stage stays healthy.
	proxies[0].SetMode(ChaosSlow)
	proxies[0].SetDelay(50 * time.Millisecond)
	work := [][]time.Duration{{time.Millisecond}, {time.Millisecond}, {time.Millisecond}}
	start := time.Now()
	if _, err := center.Submit(work); err != nil {
		t.Fatalf("submit through slow stage: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 50*time.Millisecond {
		t.Errorf("slow injection had no effect (submit took %v)", elapsed)
	}
	if st := center.Healths()[0].State; st != Healthy {
		t.Errorf("slow-but-answering stage health = %v, want healthy", st)
	}

	// Slower than the deadline: the submit is bounded and fails.
	proxies[0].SetDelay(2 * opts.SubmitTimeout)
	start = time.Now()
	_, err := center.Submit(work)
	if err == nil {
		t.Fatal("submit exceeded its deadline without erroring")
	}
	if !errors.Is(err, rpc.ErrTimeout) {
		t.Errorf("submit error = %v, want ErrTimeout", err)
	}
	if elapsed := time.Since(start); elapsed > opts.SubmitTimeout+time.Second {
		t.Errorf("submit blocked %v past its deadline %v", elapsed, opts.SubmitTimeout)
	}
}

func TestChaosDegradedSubmitServesSurvivors(t *testing.T) {
	opts := chaosOptions()
	opts.DegradedSubmit = true
	center, _, proxies := startChaosPipeline(t, opts)
	feedQueries(t, center, 3)

	proxies[1].Kill()
	work := [][]time.Duration{
		{5 * time.Millisecond},
		{5 * time.Millisecond},
		{5 * time.Millisecond},
	}
	// The first submit may catch the stage before it is marked down.
	center.Submit(work)

	// Once quarantined, degraded submits are served by the survivors and
	// their end-to-end latency recovers to healthy-path levels.
	var served atomic.Int32
	for i := 0; i < 10; i++ {
		lat, err := center.Submit(work)
		if err != nil {
			t.Fatalf("degraded submit %d: %v", i, err)
		}
		if lat <= 0 {
			t.Errorf("degraded submit %d latency = %v", i, lat)
		}
		if lat > opts.SubmitTimeout {
			t.Errorf("degraded submit %d latency %v worse than the deadline", i, lat)
		}
		served.Add(1)
	}
	if served.Load() != 10 {
		t.Errorf("served %d degraded queries, want 10", served.Load())
	}
	// The skipped stage contributed no records; the survivors did.
	if _, _, ok := center.Aggregator().InstStats("ASR_1"); !ok {
		t.Error("survivor ASR_1 has no stats")
	}
	if _, _, ok := center.Aggregator().InstStats("QA_1"); !ok {
		t.Error("survivor QA_1 has no stats")
	}
}
