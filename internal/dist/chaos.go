package dist

import (
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// ChaosMode selects how a ChaosProxy treats traffic.
type ChaosMode int

const (
	// ChaosPass forwards traffic untouched.
	ChaosPass ChaosMode = iota
	// ChaosDeny refuses new connections and severs existing ones — the
	// observable signature of a killed stage service or a network partition.
	ChaosDeny
	// ChaosHang accepts connections and reads requests but never forwards or
	// answers them — the signature of a hung (accept-but-never-reply)
	// service. Only deadlines get a caller out.
	ChaosHang
	// ChaosSlow forwards traffic but delays every server→client chunk by the
	// configured delay — the signature of an overloaded or GC-thrashing
	// service.
	ChaosSlow
)

// String implements fmt.Stringer.
func (m ChaosMode) String() string {
	switch m {
	case ChaosPass:
		return "pass"
	case ChaosDeny:
		return "deny"
	case ChaosHang:
		return "hang"
	case ChaosSlow:
		return "slow"
	default:
		return "unknown"
	}
}

// ChaosProxy is the fault-injection harness of the distributed prototype: a
// TCP proxy placed between the Command Center and one stage service that can
// kill, hang, or slow the stage mid-run without touching the service
// process. Mode changes apply to new traffic immediately; SeverConns tears
// down established connections to complete a kill or partition.
type ChaosProxy struct {
	mu      sync.Mutex
	backend string
	mode    ChaosMode
	delay   time.Duration
	ln      net.Listener
	conns   map[net.Conn]struct{}
	closed  bool
	wg      sync.WaitGroup
}

// NewChaosProxy creates a proxy for the given backend address in ChaosPass
// mode.
func NewChaosProxy(backend string) *ChaosProxy {
	return &ChaosProxy{backend: backend, conns: make(map[net.Conn]struct{})}
}

// Listen starts accepting on addr and returns the bound address. Dial the
// returned address instead of the backend.
func (p *ChaosProxy) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		ln.Close()
		return "", fmt.Errorf("dist: chaos proxy closed")
	}
	p.ln = ln
	p.mu.Unlock()
	p.wg.Add(1)
	go p.acceptLoop(ln)
	return ln.Addr().String(), nil
}

// SetMode switches the fault mode. New connections observe it immediately;
// in-flight traffic observes it per chunk.
func (p *ChaosProxy) SetMode(m ChaosMode) {
	p.mu.Lock()
	p.mode = m
	p.mu.Unlock()
}

// Mode returns the current fault mode.
func (p *ChaosProxy) Mode() ChaosMode {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.mode
}

// SetDelay sets the per-chunk delay applied in ChaosSlow mode.
func (p *ChaosProxy) SetDelay(d time.Duration) {
	p.mu.Lock()
	p.delay = d
	p.mu.Unlock()
}

// SetBackend points the proxy at a different backend address — a "restarted"
// service. Existing connections keep their old backend; sever them first to
// force clients onto the new one.
func (p *ChaosProxy) SetBackend(addr string) {
	p.mu.Lock()
	p.backend = addr
	p.mu.Unlock()
}

// SeverConns closes every established connection through the proxy, leaving
// the listener up. Combined with ChaosDeny this is a kill; alone it forces
// clients to reconnect.
func (p *ChaosProxy) SeverConns() {
	p.mu.Lock()
	for conn := range p.conns {
		conn.Close()
	}
	p.mu.Unlock()
}

// Kill is the canonical "stage service died" injection: refuse new
// connections and sever established ones.
func (p *ChaosProxy) Kill() {
	p.SetMode(ChaosDeny)
	p.SeverConns()
}

// Partition is the canonical "network partition" injection: the same
// observable signature as Kill (connections refused and severed) but named
// for the case where the backend process keeps running — and keeps its local
// state, including any fencing epoch it last saw. A healed partition
// (Restore) therefore brings back a peer that may report with a stale epoch,
// which is exactly what fencing must reject; a killed-and-restarted backend
// comes back empty instead.
func (p *ChaosProxy) Partition() {
	p.Kill()
}

// Restore returns the proxy to transparent forwarding, optionally pointing
// it at a restarted backend (empty keeps the current one).
func (p *ChaosProxy) Restore(backend string) {
	p.mu.Lock()
	if backend != "" {
		p.backend = backend
	}
	p.mode = ChaosPass
	p.mu.Unlock()
}

// Close shuts the proxy down entirely.
func (p *ChaosProxy) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	if p.ln != nil {
		p.ln.Close()
	}
	for conn := range p.conns {
		conn.Close()
	}
	p.mu.Unlock()
	p.wg.Wait()
}

func (p *ChaosProxy) acceptLoop(ln net.Listener) {
	defer p.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		mode := p.mode
		backend := p.backend
		if p.closed || mode == ChaosDeny {
			p.mu.Unlock()
			conn.Close()
			continue
		}
		p.conns[conn] = struct{}{}
		p.mu.Unlock()

		p.wg.Add(1)
		go p.serve(conn, backend)
	}
}

// track registers an auxiliary (backend-side) connection for severing.
func (p *ChaosProxy) track(conn net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	p.conns[conn] = struct{}{}
	return true
}

func (p *ChaosProxy) untrack(conn net.Conn) {
	p.mu.Lock()
	delete(p.conns, conn)
	p.mu.Unlock()
}

func (p *ChaosProxy) serve(client net.Conn, backend string) {
	defer p.wg.Done()
	defer func() {
		client.Close()
		p.untrack(client)
	}()
	server, err := net.DialTimeout("tcp", backend, 2*time.Second)
	if err != nil {
		// Backend unreachable: in Hang mode swallow the client silently;
		// otherwise drop it so the failure is visible.
		if p.Mode() == ChaosHang {
			io.Copy(io.Discard, client)
		}
		return
	}
	defer server.Close()
	if !p.track(server) {
		return
	}
	defer p.untrack(server)

	var wg sync.WaitGroup
	wg.Add(2)
	// client → server: requests. A hung service still reads requests, so in
	// Hang mode bytes are consumed but never forwarded.
	go func() {
		defer wg.Done()
		defer server.Close()
		p.copyChunks(server, client, false)
	}()
	// server → client: responses. Hang drops them; Slow delays them.
	go func() {
		defer wg.Done()
		defer client.Close()
		p.copyChunks(client, server, true)
	}()
	wg.Wait()
}

// copyChunks forwards src to dst one read at a time, consulting the fault
// mode per chunk. Response-direction chunks (isResponse) are dropped in Hang
// mode and delayed in Slow mode.
func (p *ChaosProxy) copyChunks(dst, src net.Conn, isResponse bool) {
	buf := make([]byte, 32<<10)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			p.mu.Lock()
			mode := p.mode
			delay := p.delay
			p.mu.Unlock()
			forward := true
			if mode == ChaosHang {
				forward = false // swallow: the peer never hears back
			} else if mode == ChaosSlow && isResponse && delay > 0 {
				time.Sleep(delay)
			}
			if forward {
				if _, werr := dst.Write(buf[:n]); werr != nil {
					return
				}
			}
		}
		if err != nil {
			return
		}
	}
}
