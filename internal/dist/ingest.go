package dist

import (
	"errors"
	"strings"
	"sync/atomic"
	"time"

	"powerchief/internal/core"
	"powerchief/internal/query"
	"powerchief/internal/rpc"
	"powerchief/internal/stats"
	"powerchief/internal/telemetry"
)

// ingestState is the center's side of delta-batched ingest: negotiation
// results and fold accounting, embedded in Center.
type ingestState struct {
	// deltasIn counts delta frames folded; recordsIn counts legacy per-record
	// folds. Their ratio is the wire-traffic reduction the batching bought.
	deltasIn  atomic.Uint64
	recordsIn atomic.Uint64
	// deltaQueries counts completed queries summarized by folded deltas.
	deltaQueries atomic.Uint64
	// seqGaps counts sequence-number discontinuities across folded deltas —
	// each one is at most a flush window of statistics lost with a killed or
	// restarted stage process.
	seqGaps atomic.Uint64
	// lastDeltaNS is the center clock (ns) at the last delta fold, for the
	// staleness gauge.
	lastDeltaNS atomic.Int64
}

// negotiateIngest offers delta-batched ingest to one stage service. Old
// services answer "unknown method" — the legacy per-record contract — which
// is not an error; anything else is. Run at startup and again on every
// re-admission: a restarted stage process comes up disarmed (per-record),
// so without the re-offer one crash would silently degrade that stage's
// wire traffic for the rest of the run. Arming resets the sequence
// high-water mark — the new process numbers its flushes from 1, and holding
// the old mark would count a spurious gap on every frame until it caught up.
func (c *Center) negotiateIngest(st *remoteStage) error {
	args := IngestArgs{
		Version:    stats.DeltaVersion,
		Batch:      c.opts.IngestBatch,
		IntervalNS: int64(c.opts.IngestInterval),
	}
	var reply IngestReply
	err := st.client.CallRetry(MethodIngest, args, &reply)
	if err != nil {
		var se *rpc.ServerError
		if errors.As(err, &se) && strings.Contains(se.Msg, "unknown method") {
			st.mu.Lock()
			st.deltaIngest = false
			st.mu.Unlock()
			return nil // old stage binary: stays per-record
		}
		return err
	}
	st.mu.Lock()
	st.deltaIngest = reply.Accepted
	st.deltaSeq = 0
	st.mu.Unlock()
	return nil
}

// DeltaIngestStages returns how many live (non-quarantined) stages have
// delta-batched ingest negotiated (0 when the feature is off or every peer
// is legacy). A quarantined stage is excluded — it is not shipping deltas —
// so the gauge dips when a stage dies and recovers on re-admission.
func (c *Center) DeltaIngestStages() int {
	c.mu.Lock()
	stages := make([]*remoteStage, len(c.stages))
	copy(stages, c.stages)
	c.mu.Unlock()
	n := 0
	for _, st := range stages {
		if st.quarantined() {
			continue
		}
		st.mu.Lock()
		if st.deltaIngest {
			n++
		}
		st.mu.Unlock()
	}
	return n
}

// foldDelta folds one stage-shipped delta into the aggregator, tracking
// sequence gaps and staleness. The center already counted each completion
// through finishQuery (and measures end-to-end latency itself), so the
// delta's query count feeds only the metrics, never the aggregator's
// ingested total.
func (c *Center) foldDelta(st *remoteStage, d *stats.Delta) error {
	if d.Empty() {
		return nil
	}
	st.mu.Lock()
	if st.deltaSeq != 0 && d.Seq != st.deltaSeq+1 {
		c.ingest.seqGaps.Add(1)
	}
	if d.Seq > st.deltaSeq {
		st.deltaSeq = d.Seq
	}
	st.mu.Unlock()

	c.ingest.deltaQueries.Add(d.Queries)
	queries := d.Queries
	d.Queries = 0 // completions were already counted at finishQuery
	err := c.agg.IngestDelta(d)
	d.Queries = queries
	if err != nil {
		return err
	}
	c.ingest.deltasIn.Add(1)
	c.ingest.lastDeltaNS.Store(int64(c.Now()))
	return nil
}

// IngestCounts returns the lifetime fold counters: delta frames folded,
// completed queries they summarized, legacy per-record folds, and sequence
// gaps observed (lost flush windows).
func (c *Center) IngestCounts() (deltas, deltaQueries, records, seqGaps uint64) {
	return c.ingest.deltasIn.Load(), c.ingest.deltaQueries.Load(),
		c.ingest.recordsIn.Load(), c.ingest.seqGaps.Load()
}

// IngestStaleness returns the center-clock age of the newest folded delta,
// and false when no delta has been folded yet.
func (c *Center) IngestStaleness() (time.Duration, bool) {
	last := c.ingest.lastDeltaNS.Load()
	if last == 0 {
		return 0, false
	}
	return c.Now() - time.Duration(last), true
}

// RegisterIngestMetrics exports the delta-ingest telemetry on reg: fold
// counters, sequence gaps, the number of delta-negotiated stages, and the
// staleness gauge (seconds since the newest folded delta; 0 before the
// first fold).
func (c *Center) RegisterIngestMetrics(reg *telemetry.Registry) {
	reg.CounterFunc("powerchief_ingest_deltas_total", "delta frames folded into the aggregator", func() float64 {
		return float64(c.ingest.deltasIn.Load())
	})
	reg.CounterFunc("powerchief_ingest_delta_queries_total", "completed queries summarized by folded deltas", func() float64 {
		return float64(c.ingest.deltaQueries.Load())
	})
	reg.CounterFunc("powerchief_ingest_records_total", "legacy per-record statistic folds", func() float64 {
		return float64(c.ingest.recordsIn.Load())
	})
	reg.CounterFunc("powerchief_ingest_seq_gaps_total", "delta sequence gaps (lost flush windows)", func() float64 {
		return float64(c.ingest.seqGaps.Load())
	})
	reg.GaugeFunc("powerchief_ingest_stages", "stages with delta-batched ingest negotiated", func() float64 {
		return float64(c.DeltaIngestStages())
	})
	reg.GaugeFunc("powerchief_ingest_staleness_seconds", "age of the newest folded delta", func() float64 {
		s, ok := c.IngestStaleness()
		if !ok {
			return 0
		}
		return s.Seconds()
	})
}

// StatSink is a standalone statistics ingest endpoint: an RPC server folding
// pushed query statistics into a core.Aggregator. Producers push either one
// MethodStatRecord call per completion (the legacy contract) or one
// MethodStatDelta call per batch — the wire shapes the ingest benchmark
// race-tests against each other, and the building block for stat pipelines
// that decouple statistics from the query path entirely.
type StatSink struct {
	agg    *core.Aggregator
	server *rpc.Server

	calls   atomic.Uint64 // stat-carrying RPCs served
	queries atomic.Uint64 // completed queries represented
	seqGaps atomic.Uint64
	lastSeq atomic.Uint64
}

// NewStatSink builds a sink folding into agg and registers both handlers.
func NewStatSink(agg *core.Aggregator) *StatSink {
	s := &StatSink{agg: agg, server: rpc.NewServer()}
	rpc.HandleFunc(s.server, MethodStatRecord, func(a StatRecordArgs) (struct{}, error) {
		q := &query.Query{ID: query.ID(a.QueryID), Done: time.Duration(a.LatencyNS)}
		for _, rw := range a.Records {
			q.Records = append(q.Records, rw.toRecord(q.ID))
		}
		s.agg.Ingest(q)
		s.calls.Add(1)
		s.queries.Add(1)
		return struct{}{}, nil
	})
	rpc.HandleFunc(s.server, MethodStatDelta, func(d stats.Delta) (struct{}, error) {
		if err := s.agg.IngestDelta(&d); err != nil {
			return struct{}{}, err
		}
		last := s.lastSeq.Swap(d.Seq)
		if last != 0 && d.Seq != last+1 {
			s.seqGaps.Add(1)
		}
		s.calls.Add(1)
		s.queries.Add(d.Queries)
		return struct{}{}, nil
	})
	return s
}

// Listen starts serving on addr and returns the bound address.
func (s *StatSink) Listen(addr string) (string, error) { return s.server.Listen(addr) }

// Counts returns stat-carrying RPCs served and completed queries they
// represented — the before/after numbers of the ingest benchmark.
func (s *StatSink) Counts() (calls, queries, seqGaps uint64) {
	return s.calls.Load(), s.queries.Load(), s.seqGaps.Load()
}

// Close stops the RPC server.
func (s *StatSink) Close() { s.server.Close() }
