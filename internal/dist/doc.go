// Package dist implements the distributed real-system prototype (§7 of the
// paper): each processing stage runs as its own process hosting a pool of
// service instances, and a Command Center process dispatches queries through
// the stages over RPC, collects the query-carried latency records, and
// drives the control policy — DVFS, instance boosting and withdraw — against
// the remote stages, all under a global power budget it owns.
//
// The transport is internal/rpc (the Thrift stand-in). Stage services use
// the live engine with a single stage each, so the service model is the same
// one the simulator and the in-process live cluster run.
//
// Entry points: NewStageService hosts one stage (cmd/stagesvc wraps it);
// NewCenter connects to the stage addresses and exposes Submit for queries
// plus the core.System view for policies. The runtime is fault-tolerant:
// RPC deadlines and retries bound every call, unhealthy stages are
// quarantined and their power redistributed, and Submit degrades to
// counting errors rather than hanging — ChaosProxy exists to prove those
// paths in tests. See DESIGN.md for the failure model.
//
// Statistics cross the stage→center boundary under one of two contracts
// (DESIGN.md §5j): per-record (the default — latency records ride every
// ProcessReply) or delta-batched (CenterOptions.IngestBatch — stages fold
// completions locally and ship one stats.Delta per batch, negotiated via
// MethodIngest with silent per-record fallback for old peers on either
// side). StatSink is a standalone ingest endpoint serving both contracts;
// `powerbench ingest` races them against each other
// (results/BENCH_ingest.json).
package dist
