package dist

import (
	"testing"

	"powerchief/internal/cmp"
	"powerchief/internal/core"
	"powerchief/internal/telemetry"
)

// TestChaosPlanRollbackKeepsDrawUnderBudget injects an actuation failure in
// the middle of a multi-step plan: the donor deboost (a healthy stage) lands
// over RPC, then the dependent boost hits a hung stage service and times
// out. The executor must roll the donor back, so the center never ends an
// interval with its draw over budget or with power freed for a boost that
// never happened — and the audit log must account for the rollback.
func TestChaosPlanRollbackKeepsDrawUnderBudget(t *testing.T) {
	center, _, proxies := startChaosPipeline(t, chaosOptions())

	budget := center.Budget()
	draw0 := center.Draw()
	if draw0 > budget+1e-9 {
		t.Fatalf("pipeline starts over budget: draw %.2f > %.2f", draw0, budget)
	}

	// Plan against the decision overlay: free power on the first stage, then
	// spend it raising the last stage — the donor/recipient shape every
	// recycling boost produces. The view has zero headroom until the deboost,
	// so the raise is only valid if the deboost lands first.
	pv := core.NewPlanView(center)
	stages := pv.Stages()
	donor := stages[0].Instances()[0]
	target := stages[len(stages)-1].Instances()[0]
	if err := donor.SetLevel(cmp.MidLevel - 2); err != nil {
		t.Fatalf("plan deboost: %v", err)
	}
	if err := target.SetLevel(cmp.MidLevel + 1); err != nil {
		t.Fatalf("plan boost: %v", err)
	}
	plan := pv.Take()

	// Hang the recipient's stage service: its SetLevel RPC reads the request
	// and never answers, so only the call deadline gets the executor out.
	proxies[len(proxies)-1].SetMode(ChaosHang)
	proxies[len(proxies)-1].SeverConns()

	audit := telemetry.NewAuditLog(64)
	res := core.Executor{Audit: audit}.Apply(center, center.Aggregator(), plan)
	if res.Err == nil {
		t.Fatal("apply succeeded despite the hung stage")
	}
	if !res.RolledBack {
		t.Fatal("partial failure did not roll back")
	}

	// The donor's deboost must have been undone over RPC. Note the hung
	// stage may already be quarantined by its failure, reclaiming its watts
	// from Draw — the invariants that must hold regardless are that the draw
	// never exceeds the budget and that no stage is left at a plan-mutated
	// level (power freed for a boost that never happened).
	if center.Draw() > budget+1e-9 {
		t.Errorf("draw %.4f over budget %.4f after rollback", center.Draw(), budget)
	}
	donorAfter := center.Stages()[0].Instances()[0]
	if donorAfter.Level() != cmp.MidLevel {
		t.Errorf("donor %s at level %d after rollback, want %d",
			donorAfter.Name(), int(donorAfter.Level()), int(cmp.MidLevel))
	}

	// The audit trail accounts for the abandoned plan.
	var rolledBack bool
	for _, ev := range audit.Events() {
		if ev.Kind == telemetry.EventPlanRollback {
			rolledBack = true
		}
	}
	if !rolledBack {
		t.Error("no plan-rollback event in the audit log")
	}

	// The recipient never saw the boost either — whether the failure left it
	// merely suspect (still listed) or quarantined, its level is untouched.
	for _, st := range append(center.Stages(), center.Quarantined()...) {
		for _, in := range st.Instances() {
			if in.Level() != cmp.MidLevel {
				t.Errorf("instance %s at level %d after the failed plan, want %d",
					in.Name(), int(in.Level()), int(cmp.MidLevel))
			}
		}
	}
}
