package dist

import (
	"strings"
	"testing"
	"time"

	"powerchief/internal/cmp"
	"powerchief/internal/core"
)

// Failure injection for the distributed prototype: a stage service dying
// mid-run must surface as errors at the Command Center, not hangs, and the
// surviving stages must keep answering.

func TestStageDeathSurfacesToCenter(t *testing.T) {
	center, svcs := startPipeline(t, 100)
	// Kill the QA stage service.
	svcs[1].Close()
	_, err := center.Submit([][]time.Duration{
		{20 * time.Millisecond},
		{20 * time.Millisecond},
	})
	if err == nil {
		t.Fatal("submit through a dead stage succeeded")
	}
	if !strings.Contains(err.Error(), "QA") {
		t.Errorf("error does not name the dead stage: %v", err)
	}
	// Policy adjustment keeps running in degraded mode: the dead stage's
	// refresh failure feeds its health machine (quarantining it once the
	// failure budget is spent) and the policy acts on the survivors.
	if _, err := center.Adjust(core.NewFreqBoost(core.DefaultConfig())); err != nil {
		t.Errorf("degraded Adjust failed: %v", err)
	}
	if _, err := center.Adjust(core.NewFreqBoost(core.DefaultConfig())); err != nil {
		t.Errorf("second degraded Adjust failed: %v", err)
	}
	// After SuspectAfter consecutive failures the stage is quarantined:
	// excluded from the stage view and its watts reclaimed.
	if got := len(center.Quarantined()); got != 1 {
		t.Fatalf("quarantined stages = %d, want 1", got)
	}
	if got := len(center.Stages()); got != 1 {
		t.Errorf("visible stages = %d, want the survivor only", got)
	}
	want := cmp.DefaultModel().Power(cmp.MidLevel)
	if !cmp.ApproxEqual(center.Draw(), want) {
		t.Errorf("Draw with quarantined stage = %v, want %v (survivor only)", center.Draw(), want)
	}
}

func TestCenterCloseIsIdempotentAndStopsCalls(t *testing.T) {
	center, _ := startPipeline(t, 100)
	center.Close()
	center.Close() // second close must not panic
	if _, err := center.Submit([][]time.Duration{
		{time.Millisecond},
		{time.Millisecond},
	}); err == nil {
		t.Error("submit after center close succeeded")
	}
}

func TestRemoteActuationOnDeadStageErrors(t *testing.T) {
	center, svcs := startPipeline(t, 100)
	st := center.Stages()[0]
	in := st.Instances()[0]
	svcs[0].Close()
	if err := in.SetLevel(cmp.MaxLevel); err == nil {
		t.Error("DVFS on a dead stage succeeded")
	}
	if _, err := st.Clone(in); err == nil {
		t.Error("clone on a dead stage succeeded")
	}
}

func TestUnknownInstanceActuationErrors(t *testing.T) {
	center, _ := startPipeline(t, 100)
	st := center.Stages()[0].(*remoteStage)
	ghost := &remoteInstance{stage: st, stats: InstanceStats{Name: "ASR_999", Level: cmp.MidLevel}, level: cmp.MidLevel}
	if err := ghost.SetLevel(cmp.MaxLevel); err == nil {
		t.Error("DVFS on an unknown remote instance succeeded")
	}
	if _, err := st.Clone(ghost); err == nil {
		t.Error("clone of an unknown remote instance succeeded")
	}
	if err := st.Withdraw(ghost, nil); err == nil {
		t.Error("withdraw of an unknown remote instance succeeded")
	}
}

func TestProcessRejectsEmptyWork(t *testing.T) {
	center, _ := startPipeline(t, 100)
	if _, err := center.Submit([][]time.Duration{
		{},
		{time.Millisecond},
	}); err == nil {
		t.Error("empty work row accepted")
	}
}
