package dist

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"powerchief/internal/core"
	"powerchief/internal/telemetry"
)

// The acceptance scenario for the decision audit log: a chaos run that kills
// one stage must leave a timeline showing the quarantine (with the watts it
// reclaimed), the boost decisions the policy funded with them afterwards, and
// the re-admission — all retrievable over the /debug/decisions endpoint.
func TestChaosKillAuditTimelineRetrievableOverHTTP(t *testing.T) {
	audit := telemetry.NewAuditLog(0)
	opts := chaosOptions()
	opts.Audit = audit
	center, _, proxies := startChaosPipeline(t, opts)
	feedQueries(t, center, 5)

	// Kill the middle stage and spend the failure budget.
	proxies[1].Kill()
	work := [][]time.Duration{{time.Millisecond}, {time.Millisecond}, {time.Millisecond}}
	for i := 0; i < opts.SuspectAfter+1 && len(center.Quarantined()) == 0; i++ {
		center.Submit(work)
	}
	if got := len(center.Quarantined()); got != 1 {
		t.Fatalf("quarantined = %d, want 1", got)
	}

	// The policy interval after the kill: a survivor boost funded by the
	// reclaimed watts, recorded through the policy's attached audit log.
	cfg := core.DefaultConfig()
	cfg.BalanceThreshold = 0
	ctl := core.NewFreqBoost(cfg)
	ctl.SetAudit(audit)
	out, err := center.Adjust(ctl)
	if err != nil {
		t.Fatalf("degraded Adjust: %v", err)
	}
	if out.Kind != core.BoostFrequency {
		t.Fatalf("degraded Adjust outcome = %v, want a frequency boost", out.Kind)
	}

	events := audit.Events()
	var quarantine *telemetry.Event
	for i := range events {
		if events[i].Kind == telemetry.EventStageQuarantine {
			quarantine = &events[i]
			break
		}
	}
	if quarantine == nil {
		t.Fatalf("no quarantine event in the timeline: %+v", events)
	}
	if quarantine.Stage != "IMM" {
		t.Errorf("quarantine names stage %q, want IMM", quarantine.Stage)
	}
	if quarantine.ReclaimedWatts <= 0 {
		t.Errorf("quarantine reclaimed %vW, want > 0", quarantine.ReclaimedWatts)
	}
	if quarantine.HeadroomWatts <= 0 {
		t.Errorf("headroom after quarantine = %vW, want > 0", quarantine.HeadroomWatts)
	}
	// The boost decision comes after the quarantine in the timeline and was
	// funded by its reclaimed headroom.
	boosted := false
	for _, e := range events {
		if e.Kind == telemetry.EventBoostFreq && e.Seq > quarantine.Seq {
			boosted = true
			if e.NewLevel <= e.OldLevel {
				t.Errorf("boost event levels %d->%d, want a raise", e.OldLevel, e.NewLevel)
			}
		}
	}
	if !boosted {
		t.Errorf("no boost-freq event after the quarantine: %+v", events)
	}

	// The same timeline is served by /debug/decisions.
	h := telemetry.Handler(nil, audit, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/decisions", nil))
	if rec.Code != 200 {
		t.Fatalf("/debug/decisions status = %d", rec.Code)
	}
	var body struct {
		LastSeq uint64            `json:"last_seq"`
		Events  []telemetry.Event `json:"events"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("/debug/decisions body: %v", err)
	}
	if body.LastSeq != audit.LastSeq() {
		t.Errorf("endpoint last_seq = %d, want %d", body.LastSeq, audit.LastSeq())
	}
	served := map[telemetry.EventKind]bool{}
	for _, e := range body.Events {
		served[e.Kind] = true
	}
	if !served[telemetry.EventStageQuarantine] || !served[telemetry.EventBoostFreq] {
		t.Errorf("endpoint timeline missing quarantine/boost events: %v", served)
	}

	// Heal the stage: the re-admission closes the timeline.
	proxies[1].Restore("")
	readmitted := false
	for i := 0; i < 40 && !readmitted; i++ {
		center.ProbeNow()
		readmitted = len(center.Quarantined()) == 0
		if !readmitted {
			time.Sleep(25 * time.Millisecond)
		}
	}
	if !readmitted {
		t.Fatalf("stage never re-admitted; healths: %+v", center.Healths())
	}
	found := false
	for _, e := range audit.Since(quarantine.Seq) {
		if e.Kind == telemetry.EventStageReadmit && e.Stage == "IMM" {
			found = true
		}
	}
	if !found {
		t.Errorf("no re-admit event after recovery: %+v", audit.Since(quarantine.Seq))
	}
}

// A tracer attached to the center observes completed distributed queries and
// materializes per-instance spans from the query-carried records.
func TestCenterTracerObservesDistributedQueries(t *testing.T) {
	tracer := telemetry.NewTracer(telemetry.TracerOptions{Sample: 1})
	opts := chaosOptions()
	opts.Tracer = tracer
	center, _, _ := startChaosPipeline(t, opts)
	feedQueries(t, center, 4)

	seen, kept, _ := tracer.Stats()
	if seen != 4 || kept != 4 {
		t.Fatalf("tracer saw %d / kept %d, want 4/4", seen, kept)
	}
	traces := tracer.Traces()
	if len(traces) != 4 {
		t.Fatalf("traces = %d, want 4", len(traces))
	}
	for _, tr := range traces {
		if tr.Latency <= 0 {
			t.Errorf("trace %d latency = %v", tr.ID, tr.Latency)
		}
		// One queue + one serve span per pipeline stage.
		if len(tr.Spans) != 6 {
			t.Errorf("trace %d has %d spans, want 6", tr.ID, len(tr.Spans))
		}
		stages := map[string]bool{}
		for _, sp := range tr.Spans {
			if sp.Instance == "" || sp.Stage == "" {
				t.Errorf("trace %d span missing identity: %+v", tr.ID, sp)
			}
			stages[sp.Stage] = true
		}
		for _, want := range []string{"ASR", "IMM", "QA"} {
			if !stages[want] {
				t.Errorf("trace %d has no span for stage %s", tr.ID, want)
			}
		}
	}
}
