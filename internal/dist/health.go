package dist

import (
	"fmt"
	"sort"
	"time"

	"powerchief/internal/cmp"
	"powerchief/internal/fault"
	"powerchief/internal/rpc"
	"powerchief/internal/telemetry"
)

// ErrStageDown marks a submit or actuation rejected because the target stage
// is quarantined (down or still recovering). Callers fail fast instead of
// waiting out an RPC deadline against a peer the center already knows is
// unreachable. Test with errors.Is. The value lives in the fault leaf
// package so the control plane can classify it without importing dist.
var ErrStageDown = fault.ErrStageDown

// ErrNoHealthyStages marks a control interval that could not run because
// every stage of the pipeline is quarantined.
var ErrNoHealthyStages = fault.ErrNoHealthyStages

// HealthState is one stage connection's position in the fault-handling state
// machine:
//
//	Healthy ──failure──► Suspect ──SuspectAfter consecutive failures──► Down
//	   ▲                    │ success                                     │
//	   └────────────────────┘                             probe success   │
//	   ▲                                                                  ▼
//	   └──────────── re-admission (budget restored) ──────── Recovering ◄─┘
//
// Down and Recovering stages are *quarantined*: excluded from Stages() and
// Draw(), their watts reclaimed into Headroom() for the survivors.
//
// The state vocabulary is shared with the fleet coordinator (which runs the
// same machine per node) via the fault leaf package; HealthState is an alias
// so existing dist callers keep compiling while both layers compare against
// one set of values.
type HealthState = fault.Health

const (
	// Healthy: calls are succeeding.
	Healthy = fault.Healthy
	// Suspect: at least one recent call failed; still served and counted,
	// probed in the background.
	Suspect = fault.Suspect
	// Down: quarantined after repeated failures or a broken connection.
	Down = fault.Down
	// Recovering: a probe succeeded; the stage is being re-admitted (budget
	// share restored) but is still quarantined until that completes.
	Recovering = fault.Recovering
)

// CenterOptions tunes the center's fault tolerance.
type CenterOptions struct {
	// CallTimeout bounds control-plane calls: stats refresh, DVFS, clone,
	// withdraw, probes (default 3s).
	CallTimeout time.Duration
	// SubmitTimeout bounds each per-stage process call of a Submit; a stage
	// that holds a query longer counts as failed (default 60s).
	SubmitTimeout time.Duration
	// Retry governs idempotent calls (stage.stats, stage.info).
	Retry rpc.RetryPolicy
	// ProbeInterval is the cadence of the background health probe. Zero
	// defaults to 500ms; negative disables the prober (tests drive probes
	// explicitly via ProbeNow).
	ProbeInterval time.Duration
	// SuspectAfter is how many consecutive failures demote a stage from
	// suspect to down (default 2; the first failure always moves healthy to
	// suspect).
	SuspectAfter int
	// DegradedSubmit makes Submit skip quarantined stages — serving partial
	// pipelines from the survivors — instead of failing fast with
	// ErrStageDown.
	DegradedSubmit bool

	// IngestBatch > 0 negotiates delta-batched statistics ingest with every
	// stage service (MethodIngest): stages fold completions locally and ship
	// one stats.Delta per IngestBatch completed queries or IngestInterval,
	// whichever comes first, instead of records on every ProcessReply.
	// Stages that answer "unknown method" (old binaries) silently keep the
	// legacy per-record contract — a mixed deployment works. Zero keeps
	// per-record ingest everywhere.
	IngestBatch int
	// IngestInterval is the batched-ingest flush interval (zero applies
	// stats.DefaultDeltaInterval). Together with the control-loop stats
	// refresh — which drains pending batches — it bounds how stale the
	// planner's Eq. 1/2/3 inputs can be.
	IngestInterval time.Duration

	// Audit, when set, receives a structured event for every health
	// transition — suspect, quarantine (with the watts reclaimed into the
	// survivors' headroom), recovering, re-admission — alongside the policy
	// decisions recorded through core.AuditSetter.
	Audit *telemetry.AuditLog
	// Tracer, when set, samples completed queries into span trees built
	// from the RPC-carried joint-design records.
	Tracer *telemetry.Tracer
}

func (o CenterOptions) withDefaults() CenterOptions {
	if o.CallTimeout <= 0 {
		o.CallTimeout = 3 * time.Second
	}
	if o.SubmitTimeout <= 0 {
		o.SubmitTimeout = 60 * time.Second
	}
	if o.ProbeInterval == 0 {
		o.ProbeInterval = 500 * time.Millisecond
	}
	if o.SuspectAfter <= 0 {
		o.SuspectAfter = 2
	}
	return o
}

// Health returns the stage's current health state.
func (st *remoteStage) Health() HealthState {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.health
}

// quarantined reports whether the stage is excluded from the system view.
func (st *remoteStage) quarantined() bool {
	h := st.Health()
	return h == Down || h == Recovering
}

// noteSuccess records a successful call: a healthy or suspect stage returns
// to healthy. Down/Recovering transitions belong to the prober, which owns
// re-admission — a stray late success must not skip the budget accounting,
// and the error that quarantined the stage stays visible until it is
// actually re-admitted.
func (st *remoteStage) noteSuccess() {
	st.mu.Lock()
	old := st.health
	st.fails = 0
	if st.health == Healthy || st.health == Suspect {
		st.health = Healthy
		st.lastErr = nil
	}
	cur := st.health
	st.mu.Unlock()
	st.auditTransition(old, cur, nil)
}

// noteFailure records a failed call and walks the state machine: first
// failure makes a healthy stage suspect; SuspectAfter consecutive failures —
// or a broken connection — quarantine it.
func (st *remoteStage) noteFailure(err error) {
	broken := st.client.Broken()
	st.mu.Lock()
	st.fails++
	st.lastErr = err
	old := st.health
	switch st.health {
	case Healthy:
		st.health = Suspect
		if broken || st.fails >= st.center.opts.SuspectAfter {
			st.health = Down
		}
	case Suspect, Recovering:
		if broken || st.fails >= st.center.opts.SuspectAfter {
			st.health = Down
		}
	}
	cur := st.health
	st.mu.Unlock()
	st.auditTransition(old, cur, err)
}

// setHealth forces a state (prober transitions).
func (st *remoteStage) setHealth(h HealthState) {
	st.mu.Lock()
	old := st.health
	st.health = h
	if h == Healthy {
		st.fails = 0
		st.lastErr = nil
	}
	st.mu.Unlock()
	st.auditTransition(old, h, nil)
}

// auditTransition records one health-state change: quarantine/re-admission
// counters first (kept regardless of audit enablement — they feed /metrics),
// then the audit event. Called with st.mu released: the quarantine event
// snapshots the stage's draw and the survivors' headroom, both of which
// re-acquire locks.
func (st *remoteStage) auditTransition(old, cur HealthState, err error) {
	if old == cur {
		return
	}
	switch cur {
	case Down:
		st.center.quarantines.Add(1)
	case Healthy:
		if old == Recovering {
			st.center.readmissions.Add(1)
		}
	}
	a := st.center.opts.Audit
	if !a.Enabled() {
		return
	}
	e := telemetry.Event{
		Time:   st.center.Now(),
		Stage:  st.name,
		Detail: old.String() + "->" + cur.String(),
	}
	if err != nil {
		e.Err = err.Error()
	}
	switch cur {
	case Suspect:
		e.Kind = telemetry.EventStageSuspect
	case Down:
		// The stage leaves the system view here: its watts stop counting in
		// Draw, which is exactly the headroom handed to the survivors.
		e.Kind = telemetry.EventStageQuarantine
		e.ReclaimedWatts = float64(st.draw(st.center.model))
		e.HeadroomWatts = float64(st.center.Headroom())
	case Recovering:
		e.Kind = telemetry.EventStageRecovering
	case Healthy:
		// Either re-admission (recovering->healthy, budget restored) or a
		// suspect stage answering again; Detail distinguishes them.
		e.Kind = telemetry.EventStageReadmit
		e.HeadroomWatts = float64(st.center.Headroom())
	}
	a.Record(e)
}

// LastError returns the error that drove the stage out of healthy, if any.
func (st *remoteStage) LastError() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.lastErr
}

// draw sums the power of the stage's snapshot instances.
func (st *remoteStage) draw(model cmp.PowerModel) cmp.Watts {
	st.mu.Lock()
	defer st.mu.Unlock()
	var sum cmp.Watts
	for _, in := range st.snapshot {
		sum += model.Power(in.level)
	}
	return sum
}

// --- background prober ---

func (c *Center) probeLoop(interval time.Duration) {
	defer c.probeWG.Done()
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-c.probeStop:
			return
		case <-ticker.C:
			c.ProbeNow()
		}
	}
}

// ProbeNow runs one probe pass over every non-healthy stage: suspect stages
// are re-checked (success clears them, failure may quarantine them); down
// stages are redialed and, when reachable again, re-admitted. Normally
// driven by the background prober; exported so tests and callers can force a
// pass.
func (c *Center) ProbeNow() {
	c.mu.Lock()
	stages := make([]*remoteStage, len(c.stages))
	copy(stages, c.stages)
	c.mu.Unlock()
	for _, st := range stages {
		switch st.Health() {
		case Suspect:
			if err := st.refresh(); err != nil {
				st.noteFailure(err)
			} else {
				st.noteSuccess()
			}
		case Down:
			c.tryReadmit(st)
		}
	}
}

// tryReadmit probes a down stage and, on success, re-admits it: its budget
// share is restored — lowering its own instances, then deboosting survivors
// if the reclaimed watts have already been spent — before it is marked
// healthy, so the global budget is never exceeded.
func (c *Center) tryReadmit(st *remoteStage) {
	if st.client.Broken() {
		if err := st.client.Redial(); err != nil {
			return // still unreachable; stays down
		}
	}
	var reply StatsReply
	if err := st.client.CallDeadline(MethodStats, nil, &reply, c.opts.CallTimeout); err != nil {
		return // reachable check failed; stays down
	}
	st.setHealth(Recovering)
	if err := c.readmit(st); err != nil {
		st.setHealth(Down) // retried at the next probe
	}
}

// readmit restores a recovering stage's budget share and marks it healthy.
// Serialized with Adjust via adjustMu so the budget arithmetic cannot race a
// control interval.
func (c *Center) readmit(st *remoteStage) error {
	c.adjustMu.Lock()
	defer c.adjustMu.Unlock()

	if err := st.refresh(); err != nil {
		return fmt.Errorf("dist: readmit refresh: %w", err)
	}

	// Re-offer delta-batched ingest: a restarted stage process comes up
	// disarmed and would otherwise stay per-record for the rest of the run.
	// A failed offer never blocks re-admission — the per-record fallback
	// keeps its statistics flowing, and the next readmit retries.
	if c.opts.IngestBatch > 0 {
		if err := c.negotiateIngest(st); err != nil {
			st.mu.Lock()
			st.deltaIngest = false
			st.mu.Unlock()
		}
	}

	const eps = 1e-9
	// The stage is still quarantined, so Headroom() excludes it: its current
	// draw must fit in what is left of the budget before it is re-counted.
	need := st.draw(c.model)

	// First shed the returning stage's own levels — its old DVFS state may
	// reflect boosts whose power the survivors have since absorbed.
	for need > c.Headroom()+eps {
		in := st.highestInstance()
		if in == nil || in.Level() == 0 {
			break
		}
		if err := st.client.CallDeadline(MethodSetLevel,
			SetLevelArgs{Instance: in.Name(), Level: in.Level() - 1}, nil, c.opts.CallTimeout); err != nil {
			return fmt.Errorf("dist: readmit lowering %s: %w", in.Name(), err)
		}
		in.mu.Lock()
		in.level--
		in.mu.Unlock()
		need = st.draw(c.model)
	}

	// Still over: the survivors were boosted with the reclaimed watts; take
	// them back, fastest path first (highest levels donate the most).
	for need > c.Headroom()+eps {
		donor := c.highestSurvivorInstance(st)
		if donor == nil {
			return fmt.Errorf("dist: readmit of %s needs %.2fW but only %.2fW can be freed",
				st.name, float64(need), float64(c.Headroom()))
		}
		// Lowering frequency never exceeds the budget.
		if err := donor.SetLevel(donor.Level() - 1); err != nil {
			return fmt.Errorf("dist: readmit deboosting %s: %w", donor.Name(), err)
		}
	}

	st.setHealth(Healthy)
	return nil
}

// highestInstance returns the snapshot instance at the highest level, or nil.
func (st *remoteStage) highestInstance() *remoteInstance {
	st.mu.Lock()
	defer st.mu.Unlock()
	var best *remoteInstance
	for _, in := range st.snapshot {
		if best == nil || in.level > best.level {
			best = in
		}
	}
	return best
}

// highestSurvivorInstance returns the healthy-stage instance (excluding
// exclude) with the highest level above the floor, or nil when nothing can
// donate.
func (c *Center) highestSurvivorInstance(exclude *remoteStage) *remoteInstance {
	c.mu.Lock()
	stages := make([]*remoteStage, len(c.stages))
	copy(stages, c.stages)
	c.mu.Unlock()
	var donors []*remoteInstance
	for _, st := range stages {
		if st == exclude || st.quarantined() {
			continue
		}
		st.mu.Lock()
		donors = append(donors, st.snapshot...)
		st.mu.Unlock()
	}
	sort.Slice(donors, func(i, j int) bool { return donors[i].Level() > donors[j].Level() })
	for _, in := range donors {
		if in.Level() > 0 {
			return in
		}
	}
	return nil
}

// StageHealth reports one stage's health state.
type StageHealth struct {
	Name  string
	State HealthState
	Err   error // last error observed, nil when healthy
}

// Healths returns the health of every stage in pipeline order, quarantined
// or not.
func (c *Center) Healths() []StageHealth {
	c.mu.Lock()
	stages := make([]*remoteStage, len(c.stages))
	copy(stages, c.stages)
	c.mu.Unlock()
	out := make([]StageHealth, len(stages))
	for i, st := range stages {
		out[i] = StageHealth{Name: st.name, State: st.Health(), Err: st.LastError()}
	}
	return out
}
