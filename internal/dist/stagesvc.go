package dist

import (
	"fmt"
	"sync"
	"time"

	"powerchief/internal/cmp"
	"powerchief/internal/core"
	"powerchief/internal/live"
	"powerchief/internal/query"
	"powerchief/internal/rpc"
	"powerchief/internal/stage"
	"powerchief/internal/stats"
)

// StageOptions configures one stage service process.
type StageOptions struct {
	// Name is the stage name, e.g. "QA".
	Name string
	// Kind is the stage organization.
	Kind stage.Kind
	// MemBound parameterizes the service's frequency profile.
	MemBound float64
	// Instances is the initial worker count.
	Instances int
	// Level is the initial frequency level.
	Level cmp.Level
	// Cores bounds how many instances the service can host (default 16).
	Cores int
	// TimeScale compresses simulated work (default 1).
	TimeScale float64

	// IngestMaxBatch and IngestMaxInterval, when positive, clamp what a
	// center may negotiate via MethodIngest — the operator's local bound on
	// pending-delta memory and statistic staleness (cmd/stagesvc's
	// -ingest.batch / -ingest.interval flags). Zero accepts whatever the
	// center asks for.
	IngestMaxBatch    int
	IngestMaxInterval time.Duration
}

// StageService hosts one stage's instance pool behind the RPC surface. The
// Command Center owns the global power budget; the service itself runs its
// local chip unconstrained (budget = all cores at maximum) and relies on the
// center to authorize every raise.
type StageService struct {
	opts    StageOptions
	cluster *live.Cluster
	server  *rpc.Server

	mu      sync.Mutex
	nextQID uint64
	waiters map[*query.Query]func()

	// ingest holds the delta accumulator once a center negotiated batched
	// ingest via MethodIngest; nil means the legacy per-record contract
	// (records ride every ProcessReply). Swapped atomically under mu.
	ingest *stats.DeltaAccumulator
}

// NewStageService builds the pool and registers the RPC handlers.
func NewStageService(opts StageOptions) (*StageService, error) {
	if opts.Name == "" {
		return nil, fmt.Errorf("dist: stage service needs a name")
	}
	if opts.Instances < 1 {
		return nil, fmt.Errorf("dist: stage service needs at least one instance")
	}
	if opts.Cores == 0 {
		opts.Cores = 16
	}
	if opts.TimeScale == 0 {
		opts.TimeScale = 1
	}
	model := cmp.DefaultModel()
	cluster, err := live.NewCluster(live.Options{
		Cores:     opts.Cores,
		Model:     model,
		Budget:    cmp.Watts(opts.Cores) * model.MaxPower(),
		TimeScale: opts.TimeScale,
	}, []live.StageSpec{{
		Name:      opts.Name,
		Kind:      opts.Kind,
		Profile:   cmp.NewRooflineProfile(opts.MemBound),
		Instances: opts.Instances,
		Level:     opts.Level,
	}})
	if err != nil {
		return nil, err
	}
	s := &StageService{
		opts:    opts,
		cluster: cluster,
		server:  rpc.NewServer(),
		waiters: make(map[*query.Query]func()),
	}
	cluster.OnComplete(func(q *query.Query) {
		s.mu.Lock()
		fn := s.waiters[q]
		delete(s.waiters, q)
		s.mu.Unlock()
		if fn != nil {
			fn()
		}
	})
	s.register()
	return s, nil
}

func (s *StageService) stageControl() core.StageControl {
	return s.cluster.Stages()[0]
}

func (s *StageService) findInstance(name string) (core.Instance, error) {
	for _, in := range s.stageControl().Instances() {
		if in.Name() == name {
			return in, nil
		}
	}
	return nil, fmt.Errorf("dist: unknown instance %q", name)
}

func (s *StageService) register() {
	rpc.HandleFunc(s.server, MethodProcess, func(a ProcessArgs) (ProcessReply, error) {
		if len(a.Work) == 0 {
			return ProcessReply{}, fmt.Errorf("dist: query %d carries no work", a.QueryID)
		}
		q := query.New(0, s.cluster.Now(), [][]time.Duration{a.Work})
		done := make(chan struct{})
		s.mu.Lock()
		s.nextQID++
		q.ID = query.ID(s.nextQID)
		s.waiters[q] = func() { close(done) }
		s.mu.Unlock()
		if err := s.cluster.Submit(q); err != nil {
			s.mu.Lock()
			delete(s.waiters, q)
			s.mu.Unlock()
			return ProcessReply{}, err
		}
		<-done
		s.mu.Lock()
		acc := s.ingest
		s.mu.Unlock()
		if acc != nil {
			// Delta-batched ingest: fold the records locally instead of
			// shipping them, and piggyback the batch when this completion
			// tripped a flush. The center measures end-to-end latency
			// itself, so only per-instance queuing/serving digests travel.
			now := s.cluster.Now()
			for i := range q.Records {
				rec := &q.Records[i]
				acc.FoldRecord(now, rec.Instance, rec.Stage, rec.Queuing(), rec.Serving())
			}
			acc.FoldCompletion(now)
			return ProcessReply{Delta: acc.FlushIfDue(now)}, nil
		}
		reply := ProcessReply{Records: make([]RecordWire, 0, len(q.Records))}
		for _, rec := range q.Records {
			reply.Records = append(reply.Records, fromRecord(rec))
		}
		return reply, nil
	})

	rpc.HandleFunc(s.server, MethodIngest, func(a IngestArgs) (IngestReply, error) {
		if a.Version > stats.DeltaVersion {
			return IngestReply{Version: stats.DeltaVersion}, fmt.Errorf(
				"dist: ingest version %d newer than supported %d", a.Version, stats.DeltaVersion)
		}
		s.mu.Lock()
		if a.Batch > 0 {
			batch := a.Batch
			if s.opts.IngestMaxBatch > 0 && batch > s.opts.IngestMaxBatch {
				batch = s.opts.IngestMaxBatch
			}
			interval := time.Duration(a.IntervalNS)
			if interval <= 0 {
				interval = stats.DefaultDeltaInterval
			}
			if s.opts.IngestMaxInterval > 0 && interval > s.opts.IngestMaxInterval {
				interval = s.opts.IngestMaxInterval
			}
			s.ingest = stats.NewDeltaAccumulator(batch, interval)
		} else {
			s.ingest = nil // back to the legacy per-record contract
		}
		s.mu.Unlock()
		return IngestReply{Accepted: a.Batch > 0, Version: stats.DeltaVersion}, nil
	})

	rpc.HandleFunc(s.server, MethodStats, func(struct{}) (StatsReply, error) {
		var out StatsReply
		for _, in := range s.stageControl().Instances() {
			out.Instances = append(out.Instances, InstanceStats{
				Name:        in.Name(),
				QueueLen:    in.QueueLen(),
				Level:       in.Level(),
				Utilization: in.Utilization(),
			})
		}
		s.mu.Lock()
		acc := s.ingest
		s.mu.Unlock()
		if acc != nil {
			// Staleness backstop: every control-interval refresh drains the
			// pending batch, so a trickle of traffic cannot hold statistics
			// back past the control interval.
			out.Delta = acc.Flush(s.cluster.Now())
		}
		return out, nil
	})

	rpc.HandleFunc(s.server, MethodSetLevel, func(a SetLevelArgs) (struct{}, error) {
		in, err := s.findInstance(a.Instance)
		if err != nil {
			return struct{}{}, err
		}
		return struct{}{}, in.SetLevel(a.Level)
	})

	rpc.HandleFunc(s.server, MethodClone, func(a CloneArgs) (CloneReply, error) {
		in, err := s.findInstance(a.Instance)
		if err != nil {
			return CloneReply{}, err
		}
		clone, err := s.stageControl().Clone(in)
		if err != nil {
			return CloneReply{}, err
		}
		return CloneReply{Name: clone.Name(), Level: clone.Level()}, nil
	})

	rpc.HandleFunc(s.server, MethodWithdraw, func(a WithdrawArgs) (struct{}, error) {
		in, err := s.findInstance(a.Instance)
		if err != nil {
			return struct{}{}, err
		}
		var target core.Instance
		if a.Target != "" {
			if target, err = s.findInstance(a.Target); err != nil {
				return struct{}{}, err
			}
		}
		return struct{}{}, s.stageControl().Withdraw(in, target)
	})

	rpc.HandleFunc(s.server, MethodInfo, func(struct{}) (InfoReply, error) {
		return InfoReply{
			Name:     s.opts.Name,
			CanScale: s.opts.Kind == stage.Pipeline,
			MemBound: s.opts.MemBound,
		}, nil
	})
}

// Cluster exposes the service's underlying live engine, so hosts can hang
// telemetry off it — metric gauges over Draw/Counts, a local query tracer
// via OnComplete.
func (s *StageService) Cluster() *live.Cluster { return s.cluster }

// IngestStats reports the delta-ingest state for telemetry: whether batched
// ingest is negotiated, the lifetime flush count, and the pending unflushed
// query/record counts.
func (s *StageService) IngestStats() (enabled bool, flushes, pendingQueries, pendingRecords uint64) {
	s.mu.Lock()
	acc := s.ingest
	s.mu.Unlock()
	if acc == nil {
		return false, 0, 0, 0
	}
	q, r := acc.Pending()
	return true, acc.Flushes(), q, r
}

// Listen starts serving on addr and returns the bound address.
func (s *StageService) Listen(addr string) (string, error) {
	return s.server.Listen(addr)
}

// Close stops the RPC server and the worker pool.
func (s *StageService) Close() {
	s.server.Close()
	s.cluster.Close()
}
