package dist

import (
	"time"

	"powerchief/internal/cmp"
	"powerchief/internal/query"
)

// Method names of the stage-service RPC surface.
const (
	MethodProcess  = "stage.process"
	MethodStats    = "stage.stats"
	MethodSetLevel = "stage.setlevel"
	MethodClone    = "stage.clone"
	MethodWithdraw = "stage.withdraw"
	MethodInfo     = "stage.info"
)

// ProcessArgs carries one query into a stage service. Work holds the
// branch demands for this stage (one entry for pipeline stages).
type ProcessArgs struct {
	QueryID uint64          `json:"query_id"`
	Work    []time.Duration `json:"work"`
}

// RecordWire is a query.Record in wire form. Level and Boosted carry the
// serving instance's DVFS state for the telemetry tracer; they are tagged
// omitempty so frames to old peers stay byte-identical at the zero value,
// and old peers' frames without them decode to the zero value here.
type RecordWire struct {
	Instance   string        `json:"instance"`
	Stage      string        `json:"stage"`
	QueueEnter time.Duration `json:"queue_enter"`
	ServeStart time.Duration `json:"serve_start"`
	ServeEnd   time.Duration `json:"serve_end"`
	Level      int           `json:"level,omitempty"`
	Boosted    bool          `json:"boosted,omitempty"`
}

// ProcessReply returns the latency records the stage appended — the joint
// design's query-carried statistics.
type ProcessReply struct {
	Records []RecordWire `json:"records"`
}

// InstanceStats is one instance's realtime and configuration state.
type InstanceStats struct {
	Name        string    `json:"name"`
	QueueLen    int       `json:"queue_len"`
	Level       cmp.Level `json:"level"`
	Utilization float64   `json:"utilization"`
}

// StatsReply is the stage's instance snapshot.
type StatsReply struct {
	Instances []InstanceStats `json:"instances"`
}

// SetLevelArgs requests a DVFS transition on one instance.
type SetLevelArgs struct {
	Instance string    `json:"instance"`
	Level    cmp.Level `json:"level"`
}

// CloneArgs requests instance boosting of the named bottleneck.
type CloneArgs struct {
	Instance string `json:"instance"`
}

// CloneReply names the launched clone.
type CloneReply struct {
	Name  string    `json:"name"`
	Level cmp.Level `json:"level"`
}

// WithdrawArgs requests draining the named instance, redirecting its load to
// Target when given.
type WithdrawArgs struct {
	Instance string `json:"instance"`
	Target   string `json:"target,omitempty"`
}

// InfoReply describes the stage.
type InfoReply struct {
	Name     string  `json:"name"`
	CanScale bool    `json:"can_scale"`
	MemBound float64 `json:"mem_bound"`
}

// toRecord converts wire form back to the query record.
func (r RecordWire) toRecord(id query.ID) query.Record {
	return query.Record{
		Query:      id,
		Stage:      r.Stage,
		Instance:   r.Instance,
		QueueEnter: r.QueueEnter,
		ServeStart: r.ServeStart,
		ServeEnd:   r.ServeEnd,
		Level:      r.Level,
		Boosted:    r.Boosted,
	}
}

// fromRecord converts a query record to wire form.
func fromRecord(rec query.Record) RecordWire {
	return RecordWire{
		Instance:   rec.Instance,
		Stage:      rec.Stage,
		QueueEnter: rec.QueueEnter,
		ServeStart: rec.ServeStart,
		ServeEnd:   rec.ServeEnd,
		Level:      rec.Level,
		Boosted:    rec.Boosted,
	}
}
