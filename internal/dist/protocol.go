package dist

import (
	"time"

	"powerchief/internal/cmp"
	"powerchief/internal/query"
	"powerchief/internal/stats"
)

// Method names of the stage-service RPC surface.
const (
	MethodProcess  = "stage.process"
	MethodStats    = "stage.stats"
	MethodSetLevel = "stage.setlevel"
	MethodClone    = "stage.clone"
	MethodWithdraw = "stage.withdraw"
	MethodInfo     = "stage.info"
	// MethodIngest configures delta-batched statistics ingest on a stage
	// service (see IngestArgs). Old services answer "unknown method", which
	// the center treats as the legacy per-record contract — the negotiation
	// that lets one deployment mix old and new processes.
	MethodIngest = "stage.ingest"
)

// Method names of the statistics-sink RPC surface (see StatSink): the
// standalone ingest endpoint stat producers push to, one call per completion
// (legacy) or one call per delta batch.
const (
	MethodStatRecord = "stats.record"
	MethodStatDelta  = "stats.delta"
)

// IngestArgs asks a stage service to switch from per-record query-carried
// statistics to delta-batched ingest: fold completions locally, flush a
// merged stats.Delta every Batch completed queries or IntervalNS of local
// time, whichever comes first. Version names the delta frame format the
// center understands; a service refuses versions newer than its own, so a
// mixed deployment falls back to per-record rather than misfolding.
type IngestArgs struct {
	Version    int   `json:"version"`
	Batch      int   `json:"batch"`
	IntervalNS int64 `json:"interval_ns"`
}

// IngestReply acknowledges the ingest configuration.
type IngestReply struct {
	Accepted bool `json:"accepted"`
	Version  int  `json:"version"`
}

// StatRecordArgs is the legacy one-call-per-completion stat push: the
// query's end-to-end latency plus its per-instance records.
type StatRecordArgs struct {
	QueryID   uint64       `json:"query_id"`
	LatencyNS int64        `json:"latency_ns"`
	Records   []RecordWire `json:"records"`
}

// ProcessArgs carries one query into a stage service. Work holds the
// branch demands for this stage (one entry for pipeline stages).
type ProcessArgs struct {
	QueryID uint64          `json:"query_id"`
	Work    []time.Duration `json:"work"`
}

// RecordWire is a query.Record in wire form. Level and Boosted carry the
// serving instance's DVFS state for the telemetry tracer; they are tagged
// omitempty so frames to old peers stay byte-identical at the zero value,
// and old peers' frames without them decode to the zero value here.
type RecordWire struct {
	Instance   string        `json:"instance"`
	Stage      string        `json:"stage"`
	QueueEnter time.Duration `json:"queue_enter"`
	ServeStart time.Duration `json:"serve_start"`
	ServeEnd   time.Duration `json:"serve_end"`
	Level      int           `json:"level,omitempty"`
	Boosted    bool          `json:"boosted,omitempty"`
}

// ProcessReply returns the latency records the stage appended — the joint
// design's query-carried statistics. Under delta-batched ingest Records is
// empty (the statistics were folded locally) and Delta carries the batched
// summary when this completion tripped a flush. Both fields are omitempty:
// frames between old and new peers stay byte-identical when the feature is
// off, the same back-compat discipline as RecordWire.
type ProcessReply struct {
	Records []RecordWire `json:"records,omitempty"`
	Delta   *stats.Delta `json:"delta,omitempty"`
}

// InstanceStats is one instance's realtime and configuration state.
type InstanceStats struct {
	Name        string    `json:"name"`
	QueueLen    int       `json:"queue_len"`
	Level       cmp.Level `json:"level"`
	Utilization float64   `json:"utilization"`
}

// StatsReply is the stage's instance snapshot. Under delta-batched ingest
// Delta carries whatever the accumulator had pending at the refresh — the
// staleness backstop: every control-interval stats pull drains the batch, so
// the planner's inputs are never staler than max(flush interval, control
// interval) even at trickle traffic.
type StatsReply struct {
	Instances []InstanceStats `json:"instances"`
	Delta     *stats.Delta    `json:"delta,omitempty"`
}

// SetLevelArgs requests a DVFS transition on one instance.
type SetLevelArgs struct {
	Instance string    `json:"instance"`
	Level    cmp.Level `json:"level"`
}

// CloneArgs requests instance boosting of the named bottleneck.
type CloneArgs struct {
	Instance string `json:"instance"`
}

// CloneReply names the launched clone.
type CloneReply struct {
	Name  string    `json:"name"`
	Level cmp.Level `json:"level"`
}

// WithdrawArgs requests draining the named instance, redirecting its load to
// Target when given.
type WithdrawArgs struct {
	Instance string `json:"instance"`
	Target   string `json:"target,omitempty"`
}

// InfoReply describes the stage.
type InfoReply struct {
	Name     string  `json:"name"`
	CanScale bool    `json:"can_scale"`
	MemBound float64 `json:"mem_bound"`
}

// toRecord converts wire form back to the query record.
func (r RecordWire) toRecord(id query.ID) query.Record {
	return query.Record{
		Query:      id,
		Stage:      r.Stage,
		Instance:   r.Instance,
		QueueEnter: r.QueueEnter,
		ServeStart: r.ServeStart,
		ServeEnd:   r.ServeEnd,
		Level:      r.Level,
		Boosted:    r.Boosted,
	}
}

// fromRecord converts a query record to wire form.
func fromRecord(rec query.Record) RecordWire {
	return RecordWire{
		Instance:   rec.Instance,
		Stage:      rec.Stage,
		QueueEnter: rec.QueueEnter,
		ServeStart: rec.ServeStart,
		ServeEnd:   rec.ServeEnd,
		Level:      rec.Level,
		Boosted:    rec.Boosted,
	}
}
