package dist

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"powerchief/internal/cmp"
	"powerchief/internal/core"
	"powerchief/internal/query"
	"powerchief/internal/rpc"
	"powerchief/internal/telemetry"
)

// Center is the distributed Command Center: it owns the application's power
// budget, dispatches queries through the remote stage services in order,
// folds the returned query-carried records into the aggregator, and drives a
// control policy against a remote view of the deployment.
//
// The center is fault tolerant: every RPC carries a deadline, call outcomes
// drive a per-stage health state machine (see HealthState), unreachable
// stages are quarantined — their watts reclaimed into Headroom for the
// survivors — and a background prober re-admits them once they answer again.
type Center struct {
	budget cmp.Watts
	model  cmp.PowerModel
	agg    *core.Aggregator
	start  time.Time
	opts   CenterOptions

	// adjustMu serializes control-plane mutations (Adjust intervals and
	// stage re-admission) so budget arithmetic never races itself.
	adjustMu sync.Mutex

	mu      sync.Mutex
	stages  []*remoteStage
	nextQID uint64

	submitted uint64
	completed uint64
	latency   []time.Duration

	probeStop chan struct{}
	probeWG   sync.WaitGroup
	closed    bool

	// Health-transition counters, maintained by the state machine whether or
	// not auditing is enabled; exported via RegisterMetrics.
	quarantines  atomic.Uint64
	readmissions atomic.Uint64

	// ingest tracks delta-batched statistics folds (see ingest.go).
	ingest ingestState
}

// NewCenter connects to the stage services at addrs (pipeline order) with
// default fault-tolerance options.
func NewCenter(budget cmp.Watts, window time.Duration, addrs []string) (*Center, error) {
	return NewCenterOptions(budget, window, addrs, CenterOptions{})
}

// NewCenterOptions connects to the stage services at addrs (pipeline order)
// and interrogates each for its stage description.
func NewCenterOptions(budget cmp.Watts, window time.Duration, addrs []string, opts CenterOptions) (*Center, error) {
	if budget <= 0 {
		return nil, fmt.Errorf("dist: center needs a positive power budget")
	}
	if len(addrs) == 0 {
		return nil, fmt.Errorf("dist: center needs at least one stage address")
	}
	opts = opts.withDefaults()
	c := &Center{
		budget:    budget,
		model:     cmp.DefaultModel(),
		start:     time.Now(),
		opts:      opts,
		probeStop: make(chan struct{}),
	}
	// The center runs against wall clocks for unbounded stretches, so the
	// aggregator uses constant-memory bucketed windows: per-record ingest is
	// O(1) and memory does not grow with query rate.
	c.agg = core.NewAggregatorOptions(window, c.Now, core.AggregatorOptions{
		Window: core.WindowBucketed,
	})
	for _, addr := range addrs {
		client, err := rpc.DialOptions(addr, rpc.ClientOptions{
			CallTimeout: opts.CallTimeout,
			Retry:       opts.Retry,
		})
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("dist: dialing stage %s: %w", addr, err)
		}
		var info InfoReply
		if err := client.CallRetry(MethodInfo, nil, &info); err != nil {
			client.Close()
			c.Close()
			return nil, fmt.Errorf("dist: stage %s info: %w", addr, err)
		}
		st := &remoteStage{
			center:   c,
			client:   client,
			name:     info.Name,
			canScale: info.CanScale,
			profile:  cmp.NewRooflineProfile(info.MemBound),
		}
		if err := st.refresh(); err != nil {
			client.Close()
			c.Close()
			return nil, fmt.Errorf("dist: stage %s stats: %w", addr, err)
		}
		if opts.IngestBatch > 0 {
			if err := c.negotiateIngest(st); err != nil {
				client.Close()
				c.Close()
				return nil, fmt.Errorf("dist: stage %s ingest negotiation: %w", addr, err)
			}
		}
		c.stages = append(c.stages, st)
	}
	if opts.ProbeInterval > 0 {
		c.probeWG.Add(1)
		go c.probeLoop(opts.ProbeInterval)
	}
	return c, nil
}

// Now returns time since the center started — the reference clock for
// windowed statistics. Per the joint design, latency statistics themselves
// are measured locally at each stage, so no cross-machine clock agreement is
// needed.
func (c *Center) Now() time.Duration { return time.Since(c.start) }

// Aggregator exposes the center's statistics for inspection.
func (c *Center) Aggregator() *core.Aggregator { return c.agg }

// beginQuery performs the per-query admission bookkeeping atomically: shape
// validation, query-ID assignment and the submitted count all happen under
// one critical section, together with the stage snapshot the query will be
// routed through. The returned qid order therefore matches the admission
// order; RPC issue order downstream is naturally concurrent.
func (c *Center) beginQuery(work [][]time.Duration) (qid uint64, stages []*remoteStage, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(work) != len(c.stages) {
		return 0, nil, fmt.Errorf("dist: work for %d stages, pipeline has %d", len(work), len(c.stages))
	}
	c.nextQID++
	c.submitted++
	stages = make([]*remoteStage, len(c.stages))
	copy(stages, c.stages)
	return c.nextQID, stages, nil
}

// finishQuery records a completed query's statistics and offers it to the
// telemetry tracer (nil-safe no-op when tracing is off).
func (c *Center) finishQuery(q *query.Query) {
	q.Done = c.Now()
	c.agg.Ingest(q)
	c.mu.Lock()
	c.completed++
	c.latency = append(c.latency, q.Latency())
	c.mu.Unlock()
	c.opts.Tracer.ObserveQuery(q)
}

// Submit dispatches one query through all stages, blocking until the
// response returns. Work must hold one row per stage.
//
// Fault handling: a quarantined stage fails the submit fast with an error
// wrapping ErrStageDown — unless the center runs with DegradedSubmit, in
// which case the quarantined stage is skipped and the query is served by the
// survivors. Every per-stage call is bounded by SubmitTimeout, so a hung
// stage cannot block a submit past its deadline; call outcomes feed the
// stage health machine.
func (c *Center) Submit(work [][]time.Duration) (time.Duration, error) {
	qid, stages, err := c.beginQuery(work)
	if err != nil {
		return 0, err
	}

	arrival := c.Now()
	q := query.New(query.ID(qid), arrival, work)
	for i, st := range stages {
		if st.quarantined() {
			if c.opts.DegradedSubmit {
				continue // serve the query from the survivors
			}
			return 0, fmt.Errorf("dist: stage %s: %w", st.name, ErrStageDown)
		}
		var reply ProcessReply
		if err := st.client.CallDeadline(MethodProcess, ProcessArgs{QueryID: qid, Work: work[i]}, &reply, c.opts.SubmitTimeout); err != nil {
			if rpc.IsTransient(err) {
				st.noteFailure(err)
			}
			return 0, fmt.Errorf("dist: stage %s: %w", st.name, err)
		}
		st.noteSuccess()
		for _, rec := range reply.Records {
			q.Append(rec.toRecord(q.ID))
		}
		if len(reply.Records) > 0 {
			c.ingest.recordsIn.Add(uint64(len(reply.Records)))
		}
		if reply.Delta != nil {
			// A completion on this stage tripped a flush: fold the batch.
			// A malformed frame loses only statistics, never the query.
			_ = c.foldDelta(st, reply.Delta)
		}
	}
	c.finishQuery(q)
	return q.Latency(), nil
}

// Counts returns submitted and completed query counts.
func (c *Center) Counts() (submitted, completed uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.submitted, c.completed
}

// Latencies returns a copy of the observed end-to-end latencies.
func (c *Center) Latencies() []time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]time.Duration, len(c.latency))
	copy(out, c.latency)
	return out
}

// Adjust refreshes the remote snapshots and runs one control interval of the
// policy against the deployment.
//
// Fault handling (degraded mode): stages that cannot be refreshed are not
// fatal — the failure feeds their health machine (repeated failures
// quarantine them, reclaiming their watts into Headroom), and the policy
// runs against whatever stages remain reachable, boosting survivors with the
// freed power. Only when every stage is quarantined does Adjust refuse to
// run, with ErrNoHealthyStages.
func (c *Center) Adjust(policy core.Policy) (core.BoostOutcome, error) {
	c.adjustMu.Lock()
	defer c.adjustMu.Unlock()

	c.mu.Lock()
	stages := make([]*remoteStage, len(c.stages))
	copy(stages, c.stages)
	c.mu.Unlock()

	healthy := 0
	for _, st := range stages {
		if st.quarantined() {
			continue // the prober owns its path back
		}
		if err := st.refresh(); err != nil {
			st.noteFailure(err)
			if !st.quarantined() {
				// Still only suspect: keep its last snapshot in the view for
				// this interval rather than acting on a half-empty pipeline.
				healthy++
			}
			continue
		}
		st.noteSuccess()
		healthy++
	}
	if healthy == 0 {
		return core.BoostOutcome{}, ErrNoHealthyStages
	}
	return policy.Adjust(c, c.agg), nil
}

// QuarantineCounts returns the lifetime number of stage quarantines and
// re-admissions the health machine has performed.
func (c *Center) QuarantineCounts() (quarantines, readmissions uint64) {
	return c.quarantines.Load(), c.readmissions.Load()
}

// RegisterMetrics exports the center's health telemetry on reg: a per-stage
// health-state gauge (0 healthy, 1 suspect, 2 down, 3 recovering), the count
// of currently quarantined stages, and lifetime quarantine/re-admission
// counters. Stage names are sanitized into the metric-name charset.
func (c *Center) RegisterMetrics(reg *telemetry.Registry) {
	c.mu.Lock()
	stages := make([]*remoteStage, len(c.stages))
	copy(stages, c.stages)
	c.mu.Unlock()
	for _, st := range stages {
		st := st
		reg.GaugeFunc("powerchief_stage_health_"+telemetry.SanitizeName(st.name),
			"stage health state (0 healthy, 1 suspect, 2 down, 3 recovering)",
			func() float64 { return float64(st.Health()) })
	}
	reg.GaugeFunc("powerchief_stages_quarantined", "stages currently quarantined by the health machine", func() float64 {
		n := 0
		for _, h := range c.Healths() {
			if h.State == Down || h.State == Recovering {
				n++
			}
		}
		return float64(n)
	})
	reg.CounterFunc("powerchief_stage_quarantines_total", "lifetime stage quarantines", func() float64 {
		return float64(c.quarantines.Load())
	})
	reg.CounterFunc("powerchief_stage_readmissions_total", "lifetime stage re-admissions", func() float64 {
		return float64(c.readmissions.Load())
	})
}

// Close stops the prober and tears down the stage connections. Idempotent.
func (c *Center) Close() {
	c.mu.Lock()
	if !c.closed {
		c.closed = true
		close(c.probeStop)
	}
	stages := c.stages
	c.stages = nil
	c.mu.Unlock()
	c.probeWG.Wait()
	for _, st := range stages {
		st.client.Close()
	}
}

// --- core.System over RPC ---

// PowerModel implements core.System.
func (c *Center) PowerModel() cmp.PowerModel { return c.model }

// Budget implements core.System.
func (c *Center) Budget() cmp.Watts { return c.budget }

// Draw implements core.System: computed from the last snapshots. Quarantined
// stages draw nothing — a down stage's watts are reclaimed into Headroom so
// the survivors can be boosted with them.
func (c *Center) Draw() cmp.Watts {
	c.mu.Lock()
	stages := make([]*remoteStage, len(c.stages))
	copy(stages, c.stages)
	c.mu.Unlock()
	var sum cmp.Watts
	for _, st := range stages {
		if st.quarantined() {
			continue
		}
		sum += st.draw(c.model)
	}
	return sum
}

// Headroom implements core.System.
func (c *Center) Headroom() cmp.Watts { return c.budget - c.Draw() }

// FreeCores implements core.System: the center assumes each stage service
// machine has capacity for more instances; the practical bound is the power
// budget, so report the budget headroom in whole minimum-power cores.
func (c *Center) FreeCores() int {
	h := c.Headroom()
	if h <= 0 {
		return 0
	}
	n := int(h / c.model.MinPower())
	if n < 1 {
		// Recycling can still fund a core even with zero headroom now.
		n = 1
	}
	return n
}

// Stages implements core.System. Quarantined stages are excluded so the
// policy — and in particular the power recycler — never actuates an
// instance the center cannot reach.
func (c *Center) Stages() []core.StageControl {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]core.StageControl, 0, len(c.stages))
	for _, st := range c.stages {
		if st.quarantined() {
			continue
		}
		out = append(out, st)
	}
	return out
}

// Quarantined implements core.System: the stages currently excluded from the
// control view. Their capacity is visible here so callers can account for
// watts that will return on re-admission.
func (c *Center) Quarantined() []core.StageControl {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []core.StageControl
	for _, st := range c.stages {
		if st.quarantined() {
			out = append(out, st)
		}
	}
	return out
}

// remoteStage adapts one stage service to core.StageControl and carries the
// stage's fault-handling state.
type remoteStage struct {
	center   *Center
	client   *rpc.Client
	name     string
	canScale bool
	profile  cmp.SpeedupProfile

	mu       sync.Mutex
	snapshot []*remoteInstance
	health   HealthState
	fails    int // consecutive failed calls
	lastErr  error

	// deltaIngest marks that this stage negotiated delta-batched statistics
	// ingest; deltaSeq is the last delta sequence number folded from it
	// (gaps mean lost flush windows).
	deltaIngest bool
	deltaSeq    uint64
}

// refresh pulls a fresh instance snapshot from the service. stage.stats is
// idempotent, so transient failures are retried with backoff. Under
// delta-batched ingest the reply also drains the stage's pending batch —
// the staleness backstop that keeps Eq. 1/2/3 inputs no staler than
// max(flush interval, control interval).
func (st *remoteStage) refresh() error {
	var reply StatsReply
	if err := st.client.CallRetry(MethodStats, nil, &reply); err != nil {
		return err
	}
	st.mu.Lock()
	st.snapshot = st.snapshot[:0]
	for _, is := range reply.Instances {
		st.snapshot = append(st.snapshot, &remoteInstance{stage: st, stats: is, level: is.Level})
	}
	st.mu.Unlock()
	if reply.Delta != nil {
		_ = st.center.foldDelta(st, reply.Delta)
	}
	return nil
}

// Name implements core.StageControl.
func (st *remoteStage) Name() string { return st.name }

// CanScale implements core.StageControl.
func (st *remoteStage) CanScale() bool { return st.canScale }

// Profile implements core.StageControl.
func (st *remoteStage) Profile() cmp.SpeedupProfile { return st.profile }

// Instances implements core.StageControl.
func (st *remoteStage) Instances() []core.Instance {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]core.Instance, len(st.snapshot))
	for i, in := range st.snapshot {
		out[i] = in
	}
	return out
}

// Clone implements core.StageControl over RPC. The center checks the power
// budget before authorizing the launch.
func (st *remoteStage) Clone(bottleneck core.Instance) (core.Instance, error) {
	src, ok := bottleneck.(*remoteInstance)
	if !ok {
		return nil, fmt.Errorf("dist: clone target %s is not a remote instance", bottleneck.Name())
	}
	cost := st.center.model.Power(src.Level())
	if st.center.Headroom()+1e-9 < cost {
		return nil, cmp.ErrBudgetExceeded
	}
	var reply CloneReply
	if err := st.client.Call(MethodClone, CloneArgs{Instance: src.Name()}, &reply); err != nil {
		if rpc.IsTransient(err) {
			st.noteFailure(err)
		}
		return nil, err
	}
	st.noteSuccess()
	clone := &remoteInstance{
		stage: st,
		stats: InstanceStats{Name: reply.Name, Level: reply.Level, QueueLen: src.stats.QueueLen / 2},
		level: reply.Level,
	}
	st.mu.Lock()
	st.snapshot = append(st.snapshot, clone)
	st.mu.Unlock()
	return clone, nil
}

// Withdraw implements core.StageControl over RPC.
func (st *remoteStage) Withdraw(victim, target core.Instance) error {
	v, ok := victim.(*remoteInstance)
	if !ok {
		return fmt.Errorf("dist: withdraw victim %s is not a remote instance", victim.Name())
	}
	args := WithdrawArgs{Instance: v.Name()}
	if target != nil {
		args.Target = target.Name()
	}
	if err := st.client.Call(MethodWithdraw, args, nil); err != nil {
		if rpc.IsTransient(err) {
			st.noteFailure(err)
		}
		return err
	}
	st.noteSuccess()
	st.mu.Lock()
	for i, in := range st.snapshot {
		if in == v {
			st.snapshot = append(st.snapshot[:i], st.snapshot[i+1:]...)
			break
		}
	}
	st.mu.Unlock()
	return nil
}

// remoteInstance adapts one remote service instance. Realtime fields come
// from the last snapshot; actuation goes over RPC with the center enforcing
// the budget.
type remoteInstance struct {
	stage *remoteStage
	stats InstanceStats

	mu    sync.Mutex
	level cmp.Level
}

// Name implements core.Instance.
func (in *remoteInstance) Name() string { return in.stats.Name }

// StageName implements core.Instance.
func (in *remoteInstance) StageName() string { return in.stage.name }

// QueueLen implements core.Instance (from the snapshot).
func (in *remoteInstance) QueueLen() int { return in.stats.QueueLen }

// Utilization implements core.Instance (from the snapshot).
func (in *remoteInstance) Utilization() float64 { return in.stats.Utilization }

// ResetUtilizationEpoch implements core.Instance. Remote utilization epochs
// are managed by the stage service per withdraw interval; the snapshot value
// simply refreshes each interval, so this is a no-op.
func (in *remoteInstance) ResetUtilizationEpoch() {}

// Level implements core.Instance.
func (in *remoteInstance) Level() cmp.Level {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.level
}

// SetLevel implements core.Instance: budget-checked at the center, applied
// over RPC.
func (in *remoteInstance) SetLevel(l cmp.Level) error {
	if !l.Valid() {
		return fmt.Errorf("dist: invalid level %d", int(l))
	}
	cur := in.Level()
	if l == cur {
		return nil
	}
	delta := in.stage.center.model.Power(l) - in.stage.center.model.Power(cur)
	if delta > 0 && in.stage.center.Headroom()+1e-9 < delta {
		return cmp.ErrBudgetExceeded
	}
	if err := in.stage.client.Call(MethodSetLevel, SetLevelArgs{Instance: in.Name(), Level: l}, nil); err != nil {
		if rpc.IsTransient(err) {
			in.stage.noteFailure(err)
		}
		return err
	}
	in.stage.noteSuccess()
	in.mu.Lock()
	in.level = l
	in.mu.Unlock()
	return nil
}

// Interface conformance.
var (
	_ core.System       = (*Center)(nil)
	_ core.StageControl = (*remoteStage)(nil)
	_ core.Instance     = (*remoteInstance)(nil)
)
