package dist

import (
	"sync"
	"testing"
	"time"

	"powerchief/internal/cmp"
	"powerchief/internal/core"
	"powerchief/internal/stage"
)

// testScale compresses time 100× so simulated work is cheap.
const testScale = 0.01

// startPipeline spins up stage services and a center for a two-stage app.
func startPipeline(t *testing.T, budget cmp.Watts) (*Center, []*StageService) {
	t.Helper()
	specs := []StageOptions{
		{Name: "ASR", Kind: stage.Pipeline, MemBound: 0.15, Instances: 1, Level: cmp.MidLevel, TimeScale: testScale},
		{Name: "QA", Kind: stage.Pipeline, MemBound: 0.25, Instances: 1, Level: cmp.MidLevel, TimeScale: testScale},
	}
	var svcs []*StageService
	var addrs []string
	for _, so := range specs {
		svc, err := NewStageService(so)
		if err != nil {
			t.Fatal(err)
		}
		addr, err := svc.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		svcs = append(svcs, svc)
		addrs = append(addrs, addr)
	}
	center, err := NewCenter(budget, 25*time.Second, addrs)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		center.Close()
		for _, s := range svcs {
			s.Close()
		}
	})
	return center, svcs
}

func TestDistributedQueryFlow(t *testing.T) {
	center, _ := startPipeline(t, 100)
	lat, err := center.Submit([][]time.Duration{
		{100 * time.Millisecond},
		{50 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if lat <= 0 {
		t.Errorf("latency = %v", lat)
	}
	sub, comp := center.Counts()
	if sub != 1 || comp != 1 {
		t.Errorf("counts = %d/%d", sub, comp)
	}
	if center.Aggregator().Ingested() != 1 {
		t.Error("aggregator did not receive the query")
	}
	// The query carried records from both stages back to the center.
	q, s, ok := center.Aggregator().InstStats("ASR_1")
	if !ok {
		t.Fatal("no stats for ASR_1")
	}
	if s <= 0 {
		t.Errorf("serving stats = %v/%v", q, s)
	}
}

func TestDistributedConcurrentQueries(t *testing.T) {
	center, _ := startPipeline(t, 200)
	var wg sync.WaitGroup
	errs := make(chan error, 40)
	for i := 0; i < 40; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := center.Submit([][]time.Duration{
				{30 * time.Millisecond},
				{20 * time.Millisecond},
			}); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if _, comp := center.Counts(); comp != 40 {
		t.Errorf("completed = %d", comp)
	}
	if got := len(center.Latencies()); got != 40 {
		t.Errorf("latencies = %d", got)
	}
}

func TestDistributedSystemView(t *testing.T) {
	center, _ := startPipeline(t, 100)
	stages := center.Stages()
	if len(stages) != 2 || stages[0].Name() != "ASR" || stages[1].Name() != "QA" {
		t.Fatalf("stage view wrong: %v", stages)
	}
	ins := stages[0].Instances()
	if len(ins) != 1 || ins[0].Name() != "ASR_1" {
		t.Fatalf("instance view wrong")
	}
	if ins[0].Level() != cmp.MidLevel {
		t.Error("level snapshot wrong")
	}
	// Two mid-level cores drawn.
	want := 2 * cmp.DefaultModel().Power(cmp.MidLevel)
	if !cmp.ApproxEqual(center.Draw(), want) {
		t.Errorf("Draw = %v, want %v", center.Draw(), want)
	}
}

func TestDistributedActuation(t *testing.T) {
	center, _ := startPipeline(t, 100)
	st := center.Stages()[1]
	in := st.Instances()[0]

	// DVFS over RPC.
	if err := in.SetLevel(cmp.MaxLevel); err != nil {
		t.Fatal(err)
	}
	if err := center.Stages()[1].(*remoteStage).refresh(); err != nil {
		t.Fatal(err)
	}
	if got := center.Stages()[1].Instances()[0].Level(); got != cmp.MaxLevel {
		t.Errorf("remote level = %v after SetLevel", got)
	}

	// Clone over RPC.
	clone, err := st.Clone(st.Instances()[0])
	if err != nil {
		t.Fatal(err)
	}
	if clone.StageName() != "QA" {
		t.Error("clone stage wrong")
	}
	if len(st.Instances()) != 2 {
		t.Error("snapshot missing the clone")
	}

	// Withdraw over RPC.
	if err := st.Withdraw(clone, st.Instances()[0]); err != nil {
		t.Fatal(err)
	}
	if len(st.Instances()) != 1 {
		t.Error("snapshot still holds the withdrawn instance")
	}
}

func TestDistributedBudgetEnforcedAtCenter(t *testing.T) {
	m := cmp.DefaultModel()
	// Exactly two mid cores: no headroom.
	center, _ := startPipeline(t, 2*m.Power(cmp.MidLevel))
	in := center.Stages()[0].Instances()[0]
	if err := in.SetLevel(cmp.MaxLevel); err == nil {
		t.Error("budget-exceeding remote DVFS accepted")
	}
	if _, err := center.Stages()[0].Clone(in); err == nil {
		t.Error("budget-exceeding remote clone accepted")
	}
	// Lowering always works and frees budget.
	if err := in.SetLevel(0); err != nil {
		t.Fatal(err)
	}
	if center.Headroom() <= 0 {
		t.Error("lowering freed no headroom")
	}
}

func TestDistributedPolicyAdjust(t *testing.T) {
	center, _ := startPipeline(t, 100)
	// Feed some queries so statistics exist.
	for i := 0; i < 10; i++ {
		if _, err := center.Submit([][]time.Duration{
			{200 * time.Millisecond},
			{40 * time.Millisecond},
		}); err != nil {
			t.Fatal(err)
		}
	}
	cfg := core.DefaultConfig()
	cfg.BalanceThreshold = 0 // act on any spread
	out, err := center.Adjust(core.NewFreqBoost(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if out.Kind != core.BoostFrequency {
		t.Errorf("outcome = %v, want freq-boost of the heavy stage", out.Kind)
	}
	if out.Target != "ASR_1" {
		t.Errorf("boost target = %s, want the heavy ASR_1", out.Target)
	}
}

// TestSubmitBookkeepingUnderRace hammers the per-query admission helper from
// many goroutines while control intervals and probes run concurrently. Run
// with -race: the point is that query-ID assignment, the submitted/completed
// counters, and the stage snapshot are one atomic critical section
// (beginQuery), with no ordering hole between ID assignment and RPC issue.
func TestSubmitBookkeepingUnderRace(t *testing.T) {
	center, _ := startPipeline(t, 200)
	const workers = 16
	const perWorker = 5
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if _, err := center.Submit([][]time.Duration{
					{10 * time.Millisecond},
					{10 * time.Millisecond},
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	// Control plane churns concurrently with the submitters.
	wg.Add(1)
	go func() {
		defer wg.Done()
		cfg := core.DefaultConfig()
		cfg.BalanceThreshold = 0
		for i := 0; i < 10; i++ {
			center.Adjust(core.NewFreqBoost(cfg))
			center.ProbeNow()
			center.Counts()
			center.Draw()
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()
	sub, comp := center.Counts()
	if sub != workers*perWorker || comp != workers*perWorker {
		t.Errorf("counts = %d/%d, want %d/%d", sub, comp, workers*perWorker, workers*perWorker)
	}
	if got := len(center.Latencies()); got != workers*perWorker {
		t.Errorf("latencies = %d, want %d", got, workers*perWorker)
	}
}

// TestFreeCoresContract pins the documented core.System.FreeCores contract
// of the distributed center: zero (or negative) headroom reports 0, but any
// positive headroom reports at least 1 — recycling can fund the remainder of
// a core — so the quarantine accounting must not silently change it.
func TestFreeCoresContract(t *testing.T) {
	m := cmp.DefaultModel()
	// Exactly two mid cores: zero headroom.
	center, _ := startPipeline(t, 2*m.Power(cmp.MidLevel))
	if got := center.FreeCores(); got != 0 {
		t.Errorf("FreeCores at zero headroom = %d, want 0", got)
	}
	// Lower one instance a step: small but positive headroom, below one
	// minimum-power core or not, FreeCores must report at least 1.
	in := center.Stages()[0].Instances()[0]
	if err := in.SetLevel(cmp.MidLevel - 1); err != nil {
		t.Fatal(err)
	}
	h := center.Headroom()
	if h <= 0 {
		t.Fatalf("headroom = %v after lowering a level", h)
	}
	want := int(h / m.MinPower())
	if want < 1 {
		want = 1
	}
	if got := center.FreeCores(); got != want || got < 1 {
		t.Errorf("FreeCores at headroom %v = %d, want %d (and never 0 with positive headroom)", h, got, want)
	}
}

func TestStageServiceValidation(t *testing.T) {
	if _, err := NewStageService(StageOptions{}); err == nil {
		t.Error("empty options accepted")
	}
	if _, err := NewStageService(StageOptions{Name: "A", Instances: 0}); err == nil {
		t.Error("zero instances accepted")
	}
}

func TestCenterValidation(t *testing.T) {
	if _, err := NewCenter(0, time.Second, []string{"x"}); err == nil {
		t.Error("zero budget accepted")
	}
	if _, err := NewCenter(10, time.Second, nil); err == nil {
		t.Error("no stages accepted")
	}
	if _, err := NewCenter(10, time.Second, []string{"127.0.0.1:1"}); err == nil {
		t.Error("dead address accepted")
	}
}

func TestSubmitShapeMismatchDistributed(t *testing.T) {
	center, _ := startPipeline(t, 100)
	if _, err := center.Submit([][]time.Duration{{time.Millisecond}}); err == nil {
		t.Error("work shape mismatch accepted")
	}
}
