package dist

import (
	"errors"
	"testing"
	"time"

	"powerchief/internal/cmp"
	"powerchief/internal/core"
	"powerchief/internal/stage"
	"powerchief/internal/telemetry"
)

// Conservation-mode chaos coverage: the QoS power savers (PowerChiefSaver,
// Pegasus) driven over RPC while ChaosProxy kills a stage mid-run. The
// promises under test: the saver's CloneAction relaunch actuates over the
// wire, degraded control intervals keep running on the survivors, and the
// returning stage is re-admitted budget-safely — the observed draw never
// exceeds the budget at any instant of the run.

// startSaverPipeline is startChaosPipeline with a configurable initial level
// and budget headroom (in whole max-level cores beyond the three stages).
func startSaverPipeline(t *testing.T, opts CenterOptions, level cmp.Level, extraCores int) (*Center, []*StageService, []*ChaosProxy) {
	t.Helper()
	specs := []StageOptions{
		{Name: "ASR", Kind: stage.Pipeline, MemBound: 0.15, Instances: 1, Level: level, TimeScale: testScale},
		{Name: "IMM", Kind: stage.Pipeline, MemBound: 0.35, Instances: 1, Level: level, TimeScale: testScale},
		{Name: "QA", Kind: stage.Pipeline, MemBound: 0.25, Instances: 1, Level: level, TimeScale: testScale},
	}
	var svcs []*StageService
	var proxies []*ChaosProxy
	var addrs []string
	for _, so := range specs {
		svc, err := NewStageService(so)
		if err != nil {
			t.Fatal(err)
		}
		backend, err := svc.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		proxy := NewChaosProxy(backend)
		front, err := proxy.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		svcs = append(svcs, svc)
		proxies = append(proxies, proxy)
		addrs = append(addrs, front)
	}
	model := cmp.DefaultModel()
	budget := 3*model.Power(level) + cmp.Watts(extraCores)*model.Power(cmp.MaxLevel)
	center, err := NewCenterOptions(budget, 25*time.Second, addrs, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		center.Close()
		for _, p := range proxies {
			p.Close()
		}
		for _, s := range svcs {
			s.Close()
		}
	})
	return center, svcs, proxies
}

// probeUntilReadmitted drives ProbeNow until no stage is quarantined.
func probeUntilReadmitted(t *testing.T, center *Center) {
	t.Helper()
	for i := 0; i < 40; i++ {
		center.ProbeNow()
		if len(center.Quarantined()) == 0 {
			return
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("stage never re-admitted; healths: %+v", center.Healths())
}

// TestChaosSaverCloneRelaunchAndReadmit drives PowerChiefSaver over RPC: a
// standing QoS violation on an all-max bottleneck stage makes the saver plan
// a CloneAction relaunch, actuated over the wire through the executor. Then
// the boosted stage is killed mid-run, degraded intervals continue on the
// survivors, and the healed stage is re-admitted with its levels shed as
// needed — with the budget invariant watched at every instant.
func TestChaosSaverCloneRelaunchAndReadmit(t *testing.T) {
	opts := chaosOptions()
	audit := telemetry.NewAuditLog(256)
	opts.Audit = audit
	// Everything at max, one spare max-level core of headroom: the saver's
	// violation path finds the bottleneck stage already at peak and relaunches
	// an instance with the headroom.
	center, _, proxies := startSaverPipeline(t, opts, cmp.MaxLevel, 1)
	feedQueries(t, center, 5)

	stopWatch, maxDraw := watchBudget(center)
	defer stopWatch()

	// A 1µs QoS target is violated by construction, every interval.
	saver := core.NewPowerChiefSaver(time.Microsecond, core.DefaultConfig())
	saver.SetAudit(audit)

	out, err := center.Adjust(saver)
	if err != nil {
		t.Fatalf("Adjust: %v", err)
	}
	if out.Kind != core.BoostInstance || out.NewInstance == "" {
		t.Fatalf("violation on an all-max stage produced %v (%q), want an instance relaunch", out.Kind, out.NewInstance)
	}
	if saver.Relaunched != 1 {
		t.Fatalf("Relaunched = %d, want 1", saver.Relaunched)
	}
	relaunched := false
	for _, e := range audit.Events() {
		if e.Kind == telemetry.EventRelaunch {
			relaunched = true
		}
	}
	if !relaunched {
		t.Error("relaunch not audited")
	}
	if center.Draw() > center.Budget()+1e-9 {
		t.Fatalf("draw %v over budget %v after relaunch", center.Draw(), center.Budget())
	}

	// Kill the relaunched (bottleneck) stage mid-run. Its two max-level
	// instances leave the view; the watts return to headroom.
	proxies[0].Kill()
	for i := 0; i < opts.SuspectAfter; i++ {
		center.Submit([][]time.Duration{{time.Millisecond}, {time.Millisecond}, {time.Millisecond}})
	}
	if _, err := center.Submit([][]time.Duration{{time.Millisecond}, {time.Millisecond}, {time.Millisecond}}); !errors.Is(err, ErrStageDown) {
		t.Fatalf("submit after kill = %v, want ErrStageDown", err)
	}

	// Degraded conservation intervals keep running on the survivors.
	if _, err := center.Adjust(saver); err != nil {
		t.Fatalf("degraded Adjust: %v", err)
	}
	if center.Draw() > center.Budget()+1e-9 {
		t.Fatalf("degraded interval pushed draw %v over budget %v", center.Draw(), center.Budget())
	}

	// Heal and re-admit. The returning stage wants two max-level cores but
	// the survivors may have spent the reclaimed watts; re-admission sheds the
	// returning stage's levels first, so the budget is never exceeded.
	proxies[0].Restore("")
	probeUntilReadmitted(t, center)
	if center.Draw() > center.Budget()+1e-9 {
		t.Errorf("draw %v over budget %v after re-admission", center.Draw(), center.Budget())
	}
	q, r := center.QuarantineCounts()
	if q < 1 || r < 1 {
		t.Errorf("quarantine counters = %d/%d, want at least 1/1", q, r)
	}

	stopWatch()
	if worst := maxDraw(); worst > center.Budget()+1e-9 {
		t.Errorf("observed draw %v over budget %v during the run", worst, center.Budget())
	}

	if _, err := center.Submit([][]time.Duration{{time.Millisecond}, {time.Millisecond}, {time.Millisecond}}); err != nil {
		t.Errorf("submit after recovery: %v", err)
	}
}

// TestChaosPegasusKillAndReadmitBudgetSafe drives the Pegasus baseline over
// RPC through the same chaos sequence: a violation races the survivors to
// maximum power while a stage is down, and the healed stage's re-admission
// must shed levels to fit the remaining headroom.
func TestChaosPegasusKillAndReadmitBudgetSafe(t *testing.T) {
	opts := chaosOptions()
	// Mid levels with just enough budget for three max-level cores: room for
	// Pegasus to race survivors to max, not for a free re-admission.
	center, _, proxies := startSaverPipeline(t, opts, cmp.MidLevel, 0)
	feedQueries(t, center, 5)

	stopWatch, maxDraw := watchBudget(center)
	defer stopWatch()

	pegasus := core.NewPegasus(time.Microsecond)

	// Kill one stage, then run violating intervals: Pegasus races every
	// surviving instance to maximum power with the reclaimed watts.
	proxies[1].Kill()
	for i := 0; i < opts.SuspectAfter; i++ {
		center.Submit([][]time.Duration{{time.Millisecond}, {time.Millisecond}, {time.Millisecond}})
	}
	if got := len(center.Quarantined()); got != 1 {
		t.Fatalf("quarantined = %d, want 1", got)
	}
	if _, err := center.Adjust(pegasus); err != nil {
		t.Fatalf("degraded Adjust: %v", err)
	}
	if center.Draw() > center.Budget()+1e-9 {
		t.Fatalf("pegasus pushed draw %v over budget %v", center.Draw(), center.Budget())
	}

	// Heal: re-admission must fit the returning stage into what headroom is
	// left, shedding its levels if the survivors hold the watts.
	proxies[1].Restore("")
	probeUntilReadmitted(t, center)
	if center.Draw() > center.Budget()+1e-9 {
		t.Errorf("draw %v over budget %v after re-admission", center.Draw(), center.Budget())
	}

	stopWatch()
	if worst := maxDraw(); worst > center.Budget()+1e-9 {
		t.Errorf("observed draw %v over budget %v during the run", worst, center.Budget())
	}

	if _, err := center.Submit([][]time.Duration{{time.Millisecond}, {time.Millisecond}, {time.Millisecond}}); err != nil {
		t.Errorf("submit after recovery: %v", err)
	}
}
