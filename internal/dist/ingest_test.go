package dist

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"powerchief/internal/cmp"
	"powerchief/internal/core"
	"powerchief/internal/query"
	"powerchief/internal/rpc"
	"powerchief/internal/stage"
	"powerchief/internal/stats"
)

// startIngestPipeline spins up a two-stage pipeline with delta-batched
// ingest negotiated at the given batch/interval.
func startIngestPipeline(t *testing.T, batch int, interval time.Duration) (*Center, []*StageService) {
	t.Helper()
	specs := []StageOptions{
		{Name: "ASR", Kind: stage.Pipeline, MemBound: 0.15, Instances: 1, Level: cmp.MidLevel, TimeScale: testScale},
		{Name: "QA", Kind: stage.Pipeline, MemBound: 0.25, Instances: 1, Level: cmp.MidLevel, TimeScale: testScale},
	}
	var svcs []*StageService
	var addrs []string
	for _, so := range specs {
		svc, err := NewStageService(so)
		if err != nil {
			t.Fatal(err)
		}
		addr, err := svc.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		svcs = append(svcs, svc)
		addrs = append(addrs, addr)
	}
	center, err := NewCenterOptions(100, 25*time.Second, addrs, CenterOptions{
		IngestBatch:    batch,
		IngestInterval: interval,
		ProbeInterval:  -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		center.Close()
		for _, s := range svcs {
			s.Close()
		}
	})
	return center, svcs
}

// TestDeltaIngestEndToEnd drives real queries through a delta-negotiated
// pipeline: no records travel on the wire, the batched deltas land in the
// aggregator, and the per-instance stats match what the queries did.
func TestDeltaIngestEndToEnd(t *testing.T) {
	const batch = 4
	center, svcs := startIngestPipeline(t, batch, time.Hour)
	if got := center.DeltaIngestStages(); got != 2 {
		t.Fatalf("DeltaIngestStages = %d, want 2", got)
	}
	for _, svc := range svcs {
		if enabled, _, _, _ := svc.IngestStats(); !enabled {
			t.Fatal("stage did not arm its accumulator")
		}
	}

	const n = 12 // three full batches per stage
	for i := 0; i < n; i++ {
		if _, err := center.Submit([][]time.Duration{
			{20 * time.Millisecond},
			{10 * time.Millisecond},
		}); err != nil {
			t.Fatal(err)
		}
	}

	deltas, deltaQueries, records, seqGaps := center.IngestCounts()
	if records != 0 {
		t.Fatalf("legacy records traveled on a delta-negotiated pipeline: %d", records)
	}
	if want := uint64(n / batch * 2); deltas != want {
		t.Fatalf("deltas folded = %d, want %d", deltas, want)
	}
	if deltaQueries != uint64(n*2) {
		t.Fatalf("delta queries = %d, want %d", deltaQueries, n*2)
	}
	if seqGaps != 0 {
		t.Fatalf("sequence gaps on a healthy pipeline: %d", seqGaps)
	}
	if s, ok := center.IngestStaleness(); !ok || s < 0 {
		t.Fatalf("staleness = (%v, %v), want a fresh reading", s, ok)
	}

	// The delta-fed aggregator serves Eq. 2/3 inputs for every instance.
	for _, inst := range []string{"ASR_1", "QA_1"} {
		_, s, ok := center.Aggregator().InstStats(inst)
		if !ok || s <= 0 {
			t.Fatalf("InstStats(%q) = (%v, %v): delta fold lost the serving time", inst, s, ok)
		}
	}
	// The center still counts every completion itself — batched stats must
	// not double-count queries.
	if got := center.Aggregator().Ingested(); got != n {
		t.Fatalf("aggregator ingested %d queries, want %d", got, n)
	}
}

// TestDeltaIngestStatsRefreshDrainsPending is the staleness backstop: a
// partial batch (below the count threshold, interval not yet reached) is
// flushed by the control-interval stats refresh.
func TestDeltaIngestStatsRefreshDrainsPending(t *testing.T) {
	center, svcs := startIngestPipeline(t, 1000, time.Hour)
	if _, err := center.Submit([][]time.Duration{
		{20 * time.Millisecond},
		{10 * time.Millisecond},
	}); err != nil {
		t.Fatal(err)
	}
	if deltas, _, _, _ := center.IngestCounts(); deltas != 0 {
		t.Fatalf("partial batch flushed early: %d deltas", deltas)
	}
	if _, _, pendingQ, _ := svcs[0].IngestStats(); pendingQ != 1 {
		t.Fatalf("stage pending queries = %d, want 1", pendingQ)
	}
	// One control interval: Adjust refreshes every stage, draining batches.
	if _, err := center.Adjust(core.NewFreqBoost(core.DefaultConfig())); err != nil {
		t.Fatal(err)
	}
	deltas, deltaQueries, _, _ := center.IngestCounts()
	if deltas != 2 || deltaQueries != 2 {
		t.Fatalf("after refresh: deltas = %d queries = %d, want 2/2", deltas, deltaQueries)
	}
	if _, _, pendingQ, _ := svcs[0].IngestStats(); pendingQ != 0 {
		t.Fatalf("stage still holds %d pending queries after refresh", pendingQ)
	}
	if _, s, ok := center.Aggregator().InstStats("ASR_1"); !ok || s <= 0 {
		t.Fatal("refresh-drained delta did not reach the aggregator")
	}
}

// oldStageService is a stage service predating delta ingest: it registers
// only the legacy methods (no MethodIngest) and ships records on every
// ProcessReply — the wire behavior of an old binary, for the mixed-
// deployment interop test.
type oldStageService struct {
	server *rpc.Server
	name   string
}

func startOldStageService(t *testing.T, name string) string {
	t.Helper()
	s := &oldStageService{server: rpc.NewServer(), name: name}
	rpc.HandleFunc(s.server, MethodInfo, func(struct{}) (InfoReply, error) {
		return InfoReply{Name: name, CanScale: true, MemBound: 0.2}, nil
	})
	rpc.HandleFunc(s.server, MethodStats, func(struct{}) (StatsReply, error) {
		return StatsReply{Instances: []InstanceStats{{Name: name + "_1", Level: cmp.MidLevel}}}, nil
	})
	rpc.HandleFunc(s.server, MethodProcess, func(a ProcessArgs) (ProcessReply, error) {
		return ProcessReply{Records: []RecordWire{{
			Instance:   name + "_1",
			Stage:      name,
			QueueEnter: 0,
			ServeStart: time.Millisecond,
			ServeEnd:   3 * time.Millisecond,
		}}}, nil
	})
	addr, err := s.server.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.server.Close() })
	return addr
}

// TestMixedDeploymentOldStageNewCenter is the wire back-compat satellite: a
// new center with delta ingest enabled drives one old-binary stage (answers
// "unknown method" to the negotiation) and one new stage in a single
// deployment. The old stage keeps the per-record contract, the new stage
// ships deltas, and both streams land in one aggregator.
func TestMixedDeploymentOldStageNewCenter(t *testing.T) {
	oldAddr := startOldStageService(t, "OLD")

	svc, err := NewStageService(StageOptions{
		Name: "NEW", Kind: stage.Pipeline, MemBound: 0.25,
		Instances: 1, Level: cmp.MidLevel, TimeScale: testScale,
	})
	if err != nil {
		t.Fatal(err)
	}
	newAddr, err := svc.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	const batch = 2
	center, err := NewCenterOptions(100, 25*time.Second, []string{oldAddr, newAddr}, CenterOptions{
		IngestBatch:    batch,
		IngestInterval: time.Hour,
		ProbeInterval:  -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		center.Close()
		svc.Close()
	})

	if got := center.DeltaIngestStages(); got != 1 {
		t.Fatalf("DeltaIngestStages = %d, want only the new stage", got)
	}

	const n = 4
	for i := 0; i < n; i++ {
		if _, err := center.Submit([][]time.Duration{
			{5 * time.Millisecond},
			{10 * time.Millisecond},
		}); err != nil {
			t.Fatal(err)
		}
	}

	deltas, _, records, _ := center.IngestCounts()
	if records != n {
		t.Fatalf("old stage shipped %d records, want %d", records, n)
	}
	if deltas != n/batch {
		t.Fatalf("new stage shipped %d deltas, want %d", deltas, n/batch)
	}
	// Both ingest paths reach the same aggregator.
	for _, inst := range []string{"OLD_1", "NEW_1"} {
		if _, s, ok := center.Aggregator().InstStats(inst); !ok || s <= 0 {
			t.Fatalf("InstStats(%q) missing: per-record and delta streams must coexist", inst)
		}
	}
}

// TestIngestNegotiationOldCenterShape: a center without IngestBatch (an old
// binary's wire behavior — it never calls MethodIngest) leaves a new stage
// in per-record mode, so records keep flowing.
func TestIngestNegotiationOldCenterShape(t *testing.T) {
	center, svcs := startPipeline(t, 100)
	for _, svc := range svcs {
		if enabled, _, _, _ := svc.IngestStats(); enabled {
			t.Fatal("stage armed batched ingest without negotiation")
		}
	}
	if _, err := center.Submit([][]time.Duration{
		{5 * time.Millisecond},
		{5 * time.Millisecond},
	}); err != nil {
		t.Fatal(err)
	}
	_, _, records, _ := center.IngestCounts()
	if records != 2 {
		t.Fatalf("per-record folds = %d, want 2", records)
	}
}

// TestDeltaFrameWireBackCompat mirrors TestRecordWireDecodesLegacyFrame at
// the frame level: a legacy ProcessReply (records only, no delta key)
// decodes on a new center, and a new reply at the legacy state (records,
// nil delta) encodes byte-identically to what an old stage produced.
func TestDeltaFrameWireBackCompat(t *testing.T) {
	legacy := `{"records":[{"instance":"QA_1","stage":"QA","queue_enter":1000000,"serve_start":2000000,"serve_end":9000000}]}`
	var reply ProcessReply
	if err := json.Unmarshal([]byte(legacy), &reply); err != nil {
		t.Fatal(err)
	}
	if len(reply.Records) != 1 || reply.Delta != nil {
		t.Fatalf("legacy frame decode: %+v", reply)
	}

	data, err := json.Marshal(ProcessReply{Records: reply.Records})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "delta") {
		t.Fatalf("legacy-state frame leaks the delta key: %s", data)
	}

	// And the forward direction: a batched frame decodes with its digests
	// intact.
	acc := stats.NewDeltaAccumulator(8, time.Second)
	acc.FoldRecord(time.Millisecond, "QA_1", "QA", time.Millisecond, 2*time.Millisecond)
	acc.FoldCompletion(time.Millisecond)
	batched, err := json.Marshal(ProcessReply{Delta: acc.Flush(time.Millisecond)})
	if err != nil {
		t.Fatal(err)
	}
	var newReply ProcessReply
	if err := json.Unmarshal(batched, &newReply); err != nil {
		t.Fatal(err)
	}
	if newReply.Delta == nil || newReply.Delta.Records() != 1 || newReply.Delta.V != stats.DeltaVersion {
		t.Fatalf("batched frame decode: %+v", newReply.Delta)
	}
	if err := newReply.Delta.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestIngestNegotiationClampsToStageBounds: a stage started with operator
// bounds (cmd/stagesvc -ingest.batch / -ingest.interval) accepts a center's
// negotiation but clamps the batch and interval — the local guard on
// pending-delta memory and staleness no center configuration can override.
func TestIngestNegotiationClampsToStageBounds(t *testing.T) {
	svc, err := NewStageService(StageOptions{
		Name: "web", MemBound: 0.2, Instances: 1, TimeScale: testScale,
		IngestMaxBatch: 32, IngestMaxInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := svc.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { svc.Close() })
	cli, err := rpc.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close() })

	var reply IngestReply
	if err := cli.Call(MethodIngest, IngestArgs{
		Version: stats.DeltaVersion, Batch: 1024, IntervalNS: int64(time.Second),
	}, &reply); err != nil {
		t.Fatal(err)
	}
	if !reply.Accepted {
		t.Fatal("bounded stage rejected the negotiation instead of clamping")
	}
	svc.mu.Lock()
	acc := svc.ingest
	svc.mu.Unlock()
	if acc == nil || acc.Batch() != 32 || acc.Interval() != 20*time.Millisecond {
		t.Fatalf("negotiated accumulator not clamped: batch=%d interval=%v",
			acc.Batch(), acc.Interval())
	}
}

// TestStatSinkRecordAndDeltaAgree pushes the same completions through both
// sink methods: one call per completion vs one call per batch, identical
// aggregator statistics, 10× fewer stat RPCs.
func TestStatSinkRecordAndDeltaAgree(t *testing.T) {
	mkAgg := func() *core.Aggregator {
		return core.NewAggregatorOptions(10*time.Second, func() time.Duration { return time.Second },
			core.AggregatorOptions{Window: core.WindowBucketed})
	}
	recAgg, delAgg := mkAgg(), mkAgg()
	recSink, delSink := NewStatSink(recAgg), NewStatSink(delAgg)
	recAddr, err := recSink.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	delAddr, err := delSink.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { recSink.Close(); delSink.Close() })

	recCli, err := rpc.Dial(recAddr)
	if err != nil {
		t.Fatal(err)
	}
	delCli, err := rpc.Dial(delAddr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { recCli.Close(); delCli.Close() })

	const n = 40
	acc := stats.NewDeltaAccumulator(10, time.Hour)
	for i := 0; i < n; i++ {
		lat := time.Duration(i+1) * time.Millisecond
		rec := RecordWire{Instance: "web-0", Stage: "web", ServeStart: time.Millisecond, ServeEnd: lat}
		if err := recCli.Call(MethodStatRecord, StatRecordArgs{
			QueryID: uint64(i), LatencyNS: int64(lat), Records: []RecordWire{rec},
		}, nil); err != nil {
			t.Fatal(err)
		}
		r := rec.toRecord(query.ID(i))
		acc.FoldRecord(time.Second, "web-0", "web", r.Queuing(), r.Serving())
		acc.FoldQuery(time.Second, lat)
		if d := acc.FlushIfDue(time.Second); d != nil {
			if err := delCli.Call(MethodStatDelta, d, nil); err != nil {
				t.Fatal(err)
			}
		}
	}
	recCalls, recQueries, _ := recSink.Counts()
	delCalls, delQueries, gaps := delSink.Counts()
	if recQueries != n || delQueries != n {
		t.Fatalf("queries: record %d delta %d, want %d", recQueries, delQueries, n)
	}
	if gaps != 0 {
		t.Fatalf("delta sink saw %d sequence gaps", gaps)
	}
	if recCalls != n || delCalls != n/10 {
		t.Fatalf("stat RPCs: record %d delta %d, want %d and %d", recCalls, delCalls, n, n/10)
	}
	q1, s1, _ := recAgg.InstStats("web-0")
	q2, s2, _ := delAgg.InstStats("web-0")
	if q1 != q2 || s1 != s2 {
		t.Fatalf("InstStats: record (%v,%v), delta (%v,%v)", q1, s1, q2, s2)
	}
	l1, _ := recAgg.WindowLatency()
	l2, _ := delAgg.WindowLatency()
	if l1 != l2 {
		t.Fatalf("WindowLatency: record %v, delta %v", l1, l2)
	}
	p1, _ := recAgg.WindowTail(0.99)
	p2, _ := delAgg.WindowTail(0.99)
	if p1 != p2 {
		t.Fatalf("WindowTail: record %v, delta %v", p1, p2)
	}
}

// TestDeltaIngestConcurrentSubmits races batched submits under -race: the
// accumulator's clamps and the center's fold path must be data-race free,
// and no query may be lost or double counted.
func TestDeltaIngestConcurrentSubmits(t *testing.T) {
	center, _ := startIngestPipeline(t, 5, 50*time.Millisecond)
	const workers, each = 8, 5
	var wg sync.WaitGroup
	errs := make(chan error, workers*each)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if _, err := center.Submit([][]time.Duration{
					{10 * time.Millisecond},
					{5 * time.Millisecond},
				}); err != nil {
					errs <- err
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := center.Aggregator().Ingested(); got != workers*each {
		t.Fatalf("ingested %d queries, want %d", got, workers*each)
	}
	_, _, records, _ := center.IngestCounts()
	if records != 0 {
		t.Fatalf("records leaked onto a delta pipeline: %d", records)
	}
}

// TestReadmitRearmsDeltaIngest: a restarted stage process comes up disarmed
// (per-record), so re-admission must re-offer delta ingest — otherwise one
// crash silently degrades that stage's wire traffic for the rest of the run
// — and reset the sequence high-water mark, or every frame from the new
// process (numbering from 1) would count as a gap until it caught up.
func TestReadmitRearmsDeltaIngest(t *testing.T) {
	specs := []StageOptions{
		{Name: "ASR", Kind: stage.Pipeline, MemBound: 0.15, Instances: 1, Level: cmp.MidLevel, TimeScale: testScale},
		{Name: "QA", Kind: stage.Pipeline, MemBound: 0.25, Instances: 1, Level: cmp.MidLevel, TimeScale: testScale},
	}
	var svcs []*StageService
	var addrs []string
	for _, so := range specs {
		svc, err := NewStageService(so)
		if err != nil {
			t.Fatal(err)
		}
		addr, err := svc.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		svcs = append(svcs, svc)
		addrs = append(addrs, addr)
	}
	center, err := NewCenterOptions(100, 25*time.Second, addrs, CenterOptions{
		IngestBatch:   32,
		ProbeInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	restarted := svcs[1]
	t.Cleanup(func() {
		center.Close()
		svcs[0].Close()
		restarted.Close()
	})

	st := center.stages[1]
	if !st.deltaIngest {
		t.Fatal("precondition: delta ingest not negotiated at startup")
	}

	// "Crash" the QA process and bring a fresh one up on the same port:
	// the new process has no negotiated accumulator and numbers any future
	// flushes from 1. Seed a high-water mark as if deltas had been folded.
	st.mu.Lock()
	st.deltaSeq = 7
	st.mu.Unlock()
	svcs[1].Close()
	svc2, err := NewStageService(specs[1])
	if err != nil {
		t.Fatal(err)
	}
	restarted = svc2
	if _, err := svc2.Listen(addrs[1]); err != nil {
		t.Fatalf("rebinding restarted stage on %s: %v", addrs[1], err)
	}
	if enabled, _, _, _ := svc2.IngestStats(); enabled {
		t.Fatal("fresh stage process should come up disarmed")
	}

	st.setHealth(Down)
	for i := 0; i < 40 && st.Health() != Healthy; i++ {
		center.ProbeNow()
		if st.Health() != Healthy {
			time.Sleep(25 * time.Millisecond)
		}
	}
	if st.Health() != Healthy {
		t.Fatalf("restarted stage never re-admitted; healths: %+v", center.Healths())
	}

	st.mu.Lock()
	armed, seq := st.deltaIngest, st.deltaSeq
	st.mu.Unlock()
	if !armed {
		t.Error("re-admission did not re-negotiate delta ingest")
	}
	if seq != 0 {
		t.Errorf("deltaSeq = %d after re-admission, want 0 (fresh process numbers from 1)", seq)
	}
	if enabled, _, _, _ := svc2.IngestStats(); !enabled {
		t.Error("restarted stage service not re-armed for delta ingest")
	}
}
