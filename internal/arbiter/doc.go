// Package arbiter is the level-agnostic budget redistribution mechanism of
// the control plane: one planner that re-splits a parent power budget across
// competing members — applications sharing a chip, nodes sharing a cluster —
// from their reported Equation 1 bottleneck metrics and QoS headroom.
//
// Cluster→node and chip→app are the same shape: a core.System whose Draw()
// is the sum of member grants, a set of members each actuated through
// core.NodeControl, and a redistribution epoch that frees watts before it
// spends them so the validating core.Executor holds Σ grants ≤ budget at
// every intermediate state. The Planner here owns that arithmetic — floor,
// metric-weighted shares, pinned members, hysteresis with leftover
// redistribution, feasibility scale-down, decreases-before-increases — and
// pluggable Strategy values own only the weighting: Proportional is the
// PowerChief-style feed-the-bottleneck rule (and, with QoS targets, weights
// by slowdown against each member's target), Fairness is the FastCap-style
// fairness-weighted divider, and Marginal weights by how much the
// bottleneck stage protrudes over the rest of its pipeline (the per-stage
// Equation 1 breakdown carried in Member.Breakdown).
//
// internal/fleet's Rebalance is this planner at the cluster→node level; the
// multi-tenant harness runs it at the chip→app level over a
// core.BudgetDomain hierarchy. See DESIGN.md §5k.
package arbiter
