package arbiter

import (
	"powerchief/internal/cmp"
	"powerchief/internal/core"
	"powerchief/internal/telemetry"
)

// Planner is the redistribution mechanism, implemented as a core.Planner
// one level up from the stage policies: every arbiter epoch it computes
// per-member budget targets from the strategy's weights and emits a plan of
// SetBudgetActions — decreases before increases, so the executor's budget
// replay holds Σ granted ≤ cap at every intermediate state.
//
// The target for each participating member is the floor plus a share of the
// remaining watts proportional to its strategy weight. Pinned members hold
// the floor; moves smaller than the hysteresis are suppressed, and any
// headroom left over after suppression is redistributed so no watts are
// stranded by the flap guard.
type Planner struct {
	strategy Strategy
	label    string
	audit    *telemetry.AuditLog
}

// New builds a planner over the strategy. The policy name defaults to
// "arbiter-<strategy>".
func New(strategy Strategy) *Planner {
	if strategy == nil {
		strategy = Proportional{}
	}
	return &Planner{strategy: strategy, label: "arbiter-" + strategy.Name()}
}

// WithName overrides the policy name (fleet.Rebalance keeps its historical
// "fleet-rebalance") and returns the planner for chaining.
func (p *Planner) WithName(name string) *Planner {
	p.label = name
	return p
}

// Name implements core.Policy.
func (p *Planner) Name() string { return p.label }

// Strategy returns the weighting strategy.
func (p *Planner) Strategy() Strategy { return p.strategy }

// SetAudit implements core.AuditSetter.
func (p *Planner) SetAudit(a *telemetry.AuditLog) { p.audit = a }

// Plan implements core.Planner. sys must be a View; anything else yields an
// empty plan.
func (p *Planner) Plan(sys core.System, _ core.StatsReader) (*core.ActionPlan, core.BoostOutcome) {
	none := core.BoostOutcome{Kind: core.BoostNone}
	v, ok := sys.(View)
	if !ok {
		return &core.ActionPlan{}, none
	}
	members := v.Members()
	if len(members) == 0 {
		return &core.ActionPlan{}, none
	}
	floor, hyst := v.Floor(), v.Hysteresis()

	// The distributable pool: the parent budget minus watts held outside
	// the member set (a quarantined node keeps its grant until the reclaim
	// pass takes it back; strict-cap holds count as draw).
	var memberGranted cmp.Watts
	for _, m := range members {
		memberGranted += m.Granted
	}
	avail := v.Budget() - (v.Draw() - memberGranted)
	if avail < 0 {
		avail = 0
	}
	extra := avail - cmp.Watts(len(members))*floor
	if extra < 0 {
		extra = 0
	}

	// Strategy-weighted targets: floor plus the weight-proportional share
	// of the extra. Pinned members hold the floor.
	raw := p.strategy.Weights(members)
	unpinned := 0
	var sumW float64
	weights := make([]float64, len(members))
	for i, m := range members {
		if m.Pinned {
			continue
		}
		unpinned++
		w := raw[i]
		if w < 0 {
			w = 0
		}
		weights[i] = w
		sumW += w
	}
	desired := make([]cmp.Watts, len(members))
	for i, m := range members {
		if m.Pinned {
			desired[i] = floor
			continue
		}
		var share float64
		if sumW > 0 {
			share = weights[i] / sumW
		} else if unpinned > 0 {
			share = 1 / float64(unpinned)
		}
		desired[i] = floor + cmp.Watts(float64(extra)*share)
	}

	// Hysteresis: a move smaller than the threshold keeps the current
	// grant, so metric noise does not flap watts between members.
	for i, m := range members {
		d := desired[i] - m.Granted
		if d < 0 {
			d = -d
		}
		if d <= hyst {
			desired[i] = m.Granted
		}
	}

	// Feasibility: hysteresis keeps can push the sum over the pool (a kept
	// grant above its computed target). Cut the increases proportionally —
	// the overshoot never exceeds their sum, since Σ granted ≤ pool held
	// before this epoch.
	var sum cmp.Watts
	for _, d := range desired {
		sum += d
	}
	if sum > avail {
		var incTotal cmp.Watts
		for i, m := range members {
			if desired[i] > m.Granted {
				incTotal += desired[i] - m.Granted
			}
		}
		if incTotal > 0 {
			scale := float64(sum-avail) / float64(incTotal)
			if scale > 1 {
				scale = 1
			}
			for i, m := range members {
				if desired[i] > m.Granted {
					desired[i] -= cmp.Watts(float64(desired[i]-m.Granted) * scale)
				}
			}
		}
	} else if left := avail - sum; left > 1e-9 && unpinned > 0 {
		// Keeps (or a shrunken member set) left headroom unallocated.
		// Spread it equally over the unpinned members, overriding
		// hysteresis: the flap guard must never strand watts — after a
		// quarantine the reclaimed power lands on the survivors this epoch
		// even when each member's share is individually below the
		// threshold.
		per := left / cmp.Watts(unpinned)
		for i, m := range members {
			if !m.Pinned {
				desired[i] += per
			}
		}
	}

	// Emit decreases first, then increases: the executor replays the budget
	// in plan order, so freeing watts before spending them keeps every
	// intermediate state under the cap.
	plan := &core.ActionPlan{}
	for i, m := range members {
		if desired[i] < m.Granted-1e-9 {
			plan.Actions = append(plan.Actions, &core.SetBudgetAction{
				Node: m.Control, From: m.Granted, To: desired[i], Reason: core.ReasonRebalance,
			})
		}
	}
	for i, m := range members {
		if desired[i] > m.Granted+1e-9 {
			plan.Actions = append(plan.Actions, &core.SetBudgetAction{
				Node: m.Control, From: m.Granted, To: desired[i], Reason: core.ReasonRebalance,
			})
		}
	}
	return plan, none
}

// Adjust implements core.Policy: plan, then actuate through the validating,
// rolling-back executor. A mid-plan grant failure (a member dying between
// the report and its grant, a hung app loop refusing its new budget) rolls
// the applied prefix back, so the ledger never straddles two allocations.
func (p *Planner) Adjust(sys core.System, agg *core.Aggregator) core.BoostOutcome {
	plan, out := p.Plan(sys, agg)
	res := core.Executor{Audit: p.audit}.Apply(sys, agg, plan)
	if res.Err != nil {
		return core.BoostOutcome{Kind: core.BoostNone}
	}
	return out
}

// Interface conformance.
var (
	_ core.Planner     = (*Planner)(nil)
	_ core.AuditSetter = (*Planner)(nil)
)
