package arbiter

import "math"

// Strategy turns the member set into non-negative redistribution weights:
// member i's share of the extra watts (beyond the floor) is w_i / Σw. The
// planner zeroes pinned members' weights and clamps negatives, so a
// strategy only has to rank.
type Strategy interface {
	// Name tags the strategy in policy names and audit events.
	Name() string
	// Weights returns one weight per member, aligned with the input.
	Weights(members []Member) []float64
}

// Proportional is the PowerChief rule one level up: feed the bottleneck.
// Without QoS targets the weight is the raw bottleneck metric (the member
// whose slowest stage is slowest attracts the most power — exactly the
// fleet Rebalance weighting, preserved bit-for-bit). With a target the
// weight is the member's slowdown, metric/target: an app 2× over its
// target outweighs one at half of its own, regardless of their absolute
// latency scales.
type Proportional struct{}

// Name implements Strategy.
func (Proportional) Name() string { return "proportional" }

// Weights implements Strategy.
func (Proportional) Weights(members []Member) []float64 {
	out := make([]float64, len(members))
	for i, m := range members {
		if m.Target > 0 {
			out[i] = float64(m.Metric) / float64(m.Target)
			continue
		}
		out[i] = float64(m.Metric)
	}
	return out
}

// Fairness is the FastCap-style fairness-weighted divider: each member's
// share is its entitlement (Member.Weight) modulated by its slowdown raised
// to Alpha. At Alpha 0 the cap is divided purely by entitlement — static
// weighted fair shares; as Alpha grows the divider leans harder toward
// whoever is furthest over target, converging on Proportional's behaviour.
// Members without a target are measured against the mean metric of the set
// instead, so the strategy still ranks when QoS targets are absent.
type Fairness struct {
	// Alpha is the slowdown exponent (default 1).
	Alpha float64
}

// Name implements Strategy.
func (Fairness) Name() string { return "fairness" }

// Weights implements Strategy.
func (f Fairness) Weights(members []Member) []float64 {
	alpha := f.Alpha
	if alpha == 0 {
		alpha = 1 // unset reads as the default
	} else if alpha < 0 {
		alpha = 0 // pure entitlement split
	}
	// Reference for target-less members: the mean metric of the set.
	var mean float64
	if len(members) > 0 {
		for _, m := range members {
			mean += float64(m.Metric)
		}
		mean /= float64(len(members))
	}
	out := make([]float64, len(members))
	for i, m := range members {
		entitle := m.Weight
		if entitle <= 0 {
			entitle = 1
		}
		slow := 1.0
		switch {
		case m.Target > 0:
			slow = float64(m.Metric) / float64(m.Target)
		case mean > 0:
			slow = float64(m.Metric) / mean
		}
		if slow < 0 {
			slow = 0
		}
		out[i] = entitle * math.Pow(slow, alpha)
	}
	return out
}

// Marginal weights by how far the bottleneck stage protrudes over the mean
// of the member's other stages — the marginal benefit of a watt: a member
// whose pipeline is balanced gains little from extra power (every stage
// would need some), while one with a single protruding bottleneck converts
// the next watt straight into latency. Falls back to the scalar metric for
// members without a breakdown, so mixed fleets (old nodes reporting one
// scalar) still rank.
type Marginal struct{}

// Name implements Strategy.
func (Marginal) Name() string { return "marginal" }

// Weights implements Strategy.
func (Marginal) Weights(members []Member) []float64 {
	out := make([]float64, len(members))
	for i, m := range members {
		if len(m.Breakdown) < 2 {
			out[i] = float64(m.Metric)
			continue
		}
		slowest, rest := 0.0, 0.0
		for _, s := range m.Breakdown {
			v := float64(s.Metric)
			if v > slowest {
				slowest = v
			}
			rest += v
		}
		mean := (rest - slowest) / float64(len(m.Breakdown)-1)
		out[i] = slowest - mean
	}
	return out
}

// Interface conformance.
var (
	_ Strategy = Proportional{}
	_ Strategy = Fairness{}
	_ Strategy = Marginal{}
)
