package arbiter

import (
	"time"

	"powerchief/internal/cmp"
	"powerchief/internal/core"
)

// StageMetric is one stage's Equation 1 expected delay inside a member's
// pipeline — the per-stage breakdown behind the member's scalar bottleneck
// metric. Fleet nodes forward it in heartbeat Reports (omitempty on the
// wire) so the cluster-level arbiter can weight by marginal benefit, and
// the multi-tenant harness builds it from each app's live aggregator.
type StageMetric struct {
	Stage  string        `json:"stage"`
	Metric time.Duration `json:"metric"`
}

// Member is one competitor for the shared budget as the arbiter sees it: an
// application domain under a chip, a node under a cluster.
type Member struct {
	// Control actuates the member's grant (emitted in SetBudgetActions) —
	// a core.BudgetDomain child, a fleet ledger entry.
	Control core.NodeControl
	// Granted is the member's current grant in the parent's ledger.
	Granted cmp.Watts
	// Metric is the member's bottleneck metric: the Equation 1 expected
	// delay of its slowest stage.
	Metric time.Duration
	// Target is the member's QoS latency target; zero means none, in which
	// case strategies weight by the raw metric.
	Target time.Duration
	// Weight is the member's fairness weight (FastCap's share entitlement);
	// zero or negative reads as 1.
	Weight float64
	// Pinned marks a member that holds the floor and does not compete for
	// extra watts (a freshly re-admitted node in cooldown).
	Pinned bool
	// Breakdown is the optional per-stage Equation 1 breakdown behind
	// Metric, slowest stage included.
	Breakdown []StageMetric
}

// View is the arbiter's view of the parent domain: core.System for the
// budget arithmetic — Budget() the parent cap, Draw() the sum of grants
// (plus any watts held outside the member set) — plus the per-member state
// the redistribution weighs.
type View interface {
	core.System
	// Members returns the competitors in stable order.
	Members() []Member
	// Floor is the minimum per-member grant.
	Floor() cmp.Watts
	// Hysteresis is the minimum re-grant worth actuating.
	Hysteresis() cmp.Watts
}
