package arbiter

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"powerchief/internal/cmp"
	"powerchief/internal/core"
)

// fakeMemberCtl is a ledger-less NodeControl for planner tests.
type fakeMemberCtl struct {
	mu      sync.Mutex
	name    string
	granted cmp.Watts
	failSet bool
	sets    []cmp.Watts
}

func (f *fakeMemberCtl) Name() string { return f.name }
func (f *fakeMemberCtl) Budget() cmp.Watts {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.granted
}
func (f *fakeMemberCtl) SetBudget(w cmp.Watts) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.failSet {
		return fmt.Errorf("fake: member %s unreachable", f.name)
	}
	f.granted = w
	f.sets = append(f.sets, w)
	return nil
}

// fakeView is a hand-built arbiter View over fake members.
type fakeView struct {
	budget, floor, hyst cmp.Watts
	ctls                []*fakeMemberCtl
	metrics             []time.Duration
	targets             []time.Duration
	weights             []float64
	pinned              []bool
	held                cmp.Watts // watts granted outside the member set
}

func (f *fakeView) Now() time.Duration         { return 0 }
func (f *fakeView) PowerModel() cmp.PowerModel { return cmp.DefaultModel() }
func (f *fakeView) Budget() cmp.Watts          { return f.budget }
func (f *fakeView) Draw() cmp.Watts {
	sum := f.held
	for _, c := range f.ctls {
		sum += c.Budget()
	}
	return sum
}
func (f *fakeView) Headroom() cmp.Watts              { return f.budget - f.Draw() }
func (f *fakeView) FreeCores() int                   { return 0 }
func (f *fakeView) Stages() []core.StageControl      { return nil }
func (f *fakeView) Quarantined() []core.StageControl { return nil }
func (f *fakeView) Floor() cmp.Watts                 { return f.floor }
func (f *fakeView) Hysteresis() cmp.Watts            { return f.hyst }
func (f *fakeView) Members() []Member {
	out := make([]Member, len(f.ctls))
	for i, c := range f.ctls {
		m := Member{Control: c, Granted: c.Budget(), Metric: f.metrics[i]}
		if f.targets != nil {
			m.Target = f.targets[i]
		}
		if f.weights != nil {
			m.Weight = f.weights[i]
		}
		if f.pinned != nil {
			m.Pinned = f.pinned[i]
		}
		out[i] = m
	}
	return out
}

func newFakeView(budget, floor, hyst cmp.Watts, grants []cmp.Watts, metrics []time.Duration) *fakeView {
	f := &fakeView{budget: budget, floor: floor, hyst: hyst, metrics: metrics}
	for i, g := range grants {
		f.ctls = append(f.ctls, &fakeMemberCtl{name: fmt.Sprintf("m%d", i), granted: g})
	}
	return f
}

func near(a, b cmp.Watts) bool { return math.Abs(float64(a-b)) < 1e-6 }

// TestProportionalMatchesFleetWeighting pins the bit-compat contract: with
// no QoS targets the proportional strategy weights by the raw metric, so the
// arbiter reproduces the historical fleet split exactly.
func TestProportionalMatchesFleetWeighting(t *testing.T) {
	fv := newFakeView(60, 10, 0.1,
		[]cmp.Watts{0, 0, 0},
		[]time.Duration{time.Second, 2 * time.Second, 3 * time.Second})
	New(Proportional{}).Adjust(fv, nil)
	want := []cmp.Watts{15, 20, 25} // 10 + 30×(1|2|3)/6
	for i, c := range fv.ctls {
		if !near(c.Budget(), want[i]) {
			t.Errorf("member %d granted %v, want %v", i, c.Budget(), want[i])
		}
	}
	if !near(fv.Draw(), 60) {
		t.Errorf("pool not fully allocated: draw %v of 60", fv.Draw())
	}
}

// TestProportionalWeighsSlowdownAgainstTargets: with QoS targets the weight
// is metric/target, so an app far over its own target out-attracts one that
// is absolutely slower but inside its target.
func TestProportionalWeighsSlowdownAgainstTargets(t *testing.T) {
	fv := newFakeView(60, 10, 0.1,
		[]cmp.Watts{0, 0},
		// Member 0: 100ms achieved vs 50ms target — slowdown 2.
		// Member 1: 900ms achieved vs 1800ms target — slowdown 0.5, though
		// absolutely 9× slower.
		[]time.Duration{100 * time.Millisecond, 900 * time.Millisecond})
	fv.targets = []time.Duration{50 * time.Millisecond, 1800 * time.Millisecond}
	New(Proportional{}).Adjust(fv, nil)
	// Extra 40W split 2 : 0.5 → 32 : 8; floors of 10 on top.
	if !near(fv.ctls[0].Budget(), 42) || !near(fv.ctls[1].Budget(), 18) {
		t.Fatalf("grants %v, %v; want 42, 18", fv.ctls[0].Budget(), fv.ctls[1].Budget())
	}
}

// TestFairnessEntitlementSplit: at Alpha<0 (pure entitlement) the extra
// watts divide by Member.Weight regardless of metrics.
func TestFairnessEntitlementSplit(t *testing.T) {
	fv := newFakeView(70, 10, 0.1,
		[]cmp.Watts{0, 0},
		[]time.Duration{5 * time.Second, time.Second})
	fv.weights = []float64{1, 4}
	New(Fairness{Alpha: -1}).Adjust(fv, nil)
	// Extra 50W split 1:4 → 10:40; floors of 10 on top.
	if !near(fv.ctls[0].Budget(), 20) || !near(fv.ctls[1].Budget(), 50) {
		t.Fatalf("grants %v, %v; want 20, 50", fv.ctls[0].Budget(), fv.ctls[1].Budget())
	}
}

// TestFairnessLeansTowardSlowdown: with the default Alpha the divider
// multiplies entitlement by slowdown, so equal entitlements tilt toward the
// member over its target.
func TestFairnessLeansTowardSlowdown(t *testing.T) {
	fv := newFakeView(60, 10, 0.1,
		[]cmp.Watts{0, 0},
		[]time.Duration{200 * time.Millisecond, 100 * time.Millisecond})
	fv.targets = []time.Duration{100 * time.Millisecond, 100 * time.Millisecond}
	New(Fairness{}).Adjust(fv, nil)
	// Slowdowns 2 and 1, equal entitlement → extra 40W splits 2:1.
	want0 := cmp.Watts(10 + 40*2.0/3.0)
	want1 := cmp.Watts(10 + 40*1.0/3.0)
	if !near(fv.ctls[0].Budget(), want0) || !near(fv.ctls[1].Budget(), want1) {
		t.Fatalf("grants %v, %v; want %v, %v", fv.ctls[0].Budget(), fv.ctls[1].Budget(), want0, want1)
	}
}

// TestMarginalWeighsProtrusion: members with a per-stage breakdown are
// weighted by how far the bottleneck protrudes over the rest of the
// pipeline, not by absolute slowness.
func TestMarginalWeighsProtrusion(t *testing.T) {
	fv := newFakeView(60, 10, 0.1,
		[]cmp.Watts{0, 0},
		[]time.Duration{time.Second, time.Second})
	// Member 0: balanced pipeline (all stages 1s) — protrusion 0.
	// Member 1: one protruding bottleneck (1s over 200ms mean) — 800ms.
	withBreakdown := func(v *fakeView) []Member {
		ms := v.Members()
		ms[0].Breakdown = []StageMetric{
			{Stage: "a", Metric: time.Second}, {Stage: "b", Metric: time.Second},
		}
		ms[1].Breakdown = []StageMetric{
			{Stage: "a", Metric: 200 * time.Millisecond}, {Stage: "b", Metric: time.Second},
		}
		return ms
	}
	w := Marginal{}.Weights(withBreakdown(fv))
	if w[0] != 0 {
		t.Errorf("balanced pipeline weight = %v, want 0", w[0])
	}
	if want := float64(800 * time.Millisecond); w[1] != want {
		t.Errorf("protruding pipeline weight = %v, want %v", w[1], want)
	}
	// Without a breakdown the strategy falls back to the scalar metric.
	w = Marginal{}.Weights(fv.Members())
	if w[0] != float64(time.Second) || w[1] != float64(time.Second) {
		t.Errorf("scalar fallback weights = %v", w)
	}
}

// TestPlannerIgnoresForeignSystems: a system that is not a View yields an
// empty plan, not a panic.
func TestPlannerIgnoresForeignSystems(t *testing.T) {
	fv := newFakeView(60, 10, 0.1, []cmp.Watts{0}, []time.Duration{time.Second})
	plan, out := New(nil).Plan(struct{ core.System }{fv}, nil)
	if !plan.Empty() || out.Kind != core.BoostNone {
		t.Fatalf("foreign system produced a plan:\n%s", plan.Describe())
	}
}

// TestPlannerRollsBackOnMemberFailure: a member refusing its grant mid-plan
// (hung app loop, dead node) fails the executor apply; earlier grants are
// restored so the split never straddles two allocations, and Σ grants stays
// under the budget.
func TestPlannerRollsBackOnMemberFailure(t *testing.T) {
	fv := newFakeView(60, 10, 0.1,
		[]cmp.Watts{40, 20},
		[]time.Duration{time.Second, 5 * time.Second})
	fv.ctls[1].failSet = true // the member due an increase hangs
	out := New(Proportional{}).Adjust(fv, nil)
	if out.Kind != core.BoostNone {
		t.Fatalf("outcome %v, want none", out.Kind)
	}
	if got := fv.ctls[0].Budget(); !near(got, 40) {
		t.Errorf("member 0 granted %v after rollback, want its original 40", got)
	}
	if len(fv.ctls[0].sets) != 2 {
		t.Errorf("member 0 saw %d grants, want apply+rollback", len(fv.ctls[0].sets))
	}
	if fv.Draw() > 60+1e-9 {
		t.Errorf("draw %v over budget after rollback", fv.Draw())
	}
}

// TestPlannerConservationChaos is the property test behind the tentpole
// invariant: across randomized metrics, targets, pins, holds and injected
// grant failures, Σ member grants ≤ budget after every arbiter epoch, for
// every strategy. Runs under -race in CI (concurrent budget readers during
// the epochs).
func TestPlannerConservationChaos(t *testing.T) {
	strategies := []Strategy{Proportional{}, Fairness{}, Fairness{Alpha: 2}, Marginal{}}
	for _, s := range strategies {
		s := s
		t.Run(s.Name(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			const budget = 100
			fv := newFakeView(budget, 5, 1,
				[]cmp.Watts{0, 0, 0, 0},
				make([]time.Duration, 4))
			fv.targets = make([]time.Duration, 4)
			fv.weights = make([]float64, 4)
			fv.pinned = make([]bool, 4)
			p := New(s)

			// Concurrent readers racing the epochs (the telemetry gauges).
			stop := make(chan struct{})
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					var sum cmp.Watts
					for _, c := range fv.ctls {
						sum += c.Budget()
					}
					_ = sum
				}
			}()

			for epoch := 0; epoch < 300; epoch++ {
				for i := range fv.ctls {
					fv.metrics[i] = time.Duration(rng.Int63n(int64(2 * time.Second)))
					if rng.Intn(2) == 0 {
						fv.targets[i] = time.Duration(1 + rng.Int63n(int64(time.Second))) // with QoS
					} else {
						fv.targets[i] = 0
					}
					fv.weights[i] = rng.Float64() * 3
					fv.pinned[i] = rng.Intn(8) == 0
					fv.ctls[i].mu.Lock()
					fv.ctls[i].failSet = rng.Intn(10) == 0
					fv.ctls[i].mu.Unlock()
				}
				fv.held = cmp.Watts(rng.Intn(30)) // watts outside the member set
				before := map[string]cmp.Watts{}
				for _, c := range fv.ctls {
					before[c.name] = c.Budget()
				}
				p.Adjust(fv, nil)
				// Either the epoch committed — then the member grants fit the
				// pool left after the held watts — or a grant failure rolled
				// the whole plan back to the prior split, bit for bit.
				changed := false
				var sum cmp.Watts
				for _, c := range fv.ctls {
					g := c.Budget()
					sum += g
					if g != before[c.name] {
						changed = true
					}
				}
				if changed && sum > budget-fv.held+1e-6 {
					t.Fatalf("epoch %d (%s): grants %v over the %v pool", epoch, s.Name(), sum, budget-fv.held)
				}
				if !changed {
					for _, c := range fv.ctls {
						if !near(c.Budget(), before[c.name]) {
							t.Fatalf("epoch %d: rollback left member %s at %v, was %v", epoch, c.name, c.Budget(), before[c.name])
						}
					}
				}
			}
			close(stop)
			wg.Wait()
		})
	}
}
