package replay

import (
	"time"

	"powerchief/internal/arbiter"
	"powerchief/internal/cmp"
	"powerchief/internal/core"
)

// Divider is an arbiter strategy transplanted to stage level: instead of
// boosting one bottleneck instance per interval (Algorithm 1), it re-divides
// the whole chip budget across stages every tick — each stage holds its
// instance floors, the surplus is split by the strategy's weights over
// per-stage Equation 1 metrics (with per-instance breakdowns for Marginal),
// and every instance is set to the highest level its stage share affords.
// With arbiter.Fairness this is the FastCap-style fairness divider as a
// stage-level policy; with Proportional it is feed-the-bottleneck as a full
// reallocation. Built for the replay arena, but a full core.Planner — it
// runs anywhere PowerChief does.
type Divider struct {
	strategy arbiter.Strategy
	cfg      core.Config
}

// NewDivider builds the policy over a weighting strategy.
func NewDivider(s arbiter.Strategy, cfg core.Config) *Divider {
	return &Divider{strategy: s, cfg: cfg}
}

// Name implements core.Policy.
func (d *Divider) Name() string { return "divider-" + d.strategy.Name() }

// Plan implements core.Planner.
func (d *Divider) Plan(sys core.System, stats core.StatsReader) (*core.ActionPlan, core.BoostOutcome) {
	none := core.BoostOutcome{Kind: core.BoostNone}
	pv := core.NewPlanView(sys)
	ranked := core.Identifier{Metric: d.cfg.Metric}.Rank(pv, stats)
	if len(ranked) == 0 || core.Spread(ranked) < d.cfg.BalanceThreshold {
		return pv.Take(), none
	}
	metric := make(map[string]time.Duration, len(ranked))
	for _, r := range ranked {
		metric[r.Instance.Name()] = r.Metric
	}

	model := pv.PowerModel()
	type stageSet struct {
		ins    []core.Instance
		floor  cmp.Watts
		budget cmp.Watts
	}
	var (
		sets      []stageSet
		members   []arbiter.Member
		floorsSum cmp.Watts
	)
	for _, st := range pv.Stages() {
		ins := st.Instances()
		if len(ins) == 0 {
			continue
		}
		var granted cmp.Watts
		var worst time.Duration
		breakdown := make([]arbiter.StageMetric, 0, len(ins))
		for _, in := range ins {
			granted += model.Power(in.Level())
			m := metric[in.Name()]
			if m > worst {
				worst = m
			}
			breakdown = append(breakdown, arbiter.StageMetric{Stage: in.Name(), Metric: m})
		}
		floor := cmp.Watts(len(ins)) * model.MinPower()
		floorsSum += floor
		sets = append(sets, stageSet{ins: ins, floor: floor})
		members = append(members, arbiter.Member{
			Granted:   granted,
			Metric:    worst,
			Weight:    float64(len(ins)),
			Breakdown: breakdown,
		})
	}
	if len(sets) == 0 {
		return pv.Take(), none
	}

	extra := pv.Budget() - floorsSum
	if extra < 0 {
		extra = 0
	}
	weights := d.strategy.Weights(members)
	var sumW float64
	for i := range weights {
		if weights[i] < 0 {
			weights[i] = 0
		}
		sumW += weights[i]
	}
	for i := range sets {
		share := cmp.Watts(0)
		if sumW > 0 {
			share = cmp.Watts(weights[i] / sumW * float64(extra))
		} else {
			share = extra / cmp.Watts(len(sets))
		}
		sets[i].budget = sets[i].floor + share
	}

	// Target level per instance: the stage share split evenly over its
	// instances. Decreases apply first so the freed watts fund the raises —
	// the same ordering discipline the fleet planner uses.
	target := func(s stageSet, in core.Instance) cmp.Level {
		per := s.budget / cmp.Watts(len(s.ins))
		lvl, ok := cmp.HighestAffordable(model, per)
		if !ok {
			return 0
		}
		return lvl
	}
	out := none
	bn := ranked[0].Instance.Name()
	for pass := 0; pass < 2; pass++ {
		for _, s := range sets {
			for _, in := range s.ins {
				to := target(s, in)
				from := in.Level()
				if to == from || (pass == 0) != (to < from) {
					continue
				}
				if err := in.SetLevel(to); err != nil {
					continue
				}
				if in.Name() == bn || out.Kind == core.BoostNone {
					out = core.BoostOutcome{Kind: core.BoostFrequency, Target: in.Name(), OldLevel: from, NewLevel: to}
				}
			}
		}
	}
	if out.Kind != core.BoostNone {
		pv.SetOutcome(out)
	}
	return pv.Take(), out
}

// Adjust implements core.Policy.
func (d *Divider) Adjust(sys core.System, agg *core.Aggregator) core.BoostOutcome {
	plan, out := d.Plan(sys, agg)
	res := core.Executor{}.Apply(sys, agg, plan)
	if res.Err != nil {
		return core.BoostOutcome{Kind: core.BoostNone, Target: out.Target}
	}
	return out
}

var _ core.Planner = (*Divider)(nil)
