package replay

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"powerchief/internal/app"
	"powerchief/internal/cmp"
	"powerchief/internal/core"
	"powerchief/internal/sim"
	"powerchief/internal/stage"
)

// testTrace records topology-only frames from a real DES deployment, so the
// snapshots carry genuine physics tables and instance state.
func testTrace(t *testing.T, frames int) *Trace {
	t.Helper()
	eng := sim.NewEngine()
	chip := cmp.NewChip(8, cmp.DefaultModel(), 30)
	specs, err := app.Sirius().Specs([]int{1, 1, 1}, cmp.MidLevel)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := stage.NewSystem(eng, chip, specs)
	if err != nil {
		t.Fatal(err)
	}
	view := core.NewDESView(sys)
	rec := NewRecorder(Header{Scenario: "trace-test", Seed: 42, Policy: "baseline"}, 0)
	for i := 0; i < frames; i++ {
		eng.RunUntil(time.Duration(i+1) * time.Second)
		rec.RecordDecision(core.DecisionRecord{
			Snapshot: core.CaptureSnapshot(view, nil),
			Outcome:  core.BoostOutcome{Kind: core.BoostNone},
		})
	}
	return rec.Trace()
}

func TestTraceRoundTrip(t *testing.T) {
	tr := testTrace(t, 3)
	var a, b bytes.Buffer
	if err := Write(&a, tr); err != nil {
		t.Fatal(err)
	}
	if err := Write(&b, tr); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("trace encoding is not deterministic")
	}
	got, err := Read(bytes.NewReader(a.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Header != tr.Header {
		t.Fatalf("header drifted: %+v vs %+v", got.Header, tr.Header)
	}
	want, _ := json.Marshal(tr.Frames)
	have, _ := json.Marshal(got.Frames)
	if !bytes.Equal(want, have) {
		t.Fatal("frames drifted across the round trip")
	}

	// The gzip file path round-trips identically.
	path := filepath.Join(t.TempDir(), "t.jsonl.gz")
	if err := WriteFile(path, tr); err != nil {
		t.Fatal(err)
	}
	got2, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	have2, _ := json.Marshal(got2.Frames)
	if got2.Header != tr.Header || !bytes.Equal(want, have2) {
		t.Fatal("gzip round trip drifted")
	}
	if got2.Duration() != 2*time.Second {
		t.Fatalf("Duration = %v, want 2s across 3 one-second frames", got2.Duration())
	}
}

// TestTraceTruncationFailsLoudly: a cut gzip stream and a partial final
// JSONL line both surface as read errors, never as a silently shortened
// trace.
func TestTraceTruncationFailsLoudly(t *testing.T) {
	tr := testTrace(t, 4)
	dir := t.TempDir()

	gz := filepath.Join(dir, "t.jsonl.gz")
	if err := WriteFile(gz, tr); err != nil {
		t.Fatal(err)
	}
	payload, err := os.ReadFile(gz)
	if err != nil {
		t.Fatal(err)
	}
	for _, frac := range []float64{0.5, 0.9} {
		cut := filepath.Join(dir, "cut.jsonl.gz")
		if err := os.WriteFile(cut, payload[:int(float64(len(payload))*frac)], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadFile(cut); err == nil {
			t.Fatalf("gzip trace truncated to %.0f%% read without error", frac*100)
		}
	}

	plain := filepath.Join(dir, "t.jsonl")
	if err := WriteFile(plain, tr); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(plain)
	if err != nil {
		t.Fatal(err)
	}
	cut := filepath.Join(dir, "cut.jsonl")
	if err := os.WriteFile(cut, raw[:len(raw)-10], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(cut); err == nil {
		t.Fatal("trace with a partial final line read without error")
	}
}

// TestTraceVersionSkewRejected: both container-level and snapshot-level
// schema skew are refused outright — silent reinterpretation of recorded
// decision inputs would defeat the determinism gate.
func TestTraceVersionSkewRejected(t *testing.T) {
	hdr := Header{Version: TraceVersion + 1, Policy: "baseline"}
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(hdr); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(&buf); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("version-skewed header accepted: %v", err)
	}

	tr := testTrace(t, 1)
	tr.Frames[0].Snapshot.Version = core.SnapshotVersion + 1
	var skew bytes.Buffer
	if err := Write(&skew, tr); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(&skew); err == nil {
		t.Fatal("snapshot version skew accepted")
	}

	if _, err := Read(strings.NewReader("")); err == nil {
		t.Fatal("empty trace accepted")
	}
}

// TestRecorderBoundsFrames: past the limit the trace stays a prefix and the
// overflow is counted, never sampled.
func TestRecorderBoundsFrames(t *testing.T) {
	src := testTrace(t, 1)
	snap := src.Frames[0].Snapshot
	rec := NewRecorder(Header{Policy: "baseline"}, 2)
	for i := 0; i < 5; i++ {
		rec.RecordDecision(core.DecisionRecord{Snapshot: snap})
	}
	if rec.Len() != 2 || rec.Dropped() != 3 {
		t.Fatalf("Len=%d Dropped=%d, want 2 and 3", rec.Len(), rec.Dropped())
	}
	tr := rec.Trace()
	if len(tr.Frames) != 2 || tr.Frames[0].Tick != 0 || tr.Frames[1].Tick != 1 {
		t.Fatalf("bounded trace is not the prefix: %+v", tr.Frames)
	}
	if tr.Header.Version != TraceVersion {
		t.Fatalf("recorder did not stamp the trace version: %d", tr.Header.Version)
	}
}
