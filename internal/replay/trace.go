package replay

import (
	"bufio"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"time"

	"powerchief/internal/core"
	"powerchief/internal/loadgen"
)

// TraceVersion is the trace container schema. It versions the header and
// frame framing; the snapshots inside carry core.SnapshotVersion on top.
const TraceVersion = 1

// DefaultFrameLimit bounds a Recorder when no limit is given: week-long
// runs must not grow an unbounded decision log in memory.
const DefaultFrameLimit = 4096

// maxLineBytes bounds one JSONL line (a frame with a large fleet snapshot).
const maxLineBytes = 64 << 20

// Header identifies a trace: what ran, under which seed and policy, built
// from which source tree. Replay warns on provenance drift — comparing a
// trace against a policy built from different code is meaningful but must
// be visible.
type Header struct {
	Version    int                `json:"version"`
	Scenario   string             `json:"scenario,omitempty"`
	Seed       int64              `json:"seed"`
	Policy     string             `json:"policy"`
	Provenance loadgen.Provenance `json:"provenance"`
}

// Frame is one recorded control tick.
type Frame struct {
	Tick     int            `json:"tick"`
	Snapshot *core.Snapshot `json:"snapshot"`
	Plan     []core.ActionRecord `json:"plan"`
	Outcome  core.BoostOutcome   `json:"outcome"`
}

// Trace is a fully loaded decision trace.
type Trace struct {
	Header Header
	Frames []Frame
}

// Recorder is a bounded in-memory core.DecisionTap: the control loop feeds
// it one record per adjust interval, WriteFile persists the trace. Once the
// frame limit is reached further records are counted and dropped — the
// trace stays a prefix, never a sample.
type Recorder struct {
	mu      sync.Mutex
	header  Header
	frames  []Frame
	limit   int
	dropped int
}

// NewRecorder builds a recorder for one run. A non-positive limit means
// DefaultFrameLimit. The header's Version and Provenance are stamped here.
func NewRecorder(header Header, limit int) *Recorder {
	if limit <= 0 {
		limit = DefaultFrameLimit
	}
	header.Version = TraceVersion
	header.Provenance = loadgen.CaptureProvenance()
	return &Recorder{header: header, limit: limit}
}

// RecordDecision implements core.DecisionTap.
func (r *Recorder) RecordDecision(rec core.DecisionRecord) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.frames) >= r.limit {
		r.dropped++
		return
	}
	r.frames = append(r.frames, Frame{
		Tick:     len(r.frames),
		Snapshot: rec.Snapshot,
		Plan:     rec.Plan,
		Outcome:  rec.Outcome,
	})
}

// Len returns the number of retained frames.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.frames)
}

// Dropped counts records discarded past the frame limit.
func (r *Recorder) Dropped() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Trace snapshots the recorder into a loadable trace.
func (r *Recorder) Trace() *Trace {
	r.mu.Lock()
	defer r.mu.Unlock()
	t := &Trace{Header: r.header, Frames: make([]Frame, len(r.frames))}
	copy(t.Frames, r.frames)
	return t
}

// WriteFile persists the recorded trace; see WriteFile.
func (r *Recorder) WriteFile(path string) error { return WriteFile(path, r.Trace()) }

// Write streams the trace as JSONL: the header line, then one frame per
// line. The encoding is deterministic — identical traces yield identical
// bytes.
func Write(w io.Writer, t *Trace) error {
	enc := json.NewEncoder(w)
	if err := enc.Encode(t.Header); err != nil {
		return fmt.Errorf("replay: writing header: %w", err)
	}
	for i := range t.Frames {
		if err := enc.Encode(&t.Frames[i]); err != nil {
			return fmt.Errorf("replay: writing frame %d: %w", i, err)
		}
	}
	return nil
}

// WriteFile writes the trace to path, gzip-compressed when the name ends in
// ".gz".
func WriteFile(path string, t *Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("replay: %w", err)
	}
	defer f.Close()
	var w io.Writer = f
	var gz *gzip.Writer
	if strings.HasSuffix(path, ".gz") {
		gz = gzip.NewWriter(f)
		w = gz
	}
	if err := Write(w, t); err != nil {
		return err
	}
	if gz != nil {
		if err := gz.Close(); err != nil {
			return fmt.Errorf("replay: closing gzip stream: %w", err)
		}
	}
	return f.Close()
}

// Read loads a trace from JSONL. It rejects version-skewed headers and
// snapshots outright, and reports truncation (a cut gzip stream, a partial
// final line) as an error rather than returning a silently shortened trace.
func Read(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), maxLineBytes)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("replay: reading header: %w", err)
		}
		return nil, fmt.Errorf("replay: empty trace")
	}
	var t Trace
	if err := json.Unmarshal(sc.Bytes(), &t.Header); err != nil {
		return nil, fmt.Errorf("replay: decoding header: %w", err)
	}
	if t.Header.Version != TraceVersion {
		return nil, fmt.Errorf("replay: trace schema v%d, this build reads v%d", t.Header.Version, TraceVersion)
	}
	for sc.Scan() {
		var f Frame
		if err := json.Unmarshal(sc.Bytes(), &f); err != nil {
			return nil, fmt.Errorf("replay: decoding frame %d: %w", len(t.Frames), err)
		}
		if f.Snapshot == nil {
			return nil, fmt.Errorf("replay: frame %d has no snapshot", len(t.Frames))
		}
		if err := f.Snapshot.Validate(); err != nil {
			return nil, fmt.Errorf("replay: frame %d: %w", len(t.Frames), err)
		}
		t.Frames = append(t.Frames, f)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("replay: after %d frames: %w", len(t.Frames), err)
	}
	return &t, nil
}

// ReadFile loads a trace from path, transparently gunzipping ".gz" files.
// A truncated gzip stream fails loudly (io.ErrUnexpectedEOF), never as a
// shortened trace.
func ReadFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("replay: %w", err)
	}
	defer f.Close()
	var r io.Reader = f
	if strings.HasSuffix(path, ".gz") {
		gz, err := gzip.NewReader(f)
		if err != nil {
			return nil, fmt.Errorf("replay: opening gzip stream %s: %w", path, err)
		}
		defer gz.Close()
		r = gz
	}
	t, err := Read(r)
	if err != nil {
		return nil, fmt.Errorf("replay: %s: %w", path, err)
	}
	return t, nil
}

// Duration returns the engine-time span covered by the trace.
func (t *Trace) Duration() time.Duration {
	if len(t.Frames) == 0 {
		return 0
	}
	return t.Frames[len(t.Frames)-1].Snapshot.Now - t.Frames[0].Snapshot.Now
}

var _ core.DecisionTap = (*Recorder)(nil)
