// Package replay is the offline policy arena: it records the control
// plane's decision path — one core.DecisionRecord (snapshot, plan, outcome)
// per adjust interval — to a bounded, provenance-stamped JSONL trace, and
// re-runs any registered planner against the recorded snapshots in shadow
// mode. Replayed plans are diffed against the recorded ones (the recording
// policy must reproduce its plans byte-identically — the determinism gate),
// and every candidate is scored by the projected Equation 1/2/3 bottleneck
// delay of its shadow-applied plans, yielding a policy-vs-policy tail
// projection table without a single live actuation. See DESIGN.md §5l.
package replay
