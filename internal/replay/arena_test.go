// Package replay_test exercises the arena end to end: a real harness run
// records a decision trace (harness imports replay, so these tests live in
// the external package), and the replay engine re-runs policies against it.
package replay_test

import (
	"testing"
	"time"

	"powerchief/internal/app"
	"powerchief/internal/cmp"
	"powerchief/internal/core"
	"powerchief/internal/harness"
	"powerchief/internal/replay"
	"powerchief/internal/workload"
)

// recordedScenario is a short overloaded Sirius run under PowerChief — busy
// enough that the policy actually boosts, so the trace carries non-trivial
// plans for the determinism gate to reproduce.
func recordedScenario(seed int64) harness.Scenario {
	return harness.Scenario{
		Name:   "arena-test",
		App:    app.Sirius(),
		Level:  cmp.MidLevel,
		Budget: 13.56,
		Policy: func() core.Policy { return core.NewPowerChief(core.DefaultConfig()) },
		Source: func(capacity float64) workload.Source {
			return workload.Constant(workload.RateForUtilization(capacity, workload.High.Utilization()))
		},
		Duration:       300 * time.Second,
		AdjustInterval: 25 * time.Second,
		Seed:           seed,
	}
}

// TestHarnessRecordsAndReplaysDeterministically is the tentpole acceptance
// property end to end: a harness run records its decision path by default,
// and replaying the recording policy against the captured snapshots
// reproduces every recorded plan byte-identically.
func TestHarnessRecordsAndReplaysDeterministically(t *testing.T) {
	res, err := harness.Run(recordedScenario(9))
	if err != nil {
		t.Fatal(err)
	}
	if res.Decisions == nil {
		t.Fatal("harness run left no decision trace (recording is on by default)")
	}
	if res.Decisions.Len() == 0 {
		t.Fatal("decision trace is empty")
	}
	tr := res.Decisions.Trace()
	if tr.Header.Scenario != "arena-test" || tr.Header.Seed != 9 || tr.Header.Policy != "powerchief" {
		t.Fatalf("trace header %+v", tr.Header)
	}
	if tr.Header.Version != replay.TraceVersion {
		t.Fatalf("trace version %d, want %d", tr.Header.Version, replay.TraceVersion)
	}

	score, err := replay.Determinism(tr, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !score.Deterministic {
		t.Fatalf("determinism gate failed: %d/%d plans reproduced", score.PlanMatches, score.Frames)
	}
	if score.Frames != len(tr.Frames) {
		t.Fatalf("replayed %d frames of %d", score.Frames, len(tr.Frames))
	}
	if score.Boosts == 0 {
		t.Fatal("overloaded run never boosted — the gate reproduced only empty plans")
	}
}

// TestArenaScoresMultiplePolicies replays one recorded trace against three
// candidates and checks the comparison artifact's shape: every policy walks
// every frame, the recording policy passes the gate, and projections are
// populated.
func TestArenaScoresMultiplePolicies(t *testing.T) {
	res, err := harness.Run(recordedScenario(9))
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Decisions.Trace()
	out, err := replay.Run(tr, []string{"powerchief", "fairness", "marginal"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if out.Kind != replay.ArtifactKind || out.Frames != len(tr.Frames) {
		t.Fatalf("comparison artifact %+v", out)
	}
	if len(out.Policies) != 3 {
		t.Fatalf("scored %d policies, want 3", len(out.Policies))
	}
	for _, s := range out.Policies {
		if s.Frames != len(tr.Frames) {
			t.Fatalf("policy %s replayed %d/%d frames", s.Policy, s.Frames, len(tr.Frames))
		}
		if s.MaxProjectedMS <= 0 {
			t.Fatalf("policy %s has no projected delay", s.Policy)
		}
	}
	if !out.Policies[0].Deterministic {
		t.Fatalf("recording policy lost the gate inside the arena: %+v", out.Policies[0])
	}

	if _, err := replay.Run(tr, []string{"no-such-policy"}, 0); err == nil {
		t.Fatal("unknown arena policy accepted")
	}
}

// TestDisableDecisionTrace pins the opt-out: the scenario flag leaves no
// recorder behind.
func TestDisableDecisionTrace(t *testing.T) {
	sc := recordedScenario(9)
	sc.Duration = 100 * time.Second
	sc.DisableDecisionTrace = true
	res, err := harness.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Decisions != nil {
		t.Fatal("DisableDecisionTrace still recorded a trace")
	}
}
