package replay

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"time"

	"powerchief/internal/arbiter"
	"powerchief/internal/cmp"
	"powerchief/internal/core"
)

// PolicyScore is one candidate's run over a trace: plan agreement with the
// recording and the projected bottleneck-delay distribution of its
// shadow-applied plans.
type PolicyScore struct {
	// Policy is the arena name the candidate was registered under.
	Policy string `json:"policy"`
	// Frames counts replayed ticks.
	Frames int `json:"frames"`
	// Boosts counts ticks the candidate decided to act.
	Boosts int `json:"boosts"`
	// PlanMatches counts ticks whose emitted plan is byte-identical to the
	// recorded one. For the recording policy this must equal Frames — the
	// determinism gate.
	PlanMatches int `json:"plan_matches"`
	// Deterministic is PlanMatches == Frames.
	Deterministic bool `json:"deterministic"`
	// MeanProjectedMS / P99ProjectedMS / MaxProjectedMS summarize the
	// per-tick projected bottleneck expected delay (Equation 1 over the
	// shadow-applied state, serving and queuing rescaled by the profiled
	// α of any level change — Equation 3 — and queue halving of any clone —
	// Equation 2).
	MeanProjectedMS float64 `json:"mean_projected_ms"`
	P99ProjectedMS  float64 `json:"p99_projected_ms"`
	MaxProjectedMS  float64 `json:"max_projected_ms"`
}

// Comparison is the arena artifact: one trace, N candidate policies.
type Comparison struct {
	// Kind tags the artifact for powerbench cmp ("replay").
	Kind   string `json:"kind"`
	Trace  Header `json:"trace"`
	Frames int    `json:"frames"`
	// Policies is ordered as requested, recording policy included only if
	// requested.
	Policies []PolicyScore `json:"policies"`
}

// ArtifactKind is the Comparison tag powerbench cmp dispatches on.
const ArtifactKind = "replay"

// PolicyNames lists the registered arena names.
func PolicyNames() []string {
	return []string{
		"powerchief", "freq-boost", "inst-boost", "baseline",
		"proportional", "fairness", "marginal",
		"pegasus", "saver",
	}
}

// NewPolicy resolves a fresh planner by arena name. pegasus and saver need
// a positive QoS target.
func NewPolicy(name string, qos time.Duration) (core.Planner, error) {
	cfg := core.DefaultConfig()
	switch name {
	case "powerchief":
		return core.NewPowerChief(cfg), nil
	case "freq-boost":
		return core.NewFreqBoost(cfg), nil
	case "inst-boost":
		return core.NewInstBoost(cfg), nil
	case "baseline":
		return core.Static{}, nil
	case "proportional":
		return NewDivider(arbiter.Proportional{}, cfg), nil
	case "fairness":
		return NewDivider(arbiter.Fairness{Alpha: 2}, cfg), nil
	case "marginal":
		return NewDivider(arbiter.Marginal{}, cfg), nil
	case "pegasus":
		if qos <= 0 {
			return nil, fmt.Errorf("replay: policy pegasus needs a QoS target (-qos)")
		}
		return core.NewPegasus(qos), nil
	case "saver", "powerchief-saver":
		if qos <= 0 {
			return nil, fmt.Errorf("replay: policy %s needs a QoS target (-qos)", name)
		}
		return core.NewPowerChiefSaver(qos, cfg), nil
	default:
		return nil, fmt.Errorf("replay: unknown policy %q (have %v)", name, PolicyNames())
	}
}

// Run replays the trace against each named policy in shadow mode and scores
// them. Each candidate starts fresh and walks the frames in recorded order,
// so stateful policies (withdraw epochs, hold bands) evolve exactly as they
// would have live.
func Run(t *Trace, names []string, qos time.Duration) (*Comparison, error) {
	if len(t.Frames) == 0 {
		return nil, fmt.Errorf("replay: trace has no frames")
	}
	out := &Comparison{Kind: ArtifactKind, Trace: t.Header, Frames: len(t.Frames)}
	for _, name := range names {
		p, err := NewPolicy(name, qos)
		if err != nil {
			return nil, err
		}
		out.Policies = append(out.Policies, replayOne(t, name, p))
	}
	return out, nil
}

// Determinism replays the trace's own recording policy and reports whether
// it reproduced every recorded plan byte-identically.
func Determinism(t *Trace, qos time.Duration) (PolicyScore, error) {
	p, err := NewPolicy(t.Header.Policy, qos)
	if err != nil {
		return PolicyScore{}, fmt.Errorf("replay: recording policy not replayable: %w", err)
	}
	return replayOne(t, t.Header.Policy, p), nil
}

// replayOne walks the frames once with one candidate.
func replayOne(t *Trace, name string, p core.Planner) PolicyScore {
	score := PolicyScore{Policy: name, Frames: len(t.Frames)}
	var projected []float64
	for i := range t.Frames {
		f := &t.Frames[i]
		sv := core.NewSnapshotView(f.Snapshot)
		plan, out := p.Plan(sv, sv)
		if planBytes(core.EncodePlan(plan)) == planBytes(f.Plan) {
			score.PlanMatches++
		}
		if out.Kind != core.BoostNone {
			score.Boosts++
		}
		// Project the decision forward on the shadow copy; a plan the shadow
		// budget refuses scores as the unmodified state.
		_ = core.ShadowExecutor{}.Apply(sv, plan)
		projected = append(projected, projectedMS(f.Snapshot, sv))
	}
	score.Deterministic = score.PlanMatches == score.Frames
	score.MeanProjectedMS = mean(projected)
	score.P99ProjectedMS = percentile(projected, 0.99)
	score.MaxProjectedMS = percentile(projected, 1)
	return score
}

// planBytes is the canonical comparison form of an encoded plan.
func planBytes(recs []core.ActionRecord) string {
	if recs == nil {
		recs = []core.ActionRecord{}
	}
	b, err := json.Marshal(recs)
	if err != nil {
		return ""
	}
	return string(b)
}

// projectedMS computes the projected bottleneck expected delay (ms) of the
// shadow state sv relative to the capture snap: Equation 1 per instance with
// queuing/serving rescaled by the profiled α of its level change and the
// shadow's post-plan queue lengths (clone steals, withdraw merges). Shadow
// clones carry no recorded statistics and score through their source's
// shrunken queue.
func projectedMS(snap *core.Snapshot, sv *core.SnapshotView) float64 {
	type orig struct {
		q, s time.Duration
		lvl  cmp.Level
		ok   bool
	}
	m := make(map[string]orig)
	for i := range snap.Stages {
		for _, in := range snap.Stages[i].Instances {
			m[in.Name] = orig{q: in.Queuing, s: in.Serving, lvl: in.Level, ok: in.StatsOK}
		}
	}
	worst := 0.0
	for _, st := range sv.Stages() {
		prof := st.Profile()
		for _, in := range st.Instances() {
			o, ok := m[in.Name()]
			if !ok || !o.ok {
				continue
			}
			alpha := cmp.Alpha(prof, o.lvl, in.Level())
			proj := alpha * (float64(in.QueueLen())*float64(o.q) + float64(o.s))
			if proj > worst {
				worst = proj
			}
		}
	}
	return worst / float64(time.Millisecond)
}

// mean averages the samples (0 when empty).
func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// percentile returns the p-quantile by nearest-rank over a sorted copy.
func percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	idx := int(math.Ceil(p*float64(len(s)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}
