package fault

import "errors"

// ErrStageDown marks a submit or actuation rejected because the target stage
// is quarantined (down or still recovering). Callers fail fast instead of
// waiting out an RPC deadline against a peer the center already knows is
// unreachable. Test with errors.Is.
var ErrStageDown = errors.New("stage down")

// ErrNoHealthyStages marks a control interval that could not run because
// every stage of the pipeline is quarantined.
var ErrNoHealthyStages = errors.New("dist: no healthy stages")

// ErrNodeDown is the fleet-level twin of ErrStageDown: an actuation or report
// rejected because the target node is quarantined by the fleet coordinator.
var ErrNodeDown = errors.New("node down")

// ErrNoHealthyNodes marks a fleet control epoch that could not rebalance
// because every node of the cluster is quarantined.
var ErrNoHealthyNodes = errors.New("fleet: no healthy nodes")

// ErrStaleEpoch marks a message fenced off by epoch tagging: a node report
// carrying a pre-quarantine epoch after the coordinator reclaimed its budget,
// or a budget grant from a superseded coordinator term. The sender must
// resynchronise (accept a fresh grant) before its messages count again.
var ErrStaleEpoch = errors.New("stale epoch")

// IsDegraded reports whether err is a degraded-mode failure: the backend is
// partially or fully quarantined but expected to recover, so control loops
// should keep ticking rather than abort.
func IsDegraded(err error) bool {
	return errors.Is(err, ErrStageDown) || errors.Is(err, ErrNoHealthyStages) ||
		errors.Is(err, ErrNodeDown) || errors.Is(err, ErrNoHealthyNodes) ||
		errors.Is(err, ErrStaleEpoch)
}

// wireCodes maps each sentinel to its stable wire identifier. Order is fixed
// (not a map) so Code resolution is deterministic when sentinels wrap each
// other, and so the codes double as documentation of the wire contract:
// codes are part of the RPC protocol and must never be renamed.
var wireCodes = []struct {
	code string
	err  error
}{
	{"stage-down", ErrStageDown},
	{"no-healthy-stages", ErrNoHealthyStages},
	{"node-down", ErrNodeDown},
	{"no-healthy-nodes", ErrNoHealthyNodes},
	{"stale-epoch", ErrStaleEpoch},
}

// Code returns the stable wire code for err, or "" when err does not wrap a
// registered sentinel. The RPC server attaches it to error responses so the
// client can restore sentinel identity after decode.
func Code(err error) string {
	if err == nil {
		return ""
	}
	for _, wc := range wireCodes {
		if errors.Is(err, wc.err) {
			return wc.code
		}
	}
	return ""
}

// FromCode returns the sentinel registered under code, or nil for an unknown
// (or empty) code. Unknown codes are tolerated — a newer peer may send codes
// this build does not know — and degrade to a plain application error.
func FromCode(code string) error {
	for _, wc := range wireCodes {
		if wc.code == code {
			return wc.err
		}
	}
	return nil
}

// Health is the shared health state machine vocabulary: the distributed
// center tracks it per stage, the fleet coordinator per node. Transitions
// (both layers follow the same machine):
//
//	Healthy   --failure-->                Suspect
//	Suspect   --failures >= threshold-->  Down      (budget reclaimed)
//	Suspect   --success-->                Healthy
//	Down      --probe success-->          Recovering
//	Recovering --budget-safe readmit-->   Healthy
type Health int

const (
	// Healthy: answering within deadlines; full participant.
	Healthy Health = iota
	// Suspect: missed one or more deadlines, not yet quarantined; still a
	// participant, but one more failure (past the threshold) quarantines it.
	Suspect
	// Down: quarantined. Its budget has been reclaimed; submissions and
	// actuations fail fast with the matching *Down sentinel.
	Down
	// Recovering: answered a probe after being down; awaiting budget-safe
	// re-admission (the controller must find watts for its floor first).
	Recovering
)

// String returns the lower-case state name used in audit events and metrics.
func (h Health) String() string {
	switch h {
	case Healthy:
		return "healthy"
	case Suspect:
		return "suspect"
	case Down:
		return "down"
	case Recovering:
		return "recovering"
	default:
		return "unknown"
	}
}
