// Package fault holds the degraded-mode sentinel errors shared by the
// distributed runtime (which raises them) and the control plane (which
// classifies them). It sits below both so the control loop can recognise a
// partially-down backend without importing the dist package — dist is built
// on the live runtime, which itself drives the control plane.
//
// The dist package re-exports these values (dist.ErrStageDown,
// dist.ErrNoHealthyStages), so errors.Is matches against either name.
package fault

import "errors"

// ErrStageDown marks a submit or actuation rejected because the target stage
// is quarantined (down or still recovering). Callers fail fast instead of
// waiting out an RPC deadline against a peer the center already knows is
// unreachable. Test with errors.Is.
var ErrStageDown = errors.New("stage down")

// ErrNoHealthyStages marks a control interval that could not run because
// every stage of the pipeline is quarantined.
var ErrNoHealthyStages = errors.New("dist: no healthy stages")

// IsDegraded reports whether err is a degraded-mode failure: the backend is
// partially or fully quarantined but expected to recover, so control loops
// should keep ticking rather than abort.
func IsDegraded(err error) bool {
	return errors.Is(err, ErrStageDown) || errors.Is(err, ErrNoHealthyStages)
}
