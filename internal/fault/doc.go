// Package fault holds the degraded-mode sentinel errors and the health
// state machine vocabulary shared by the distributed runtime (which raises
// them), the fleet coordinator (which raises their node-level twins) and the
// control plane (which classifies them). It sits below all three so the
// control loop can recognise a partially-down backend without importing the
// dist or fleet packages — dist is built on the live runtime, which itself
// drives the control plane.
//
// The dist package re-exports the stage-level values (dist.ErrStageDown,
// dist.ErrNoHealthyStages), so errors.Is matches against either name.
//
// Sentinels also carry a stable wire code (Code / FromCode) so the RPC layer
// can round-trip them: a server encodes the code alongside the error string,
// and the client's decoded error unwraps to the same sentinel, keeping
// errors.Is(err, fault.ErrStageDown) true across process boundaries.
package fault
