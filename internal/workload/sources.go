package workload

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"time"

	"powerchief/internal/query"
	"powerchief/internal/sim"
	"powerchief/internal/stage"
)

// Diurnal models the day-scale load cycle of user-facing services: a
// sinusoid between Base and Peak with the given period, optionally phase
// shifted. The paper's production-deployment future work needs exactly this
// shape for long-horizon studies.
type Diurnal struct {
	Base   float64       // trough rate (qps)
	Peak   float64       // crest rate (qps)
	Period time.Duration // full cycle length
	Phase  time.Duration // shift of the crest
}

// NewDiurnal validates and returns the source.
func NewDiurnal(base, peak float64, period time.Duration) (*Diurnal, error) {
	if base < 0 || peak < base {
		return nil, fmt.Errorf("workload: diurnal needs 0 ≤ base ≤ peak")
	}
	if period <= 0 {
		return nil, fmt.Errorf("workload: diurnal needs a positive period")
	}
	return &Diurnal{Base: base, Peak: peak, Period: period}, nil
}

// RateAt implements Source.
func (d *Diurnal) RateAt(t time.Duration) float64 {
	mid := (d.Base + d.Peak) / 2
	amp := (d.Peak - d.Base) / 2
	angle := 2 * math.Pi * float64(t+d.Phase) / float64(d.Period)
	return mid + amp*math.Sin(angle)
}

// MaxRate implements Source.
func (d *Diurnal) MaxRate() float64 { return d.Peak }

// Replay drives arrivals at exact recorded timestamps — for replaying
// production traces instead of synthetic Poisson load. Timestamps are
// virtual offsets from the start of the run.
type Replay struct {
	arrivals []time.Duration
}

// NewReplay copies and sorts the arrival offsets.
func NewReplay(arrivals []time.Duration) (*Replay, error) {
	if len(arrivals) == 0 {
		return nil, fmt.Errorf("workload: replay needs at least one arrival")
	}
	out := make([]time.Duration, len(arrivals))
	copy(out, arrivals)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	if out[0] < 0 {
		return nil, fmt.Errorf("workload: negative arrival offset")
	}
	return &Replay{arrivals: out}, nil
}

// ParseReplay reads one arrival offset per line (Go duration syntax like
// "1.5s" or plain seconds like "1.5"), ignoring blank lines and lines
// starting with '#'.
func ParseReplay(r io.Reader) (*Replay, error) {
	var arrivals []time.Duration
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		if d, err := time.ParseDuration(text); err == nil {
			arrivals = append(arrivals, d)
			continue
		}
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return nil, fmt.Errorf("workload: line %d: %q is neither a duration nor seconds", line, text)
		}
		arrivals = append(arrivals, time.Duration(f*float64(time.Second)))
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return NewReplay(arrivals)
}

// Len returns the number of recorded arrivals.
func (r *Replay) Len() int { return len(r.arrivals) }

// Horizon returns the last arrival offset.
func (r *Replay) Horizon() time.Duration { return r.arrivals[len(r.arrivals)-1] }

// Schedule injects the recorded arrivals into the system, drawing each
// query's demands with the supplied drawer. Returns the number scheduled.
func (r *Replay) Schedule(eng *sim.Engine, sys *stage.System, draw WorkDrawer, rng *rand.Rand) int {
	for i, at := range r.arrivals {
		qid := query.ID(i + 1)
		at := at
		eng.ScheduleAt(at, func() {
			sys.Submit(query.New(qid, at, draw(rng)))
		})
	}
	return len(r.arrivals)
}
