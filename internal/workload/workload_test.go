package workload

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"powerchief/internal/app"
	"powerchief/internal/cmp"
	"powerchief/internal/query"
	"powerchief/internal/sim"
	"powerchief/internal/stage"
)

func TestConstantSource(t *testing.T) {
	c := Constant(5)
	if c.RateAt(time.Hour) != 5 || c.MaxRate() != 5 {
		t.Error("constant source wrong")
	}
}

func TestTraceRateAt(t *testing.T) {
	tr, err := NewTrace(
		Phase{Until: 10 * time.Second, Rate: 1},
		Phase{Until: 20 * time.Second, Rate: 3},
	)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		at   time.Duration
		want float64
	}{
		{0, 1},
		{9 * time.Second, 1},
		{10 * time.Second, 3}, // boundary belongs to the next phase
		{19 * time.Second, 3},
		{25 * time.Second, 3}, // final rate persists
	}
	for _, c := range cases {
		if got := tr.RateAt(c.at); got != c.want {
			t.Errorf("RateAt(%v) = %v, want %v", c.at, got, c.want)
		}
	}
	if tr.MaxRate() != 3 {
		t.Errorf("MaxRate = %v", tr.MaxRate())
	}
}

func TestNewTraceValidation(t *testing.T) {
	if _, err := NewTrace(); err == nil {
		t.Error("empty trace accepted")
	}
	if _, err := NewTrace(Phase{Until: time.Second, Rate: -1}); err == nil {
		t.Error("negative rate accepted")
	}
	if _, err := NewTrace(
		Phase{Until: 2 * time.Second, Rate: 1},
		Phase{Until: time.Second, Rate: 1},
	); err == nil {
		t.Error("non-increasing phase boundary accepted")
	}
}

func TestScaledSource(t *testing.T) {
	s := Scaled{Base: Constant(4), Factor: 0.5}
	if s.RateAt(0) != 2 || s.MaxRate() != 2 {
		t.Error("scaled source wrong")
	}
}

func TestLevelNamesAndUtilization(t *testing.T) {
	for _, c := range []struct {
		l    Level
		name string
	}{{Low, "low"}, {Medium, "medium"}, {High, "high"}} {
		if c.l.String() != c.name {
			t.Errorf("String(%d) = %q", c.l, c.l.String())
		}
		got, err := ParseLevel(c.name)
		if err != nil || got != c.l {
			t.Errorf("ParseLevel(%q) = %v, %v", c.name, got, err)
		}
	}
	if _, err := ParseLevel("extreme"); err == nil {
		t.Error("unknown level accepted")
	}
	if !(Low.Utilization() < Medium.Utilization() && Medium.Utilization() < High.Utilization()) {
		t.Error("utilizations not ordered")
	}
	if High.Utilization() <= 1 {
		t.Error("high load should transiently exceed baseline capacity")
	}
}

func TestRateForUtilization(t *testing.T) {
	if got := RateForUtilization(10, 0.5); got != 5 {
		t.Errorf("RateForUtilization = %v", got)
	}
	for _, bad := range []float64{0, -1, math.Inf(1), math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("capacity %v accepted", bad)
				}
			}()
			RateForUtilization(bad, 0.5)
		}()
	}
}

func buildSystem(t *testing.T) (*sim.Engine, *stage.System, app.App) {
	t.Helper()
	eng := sim.NewEngine()
	chip := cmp.NewChip(16, cmp.DefaultModel(), 200)
	a := app.Sirius()
	specs, err := a.Specs(nil, cmp.MaxLevel)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := stage.NewSystem(eng, chip, specs)
	if err != nil {
		t.Fatal(err)
	}
	return eng, sys, a
}

func TestGeneratorPoissonRate(t *testing.T) {
	eng, sys, a := buildSystem(t)
	rng := rand.New(rand.NewSource(1))
	horizon := 2000 * time.Second
	rate := 2.0
	gen := NewGenerator(eng, sys, Constant(rate), func(r *rand.Rand) [][]time.Duration {
		return a.DrawWork(r, []int{1, 1, 1})
	}, rng, horizon)
	gen.Start()
	eng.RunUntil(horizon)
	got := float64(gen.Issued()) / horizon.Seconds()
	if math.Abs(got-rate)/rate > 0.05 {
		t.Errorf("empirical rate %.3f qps, want ≈%v", got, rate)
	}
	if sys.Submitted() != gen.Issued() {
		t.Errorf("system received %d, generator issued %d", sys.Submitted(), gen.Issued())
	}
}

func TestGeneratorThinningMatchesTrace(t *testing.T) {
	eng, sys, a := buildSystem(t)
	rng := rand.New(rand.NewSource(2))
	tr, err := NewTrace(
		Phase{Until: 500 * time.Second, Rate: 1},
		Phase{Until: 1000 * time.Second, Rate: 4},
	)
	if err != nil {
		t.Fatal(err)
	}
	var first, second int
	sys.OnComplete(func(q *query.Query) {})
	gen := NewGenerator(eng, sys, tr, func(r *rand.Rand) [][]time.Duration {
		return a.DrawWork(r, []int{1, 1, 1})
	}, rng, 1000*time.Second)
	gen.Start()
	// Count arrivals per phase via a probe event at the boundary.
	eng.ScheduleAt(500*time.Second, func() { first = int(gen.Issued()) })
	eng.RunUntil(1000 * time.Second)
	second = int(gen.Issued()) - first
	r1 := float64(first) / 500
	r2 := float64(second) / 500
	if math.Abs(r1-1) > 0.15 {
		t.Errorf("phase 1 rate = %.3f, want ≈1", r1)
	}
	if math.Abs(r2-4) > 0.4 {
		t.Errorf("phase 2 rate = %.3f, want ≈4", r2)
	}
}

func TestGeneratorStopsAtHorizon(t *testing.T) {
	eng, sys, a := buildSystem(t)
	rng := rand.New(rand.NewSource(3))
	gen := NewGenerator(eng, sys, Constant(10), func(r *rand.Rand) [][]time.Duration {
		return a.DrawWork(r, []int{1, 1, 1})
	}, rng, 10*time.Second)
	gen.Start()
	eng.Run() // exhaust all events: generation must terminate
	if got := gen.Issued(); got == 0 || got > 200 {
		t.Errorf("issued %d queries for a 10s horizon at 10qps", got)
	}
}

func TestGeneratorZeroRateIdles(t *testing.T) {
	eng, sys, a := buildSystem(t)
	rng := rand.New(rand.NewSource(4))
	gen := NewGenerator(eng, sys, Constant(0), func(r *rand.Rand) [][]time.Duration {
		return a.DrawWork(r, []int{1, 1, 1})
	}, rng, 10*time.Second)
	gen.Start()
	eng.Run()
	if gen.Issued() != 0 {
		t.Errorf("zero-rate source issued %d queries", gen.Issued())
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	run := func() uint64 {
		eng, sys, a := buildSystem(t)
		rng := rand.New(rand.NewSource(99))
		gen := NewGenerator(eng, sys, Constant(3), func(r *rand.Rand) [][]time.Duration {
			return a.DrawWork(r, []int{1, 1, 1})
		}, rng, 300*time.Second)
		gen.Start()
		eng.Run()
		return gen.Issued()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("same seed issued %d vs %d queries", a, b)
	}
}

func TestNewGeneratorValidation(t *testing.T) {
	eng, sys, a := buildSystem(t)
	rng := rand.New(rand.NewSource(1))
	draw := func(r *rand.Rand) [][]time.Duration { return a.DrawWork(r, []int{1, 1, 1}) }
	for name, fn := range map[string]func(){
		"nil engine":   func() { NewGenerator(nil, sys, Constant(1), draw, rng, time.Second) },
		"nil source":   func() { NewGenerator(eng, sys, nil, draw, rng, time.Second) },
		"zero horizon": func() { NewGenerator(eng, sys, Constant(1), draw, rng, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestFigure11TraceShape(t *testing.T) {
	tr := Figure11Trace(2)
	// Dip between 175s and 275s is the lowest rate.
	dip := tr.RateAt(200 * time.Second)
	for _, at := range []time.Duration{10 * time.Second, 100 * time.Second, 300 * time.Second, 700 * time.Second} {
		if tr.RateAt(at) <= dip {
			t.Errorf("rate at %v (%.2f) not above the dip (%.2f)", at, tr.RateAt(at), dip)
		}
	}
	if tr.MaxRate() <= 2 {
		t.Error("trace should exceed the base rate at peak")
	}
}
